#!/bin/sh
# Tier-1 verification: formatting, vet, the full suite, the race detector
# over the trial worker pool and the simulation/RDMA hot paths, a quick
# serial-vs-parallel determinism golden, and a baseline staleness check.
set -eux

# Formatting must be clean before anything else runs.
badfmt=$(gofmt -l .)
if [ -n "$badfmt" ]; then
    echo "gofmt needed on: $badfmt" >&2
    exit 1
fi

go vet ./...
go build ./...
go test ./...
go test -race ./internal/experiments ./internal/sim ./internal/rdma ./internal/cpusim

# BENCH_baseline.json must decode against the current -json schema and cover
# the current experiment registry (also part of `go test ./...` above; run
# it by name so a staleness failure is unmistakable in CI logs).
go test ./cmd/hyperloop-bench -run TestBaselineMatchesSchema -count=1

# Quick determinism golden: the bench output is virtual-time numbers, so it
# must be byte-identical serial vs fully parallel once the wall-time-only
# lines ("regenerated in") are stripped.
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
go build -o "$tmp/bench" ./cmd/hyperloop-bench
"$tmp/bench" -exp all -scale quick -seed 1 -procs 1 |
    grep -v 'regenerated in' > "$tmp/serial.norm"
"$tmp/bench" -exp all -scale quick -seed 1 -procs 0 |
    grep -v 'regenerated in' > "$tmp/parallel.norm"
diff -u "$tmp/serial.norm" "$tmp/parallel.norm"
