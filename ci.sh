#!/bin/sh
# Tier-1 verification: formatting, vet, the full suite, the race detector
# over the trial worker pool and the simulation/RDMA hot paths, coverage
# floors on the pooling-critical packages, short fuzz runs over the WQE
# decoder and device reset, a quick serial-vs-parallel determinism golden,
# and a baseline staleness check.
set -eux

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

# Formatting must be clean before anything else runs.
badfmt=$(gofmt -l .)
if [ -n "$badfmt" ]; then
    echo "gofmt needed on: $badfmt" >&2
    exit 1
fi

go vet ./...
go build ./...
go test ./...
go test -race ./internal/experiments ./internal/sim ./internal/rdma ./internal/cpusim

# Coverage floors. nvm's dirty-range reset and ring's log are what device
# pooling leans on for correctness, so their suites must stay thorough.
covercheck() {
    pkg=$1 floor=$2
    go test -coverprofile "$tmp/cover.out" "$pkg"
    pct=$(go tool cover -func "$tmp/cover.out" | awk '/^total:/ {sub(/%/, "", $3); print $3}')
    if awk -v p="$pct" -v f="$floor" 'BEGIN { exit !(p < f) }'; then
        echo "coverage for $pkg is ${pct}%, below the ${floor}% floor" >&2
        exit 1
    fi
}
covercheck ./internal/nvm 90
covercheck ./internal/ring 90

# Short fuzz runs: arbitrary 64-byte WQE slots through a live send ring,
# and arbitrary workloads through Device.Reset-equals-fresh.
go test ./internal/rdma -run='^$' -fuzz=FuzzWQEDecode -fuzztime=10s
go test ./internal/nvm -run='^$' -fuzz=FuzzDeviceReset -fuzztime=10s

# BENCH_baseline.json must decode against the current -json schema and cover
# the current experiment registry (also part of `go test ./...` above; run
# it by name so a staleness failure is unmistakable in CI logs).
go test ./cmd/hyperloop-bench -run TestBaselineMatchesSchema -count=1

# Quick determinism golden: the bench output is virtual-time numbers, so it
# must be byte-identical serial vs fully parallel once the wall-time-only
# lines ("regenerated in") are stripped.
go build -o "$tmp/bench" ./cmd/hyperloop-bench
"$tmp/bench" -exp all -scale quick -seed 1 -procs 1 |
    grep -v 'regenerated in' > "$tmp/serial.norm"
"$tmp/bench" -exp all -scale quick -seed 1 -procs 0 |
    grep -v 'regenerated in' > "$tmp/parallel.norm"
diff -u "$tmp/serial.norm" "$tmp/parallel.norm"
