#!/bin/sh
# Tier-1 verification: formatting, vet, static analysis, the full suite,
# the race detector over the two-level scheduler and the simulation/RDMA
# hot paths, coverage floors on the pooling-critical packages, short fuzz
# runs over the WQE decoder and device reset, a determinism golden across
# a seed matrix (serial vs overlapped vs fast-path-off), the bench
# regression gate — strict virtual-time fields plus an events_per_sec
# tolerance band — against the committed BENCH_baseline.json, and the
# hypothesis catalog: every claim-validating scenario must pass at seeds
# 1/2/42 with reproducible counters, match the committed
# HYPO_baseline.json, and regenerate the committed FINDINGS.md evidence.
#
#   ./ci.sh                    run the full pipeline
#   ./ci.sh -update-baseline   regenerate BENCH_baseline.json,
#                              HYPO_baseline.json and hypotheses/ instead
#                              of diffing against them; commit the result
#                              (see EXPERIMENTS.md)
set -eux

update_baseline=0
if [ "${1:-}" = "-update-baseline" ]; then
    update_baseline=1
fi

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

# Bench artifacts (quick-scale text + JSON) land here; CI uploads them.
artifacts=${CI_ARTIFACTS_DIR:-"$tmp/artifacts"}
mkdir -p "$artifacts"

# Formatting must be clean before anything else runs.
badfmt=$(gofmt -l .)
if [ -n "$badfmt" ]; then
    echo "gofmt needed on: $badfmt" >&2
    exit 1
fi

go vet ./...

# Static analysis and vuln scanning, version-pinned so CI runs are
# reproducible. Both need the network once to populate the module cache;
# skip gracefully when the toolchain can't fetch them (offline dev box).
if command -v staticcheck >/dev/null 2>&1; then
    staticcheck ./...
elif GOFLAGS= go install honnef.co/go/tools/cmd/staticcheck@2024.1.1 >/dev/null 2>&1; then
    "$(go env GOPATH)/bin/staticcheck" ./...
else
    echo "staticcheck unavailable (offline?); skipping" >&2
fi
if command -v govulncheck >/dev/null 2>&1; then
    govulncheck ./...
elif GOFLAGS= go install golang.org/x/vuln/cmd/govulncheck@v1.1.3 >/dev/null 2>&1; then
    "$(go env GOPATH)/bin/govulncheck" ./...
else
    echo "govulncheck unavailable (offline?); skipping" >&2
fi

go build ./...
go test ./...
# The determinism goldens shrink their matrix under race (see
# race_on_test.go) but the detector is still ~10× on one core; give the
# stage explicit headroom over the 10m default.
go test -race -timeout 20m ./internal/experiments ./internal/sim ./internal/rdma ./internal/cpusim

# Coverage floors. nvm's dirty-range reset and ring's log are what device
# pooling leans on for correctness, so their suites must stay thorough;
# the hypothesis catalog is the claim-validation surface, so its checks
# and findings rendering must stay exercised.
covercheck() {
    pkg=$1 floor=$2
    go test -coverprofile "$tmp/cover.out" "$pkg"
    pct=$(go tool cover -func "$tmp/cover.out" | awk '/^total:/ {sub(/%/, "", $3); print $3}')
    if awk -v p="$pct" -v f="$floor" 'BEGIN { exit !(p < f) }'; then
        echo "coverage for $pkg is ${pct}%, below the ${floor}% floor" >&2
        exit 1
    fi
}
covercheck ./internal/nvm 90
covercheck ./internal/ring 90
covercheck ./internal/hypotheses 85

# Short fuzz runs: arbitrary 64-byte WQE slots through a live send ring,
# arbitrary workloads through Device.Reset-equals-fresh, and arbitrary
# fault schedules through FaultPlan.Validate (accepted plans must then
# survive installation on a live fabric).
go test ./internal/rdma -run='^$' -fuzz=FuzzWQEDecode -fuzztime=10s
go test ./internal/nvm -run='^$' -fuzz=FuzzDeviceReset -fuzztime=10s
go test ./internal/rdma -run='^$' -fuzz=FuzzFaultPlanValidate -fuzztime=10s

# BENCH_baseline.json must decode against the current -json schema and cover
# the current experiment registry (also part of `go test ./...` above; run
# it by name so a staleness failure is unmistakable in CI logs). Same bar
# for the hypothesis catalog: HYPO_baseline.json must match the CLI schema
# and catalog order, and the committed hypotheses/<id>/FINDINGS.md
# artifacts must match a fresh seed-1 regeneration byte for byte.
go test ./cmd/hyperloop-bench -run TestBaselineMatchesSchema -count=1
go test ./cmd/hypothesis-run -run 'TestBaselineMatchesSchema|TestCommittedFindingsMatch' -count=1

# Cross-protocol conformance: the suite iterates protocol.Names(), so every
# registered replication protocol runs the same op/fault/Close/determinism
# script, and TestProtocolRegistryComplete fails if a canonical protocol
# drops out of the registry. Run by name for an unmistakable CI log line.
go test ./internal/experiments -run 'TestProtocol' -count=1

go build -o "$tmp/bench" ./cmd/hyperloop-bench
go build -o "$tmp/benchdiff" ./cmd/benchdiff
go build -o "$tmp/hyporun" ./cmd/hypothesis-run

if [ "$update_baseline" = 1 ]; then
    # The committed baseline is always generated serially: -procs 1 is the
    # degenerate schedule every other -procs value must reproduce.
    "$tmp/bench" -exp all -scale quick -seed 1 -procs 1 -json BENCH_baseline.json \
        > "$artifacts/bench-quick.txt"
    cp BENCH_baseline.json "$artifacts/bench-quick.json"
    # The hypothesis baseline and the committed FINDINGS.md evidence
    # regenerate together so they can never drift apart.
    "$tmp/hyporun" -run all -scale quick -seed 1 \
        -json HYPO_baseline.json -findings hypotheses > "$artifacts/hypo-quick.txt"
    cp HYPO_baseline.json "$artifacts/hypo-quick.json"
    echo "BENCH_baseline.json, HYPO_baseline.json and hypotheses/ regenerated; review and commit" >&2
    exit 0
fi

# Determinism golden across a seed matrix: the bench output is virtual-time
# numbers, so it must be byte-identical serial (-procs 1) vs fully
# overlapped (-procs 0) vs the fiber fast path forced off (-fastpath off)
# once the wall-time-only lines ("regenerated in") are stripped.
for seed in 1 2 42; do
    "$tmp/bench" -exp all -scale quick -seed "$seed" -procs 1 |
        grep -v 'regenerated in' > "$tmp/serial.norm"
    "$tmp/bench" -exp all -scale quick -seed "$seed" -procs 0 |
        grep -v 'regenerated in' > "$tmp/overlap.norm"
    diff -u "$tmp/serial.norm" "$tmp/overlap.norm"
    "$tmp/bench" -exp all -scale quick -seed "$seed" -procs 0 -fastpath off |
        grep -v 'regenerated in' > "$tmp/fastoff.norm"
    diff -u "$tmp/serial.norm" "$tmp/fastoff.norm"
done

# Hypothesis catalog: every claim must hold (exit 0) at each matrix seed,
# and a repeat run at the same seed must reproduce every strict
# virtual-time counter exactly. benchdiff does the strict comparison;
# -eps-tolerance 0 disables its wall-clock throughput band, which is
# meaningless between two back-to-back runs.
for seed in 1 2 42; do
    "$tmp/hyporun" -run all -scale quick -seed "$seed" -json "$tmp/hypo-a.json" > /dev/null
    "$tmp/hyporun" -run all -scale quick -seed "$seed" -json "$tmp/hypo-b.json" > /dev/null
    "$tmp/benchdiff" -eps-tolerance 0 "$tmp/hypo-a.json" "$tmp/hypo-b.json"
done

# Bench regression gate: an overlapped quick run must match the committed
# serial baseline on every strict (virtual-time) field — report text,
# sim_events, cqes, messages, wire_bytes, demand-side pool counters — and
# may not regress the aggregate simulator rate (events_per_sec) more than
# benchdiff's tolerance band. Wall-clock numbers, the fast/slow dispatch
# split and pool reuse splits are advisory; the per-experiment wall/events
# CSV lands in the artifacts dir. On an intentional behaviour change, run
# `./ci.sh -update-baseline` and commit the result.
"$tmp/bench" -exp all -scale quick -seed 1 -procs 0 -json "$artifacts/bench-quick.json" \
    > "$artifacts/bench-quick.txt"
"$tmp/benchdiff" -csv "$artifacts/bench-quick.csv" BENCH_baseline.json "$artifacts/bench-quick.json"

# Hypothesis regression gate: a fresh seed-1 quick run must match the
# committed HYPO_baseline.json on every strict field — the embedded
# findings text (checks, tables, verdicts) and the virtual-time counters.
# The scenarios are short, so the wall-clock throughput band is all noise;
# the strict fields are the gate. Regenerated FINDINGS.md evidence lands
# in the artifacts dir and must match the committed hypotheses/ tree.
# On an intentional behaviour change, run `./ci.sh -update-baseline`.
"$tmp/hyporun" -run all -scale quick -seed 1 \
    -json "$artifacts/hypo-quick.json" -findings "$artifacts/hypotheses" \
    > "$artifacts/hypo-quick.txt"
"$tmp/benchdiff" -eps-tolerance 0 -csv "$artifacts/hypo-quick.csv" \
    HYPO_baseline.json "$artifacts/hypo-quick.json"
diff -ru hypotheses "$artifacts/hypotheses"
