#!/bin/sh
# Tier-1 verification, split into named stages so CI can run them as
# parallel jobs and developers can iterate on one stage locally:
#
#   lint    gofmt gate, go vet, staticcheck + govulncheck (version-pinned)
#   test    build, full suite, race detector over the scheduler and the
#           simulation/RDMA/txn/shard hot paths, coverage floors,
#           baseline-staleness and protocol-conformance suites
#   fuzz    short fuzz runs over the WQE decoder, device reset and fault
#           plan validation
#   bench   determinism goldens across a seed matrix (serial vs overlapped
#           vs fast-path-off, full sweep plus a shards-only leg), the
#           hypothesis-catalog reproducibility matrix, and the bench/hypo
#           regression gates against the committed baselines
#
#   ./ci.sh                    run every stage in sequence
#   ./ci.sh <stage>            run one stage (lint | test | fuzz | bench)
#   ./ci.sh -update-baseline   regenerate BENCH_baseline.json,
#                              HYPO_baseline.json and hypotheses/ instead
#                              of diffing against them; commit the result
#                              (see EXPERIMENTS.md)
#
# Every step runs through a quiet runner: output is captured per step, a
# one-line timing entry is printed as it finishes (and collected in the
# artifacts dir as stage-times.txt), and only a failing step dumps its
# log — so a red run shows exactly the output that matters instead of a
# full -x trace of every green step.
set -eu

mode=all
case "${1:-all}" in
-update-baseline) mode=update ;;
lint | test | fuzz | bench | all) mode=${1:-all} ;;
*)
    echo "usage: ./ci.sh [lint|test|fuzz|bench|-update-baseline]" >&2
    exit 2
    ;;
esac

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
mkdir -p "$tmp/logs"

# Bench artifacts (quick-scale text + JSON) and the stage timing summary
# land here; CI uploads them.
artifacts=${CI_ARTIFACTS_DIR:-"$tmp/artifacts"}
mkdir -p "$artifacts"
times_file="$artifacts/stage-times.txt"
: >"$times_file"

stepn=0

# step <name> <cmd...>: run one step quietly. The command (a program or a
# shell function) runs in a subshell with errexit restored, so multi-line
# helpers fail on their first error; the surrounding `set +e` must wrap a
# plain command — POSIX errexit is suppressed inside `if`/`&&` contexts,
# which would let failures escape. Only a failing step's log is dumped.
step() {
    name=$1
    shift
    stepn=$((stepn + 1))
    log="$tmp/logs/step-$stepn.log"
    start=$(date +%s)
    set +e
    (
        set -e
        "$@"
    ) >"$log" 2>&1
    rc=$?
    set -e
    dur=$(($(date +%s) - start))
    if [ "$rc" -eq 0 ]; then
        status=ok
    else
        status="FAIL(rc=$rc)"
    fi
    printf '%-44s %4ss  %s\n' "$name" "$dur" "$status" | tee -a "$times_file"
    if [ "$rc" -ne 0 ]; then
        echo "--- log of failing step \"$name\" ---" >&2
        cat "$log" >&2
        echo "--- end of failing step log ---" >&2
        exit "$rc"
    fi
}

run_stage() {
    stage_name=$1
    shift
    echo "== stage $stage_name =="
    stage_start=$(date +%s)
    "$@"
    printf '== stage %s done in %ss ==\n' "$stage_name" "$(($(date +%s) - stage_start))" | tee -a "$times_file"
}

# ---------- lint ----------

check_fmt() {
    badfmt=$(gofmt -l .)
    if [ -n "$badfmt" ]; then
        echo "gofmt needed on: $badfmt" >&2
        exit 1
    fi
}

# Static analysis and vuln scanning, version-pinned so CI runs are
# reproducible. Both need the network once to populate the module cache;
# skip gracefully when the toolchain can't fetch them (offline dev box).
run_staticcheck() {
    if command -v staticcheck >/dev/null 2>&1; then
        staticcheck ./...
    elif GOFLAGS= go install honnef.co/go/tools/cmd/staticcheck@2024.1.1 >/dev/null 2>&1; then
        "$(go env GOPATH)/bin/staticcheck" ./...
    else
        echo "staticcheck unavailable (offline?); skipping" >&2
    fi
}

run_govulncheck() {
    if command -v govulncheck >/dev/null 2>&1; then
        govulncheck ./...
    elif GOFLAGS= go install golang.org/x/vuln/cmd/govulncheck@v1.1.3 >/dev/null 2>&1; then
        "$(go env GOPATH)/bin/govulncheck" ./...
    else
        echo "govulncheck unavailable (offline?); skipping" >&2
    fi
}

stage_lint() {
    step "gofmt" check_fmt
    step "go vet" go vet ./...
    step "staticcheck" run_staticcheck
    step "govulncheck" run_govulncheck
}

# ---------- test ----------

# Coverage floors. nvm's dirty-range reset and ring's log are what device
# pooling leans on for correctness; the hypothesis catalog is the
# claim-validation surface; the shard router is the cross-shard atomicity
# surface (2PC lock ordering, abort rollback, recovery).
covercheck() {
    pkg=$1 floor=$2
    go test -coverprofile "$tmp/cover.out" "$pkg"
    pct=$(go tool cover -func "$tmp/cover.out" | awk '/^total:/ {sub(/%/, "", $3); print $3}')
    if awk -v p="$pct" -v f="$floor" 'BEGIN { exit !(p < f) }'; then
        echo "coverage for $pkg is ${pct}%, below the ${floor}% floor" >&2
        exit 1
    fi
}

stage_test() {
    step "go build" go build ./...
    step "go test" go test ./...
    # The determinism goldens shrink their matrix under race (see
    # race_on_test.go) but the detector is still ~10× on one core; give
    # the step explicit headroom over the 10m default. txn and shard join
    # the race leg: 2PC and the router are lock-ordering-sensitive.
    step "go test -race (hot paths)" go test -race -timeout 20m \
        ./internal/experiments ./internal/sim ./internal/rdma ./internal/cpusim \
        ./internal/txn ./internal/shard
    step "coverage internal/nvm >=90" covercheck ./internal/nvm 90
    step "coverage internal/ring >=90" covercheck ./internal/ring 90
    step "coverage internal/hypotheses >=85" covercheck ./internal/hypotheses 85
    step "coverage internal/shard >=85" covercheck ./internal/shard 85
    step "coverage internal/txn >=85" covercheck ./internal/txn 85
    # BENCH_baseline.json must decode against the current -json schema and
    # cover the current experiment registry (also part of `go test ./...`
    # above; run it by name so a staleness failure is unmistakable in CI
    # logs). Same bar for the hypothesis catalog and the committed
    # hypotheses/<id>/FINDINGS.md artifacts.
    step "baseline staleness" go test ./cmd/hyperloop-bench \
        -run TestBaselineMatchesSchema -count=1
    step "hypo baseline staleness" go test ./cmd/hypothesis-run \
        -run 'TestBaselineMatchesSchema|TestCommittedFindingsMatch' -count=1
    # Cross-protocol conformance: the suite iterates protocol.Names(), so
    # every registered replication protocol runs the same
    # op/fault/Close/determinism script.
    step "protocol conformance" go test ./internal/experiments \
        -run TestProtocol -count=1
}

# ---------- fuzz ----------

# Short fuzz runs: arbitrary 64-byte WQE slots through a live send ring,
# arbitrary workloads through Device.Reset-equals-fresh, and arbitrary
# fault schedules through FaultPlan.Validate (accepted plans must then
# survive installation on a live fabric).
stage_fuzz() {
    step "fuzz WQE decode" go test ./internal/rdma -run='^$' \
        -fuzz=FuzzWQEDecode -fuzztime=10s
    step "fuzz device reset" go test ./internal/nvm -run='^$' \
        -fuzz=FuzzDeviceReset -fuzztime=10s
    step "fuzz fault plan" go test ./internal/rdma -run='^$' \
        -fuzz=FuzzFaultPlanValidate -fuzztime=10s
}

# ---------- bench ----------

build_tools() {
    go build -o "$tmp/bench" ./cmd/hyperloop-bench
    go build -o "$tmp/benchdiff" ./cmd/benchdiff
    go build -o "$tmp/hyporun" ./cmd/hypothesis-run
}

# Determinism golden for one experiment selection at one seed: the bench
# output is virtual-time numbers, so it must be byte-identical serial
# (-procs 1) vs fully overlapped (-procs 0) vs the fiber fast path forced
# off (-fastpath off) once the wall-time-only lines ("regenerated in")
# are stripped.
determinism() {
    exp=$1 seed=$2
    "$tmp/bench" -exp "$exp" -scale quick -seed "$seed" -procs 1 |
        grep -v 'regenerated in' >"$tmp/serial.norm"
    "$tmp/bench" -exp "$exp" -scale quick -seed "$seed" -procs 0 |
        grep -v 'regenerated in' >"$tmp/overlap.norm"
    diff -u "$tmp/serial.norm" "$tmp/overlap.norm"
    "$tmp/bench" -exp "$exp" -scale quick -seed "$seed" -procs 0 -fastpath off |
        grep -v 'regenerated in' >"$tmp/fastoff.norm"
    diff -u "$tmp/serial.norm" "$tmp/fastoff.norm"
}

# Hypothesis catalog at one seed: every claim must hold (exit 0), and a
# repeat run at the same seed must reproduce every strict virtual-time
# counter exactly. benchdiff does the strict comparison; -eps-tolerance 0
# disables its wall-clock throughput band, which is meaningless between
# two back-to-back runs.
hypo_repro() {
    seed=$1
    "$tmp/hyporun" -run all -scale quick -seed "$seed" -json "$tmp/hypo-a.json" >/dev/null
    "$tmp/hyporun" -run all -scale quick -seed "$seed" -json "$tmp/hypo-b.json" >/dev/null
    "$tmp/benchdiff" -eps-tolerance 0 "$tmp/hypo-a.json" "$tmp/hypo-b.json"
}

# Bench regression gate: an overlapped quick run must match the committed
# serial baseline on every strict (virtual-time) field and may not regress
# the aggregate simulator rate more than benchdiff's tolerance band. The
# per-experiment wall/events CSV lands in the artifacts dir. On an
# intentional behaviour change, run `./ci.sh -update-baseline` and commit.
bench_gate() {
    "$tmp/bench" -exp all -scale quick -seed 1 -procs 0 -json "$artifacts/bench-quick.json" \
        >"$artifacts/bench-quick.txt"
    "$tmp/benchdiff" -csv "$artifacts/bench-quick.csv" BENCH_baseline.json "$artifacts/bench-quick.json"
    # The sharded scale-out experiment is the newest and most
    # placement-sensitive; re-gate it in isolation with -only so a shards
    # regression is named in the log even when the full diff is noisy.
    "$tmp/benchdiff" -only shards BENCH_baseline.json "$artifacts/bench-quick.json"
}

# Hypothesis regression gate: a fresh seed-1 quick run must match the
# committed HYPO_baseline.json on every strict field, and the regenerated
# FINDINGS.md evidence must match the committed hypotheses/ tree.
hypo_gate() {
    "$tmp/hyporun" -run all -scale quick -seed 1 \
        -json "$artifacts/hypo-quick.json" -findings "$artifacts/hypotheses" \
        >"$artifacts/hypo-quick.txt"
    "$tmp/benchdiff" -eps-tolerance 0 -csv "$artifacts/hypo-quick.csv" \
        HYPO_baseline.json "$artifacts/hypo-quick.json"
    diff -ru hypotheses "$artifacts/hypotheses"
}

stage_bench() {
    step "build bench tools" build_tools
    for seed in 1 2 42; do
        step "determinism all seed=$seed" determinism all "$seed"
        # The shards experiment multiplexes hundreds of groups over shared
        # rack schedulers — the densest overlap surface in the suite — so
        # it gets its own named leg in the seed matrix.
        step "determinism shards seed=$seed" determinism shards "$seed"
        step "hypo reproducibility seed=$seed" hypo_repro "$seed"
    done
    step "bench regression gate" bench_gate
    step "hypo regression gate" hypo_gate
}

# ---------- update-baseline ----------

update_baseline() {
    # The committed baseline is always generated serially: -procs 1 is the
    # degenerate schedule every other -procs value must reproduce.
    "$tmp/bench" -exp all -scale quick -seed 1 -procs 1 -json BENCH_baseline.json \
        >"$artifacts/bench-quick.txt"
    cp BENCH_baseline.json "$artifacts/bench-quick.json"
    # The hypothesis baseline and the committed FINDINGS.md evidence
    # regenerate together so they can never drift apart.
    "$tmp/hyporun" -run all -scale quick -seed 1 \
        -json HYPO_baseline.json -findings hypotheses >"$artifacts/hypo-quick.txt"
    cp HYPO_baseline.json "$artifacts/hypo-quick.json"
}

case "$mode" in
update)
    step "build bench tools" build_tools
    step "regenerate baselines" update_baseline
    echo "BENCH_baseline.json, HYPO_baseline.json and hypotheses/ regenerated; review and commit" >&2
    ;;
lint) run_stage lint stage_lint ;;
test) run_stage test stage_test ;;
fuzz) run_stage fuzz stage_fuzz ;;
bench) run_stage bench stage_bench ;;
all)
    run_stage lint stage_lint
    run_stage test stage_test
    run_stage fuzz stage_fuzz
    run_stage bench stage_bench
    ;;
esac

echo "stage timing summary ($times_file):"
cat "$times_file"
