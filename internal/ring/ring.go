// Package ring provides a growable FIFO ring buffer.
//
// Several simulator hot paths maintain strictly-FIFO queues that used to be
// plain slices shifted with append(q[:0], q[1:]...) on every pop — an O(n)
// copy that turns long convoys (RDMA inboxes, pending-ACK windows, mutex
// waiter queues) quadratic. Ring keeps a head/tail over a power-of-two
// backing array so PushBack and PopFront are O(1) amortized, with no
// allocation in steady state once the ring has grown to the workload's
// high-water mark.
//
// The zero value is an empty, ready-to-use ring. Ring is not safe for
// concurrent use; like the rest of the simulator it relies on the kernel's
// single-runner discipline (see internal/sim).
package ring

// Ring is a FIFO queue over a circular buffer. The zero value is empty and
// ready for use.
type Ring[T any] struct {
	buf  []T // len(buf) is always zero or a power of two
	head int // index of the oldest element
	n    int // number of elements
}

// Len returns the number of queued elements.
func (r *Ring[T]) Len() int { return r.n }

// grow doubles the backing array (minimum 8) and linearizes the contents.
func (r *Ring[T]) grow() {
	size := len(r.buf) * 2
	if size == 0 {
		size = 8
	}
	buf := make([]T, size)
	for i := 0; i < r.n; i++ {
		buf[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
	}
	r.buf = buf
	r.head = 0
}

// PushBack appends v at the tail.
func (r *Ring[T]) PushBack(v T) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = v
	r.n++
}

// Front returns the oldest element without removing it. It panics on an
// empty ring, mirroring out-of-range slice indexing.
func (r *Ring[T]) Front() T {
	if r.n == 0 {
		panic("ring: Front on empty ring")
	}
	return r.buf[r.head]
}

// PopFront removes and returns the oldest element, zeroing its slot so
// pointer-bearing elements do not pin garbage. It panics on an empty ring.
func (r *Ring[T]) PopFront() T {
	if r.n == 0 {
		panic("ring: PopFront on empty ring")
	}
	var zero T
	v := r.buf[r.head]
	r.buf[r.head] = zero
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return v
}

// At returns the i-th element from the front (0 = oldest). It panics if i
// is out of range.
func (r *Ring[T]) At(i int) T {
	if i < 0 || i >= r.n {
		panic("ring: index out of range")
	}
	return r.buf[(r.head+i)&(len(r.buf)-1)]
}

// Reset empties the ring, zeroing occupied slots but keeping the backing
// array for reuse.
func (r *Ring[T]) Reset() {
	var zero T
	for i := 0; i < r.n; i++ {
		r.buf[(r.head+i)&(len(r.buf)-1)] = zero
	}
	r.head, r.n = 0, 0
}
