package ring

import "testing"

func TestFIFOOrder(t *testing.T) {
	var r Ring[int]
	for i := 0; i < 1000; i++ {
		r.PushBack(i)
	}
	if r.Len() != 1000 {
		t.Fatalf("Len = %d, want 1000", r.Len())
	}
	for i := 0; i < 1000; i++ {
		if got := r.Front(); got != i {
			t.Fatalf("Front = %d, want %d", got, i)
		}
		if got := r.PopFront(); got != i {
			t.Fatalf("PopFront = %d, want %d", got, i)
		}
	}
	if r.Len() != 0 {
		t.Fatalf("Len after drain = %d", r.Len())
	}
}

// TestWrapAround interleaves pushes and pops so head wraps the backing
// array repeatedly, cross-checking against a reference slice.
func TestWrapAround(t *testing.T) {
	var r Ring[int]
	var ref []int
	next := 0
	for step := 0; step < 10000; step++ {
		if step%3 != 0 || len(ref) == 0 {
			r.PushBack(next)
			ref = append(ref, next)
			next++
		} else {
			want := ref[0]
			ref = ref[1:]
			if got := r.PopFront(); got != want {
				t.Fatalf("step %d: PopFront = %d, want %d", step, got, want)
			}
		}
		if r.Len() != len(ref) {
			t.Fatalf("step %d: Len = %d, want %d", step, r.Len(), len(ref))
		}
	}
	for i, want := range ref {
		if got := r.At(i); got != want {
			t.Fatalf("At(%d) = %d, want %d", i, got, want)
		}
	}
}

func TestPopSlotZeroed(t *testing.T) {
	var r Ring[*int]
	v := new(int)
	r.PushBack(v)
	r.PopFront()
	// The vacated slot must not pin v; peek at the backing array.
	for _, p := range r.buf {
		if p != nil {
			t.Fatal("popped slot still holds a pointer")
		}
	}
}

func TestReset(t *testing.T) {
	var r Ring[int]
	for i := 0; i < 20; i++ {
		r.PushBack(i)
	}
	r.PopFront()
	r.Reset()
	if r.Len() != 0 {
		t.Fatalf("Len after Reset = %d", r.Len())
	}
	r.PushBack(7)
	if r.Front() != 7 {
		t.Fatal("ring unusable after Reset")
	}
}

func TestEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("PopFront on empty ring did not panic")
		}
	}()
	var r Ring[int]
	r.PopFront()
}
