package docstore

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"hyperloop/internal/sim"
)

// TestDocstoreAgainstModelProperty replays random insert/update/delete
// programs against the replicated store and an in-memory model map, then
// checks they agree — including after a crash + recovery in the middle.
func TestDocstoreAgainstModelProperty(t *testing.T) {
	type op struct {
		Kind  uint8
		ID    uint8
		Field uint8
		Crash bool
	}
	f := func(ops []op) bool {
		if len(ops) > 20 {
			ops = ops[:20]
		}
		cfg := smallConfig()
		k, s, g := testStore(t, cfg)
		model := make(map[string]string) // id → field value
		ok := true
		apply := func(f *sim.Fiber, o op) bool {
			id := fmt.Sprintf("doc%02d", o.ID%16)
			val := fmt.Sprintf("v%d", o.Field)
			switch o.Kind % 3 {
			case 0: // insert (or no-op if exists)
				err := s.Insert(f, "c", Doc{"_id": id, "f": val})
				if _, exists := model[id]; exists {
					if !errors.Is(err, ErrExists) {
						return false
					}
				} else {
					if err != nil {
						return false
					}
					model[id] = val
				}
			case 1: // update (or not-found)
				err := s.Update(f, "c", id, Doc{"f": val})
				if _, exists := model[id]; exists {
					if err != nil {
						return false
					}
					model[id] = val
				} else if !errors.Is(err, ErrNotFound) {
					return false
				}
			case 2: // delete (or not-found)
				err := s.Delete(f, "c", id)
				if _, exists := model[id]; exists {
					if err != nil {
						return false
					}
					delete(model, id)
				} else if !errors.Is(err, ErrNotFound) {
					return false
				}
			}
			return true
		}
		k.Spawn("prog", func(f *sim.Fiber) {
			for i, o := range ops {
				if !apply(f, o) {
					ok = false
					return
				}
				if o.Crash && i == len(ops)/2 {
					// Power-fail the client mid-program and recover.
					g.ClientNIC().Memory().Crash()
					if err := s.Recover(f); err != nil {
						ok = false
						return
					}
				}
			}
		})
		if err := k.Run(); err != nil || !ok {
			return false
		}
		// Final agreement.
		if s.Count("c") != len(model) {
			return false
		}
		for id, val := range model {
			doc, err := s.FindID("c", id)
			if err != nil || doc["f"] != val {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
