package docstore

import (
	"errors"
	"fmt"
	"testing"

	"hyperloop/internal/hyperloop"
	"hyperloop/internal/nvm"
	"hyperloop/internal/rdma"
	"hyperloop/internal/sim"
)

func smallConfig() Config {
	return Config{LogSize: 32 * 1024, DataSize: 128 * 1024, SlotSize: 1024}
}

func testStore(t *testing.T, cfg Config) (*sim.Kernel, *Store, *hyperloop.Group) {
	t.Helper()
	k := sim.NewKernel(11)
	fab := rdma.NewFabric(k, rdma.DefaultConfig())
	mirror := MirrorSizeFor(cfg)
	devSize := mirror + (1 << 20)
	client, _ := fab.AddNIC("client", nvm.NewDevice("client", devSize))
	var reps []*rdma.NIC
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("r%d", i)
		nic, _ := fab.AddNIC(name, nvm.NewDevice(name, devSize))
		reps = append(reps, nic)
	}
	g, err := hyperloop.Setup(fab, client, reps, hyperloop.DefaultConfig(mirror))
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return k, s, g
}

func run(t *testing.T, k *sim.Kernel, fn func(f *sim.Fiber)) {
	t.Helper()
	k.Spawn("doc-test", fn)
	if err := k.Run(); err != nil {
		t.Fatalf("kernel: %v", err)
	}
}

func TestInsertFind(t *testing.T) {
	k, s, _ := testStore(t, smallConfig())
	run(t, k, func(f *sim.Fiber) {
		doc := Doc{"_id": "u1", "name": "alice", "age": float64(30)}
		if err := s.Insert(f, "users", doc); err != nil {
			t.Errorf("insert: %v", err)
			return
		}
		got, err := s.FindID("users", "u1")
		if err != nil {
			t.Errorf("find: %v", err)
			return
		}
		if got["name"] != "alice" || got["age"] != float64(30) {
			t.Errorf("doc = %v", got)
		}
		if s.Count("users") != 1 {
			t.Errorf("count = %d", s.Count("users"))
		}
	})
}

func TestInsertValidation(t *testing.T) {
	k, s, _ := testStore(t, smallConfig())
	run(t, k, func(f *sim.Fiber) {
		if err := s.Insert(f, "c", Doc{"x": 1}); !errors.Is(err, ErrBadArgument) {
			t.Errorf("missing _id err = %v", err)
		}
		if err := s.Insert(f, "c", Doc{"_id": 5}); !errors.Is(err, ErrBadArgument) {
			t.Errorf("non-string _id err = %v", err)
		}
		if err := s.Insert(f, "c", Doc{"_id": "a"}); err != nil {
			t.Errorf("insert: %v", err)
		}
		if err := s.Insert(f, "c", Doc{"_id": "a"}); !errors.Is(err, ErrExists) {
			t.Errorf("duplicate err = %v", err)
		}
		big := make([]byte, 2000)
		if err := s.Insert(f, "c", Doc{"_id": "big", "blob": string(big)}); !errors.Is(err, ErrTooLarge) {
			t.Errorf("oversize err = %v", err)
		}
	})
}

func TestUpdateMergesFields(t *testing.T) {
	k, s, _ := testStore(t, smallConfig())
	run(t, k, func(f *sim.Fiber) {
		if err := s.Insert(f, "users", Doc{"_id": "u1", "a": "1", "b": "2"}); err != nil {
			t.Errorf("insert: %v", err)
			return
		}
		if err := s.Update(f, "users", "u1", Doc{"b": "22", "c": "3"}); err != nil {
			t.Errorf("update: %v", err)
			return
		}
		doc, err := s.FindID("users", "u1")
		if err != nil {
			t.Errorf("find: %v", err)
			return
		}
		if doc["a"] != "1" || doc["b"] != "22" || doc["c"] != "3" {
			t.Errorf("merged doc = %v", doc)
		}
		if err := s.Update(f, "users", "nope", Doc{"x": 1}); !errors.Is(err, ErrNotFound) {
			t.Errorf("update missing err = %v", err)
		}
	})
}

func TestDeleteFreesSlot(t *testing.T) {
	cfg := smallConfig()
	cfg.DataSize = 4 * cfg.SlotSize // only 4 slots
	k, s, _ := testStore(t, cfg)
	run(t, k, func(f *sim.Fiber) {
		for i := 0; i < 4; i++ {
			if err := s.Insert(f, "c", Doc{"_id": fmt.Sprintf("d%d", i)}); err != nil {
				t.Errorf("insert %d: %v", i, err)
				return
			}
		}
		if err := s.Insert(f, "c", Doc{"_id": "overflow"}); !errors.Is(err, ErrNoSpace) {
			t.Errorf("full err = %v", err)
			return
		}
		if err := s.Delete(f, "c", "d2"); err != nil {
			t.Errorf("delete: %v", err)
			return
		}
		if _, err := s.FindID("c", "d2"); !errors.Is(err, ErrNotFound) {
			t.Errorf("find deleted err = %v", err)
		}
		if err := s.Insert(f, "c", Doc{"_id": "reuse"}); err != nil {
			t.Errorf("reuse: %v", err)
		}
	})
}

func TestScanOrder(t *testing.T) {
	k, s, _ := testStore(t, smallConfig())
	run(t, k, func(f *sim.Fiber) {
		for _, id := range []string{"m", "a", "z", "q", "b"} {
			if err := s.Insert(f, "c", Doc{"_id": id}); err != nil {
				t.Errorf("insert: %v", err)
				return
			}
		}
		docs, err := s.Scan("c", "b", 3)
		if err != nil {
			t.Errorf("scan: %v", err)
			return
		}
		var ids []string
		for _, d := range docs {
			ids = append(ids, d["_id"].(string))
		}
		want := []string{"b", "m", "q"}
		for i := range want {
			if ids[i] != want[i] {
				t.Errorf("scan ids = %v, want %v", ids, want)
				return
			}
		}
	})
}

func TestReplicaReadSeesCommittedDoc(t *testing.T) {
	k, s, g := testStore(t, smallConfig())
	run(t, k, func(f *sim.Fiber) {
		if err := s.Insert(f, "users", Doc{"_id": "u9", "v": "replica-visible"}); err != nil {
			t.Errorf("insert: %v", err)
			return
		}
		for i := 0; i < g.GroupSize(); i++ {
			mem := g.ReplicaNIC(i).Memory()
			reader := func(off, n int) ([]byte, error) {
				buf := make([]byte, n)
				err := mem.Read(off, buf)
				return buf, err
			}
			doc, err := s.ReadReplica(f, i, reader, "users", "u9")
			if err != nil {
				t.Errorf("replica %d read: %v", i, err)
				return
			}
			if doc["v"] != "replica-visible" {
				t.Errorf("replica %d doc = %v", i, doc)
			}
		}
		n, _ := s.Txn().Readers()
		if n != 0 {
			t.Errorf("reader count leaked: %d", n)
		}
	})
}

func TestDocsAreDurable(t *testing.T) {
	k, s, g := testStore(t, smallConfig())
	run(t, k, func(f *sim.Fiber) {
		if err := s.Insert(f, "c", Doc{"_id": "p1", "v": "persist"}); err != nil {
			t.Errorf("insert: %v", err)
		}
	})
	// Crash every replica: the committed (executed) document must be in
	// each one's durable data region.
	for i := 0; i < g.GroupSize(); i++ {
		mem := g.ReplicaNIC(i).Memory()
		mem.Crash()
		off := s.Txn().DataOff() // doc p1 went to slot 0
		img := make([]byte, s.cfg.SlotSize)
		_ = mem.Read(off, img)
		payload, _, ok := decodeSlot(img)
		if !ok {
			t.Fatalf("replica %d lost committed doc", i)
		}
		if string(payload) == "" {
			t.Fatalf("replica %d empty payload", i)
		}
	}
}

func TestRecoverRebuildsDirectory(t *testing.T) {
	k, s, g := testStore(t, smallConfig())
	run(t, k, func(f *sim.Fiber) {
		for i := 0; i < 8; i++ {
			if err := s.Insert(f, "users", Doc{"_id": fmt.Sprintf("u%d", i), "n": float64(i)}); err != nil {
				t.Errorf("insert: %v", err)
				return
			}
		}
		if err := s.Delete(f, "users", "u3"); err != nil {
			t.Errorf("delete: %v", err)
			return
		}
		if err := s.Update(f, "users", "u5", Doc{"n": float64(55)}); err != nil {
			t.Errorf("update: %v", err)
		}
	})

	g.ClientNIC().Memory().Crash()
	run(t, k, func(f *sim.Fiber) {
		if err := s.Recover(f); err != nil {
			t.Errorf("recover: %v", err)
		}
	})
	if s.Count("users") != 7 {
		t.Fatalf("count after recovery = %d, want 7", s.Count("users"))
	}
	if _, err := s.FindID("users", "u3"); !errors.Is(err, ErrNotFound) {
		t.Fatal("deleted doc resurrected")
	}
	doc, err := s.FindID("users", "u5")
	if err != nil || doc["n"] != float64(55) {
		t.Fatalf("u5 after recovery = %v (%v)", doc, err)
	}
	// New inserts must keep working (free slots correctly identified).
	run(t, k, func(f *sim.Fiber) {
		if err := s.Insert(f, "users", Doc{"_id": "post-recovery"}); err != nil {
			t.Errorf("post-recovery insert: %v", err)
		}
	})
}

func TestOpenValidation(t *testing.T) {
	if _, err := Open(nil, Config{SlotSize: 4, DataSize: 100, LogSize: 100}); !errors.Is(err, ErrBadArgument) {
		t.Fatalf("tiny slot err = %v", err)
	}
	if _, err := Open(nil, Config{SlotSize: 512, DataSize: 100, LogSize: 100}); !errors.Is(err, ErrBadArgument) {
		t.Fatalf("tiny data err = %v", err)
	}
}

func TestLockFreeReplicaRead(t *testing.T) {
	k, s, g := testStore(t, smallConfig())
	run(t, k, func(f *sim.Fiber) {
		if err := s.Insert(f, "c", Doc{"_id": "lf1", "v": "lock-free"}); err != nil {
			t.Errorf("insert: %v", err)
			return
		}
		mem := g.ReplicaNIC(1).Memory()
		reader := func(off, n int) ([]byte, error) {
			buf := make([]byte, n)
			err := mem.Read(off, buf)
			return buf, err
		}
		doc, err := s.ReadReplicaLockFree(f, reader, "c", "lf1")
		if err != nil {
			t.Errorf("lock-free read: %v", err)
			return
		}
		if doc["v"] != "lock-free" {
			t.Errorf("doc = %v", doc)
		}
		// No read lock must have been taken.
		if n, _ := s.Txn().Readers(); n != 0 {
			t.Errorf("readers = %d, want 0", n)
		}
	})
}

func TestLockFreeReadRejectsTornSlot(t *testing.T) {
	k, s, g := testStore(t, smallConfig())
	run(t, k, func(f *sim.Fiber) {
		if err := s.Insert(f, "c", Doc{"_id": "torn", "v": "x"}); err != nil {
			t.Errorf("insert: %v", err)
			return
		}
		// Corrupt one payload byte on the replica (simulating a read that
		// raced a partial update).
		mem := g.ReplicaNIC(0).Memory()
		off := s.Txn().DataOff() // slot 0
		b := make([]byte, 1)
		_ = mem.Read(off+20, b)
		_ = mem.Write(off+20, []byte{b[0] ^ 0xFF})
		reader := func(off, n int) ([]byte, error) {
			buf := make([]byte, n)
			err := mem.Read(off, buf)
			return buf, err
		}
		if _, err := s.ReadReplicaLockFree(f, reader, "c", "torn"); !errors.Is(err, ErrTornRead) {
			t.Errorf("torn read err = %v, want ErrTornRead", err)
		}
	})
}
