// Package docstore is a MongoDB-like replicated document store (§5.2):
// JSON documents in collections, a journal (oplog) replicated with Append,
// transaction execution via ExecuteAndAdvance under the group write lock,
// and per-replica read locks so backups can serve consistent reads.
//
// The store runs over either replication backend (HyperLoop or
// Naive-RDMA) through the txn layer, mirroring the paper's front-end /
// back-end split: the front end (this package, on the client) marshals
// documents and drives the journal; the back ends are just NVM + NIC.
package docstore

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"

	"hyperloop/internal/sim"
	"hyperloop/internal/txn"
	"hyperloop/internal/wal"
)

// Slot framing in the data region. The payload CRC makes one-sided
// (lock-free) replica reads safe: a torn or concurrently-updated slot
// fails the check and the reader retries — the FaRM-style integrity-check
// read the paper's §5 refers to.
const (
	slotMagic      = 0x484C4443    // "HLDC"
	slotHeaderSize = 4 + 4 + 4 + 4 // magic, payload len, collection hash, payload crc
)

// Errors returned by the store.
var (
	ErrNotFound    = errors.New("docstore: document not found")
	ErrExists      = errors.New("docstore: document already exists")
	ErrTooLarge    = errors.New("docstore: document exceeds slot size")
	ErrNoSpace     = errors.New("docstore: data region full")
	ErrBadArgument = errors.New("docstore: bad argument")
)

// Doc is a JSON document. Every document carries a string "_id".
type Doc = map[string]any

// Config parameterizes a Store.
type Config struct {
	LogSize  int
	DataSize int
	// SlotSize is the fixed per-document slot in the data region.
	SlotSize int
	// LockToken identifies this writer in the group lock.
	LockToken uint64
}

// DefaultConfig sizes the store for the YCSB benchmarks.
func DefaultConfig() Config {
	return Config{
		LogSize:  256 * 1024,
		DataSize: 4 << 20,
		SlotSize: 2048,
	}
}

// MirrorSizeFor returns the group mirror size cfg requires.
func MirrorSizeFor(cfg Config) int { return txn.MirrorSizeFor(cfg.LogSize, cfg.DataSize) }

// Stats counts store activity.
type Stats struct {
	Inserts     int64
	Updates     int64
	Deletes     int64
	Finds       int64
	Scans       int64
	ReplicaGets int64
}

type slotRef struct {
	coll string
	id   string
}

// Store is the replicated document store.
type Store struct {
	st    *txn.Store
	cfg   Config
	slots int

	// directory: collection → id → slot index; plus sorted ids per
	// collection for scans and a free-slot list.
	dir    map[string]map[string]int
	sorted map[string][]string
	used   []bool
	refs   []slotRef
	stats  Stats
}

// Open builds a Store over a replication group.
func Open(r txn.Replicator, cfg Config) (*Store, error) {
	if cfg.SlotSize <= slotHeaderSize+2 {
		return nil, fmt.Errorf("%w: slot size too small", ErrBadArgument)
	}
	if cfg.DataSize < cfg.SlotSize {
		return nil, fmt.Errorf("%w: data region smaller than one slot", ErrBadArgument)
	}
	st, err := txn.New(r, txn.Config{
		LogSize: cfg.LogSize, DataSize: cfg.DataSize, LockToken: cfg.LockToken,
	})
	if err != nil {
		return nil, err
	}
	slots := cfg.DataSize / cfg.SlotSize
	return &Store{
		st:     st,
		cfg:    cfg,
		slots:  slots,
		dir:    make(map[string]map[string]int),
		sorted: make(map[string][]string),
		used:   make([]bool, slots),
		refs:   make([]slotRef, slots),
	}, nil
}

// Store exposes the underlying transaction store.
func (s *Store) Txn() *txn.Store { return s.st }

// Stats returns activity counters.
func (s *Store) Stats() Stats { return s.stats }

// Count returns the number of documents in a collection.
func (s *Store) Count(coll string) int { return len(s.dir[coll]) }

func collHash(coll string) uint32 {
	var h uint32 = 2166136261
	for i := 0; i < len(coll); i++ {
		h = (h ^ uint32(coll[i])) * 16777619
	}
	return h
}

func docID(doc Doc) (string, error) {
	v, ok := doc["_id"]
	if !ok {
		return "", fmt.Errorf("%w: document missing _id", ErrBadArgument)
	}
	id, ok := v.(string)
	if !ok || id == "" {
		return "", fmt.Errorf("%w: _id must be a non-empty string", ErrBadArgument)
	}
	return id, nil
}

func (s *Store) allocSlot() (int, error) {
	for i, u := range s.used {
		if !u {
			return i, nil
		}
	}
	return 0, ErrNoSpace
}

func (s *Store) slotOff(i int) int { return i * s.cfg.SlotSize }

// encodeSlot frames a document payload for its slot.
func (s *Store) encodeSlot(coll string, payload []byte) ([]byte, error) {
	if slotHeaderSize+len(payload) > s.cfg.SlotSize {
		return nil, fmt.Errorf("%w: %d bytes", ErrTooLarge, len(payload))
	}
	buf := make([]byte, slotHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(buf[0:], slotMagic)
	binary.LittleEndian.PutUint32(buf[4:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[8:], collHash(coll))
	binary.LittleEndian.PutUint32(buf[12:], crc32.ChecksumIEEE(payload))
	copy(buf[slotHeaderSize:], payload)
	return buf, nil
}

// decodeSlot parses one slot image; ok=false for a free slot or a slot
// whose payload fails its integrity check (torn write).
func decodeSlot(img []byte) (payload []byte, hash uint32, ok bool) {
	if len(img) < slotHeaderSize {
		return nil, 0, false
	}
	if binary.LittleEndian.Uint32(img[0:]) != slotMagic {
		return nil, 0, false
	}
	n := int(binary.LittleEndian.Uint32(img[4:]))
	if slotHeaderSize+n > len(img) {
		return nil, 0, false
	}
	payload = img[slotHeaderSize : slotHeaderSize+n]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(img[12:]) {
		return nil, 0, false
	}
	return payload, binary.LittleEndian.Uint32(img[8:]), true
}

// commit appends the journal record and executes it under the group write
// lock — the §5.2 transaction flow (wrLock … ExecuteAndAdvance … wrUnlock).
func (s *Store) commit(f *sim.Fiber, entries []wal.Entry) error {
	if _, err := s.st.Append(f, entries); err != nil {
		return err
	}
	return s.st.WithWrLock(f, func() error {
		_, err := s.st.ExecuteAll(f)
		return err
	})
}

func (s *Store) indexInsert(coll, id string, slot int) {
	if s.dir[coll] == nil {
		s.dir[coll] = make(map[string]int)
	}
	s.dir[coll][id] = slot
	ids := s.sorted[coll]
	pos := sort.SearchStrings(ids, id)
	ids = append(ids, "")
	copy(ids[pos+1:], ids[pos:])
	ids[pos] = id
	s.sorted[coll] = ids
	s.used[slot] = true
	s.refs[slot] = slotRef{coll: coll, id: id}
}

func (s *Store) indexDelete(coll, id string) {
	slot, ok := s.dir[coll][id]
	if !ok {
		return
	}
	delete(s.dir[coll], id)
	ids := s.sorted[coll]
	pos := sort.SearchStrings(ids, id)
	if pos < len(ids) && ids[pos] == id {
		s.sorted[coll] = append(ids[:pos], ids[pos+1:]...)
	}
	s.used[slot] = false
	s.refs[slot] = slotRef{}
}

// Insert adds a new document to coll.
func (s *Store) Insert(f *sim.Fiber, coll string, doc Doc) error {
	id, err := docID(doc)
	if err != nil {
		return err
	}
	if _, exists := s.dir[coll][id]; exists {
		return fmt.Errorf("%w: %s/%s", ErrExists, coll, id)
	}
	// Stamp the collection into the stored form so recovery can rebuild
	// the directory from slots alone.
	stored := make(Doc, len(doc)+1)
	for k, v := range doc {
		stored[k] = v
	}
	stored["_coll"] = coll
	payload, err := json.Marshal(stored)
	if err != nil {
		return fmt.Errorf("docstore: marshal: %w", err)
	}
	slot, err := s.allocSlot()
	if err != nil {
		return err
	}
	img, err := s.encodeSlot(coll, payload)
	if err != nil {
		return err
	}
	if err := s.commit(f, []wal.Entry{{Off: s.slotOff(slot), Data: img}}); err != nil {
		return err
	}
	s.indexInsert(coll, id, slot)
	s.stats.Inserts++
	return nil
}

// Update merges fields into the document with the given id.
func (s *Store) Update(f *sim.Fiber, coll, id string, fields Doc) error {
	slot, ok := s.dir[coll][id]
	if !ok {
		return fmt.Errorf("%w: %s/%s", ErrNotFound, coll, id)
	}
	doc, err := s.loadSlotDoc(slot)
	if err != nil {
		return err
	}
	for k, v := range fields {
		if k == "_id" {
			continue
		}
		doc[k] = v
	}
	payload, err := json.Marshal(doc)
	if err != nil {
		return fmt.Errorf("docstore: marshal: %w", err)
	}
	img, err := s.encodeSlot(coll, payload)
	if err != nil {
		return err
	}
	if err := s.commit(f, []wal.Entry{{Off: s.slotOff(slot), Data: img}}); err != nil {
		return err
	}
	s.stats.Updates++
	return nil
}

// Delete removes a document: the journal entry zeroes the slot header.
func (s *Store) Delete(f *sim.Fiber, coll, id string) error {
	slot, ok := s.dir[coll][id]
	if !ok {
		return fmt.Errorf("%w: %s/%s", ErrNotFound, coll, id)
	}
	zero := make([]byte, slotHeaderSize)
	if err := s.commit(f, []wal.Entry{{Off: s.slotOff(slot), Data: zero}}); err != nil {
		return err
	}
	s.indexDelete(coll, id)
	s.stats.Deletes++
	return nil
}

func (s *Store) loadSlotDoc(slot int) (Doc, error) {
	img, err := s.st.ReadData(s.slotOff(slot), s.cfg.SlotSize)
	if err != nil {
		return nil, err
	}
	payload, _, ok := decodeSlot(img)
	if !ok {
		return nil, fmt.Errorf("%w: slot %d empty", ErrNotFound, slot)
	}
	var doc Doc
	if err := json.Unmarshal(payload, &doc); err != nil {
		return nil, fmt.Errorf("docstore: unmarshal: %w", err)
	}
	return doc, nil
}

// FindID returns the document with the given id (strong read from the
// client's authoritative copy).
func (s *Store) FindID(coll, id string) (Doc, error) {
	slot, ok := s.dir[coll][id]
	if !ok {
		return nil, fmt.Errorf("%w: %s/%s", ErrNotFound, coll, id)
	}
	s.stats.Finds++
	return s.loadSlotDoc(slot)
}

// Scan returns up to max documents with id >= start, in id order.
func (s *Store) Scan(coll, start string, max int) ([]Doc, error) {
	ids := s.sorted[coll]
	pos := sort.SearchStrings(ids, start)
	var out []Doc
	for ; pos < len(ids) && len(out) < max; pos++ {
		doc, err := s.FindID(coll, ids[pos])
		if err != nil {
			return out, err
		}
		out = append(out, doc)
	}
	s.stats.Scans++
	return out, nil
}

// ReadReplica serves the document from replica i's copy under a read lock
// (§5: "read locks ... help all replicas simultaneously serve consistent
// reads"). replicaImg must be replica i's mirror image reader.
func (s *Store) ReadReplica(f *sim.Fiber, replica int, replicaImg func(off, n int) ([]byte, error), coll, id string) (Doc, error) {
	slot, ok := s.dir[coll][id]
	if !ok {
		return nil, fmt.Errorf("%w: %s/%s", ErrNotFound, coll, id)
	}
	if err := s.st.RdLock(f, replica); err != nil {
		return nil, err
	}
	defer func() { _ = s.st.RdUnlock(f, replica) }()
	off := s.st.DataOff() + s.slotOff(slot)
	img, err := replicaImg(off, s.cfg.SlotSize)
	if err != nil {
		return nil, err
	}
	payload, _, ok2 := decodeSlot(img)
	if !ok2 {
		return nil, fmt.Errorf("%w: replica slot empty", ErrNotFound)
	}
	var doc Doc
	if err := json.Unmarshal(payload, &doc); err != nil {
		return nil, fmt.Errorf("docstore: replica unmarshal: %w", err)
	}
	s.stats.ReplicaGets++
	return doc, nil
}

// Recover rebuilds the store after a crash: repair the journal, re-execute
// pending records, then rebuild the directory by scanning slots.
func (s *Store) Recover(f *sim.Fiber) error {
	if _, err := s.st.Recover(f); err != nil {
		return err
	}
	s.dir = make(map[string]map[string]int)
	s.sorted = make(map[string][]string)
	s.used = make([]bool, s.slots)
	s.refs = make([]slotRef, s.slots)
	collNames := make(map[uint32]string)
	// Collection names are recovered from documents' own payloads: we
	// remember hash→name as we parse.
	for i := 0; i < s.slots; i++ {
		img, err := s.st.ReadData(s.slotOff(i), s.cfg.SlotSize)
		if err != nil {
			return err
		}
		payload, hash, ok := decodeSlot(img)
		if !ok {
			continue
		}
		var doc Doc
		if err := json.Unmarshal(payload, &doc); err != nil {
			continue // torn slot content; skip
		}
		id, err := docID(doc)
		if err != nil {
			continue
		}
		coll := collNames[hash]
		if coll == "" {
			if c, ok := doc["_coll"].(string); ok {
				coll = c
			} else {
				coll = fmt.Sprintf("coll-%08x", hash)
			}
			collNames[hash] = coll
		}
		s.indexInsert(coll, id, i)
	}
	return nil
}

// ErrTornRead is returned when a lock-free replica read keeps observing a
// torn slot (concurrent update) after exhausting its retries.
var ErrTornRead = errors.New("docstore: torn lock-free read")

// ReadReplicaLockFree serves the document from a replica's copy WITHOUT a
// read lock, relying on the slot's integrity check to reject torn values
// and retrying briefly — the FaRM-style read path §5 contrasts with read
// locks. Higher read throughput, but only the replica being read
// participates and no lock is taken.
func (s *Store) ReadReplicaLockFree(f *sim.Fiber, replicaImg func(off, n int) ([]byte, error), coll, id string) (Doc, error) {
	slot, ok := s.dir[coll][id]
	if !ok {
		return nil, fmt.Errorf("%w: %s/%s", ErrNotFound, coll, id)
	}
	off := s.st.DataOff() + s.slotOff(slot)
	const retries = 8
	for attempt := 0; attempt < retries; attempt++ {
		img, err := replicaImg(off, s.cfg.SlotSize)
		if err != nil {
			return nil, err
		}
		payload, _, ok := decodeSlot(img)
		if !ok {
			// Torn or mid-update: back off one network RTT and retry.
			f.Sleep(2 * sim.Microsecond)
			continue
		}
		var doc Doc
		if err := json.Unmarshal(payload, &doc); err != nil {
			f.Sleep(2 * sim.Microsecond)
			continue
		}
		s.stats.ReplicaGets++
		return doc, nil
	}
	return nil, ErrTornRead
}
