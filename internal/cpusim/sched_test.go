package cpusim

import (
	"testing"

	"hyperloop/internal/sim"
)

func mustNew(t *testing.T, k *sim.Kernel, cfg Config) *Scheduler {
	t.Helper()
	s, err := New(k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestConfigValidation(t *testing.T) {
	k := sim.NewKernel(1)
	if _, err := New(k, Config{Cores: 0}); err == nil {
		t.Fatal("zero cores accepted")
	}
	if _, err := New(k, Config{Cores: 1}); err == nil {
		t.Fatal("zero granularity accepted")
	}
}

func TestIdleMachineRunsWorkQuickly(t *testing.T) {
	k := sim.NewKernel(1)
	s := mustNew(t, k, DefaultConfig(4))
	p := s.NewProc("worker")
	var doneAt sim.Time
	p.Submit(10*sim.Microsecond, func() { doneAt = k.Now() })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// ctx switch (5µs) + work (10µs) + dispatch overhead.
	if doneAt < sim.Time(10*sim.Microsecond) || doneAt > sim.Time(30*sim.Microsecond) {
		t.Fatalf("idle-machine completion at %v, want ≈15µs", doneAt)
	}
	if p.TotalCPU() != 10*sim.Microsecond {
		t.Fatalf("totalCPU = %v", p.TotalCPU())
	}
}

func TestWorkOrderWithinProc(t *testing.T) {
	k := sim.NewKernel(1)
	s := mustNew(t, k, DefaultConfig(1))
	p := s.NewProc("w")
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		p.Submit(sim.Microsecond, func() { order = append(order, i) })
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestContextSwitchesCounted(t *testing.T) {
	k := sim.NewKernel(1)
	s := mustNew(t, k, DefaultConfig(1))
	a, b := s.NewProc("a"), s.NewProc("b")
	for i := 0; i < 3; i++ {
		a.Submit(100*sim.Microsecond, nil)
		b.Submit(100*sim.Microsecond, nil)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if s.ContextSwitches() < 2 {
		t.Fatalf("ctx switches = %d, want ≥2", s.ContextSwitches())
	}
}

func TestLoadInflatesLatency(t *testing.T) {
	// The paper's Fig. 2 mechanism: same work, more co-located load →
	// higher completion latency and more context switches.
	measure := func(hogs int) (sim.Duration, int64) {
		k := sim.NewKernel(7)
		s := mustNew(t, k, DefaultConfig(2))
		s.AddHogs(hogs)
		p := s.NewProc("replica")
		var total sim.Duration
		const ops = 50
		done := 0
		var issue func()
		issue = func() {
			start := k.Now()
			p.Submit(5*sim.Microsecond, func() {
				total += k.Now().Sub(start)
				done++
				if done < ops {
					// Think time between ops.
					k.After(200*sim.Microsecond, issue)
				}
			})
		}
		issue()
		if err := k.RunUntil(sim.Time(2 * sim.Second)); err != nil {
			t.Fatal(err)
		}
		if done != ops {
			t.Fatalf("hogs=%d: completed %d/%d ops", hogs, done, ops)
		}
		return total / ops, s.ContextSwitches()
	}
	idleLat, _ := measure(0)
	loadLat, loadCtx := measure(20)
	if loadLat < 2*idleLat {
		t.Fatalf("load did not inflate latency: idle=%v loaded=%v", idleLat, loadLat)
	}
	if loadCtx == 0 {
		t.Fatal("no context switches under load")
	}
}

func TestMoreCoresReduceLatency(t *testing.T) {
	measure := func(cores int) sim.Duration {
		k := sim.NewKernel(11)
		s := mustNew(t, k, DefaultConfig(cores))
		s.AddNoise(32, 300*sim.Microsecond, 2*sim.Millisecond)
		p := s.NewProc("replica")
		var total sim.Duration
		const ops = 40
		done := 0
		var issue func()
		issue = func() {
			start := k.Now()
			p.Submit(5*sim.Microsecond, func() {
				total += k.Now().Sub(start)
				done++
				if done < ops {
					k.After(500*sim.Microsecond, issue)
				}
			})
		}
		issue()
		if err := k.RunUntil(sim.Time(3 * sim.Second)); err != nil {
			t.Fatal(err)
		}
		if done != ops {
			t.Fatalf("cores=%d: completed %d/%d", cores, done, ops)
		}
		return total / ops
	}
	few := measure(2)
	many := measure(16)
	if many >= few {
		t.Fatalf("more cores did not help: 2 cores=%v 16 cores=%v", few, many)
	}
}

func TestPinnedPollerHandlesImmediately(t *testing.T) {
	k := sim.NewKernel(1)
	s := mustNew(t, k, DefaultConfig(2))
	s.AddHogs(50) // heavy load must not affect the pinned poller
	p := s.NewProc("poller")
	p.Pin()
	if !p.Pinned() {
		t.Fatal("pin flag lost")
	}
	var doneAt sim.Time
	issueAt := sim.Time(10 * sim.Millisecond)
	k.At(issueAt, func() {
		p.Submit(2*sim.Microsecond, func() { doneAt = k.Now() })
	})
	if err := k.RunUntil(sim.Time(20 * sim.Millisecond)); err != nil {
		t.Fatal(err)
	}
	lat := doneAt.Sub(issueAt)
	if lat > 10*sim.Microsecond {
		t.Fatalf("pinned poller latency %v, want ≤10µs", lat)
	}
}

func TestHogsSaturateUtilization(t *testing.T) {
	k := sim.NewKernel(1)
	s := mustNew(t, k, DefaultConfig(4))
	s.AddHogs(8)
	if err := k.RunUntil(sim.Time(100 * sim.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if u := s.Utilization(); u < 0.95 {
		t.Fatalf("utilization = %.2f, want ≈1.0", u)
	}
}

func TestIdleUtilizationNearZero(t *testing.T) {
	k := sim.NewKernel(1)
	s := mustNew(t, k, DefaultConfig(4))
	p := s.NewProc("w")
	p.Submit(sim.Microsecond, nil)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	k.At(sim.Time(sim.Second), func() {})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if u := s.Utilization(); u > 0.01 {
		t.Fatalf("idle utilization = %.4f", u)
	}
}

func TestFairnessBetweenCompetingProcs(t *testing.T) {
	k := sim.NewKernel(1)
	s := mustNew(t, k, DefaultConfig(1))
	a, b := s.NewProc("a"), s.NewProc("b")
	a.SetRefill(func() sim.Duration { return 500 * sim.Microsecond })
	b.SetRefill(func() sim.Duration { return 500 * sim.Microsecond })
	if err := k.RunUntil(sim.Time(sim.Second)); err != nil {
		t.Fatal(err)
	}
	ra, rb := float64(a.TotalCPU()), float64(b.TotalCPU())
	if ra == 0 || rb == 0 {
		t.Fatal("a competitor starved")
	}
	ratio := ra / rb
	if ratio < 0.8 || ratio > 1.25 {
		t.Fatalf("unfair split: a=%v b=%v", a.TotalCPU(), b.TotalCPU())
	}
}

func TestSleeperNotStarvedByHogs(t *testing.T) {
	// A woken interactive proc must run well before a full round of hogs.
	k := sim.NewKernel(3)
	s := mustNew(t, k, DefaultConfig(1))
	s.AddHogs(10)
	p := s.NewProc("interactive")
	var worst sim.Duration
	done := 0
	var issue func()
	issue = func() {
		start := k.Now()
		p.Submit(sim.Microsecond, func() {
			if d := k.Now().Sub(start); d > worst {
				worst = d
			}
			done++
			if done < 20 {
				k.After(5*sim.Millisecond, issue)
			}
		})
	}
	k.After(50*sim.Millisecond, issue)
	if err := k.RunUntil(sim.Time(sim.Second)); err != nil {
		t.Fatal(err)
	}
	if done != 20 {
		t.Fatalf("completed %d/20", done)
	}
	// 10 hogs × min granularity each would be 7.5ms; wakeup placement
	// must beat a full round robin.
	if worst > 5*sim.Millisecond {
		t.Fatalf("worst wakeup latency %v, want <5ms", worst)
	}
}

func TestMeanWaitTracked(t *testing.T) {
	k := sim.NewKernel(1)
	s := mustNew(t, k, DefaultConfig(1))
	s.AddHogs(4)
	p := s.NewProc("w")
	p.Submit(sim.Microsecond, nil)
	if err := k.RunUntil(sim.Time(100 * sim.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if p.MeanWait() <= 0 {
		t.Fatal("wait time not tracked under load")
	}
}

func TestNoiseDeterministicAcrossRuns(t *testing.T) {
	run := func() (int64, sim.Duration) {
		k := sim.NewKernel(99)
		s := mustNew(t, k, DefaultConfig(4))
		s.AddNoise(20, 200*sim.Microsecond, sim.Millisecond)
		p := s.NewProc("x")
		var total sim.Duration
		for i := 0; i < 10; i++ {
			at := sim.Time(i) * sim.Time(10*sim.Millisecond)
			k.At(at, func() {
				start := k.Now()
				p.Submit(3*sim.Microsecond, func() { total += k.Now().Sub(start) })
			})
		}
		if err := k.RunUntil(sim.Time(200 * sim.Millisecond)); err != nil {
			t.Fatal(err)
		}
		return s.ContextSwitches(), total
	}
	c1, t1 := run()
	c2, t2 := run()
	if c1 != c2 || t1 != t2 {
		t.Fatalf("nondeterministic: (%d,%v) vs (%d,%v)", c1, t1, c2, t2)
	}
}
