// Package cpusim models a multi-tenant server's CPU scheduler.
//
// The HyperLoop paper's root-cause analysis (§2.2) is that replica
// processes in multi-tenant storage servers suffer scheduling delay and
// context switches because 100s of tenant processes share a few cores.
// This package reproduces that mechanism with a CFS-like scheduler: a
// global run queue ordered by virtual runtime, minimum-granularity time
// slices, wakeup placement, and an explicit context-switch cost. Replica
// handlers in the Naive-RDMA baseline run as processes here; HyperLoop's
// NIC datapath never enters this scheduler — which is the whole point.
package cpusim

import (
	"container/heap"
	"fmt"

	"hyperloop/internal/sim"
)

// Config parameterizes the scheduler.
type Config struct {
	// Cores is the number of CPU cores.
	Cores int
	// CtxSwitch is the direct cost of switching a core between processes.
	CtxSwitch sim.Duration
	// MinGranularity is the shortest time slice (CFS sched_min_granularity).
	MinGranularity sim.Duration
	// TargetLatency is the scheduling period target (CFS sched_latency).
	TargetLatency sim.Duration
	// PollInterval is the event pickup delay for pinned polling processes.
	PollInterval sim.Duration
	// TickQuantum models timer-tick-granularity non-preemption (HZ):
	// once dispatched, CPU-bound work may hold a core for up to a tick
	// even when the fair-share slice is shorter. Woken interactive
	// processes therefore wait for a running batch task's tick to end —
	// the dominant source of multi-tenant tail latency (§2.2).
	TickQuantum sim.Duration
}

// DefaultConfig returns Linux-like defaults (DESIGN.md calibration).
func DefaultConfig(cores int) Config {
	return Config{
		Cores:          cores,
		CtxSwitch:      5 * sim.Microsecond,
		MinGranularity: 750 * sim.Microsecond,
		TargetLatency:  6 * sim.Millisecond,
		PollInterval:   1 * sim.Microsecond,
		TickQuantum:    4 * sim.Millisecond, // HZ=250, kernel 3.13 era
	}
}

// workItem is a unit of CPU work; fn (optional) runs when the item's CPU
// time has been fully consumed.
type workItem struct {
	cpu sim.Duration
	fn  func()
}

// Proc is a schedulable process.
type Proc struct {
	name  string
	s     *Scheduler
	seq   uint64
	index int // heap index; -1 when not queued

	vruntime  sim.Duration
	queue     []workItem
	running   bool
	pinned    bool
	busyUntil sim.Time            // pinned pollers serialize their dedicated core
	refill    func() sim.Duration // auto work for hogs/pollers; nil otherwise

	wakePenalty     sim.Duration
	wakePenaltyProb float64

	totalCPU sim.Duration
	waits    int64
	waitTime sim.Duration
	wokeAt   sim.Time
}

// SetWakePenalty models hierarchical (per-tenant cgroup share) fairness:
// with probability prob, a woken process of a heavily co-located tenant is
// placed up to max behind the run-queue head instead of receiving the
// machine-wide sleeper bonus (its tenant group recently used its share).
// With an empty queue this has no effect; under load it makes the process
// wait behind a fair slice of the backlog — the multi-tenant scheduling
// penalty of §2.2.
func (p *Proc) SetWakePenalty(prob float64, max sim.Duration) {
	p.wakePenaltyProb = prob
	p.wakePenalty = max
}

// Name returns the process name.
func (p *Proc) Name() string { return p.name }

// TotalCPU returns the CPU time this process has consumed.
func (p *Proc) TotalCPU() sim.Duration { return p.totalCPU }

// MeanWait returns the average runnable→running delay observed.
func (p *Proc) MeanWait() sim.Duration {
	if p.waits == 0 {
		return 0
	}
	return p.waitTime / sim.Duration(p.waits)
}

type procHeap []*Proc

func (h procHeap) Len() int { return len(h) }
func (h procHeap) Less(i, j int) bool {
	if h[i].vruntime != h[j].vruntime {
		return h[i].vruntime < h[j].vruntime
	}
	return h[i].seq < h[j].seq
}
func (h procHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *procHeap) Push(x any) {
	p, ok := x.(*Proc)
	if !ok {
		return
	}
	p.index = len(*h)
	*h = append(*h, p)
}
func (h *procHeap) Pop() any {
	old := *h
	n := len(old)
	p := old[n-1]
	old[n-1] = nil
	p.index = -1
	*h = old[:n-1]
	return p
}

type core struct {
	id   int
	cur  *Proc
	last *Proc
	busy sim.Duration

	ran    sim.Duration // CPU time granted to cur in the current slice
	finish func()       // cached finishSlice callback (one outstanding per core)
}

// Scheduler is the CFS-like multi-core scheduler.
type Scheduler struct {
	k     *sim.Kernel
	cfg   Config
	rng   *sim.RNG
	cores []*core
	runq  procHeap
	seq   uint64

	clockV       sim.Duration // monotone floor for wakeup placement
	ctxSwitches  int64
	wakes        int64 // runnable transitions (see Wakes)
	started      sim.Time
	pinnedCores  int
	dispatchPend bool
	dispatchFn   func() // cached dispatch callback
}

// New creates a scheduler driven by kernel k.
func New(k *sim.Kernel, cfg Config) (*Scheduler, error) {
	if cfg.Cores <= 0 {
		return nil, fmt.Errorf("cpusim: need at least 1 core, got %d", cfg.Cores)
	}
	if cfg.MinGranularity <= 0 || cfg.TargetLatency <= 0 {
		return nil, fmt.Errorf("cpusim: granularity and target latency must be positive")
	}
	s := &Scheduler{
		k:       k,
		cfg:     cfg,
		rng:     k.RNG().Fork(),
		started: k.Now(),
	}
	for i := 0; i < cfg.Cores; i++ {
		c := &core{id: i}
		c.finish = func() { s.finishSlice(c) }
		s.cores = append(s.cores, c)
	}
	s.dispatchFn = func() {
		s.dispatchPend = false
		s.dispatch()
	}
	return s, nil
}

// NewProc registers a schedulable process.
func (s *Scheduler) NewProc(name string) *Proc {
	s.seq++
	return &Proc{name: name, s: s, seq: s.seq, index: -1, vruntime: s.clockV}
}

// Cores returns the configured core count.
func (s *Scheduler) Cores() int { return s.cfg.Cores }

// ContextSwitches returns the cumulative context-switch count.
func (s *Scheduler) ContextSwitches() int64 { return s.ctxSwitches }

// Wakes returns how many times a process became runnable (sleep→runnable
// transitions). With batched CQ draining a handler wakes its process once
// per drained batch rather than once per completion, so this counter is
// the cheapest way to observe the batching in tests and benchmarks.
func (s *Scheduler) Wakes() int64 { return s.wakes }

// RunnableCount returns the number of queued (not running) processes.
func (s *Scheduler) RunnableCount() int { return len(s.runq) }

// Utilization returns the busy fraction of unpinned cores since creation;
// pinned (polling) cores are reported separately as always-busy.
func (s *Scheduler) Utilization() float64 {
	elapsed := s.k.Now().Sub(s.started)
	if elapsed <= 0 {
		return 0
	}
	var busy sim.Duration
	n := 0
	for _, c := range s.cores {
		busy += c.busy
		n++
	}
	return float64(busy) / (float64(elapsed) * float64(n))
}

// Submit queues cpu time of work for p; fn (may be nil) runs once the work
// has been executed on a core. If p was sleeping it becomes runnable.
func (p *Proc) Submit(cpu sim.Duration, fn func()) {
	if cpu < 0 {
		cpu = 0
	}
	if p.pinned {
		// A pinned poller picks the event up within a poll interval and
		// handles it on its dedicated core — serially: the core is a real
		// resource even when dedicated.
		start := p.s.k.Now().Add(p.s.cfg.PollInterval)
		if p.busyUntil > start {
			start = p.busyUntil
		}
		done := start.Add(cpu)
		p.busyUntil = done
		p.s.k.At(done, func() {
			p.totalCPU += cpu
			if fn != nil {
				fn()
			}
		})
		return
	}
	p.queue = append(p.queue, workItem{cpu: cpu, fn: fn})
	p.s.wake(p)
}

// SetRefill installs an auto-refill source: when the queue drains the
// process immediately gains another chunk of CPU work (a hog or poller).
func (p *Proc) SetRefill(chunk func() sim.Duration) {
	p.refill = chunk
	p.s.wake(p)
}

// Pin dedicates a core to p (busy polling). The pinned core leaves the
// shared pool; submitted work is handled within a poll interval.
func (p *Proc) Pin() {
	p.pinned = true
	p.s.pinnedCores++
}

// Pinned reports whether the process busy-polls on a dedicated core.
func (p *Proc) Pinned() bool { return p.pinned }

// pendingCPU returns queued CPU work, pulling from refill if empty.
func (p *Proc) pendingCPU() sim.Duration {
	if len(p.queue) == 0 && p.refill != nil {
		p.queue = append(p.queue, workItem{cpu: p.refill()})
	}
	var d sim.Duration
	for _, w := range p.queue {
		d += w.cpu
	}
	return d
}

// wake makes p runnable with CFS-style placement: a sleeper resumes near
// the front (bounded bonus) so interactive work preempts batch hogs soon,
// but cannot starve them.
func (s *Scheduler) wake(p *Proc) {
	if p.running || p.index >= 0 || p.pinned {
		return
	}
	if p.pendingCPU() <= 0 {
		return
	}
	min := p.vruntime
	floor := s.clockV - s.cfg.TargetLatency/2
	if p.wakePenalty > 0 && s.rng.Bernoulli(p.wakePenaltyProb) {
		floor = s.clockV + sim.Duration(s.rng.Int63n(int64(p.wakePenalty)))
	}
	if floor > min {
		min = floor
	}
	p.vruntime = min
	p.wokeAt = s.k.Now()
	s.wakes++
	heap.Push(&s.runq, p)
	s.scheduleDispatch()
}

func (s *Scheduler) scheduleDispatch() {
	if s.dispatchPend {
		return
	}
	s.dispatchPend = true
	s.k.AfterFunc(0, s.dispatchFn, nil)
}

// slice returns the per-dispatch time slice under current load.
func (s *Scheduler) slice() sim.Duration {
	nr := len(s.runq)
	for _, c := range s.cores {
		if c.cur != nil {
			nr++
		}
	}
	if nr == 0 {
		nr = 1
	}
	d := s.cfg.TargetLatency * sim.Duration(s.cfg.Cores) / sim.Duration(nr)
	if d < s.cfg.MinGranularity {
		d = s.cfg.MinGranularity
	}
	return d
}

func (s *Scheduler) dispatch() {
	for _, c := range s.cores {
		if c.cur != nil || len(s.runq) == 0 {
			continue
		}
		p, ok := heap.Pop(&s.runq).(*Proc)
		if !ok {
			continue
		}
		s.startOn(c, p)
	}
}

func (s *Scheduler) startOn(c *core, p *Proc) {
	c.cur = p
	p.running = true
	p.waits++
	p.waitTime += s.k.Now().Sub(p.wokeAt)

	var ctx sim.Duration
	if c.last != p {
		ctx = s.cfg.CtxSwitch
		s.ctxSwitches++
	}
	limit := s.slice()
	if limit < s.cfg.TickQuantum {
		limit = s.cfg.TickQuantum
	}
	run := p.pendingCPU()
	if run > limit {
		run = limit
	}
	total := ctx + run
	c.busy += total
	c.ran = run
	s.k.AfterFunc(total, c.finish, nil)
}

func (s *Scheduler) finishSlice(c *core) {
	p, ran := c.cur, c.ran
	p.vruntime += ran
	p.totalCPU += ran
	p.running = false
	c.cur = nil
	c.last = p
	if p.vruntime-s.cfg.TargetLatency > s.clockV {
		s.clockV = p.vruntime - s.cfg.TargetLatency
	}

	// Consume work items covered by this slice; collect their callbacks.
	var done []func()
	left := ran
	for len(p.queue) > 0 && left > 0 {
		w := &p.queue[0]
		if w.cpu <= left {
			left -= w.cpu
			if w.fn != nil {
				done = append(done, w.fn)
			}
			p.queue = append(p.queue[:0], p.queue[1:]...)
		} else {
			w.cpu -= left
			left = 0
		}
	}

	// Re-enqueue before callbacks so submissions from callbacks see a
	// consistent state.
	if p.pendingCPU() > 0 {
		p.wokeAt = s.k.Now()
		heap.Push(&s.runq, p)
	}
	for _, fn := range done {
		fn()
	}
	s.scheduleDispatch()
}

// AddHogs adds n CPU-bound processes (stress-ng style) that stay runnable
// forever, keeping the machine saturated.
func (s *Scheduler) AddHogs(n int) {
	chunk := s.cfg.TickQuantum
	if chunk <= 0 {
		chunk = s.cfg.MinGranularity
	}
	for i := 0; i < n; i++ {
		p := s.NewProc(fmt.Sprintf("hog-%d", i))
		p.SetRefill(func() sim.Duration { return chunk })
	}
}

// AddNoise adds n tenant-like processes alternating exponential idle and
// CPU bursts: the co-located replica processes of a multi-tenant server.
// They create the bursty queueing that inflates tail latency.
func (s *Scheduler) AddNoise(n int, burst, idle sim.Duration) {
	for i := 0; i < n; i++ {
		p := s.NewProc(fmt.Sprintf("noise-%d", i))
		var loop func()
		loop = func() {
			b := sim.Duration(s.rng.Exp(float64(burst)))
			p.Submit(b, func() {
				s.k.After(sim.Duration(s.rng.Exp(float64(idle))), loop)
			})
		}
		// Stagger starts to avoid synchronized bursts.
		s.k.After(s.rng.DurationRange(0, idle+1), loop)
	}
}

// AddStorms models periodic batch daemons (compaction, log rotation, page
// flushers): every ~interval, each of n daemon processes receives a burst
// of CPU work simultaneously. A replica handler woken during a storm
// queues behind the whole cohort — the dominant source of multi-ms tail
// latency on saturated multi-tenant boxes.
func (s *Scheduler) AddStorms(n int, interval, burst sim.Duration) {
	procs := make([]*Proc, n)
	for i := range procs {
		procs[i] = s.NewProc(fmt.Sprintf("daemon-%d", i))
	}
	var loop func()
	loop = func() {
		for _, p := range procs {
			p.Submit(sim.Duration(s.rng.Exp(float64(burst))), nil)
		}
		s.k.After(sim.Duration(s.rng.Exp(float64(interval))), loop)
	}
	s.k.After(s.rng.DurationRange(0, interval+1), loop)
}
