// Package cpusim models a multi-tenant server's CPU scheduler.
//
// The HyperLoop paper's root-cause analysis (§2.2) is that replica
// processes in multi-tenant storage servers suffer scheduling delay and
// context switches because 100s of tenant processes share a few cores.
// This package reproduces that mechanism with a CFS-like scheduler: a
// global run queue ordered by virtual runtime, minimum-granularity time
// slices, wakeup placement, and an explicit context-switch cost. Replica
// handlers in the Naive-RDMA baseline run as processes here; HyperLoop's
// NIC datapath never enters this scheduler — which is the whole point.
package cpusim

import (
	"fmt"
	"math/bits"

	"hyperloop/internal/ring"
	"hyperloop/internal/sim"
)

// Config parameterizes the scheduler.
type Config struct {
	// Cores is the number of CPU cores.
	Cores int
	// CtxSwitch is the direct cost of switching a core between processes.
	CtxSwitch sim.Duration
	// MinGranularity is the shortest time slice (CFS sched_min_granularity).
	MinGranularity sim.Duration
	// TargetLatency is the scheduling period target (CFS sched_latency).
	TargetLatency sim.Duration
	// PollInterval is the event pickup delay for pinned polling processes.
	PollInterval sim.Duration
	// TickQuantum models timer-tick-granularity non-preemption (HZ):
	// once dispatched, CPU-bound work may hold a core for up to a tick
	// even when the fair-share slice is shorter. Woken interactive
	// processes therefore wait for a running batch task's tick to end —
	// the dominant source of multi-tenant tail latency (§2.2).
	TickQuantum sim.Duration
}

// DefaultConfig returns Linux-like defaults (DESIGN.md calibration).
func DefaultConfig(cores int) Config {
	return Config{
		Cores:          cores,
		CtxSwitch:      5 * sim.Microsecond,
		MinGranularity: 750 * sim.Microsecond,
		TargetLatency:  6 * sim.Millisecond,
		PollInterval:   1 * sim.Microsecond,
		TickQuantum:    4 * sim.Millisecond, // HZ=250, kernel 3.13 era
	}
}

// workItem is a unit of CPU work; fn (optional) runs when the item's CPU
// time has been fully consumed.
type workItem struct {
	cpu sim.Duration
	fn  func()
}

// Proc is a schedulable process.
type Proc struct {
	name  string
	s     *Scheduler
	seq   uint64
	index int // heap index; -1 when not queued

	vruntime  sim.Duration
	queue     []workItem
	qhead     int          // index of the oldest unconsumed work item
	qsum      sim.Duration // cached sum of unconsumed work
	running   bool
	pinned    bool
	busyUntil sim.Time            // pinned pollers serialize their dedicated core
	refill    func() sim.Duration // auto work for hogs/pollers; nil otherwise

	// Pinned-path completion FIFO: submissions on a dedicated core finish
	// strictly in submission order (busyUntil is monotone), so one cached
	// fire callback popping this ring replaces a closure per Submit.
	pinq      ring.Ring[workItem]
	pinFireFn func()

	wakePenalty     sim.Duration
	wakePenaltyProb float64

	totalCPU sim.Duration
	waits    int64
	waitTime sim.Duration
	wokeAt   sim.Time
}

// SetWakePenalty models hierarchical (per-tenant cgroup share) fairness:
// with probability prob, a woken process of a heavily co-located tenant is
// placed up to max behind the run-queue head instead of receiving the
// machine-wide sleeper bonus (its tenant group recently used its share).
// With an empty queue this has no effect; under load it makes the process
// wait behind a fair slice of the backlog — the multi-tenant scheduling
// penalty of §2.2.
func (p *Proc) SetWakePenalty(prob float64, max sim.Duration) {
	p.wakePenaltyProb = prob
	p.wakePenalty = max
}

// Name returns the process name.
func (p *Proc) Name() string { return p.name }

// TotalCPU returns the CPU time this process has consumed.
func (p *Proc) TotalCPU() sim.Duration { return p.totalCPU }

// MeanWait returns the average runnable→running delay observed.
func (p *Proc) MeanWait() sim.Duration {
	if p.waits == 0 {
		return 0
	}
	return p.waitTime / sim.Duration(p.waits)
}

// runqEnt is one run-queue entry: the (vruntime, seq) ordering key packed
// into two words (sign-flipped high word so unsigned comparison matches
// signed vruntime order) with the process pointer alongside. The key is
// snapshotted at push; vruntime only changes while a process is off the
// queue, so the snapshot never goes stale.
type runqEnt struct {
	hi, lo uint64
	p      *Proc
}

// vkLess compares packed run-queue keys as one 128-bit unsigned value —
// a single borrow chain instead of a two-field branch, mirroring the sim
// event heap. (vruntime, seq) is a strict total order, so any correct heap
// pops the same sequence: replacing container/heap changes no results.
func vkLess(ahi, alo, bhi, blo uint64) bool {
	_, borrow := bits.Sub64(alo, blo, 0)
	_, borrow = bits.Sub64(ahi, bhi, borrow)
	return borrow != 0
}

// procHeap is a concrete 4-ary min-heap over runqEnt — no interface
// boxing, hole-based sifts, and the four children of a node share a cache
// line. container/heap's Less/Swap/Push/Pop virtual calls were among the
// hottest frames in the dispatch path.
type procHeap []runqEnt

func (h procHeap) siftUp(i int) {
	e := h[i]
	for i > 0 {
		p := (i - 1) >> 2
		if !vkLess(e.hi, e.lo, h[p].hi, h[p].lo) {
			break
		}
		h[i] = h[p]
		h[i].p.index = i
		i = p
	}
	h[i] = e
	e.p.index = i
}

func (h procHeap) siftDown(i int) {
	n := len(h)
	e := h[i]
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		m := c
		mhi, mlo := h[c].hi, h[c].lo
		hi4 := c + 4
		if hi4 > n {
			hi4 = n
		}
		for j := c + 1; j < hi4; j++ {
			if vkLess(h[j].hi, h[j].lo, mhi, mlo) {
				m, mhi, mlo = j, h[j].hi, h[j].lo
			}
		}
		if !vkLess(mhi, mlo, e.hi, e.lo) {
			break
		}
		h[i] = h[m]
		h[i].p.index = i
		i = m
	}
	h[i] = e
	e.p.index = i
}

func (s *Scheduler) runqPush(p *Proc) {
	p.index = len(s.runq)
	s.runq = append(s.runq, runqEnt{hi: uint64(p.vruntime) ^ (1 << 63), lo: p.seq, p: p})
	s.runq.siftUp(len(s.runq) - 1)
}

func (s *Scheduler) runqPop() *Proc {
	h := s.runq
	p := h[0].p
	n := len(h) - 1
	if n > 0 {
		h[0] = h[n]
		h[0].p.index = 0
	}
	h[n] = runqEnt{}
	s.runq = h[:n]
	if n > 1 {
		s.runq.siftDown(0)
	}
	p.index = -1
	return p
}

type core struct {
	id   int
	cur  *Proc
	last *Proc
	busy sim.Duration

	ran    sim.Duration // CPU time granted to cur in the current slice
	finish func()       // cached finishSlice callback (one outstanding per core)
}

// Scheduler is the CFS-like multi-core scheduler.
type Scheduler struct {
	k     *sim.Kernel
	cfg   Config
	rng   *sim.RNG
	cores []*core
	runq  procHeap
	seq   uint64

	clockV       sim.Duration // monotone floor for wakeup placement
	ctxSwitches  int64
	wakes        int64 // runnable transitions (see Wakes)
	started      sim.Time
	pinnedCores  int
	dispatchPend bool
	dispatchFn   func()   // cached dispatch callback
	done         []func() // finishSlice's reusable callback scratch
}

// New creates a scheduler driven by kernel k.
func New(k *sim.Kernel, cfg Config) (*Scheduler, error) {
	if cfg.Cores <= 0 {
		return nil, fmt.Errorf("cpusim: need at least 1 core, got %d", cfg.Cores)
	}
	if cfg.MinGranularity <= 0 || cfg.TargetLatency <= 0 {
		return nil, fmt.Errorf("cpusim: granularity and target latency must be positive")
	}
	s := &Scheduler{
		k:       k,
		cfg:     cfg,
		rng:     k.RNG().Fork(),
		started: k.Now(),
	}
	for i := 0; i < cfg.Cores; i++ {
		c := &core{id: i}
		c.finish = func() { s.finishSlice(c) }
		s.cores = append(s.cores, c)
	}
	s.dispatchFn = func() {
		s.dispatchPend = false
		s.dispatch()
	}
	return s, nil
}

// NewProc registers a schedulable process.
func (s *Scheduler) NewProc(name string) *Proc {
	s.seq++
	return &Proc{name: name, s: s, seq: s.seq, index: -1, vruntime: s.clockV}
}

// Cores returns the configured core count.
func (s *Scheduler) Cores() int { return s.cfg.Cores }

// ContextSwitches returns the cumulative context-switch count.
func (s *Scheduler) ContextSwitches() int64 { return s.ctxSwitches }

// Wakes returns how many times a process became runnable (sleep→runnable
// transitions). With batched CQ draining a handler wakes its process once
// per drained batch rather than once per completion, so this counter is
// the cheapest way to observe the batching in tests and benchmarks.
func (s *Scheduler) Wakes() int64 { return s.wakes }

// RunnableCount returns the number of queued (not running) processes.
func (s *Scheduler) RunnableCount() int { return len(s.runq) }

// Utilization returns the busy fraction of unpinned cores since creation;
// pinned (polling) cores are reported separately as always-busy.
func (s *Scheduler) Utilization() float64 {
	elapsed := s.k.Now().Sub(s.started)
	if elapsed <= 0 {
		return 0
	}
	var busy sim.Duration
	n := 0
	for _, c := range s.cores {
		busy += c.busy
		n++
	}
	return float64(busy) / (float64(elapsed) * float64(n))
}

// Submit queues cpu time of work for p; fn (may be nil) runs once the work
// has been executed on a core. If p was sleeping it becomes runnable.
func (p *Proc) Submit(cpu sim.Duration, fn func()) {
	if cpu < 0 {
		cpu = 0
	}
	if p.pinned {
		// A pinned poller picks the event up within a poll interval and
		// handles it on its dedicated core — serially: the core is a real
		// resource even when dedicated.
		start := p.s.k.Now().Add(p.s.cfg.PollInterval)
		if p.busyUntil > start {
			start = p.busyUntil
		}
		done := start.Add(cpu)
		p.busyUntil = done
		p.pinq.PushBack(workItem{cpu: cpu, fn: fn})
		p.s.k.AtFunc(done, p.pinFireFn, nil)
		return
	}
	p.queue = append(p.queue, workItem{cpu: cpu, fn: fn})
	p.qsum += cpu
	p.s.wake(p)
}

// SetRefill installs an auto-refill source: when the queue drains the
// process immediately gains another chunk of CPU work (a hog or poller).
func (p *Proc) SetRefill(chunk func() sim.Duration) {
	p.refill = chunk
	p.s.wake(p)
}

// Pin dedicates a core to p (busy polling). The pinned core leaves the
// shared pool; submitted work is handled within a poll interval.
func (p *Proc) Pin() {
	p.pinned = true
	p.s.pinnedCores++
	if p.pinFireFn == nil {
		p.pinFireFn = func() {
			w := p.pinq.PopFront()
			p.totalCPU += w.cpu
			if w.fn != nil {
				w.fn()
			}
		}
	}
}

// Pinned reports whether the process busy-polls on a dedicated core.
func (p *Proc) Pinned() bool { return p.pinned }

// pendingCPU returns queued CPU work (a cached running sum), pulling from
// refill if empty.
func (p *Proc) pendingCPU() sim.Duration {
	if p.qhead == len(p.queue) && p.refill != nil {
		chunk := p.refill()
		p.queue = append(p.queue, workItem{cpu: chunk})
		p.qsum += chunk
	}
	return p.qsum
}

// wake makes p runnable with CFS-style placement: a sleeper resumes near
// the front (bounded bonus) so interactive work preempts batch hogs soon,
// but cannot starve them.
func (s *Scheduler) wake(p *Proc) {
	if p.running || p.index >= 0 || p.pinned {
		return
	}
	if p.pendingCPU() <= 0 {
		return
	}
	min := p.vruntime
	floor := s.clockV - s.cfg.TargetLatency/2
	if p.wakePenalty > 0 && s.rng.Bernoulli(p.wakePenaltyProb) {
		floor = s.clockV + sim.Duration(s.rng.Int63n(int64(p.wakePenalty)))
	}
	if floor > min {
		min = floor
	}
	p.vruntime = min
	p.wokeAt = s.k.Now()
	s.wakes++
	s.runqPush(p)
	s.scheduleDispatch()
}

func (s *Scheduler) scheduleDispatch() {
	if s.dispatchPend {
		return
	}
	s.dispatchPend = true
	s.k.AfterFunc(0, s.dispatchFn, nil)
}

// slice returns the per-dispatch time slice under current load.
func (s *Scheduler) slice() sim.Duration {
	nr := len(s.runq)
	for _, c := range s.cores {
		if c.cur != nil {
			nr++
		}
	}
	if nr == 0 {
		nr = 1
	}
	d := s.cfg.TargetLatency * sim.Duration(s.cfg.Cores) / sim.Duration(nr)
	if d < s.cfg.MinGranularity {
		d = s.cfg.MinGranularity
	}
	return d
}

func (s *Scheduler) dispatch() {
	for _, c := range s.cores {
		if c.cur != nil || len(s.runq) == 0 {
			continue
		}
		s.startOn(c, s.runqPop())
	}
}

func (s *Scheduler) startOn(c *core, p *Proc) {
	c.cur = p
	p.running = true
	p.waits++
	p.waitTime += s.k.Now().Sub(p.wokeAt)

	var ctx sim.Duration
	if c.last != p {
		ctx = s.cfg.CtxSwitch
		s.ctxSwitches++
	}
	limit := s.slice()
	if limit < s.cfg.TickQuantum {
		limit = s.cfg.TickQuantum
	}
	run := p.pendingCPU()
	if run > limit {
		run = limit
	}
	total := ctx + run
	c.busy += total
	c.ran = run
	s.k.AfterFunc(total, c.finish, nil)
}

func (s *Scheduler) finishSlice(c *core) {
	p, ran := c.cur, c.ran
	p.vruntime += ran
	p.totalCPU += ran
	p.running = false
	c.cur = nil
	c.last = p
	if p.vruntime-s.cfg.TargetLatency > s.clockV {
		s.clockV = p.vruntime - s.cfg.TargetLatency
	}

	// Consume work items covered by this slice; collect their callbacks.
	// The queue pops by advancing a head index (O(1) per item, no shift)
	// and the callback list reuses a per-scheduler scratch slice.
	done := s.done[:0]
	s.done = nil // taken; a re-entrant finishSlice allocates its own
	left := ran
	for p.qhead < len(p.queue) && left > 0 {
		w := &p.queue[p.qhead]
		if w.cpu <= left {
			left -= w.cpu
			p.qsum -= w.cpu
			if w.fn != nil {
				done = append(done, w.fn)
			}
			*w = workItem{}
			p.qhead++
		} else {
			w.cpu -= left
			p.qsum -= left
			left = 0
		}
	}
	if p.qhead == len(p.queue) {
		p.queue = p.queue[:0]
		p.qhead = 0
	}

	// Re-enqueue before callbacks so submissions from callbacks see a
	// consistent state.
	if p.pendingCPU() > 0 {
		p.wokeAt = s.k.Now()
		s.runqPush(p)
	}
	for i, fn := range done {
		fn()
		done[i] = nil
	}
	s.done = done[:0]
	s.scheduleDispatch()
}

// AddHogs adds n CPU-bound processes (stress-ng style) that stay runnable
// forever, keeping the machine saturated.
func (s *Scheduler) AddHogs(n int) {
	chunk := s.cfg.TickQuantum
	if chunk <= 0 {
		chunk = s.cfg.MinGranularity
	}
	for i := 0; i < n; i++ {
		p := s.NewProc(fmt.Sprintf("hog-%d", i))
		p.SetRefill(func() sim.Duration { return chunk })
	}
}

// AddNoise adds n tenant-like processes alternating exponential idle and
// CPU bursts: the co-located replica processes of a multi-tenant server.
// They create the bursty queueing that inflates tail latency.
func (s *Scheduler) AddNoise(n int, burst, idle sim.Duration) {
	for i := 0; i < n; i++ {
		p := s.NewProc(fmt.Sprintf("noise-%d", i))
		// loop and rest are allocated once per process and reused for every
		// burst — the previous per-burst completion closure was one of the
		// hottest allocation sites in the whole simulator.
		var loop, rest func()
		loop = func() {
			b := sim.Duration(s.rng.Exp(float64(burst)))
			p.Submit(b, rest)
		}
		rest = func() {
			s.k.AfterFunc(sim.Duration(s.rng.Exp(float64(idle))), loop, nil)
		}
		// Stagger starts to avoid synchronized bursts.
		s.k.AfterFunc(s.rng.DurationRange(0, idle+1), loop, nil)
	}
}

// AddStorms models periodic batch daemons (compaction, log rotation, page
// flushers): every ~interval, each of n daemon processes receives a burst
// of CPU work simultaneously. A replica handler woken during a storm
// queues behind the whole cohort — the dominant source of multi-ms tail
// latency on saturated multi-tenant boxes.
func (s *Scheduler) AddStorms(n int, interval, burst sim.Duration) {
	procs := make([]*Proc, n)
	for i := range procs {
		procs[i] = s.NewProc(fmt.Sprintf("daemon-%d", i))
	}
	var loop func()
	loop = func() {
		for _, p := range procs {
			p.Submit(sim.Duration(s.rng.Exp(float64(burst))), nil)
		}
		s.k.AfterFunc(sim.Duration(s.rng.Exp(float64(interval))), loop, nil)
	}
	s.k.AfterFunc(s.rng.DurationRange(0, interval+1), loop, nil)
}
