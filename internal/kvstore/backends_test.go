package kvstore

import (
	"bytes"
	"fmt"
	"testing"

	"hyperloop/internal/cpusim"
	"hyperloop/internal/hyperloop"
	"hyperloop/internal/naive"
	"hyperloop/internal/nvm"
	"hyperloop/internal/rdma"
	"hyperloop/internal/sim"
	"hyperloop/internal/txn"
)

// TestBackendEquivalence runs the same operation program over the chain,
// fan-out and naive backends and asserts all three leave identical store
// state — the interchangeability claim behind the paper's "under 1000
// lines of code" application ports.
func TestBackendEquivalence(t *testing.T) {
	cfg := smallConfig()
	mirror := MirrorSizeFor(cfg)
	devSize := mirror + (1 << 20)

	build := func(name string) (*sim.Kernel, txn.Replicator) {
		k := sim.NewKernel(31)
		fab := rdma.NewFabric(k, rdma.DefaultConfig())
		client, _ := fab.AddNIC("client", nvm.NewDevice("client", devSize))
		var reps []*rdma.NIC
		var scheds []*cpusim.Scheduler
		for i := 0; i < 3; i++ {
			host := fmt.Sprintf("%s-%d", name, i)
			nic, _ := fab.AddNIC(host, nvm.NewDevice(host, devSize))
			reps = append(reps, nic)
			s, err := cpusim.New(k, cpusim.DefaultConfig(4))
			if err != nil {
				t.Fatal(err)
			}
			scheds = append(scheds, s)
		}
		switch name {
		case "chain":
			g, err := hyperloop.Setup(fab, client, reps, hyperloop.DefaultConfig(mirror))
			if err != nil {
				t.Fatal(err)
			}
			return k, g
		case "fanout":
			g, err := hyperloop.SetupFanout(fab, client, reps, hyperloop.DefaultConfig(mirror))
			if err != nil {
				t.Fatal(err)
			}
			return k, g
		default:
			g, err := naive.Setup(fab, client, reps, scheds, naive.DefaultConfig(mirror))
			if err != nil {
				t.Fatal(err)
			}
			return k, g
		}
	}

	program := func(f *sim.Fiber, db *DB) error {
		for i := 0; i < 30; i++ {
			key := []byte(fmt.Sprintf("k%02d", i%10))
			val := []byte(fmt.Sprintf("value-%03d", i))
			if err := db.Put(f, key, val); err != nil {
				return fmt.Errorf("put %d: %w", i, err)
			}
			if i%7 == 3 {
				if err := db.Delete(f, key); err != nil {
					return fmt.Errorf("delete %d: %w", i, err)
				}
			}
		}
		return db.Checkpoint(f)
	}

	states := make(map[string]map[string]string)
	for _, name := range []string{"chain", "fanout", "naive"} {
		k, r := build(name)
		db, err := Open(r, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var progErr error
		k.Spawn(name, func(f *sim.Fiber) { progErr = program(f, db) })
		if err := k.RunUntil(k.Now().Add(30 * sim.Second)); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if progErr != nil {
			t.Fatalf("%s: %v", name, progErr)
		}
		state := make(map[string]string)
		for _, p := range db.Scan(nil, 1000) {
			state[string(p.Key)] = string(p.Value)
		}
		states[name] = state
	}
	for _, name := range []string{"fanout", "naive"} {
		if len(states[name]) != len(states["chain"]) {
			t.Fatalf("%s has %d keys, chain %d", name, len(states[name]), len(states["chain"]))
		}
		for k, v := range states["chain"] {
			if states[name][k] != v {
				t.Fatalf("%s[%s] = %q, chain %q", name, k, states[name][k], v)
			}
		}
	}
}

// TestKVOverNaiveRecovery exercises the crash-recovery path over the
// CPU-driven backend too.
func TestKVOverNaiveRecovery(t *testing.T) {
	cfg := smallConfig()
	mirror := MirrorSizeFor(cfg)
	k := sim.NewKernel(13)
	fab := rdma.NewFabric(k, rdma.DefaultConfig())
	clientDev := nvm.NewDevice("client", mirror+(1<<20))
	client, _ := fab.AddNIC("client", clientDev)
	var reps []*rdma.NIC
	var scheds []*cpusim.Scheduler
	for i := 0; i < 3; i++ {
		nic, _ := fab.AddNIC(fmt.Sprintf("n%d", i), nvm.NewDevice(fmt.Sprintf("n%d", i), mirror+(1<<20)))
		reps = append(reps, nic)
		s, err := cpusim.New(k, cpusim.DefaultConfig(4))
		if err != nil {
			t.Fatal(err)
		}
		scheds = append(scheds, s)
	}
	g, err := naive.Setup(fab, client, reps, scheds, naive.DefaultConfig(mirror))
	if err != nil {
		t.Fatal(err)
	}
	db, err := Open(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	k.Spawn("writer", func(f *sim.Fiber) {
		for i := 0; i < 10; i++ {
			if err := db.Put(f, []byte(fmt.Sprintf("nk%d", i)), []byte("nv")); err != nil {
				t.Errorf("put: %v", err)
				return
			}
		}
	})
	if err := k.RunUntil(k.Now().Add(10 * sim.Second)); err != nil {
		t.Fatal(err)
	}
	clientDev.Crash()
	k.Spawn("recover", func(f *sim.Fiber) {
		if err := db.Recover(f); err != nil {
			t.Errorf("recover: %v", err)
		}
	})
	if err := k.RunUntil(k.Now().Add(10 * sim.Second)); err != nil {
		t.Fatal(err)
	}
	if db.Len() != 10 {
		t.Fatalf("len after recovery = %d", db.Len())
	}
	if v, ok := db.Get([]byte("nk7")); !ok || !bytes.Equal(v, []byte("nv")) {
		t.Fatalf("nk7 = %q, %v", v, ok)
	}
}
