package kvstore

import (
	"encoding/binary"
	"fmt"

	"hyperloop/internal/txn"
	"hyperloop/internal/wal"
)

// LoadView reconstructs the key-value state from a raw mirror image — the
// replica-side reader of §5.1: a backup process that wakes up off the
// critical path, reads its own NVM (checkpoint + replicated log) and
// serves eventually-consistent reads. Pass a replica NVM's current or
// durable image.
func LoadView(mirror []byte, cfg Config) (map[string][]byte, error) {
	logOff := txn.CtrlSize
	dataOff := txn.CtrlSize + cfg.LogSize
	if len(mirror) < dataOff+cfg.DataSize {
		return nil, fmt.Errorf("kvstore: mirror image too small (%d bytes)", len(mirror))
	}
	view := make(map[string][]byte)
	if pairs, err := decodeCheckpoint(mirror[dataOff : dataOff+cfg.DataSize]); err == nil {
		for _, p := range pairs {
			view[string(p.Key)] = p.Value
		}
	}
	head := int(binary.LittleEndian.Uint64(mirror[txn.HeadPtrOff:]))
	tail := int(binary.LittleEndian.Uint64(mirror[txn.TailPtrOff:]))
	log := mirror[logOff : logOff+cfg.LogSize]
	p := head
	for p != tail {
		if p < 0 || p > cfg.LogSize {
			return view, fmt.Errorf("kvstore: log pointer out of range")
		}
		if cfg.LogSize-p < wal.PadHeaderSize {
			p = 0
			continue
		}
		if padLen, ok := wal.IsPad(log[p:]); ok {
			p += padLen
			if p >= cfg.LogSize || cfg.LogSize-p < wal.PadHeaderSize {
				p = 0
			}
			continue
		}
		rec, err := wal.Decode(log[p:])
		if err != nil {
			// Torn tail: the valid prefix is the eventually-consistent view.
			return view, nil
		}
		for _, e := range rec.Entries {
			op, key, value, derr := decodeOp(rec.Data(log[p:], e))
			if derr != nil {
				return view, nil
			}
			if op == opPut {
				view[string(key)] = append([]byte(nil), value...)
			} else {
				delete(view, string(key))
			}
		}
		p += rec.Size
		if cfg.LogSize-p < wal.PadHeaderSize {
			p = 0
		}
	}
	return view, nil
}
