// Package kvstore is a RocksDB-like embedded, replicated key-value store
// (§5.1): an in-memory memtable (skiplist) in front of a replicated
// write-ahead log on NVM, with periodic checkpoints that truncate the log.
// All critical-path persistence goes through the group primitives
// (txn.Store over either the HyperLoop or Naive-RDMA backend); replica
// in-memory views are refreshed off the critical path and are therefore
// eventually consistent, exactly as in the paper's port.
package kvstore

import (
	"bytes"

	"hyperloop/internal/sim"
)

const maxHeight = 16

// skipNode is one tower in the skiplist.
type skipNode struct {
	key   []byte
	value []byte // nil encodes a tombstone
	next  []*skipNode
}

// skiplist is a deterministic (seeded) ordered map from byte keys to byte
// values. It is the memtable of the store.
type skiplist struct {
	head   *skipNode
	rng    *sim.RNG
	height int
	size   int // live (non-tombstone) entries
	bytes  int // approximate memory footprint
}

func newSkiplist(rng *sim.RNG) *skiplist {
	return &skiplist{
		head:   &skipNode{next: make([]*skipNode, maxHeight)},
		rng:    rng,
		height: 1,
	}
}

func (s *skiplist) randomHeight() int {
	h := 1
	for h < maxHeight && s.rng.Intn(4) == 0 {
		h++
	}
	return h
}

// findGreaterOrEqual returns the first node with key >= key, also filling
// prev with the rightmost node before it at every level.
func (s *skiplist) findGreaterOrEqual(key []byte, prev []*skipNode) *skipNode {
	x := s.head
	for level := s.height - 1; level >= 0; level-- {
		for x.next[level] != nil && bytes.Compare(x.next[level].key, key) < 0 {
			x = x.next[level]
		}
		if prev != nil {
			prev[level] = x
		}
	}
	return x.next[0]
}

// put inserts or replaces key. A nil value stores a tombstone.
func (s *skiplist) put(key, value []byte) {
	prev := make([]*skipNode, maxHeight)
	for i := range prev {
		prev[i] = s.head
	}
	n := s.findGreaterOrEqual(key, prev)
	if n != nil && bytes.Equal(n.key, key) {
		if n.value != nil {
			s.size--
			s.bytes -= len(n.value)
		}
		if value != nil {
			s.size++
			s.bytes += len(value)
		}
		n.value = value
		return
	}
	h := s.randomHeight()
	if h > s.height {
		s.height = h
	}
	node := &skipNode{
		key:   append([]byte(nil), key...),
		value: value,
		next:  make([]*skipNode, h),
	}
	for level := 0; level < h; level++ {
		node.next[level] = prev[level].next[level]
		prev[level].next[level] = node
	}
	s.bytes += len(key) + len(value)
	if value != nil {
		s.size++
	}
}

// get returns the value for key; ok distinguishes found from missing, and
// a found tombstone returns (nil, true, true).
func (s *skiplist) get(key []byte) (value []byte, found, tombstone bool) {
	n := s.findGreaterOrEqual(key, nil)
	if n == nil || !bytes.Equal(n.key, key) {
		return nil, false, false
	}
	if n.value == nil {
		return nil, true, true
	}
	return n.value, true, false
}

// scan returns up to max live entries with key >= start, in order.
func (s *skiplist) scan(start []byte, max int) []kvPair {
	var out []kvPair
	n := s.findGreaterOrEqual(start, nil)
	for n != nil && len(out) < max {
		if n.value != nil {
			out = append(out, kvPair{key: n.key, value: n.value})
		}
		n = n.next[0]
	}
	return out
}

// all returns every entry including tombstones, in key order.
func (s *skiplist) all() []kvPair {
	var out []kvPair
	for n := s.head.next[0]; n != nil; n = n.next[0] {
		out = append(out, kvPair{key: n.key, value: n.value})
	}
	return out
}

type kvPair struct {
	key   []byte
	value []byte
}
