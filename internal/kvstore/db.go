package kvstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"hyperloop/internal/sim"
	"hyperloop/internal/txn"
	"hyperloop/internal/wal"
)

// KV op codes inside WAL entries.
const (
	opPut    = 1
	opDelete = 2
)

// Checkpoint framing in the data region.
const (
	ckptMagic      = 0x484C4B56 // "HLKV"
	ckptHeaderSize = 4 + 4 + 4 + 4
)

// Errors returned by the store.
var (
	ErrClosed      = errors.New("kvstore: closed")
	ErrTooLarge    = errors.New("kvstore: key/value too large")
	ErrBadArgument = errors.New("kvstore: bad argument")
)

// Config parameterizes a DB.
type Config struct {
	// LogSize / DataSize size the txn store regions; the group's mirror
	// must be at least txn.MirrorSizeFor(LogSize, DataSize).
	LogSize  int
	DataSize int
	// CheckpointEvery triggers a checkpoint + log truncation after this
	// many mutations (0 = only when the log fills).
	CheckpointEvery int
	// Seed makes the memtable deterministic.
	Seed uint64
}

// DefaultConfig sizes the store for the YCSB benchmarks.
func DefaultConfig() Config {
	return Config{
		LogSize:         256 * 1024,
		DataSize:        1 << 20,
		CheckpointEvery: 0,
		Seed:            1,
	}
}

// MirrorSizeFor returns the group mirror size cfg requires.
func MirrorSizeFor(cfg Config) int { return txn.MirrorSizeFor(cfg.LogSize, cfg.DataSize) }

// Stats counts store activity.
type Stats struct {
	Puts        int64
	Deletes     int64
	Gets        int64
	Scans       int64
	Checkpoints int64
	Recoveries  int64
}

// DB is the replicated key-value store. The memtable answers reads; every
// mutation is durably replicated through the write-ahead log before it is
// acknowledged (§5.1: "uses Append to replicate log records to replicas'
// NVM instead of the native unreplicated append").
type DB struct {
	st    *txn.Store
	cfg   Config
	mem   *skiplist
	stats Stats

	mutations int
}

// Open builds a DB over a replication group (either backend).
func Open(r txn.Replicator, cfg Config) (*DB, error) {
	if cfg.LogSize <= 0 || cfg.DataSize <= 0 {
		return nil, fmt.Errorf("%w: region sizes must be positive", ErrBadArgument)
	}
	st, err := txn.New(r, txn.Config{LogSize: cfg.LogSize, DataSize: cfg.DataSize})
	if err != nil {
		return nil, err
	}
	return &DB{
		st:  st,
		cfg: cfg,
		mem: newSkiplist(sim.NewRNG(cfg.Seed)),
	}, nil
}

// Store exposes the underlying transaction store (for examples/tests).
func (db *DB) Store() *txn.Store { return db.st }

// Stats returns activity counters.
func (db *DB) Stats() Stats { return db.stats }

// Len returns the number of live keys.
func (db *DB) Len() int { return db.mem.size }

func encodeOp(op byte, key, value []byte) []byte {
	buf := make([]byte, 1+2+len(key)+len(value))
	buf[0] = op
	binary.LittleEndian.PutUint16(buf[1:], uint16(len(key)))
	copy(buf[3:], key)
	copy(buf[3+len(key):], value)
	return buf
}

func decodeOp(data []byte) (op byte, key, value []byte, err error) {
	if len(data) < 3 {
		return 0, nil, nil, fmt.Errorf("kvstore: short op record")
	}
	op = data[0]
	klen := int(binary.LittleEndian.Uint16(data[1:]))
	if 3+klen > len(data) {
		return 0, nil, nil, fmt.Errorf("kvstore: truncated key")
	}
	return op, data[3 : 3+klen], data[3+klen:], nil
}

// Put durably replicates and applies a key-value write.
func (db *DB) Put(f *sim.Fiber, key, value []byte) error {
	return db.mutate(f, opPut, key, value)
}

// Delete durably replicates and applies a tombstone.
func (db *DB) Delete(f *sim.Fiber, key []byte) error {
	return db.mutate(f, opDelete, key, nil)
}

func (db *DB) mutate(f *sim.Fiber, op byte, key, value []byte) error {
	if len(key) == 0 || len(key) > 1<<16-1 {
		return fmt.Errorf("%w: key length %d", ErrBadArgument, len(key))
	}
	rec := encodeOp(op, key, value)
	_, err := db.st.Append(f, []wal.Entry{{Off: 0, Data: rec}})
	if errors.Is(err, txn.ErrLogFull) {
		if cerr := db.Checkpoint(f); cerr != nil {
			return cerr
		}
		_, err = db.st.Append(f, []wal.Entry{{Off: 0, Data: rec}})
	}
	if err != nil {
		return err
	}
	if op == opPut {
		db.mem.put(key, value)
		db.stats.Puts++
	} else {
		db.mem.put(key, nil)
		db.stats.Deletes++
	}
	db.mutations++
	if db.cfg.CheckpointEvery > 0 && db.mutations >= db.cfg.CheckpointEvery {
		return db.Checkpoint(f)
	}
	return nil
}

// Get returns the value for key from the memtable (strongly consistent:
// the memtable only reflects acknowledged, replicated writes).
func (db *DB) Get(key []byte) ([]byte, bool) {
	db.stats.Gets++
	v, found, tomb := db.mem.get(key)
	if !found || tomb {
		return nil, false
	}
	return v, true
}

// Pair is a key-value pair returned by Scan.
type Pair struct {
	Key   []byte
	Value []byte
}

// Scan returns up to max live pairs with key >= start in order.
func (db *DB) Scan(start []byte, max int) []Pair {
	db.stats.Scans++
	var out []Pair
	for _, p := range db.mem.scan(start, max) {
		out = append(out, Pair{Key: p.key, Value: p.value})
	}
	return out
}

// encodeCheckpoint serializes the live state.
func (db *DB) encodeCheckpoint() []byte {
	pairs := db.mem.all()
	body := make([]byte, 0, db.mem.bytes+len(pairs)*8)
	count := 0
	for _, p := range pairs {
		if p.value == nil {
			continue // checkpoints drop tombstones: they capture full state
		}
		var hdr [6]byte
		binary.LittleEndian.PutUint16(hdr[0:], uint16(len(p.key)))
		binary.LittleEndian.PutUint32(hdr[2:], uint32(len(p.value)))
		body = append(body, hdr[:]...)
		body = append(body, p.key...)
		body = append(body, p.value...)
		count++
	}
	out := make([]byte, ckptHeaderSize+len(body))
	binary.LittleEndian.PutUint32(out[0:], ckptMagic)
	binary.LittleEndian.PutUint32(out[4:], uint32(count))
	binary.LittleEndian.PutUint32(out[8:], uint32(len(body)))
	binary.LittleEndian.PutUint32(out[12:], crc32.ChecksumIEEE(body))
	copy(out[ckptHeaderSize:], body)
	return out
}

// decodeCheckpoint parses a checkpoint image into key-value pairs.
func decodeCheckpoint(img []byte) ([]Pair, error) {
	if len(img) < ckptHeaderSize {
		return nil, fmt.Errorf("kvstore: checkpoint too small")
	}
	if binary.LittleEndian.Uint32(img[0:]) != ckptMagic {
		return nil, fmt.Errorf("kvstore: no checkpoint")
	}
	count := int(binary.LittleEndian.Uint32(img[4:]))
	bodyLen := int(binary.LittleEndian.Uint32(img[8:]))
	wantCRC := binary.LittleEndian.Uint32(img[12:])
	if ckptHeaderSize+bodyLen > len(img) {
		return nil, fmt.Errorf("kvstore: truncated checkpoint")
	}
	body := img[ckptHeaderSize : ckptHeaderSize+bodyLen]
	if crc32.ChecksumIEEE(body) != wantCRC {
		return nil, fmt.Errorf("kvstore: checkpoint crc mismatch")
	}
	var pairs []Pair
	p := 0
	for i := 0; i < count; i++ {
		if p+6 > len(body) {
			return nil, fmt.Errorf("kvstore: truncated checkpoint entry")
		}
		klen := int(binary.LittleEndian.Uint16(body[p:]))
		vlen := int(binary.LittleEndian.Uint32(body[p+2:]))
		p += 6
		if p+klen+vlen > len(body) {
			return nil, fmt.Errorf("kvstore: truncated checkpoint pair")
		}
		pairs = append(pairs, Pair{
			Key:   append([]byte(nil), body[p:p+klen]...),
			Value: append([]byte(nil), body[p+klen:p+klen+vlen]...),
		})
		p += klen + vlen
	}
	return pairs, nil
}

// Checkpoint serializes the memtable into the replicated data region and
// truncates the log — the off-critical-path sync of §5.1.
func (db *DB) Checkpoint(f *sim.Fiber) error {
	img := db.encodeCheckpoint()
	if len(img) > db.cfg.DataSize {
		return fmt.Errorf("%w: checkpoint of %d bytes exceeds data region", ErrTooLarge, len(img))
	}
	if err := db.st.WriteData(f, 0, img); err != nil {
		return err
	}
	if err := db.st.TruncateAll(f); err != nil {
		return err
	}
	db.mutations = 0
	db.stats.Checkpoints++
	return nil
}

// Recover rebuilds the memtable after a crash: load the last durable
// checkpoint, repair the log tail, and replay pending records.
func (db *DB) Recover(f *sim.Fiber) error {
	db.mem = newSkiplist(sim.NewRNG(db.cfg.Seed))
	img, err := db.st.ReadData(0, db.cfg.DataSize)
	if err != nil {
		return err
	}
	if pairs, err := decodeCheckpoint(img); err == nil {
		for _, p := range pairs {
			db.mem.put(p.Key, p.Value)
		}
	}
	if _, _, err := db.st.RepairLog(f); err != nil {
		return err
	}
	err = db.st.VisitPending(func(_ uint64, entries []wal.Entry) error {
		for _, e := range entries {
			op, key, value, derr := decodeOp(e.Data)
			if derr != nil {
				return derr
			}
			if op == opPut {
				db.mem.put(key, append([]byte(nil), value...))
			} else {
				db.mem.put(key, nil)
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	db.stats.Recoveries++
	return nil
}
