package kvstore

import (
	"bytes"
	"fmt"
	"sort"
	"testing"
	"testing/quick"

	"hyperloop/internal/hyperloop"
	"hyperloop/internal/nvm"
	"hyperloop/internal/rdma"
	"hyperloop/internal/sim"
)

func testDB(t *testing.T, cfg Config) (*sim.Kernel, *DB, *hyperloop.Group) {
	t.Helper()
	k := sim.NewKernel(5)
	fab := rdma.NewFabric(k, rdma.DefaultConfig())
	mirror := MirrorSizeFor(cfg)
	devSize := mirror + (1 << 20)
	client, _ := fab.AddNIC("client", nvm.NewDevice("client", devSize))
	var reps []*rdma.NIC
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("r%d", i)
		nic, _ := fab.AddNIC(name, nvm.NewDevice(name, devSize))
		reps = append(reps, nic)
	}
	g, err := hyperloop.Setup(fab, client, reps, hyperloop.DefaultConfig(mirror))
	if err != nil {
		t.Fatal(err)
	}
	db, err := Open(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return k, db, g
}

func run(t *testing.T, k *sim.Kernel, fn func(f *sim.Fiber)) {
	t.Helper()
	k.Spawn("kv-test", fn)
	if err := k.Run(); err != nil {
		t.Fatalf("kernel: %v", err)
	}
}

func smallConfig() Config {
	return Config{LogSize: 16 * 1024, DataSize: 64 * 1024, Seed: 3}
}

func TestSkiplistBasic(t *testing.T) {
	s := newSkiplist(sim.NewRNG(1))
	s.put([]byte("b"), []byte("2"))
	s.put([]byte("a"), []byte("1"))
	s.put([]byte("c"), []byte("3"))
	if v, ok, _ := s.get([]byte("b")); !ok || string(v) != "2" {
		t.Fatalf("get b = %q, %v", v, ok)
	}
	if _, ok, _ := s.get([]byte("zz")); ok {
		t.Fatal("missing key found")
	}
	s.put([]byte("b"), []byte("2x")) // overwrite
	if v, _, _ := s.get([]byte("b")); string(v) != "2x" {
		t.Fatalf("overwrite failed: %q", v)
	}
	s.put([]byte("a"), nil) // tombstone
	if _, found, tomb := s.get([]byte("a")); !found || !tomb {
		t.Fatal("tombstone lost")
	}
	got := s.scan([]byte(""), 10)
	if len(got) != 2 || string(got[0].key) != "b" || string(got[1].key) != "c" {
		t.Fatalf("scan = %v", got)
	}
	if s.size != 2 {
		t.Fatalf("size = %d", s.size)
	}
}

func TestSkiplistAgainstModelProperty(t *testing.T) {
	type op struct {
		Del bool
		Key uint8
		Val uint16
	}
	f := func(ops []op) bool {
		s := newSkiplist(sim.NewRNG(9))
		model := make(map[string][]byte)
		for _, o := range ops {
			key := []byte{o.Key % 32}
			if o.Del {
				s.put(key, nil)
				delete(model, string(key))
			} else {
				val := []byte{byte(o.Val), byte(o.Val >> 8)}
				s.put(key, val)
				model[string(key)] = val
			}
		}
		if s.size != len(model) {
			return false
		}
		for k, v := range model {
			got, ok, tomb := s.get([]byte(k))
			if !ok || tomb || !bytes.Equal(got, v) {
				return false
			}
		}
		// Scan order must equal sorted model keys.
		var keys []string
		for k := range model {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		scanned := s.scan(nil, 1<<30)
		if len(scanned) != len(keys) {
			return false
		}
		for i, k := range keys {
			if string(scanned[i].key) != k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPutGetDelete(t *testing.T) {
	k, db, _ := testDB(t, smallConfig())
	run(t, k, func(f *sim.Fiber) {
		if err := db.Put(f, []byte("user1"), []byte("alice")); err != nil {
			t.Errorf("put: %v", err)
			return
		}
		if v, ok := db.Get([]byte("user1")); !ok || string(v) != "alice" {
			t.Errorf("get = %q, %v", v, ok)
		}
		if err := db.Delete(f, []byte("user1")); err != nil {
			t.Errorf("delete: %v", err)
			return
		}
		if _, ok := db.Get([]byte("user1")); ok {
			t.Error("deleted key still visible")
		}
	})
	st := db.Stats()
	if st.Puts != 1 || st.Deletes != 1 || st.Gets != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestScanOrdering(t *testing.T) {
	k, db, _ := testDB(t, smallConfig())
	run(t, k, func(f *sim.Fiber) {
		for i := 9; i >= 0; i-- {
			key := []byte(fmt.Sprintf("key%02d", i))
			if err := db.Put(f, key, []byte{byte(i)}); err != nil {
				t.Errorf("put: %v", err)
				return
			}
		}
		pairs := db.Scan([]byte("key03"), 4)
		if len(pairs) != 4 {
			t.Errorf("scan returned %d", len(pairs))
			return
		}
		for i, p := range pairs {
			want := fmt.Sprintf("key%02d", i+3)
			if string(p.Key) != want {
				t.Errorf("scan[%d] = %s, want %s", i, p.Key, want)
			}
		}
	})
}

func TestAutomaticCheckpointOnFullLog(t *testing.T) {
	cfg := smallConfig()
	k, db, _ := testDB(t, cfg)
	run(t, k, func(f *sim.Fiber) {
		val := bytes.Repeat([]byte{7}, 900)
		for i := 0; i < 60; i++ { // ≫ log capacity
			if err := db.Put(f, []byte(fmt.Sprintf("k%03d", i%10)), val); err != nil {
				t.Errorf("put %d: %v", i, err)
				return
			}
		}
	})
	if db.Stats().Checkpoints == 0 {
		t.Fatal("log never checkpointed despite filling")
	}
	if db.Len() != 10 {
		t.Fatalf("len = %d", db.Len())
	}
}

func TestRecoveryAfterCrash(t *testing.T) {
	cfg := smallConfig()
	cfg.CheckpointEvery = 7
	k, db, g := testDB(t, cfg)
	want := make(map[string]string)
	run(t, k, func(f *sim.Fiber) {
		for i := 0; i < 25; i++ {
			key, val := fmt.Sprintf("key%02d", i%12), fmt.Sprintf("val%d", i)
			if err := db.Put(f, []byte(key), []byte(val)); err != nil {
				t.Errorf("put: %v", err)
				return
			}
			want[key] = val
		}
		if err := db.Delete(f, []byte("key03")); err != nil {
			t.Errorf("delete: %v", err)
			return
		}
		delete(want, "key03")
	})

	// Power-fail the client; recovery must rebuild from durable state.
	g.ClientNIC().Memory().Crash()
	run(t, k, func(f *sim.Fiber) {
		if err := db.Recover(f); err != nil {
			t.Errorf("recover: %v", err)
		}
	})
	for key, val := range want {
		got, ok := db.Get([]byte(key))
		if !ok || string(got) != val {
			t.Fatalf("after recovery %s = %q (%v), want %q", key, got, ok, val)
		}
	}
	if _, ok := db.Get([]byte("key03")); ok {
		t.Fatal("deleted key resurrected by recovery")
	}
	if db.Len() != len(want) {
		t.Fatalf("len = %d, want %d", db.Len(), len(want))
	}
}

func TestReplicaViewEventuallyConsistent(t *testing.T) {
	cfg := smallConfig()
	k, db, g := testDB(t, cfg)
	run(t, k, func(f *sim.Fiber) {
		for i := 0; i < 15; i++ {
			if err := db.Put(f, []byte(fmt.Sprintf("k%02d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
				t.Errorf("put: %v", err)
				return
			}
		}
		if err := db.Delete(f, []byte("k05")); err != nil {
			t.Errorf("delete: %v", err)
		}
	})
	// Every replica's own NVM must reconstruct the exact same state.
	for i := 0; i < g.GroupSize(); i++ {
		mem := g.ReplicaNIC(i).Memory()
		img := make([]byte, MirrorSizeFor(cfg))
		if err := mem.Read(0, img); err != nil {
			t.Fatal(err)
		}
		view, err := LoadView(img, cfg)
		if err != nil {
			t.Fatalf("replica %d view: %v", i, err)
		}
		if len(view) != db.Len() {
			t.Fatalf("replica %d view has %d keys, client %d", i, len(view), db.Len())
		}
		for _, p := range db.Scan(nil, 1000) {
			if !bytes.Equal(view[string(p.Key)], p.Value) {
				t.Fatalf("replica %d key %s = %q, want %q", i, p.Key, view[string(p.Key)], p.Value)
			}
		}
		if _, ok := view["k05"]; ok {
			t.Fatalf("replica %d resurrected deleted key", i)
		}
	}
}

func TestReplicaViewAfterCheckpoint(t *testing.T) {
	cfg := smallConfig()
	k, db, g := testDB(t, cfg)
	run(t, k, func(f *sim.Fiber) {
		for i := 0; i < 10; i++ {
			_ = db.Put(f, []byte(fmt.Sprintf("c%d", i)), []byte("x"))
		}
		if err := db.Checkpoint(f); err != nil {
			t.Errorf("checkpoint: %v", err)
			return
		}
		// A few post-checkpoint writes live only in the log.
		_ = db.Put(f, []byte("post1"), []byte("y"))
		_ = db.Put(f, []byte("c3"), []byte("updated"))
	})
	img := make([]byte, MirrorSizeFor(cfg))
	_ = g.ReplicaNIC(2).Memory().Read(0, img)
	view, err := LoadView(img, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if string(view["post1"]) != "y" || string(view["c3"]) != "updated" {
		t.Fatalf("view = %v", view)
	}
	if len(view) != 11 {
		t.Fatalf("view size = %d, want 11", len(view))
	}
}

func TestValidationErrors(t *testing.T) {
	k, db, _ := testDB(t, smallConfig())
	run(t, k, func(f *sim.Fiber) {
		if err := db.Put(f, nil, []byte("x")); err == nil {
			t.Error("empty key accepted")
		}
	})
	if _, err := Open(nil, Config{}); err == nil {
		t.Error("zero config accepted")
	}
}

func TestMutationsAreDurableOnReplicasImmediately(t *testing.T) {
	// The ack implies durability: crash every replica right after the Put
	// returns and the op must be recoverable from any replica's durable
	// image.
	cfg := smallConfig()
	k, db, g := testDB(t, cfg)
	run(t, k, func(f *sim.Fiber) {
		if err := db.Put(f, []byte("durable-key"), []byte("durable-val")); err != nil {
			t.Errorf("put: %v", err)
		}
	})
	for i := 0; i < g.GroupSize(); i++ {
		mem := g.ReplicaNIC(i).Memory()
		mem.Crash()
		img := make([]byte, MirrorSizeFor(cfg))
		_ = mem.Read(0, img)
		view, err := LoadView(img, cfg)
		if err != nil {
			t.Fatalf("replica %d: %v", i, err)
		}
		if string(view["durable-key"]) != "durable-val" {
			t.Fatalf("replica %d lost acknowledged write across power failure", i)
		}
	}
}
