package experiments

import (
	"runtime"
	"testing"
)

// deterministicStats strips the scheduling-dependent fields of a sink —
// the pools' fresh/reused splits and the zeroing actually performed —
// leaving only the counters that must be byte-identical at any -procs
// setting and under any experiment overlap.
func deterministicStats(s StatSink) StatSink {
	s.DeviceFresh, s.DeviceReused, s.DeviceBytesZeroed = 0, 0, 0
	s.KernelFresh, s.KernelReused = 0, 0
	s.FabricReused = 0
	return s
}

// TestOverlappedVsSerialIdentical is the tentpole's golden test: the
// two-level scheduler must overlap experiments without moving a single
// report byte or attributed counter. RunAll over every experiment at
// -procs 1 (serial experiments, serial trials), -procs 2 (overlapped,
// minimal budget), and -procs 0 (overlapped, GOMAXPROCS budget) must
// agree on every report and every deterministic StatSink field.
func TestOverlappedVsSerialIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment three times")
	}
	prev := Parallelism()
	defer SetParallelism(prev)
	const seed = 1
	ids := PaperOrder()
	modes := []int{1, 2, 0}
	if raceEnabled {
		// The race detector's ~10× slowdown would push the full matrix
		// past CI's test timeout on small hosts; exercise the scheduler's
		// concurrency on the microbenchmark subset and two modes, and
		// leave full-matrix byte-identity to the non-race run.
		ids = []string{"fig8a", "fig8b", "table2", "abl-flush", "abl-depth"}
		modes = []int{1, 0}
	}
	runs := make(map[int][]Result)
	for _, p := range modes {
		SetParallelism(p)
		res, err := RunAll(ids, seed, Quick)
		if err != nil {
			t.Fatalf("procs=%d: %v", p, err)
		}
		if len(res) != len(ids) {
			t.Fatalf("procs=%d: %d results, want %d", p, len(res), len(ids))
		}
		runs[p] = res
	}

	serial := runs[1]
	for _, p := range modes[1:] {
		for i, r := range runs[p] {
			if r.ID != serial[i].ID {
				t.Fatalf("procs=%d: result %d is %s, want %s", p, i, r.ID, serial[i].ID)
			}
			if got, want := r.Report.String(), serial[i].Report.String(); got != want {
				t.Errorf("procs=%d %s: report differs from serial run:\n--- overlapped ---\n%s\n--- serial ---\n%s",
					p, r.ID, got, want)
			}
			if got, want := deterministicStats(r.Stats), deterministicStats(serial[i].Stats); got != want {
				t.Errorf("procs=%d %s: attributed counters differ from serial run:\noverlapped: %+v\nserial:     %+v",
					p, r.ID, got, want)
			}
		}
	}
	if gmp := runtime.GOMAXPROCS(0); gmp > 1 {
		t.Logf("overlap exercised with GOMAXPROCS=%d", gmp)
	}
}

// TestRunAllUnknownID checks that a typo fails fast, before any
// experiment starts.
func TestRunAllUnknownID(t *testing.T) {
	if _, err := RunAll([]string{"table3", "fig99"}, 1, Quick); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

// TestRunAllSingleSerial checks that a one-experiment list takes the
// serial path at any budget and still fills in stats.
func TestRunAllSingleSerial(t *testing.T) {
	prev := SetParallelism(4)
	defer SetParallelism(prev)
	res, err := RunAll([]string{"abl-flush"}, 1, Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].ID != "abl-flush" {
		t.Fatalf("results = %+v", res)
	}
	if res[0].Stats.SimEvents == 0 || res[0].Stats.CQEs == 0 {
		t.Fatalf("stats not attributed: %+v", res[0].Stats)
	}
}
