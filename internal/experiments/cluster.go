// Package experiments regenerates every table and figure of the paper's
// evaluation (§2.2 Fig. 2, §6.1 Figs. 8–10 + Table 2, §6.2 Figs. 11–12)
// plus ablations, over the simulated cluster. Each experiment returns a
// Report whose tables print the same rows/series the paper shows.
package experiments

import (
	"fmt"

	"hyperloop/internal/cpusim"
	"hyperloop/internal/hyperloop"
	"hyperloop/internal/metrics"
	"hyperloop/internal/naive"
	"hyperloop/internal/protocol"
	"hyperloop/internal/rdma"
	"hyperloop/internal/sim"
	"hyperloop/internal/txn"
)

// Backend selects the replication datapath under test.
type Backend int

// Backends under comparison.
const (
	BackendHyperLoop Backend = iota + 1
	BackendNaiveEvent
	BackendNaivePolling
	BackendNaivePinned
)

// String returns the figure-legend name.
func (b Backend) String() string {
	switch b {
	case BackendHyperLoop:
		return "HyperLoop"
	case BackendNaiveEvent:
		return "Naive-RDMA(event)"
	case BackendNaivePolling:
		return "Naive-RDMA(polling)"
	case BackendNaivePinned:
		return "Naive-RDMA(pinned)"
	default:
		return fmt.Sprintf("Backend(%d)", int(b))
	}
}

// groupAPI is the union surface of hyperloop.Group and naive.Group that
// experiments drive. It extends txn.Replicator with async writes.
type groupAPI interface {
	txn.Replicator
	WriteAsync(off, size int, durable bool) (*sim.Signal, error)
	InFlight() int
}

var (
	_ groupAPI = (*hyperloop.Group)(nil)
	_ groupAPI = (*naive.Group)(nil)
	_ groupAPI = (*hyperloop.FanoutGroup)(nil)
	_ groupAPI = (protocol.Protocol)(nil)
)

// clusterCfg describes one simulated deployment: a client machine plus
// nReplicas storage servers, each with its own CPU scheduler and
// co-located tenant load.
type clusterCfg struct {
	seed     uint64
	replicas int
	mirror   int
	depth    int
	backend  Backend

	// ar is the trial arena that supplies this cluster's kernel, devices,
	// and fabric payload pool; nil builds everything fresh.
	ar *trialArena

	// Per storage server CPU model.
	cores int
	hogs  int // always-runnable stress-ng style processes
	noise int // bursty tenant processes (see noiseBurst/noiseIdle)

	noiseBurst sim.Duration
	noiseIdle  sim.Duration
	storms     bool // periodic batch-daemon bursts (see cpusim.AddStorms)

	// Overrides for the naive backend's per-op CPU costs (0 = defaults).
	naiveRecvCPU sim.Duration
	naivePostCPU sim.Duration

	// Failure handling: group operation timeout, retries on the blocking
	// paths (0 = disabled), and a fault plan installed on the fabric right
	// after it is built.
	opTimeout    sim.Duration
	maxRetries   int
	retryBackoff sim.Duration
	faults       *rdma.FaultPlan
}

// multiTenantLoad configures the paper's co-location: ~10 tenant processes
// per core, bursty, keeping utilization near saturation (§2.2, §6).
func (c *clusterCfg) multiTenantLoad() {
	c.noise = 10 * c.cores
	c.noiseBurst = 300 * sim.Microsecond
	c.noiseIdle = 2700 * sim.Microsecond
	c.hogs = c.cores / 2
	c.storms = true
}

// cluster is a built deployment.
type cluster struct {
	k       *sim.Kernel
	fab     *rdma.Fabric
	client  *rdma.NIC
	scheds  []*cpusim.Scheduler
	group   groupAPI
	members []*rdma.NIC

	// replicaProcsCPU returns total replica-handler CPU (naive only).
	replicaCPU func() sim.Duration
}

// devSize returns the device size needed for mirror + control structures.
func devSize(mirror int) int {
	extra := 4 << 20
	return mirror + extra
}

// newCluster builds the deployment.
func newCluster(cfg clusterCfg) (*cluster, error) {
	if cfg.depth == 0 {
		cfg.depth = 32
	}
	k := cfg.ar.kernel(cfg.seed)
	fab := cfg.ar.fabric(k, rdma.DefaultConfig())
	if cfg.faults != nil {
		if err := fab.InstallFaultPlan(cfg.faults); err != nil {
			return nil, err
		}
	}
	client, err := fab.AddNIC("client", cfg.ar.device("client", devSize(cfg.mirror)))
	if err != nil {
		return nil, err
	}
	c := &cluster{k: k, fab: fab, client: client}
	var reps []*rdma.NIC
	for i := 0; i < cfg.replicas; i++ {
		host := fmt.Sprintf("server-%d", i)
		nic, err := fab.AddNIC(host, cfg.ar.device(host, devSize(cfg.mirror)))
		if err != nil {
			return nil, err
		}
		reps = append(reps, nic)
		c.members = append(c.members, nic)
		sched, err := cpusim.New(k, cpusim.DefaultConfig(cfg.cores))
		if err != nil {
			return nil, err
		}
		sched.AddHogs(cfg.hogs)
		if cfg.noise > 0 {
			sched.AddNoise(cfg.noise, cfg.noiseBurst, cfg.noiseIdle)
		}
		if cfg.storms {
			sched.AddStorms(2*cfg.cores, 200*sim.Millisecond, 4*sim.Millisecond)
		}
		c.scheds = append(c.scheds, sched)
	}

	switch cfg.backend {
	case BackendHyperLoop:
		gcfg := hyperloop.DefaultConfig(cfg.mirror)
		gcfg.Depth = cfg.depth
		gcfg.OpTimeout = cfg.opTimeout
		gcfg.MaxRetries = cfg.maxRetries
		gcfg.RetryBackoff = cfg.retryBackoff
		g, err := hyperloop.Setup(fab, client, reps, gcfg)
		if err != nil {
			return nil, err
		}
		c.group = g
		c.replicaCPU = func() sim.Duration { return 0 }
	default:
		gcfg := naive.DefaultConfig(cfg.mirror)
		gcfg.Depth = cfg.depth
		gcfg.OpTimeout = cfg.opTimeout
		gcfg.MaxRetries = cfg.maxRetries
		gcfg.RetryBackoff = cfg.retryBackoff
		if cfg.naiveRecvCPU > 0 {
			gcfg.RecvHandlerCPU = cfg.naiveRecvCPU
		}
		if cfg.naivePostCPU > 0 {
			gcfg.PostCPU = cfg.naivePostCPU
		}
		if cfg.noise > 0 {
			// Multi-tenant co-location: the replica handler is one tenant
			// among ~10 per core and loses its machine-wide sleeper credit.
			gcfg.WakePenalty = 3 * sim.Millisecond
			gcfg.WakePenaltyProb = 0.015
		}
		switch cfg.backend {
		case BackendNaivePolling:
			gcfg.Mode = naive.ModePolling
		case BackendNaivePinned:
			gcfg.Mode = naive.ModePinned
		default:
			gcfg.Mode = naive.ModeEvent
		}
		g, err := naive.Setup(fab, client, reps, c.scheds, gcfg)
		if err != nil {
			return nil, err
		}
		c.group = g
		c.replicaCPU = g.ReplicaHandlerCPU
	}
	return c, nil
}

// nics returns the replica NICs in member order.
func (c *cluster) nics() []*rdma.NIC { return c.members }

// newProtocolCluster builds the deployment with the named replication
// protocol from the registry (chain, fanout, bcast, bcast-maj, naive, …)
// instead of a Backend constant. The clusterCfg policy knobs (depth,
// timeout/retry, faults) apply; backend-specific fields are ignored.
func newProtocolCluster(cfg clusterCfg, name string) (*cluster, error) {
	k := cfg.ar.kernel(cfg.seed)
	fab := cfg.ar.fabric(k, rdma.DefaultConfig())
	if cfg.faults != nil {
		if err := fab.InstallFaultPlan(cfg.faults); err != nil {
			return nil, err
		}
	}
	client, err := fab.AddNIC("client", cfg.ar.device("client", devSize(cfg.mirror)))
	if err != nil {
		return nil, err
	}
	c := &cluster{k: k, fab: fab, client: client}
	for i := 0; i < cfg.replicas; i++ {
		host := fmt.Sprintf("server-%d", i)
		nic, err := fab.AddNIC(host, cfg.ar.device(host, devSize(cfg.mirror)))
		if err != nil {
			return nil, err
		}
		c.members = append(c.members, nic)
		sched, err := cpusim.New(k, cpusim.DefaultConfig(cfg.cores))
		if err != nil {
			return nil, err
		}
		sched.AddHogs(cfg.hogs)
		if cfg.noise > 0 {
			sched.AddNoise(cfg.noise, cfg.noiseBurst, cfg.noiseIdle)
		}
		if cfg.storms {
			sched.AddStorms(2*cfg.cores, 200*sim.Millisecond, 4*sim.Millisecond)
		}
		c.scheds = append(c.scheds, sched)
	}
	g, err := protocol.Build(name, protocol.Env{
		Fabric: fab, Client: client, Replicas: c.members, Scheds: c.scheds,
	}, protocol.Params{
		MirrorSize:   cfg.mirror,
		Depth:        cfg.depth,
		OpTimeout:    cfg.opTimeout,
		MaxRetries:   cfg.maxRetries,
		RetryBackoff: cfg.retryBackoff,
	})
	if err != nil {
		return nil, err
	}
	c.group = g
	c.replicaCPU = func() sim.Duration { return 0 }
	if ng, ok := g.(*naive.Group); ok {
		c.replicaCPU = ng.ReplicaHandlerCPU
	}
	return c, nil
}

// newFanoutCluster builds the same deployment with the fan-out topology.
func newFanoutCluster(cfg clusterCfg) (*cluster, error) {
	if cfg.backend != BackendHyperLoop {
		return nil, fmt.Errorf("experiments: fan-out is only implemented for the HyperLoop backend")
	}
	if cfg.depth == 0 {
		cfg.depth = 32
	}
	k := cfg.ar.kernel(cfg.seed)
	fab := cfg.ar.fabric(k, rdma.DefaultConfig())
	client, err := fab.AddNIC("client", cfg.ar.device("client", devSize(cfg.mirror)))
	if err != nil {
		return nil, err
	}
	c := &cluster{k: k, fab: fab, client: client}
	var reps []*rdma.NIC
	for i := 0; i < cfg.replicas; i++ {
		host := fmt.Sprintf("server-%d", i)
		nic, err := fab.AddNIC(host, cfg.ar.device(host, devSize(cfg.mirror)))
		if err != nil {
			return nil, err
		}
		reps = append(reps, nic)
		sched, err := cpusim.New(k, cpusim.DefaultConfig(cfg.cores))
		if err != nil {
			return nil, err
		}
		c.scheds = append(c.scheds, sched)
	}
	gcfg := hyperloop.DefaultConfig(cfg.mirror)
	gcfg.Depth = cfg.depth
	g, err := hyperloop.SetupFanout(fab, client, reps, gcfg)
	if err != nil {
		return nil, err
	}
	c.group = g
	c.members = reps
	c.replicaCPU = func() sim.Duration { return 0 }
	return c, nil
}

// runLatency drives ops sequential (closed-loop) group writes of the given
// size and returns the latency histogram.
func (c *cluster) runLatency(ops, size int, issue func(f *sim.Fiber, i int) error) (*metrics.Histogram, error) {
	h := metrics.NewHistogram()
	var runErr error
	c.k.Spawn("latency-driver", func(f *sim.Fiber) {
		defer c.k.StopRun() // background tenant load runs forever; cut it here
		for i := 0; i < ops; i++ {
			start := f.Now()
			if err := issue(f, i); err != nil {
				runErr = fmt.Errorf("op %d: %w", i, err)
				return
			}
			h.RecordDuration(f.Now().Sub(start))
		}
	})
	if err := c.runToStop(30 * 60 * sim.Second); err != nil {
		return nil, err
	}
	if runErr != nil {
		return nil, runErr
	}
	if h.Count() < int64(ops) {
		return nil, fmt.Errorf("experiment timed out: %d/%d ops", h.Count(), ops)
	}
	return h, nil
}

// Report is one experiment's regenerated output.
type Report struct {
	ID     string
	Title  string
	Tables []*metrics.Table
	Notes  []string
}

// String renders the report.
func (r *Report) String() string {
	out := fmt.Sprintf("== %s: %s ==\n", r.ID, r.Title)
	for _, t := range r.Tables {
		out += "\n" + t.String()
	}
	for _, n := range r.Notes {
		out += "\nNote: " + n + "\n"
	}
	return out
}

// Scale selects run sizes: Quick for tests/benches, Full for paper-grade
// sample counts.
type Scale int

// Scales.
const (
	Quick Scale = iota + 1
	Full
)

func (s Scale) pick(quick, full int) int {
	if s == Full {
		return full
	}
	return quick
}

// runToStop runs the kernel until a driver calls StopRun or the horizon
// elapses; the perpetual tenant-load events never drain on their own.
func (c *cluster) runToStop(horizon sim.Duration) error {
	err := c.k.RunUntil(c.k.Now().Add(horizon))
	if err == sim.ErrStopped {
		return nil
	}
	return err
}

// messageSizes are Fig. 8's x-axis.
var messageSizes = []int{128, 256, 512, 1024, 2048, 4096, 8192}
