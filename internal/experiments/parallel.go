package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// procs holds the configured trial parallelism; 0 means GOMAXPROCS.
var procs atomic.Int32

// SetParallelism sets how many trials may run concurrently (0 restores the
// default of GOMAXPROCS) and returns the previous setting. Each trial owns
// a private sim.Kernel, so concurrency never changes virtual-time results:
// reports are byte-identical at any parallelism level.
func SetParallelism(n int) int {
	return int(procs.Swap(int32(n)))
}

// Parallelism returns the effective number of concurrent trial workers.
func Parallelism() int {
	if p := procs.Load(); p > 0 {
		return int(p)
	}
	return runtime.GOMAXPROCS(0)
}

// forEach runs job(0..n-1) on up to Parallelism() workers and waits for all
// of them. Each worker checks a trialArena out of the package pool and
// passes it to its jobs; the job builds its cluster/kernel/devices through
// the arena and writes results into its own index slot, and the worker
// releases the whole trial back to the arena when the job returns. When
// several jobs fail, the error of the lowest index is returned — the same
// one the serial loop would have hit first — so error reporting is
// deterministic under any scheduling.
func forEach(n int, job func(i int, ar *trialArena) error) error {
	if n <= 0 {
		return nil
	}
	workers := Parallelism()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		return withArena(func(ar *trialArena) error {
			for i := 0; i < n; i++ {
				err := job(i, ar)
				ar.endTrial()
				if err != nil {
					return err
				}
			}
			return nil
		})
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			ar := acquireArena()
			defer releaseArena(ar)
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = job(i, ar)
				ar.endTrial()
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
