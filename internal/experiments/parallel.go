package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// procs holds the configured trial parallelism; 0 means GOMAXPROCS.
var procs atomic.Int32

// SetParallelism sets how many trials may run concurrently (0 restores the
// default of GOMAXPROCS) and returns the previous setting. Each trial owns
// a private sim.Kernel, so concurrency never changes virtual-time results:
// reports are byte-identical at any parallelism level.
func SetParallelism(n int) int {
	return int(procs.Swap(int32(n)))
}

// Parallelism returns the effective number of concurrent trial workers.
func Parallelism() int {
	if p := procs.Load(); p > 0 {
		return int(p)
	}
	return runtime.GOMAXPROCS(0)
}

// forEach runs job(0..n-1) on up to Parallelism() workers and waits for all
// of them. Each job must be self-contained (build its own cluster/kernel and
// write results into its own index slot). When several jobs fail, the error
// of the lowest index is returned — the same one the serial loop would have
// hit first — so error reporting is deterministic under any scheduling.
func forEach(n int, job func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers := Parallelism()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := job(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = job(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
