package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// procs holds the configured trial parallelism; 0 means GOMAXPROCS.
var procs atomic.Int32

// SetParallelism sets how many trials may run concurrently (0 restores the
// default of GOMAXPROCS) and returns the previous setting. The budget is
// shared across experiments: when RunAll overlaps experiments, the total
// number of in-flight trials process-wide stays at this bound. Each trial
// owns a private sim.Kernel, so concurrency never changes virtual-time
// results: reports are byte-identical at any parallelism level.
func SetParallelism(n int) int {
	return int(procs.Swap(int32(n)))
}

// Parallelism returns the effective number of concurrent trial workers.
func Parallelism() int {
	if p := procs.Load(); p > 0 {
		return int(p)
	}
	return runtime.GOMAXPROCS(0)
}

// runTrial executes one trial job inside a slot of rc's shared budget,
// with an arena checked out of the package pool for exactly the trial's
// duration. The job builds its cluster/kernel/devices/fabric through the
// arena; endTrial (via releaseArena) returns everything and attributes
// the trial's counters to rc's sink.
func runTrial(rc *runCtx, i int, job func(i int, ar *trialArena) error) error {
	rc.acquire()
	defer rc.release()
	ar := acquireArena()
	defer releaseArena(ar, rc)
	return job(i, ar)
}

// forEach runs job(0..n-1) for the experiment run rc and waits for all
// jobs. Trials run on up to Parallelism() workers, each holding one slot
// of rc's shared cross-experiment budget (when rc carries one) per trial,
// and each job writes results into its own index slot. When several jobs
// fail, the error of the lowest index is returned — the same one the
// serial loop would have hit first — so error reporting is deterministic
// under any scheduling.
func forEach(rc *runCtx, n int, job func(i int, ar *trialArena) error) error {
	if n <= 0 {
		return nil
	}
	workers := Parallelism()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := runTrial(rc, i, job); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = runTrial(rc, i, job)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
