package experiments

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestForEachRunsAllIndices checks every index runs exactly once.
func TestForEachRunsAllIndices(t *testing.T) {
	prev := SetParallelism(4)
	defer SetParallelism(prev)
	const n = 100
	counts := make([]int32, n)
	if err := forEach(nil, n, func(i int, ar *trialArena) error {
		atomic.AddInt32(&counts[i], 1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("index %d ran %d times", i, c)
		}
	}
}

// TestForEachFirstErrorByIndex checks the reported error is the one at the
// lowest index, matching what a serial loop would surface, regardless of
// which worker finishes first.
func TestForEachFirstErrorByIndex(t *testing.T) {
	prev := SetParallelism(8)
	defer SetParallelism(prev)
	errLow := errors.New("low")
	errHigh := errors.New("high")
	for trial := 0; trial < 20; trial++ {
		err := forEach(nil, 16, func(i int, ar *trialArena) error {
			switch i {
			case 3:
				time.Sleep(time.Millisecond) // lowest-index failure finishes last
				return errLow
			case 11:
				return errHigh
			}
			return nil
		})
		if err != errLow {
			t.Fatalf("trial %d: err = %v, want %v", trial, err, errLow)
		}
	}
}

// TestForEachBoundsWorkers checks concurrency never exceeds SetParallelism.
func TestForEachBoundsWorkers(t *testing.T) {
	prev := SetParallelism(3)
	defer SetParallelism(prev)
	var cur, max int32
	var mu sync.Mutex
	if err := forEach(nil, 30, func(i int, ar *trialArena) error {
		c := atomic.AddInt32(&cur, 1)
		mu.Lock()
		if c > max {
			max = c
		}
		mu.Unlock()
		time.Sleep(time.Millisecond)
		atomic.AddInt32(&cur, -1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if max > 3 {
		t.Fatalf("observed %d concurrent jobs, want <= 3", max)
	}
}

// TestForEachSerialShortCircuits checks the serial fast path stops at the
// first failure instead of running the remaining jobs.
func TestForEachSerialShortCircuits(t *testing.T) {
	prev := SetParallelism(1)
	defer SetParallelism(prev)
	ran := 0
	boom := errors.New("boom")
	err := forEach(nil, 10, func(i int, ar *trialArena) error {
		ran++
		if i == 2 {
			return boom
		}
		return nil
	})
	if err != boom {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if ran != 3 {
		t.Fatalf("ran = %d jobs, want 3", ran)
	}
}

// TestSerialParallelIdentical is the golden test for the tentpole: every
// registered experiment must render a byte-identical Report whether trials
// run serially or on a parallel worker pool. Virtual time is computed per
// private kernel, so host-side scheduling must never leak into results.
func TestSerialParallelIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment twice")
	}
	prev := Parallelism()
	defer SetParallelism(prev)
	const seed = 42
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			SetParallelism(1)
			serial, err := Run(name, seed, Quick)
			if err != nil {
				t.Fatalf("serial: %v", err)
			}
			SetParallelism(8)
			parallel, err := Run(name, seed, Quick)
			if err != nil {
				t.Fatalf("parallel: %v", err)
			}
			if s, p := serial.String(), parallel.String(); s != p {
				t.Errorf("report differs between serial and parallel runs:\n--- serial ---\n%s\n--- parallel ---\n%s", s, p)
			}
		})
	}
}
