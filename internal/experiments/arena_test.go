package experiments

import (
	"testing"

	"hyperloop/internal/nvm"
)

// TestPooledVsFreshIdentical is the tentpole's golden test: trial-state
// pooling (devices, kernels, fabric buffer pools) must never move a
// virtual-time number. fig8a runs with pooling on and off, serially and
// on a parallel worker pool, and every report must be byte-identical.
func TestPooledVsFreshIdentical(t *testing.T) {
	const seed = 42
	prevProcs := Parallelism()
	defer SetParallelism(prevProcs)
	defer SetDevicePooling(SetDevicePooling(true))

	for _, procs := range []int{1, 8} {
		SetParallelism(procs)

		SetDevicePooling(true)
		pooled, err := Run("fig8a", seed, Quick)
		if err != nil {
			t.Fatalf("procs=%d pooled: %v", procs, err)
		}
		// Run pooled again so the second pass actually reuses state the
		// first pass pooled — the path a fresh-pool run can't exercise.
		pooledWarm, err := Run("fig8a", seed, Quick)
		if err != nil {
			t.Fatalf("procs=%d pooled warm: %v", procs, err)
		}

		SetDevicePooling(false)
		fresh, err := Run("fig8a", seed, Quick)
		if err != nil {
			t.Fatalf("procs=%d fresh: %v", procs, err)
		}

		if p, f := pooled.String(), fresh.String(); p != f {
			t.Errorf("procs=%d: pooled report differs from fresh:\n--- pooled ---\n%s\n--- fresh ---\n%s", procs, p, f)
		}
		if w, f := pooledWarm.String(), fresh.String(); w != f {
			t.Errorf("procs=%d: warm pooled report differs from fresh:\n--- pooled(warm) ---\n%s\n--- fresh ---\n%s", procs, w, f)
		}
	}
}

// TestArenaStatsShowReuse pins the acceptance criterion for the PR: with
// pooling on, a fig8a run reuses most devices and performs less than half
// the setup zeroing that per-trial fresh allocation would (the dirty-range
// reset only pays for bytes a trial actually wrote).
func TestArenaStatsShowReuse(t *testing.T) {
	prevProcs := SetParallelism(1)
	defer SetParallelism(prevProcs)
	defer SetDevicePooling(SetDevicePooling(true))
	SetDevicePooling(true)

	before := Stats()
	if _, err := Run("fig8a", 1, Quick); err != nil {
		t.Fatal(err)
	}
	after := Stats()

	reused := after.DeviceReused - before.DeviceReused
	gets := after.DeviceGets - before.DeviceGets
	zeroed := after.DeviceBytesZeroed - before.DeviceBytesZeroed
	demand := after.DeviceBytesDemand - before.DeviceBytesDemand
	if gets == 0 {
		t.Fatal("no device acquisitions recorded")
	}
	if reused == 0 {
		t.Fatalf("no devices reused across %d acquisitions", gets)
	}
	if zeroed >= demand/2 {
		t.Fatalf("device zeroing = %d of %d demanded bytes; want < 50%%", zeroed, demand)
	}
	if kr := after.KernelReused - before.KernelReused; kr == 0 {
		t.Fatal("no kernels reused")
	}
}

// TestArenaNoLeaks runs every experiment and asserts the trial arenas wind
// down to their idle state: nothing checked out mid-trial, every pooled
// kernel free of live fibers, every pooled device fully reset, and a
// second full pass keeps pool populations at the first pass's baseline
// (steady state, not growth).
func TestArenaNoLeaks(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment twice")
	}
	prevProcs := SetParallelism(1)
	defer SetParallelism(prevProcs)
	defer SetDevicePooling(SetDevicePooling(true))
	SetDevicePooling(true)

	runAll := func() {
		for _, name := range Names() {
			if _, err := Run(name, 7, Quick); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		}
	}
	checkIdle := func(pass string) (devices, kernels int64) {
		arenas.mu.Lock()
		defer arenas.mu.Unlock()
		for _, a := range arenas.all {
			if n := len(a.trialDevs) + len(a.trialKernels); n != 0 {
				t.Fatalf("%s: arena still holds %d trial objects", pass, n)
			}
			s := a.devices.Stats()
			if s.Gets != s.Puts {
				t.Fatalf("%s: %d devices acquired, %d released", pass, s.Gets, s.Puts)
			}
			for _, k := range a.kernels {
				if k.LiveFibers() != 0 {
					t.Fatalf("%s: pooled kernel has %d live fibers", pass, k.LiveFibers())
				}
				if k.PooledFibers() != 0 {
					t.Fatalf("%s: pooled kernel kept %d parked runner goroutines", pass, k.PooledFibers())
				}
			}
			a.devices.ForEachIdle(func(d *nvm.Device) {
				if d.WrittenBytes() != 0 || d.DirtyBytes() != 0 {
					t.Fatalf("%s: pooled device %q not reset (written=%d dirty=%d)",
						pass, d.Name(), d.WrittenBytes(), d.DirtyBytes())
				}
			})
			devices += int64(a.devices.Idle())
			kernels += int64(len(a.kernels))
		}
		return devices, kernels
	}

	runAll()
	dev1, ker1 := checkIdle("first pass")
	if dev1 == 0 || ker1 == 0 {
		t.Fatalf("pools empty after a full run: devices=%d kernels=%d", dev1, ker1)
	}
	runAll()
	dev2, ker2 := checkIdle("second pass")
	if dev2 != dev1 || ker2 != ker1 {
		t.Fatalf("pool populations drifted across identical passes: devices %d->%d, kernels %d->%d",
			dev1, dev2, ker1, ker2)
	}
}
