package experiments

import (
	"fmt"
	"math/rand"
	"testing"

	"hyperloop/internal/protocol"
	"hyperloop/internal/rdma"
	"hyperloop/internal/sim"
)

// randomFaultPlan derives a seed-deterministic stress plan: bidirectional
// random drop/dup/delay on every link, plus one or two crash/restart
// cycles on randomly chosen members. The generator only emits plans
// Validate accepts — alternating crash→restart per host with strictly
// increasing instants — so a rejected plan is a generator bug, not noise.
func randomFaultPlan(rng *rand.Rand, nReplicas int) *rdma.FaultPlan {
	p := &rdma.FaultPlan{
		Links: []rdma.LinkFault{{
			From: "", To: "", // any→any: client↔member and member↔member alike
			DropProb:   rng.Float64() * 0.10,
			DupProb:    rng.Float64() * 0.10,
			ExtraDelay: sim.Duration(rng.Intn(3000)) * sim.Nanosecond,
		}},
	}
	cycles := 1 + rng.Intn(2)
	at := sim.Time(0).Add(sim.Duration(300+rng.Intn(300)) * sim.Microsecond)
	for c := 0; c < cycles; c++ {
		host := fmt.Sprintf("server-%d", rng.Intn(nReplicas))
		down := sim.Duration(100+rng.Intn(300)) * sim.Microsecond
		p.NICs = append(p.NICs,
			rdma.NICFault{Host: host, At: at, Down: true},
			rdma.NICFault{Host: host, At: at.Add(down), Down: false})
		at = at.Add(down + sim.Duration(200+rng.Intn(400))*sim.Microsecond)
	}
	return p
}

// TestProtocolFaultStressProperty generalizes the rdma-level
// TestFaultStressAllOpsResolve to whole replication protocols: under a
// randomized drop/dup/delay plan with crash/restart cycles, every blocking
// group operation must resolve — success or a canonical op error — with
// nothing left in flight and the op accounting balanced, on every
// registered protocol at seeds 1, 2, and 42.
func TestProtocolFaultStressProperty(t *testing.T) {
	const ops = 80
	for _, name := range protocol.Names() {
		t.Run(name, func(t *testing.T) {
			for _, seed := range []uint64{1, 2, 42} {
				rng := rand.New(rand.NewSource(int64(seed)))
				plan := randomFaultPlan(rng, 3)
				if err := plan.Validate(); err != nil {
					t.Fatalf("seed %d: generator emitted an invalid plan: %v", seed, err)
				}
				c := confCluster(t, seed, name, clusterCfg{
					opTimeout: 150 * sim.Microsecond, maxRetries: 2, retryBackoff: 50 * sim.Microsecond,
					faults: plan,
				})
				g := c.group.(protocol.Protocol)
				var ok, failed int
				drive(t, c, func(f *sim.Fiber) error {
					for i := 0; i < ops; i++ {
						off := (i % 32) * 1024
						var err error
						switch i % 4 {
						case 0, 1:
							err = g.Write(f, off, 512, true)
						case 2:
							err = g.Memcpy(f, off, 40<<10, 256, false)
						case 3:
							err = g.Flush(f, off, 512)
						}
						switch {
						case err == nil:
							ok++
						case protocol.IsOpError(err):
							failed++
						default:
							return fmt.Errorf("op %d: non-op error %w", i, err)
						}
						f.Sleep(15 * sim.Microsecond)
					}
					return nil
				})
				if ok == 0 {
					t.Fatalf("seed %d: no op ever succeeded — plan too hostile to test anything", seed)
				}
				if fl := g.InFlight(); fl != 0 {
					t.Fatalf("seed %d: %d ops unresolved — timeout leak", seed, fl)
				}
				issued, completed := g.Stats()
				if completed > issued {
					t.Fatalf("seed %d: completed %d > issued %d", seed, completed, issued)
				}
				if fs := c.fab.FaultStats(); fs.Drops == 0 && fs.Dups == 0 {
					t.Fatalf("seed %d: plan injected nothing: %+v", seed, fs)
				}
				g.Close()
			}
		})
	}
}
