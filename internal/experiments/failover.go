package experiments

import (
	"fmt"

	"hyperloop/internal/chain"
	"hyperloop/internal/hyperloop"
	"hyperloop/internal/metrics"
	"hyperloop/internal/rdma"
	"hyperloop/internal/sim"
)

// Failover experiment constants. The crash lands mid-run, the monitor
// beats fast enough that suspicion (MissedThreshold consecutive missed
// beats) arrives ~1.5ms later, and the whole outage stays well inside the
// timeline window the report prints.
const (
	failoverMirror   = 256 << 10
	failoverCrashAt  = 2 * sim.Millisecond
	failoverBeat     = 500 * sim.Microsecond
	failoverMissed   = 3
	failoverBucket   = 500 * sim.Microsecond
	failoverBuckets  = 16 // timeline covers [0, 8ms)
	failoverMaxPause = 10 * sim.Millisecond
)

// failover kills the mid-chain replica of a 3-way HyperLoop group with a
// scheduled NIC crash and drives the §5 recovery protocol end to end:
// heartbeat suspicion → PauseWrites → catch-up onto a spare → Replace →
// fresh datapath → ResumeWrites. A closed-loop writer runs throughout and
// the report shows the recovery timeline, the write-latency cost of the
// outage, and the unavailability window (last good write before the crash
// to first good write after recovery).
func failover(rc *runCtx, seed uint64, scale Scale) (*Report, error) {
	ops := scale.pick(600, 6000)
	var rep *Report
	err := withArena(rc, func(ar *trialArena) error {
		r, err := failoverTrial(ar, seed, ops)
		rep = r
		return err
	})
	return rep, err
}

func failoverTrial(ar *trialArena, seed uint64, ops int) (*Report, error) {
	cfg := clusterCfg{
		seed:     seed,
		replicas: 3,
		mirror:   failoverMirror,
		backend:  BackendHyperLoop,
		cores:    16,
		ar:       ar,

		opTimeout:    200 * sim.Microsecond,
		maxRetries:   1,
		retryBackoff: 50 * sim.Microsecond,
		faults: &rdma.FaultPlan{
			NICs: []rdma.NICFault{{Host: "server-1", At: sim.Time(failoverCrashAt), Down: true}},
		},
	}
	c, err := newCluster(cfg)
	if err != nil {
		return nil, err
	}
	spare, err := c.fab.AddNIC("spare", ar.device("spare", devSize(failoverMirror)))
	if err != nil {
		return nil, err
	}
	mon, err := chain.New(c.k, c.nics(), chain.Config{
		HeartbeatEvery:  failoverBeat,
		MissedThreshold: failoverMissed,
	})
	if err != nil {
		return nil, err
	}

	// Recovery bookkeeping. Everything runs on one kernel, so plain
	// variables shared between the fibers are race-free.
	var (
		tSuspect, tCatchup, tResetup sim.Time
		lastOKBefore, firstOKAfter   sim.Time
		failedIdx                    = -1
		sawFailure                   bool
		timeouts                     int64
		repairErr                    error
	)
	suspected := sim.NewSignal()
	mon.OnSuspect(func(idx int) {
		failedIdx = idx
		tSuspect = c.k.Now()
		mon.PauseWrites()
		suspected.Fire(nil)
	})
	mon.Start()

	group := c.group // swapped for the re-established datapath on recovery
	c.k.Spawn("repair", func(f *sim.Fiber) {
		if err := f.Await(suspected); err != nil {
			return // kernel stopped before any failure
		}
		if _, err := mon.CatchUp(f, spare, failoverMirror); err != nil {
			repairErr = fmt.Errorf("catch-up: %w", err)
			return
		}
		tCatchup = f.Now()
		if err := mon.Replace(failedIdx, spare); err != nil {
			repairErr = fmt.Errorf("replace: %w", err)
			return
		}
		// Tear the old datapath down before re-Setup: both groups allocate
		// control rings at the same device offsets, so the abandoned QPs
		// must be destroyed or they race the new group for its completions.
		c.group.(*hyperloop.Group).Close()
		members := append([]*rdma.NIC(nil), c.nics()...)
		members[failedIdx] = spare
		gcfg := hyperloop.DefaultConfig(failoverMirror)
		gcfg.OpTimeout = cfg.opTimeout
		gcfg.MaxRetries = cfg.maxRetries
		gcfg.RetryBackoff = cfg.retryBackoff
		g2, err := hyperloop.Setup(c.fab, c.client, members, gcfg)
		if err != nil {
			repairErr = fmt.Errorf("re-setup: %w", err)
			return
		}
		tResetup = f.Now()
		group = g2
		mon.ResumeWrites()
	})

	pre, post := metrics.NewHistogram(), metrics.NewHistogram()
	okBucket := make([]int64, failoverBuckets)
	toBucket := make([]int64, failoverBuckets)
	maxBucket := make([]sim.Duration, failoverBuckets)
	bucketOf := func(t sim.Time) int {
		b := int(t.Sub(sim.Time(0)) / failoverBucket)
		if b < 0 || b >= failoverBuckets {
			return -1
		}
		return b
	}
	var runErr error
	c.k.Spawn("failover-writer", func(f *sim.Fiber) {
		defer mon.Stop()
		defer c.k.StopRun()
		deadline := f.Now().Add(sim.Second)
		for i := 0; i < ops; i++ {
			off := (i % 128) * 2048
			for {
				if f.Now() > deadline {
					runErr = fmt.Errorf("op %d: gave up at t=%v (%d timeouts, paused=%v)",
						i, f.Now(), timeouts, mon.Paused())
					return
				}
				if mon.Paused() {
					f.Sleep(50 * sim.Microsecond)
					continue
				}
				start := f.Now()
				err := group.Write(f, off, 1024, true)
				now := f.Now()
				if err != nil {
					sawFailure = true
					timeouts++
					if b := bucketOf(now); b >= 0 {
						toBucket[b]++
					}
					f.Sleep(100 * sim.Microsecond)
					continue
				}
				lat := now.Sub(start)
				if b := bucketOf(now); b >= 0 {
					okBucket[b]++
					if lat > maxBucket[b] {
						maxBucket[b] = lat
					}
				}
				if !sawFailure {
					lastOKBefore = now
					pre.RecordDuration(lat)
				} else {
					if firstOKAfter == 0 {
						firstOKAfter = now
					}
					post.RecordDuration(lat)
				}
				break
			}
		}
	})
	if err := c.runToStop(30 * 60 * sim.Second); err != nil {
		return nil, err
	}
	if repairErr != nil {
		return nil, repairErr
	}
	if runErr != nil {
		return nil, runErr
	}
	if !sawFailure || firstOKAfter == 0 {
		return nil, fmt.Errorf("failover: crash produced no observable outage (failures=%v firstOKAfter=%v)", sawFailure, firstOKAfter)
	}
	window := firstOKAfter.Sub(lastOKBefore)
	if window > failoverMaxPause {
		return nil, fmt.Errorf("failover: unavailability window %v exceeds the %v bound", window, failoverMaxPause)
	}

	fd := func(d sim.Duration) string { return metrics.FormatDuration(d) }
	ft := func(t sim.Time) string { return metrics.FormatDuration(t.Sub(sim.Time(0))) }
	timeline := metrics.NewTable("Recovery timeline (virtual time)", "event", "t")
	timeline.AddRow("NIC crash injected (server-1)", fd(failoverCrashAt))
	timeline.AddRow(fmt.Sprintf("failure suspected, writes paused (%d beats @ %s)", failoverMissed, fd(failoverBeat)), ft(tSuspect))
	timeline.AddRow("catch-up transfer complete (spare)", ft(tCatchup))
	timeline.AddRow("datapath re-established, writes resumed", ft(tResetup))
	timeline.AddRow("last good write before outage", ft(lastOKBefore))
	timeline.AddRow("first good write after recovery", ft(firstOKAfter))
	timeline.AddRow("unavailability window", fd(window))

	lat := metrics.NewTable("1KB durable gWRITE latency around the outage", "phase", "ops", "avg", "p99")
	lat.AddRow("pre-crash", pre.Count(), fd(pre.MeanDuration()), fd(pre.PercentileDuration(0.99)))
	lat.AddRow("post-recovery", post.Count(), fd(post.MeanDuration()), fd(post.PercentileDuration(0.99)))

	tl := metrics.NewTable(fmt.Sprintf("Write timeline (%s buckets)", fd(failoverBucket)),
		"t", "writes ok", "timeouts", "max latency")
	for b := 0; b < failoverBuckets; b++ {
		maxs := "-"
		if okBucket[b] > 0 {
			maxs = fd(maxBucket[b])
		}
		tl.AddRow(fd(sim.Duration(b)*failoverBucket), okBucket[b], toBucket[b], maxs)
	}

	groups := []groupAPI{c.group}
	if group != c.group {
		groups = append(groups, group)
	}
	retried := int64(0)
	for _, g := range groups {
		if r, ok := g.(interface{ Retried() int64 }); ok {
			retried += r.Retried()
		}
	}
	fs := c.fab.FaultStats()
	return &Report{
		ID: "failover", Title: "Failover: mid-chain crash, suspicion, catch-up, resume (§5)",
		Tables: []*metrics.Table{timeline, lat, tl},
		Notes: []string{
			fmt.Sprintf("unavailability window %s = detection (%d×%s heartbeats) + catch-up + re-setup; bound %s",
				fd(window), failoverMissed, fd(failoverBeat), fd(failoverMaxPause)),
			fmt.Sprintf("%d write attempts timed out during the outage; %d client-level retries; %d packets dropped at the dead NIC",
				timeouts, retried, fs.Drops),
			"HyperLoop accelerates only the datapath: detection and membership are the application's recovery protocol (chain package)",
		},
	}, nil
}
