package experiments

import (
	"sync"
	"testing"
)

// TestStatAttributionUnderOverlap runs two experiments alone, then again
// concurrently over one shared trial budget, and checks each experiment's
// StatSink reads the same both ways: sim events, CQEs, messages, wire
// bytes, and the arena demand counters all belong to exactly one
// experiment, never to whichever run happened to share the machine.
func TestStatAttributionUnderOverlap(t *testing.T) {
	prev := SetParallelism(2)
	defer SetParallelism(prev)
	const seed = 42
	ids := []string{"fig8a", "abl-depth"}

	alone := make(map[string]StatSink)
	for _, id := range ids {
		_, s, err := RunStats(id, seed, Quick)
		if err != nil {
			t.Fatalf("%s alone: %v", id, err)
		}
		if s.SimEvents == 0 || s.CQEs == 0 || s.Messages == 0 || s.WireBytes == 0 {
			t.Fatalf("%s alone: sink not populated: %+v", id, s)
		}
		alone[id] = s
	}

	overlapped, err := RunAll(ids, seed, Quick)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range overlapped {
		want := deterministicStats(alone[r.ID])
		got := deterministicStats(r.Stats)
		if got != want {
			t.Errorf("%s: overlapped sink differs from solo run:\noverlapped: %+v\nsolo:       %+v", r.ID, got, want)
		}
	}
}

// TestStatSinkAdd checks the trial-to-sink accumulation arithmetic.
func TestStatSinkAdd(t *testing.T) {
	var s StatSink
	s.add(StatSink{SimEvents: 3, CQEs: 2, DeviceGets: 1, FabricBuilds: 1})
	s.add(StatSink{SimEvents: 4, Messages: 5, WireBytes: 640, KernelGets: 2})
	want := StatSink{SimEvents: 7, CQEs: 2, Messages: 5, WireBytes: 640,
		DeviceGets: 1, KernelGets: 2, FabricBuilds: 1}
	if s != want {
		t.Fatalf("sink = %+v, want %+v", s, want)
	}
}

// TestRunCtxNilSafe checks the nil receiver contract: direct calls like
// experiments_test helpers run trials with no runCtx at all.
func TestRunCtxNilSafe(t *testing.T) {
	var rc *runCtx
	rc.acquire()
	rc.release()
	rc.addTrial(StatSink{SimEvents: 1})
	if s := rc.stats(); s != (StatSink{}) {
		t.Fatalf("nil runCtx stats = %+v, want zero", s)
	}
}

// TestRunCtxConcurrentAddTrial checks sink accumulation is safe when a
// trial pool reports from many workers at once.
func TestRunCtxConcurrentAddTrial(t *testing.T) {
	rc := &runCtx{}
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rc.addTrial(StatSink{SimEvents: 1, CQEs: 2})
		}()
	}
	wg.Wait()
	if s := rc.stats(); s.SimEvents != 32 || s.CQEs != 64 {
		t.Fatalf("stats = %+v, want 32 trials of {1,2}", s)
	}
}
