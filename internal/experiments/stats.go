package experiments

import "sync"

// StatSink accumulates the simulation counters attributed to exactly one
// experiment run. Attribution is local, not global: every trial owns a
// private kernel and fabric whose counters rewind when the arena checks
// them out, and endTrial folds the trial's deltas into the sink of the
// experiment that ran the trial. Two overlapped experiments therefore
// never scramble each other's numbers — each sink reads the same as it
// would had its experiment run alone (TestStatAttributionOverlapped).
//
// Deterministic fields — identical at any parallelism, any overlap, and
// with pooling on or off: SimEvents, CQEs, Messages, WireBytes, and the
// demand-side arena counters (DeviceGets, DevicePuts, DeviceBytesDemand,
// KernelGets, FabricBuilds). Supply-side splits (Fresh vs Reused,
// BytesZeroed) depend on which worker's pools happened to be warm, so
// they are advisory; only the totals they split are pinned.
type StatSink struct {
	// SimEvents counts simulation events executed by the run's trial
	// kernels; CQEs, Messages and WireBytes are the trial fabrics' totals.
	SimEvents int64
	CQEs      int64
	Messages  int64
	WireBytes int64

	// FastDispatches/SlowDispatches split fiber control transfers between
	// the inline direct-dispatch fast path and the classic goroutine
	// rendezvous. Deterministic for a fixed fast-path setting, but the
	// split moves wholesale when -fastpath=off forces every dispatch slow,
	// so regression gates treat them as advisory.
	FastDispatches int64
	SlowDispatches int64

	// Arena counters for the run's trials. Gets/Puts/BytesDemand count
	// what trials asked for (deterministic); Fresh/Reused/BytesZeroed
	// count how the pools happened to serve it (advisory).
	DeviceGets        int64
	DevicePuts        int64
	DeviceFresh       int64
	DeviceReused      int64
	DeviceBytesZeroed int64
	DeviceBytesDemand int64

	KernelGets   int64
	KernelFresh  int64
	KernelReused int64

	FabricBuilds int64
	FabricReused int64
}

// add folds one trial's counters into the sink.
func (s *StatSink) add(t StatSink) {
	s.SimEvents += t.SimEvents
	s.FastDispatches += t.FastDispatches
	s.SlowDispatches += t.SlowDispatches
	s.CQEs += t.CQEs
	s.Messages += t.Messages
	s.WireBytes += t.WireBytes
	s.DeviceGets += t.DeviceGets
	s.DevicePuts += t.DevicePuts
	s.DeviceFresh += t.DeviceFresh
	s.DeviceReused += t.DeviceReused
	s.DeviceBytesZeroed += t.DeviceBytesZeroed
	s.DeviceBytesDemand += t.DeviceBytesDemand
	s.KernelGets += t.KernelGets
	s.KernelFresh += t.KernelFresh
	s.KernelReused += t.KernelReused
	s.FabricBuilds += t.FabricBuilds
	s.FabricReused += t.FabricReused
}

// runCtx is one experiment run's identity: the sink its trials report
// into and, when the run is dispatched by the two-level scheduler, the
// shared trial-slot budget it draws workers from. A nil runCtx is valid
// everywhere and means "unattributed" (stats dropped, no shared budget) —
// the path unit tests and helpers outside Run take.
type runCtx struct {
	mu   sync.Mutex
	sink StatSink

	// sem is the cross-experiment trial budget: a worker holds one slot
	// for the duration of each trial, so the total number of in-flight
	// trials across every overlapped experiment never exceeds the -procs
	// setting. Slots are granted critical-path-first: a freed slot goes to
	// the waiting trial of the costliest experiment (prio, from the
	// installed cost hints). nil means the run is not sharing a budget and
	// forEach's own worker bound (Parallelism) is the only limit.
	sem  *prioSem
	prio float64
}

// addTrial folds one finished trial's counters into the run's sink.
// Workers of the same experiment call it concurrently.
func (rc *runCtx) addTrial(t StatSink) {
	if rc == nil {
		return
	}
	rc.mu.Lock()
	rc.sink.add(t)
	rc.mu.Unlock()
}

// stats returns a snapshot of the sink.
func (rc *runCtx) stats() StatSink {
	if rc == nil {
		return StatSink{}
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.sink
}

// acquire takes one trial slot from the shared budget (no-op without one),
// waiting at the run's cost priority.
func (rc *runCtx) acquire() {
	if rc != nil && rc.sem != nil {
		rc.sem.acquire(rc.prio)
	}
}

// release returns a trial slot to the shared budget; the slot is stolen
// immediately by the highest-priority waiting trial, if any.
func (rc *runCtx) release() {
	if rc != nil && rc.sem != nil {
		rc.sem.release()
	}
}
