package experiments

import "sync"

// Cost hints: wall-cost estimates per experiment id, typically loaded from
// a previous run's BENCH_baseline.json wall_ms figures. RunAll uses them
// two ways: experiments launch in LPT (longest-processing-time-first)
// order so the heavy hitters start immediately, and the shared trial-slot
// semaphore arbitrates every freed slot toward the costliest waiting
// experiment (critical-path-first). Hints only shape scheduling — results
// and attributed counters are byte-identical with or without them.
var (
	costHintsMu sync.Mutex
	costHints   map[string]float64
)

// SetCostHints installs per-experiment wall-cost estimates for RunAll's
// scheduler and returns the previous hints. Unknown experiments simply get
// cost zero (scheduled last); nil clears all hints.
func SetCostHints(h map[string]float64) map[string]float64 {
	costHintsMu.Lock()
	defer costHintsMu.Unlock()
	prev := costHints
	if h == nil {
		costHints = nil
	} else {
		costHints = make(map[string]float64, len(h))
		for k, v := range h {
			costHints[k] = v
		}
	}
	return prev
}

// snapshotCostHints returns a private copy of the installed hints.
func snapshotCostHints() map[string]float64 {
	costHintsMu.Lock()
	defer costHintsMu.Unlock()
	if len(costHints) == 0 {
		return nil
	}
	h := make(map[string]float64, len(costHints))
	for k, v := range costHints {
		h[k] = v
	}
	return h
}

// prioSem is a counting semaphore whose release hands the freed slot to
// the highest-priority waiter instead of an arbitrary one. Ties break
// FIFO. It replaces the plain channel semaphore in the cross-experiment
// trial budget: an idle slot is a stolen slot, and it should go to the
// experiment with the most wall-clock left to burn.
type prioSem struct {
	mu      sync.Mutex
	free    int
	seq     uint64
	waiters []semWaiter // max-heap on (prio, -seq)
}

type semWaiter struct {
	prio float64
	seq  uint64
	ch   chan struct{}
}

func newPrioSem(n int) *prioSem { return &prioSem{free: n} }

// before reports whether waiter a should be granted ahead of waiter b.
func (a semWaiter) before(b semWaiter) bool {
	if a.prio != b.prio {
		return a.prio > b.prio
	}
	return a.seq < b.seq
}

// acquire takes one slot, blocking with the given priority if none is free.
func (s *prioSem) acquire(prio float64) {
	s.mu.Lock()
	if s.free > 0 {
		s.free--
		s.mu.Unlock()
		return
	}
	w := semWaiter{prio: prio, seq: s.seq, ch: make(chan struct{})}
	s.seq++
	s.waiters = append(s.waiters, w)
	s.up(len(s.waiters) - 1)
	s.mu.Unlock()
	<-w.ch
}

// release frees one slot, granting it to the best waiter if any.
func (s *prioSem) release() {
	s.mu.Lock()
	if n := len(s.waiters); n > 0 {
		w := s.waiters[0]
		s.waiters[0] = s.waiters[n-1]
		s.waiters = s.waiters[:n-1]
		s.down(0)
		s.mu.Unlock()
		close(w.ch)
		return
	}
	s.free++
	s.mu.Unlock()
}

func (s *prioSem) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !s.waiters[i].before(s.waiters[p]) {
			return
		}
		s.waiters[i], s.waiters[p] = s.waiters[p], s.waiters[i]
		i = p
	}
}

func (s *prioSem) down(i int) {
	n := len(s.waiters)
	for {
		best, l, r := i, 2*i+1, 2*i+2
		if l < n && s.waiters[l].before(s.waiters[best]) {
			best = l
		}
		if r < n && s.waiters[r].before(s.waiters[best]) {
			best = r
		}
		if best == i {
			return
		}
		s.waiters[i], s.waiters[best] = s.waiters[best], s.waiters[i]
		i = best
	}
}
