package experiments

import (
	"bytes"
	"fmt"
	"time"

	"hyperloop/internal/metrics"
	"hyperloop/internal/sim"
	"hyperloop/internal/txn"
	"hyperloop/internal/wal"
)

// microCluster builds the §6.1 microbenchmark deployment: 3 replicas (or
// more), 16-core servers with multi-tenant co-located load, one backend.
// ar supplies the trial's kernel/devices/buffers; nil builds fresh.
func microCluster(ar *trialArena, seed uint64, backend Backend, replicas int, loaded bool) (*cluster, error) {
	cfg := clusterCfg{
		seed:     seed,
		replicas: replicas,
		mirror:   1 << 20,
		backend:  backend,
		cores:    16,
		ar:       ar,
	}
	if loaded {
		cfg.multiTenantLoad()
	}
	return newCluster(cfg)
}

// latencyTrial measures one (backend, size) latency point on its own
// private cluster — the self-contained unit forEach runs concurrently.
func latencyTrial(ar *trialArena, seed uint64, backend Backend, replicas, ops, size int,
	issue func(c *cluster, f *sim.Fiber, size, i int) error) (*metrics.Histogram, error) {
	c, err := microCluster(ar, seed, backend, replicas, true)
	if err != nil {
		return nil, err
	}
	return c.runLatency(ops, size, func(f *sim.Fiber, i int) error {
		return issue(c, f, size, i)
	})
}

// writeIssue performs one gWRITE of size bytes at a rotating offset.
func writeIssue(c *cluster, f *sim.Fiber, size, i int) error {
	off := (i % 32) * 16384
	if off+size > 1<<20 {
		off = 0
	}
	return c.group.Write(f, off, size, true)
}

// memcpyIssue performs one gMEMCPY of size bytes.
func memcpyIssue(c *cluster, f *sim.Fiber, size, i int) error {
	src := (i % 16) * 16384
	dst := 512 * 1024
	return c.group.Memcpy(f, src, dst, size, true)
}

// Fig8a regenerates Figure 8(a): average and 99th-percentile gWRITE
// latency vs message size, HyperLoop vs Naive-RDMA, group size 3, under
// multi-tenant load on the replicas.
func fig8a(rc *runCtx, seed uint64, scale Scale) (*Report, error) {
	return fig8(rc, seed, scale, "fig8a", "gWRITE latency vs message size (Fig. 8a)", writeIssue)
}

// Fig8b regenerates Figure 8(b): the same sweep for gMEMCPY.
func fig8b(rc *runCtx, seed uint64, scale Scale) (*Report, error) {
	return fig8(rc, seed, scale, "fig8b", "gMEMCPY latency vs message size (Fig. 8b)", memcpyIssue)
}

func fig8(rc *runCtx, seed uint64, scale Scale, id, title string,
	issue func(c *cluster, f *sim.Fiber, size, i int) error) (*Report, error) {
	ops := scale.pick(300, 10000)
	backends := []Backend{BackendNaiveEvent, BackendHyperLoop}
	// One job per (backend, size); each builds its own cluster, so the
	// trials run concurrently and merge in deterministic point order.
	hists := make([]*metrics.Histogram, len(backends)*len(messageSizes))
	err := forEach(rc, len(hists), func(j int, ar *trialArena) error {
		bi, si := j/len(messageSizes), j%len(messageSizes)
		h, err := latencyTrial(ar, seed+uint64(si), backends[bi], 3, ops, messageSizes[si], issue)
		if err != nil {
			return fmt.Errorf("%v size %d: %w", backends[bi], messageSizes[si], err)
		}
		hists[j] = h
		return nil
	})
	if err != nil {
		return nil, err
	}
	tbl := metrics.NewTable(title,
		"size", "naive avg", "naive p99", "hyperloop avg", "hyperloop p99", "p99 speedup")
	var worst string
	var worstRatio float64
	for si, size := range messageSizes {
		n, h := hists[si], hists[len(messageSizes)+si]
		ratio := float64(n.Percentile(99)) / float64(maxInt64(h.Percentile(99), 1))
		if ratio > worstRatio {
			worstRatio = ratio
			worst = metrics.FormatBytes(size)
		}
		tbl.AddRow(metrics.FormatBytes(size),
			n.MeanDuration(), n.PercentileDuration(99),
			h.MeanDuration(), h.PercentileDuration(99),
			metrics.Ratio(n.PercentileDuration(99), h.PercentileDuration(99)))
	}
	return &Report{
		ID: id, Title: title,
		Tables: []*metrics.Table{tbl},
		Notes: []string{fmt.Sprintf(
			"largest p99 reduction %.0fx at %s (paper reports up to ~800x for gWRITE, ~848x for gMEMCPY)",
			worstRatio, worst)},
	}, nil
}

// Table2 regenerates Table 2: gCAS latency statistics (avg/p95/p99) for
// Naive-RDMA vs HyperLoop.
func table2(rc *runCtx, seed uint64, scale Scale) (*Report, error) {
	ops := scale.pick(500, 10000)
	measure := func(ar *trialArena, backend Backend) (*metrics.Histogram, error) {
		c, err := microCluster(ar, seed, backend, 3, true)
		if err != nil {
			return nil, err
		}
		exec := []bool{true, true, true}
		val := uint64(0)
		return c.runLatency(ops, 8, func(f *sim.Fiber, i int) error {
			_, err := c.group.CAS(f, 0, val, val+1, exec)
			val++
			return err
		})
	}
	backends := []Backend{BackendNaiveEvent, BackendHyperLoop}
	hists := make([]*metrics.Histogram, len(backends))
	if err := forEach(rc, len(backends), func(j int, ar *trialArena) error {
		h, err := measure(ar, backends[j])
		if err != nil {
			return err
		}
		hists[j] = h
		return nil
	}); err != nil {
		return nil, err
	}
	nh, hh := hists[0], hists[1]
	tbl := metrics.NewTable("Table 2: gCAS latency", "impl", "average", "p95", "p99")
	tbl.AddRow("Naive-RDMA", nh.MeanDuration(), nh.PercentileDuration(95), nh.PercentileDuration(99))
	tbl.AddRow("HyperLoop", hh.MeanDuration(), hh.PercentileDuration(95), hh.PercentileDuration(99))
	return &Report{
		ID: "table2", Title: "gCAS latency (Table 2)",
		Tables: []*metrics.Table{tbl},
		Notes: []string{
			"paper: naive 539µs/3928µs/11886µs vs hyperloop 10µs/13µs/14µs",
			fmt.Sprintf("measured p99 ratio: %s", metrics.Ratio(nh.PercentileDuration(99), hh.PercentileDuration(99))),
		},
	}, nil
}

// Fig9 regenerates Figure 9: gWRITE throughput and critical-path CPU
// consumption vs message size. Total transfer per point is scaled down
// from the paper's 1 GB (see EXPERIMENTS.md).
func fig9(rc *runCtx, seed uint64, scale Scale) (*Report, error) {
	sizes := []int{1024, 2048, 4096, 8192, 16384, 32768, 65536}
	totalBytes := scale.pick(2<<20, 64<<20)
	const window = 16

	type point struct {
		kops float64
		cpu  float64
	}
	measure := func(ar *trialArena, backend Backend, size int) (point, error) {
		cfg := clusterCfg{
			seed: seed, replicas: 3, mirror: 1 << 20, backend: backend, cores: 16, ar: ar,
		}
		cfg.multiTenantLoad()
		if backend == BackendNaivePinned {
			// A dedicated tight polling loop forwards in ~1µs per op
			// (poll + parse + post), unlike the interrupt-driven handler.
			cfg.naiveRecvCPU = 600 * sim.Nanosecond
			cfg.naivePostCPU = 200 * sim.Nanosecond
		}
		c, err := newCluster(cfg)
		if err != nil {
			return point{}, err
		}
		ops := totalBytes / size
		if ops < window*2 {
			ops = window * 2
		}
		var start, end sim.Time
		var runErr error
		c.k.Spawn("tput-driver", func(f *sim.Fiber) {
			defer c.k.StopRun()
			start = f.Now()
			sigs := make([]*sim.Signal, 0, window)
			for i := 0; i < ops; i++ {
				off := (i % 8) * 65536
				sig, err := c.group.WriteAsync(off, size, true)
				if err != nil {
					runErr = err
					return
				}
				sigs = append(sigs, sig)
				if len(sigs) == window {
					if err := f.Await(sigs[0]); err != nil {
						runErr = err
						return
					}
					sigs = sigs[1:]
				}
			}
			if err := f.AwaitAll(sigs...); err != nil {
				runErr = err
				return
			}
			end = f.Now()
		})
		if err := c.runToStop(30 * 60 * sim.Second); err != nil {
			return point{}, err
		}
		if runErr != nil {
			return point{}, runErr
		}
		if end == 0 {
			return point{}, fmt.Errorf("%v size %d: run did not finish", backend, size)
		}
		elapsed := end.Sub(start)
		if elapsed <= 0 {
			elapsed = time.Nanosecond
		}
		kops := float64(ops) / elapsed.Seconds() / 1000
		// Critical-path CPU: replica handler CPU as a fraction of one
		// core over the run (HyperLoop: identically zero).
		cpu := 100 * float64(c.replicaCPU()) / float64(elapsed) / 3
		return point{kops: kops, cpu: cpu}, nil
	}

	backends := []Backend{BackendNaivePinned, BackendHyperLoop}
	points := make([]point, len(sizes)*len(backends))
	if err := forEach(rc, len(points), func(j int, ar *trialArena) error {
		si, bi := j/len(backends), j%len(backends)
		p, err := measure(ar, backends[bi], sizes[si])
		if err != nil {
			return err
		}
		points[j] = p
		return nil
	}); err != nil {
		return nil, err
	}
	tbl := metrics.NewTable("Figure 9: gWRITE throughput and replica CPU",
		"size", "naive Kops/s", "naive CPU%", "hyperloop Kops/s", "hyperloop CPU%")
	for si, size := range sizes {
		np, hp := points[si*len(backends)], points[si*len(backends)+1]
		tbl.AddRow(metrics.FormatBytes(size),
			fmt.Sprintf("%.1f", np.kops), fmt.Sprintf("%.0f%%", np.cpu),
			fmt.Sprintf("%.1f", hp.kops), fmt.Sprintf("%.0f%%", hp.cpu))
	}
	return &Report{
		ID: "fig9", Title: "gWRITE throughput + critical-path CPU (Fig. 9)",
		Tables: []*metrics.Table{tbl},
		Notes: []string{
			"paper: comparable throughput; naive burns ~a full core per replica, hyperloop ~0%",
			fmt.Sprintf("total transfer per point scaled to %d MB (paper: 1 GB)", totalBytes>>20),
		},
	}, nil
}

// Fig10 regenerates Figure 10: p99 gWRITE latency vs message size for
// group sizes 3, 5 and 7, per backend.
func fig10(rc *runCtx, seed uint64, scale Scale) (*Report, error) {
	ops := scale.pick(200, 10000)
	groupSizes := []int{3, 5, 7}
	sizes := messageSizes

	backends := []Backend{BackendNaiveEvent, BackendHyperLoop}
	// Flatten the triple loop (backend × group size × message size) into one
	// job list; indexing keeps row/column assembly in deterministic order.
	hists := make([]*metrics.Histogram, len(backends)*len(groupSizes)*len(sizes))
	if err := forEach(rc, len(hists), func(j int, ar *trialArena) error {
		bi := j / (len(groupSizes) * len(sizes))
		gi := j / len(sizes) % len(groupSizes)
		si := j % len(sizes)
		backend, g, size := backends[bi], groupSizes[gi], sizes[si]
		h, err := latencyTrial(ar, seed+uint64(si), backend, g, ops, size,
			func(c *cluster, f *sim.Fiber, size, i int) error {
				return writeIssue(c, f, size, i)
			})
		if err != nil {
			return fmt.Errorf("%v G=%d size=%d: %w", backend, g, size, err)
		}
		hists[j] = h
		return nil
	}); err != nil {
		return nil, err
	}
	at := func(bi, gi, si int) *metrics.Histogram {
		return hists[(bi*len(groupSizes)+gi)*len(sizes)+si]
	}

	var tables []*metrics.Table
	growth := make(map[Backend]float64)
	for bi, backend := range backends {
		tbl := metrics.NewTable(fmt.Sprintf("Figure 10: p99 gWRITE latency, %v", backend),
			"size", "G=3", "G=5", "G=7", "G7/G3")
		var maxGrowth float64
		for si, size := range sizes {
			p3 := at(bi, 0, si).PercentileDuration(99)
			p5 := at(bi, 1, si).PercentileDuration(99)
			p7 := at(bi, 2, si).PercentileDuration(99)
			g := float64(p7) / float64(maxInt64(int64(p3), 1))
			if g > maxGrowth {
				maxGrowth = g
			}
			tbl.AddRow(metrics.FormatBytes(size), p3, p5, p7, fmt.Sprintf("%.2fx", g))
		}
		growth[backend] = maxGrowth
		tables = append(tables, tbl)
	}
	return &Report{
		ID: "fig10", Title: "p99 gWRITE latency vs group size (Fig. 10)",
		Tables: tables,
		Notes: []string{
			fmt.Sprintf("naive grows up to %.2fx from G=3 to G=7 (paper: up to 2.97x); hyperloop %.2fx (paper: flat)",
				growth[BackendNaiveEvent], growth[BackendHyperLoop]),
		},
	}, nil
}

// AblationNoLoad isolates the NIC-offload benefit from multi-tenant
// scheduling: with idle replica CPUs the naive baseline is competitive,
// showing the paper's point that the CPU *scheduling*, not raw CPU speed,
// causes the tail.
func ablationNoLoad(rc *runCtx, seed uint64, scale Scale) (*Report, error) {
	ops := scale.pick(300, 5000)
	measure := func(ar *trialArena, backend Backend, loaded bool) (*metrics.Histogram, error) {
		c, err := microCluster(ar, seed, backend, 3, loaded)
		if err != nil {
			return nil, err
		}
		return c.runLatency(ops, 1024, func(f *sim.Fiber, i int) error {
			return writeIssue(c, f, 1024, i)
		})
	}
	backends := []Backend{BackendNaiveEvent, BackendHyperLoop}
	loads := []bool{false, true}
	hists := make([]*metrics.Histogram, len(backends)*len(loads))
	if err := forEach(rc, len(hists), func(j int, ar *trialArena) error {
		h, err := measure(ar, backends[j/len(loads)], loads[j%len(loads)])
		if err != nil {
			return err
		}
		hists[j] = h
		return nil
	}); err != nil {
		return nil, err
	}
	tbl := metrics.NewTable("Ablation: co-located load on replica CPUs (1KB gWRITE)",
		"impl", "load", "avg", "p99")
	for bi, backend := range backends {
		for li, loaded := range loads {
			h := hists[bi*len(loads)+li]
			label := "idle"
			if loaded {
				label = "multi-tenant"
			}
			tbl.AddRow(backend.String(), label, h.MeanDuration(), h.PercentileDuration(99))
		}
	}
	return &Report{
		ID: "abl-load", Title: "Ablation: scheduling delay is the root cause",
		Tables: []*metrics.Table{tbl},
		Notes:  []string{"naive is µs-scale when idle; only co-located load separates the designs"},
	}, nil
}

// AblationFlush quantifies the durability (gFLUSH interleaving) cost.
func ablationFlush(rc *runCtx, seed uint64, scale Scale) (*Report, error) {
	ops := scale.pick(300, 5000)
	measure := func(ar *trialArena, durable bool) (*metrics.Histogram, error) {
		c, err := microCluster(ar, seed, BackendHyperLoop, 3, false)
		if err != nil {
			return nil, err
		}
		return c.runLatency(ops, 4096, func(f *sim.Fiber, i int) error {
			return c.group.Write(f, (i%16)*8192, 4096, durable)
		})
	}
	modes := []bool{false, true}
	hists := make([]*metrics.Histogram, len(modes))
	if err := forEach(rc, len(modes), func(j int, ar *trialArena) error {
		h, err := measure(ar, modes[j])
		if err != nil {
			return err
		}
		hists[j] = h
		return nil
	}); err != nil {
		return nil, err
	}
	vol, dur := hists[0], hists[1]
	tbl := metrics.NewTable("Ablation: interleaved gFLUSH cost (4KB gWRITE, G=3)",
		"mode", "avg", "p99")
	tbl.AddRow("volatile (no flush)", vol.MeanDuration(), vol.PercentileDuration(99))
	tbl.AddRow("durable (gFLUSH interleaved)", dur.MeanDuration(), dur.PercentileDuration(99))
	return &Report{
		ID: "abl-flush", Title: "Ablation: durability cost",
		Tables: []*metrics.Table{tbl},
		Notes:  []string{"durable writes pay per-hop NVM cache flushes before forwarding"},
	}, nil
}

// AblationDepth sweeps the pre-armed window depth against pipelined
// throughput — the design choice behind HyperLoop's pre-posted chains.
func ablationDepth(rc *runCtx, seed uint64, scale Scale) (*Report, error) {
	ops := scale.pick(400, 4000)
	measure := func(ar *trialArena, depth int) (float64, error) {
		cfg := clusterCfg{
			seed: seed, replicas: 3, mirror: 1 << 20,
			backend: BackendHyperLoop, cores: 16, depth: depth, ar: ar,
		}
		c, err := newCluster(cfg)
		if err != nil {
			return 0, err
		}
		window := depth - 3
		if window < 1 {
			window = 1
		}
		var start, end sim.Time
		var runErr error
		c.k.Spawn("depth-driver", func(f *sim.Fiber) {
			defer c.k.StopRun()
			start = f.Now()
			var sigs []*sim.Signal
			for i := 0; i < ops; i++ {
				sig, err := c.group.WriteAsync((i%8)*4096, 1024, true)
				if err != nil {
					runErr = err
					return
				}
				sigs = append(sigs, sig)
				if len(sigs) >= window {
					if err := f.Await(sigs[0]); err != nil {
						runErr = err
						return
					}
					sigs = sigs[1:]
				}
			}
			if err := f.AwaitAll(sigs...); err != nil {
				runErr = err
				return
			}
			end = f.Now()
		})
		if err := c.runToStop(60 * sim.Second); err != nil {
			return 0, err
		}
		if runErr != nil {
			return 0, fmt.Errorf("depth %d: %w", depth, runErr)
		}
		if end == 0 {
			return 0, fmt.Errorf("depth %d: did not finish", depth)
		}
		return float64(ops) / end.Sub(start).Seconds() / 1000, nil
	}
	depths := []int{4, 8, 16, 32, 64}
	kops := make([]float64, len(depths))
	if err := forEach(rc, len(depths), func(j int, ar *trialArena) error {
		k, err := measure(ar, depths[j])
		if err != nil {
			return err
		}
		kops[j] = k
		return nil
	}); err != nil {
		return nil, err
	}
	tbl := metrics.NewTable("Ablation: pre-armed window depth vs pipelined gWRITE throughput (1KB)",
		"depth", "Kops/s")
	for j, depth := range depths {
		tbl.AddRow(depth, fmt.Sprintf("%.1f", kops[j]))
	}
	return &Report{
		ID: "abl-depth", Title: "Ablation: chain window depth",
		Tables: []*metrics.Table{tbl},
		Notes:  []string{"deeper pre-armed windows admit more pipelining until the wire saturates"},
	}, nil
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// AblationFanout compares the chain topology against the §7 fan-out
// extension: latency is comparable, but fan-out concentrates transmission
// (and active write QPs) on the primary while the chain load-balances —
// the trade-off §7 discusses.
func ablationFanout(rc *runCtx, seed uint64, scale Scale) (*Report, error) {
	ops := scale.pick(300, 5000)
	const size = 1024
	type res struct {
		h         *metrics.Histogram
		primaryTx int64
		maxTx     int64
	}
	measure := func(ar *trialArena, fan bool) (res, error) {
		cfg := clusterCfg{
			seed: seed, replicas: 3, mirror: 1 << 20,
			backend: BackendHyperLoop, cores: 16, ar: ar,
		}
		var c *cluster
		var err error
		if fan {
			c, err = newFanoutCluster(cfg)
		} else {
			c, err = newCluster(cfg)
		}
		if err != nil {
			return res{}, err
		}
		h, err := c.runLatency(ops, size, func(f *sim.Fiber, i int) error {
			return c.group.Write(f, (i%16)*8192, size, true)
		})
		if err != nil {
			return res{}, err
		}
		var primaryTx, maxTx int64
		for i, nic := range c.nics() {
			_, tx := nic.Stats()
			if i == 0 {
				primaryTx = tx
			}
			if tx > maxTx {
				maxTx = tx
			}
		}
		return res{h: h, primaryTx: primaryTx, maxTx: maxTx}, nil
	}
	topos := []bool{false, true}
	results := make([]res, len(topos))
	if err := forEach(rc, len(topos), func(j int, ar *trialArena) error {
		r, err := measure(ar, topos[j])
		if err != nil {
			return err
		}
		results[j] = r
		return nil
	}); err != nil {
		return nil, err
	}
	chain, fan := results[0], results[1]
	tbl := metrics.NewTable("Ablation: chain vs fan-out topology (1KB durable gWRITE, G=3)",
		"topology", "avg", "p99", "head/primary TX", "max member TX")
	tbl.AddRow("chain", chain.h.MeanDuration(), chain.h.PercentileDuration(99),
		metrics.FormatBytes(int(chain.primaryTx)), metrics.FormatBytes(int(chain.maxTx)))
	tbl.AddRow("fan-out", fan.h.MeanDuration(), fan.h.PercentileDuration(99),
		metrics.FormatBytes(int(fan.primaryTx)), metrics.FormatBytes(int(fan.maxTx)))
	return &Report{
		ID: "abl-fanout", Title: "Ablation: replication topology (§7)",
		Tables: []*metrics.Table{tbl},
		Notes: []string{
			"fan-out shortens the dependency chain but concentrates transmission on the primary;",
			"chain replication keeps at most one active write QP per member (§7's load-balance argument)",
		},
	}, nil
}

// AblationConsistency quantifies §7's claim that the primitives compose
// into weaker models: full ACID transactions, eventually-consistent reads
// (log execution off the critical path), RAMCloud-like semantics (skip the
// durability primitive), and replicated-cache semantics (no log at all).
//
// This experiment stays serial: all four modes deliberately share one
// cluster and one txn store (the spectrum is measured on the same state),
// so the trials are not independent jobs forEach could run concurrently.
func ablationConsistency(rc *runCtx, seed uint64, scale Scale) (*Report, error) {
	ops := scale.pick(300, 5000)
	tbl, err := ablationConsistencyTable(rc, seed, ops)
	if err != nil {
		return nil, err
	}
	return &Report{
		ID: "abl-consistency", Title: "Ablation: weaker consistency models (§7)",
		Tables: []*metrics.Table{tbl},
		Notes: []string{
			"each dropped guarantee removes group operations from the critical path,",
			"recovering RAMCloud/Memcached-like latency from the same primitive set",
		},
	}, nil
}

// ablationConsistencyTable runs the four modes on one shared cluster,
// checked out of the arena pool like a single long trial.
func ablationConsistencyTable(rc *runCtx, seed uint64, ops int) (*metrics.Table, error) {
	var tbl *metrics.Table
	err := withArena(rc, func(ar *trialArena) error {
		c, err := microCluster(ar, seed, BackendHyperLoop, 3, false)
		if err != nil {
			return err
		}
		st, err := txn.New(c.group, txn.Config{LogSize: 64 * 1024, DataSize: 128 * 1024})
		if err != nil {
			return err
		}
		entry := func(i int) []wal.Entry {
			return []wal.Entry{{Off: (i % 64) * 512, Data: bytes.Repeat([]byte{byte(i)}, 256)}}
		}
		modes := []struct {
			name string
			op   func(f *sim.Fiber, i int) error
		}{
			{"ACID txn (log+lock+execute+flush)", func(f *sim.Fiber, i int) error {
				return st.WithWrLock(f, func() error {
					if _, err := st.Append(f, entry(i)); err != nil {
						return err
					}
					_, err := st.ExecuteAll(f)
					return err
				})
			}},
			{"eventual reads (append only, execute off-path)", func(f *sim.Fiber, i int) error {
				if _, err := st.Append(f, entry(i)); err != nil {
					return err
				}
				// Drain off the critical path every 16 ops so the log never fills.
				if i%16 == 15 {
					if _, err := st.ExecuteAll(f); err != nil {
						return err
					}
				}
				return nil
			}},
			{"RAMCloud-like (no durability primitive)", func(f *sim.Fiber, i int) error {
				return c.group.Write(f, (i%64)*1024, 256, false)
			}},
			{"replicated cache (gWRITE only)", func(f *sim.Fiber, i int) error {
				return c.group.Write(f, (i%64)*1024, 256, false)
			}},
		}
		tbl = metrics.NewTable("Ablation: consistency spectrum on HyperLoop primitives (§7)",
			"mode", "avg", "p99")
		for _, m := range modes {
			h := metrics.NewHistogram()
			var runErr error
			c.k.Spawn("mode-driver", func(f *sim.Fiber) {
				defer c.k.StopRun()
				for i := 0; i < ops; i++ {
					start := f.Now()
					if err := m.op(f, i); err != nil {
						runErr = fmt.Errorf("%s op %d: %w", m.name, i, err)
						return
					}
					h.RecordDuration(f.Now().Sub(start))
				}
			})
			if err := c.runToStop(60 * sim.Second); err != nil {
				return err
			}
			if runErr != nil {
				return runErr
			}
			tbl.AddRow(m.name, h.MeanDuration(), h.PercentileDuration(99))
		}
		return nil
	})
	return tbl, err
}
