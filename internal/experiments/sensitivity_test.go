package experiments

import (
	"fmt"
	"testing"

	"hyperloop/internal/cpusim"
	"hyperloop/internal/hyperloop"
	"hyperloop/internal/metrics"
	"hyperloop/internal/naive"
	"hyperloop/internal/nvm"
	"hyperloop/internal/rdma"
	"hyperloop/internal/sim"
)

// TestShapeRobustToCalibration varies the calibration constants by ±2× and
// checks that the paper's shape conclusion — HyperLoop's latency is far
// below the naive baseline's under multi-tenant load, with near-flat tails
// — survives every variation (DESIGN.md, "Calibration constants").
func TestShapeRobustToCalibration(t *testing.T) {
	type variation struct {
		name  string
		fab   func(*rdma.Config)
		sched func(*cpusim.Config)
	}
	variations := []variation{
		{name: "baseline"},
		{name: "prop-delay-x2", fab: func(c *rdma.Config) { c.PropDelay *= 2 }},
		{name: "prop-delay-half", fab: func(c *rdma.Config) { c.PropDelay /= 2 }},
		{name: "wqe-proc-x2", fab: func(c *rdma.Config) { c.WQEProc *= 2 }},
		{name: "bandwidth-half", fab: func(c *rdma.Config) { c.BandwidthBps /= 2 }},
		{name: "flush-x2", fab: func(c *rdma.Config) { c.CacheFlushBase *= 2; c.CacheFlushPerLine *= 2 }},
		{name: "ctx-switch-x2", sched: func(c *cpusim.Config) { c.CtxSwitch *= 2 }},
		{name: "granularity-x2", sched: func(c *cpusim.Config) { c.MinGranularity *= 2 }},
		{name: "tick-half", sched: func(c *cpusim.Config) { c.TickQuantum /= 2 }},
		{name: "tick-x2", sched: func(c *cpusim.Config) { c.TickQuantum *= 2 }},
	}

	const (
		mirror = 256 * 1024
		ops    = 150
		size   = 1024
	)
	measure := func(v variation, hyper bool) *metrics.Histogram {
		t.Helper()
		k := sim.NewKernel(9)
		fcfg := rdma.DefaultConfig()
		if v.fab != nil {
			v.fab(&fcfg)
		}
		fab := rdma.NewFabric(k, fcfg)
		client, err := fab.AddNIC("client", nvm.NewDevice("client", 4<<20))
		if err != nil {
			t.Fatal(err)
		}
		var reps []*rdma.NIC
		var scheds []*cpusim.Scheduler
		for i := 0; i < 3; i++ {
			nic, err := fab.AddNIC(fmt.Sprintf("s%d", i), nvm.NewDevice(fmt.Sprintf("s%d", i), 4<<20))
			if err != nil {
				t.Fatal(err)
			}
			reps = append(reps, nic)
			scfg := cpusim.DefaultConfig(16)
			if v.sched != nil {
				v.sched(&scfg)
			}
			sched, err := cpusim.New(k, scfg)
			if err != nil {
				t.Fatal(err)
			}
			sched.AddHogs(8)
			sched.AddNoise(160, 300*sim.Microsecond, 2700*sim.Microsecond)
			sched.AddStorms(32, 200*sim.Millisecond, 4*sim.Millisecond)
			scheds = append(scheds, sched)
		}
		var write func(f *sim.Fiber, off int) error
		if hyper {
			g, err := hyperloop.Setup(fab, client, reps, hyperloop.DefaultConfig(mirror))
			if err != nil {
				t.Fatal(err)
			}
			write = func(f *sim.Fiber, off int) error { return g.Write(f, off, size, true) }
		} else {
			ncfg := naive.DefaultConfig(mirror)
			ncfg.WakePenalty = 3 * sim.Millisecond
			ncfg.WakePenaltyProb = 0.015
			g, err := naive.Setup(fab, client, reps, scheds, ncfg)
			if err != nil {
				t.Fatal(err)
			}
			write = func(f *sim.Fiber, off int) error { return g.Write(f, off, size, true) }
		}
		h := metrics.NewHistogram()
		k.Spawn("driver", func(f *sim.Fiber) {
			defer k.StopRun()
			for i := 0; i < ops; i++ {
				start := f.Now()
				if err := write(f, (i%16)*8192); err != nil {
					t.Errorf("%s op %d: %v", v.name, i, err)
					return
				}
				h.RecordDuration(f.Now().Sub(start))
			}
		})
		if err := k.RunUntil(k.Now().Add(120 * sim.Second)); err != nil && err != sim.ErrStopped {
			t.Fatal(err)
		}
		if h.Count() < ops {
			t.Fatalf("%s: only %d/%d ops", v.name, h.Count(), ops)
		}
		return h
	}

	for _, v := range variations {
		v := v
		t.Run(v.name, func(t *testing.T) {
			hh := measure(v, true)
			nh := measure(v, false)
			// Shape conclusion 1: HyperLoop mean at least 10x below naive.
			if float64(nh.Mean()) < 10*float64(hh.Mean()) {
				t.Errorf("mean separation lost: naive %v vs hyperloop %v",
					nh.MeanDuration(), hh.MeanDuration())
			}
			// Shape conclusion 2: HyperLoop's tail stays within 3x of its
			// own mean (predictable latency), the naive tail does not.
			if float64(hh.Percentile(99)) > 3*float64(hh.Mean()) {
				t.Errorf("hyperloop tail not flat: mean %v p99 %v",
					hh.MeanDuration(), hh.PercentileDuration(99))
			}
			if float64(nh.Percentile(99)) < 3*float64(nh.Mean()) {
				t.Errorf("naive tail unexpectedly flat: mean %v p99 %v",
					nh.MeanDuration(), nh.PercentileDuration(99))
			}
		})
	}
}
