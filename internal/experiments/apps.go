package experiments

import (
	"fmt"

	"hyperloop/internal/cpusim"
	"hyperloop/internal/docstore"
	"hyperloop/internal/kvstore"
	"hyperloop/internal/metrics"
	"hyperloop/internal/naive"
	"hyperloop/internal/rdma"
	"hyperloop/internal/sim"
	"hyperloop/internal/ycsb"
)

// kvAdapter bridges the RocksDB-like store to the YCSB runner.
type kvAdapter struct {
	db *kvstore.DB
}

func (a *kvAdapter) key(i int) []byte { return []byte(ycsb.Key(i)) }

func (a *kvAdapter) Read(f *sim.Fiber, key int) error {
	if _, ok := a.db.Get(a.key(key)); !ok {
		return fmt.Errorf("kv read: missing key %d", key)
	}
	return nil
}

func (a *kvAdapter) Update(f *sim.Fiber, key int, value []byte) error {
	return a.db.Put(f, a.key(key), value)
}

func (a *kvAdapter) Insert(f *sim.Fiber, key int, value []byte) error {
	return a.db.Put(f, a.key(key), value)
}

func (a *kvAdapter) Scan(f *sim.Fiber, start, count int) error {
	a.db.Scan(a.key(start), count)
	return nil
}

func (a *kvAdapter) ReadModifyWrite(f *sim.Fiber, key int, value []byte) error {
	if _, ok := a.db.Get(a.key(key)); !ok {
		return fmt.Errorf("kv rmw: missing key %d", key)
	}
	return a.db.Put(f, a.key(key), value)
}

var _ ycsb.DB = (*kvAdapter)(nil)

// docAdapter bridges the MongoDB-like store to the YCSB runner.
type docAdapter struct {
	st   *docstore.Store
	coll string
}

func (a *docAdapter) id(i int) string { return ycsb.Key(i) }

func (a *docAdapter) doc(i int, value []byte) docstore.Doc {
	return docstore.Doc{"_id": a.id(i), "field0": string(value)}
}

func (a *docAdapter) Read(f *sim.Fiber, key int) error {
	_, err := a.st.FindID(a.coll, a.id(key))
	return err
}

func (a *docAdapter) Update(f *sim.Fiber, key int, value []byte) error {
	return a.st.Update(f, a.coll, a.id(key), docstore.Doc{"field0": string(value)})
}

func (a *docAdapter) Insert(f *sim.Fiber, key int, value []byte) error {
	return a.st.Insert(f, a.coll, a.doc(key, value))
}

func (a *docAdapter) Scan(f *sim.Fiber, start, count int) error {
	_, err := a.st.Scan(a.coll, a.id(start), count)
	return err
}

func (a *docAdapter) ReadModifyWrite(f *sim.Fiber, key int, value []byte) error {
	if _, err := a.st.FindID(a.coll, a.id(key)); err != nil {
		return err
	}
	return a.st.Update(f, a.coll, a.id(key), docstore.Doc{"field0": string(value)})
}

var _ ycsb.DB = (*docAdapter)(nil)

// softDB wraps a store adapter with the client-side database software
// overhead (query parsing, memtable/index updates, session bookkeeping)
// that the paper calls out as the dominant remaining latency under
// HyperLoop ("mostly due to the high overhead inherent to MongoDB's
// software stack in the client"). The client is a dedicated process, so
// this is plain CPU time, not contended scheduling.
type softDB struct {
	inner ycsb.DB
	cost  sim.Duration
	rng   *sim.RNG
}

func newSoftDB(inner ycsb.DB, cost sim.Duration, seed uint64) *softDB {
	return &softDB{inner: inner, cost: cost, rng: sim.NewRNG(seed)}
}

// pause models exponentially distributed client software time around the
// configured mean — parsing, memtable/index work, allocator churn.
func (s *softDB) pause(f *sim.Fiber, mean sim.Duration) {
	f.Sleep(sim.Duration(s.rng.Exp(float64(mean))))
}

func (s *softDB) Read(f *sim.Fiber, key int) error {
	s.pause(f, s.cost/2) // reads skip journaling work
	return s.inner.Read(f, key)
}

func (s *softDB) Update(f *sim.Fiber, key int, v []byte) error {
	s.pause(f, s.cost)
	return s.inner.Update(f, key, v)
}

func (s *softDB) Insert(f *sim.Fiber, key int, v []byte) error {
	s.pause(f, s.cost)
	return s.inner.Insert(f, key, v)
}

func (s *softDB) Scan(f *sim.Fiber, start, count int) error {
	s.pause(f, s.cost/2)
	return s.inner.Scan(f, start, count)
}

func (s *softDB) ReadModifyWrite(f *sim.Fiber, key int, v []byte) error {
	s.pause(f, s.cost)
	return s.inner.ReadModifyWrite(f, key, v)
}

var _ ycsb.DB = (*softDB)(nil)

// replicaSet is one tenant's replicated document store chain spread over
// the shared servers — the unit Fig. 2 scales.
type replicaSet struct {
	st *docstore.Store
	mu sim.Mutex // primary applies journal records serially (oplog order)
}

// fig2Cluster builds nSets document-store chains across 3 shared servers
// with coresPerServer cores each, all on the naive (CPU-driven) backend —
// the §2.2 motivation setup.
type fig2Cluster struct {
	k      *sim.Kernel
	scheds []*cpusim.Scheduler
	sets   []*replicaSet

	recordCount int
	opCount     int
	seed        uint64
}

func newFig2Cluster(ar *trialArena, seed uint64, nSets, coresPerServer, recordCount, opCount int) (*fig2Cluster, error) {
	k := ar.kernel(seed)
	fab := ar.fabric(k, rdma.DefaultConfig())
	const servers = 3
	var scheds []*cpusim.Scheduler
	for s := 0; s < servers; s++ {
		sched, err := cpusim.New(k, cpusim.DefaultConfig(coresPerServer))
		if err != nil {
			return nil, err
		}
		scheds = append(scheds, sched)
	}
	dcfg := docstore.Config{LogSize: 64 * 1024, DataSize: 512 * 1024, SlotSize: 1536}
	mirror := docstore.MirrorSizeFor(dcfg)
	c := &fig2Cluster{k: k, scheds: scheds}
	for i := 0; i < nSets; i++ {
		client, err := fab.AddNIC(fmt.Sprintf("client-%d", i), ar.device(fmt.Sprintf("client-%d", i), devSize(mirror)))
		if err != nil {
			return nil, err
		}
		var reps []*rdma.NIC
		for s := 0; s < servers; s++ {
			host := fmt.Sprintf("srv%d-set%d", s, i)
			nic, err := fab.AddNIC(host, ar.device(host, devSize(mirror)))
			if err != nil {
				return nil, err
			}
			reps = append(reps, nic)
		}
		ncfg := naive.DefaultConfig(mirror)
		ncfg.Mode = naive.ModeEvent
		// Fig. 2's replicas are full document-database processes (mongod):
		// applying one journal record costs ~100µs of CPU (BSON decode,
		// index update, two-phase commit bookkeeping), not the bare
		// message-forwarding cost of the microbenchmark baseline.
		ncfg.RecvHandlerCPU = 30 * sim.Microsecond
		ncfg.PostCPU = 5 * sim.Microsecond
		g, err := naive.Setup(fab, client, reps, scheds, ncfg)
		if err != nil {
			return nil, err
		}
		st, err := docstore.Open(g, dcfg)
		if err != nil {
			return nil, err
		}
		c.sets = append(c.sets, &replicaSet{st: st})
	}
	c.recordCount = recordCount
	c.opCount = opCount
	c.seed = seed
	return c, nil
}

// run loads every set, then drives an OPEN-loop update stream against each
// (one op submitted per interval, applied serially per set like an oplog).
// Past the saturation knee the per-set apply queue grows and latency blows
// up — the Fig. 2 mechanism. Returns the merged latency histogram.
func (c *fig2Cluster) run() (*metrics.Histogram, error) {
	const interval = 1 * sim.Millisecond
	merged := metrics.NewHistogram()
	var firstErr error
	remaining := len(c.sets) * c.opCount
	loaded := 0

	for i, set := range c.sets {
		i, set := i, set
		rng := sim.NewRNG(c.seed + uint64(i)*7919)
		value := func() []byte {
			v := make([]byte, 256)
			for j := range v {
				v[j] = byte('a' + rng.Intn(26))
			}
			return v
		}
		c.k.Spawn(fmt.Sprintf("set-%d-load", i), func(f *sim.Fiber) {
			for r := 0; r < c.recordCount; r++ {
				doc := docstore.Doc{"_id": ycsb.Key(r), "field0": string(value())}
				if err := set.st.Insert(f, "usertable", doc); err != nil {
					if firstErr == nil {
						firstErr = fmt.Errorf("load: %w", err)
					}
					return
				}
			}
			loaded++
			if loaded < len(c.sets) {
				return
			}
			// All sets loaded: start the open-loop update streams.
			for j := range c.sets {
				j := j
				rng2 := sim.NewRNG(c.seed + 31*uint64(j) + 5)
				for op := 0; op < c.opCount; op++ {
					op := op
					at := f.Now().Add(sim.Duration(op) * interval).Add(sim.Duration(rng2.Intn(1000)) * sim.Microsecond)
					c.k.At(at, func() {
						c.k.Spawn(fmt.Sprintf("set-%d-op-%d", j, op), func(fo *sim.Fiber) {
							defer func() {
								remaining--
								if remaining == 0 {
									c.k.StopRun()
								}
							}()
							start := fo.Now()
							set := c.sets[j]
							set.mu.Lock(fo)
							err := set.st.Update(fo, "usertable", ycsb.Key(rng2.Intn(c.recordCount)),
								docstore.Doc{"field0": string(value())})
							set.mu.Unlock()
							if err != nil {
								if firstErr == nil {
									firstErr = fmt.Errorf("update: %w", err)
								}
								return
							}
							merged.RecordDuration(fo.Now().Sub(start))
						})
					})
				}
			}
		})
	}
	err := c.k.RunUntil(c.k.Now().Add(60 * 60 * sim.Second))
	if err == sim.ErrStopped {
		err = nil
	}
	if err != nil {
		return nil, err
	}
	if firstErr != nil {
		return nil, firstErr
	}
	if remaining > 0 {
		return nil, fmt.Errorf("fig2: %d ops did not finish", remaining)
	}
	return merged, nil
}

func (c *fig2Cluster) contextSwitches() int64 {
	var n int64
	for _, s := range c.scheds {
		n += s.ContextSwitches()
	}
	return n
}

// Fig2a regenerates Figure 2(a): document-store latency and normalized
// context switches vs replica-sets per server (CPU contention from
// co-located tenants alone — no artificial stress).
func fig2a(rc *runCtx, seed uint64, scale Scale) (*Report, error) {
	setCounts := []int{3, 9, 15, 21, 27}
	if scale == Quick {
		setCounts = []int{3, 9, 15}
	}
	recordCount := scale.pick(20, 60)
	opCount := scale.pick(40, 200)
	cores := scale.pick(2, 4) // places the saturation knee inside each sweep

	type row struct {
		sets       int
		mean, p95  sim.Duration
		p99        sim.Duration
		ctxSwitch  int64
		normalized float64
	}
	rows := make([]row, len(setCounts))
	if err := forEach(rc, len(setCounts), func(j int, ar *trialArena) error {
		n := setCounts[j]
		c, err := newFig2Cluster(ar, seed, n, cores, recordCount, opCount)
		if err != nil {
			return err
		}
		h, err := c.run()
		if err != nil {
			return fmt.Errorf("sets=%d: %w", n, err)
		}
		rows[j] = row{
			sets: n, mean: h.MeanDuration(), p95: h.PercentileDuration(95),
			p99: h.PercentileDuration(99), ctxSwitch: c.contextSwitches(),
		}
		return nil
	}); err != nil {
		return nil, err
	}
	var maxCtx int64
	for _, r := range rows {
		if r.ctxSwitch > maxCtx {
			maxCtx = r.ctxSwitch
		}
	}
	tbl := metrics.NewTable("Figure 2(a): latency vs replica-sets (naive replication)",
		"replica-sets", "avg", "p95", "p99", "ctx-switches", "normalized")
	for _, r := range rows {
		tbl.AddRow(r.sets, r.mean, r.p95, r.p99, r.ctxSwitch,
			fmt.Sprintf("%.2f", float64(r.ctxSwitch)/float64(maxInt64(maxCtx, 1))))
	}
	grow := float64(rows[len(rows)-1].mean) / float64(maxInt64(int64(rows[0].mean), 1))
	return &Report{
		ID: "fig2a", Title: "CPU contention vs replica-sets (Fig. 2a)",
		Tables: []*metrics.Table{tbl},
		Notes: []string{fmt.Sprintf(
			"avg latency grows %.1fx from %d to %d replica-sets; context switches grow with co-location (paper: monotone growth)",
			grow, rows[0].sets, rows[len(rows)-1].sets)},
	}, nil
}

// Fig2b regenerates Figure 2(b): latency vs cores per machine at a fixed
// replica-set count.
func fig2b(rc *runCtx, seed uint64, scale Scale) (*Report, error) {
	coreCounts := []int{2, 4, 8, 16}
	nSets := scale.pick(9, 18)
	recordCount := scale.pick(20, 40)
	opCount := scale.pick(40, 150)

	type point struct {
		h   *metrics.Histogram
		ctx int64
	}
	points := make([]point, len(coreCounts))
	if err := forEach(rc, len(coreCounts), func(j int, ar *trialArena) error {
		cores := coreCounts[j]
		c, err := newFig2Cluster(ar, seed, nSets, cores, recordCount, opCount)
		if err != nil {
			return err
		}
		h, err := c.run()
		if err != nil {
			return fmt.Errorf("cores=%d: %w", cores, err)
		}
		points[j] = point{h: h, ctx: c.contextSwitches()}
		return nil
	}); err != nil {
		return nil, err
	}
	tbl := metrics.NewTable(fmt.Sprintf("Figure 2(b): latency vs cores (%d replica-sets)", nSets),
		"cores", "avg", "p95", "p99", "ctx-switches")
	var first, last sim.Duration
	for j, cores := range coreCounts {
		h := points[j].h
		if first == 0 {
			first = h.MeanDuration()
		}
		last = h.MeanDuration()
		tbl.AddRow(cores, h.MeanDuration(), h.PercentileDuration(95),
			h.PercentileDuration(99), points[j].ctx)
	}
	return &Report{
		ID: "fig2b", Title: "More cores relieve contention (Fig. 2b)",
		Tables: []*metrics.Table{tbl},
		Notes: []string{fmt.Sprintf(
			"avg latency falls %.1fx from 2 to 16 cores (paper: monotone decrease)",
			float64(first)/float64(maxInt64(int64(last), 1)))},
	}, nil
}

// appCluster builds one kvstore or docstore deployment on the chosen
// backend with multi-tenant co-location.
func appCluster(ar *trialArena, seed uint64, backend Backend, mirror int) (*cluster, error) {
	cfg := clusterCfg{
		seed:     seed,
		replicas: 3,
		mirror:   mirror,
		backend:  backend,
		cores:    16,
		ar:       ar,
	}
	cfg.multiTenantLoad()
	return newCluster(cfg)
}

// runYCSB loads and runs one workload against db within cluster c.
func runYCSB(c *cluster, db ycsb.DB, rcfg ycsb.RunnerConfig) (*ycsb.Result, error) {
	var res *ycsb.Result
	var runErr error
	c.k.Spawn("ycsb", func(f *sim.Fiber) {
		defer c.k.StopRun()
		r := ycsb.NewRunner(rcfg)
		if err := r.Load(f, db); err != nil {
			runErr = err
			return
		}
		res, runErr = r.Run(f, db)
	})
	if err := c.runToStop(60 * 60 * sim.Second); err != nil {
		return nil, err
	}
	if runErr != nil {
		return nil, runErr
	}
	if res == nil {
		return nil, fmt.Errorf("ycsb run did not finish")
	}
	return res, nil
}

// Fig11 regenerates Figure 11: replicated RocksDB-like store under
// YCSB-A updates — Naive-Event vs Naive-Polling vs HyperLoop, with
// multi-tenant co-location.
func fig11(rc *runCtx, seed uint64, scale Scale) (*Report, error) {
	kcfg := kvstore.DefaultConfig()
	mirror := kvstore.MirrorSizeFor(kcfg)
	rcfg := ycsb.RunnerConfig{
		Workload:    ycsb.WorkloadA,
		RecordCount: scale.pick(50, 200),
		OpCount:     scale.pick(300, 3000),
		ValueSize:   1024,
		Seed:        seed,
	}
	backends := []Backend{BackendNaiveEvent, BackendNaivePolling, BackendHyperLoop}
	hists := make([]*metrics.Histogram, len(backends))
	if err := forEach(rc, len(backends), func(j int, ar *trialArena) error {
		b := backends[j]
		c, err := appCluster(ar, seed, b, mirror)
		if err != nil {
			return err
		}
		db, err := kvstore.Open(c.group, kcfg)
		if err != nil {
			return err
		}
		res, err := runYCSB(c, newSoftDB(&kvAdapter{db: db}, 100*sim.Microsecond, seed+3), rcfg)
		if err != nil {
			return fmt.Errorf("%v: %w", b, err)
		}
		hists[j] = res.ByOp[ycsb.OpUpdate]
		return nil
	}); err != nil {
		return nil, err
	}
	tbl := metrics.NewTable("Figure 11: replicated KV store, YCSB-A update latency",
		"impl", "avg", "p95", "p99")
	var tails = make(map[Backend]sim.Duration)
	for j, b := range backends {
		h := hists[j]
		tails[b] = h.PercentileDuration(99)
		tbl.AddRow(b.String(), h.MeanDuration(), h.PercentileDuration(95), h.PercentileDuration(99))
	}
	return &Report{
		ID: "fig11", Title: "KV store update latency across backends (Fig. 11)",
		Tables: []*metrics.Table{tbl},
		Notes: []string{
			fmt.Sprintf("hyperloop p99 is %s lower than naive-event and %s lower than naive-polling (paper: 5.7x and 24.2x)",
				metrics.Ratio(tails[BackendNaiveEvent], tails[BackendHyperLoop]),
				metrics.Ratio(tails[BackendNaivePolling], tails[BackendHyperLoop])),
		},
	}, nil
}

// Fig12 regenerates Figure 12: document store latency across YCSB
// workloads A, B, D, E and F — native (CPU-driven polling) vs HyperLoop.
func fig12(rc *runCtx, seed uint64, scale Scale) (*Report, error) {
	dcfg := docstore.DefaultConfig()
	mirror := docstore.MirrorSizeFor(dcfg)
	recordCount := scale.pick(40, 150)
	opCount := scale.pick(150, 1500)

	measure := func(ar *trialArena, backend Backend, w ycsb.Workload) (*ycsb.Result, error) {
		c, err := appCluster(ar, seed, backend, mirror)
		if err != nil {
			return nil, err
		}
		st, err := docstore.Open(c.group, dcfg)
		if err != nil {
			return nil, err
		}
		return runYCSB(c, newSoftDB(&docAdapter{st: st, coll: "usertable"}, 500*sim.Microsecond, seed+5), ycsb.RunnerConfig{
			Workload:    w,
			RecordCount: recordCount,
			OpCount:     opCount,
			ValueSize:   512,
			Seed:        seed,
		})
	}

	workloads := ycsb.Workloads()
	backends := []Backend{BackendNaivePolling, BackendHyperLoop}
	names := []string{"native", "hyperloop"}
	results := make([]*ycsb.Result, len(workloads)*len(backends))
	if err := forEach(rc, len(results), func(j int, ar *trialArena) error {
		wi, bi := j/len(backends), j%len(backends)
		r, err := measure(ar, backends[bi], workloads[wi])
		if err != nil {
			return fmt.Errorf("%s %s: %w", names[bi], workloads[wi].Name, err)
		}
		results[j] = r
		return nil
	}); err != nil {
		return nil, err
	}
	native := metrics.NewTable("Figure 12(a): native (CPU-polling) replication",
		"workload", "avg", "p95", "p99")
	hyper := metrics.NewTable("Figure 12(b): HyperLoop replication",
		"workload", "avg", "p95", "p99")
	var avgReduction, gapReduction float64
	var writeWorkloads int
	for wi, w := range workloads {
		nres, hres := results[wi*len(backends)], results[wi*len(backends)+1]
		nh, hh := nres.Overall, hres.Overall
		native.AddRow(w.Name, nh.MeanDuration(), nh.PercentileDuration(95), nh.PercentileDuration(99))
		hyper.AddRow(w.Name, hh.MeanDuration(), hh.PercentileDuration(95), hh.PercentileDuration(99))

		// Track insert/update improvements (the paper's headline metric).
		for _, op := range []ycsb.OpType{ycsb.OpUpdate, ycsb.OpInsert, ycsb.OpModify} {
			nOp, hOp := nres.ByOp[op], hres.ByOp[op]
			if nOp.Count() == 0 || hOp.Count() == 0 {
				continue
			}
			avgReduction += 1 - float64(hOp.Mean())/float64(nOp.Mean())
			nGap := float64(nOp.Percentile(99) - int64(nOp.Mean()))
			hGap := float64(hOp.Percentile(99) - int64(hOp.Mean()))
			if nGap > 0 {
				gapReduction += 1 - hGap/nGap
			}
			writeWorkloads++
		}
	}
	if writeWorkloads > 0 {
		avgReduction /= float64(writeWorkloads)
		gapReduction /= float64(writeWorkloads)
	}
	return &Report{
		ID: "fig12", Title: "Document store latency across YCSB workloads (Fig. 12)",
		Tables: []*metrics.Table{native, hyper},
		Notes: []string{
			fmt.Sprintf("insert/update average latency reduced by %.0f%% (paper: up to 79%%)", 100*avgReduction),
			fmt.Sprintf("avg-to-p99 gap reduced by %.0f%% (paper: up to 81%%)", 100*gapReduction),
		},
	}, nil
}

// Table3 prints the YCSB workload definitions used throughout §6.2.
func table3(*runCtx, uint64, Scale) (*Report, error) {
	tbl := metrics.NewTable("Table 3: YCSB workload operation mix (%)",
		"workload", "read", "update", "insert", "modify", "scan", "distribution")
	for _, w := range ycsb.Workloads() {
		tbl.AddRow(w.Name,
			fmt.Sprintf("%.0f", 100*w.Read), fmt.Sprintf("%.0f", 100*w.Update),
			fmt.Sprintf("%.0f", 100*w.Insert), fmt.Sprintf("%.0f", 100*w.Modify),
			fmt.Sprintf("%.0f", 100*w.Scan), w.Dist.String())
	}
	return &Report{
		ID: "table3", Title: "YCSB workloads (Table 3)",
		Tables: []*metrics.Table{tbl},
	}, nil
}
