package experiments

import (
	"fmt"

	"hyperloop/internal/metrics"
	"hyperloop/internal/protocol"
	"hyperloop/internal/rdma"
	"hyperloop/internal/sim"
)

// Protocols-comparison constants. The availability leg reuses the
// failover experiment's crash schedule and timeout policy so its window
// numbers are comparable, but runs without a recovery protocol: it
// measures what each datapath does on its own when server-1 dies.
const (
	protoMirror    = 256 << 10
	protoWriteSize = 1024
	protoCrashAt   = 2 * sim.Millisecond
	protoHorizon   = 8 * sim.Millisecond
	protoTimeout   = 200 * sim.Microsecond
	protoBackoff   = 50 * sim.Microsecond
)

// protocolsExp compares every registered replication protocol on the
// same 3-replica deployment, twice:
//
//  1. Fault-free cost: closed-loop 1KB durable gWRITE latency plus the
//     fabric's deterministic message and wire-byte counters per op — the
//     fan-out cost each dataflow pays for its completion path.
//  2. Availability under a replica crash: server-1's NIC dies mid-run
//     with client-side timeouts armed and no recovery protocol running.
//     Quorum completion ("bcast-maj") keeps completing writes; every
//     all-member datapath stalls until the horizon.
func protocolsExp(rc *runCtx, seed uint64, scale Scale) (*Report, error) {
	names := protocol.Names()
	ops := scale.pick(200, 2000)

	type costRes struct {
		h       *metrics.Histogram
		msgsOp  float64
		bytesOp float64
	}
	type availRes struct {
		okBefore, okAfter int64
		failed            int64
		window            sim.Duration // 0 = never recovered
	}
	costs := make([]costRes, len(names))
	avails := make([]availRes, len(names))

	// Leg 1: fault-free latency and message cost.
	if err := forEach(rc, len(names), func(j int, ar *trialArena) error {
		c, err := newProtocolCluster(clusterCfg{
			seed: seed, replicas: 3, mirror: protoMirror, cores: 16, ar: ar,
		}, names[j])
		if err != nil {
			return fmt.Errorf("%s: %w", names[j], err)
		}
		msgs0, bytes0 := c.fab.Stats()
		h, err := c.runLatency(ops, protoWriteSize, func(f *sim.Fiber, i int) error {
			return c.group.Write(f, (i%16)*8192, protoWriteSize, true)
		})
		if err != nil {
			return fmt.Errorf("%s: %w", names[j], err)
		}
		msgs1, bytes1 := c.fab.Stats()
		costs[j] = costRes{
			h:       h,
			msgsOp:  float64(msgs1-msgs0) / float64(ops),
			bytesOp: float64(bytes1-bytes0) / float64(ops),
		}
		return nil
	}); err != nil {
		return nil, err
	}

	// Leg 2: availability across a replica crash.
	if err := forEach(rc, len(names), func(j int, ar *trialArena) error {
		r, err := protocolAvailTrial(ar, seed, names[j])
		if err != nil {
			return fmt.Errorf("%s: %w", names[j], err)
		}
		avails[j] = availRes{
			okBefore: r.okBefore, okAfter: r.okAfter,
			failed: r.failed, window: r.window,
		}
		return nil
	}); err != nil {
		return nil, err
	}

	fd := func(d sim.Duration) string { return metrics.FormatDuration(d) }
	cost := metrics.NewTable(
		fmt.Sprintf("Fault-free cost: %dB durable gWRITE, G=3 (client counters exclude the local copy)", protoWriteSize),
		"protocol", "avg", "p99", "msgs/op", "wire KB/op")
	for j, n := range names {
		cost.AddRow(n, costs[j].h.MeanDuration(), costs[j].h.PercentileDuration(99),
			fmt.Sprintf("%.1f", costs[j].msgsOp),
			fmt.Sprintf("%.1f", costs[j].bytesOp/1024))
	}

	avail := metrics.NewTable(
		fmt.Sprintf("Availability: server-1 NIC crash at %s, no recovery protocol (%s horizon)", fd(protoCrashAt), fd(protoHorizon)),
		"protocol", "ok before", "failed", "ok after", "unavailability")
	for j, n := range names {
		w := "permanent (needs failover)"
		if avails[j].window > 0 {
			w = fd(avails[j].window)
		}
		avail.AddRow(n, avails[j].okBefore, avails[j].failed, avails[j].okAfter, w)
	}

	return &Report{
		ID: "protocols", Title: "Replication protocol comparison: latency, message cost, availability",
		Tables: []*metrics.Table{cost, avail},
		Notes: []string{
			"chain forwards hop-by-hop (write+meta per hop, one ACK back); bcast pays ~2G client-side messages but the shortest completion path",
			"bcast-maj completes on a majority of member acks, so one dead replica costs only the in-flight timeouts; every all-member protocol blocks until failover replaces the member (see the failover experiment)",
			"naive runs the same chain with replica CPUs on the critical path (idle machines here; see fig11/fig12 for the loaded case)",
		},
	}, nil
}

type protoAvail struct {
	okBefore, okAfter int64
	failed            int64
	window            sim.Duration
}

// protocolAvailTrial drives closed-loop writes through one protocol
// while server-1 crashes, continuing through op errors until the
// horizon. Successes are classified by virtual time against the crash
// instant, and the unavailability window is the gap from the crash to
// the first completed write after it (0 if writes never succeed again —
// the protocol needs failover to make progress).
func protocolAvailTrial(ar *trialArena, seed uint64, name string) (protoAvail, error) {
	c, err := newProtocolCluster(clusterCfg{
		seed: seed, replicas: 3, mirror: protoMirror, cores: 16, ar: ar,
		opTimeout: protoTimeout, maxRetries: 1, retryBackoff: protoBackoff,
		faults: &rdma.FaultPlan{
			NICs: []rdma.NICFault{{Host: "server-1", At: sim.Time(protoCrashAt), Down: true}},
		},
	}, name)
	if err != nil {
		return protoAvail{}, err
	}
	var (
		res          protoAvail
		firstOKAfter sim.Time
		driverErr    error
		crashAt      = sim.Time(0).Add(protoCrashAt)
		horizon      = sim.Time(0).Add(protoHorizon)
	)
	c.k.Spawn("proto-avail-writer", func(f *sim.Fiber) {
		defer c.k.StopRun()
		for i := 0; f.Now() < horizon; i++ {
			off := (i % 128) * 2048
			err := c.group.Write(f, off, protoWriteSize, true)
			now := f.Now()
			switch {
			case err == nil && now <= crashAt:
				res.okBefore++
			case err == nil:
				res.okAfter++
				if firstOKAfter == 0 {
					firstOKAfter = now
				}
			default:
				if !protocol.IsOpError(err) {
					driverErr = fmt.Errorf("op %d: %w", i, err)
					return
				}
				res.failed++
				f.Sleep(100 * sim.Microsecond)
			}
		}
	})
	if err := c.runToStop(30 * 60 * sim.Second); err != nil {
		return protoAvail{}, err
	}
	if driverErr != nil {
		return protoAvail{}, driverErr
	}
	if res.failed == 0 && res.okAfter == 0 {
		return protoAvail{}, fmt.Errorf("crash left no observable trace (okBefore=%d)", res.okBefore)
	}
	if firstOKAfter > 0 {
		res.window = firstOKAfter.Sub(crashAt)
	}
	return res, nil
}
