package experiments

import (
	"strings"
	"testing"
	"time"
)

// runQuick executes an experiment at Quick scale and sanity-checks the
// report structure.
func runQuick(t *testing.T, name string) *Report {
	t.Helper()
	r, err := Run(name, 1, Quick)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if r.ID != name {
		t.Fatalf("report id = %s, want %s", r.ID, name)
	}
	if len(r.Tables) == 0 {
		t.Fatalf("%s: no tables", name)
	}
	out := r.String()
	if !strings.Contains(out, r.Title) {
		t.Fatalf("%s: report string missing title", name)
	}
	return r
}

// p99 extracts a duration cell from a table for assertions.
func cell(t *testing.T, r *Report, table, row, col int) string {
	t.Helper()
	if table >= len(r.Tables) || row >= len(r.Tables[table].Rows) {
		t.Fatalf("report %s: no cell (%d,%d,%d)", r.ID, table, row, col)
	}
	return r.Tables[table].Rows[row][col]
}

func parseDur(t *testing.T, s string) time.Duration {
	t.Helper()
	// Our formatter prints e.g. "12.1µs", "2.85ms", "1.02s".
	d, err := time.ParseDuration(s)
	if err != nil {
		t.Fatalf("cannot parse duration %q: %v", s, err)
	}
	return d
}

func TestRegistryComplete(t *testing.T) {
	names := Names()
	if len(names) != len(PaperOrder()) {
		t.Fatalf("registry has %d entries, paper order %d", len(names), len(PaperOrder()))
	}
	for _, id := range PaperOrder() {
		if Describe(id) == "" {
			t.Fatalf("experiment %s has no description", id)
		}
	}
	if _, err := Run("nope", 1, Quick); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestBackendStrings(t *testing.T) {
	for _, b := range []Backend{BackendHyperLoop, BackendNaiveEvent, BackendNaivePolling, BackendNaivePinned, Backend(9)} {
		if b.String() == "" {
			t.Fatal("empty backend string")
		}
	}
}

func TestFig8aShape(t *testing.T) {
	r := runQuick(t, "fig8a")
	// HyperLoop p99 must be µs-scale and far below naive p99 at every size.
	for row := range r.Tables[0].Rows {
		naive := parseDur(t, cell(t, r, 0, row, 2))
		hyper := parseDur(t, cell(t, r, 0, row, 4))
		if hyper > 100*time.Microsecond {
			t.Errorf("row %d: hyperloop p99 = %v, want µs-scale", row, hyper)
		}
		if naive < 5*hyper {
			t.Errorf("row %d: naive p99 %v not well above hyperloop %v", row, naive, hyper)
		}
	}
}

func TestFig8bShape(t *testing.T) {
	r := runQuick(t, "fig8b")
	naive := parseDur(t, cell(t, r, 0, 0, 2))
	hyper := parseDur(t, cell(t, r, 0, 0, 4))
	if naive < 5*hyper {
		t.Errorf("gMEMCPY: naive p99 %v not well above hyperloop %v", naive, hyper)
	}
}

func TestTable2Shape(t *testing.T) {
	r := runQuick(t, "table2")
	naiveP99 := parseDur(t, cell(t, r, 0, 0, 3))
	hyperP99 := parseDur(t, cell(t, r, 0, 1, 3))
	if hyperP99 > 100*time.Microsecond {
		t.Errorf("hyperloop gCAS p99 = %v", hyperP99)
	}
	if naiveP99 < 10*hyperP99 {
		t.Errorf("naive gCAS p99 %v not ≫ hyperloop %v", naiveP99, hyperP99)
	}
}

func TestFig9Shape(t *testing.T) {
	r := runQuick(t, "fig9")
	// HyperLoop CPU column must be 0% on every row; naive must not be.
	sawNaiveCPU := false
	for row := range r.Tables[0].Rows {
		if got := cell(t, r, 0, row, 4); got != "0%" {
			t.Errorf("row %d: hyperloop CPU = %s, want 0%%", row, got)
		}
		if cell(t, r, 0, row, 2) != "0%" {
			sawNaiveCPU = true
		}
	}
	if !sawNaiveCPU {
		t.Error("naive CPU column all zero — replica handlers unaccounted")
	}
}

func TestFig10Shape(t *testing.T) {
	r := runQuick(t, "fig10")
	if len(r.Tables) != 2 {
		t.Fatalf("fig10 has %d tables", len(r.Tables))
	}
	// HyperLoop's G=7 p99 must stay µs-scale.
	hyperTbl := r.Tables[1]
	for row := range hyperTbl.Rows {
		p99g7 := parseDur(t, hyperTbl.Rows[row][3])
		if p99g7 > 200*time.Microsecond {
			t.Errorf("hyperloop G=7 p99 = %v, want µs-scale", p99g7)
		}
	}
}

func TestFig2aShape(t *testing.T) {
	r := runQuick(t, "fig2a")
	rows := r.Tables[0].Rows
	first := parseDur(t, rows[0][1])
	last := parseDur(t, rows[len(rows)-1][1])
	if last <= first {
		t.Errorf("latency did not grow with replica-sets: %v → %v", first, last)
	}
}

func TestFig2bShape(t *testing.T) {
	r := runQuick(t, "fig2b")
	rows := r.Tables[0].Rows
	fewCores := parseDur(t, rows[0][1])
	manyCores := parseDur(t, rows[len(rows)-1][1])
	if manyCores >= fewCores {
		t.Errorf("more cores did not reduce latency: %v → %v", fewCores, manyCores)
	}
}

func TestFig11Shape(t *testing.T) {
	r := runQuick(t, "fig11")
	rows := r.Tables[0].Rows
	if len(rows) != 3 {
		t.Fatalf("fig11 rows = %d", len(rows))
	}
	naiveEventP99 := parseDur(t, rows[0][3])
	hyperP99 := parseDur(t, rows[2][3])
	if naiveEventP99 < 2*hyperP99 {
		t.Errorf("KV store: naive-event p99 %v not well above hyperloop %v", naiveEventP99, hyperP99)
	}
}

func TestFig12Shape(t *testing.T) {
	r := runQuick(t, "fig12")
	if len(r.Tables) != 2 {
		t.Fatalf("fig12 has %d tables", len(r.Tables))
	}
	// Every workload: hyperloop avg ≤ native avg.
	for row := range r.Tables[0].Rows {
		nat := parseDur(t, r.Tables[0].Rows[row][1])
		hyp := parseDur(t, r.Tables[1].Rows[row][1])
		if hyp > nat {
			t.Errorf("workload %s: hyperloop avg %v > native %v",
				r.Tables[0].Rows[row][0], hyp, nat)
		}
	}
}

func TestTable3Matches(t *testing.T) {
	r := runQuick(t, "table3")
	rows := r.Tables[0].Rows
	if len(rows) != 5 {
		t.Fatalf("table3 rows = %d", len(rows))
	}
	if rows[0][1] != "50" || rows[0][2] != "50" {
		t.Errorf("workload A row = %v", rows[0])
	}
	if rows[3][5] != "95" { // E: 95% scan
		t.Errorf("workload E row = %v", rows[3])
	}
}

func TestAblations(t *testing.T) {
	r := runQuick(t, "abl-load")
	// Idle naive must be µs-scale — scheduling, not CPU speed, is the cause.
	idleNaive := parseDur(t, cell(t, r, 0, 0, 3))
	if idleNaive > 500*time.Microsecond {
		t.Errorf("idle naive p99 = %v, want µs-scale", idleNaive)
	}

	r = runQuick(t, "abl-flush")
	vol := parseDur(t, cell(t, r, 0, 0, 1))
	dur := parseDur(t, cell(t, r, 0, 1, 1))
	if dur <= vol {
		t.Errorf("durable write (%v) not slower than volatile (%v)", dur, vol)
	}

	r = runQuick(t, "abl-depth")
	shallow := r.Tables[0].Rows[0][1]
	deep := r.Tables[0].Rows[len(r.Tables[0].Rows)-1][1]
	if shallow == "" || deep == "" {
		t.Error("depth ablation empty")
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	a, err := Run("table2", 42, Quick)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run("table2", 42, Quick)
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("same-seed experiment differs:\n%s\nvs\n%s", a, b)
	}
}
