package experiments

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Result is one experiment's outcome from RunAll: its report plus the
// counters attributed to exactly that experiment's trials. Wall is the
// experiment's own start-to-finish wall time; under the overlapped
// scheduler experiments share the machine, so Wall measures elapsed time,
// not exclusive CPU time.
type Result struct {
	ID     string
	Report *Report
	Stats  StatSink
	Wall   time.Duration
}

// RunAll executes the named experiments under the two-level, work-stealing
// scheduler.
//
// Level one dispatches experiments; level two is the per-experiment trial
// worker pool (forEach). Both levels share one trial budget: Parallelism()
// slots process-wide, so -procs bounds in-flight trials no matter how many
// experiments are open at once. With a budget of one the dispatcher
// degrades to the classic serial schedule — experiments strictly one after
// another, in ids order — which is also the mode the committed baseline is
// generated in.
//
// The overlapped schedule is critical-path-first. When cost hints are
// installed (SetCostHints, fed from a previous run's wall_ms), experiments
// launch in LPT order — longest estimated wall first — so the heavy
// hitters never end up as lone stragglers; and every slot freed by a
// finishing trial is stolen by the waiting trial of the costliest open
// experiment (prioSem), keeping the budget concentrated on the makespan's
// critical path. Without hints all costs are zero and the schedule reduces
// to ids-order launch with FIFO slot grants.
//
// Overlap is safe precisely because stat attribution is local: every
// trial's kernel and fabric counters land in the owning experiment's
// StatSink at endTrial, so each Result reads byte-identical to a serial
// run (TestOverlappedVsSerialIdentical) — with or without cost hints.
// Only wall time changes: trials from later experiments fill the slots
// that an almost-finished experiment's stragglers would otherwise leave
// idle.
//
// On failure RunAll returns the error of the earliest experiment in ids
// order, mirroring forEach's lowest-index rule, so error reporting is
// deterministic under any scheduling.
func RunAll(ids []string, seed uint64, scale Scale) ([]Result, error) {
	// Validate up front so a typo fails before any experiment starts.
	for _, id := range ids {
		if _, ok := registry[id]; !ok {
			return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, Names())
		}
	}
	results := make([]Result, len(ids))
	budget := Parallelism()
	if budget <= 1 || len(ids) <= 1 {
		for i, id := range ids {
			rc := &runCtx{}
			start := time.Now()
			rep, err := runWith(rc, id, seed, scale)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", id, err)
			}
			results[i] = Result{ID: id, Report: rep, Stats: rc.stats(), Wall: time.Since(start)}
		}
		return results, nil
	}

	hints := snapshotCostHints()
	order := lptOrder(ids, hints)
	sem := newPrioSem(budget)
	errs := make([]error, len(ids))
	var wg sync.WaitGroup
	wg.Add(len(ids))
	for _, i := range order {
		go func(i int) {
			defer wg.Done()
			rc := &runCtx{sem: sem, prio: hints[ids[i]]}
			start := time.Now()
			rep, err := runWith(rc, ids[i], seed, scale)
			errs[i] = err
			results[i] = Result{ID: ids[i], Report: rep, Stats: rc.stats(), Wall: time.Since(start)}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("%s: %w", ids[i], err)
		}
	}
	return results, nil
}

// lptOrder returns the indices of ids sorted by descending cost hint
// (longest processing time first), stable so unhinted runs keep ids order.
func lptOrder(ids []string, hints map[string]float64) []int {
	order := make([]int, len(ids))
	for i := range order {
		order[i] = i
	}
	if len(hints) > 0 {
		sort.SliceStable(order, func(a, b int) bool {
			return hints[ids[order[a]]] > hints[ids[order[b]]]
		})
	}
	return order
}
