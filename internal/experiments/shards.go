package experiments

import (
	"bytes"
	"fmt"

	"hyperloop/internal/cpusim"
	"hyperloop/internal/metrics"
	"hyperloop/internal/protocol"
	"hyperloop/internal/rdma"
	"hyperloop/internal/shard"
	"hyperloop/internal/sim"
	"hyperloop/internal/ycsb"
)

// Shards-experiment constants: a rack of shardServers machines hosting
// hundreds of independent replication groups (SR-IOV style — many NICs
// per server, one per shard replica), owned by shardTenants tenants with
// zipfian-skewed load. Small mirrors and shallow rings keep a
// 100-group × 3-NIC trial inside one pooled arena.
const (
	shardReplicas  = 2
	shardServers   = 16
	shardCores     = 1 // scarce: replica handlers must queue for naive
	shardTenants   = 8
	shardSlotSize  = 128
	shardSlots     = 4
	shardLogSize   = 2048
	shardDepth     = 8
	shardValueSize = 64
	shardZipfTheta = 0.99
	// shardDevExtra covers rings/meta/staging past the mirror at offset 0.
	shardDevExtra = 64 << 10
)

// shardTenantOf maps shards to owners in contiguous blocks — tenant t
// owns a run of the Range-partitioned keyspace, so each tenant spans many
// groups and its shard IDs are decorrelated from any server stride.
func shardTenantOf(nShards, s int) int { return s * shardTenants / nShards }

// rack is one built deployment: a router over nShards groups placed
// across the rack's servers.
type rack struct {
	k      *sim.Kernel
	router *shard.Router
}

// buildRack places nShards groups (protoName datapath) across the rack
// under the given placement policy and wires a Range-policy router over
// them with exactly one key per shard (key k → shard k).
func buildRack(ar *trialArena, seed uint64, nShards int, protoName string, pol shard.PlacementPolicy) (*rack, error) {
	k := ar.kernel(seed)
	fab := ar.fabric(k, rdma.DefaultConfig())
	scheds := make([]*cpusim.Scheduler, shardServers)
	for s := range scheds {
		sched, err := cpusim.New(k, cpusim.DefaultConfig(shardCores))
		if err != nil {
			return nil, err
		}
		scheds[s] = sched
	}
	place, err := shard.Place(pol, nShards, shardReplicas, shardServers,
		func(s int) int { return shardTenantOf(nShards, s) })
	if err != nil {
		return nil, err
	}
	cfg := shard.Config{
		Shards:        nShards,
		Policy:        shard.Range,
		Keys:          uint64(nShards),
		SlotSize:      shardSlotSize,
		SlotsPerShard: shardSlots,
		LogSize:       shardLogSize,
	}
	mirror := cfg.MirrorSize()
	dev := mirror + shardDevExtra
	router, err := shard.New(cfg, func(id int) (shard.Backend, error) {
		name := fmt.Sprintf("cli/sh%d", id)
		client, err := fab.AddNIC(name, ar.device(name, dev))
		if err != nil {
			return nil, err
		}
		env := protocol.Env{Fabric: fab, Client: client}
		for j, srv := range place[id] {
			host := fmt.Sprintf("srv%d/sh%d.%d", srv, id, j)
			nic, err := fab.AddNIC(host, ar.device(host, dev))
			if err != nil {
				return nil, err
			}
			env.Replicas = append(env.Replicas, nic)
			env.Scheds = append(env.Scheds, scheds[srv])
		}
		return protocol.Build(protoName, env, protocol.Params{
			MirrorSize: mirror,
			Depth:      shardDepth,
		})
	})
	if err != nil {
		return nil, err
	}
	return &rack{k: k, router: router}, nil
}

// tenantRes is one tenant leg's outcome: per-tenant latency and volume.
type tenantRes struct {
	ops  []int
	done []sim.Time // virtual finish time of each tenant's load
	hist []*metrics.Histogram
}

// shardTenantTrial drives zipfian-skewed tenant load over a full rack:
// ops operations are attributed to tenants by a Zipfian(theta=0.99) draw,
// then every shard runs its tenant's share on its own closed-loop fiber —
// all groups loaded concurrently, durable single-key puts. Tenants never
// share a group, so all interference arrives through shared server CPUs:
// the hot tenant's shards keep issuing long after cold tenants would be
// done, and where its replica handlers sit is exactly what placement
// decides.
func shardTenantTrial(ar *trialArena, seed uint64, nShards int, protoName string, pol shard.PlacementPolicy, ops int) (tenantRes, error) {
	r, err := buildRack(ar, seed, nShards, protoName, pol)
	if err != nil {
		return tenantRes{}, err
	}
	defer r.router.Close()

	rng := sim.NewRNG(seed)
	z := ycsb.NewZipfian(rng, shardTenants, shardZipfTheta)
	res := tenantRes{
		ops:  make([]int, shardTenants),
		done: make([]sim.Time, shardTenants),
		hist: make([]*metrics.Histogram, shardTenants),
	}
	for t := range res.hist {
		res.hist[t] = metrics.NewHistogram()
	}
	for i := 0; i < ops; i++ {
		res.ops[z.Next(shardTenants)]++
	}
	// Tenant t's ops split evenly over its own contiguous shard block.
	shardOps := make([]int, nShards)
	owned := make([]int, shardTenants)
	for s := 0; s < nShards; s++ {
		owned[shardTenantOf(nShards, s)]++
	}
	left := append([]int(nil), res.ops...)
	for s := 0; s < nShards; s++ {
		t := shardTenantOf(nShards, s)
		n := (left[t] + owned[t] - 1) / owned[t]
		shardOps[s] = n
		left[t] -= n
		owned[t]--
	}

	value := bytes.Repeat([]byte{0x5a}, shardValueSize)
	remaining := nShards
	var trialErr error
	for s := 0; s < nShards; s++ {
		s := s
		t := shardTenantOf(nShards, s)
		r.k.Spawn(fmt.Sprintf("sh%d", s), func(f *sim.Fiber) {
			defer func() {
				if end := f.Now(); end > res.done[t] {
					res.done[t] = end
				}
				if remaining--; remaining == 0 {
					r.k.StopRun()
				}
			}()
			for i := 0; i < shardOps[s]; i++ {
				start := f.Now()
				if err := r.router.Put(f, uint64(s), value); err != nil {
					if trialErr == nil {
						trialErr = fmt.Errorf("shard %d op %d: %w", s, i, err)
					}
					return
				}
				res.hist[t].RecordDuration(f.Now().Sub(start))
			}
		})
	}
	if err := r.runToStop(30 * 60 * sim.Second); err != nil {
		return tenantRes{}, err
	}
	if trialErr != nil {
		return tenantRes{}, trialErr
	}
	if got := int(r.router.Stats().Puts); got != ops {
		return tenantRes{}, fmt.Errorf("ran %d/%d puts", got, ops)
	}
	return res, nil
}

// runToStop mirrors cluster.runToStop for racks.
func (r *rack) runToStop(horizon sim.Duration) error {
	err := r.k.RunUntil(r.k.Now().Add(horizon))
	if err == sim.ErrStopped {
		return nil
	}
	return err
}

// txnRes is the cross-shard leg's outcome, one slot per txn span.
type txnRes struct {
	spans []int
	hist  []*metrics.Histogram
	stats shard.Stats
}

// shardTxnTrial measures cross-shard two-phase commit cost on an
// offloaded rack: closed-loop transactions spanning 1, 2 and 4 groups
// (prepare = lock + replicated WAL append per group; commit = execute +
// unlock per group), shard sets rotating so every group participates.
func shardTxnTrial(ar *trialArena, seed uint64, nShards, txns int) (txnRes, error) {
	r, err := buildRack(ar, seed, nShards, "chain", shard.RoundRobin)
	if err != nil {
		return txnRes{}, err
	}
	defer r.router.Close()

	res := txnRes{spans: []int{1, 2, 4}}
	value := bytes.Repeat([]byte{0x7e}, shardValueSize)
	var trialErr error
	r.k.Spawn("txn-driver", func(f *sim.Fiber) {
		defer r.k.StopRun()
		for si, span := range res.spans {
			h := metrics.NewHistogram()
			res.hist = append(res.hist, h)
			for i := 0; i < txns; i++ {
				writes := make([]shard.Write, span)
				base := (i*7 + si) % nShards
				for j := 0; j < span; j++ {
					writes[j] = shard.Write{Key: uint64((base + j) % nShards), Data: value}
				}
				start := f.Now()
				if err := r.router.Txn(f, writes); err != nil {
					trialErr = fmt.Errorf("span %d txn %d: %w", span, i, err)
					return
				}
				h.RecordDuration(f.Now().Sub(start))
			}
		}
	})
	if err := r.runToStop(30 * 60 * sim.Second); err != nil {
		return txnRes{}, err
	}
	if trialErr != nil {
		return txnRes{}, trialErr
	}
	res.stats = r.router.Stats()
	if want := uint64(len(res.spans) * txns); res.stats.Commits != want {
		return txnRes{}, fmt.Errorf("committed %d/%d txns", res.stats.Commits, want)
	}
	return res, nil
}

// shardsExp is the cluster-scale payoff: hundreds of independent
// replication groups behind one shard router on a simulated rack.
//
//  1. Tenant isolation: {chain, naive} × {round-robin, tenant-affinity}
//     placement under zipfian tenant skew. The NIC-offloaded chain is
//     placement-insensitive (replicas burn no host CPU — the SuperNIC
//     argument); the naive datapath contends for the rack's scarce cores,
//     so packing the hot tenant (affinity) shields cold tenants' p99.
//  2. Cross-shard transactions: 2PC latency vs span over the same rack.
func shardsExp(rc *runCtx, seed uint64, scale Scale) (*Report, error) {
	nShards := scale.pick(100, 256)
	ops := scale.pick(1600, 12800)
	txns := scale.pick(40, 320)

	type leg struct {
		proto string
		pol   shard.PlacementPolicy
	}
	legs := []leg{
		{"chain", shard.RoundRobin},
		{"chain", shard.TenantAffinity},
		{"naive", shard.RoundRobin},
		{"naive", shard.TenantAffinity},
	}
	tenantRuns := make([]tenantRes, len(legs))
	var txnRun txnRes

	// One forEach over all five trials so the whole rack sweep shares the
	// worker pool; the txn leg rides as the last index.
	if err := forEach(rc, len(legs)+1, func(i int, ar *trialArena) error {
		if i == len(legs) {
			r, err := shardTxnTrial(ar, seed, nShards, txns)
			if err != nil {
				return fmt.Errorf("txn leg: %w", err)
			}
			txnRun = r
			return nil
		}
		r, err := shardTenantTrial(ar, seed, nShards, legs[i].proto, legs[i].pol, ops)
		if err != nil {
			return fmt.Errorf("%s/%s: %w", legs[i].proto, legs[i].pol, err)
		}
		tenantRuns[i] = r
		return nil
	}); err != nil {
		return nil, err
	}

	iso := metrics.NewTable(
		fmt.Sprintf("Tenant isolation: %d groups × %d replicas on %d servers (%d cores each), zipf(%.2f) skew over %d tenants",
			nShards, shardReplicas, shardServers, shardCores, shardZipfTheta, shardTenants),
		"datapath", "placement", "tenant", "ops", "ops/ms", "p50", "p99")
	for i, l := range legs {
		r := tenantRuns[i]
		for t := 0; t < shardTenants; t++ {
			rate := "-"
			if ms := float64(r.done[t]) / float64(sim.Millisecond); ms > 0 {
				rate = fmt.Sprintf("%.1f", float64(r.ops[t])/ms)
			}
			iso.AddRow(l.proto, l.pol.String(), t, r.ops[t], rate,
				r.hist[t].PercentileDuration(50), r.hist[t].PercentileDuration(99))
		}
	}

	tp := metrics.NewTable(
		fmt.Sprintf("Cross-shard transactions: 2PC over chain groups, %d txns per span", txns),
		"span", "txns", "avg", "p99")
	for si, span := range txnRun.spans {
		tp.AddRow(span, txnRun.hist[si].Count(),
			txnRun.hist[si].MeanDuration(), txnRun.hist[si].PercentileDuration(99))
	}

	return &Report{
		ID: "shards", Title: "Sharded scale-out: placement, tenant skew, cross-shard 2PC",
		Tables: []*metrics.Table{iso, tp},
		Notes: []string{
			fmt.Sprintf("cross-shard commits: %d of %d spanned >1 group; every prepare locked, appended and executed on its own chain",
				txnRun.stats.CrossShard, txnRun.stats.Commits),
			"chain replicas are NIC-offloaded, so placement barely moves tenant latency; naive handlers queue on the rack's cores and round-robin spreads the hot tenant's interference to everyone",
			"tenants never share a group: all interference is infrastructure (CPU scheduling), the isolation SuperNIC argues NIC offload buys",
		},
	}, nil
}
