package experiments

import (
	"sync"
	"sync/atomic"

	"hyperloop/internal/nvm"
	"hyperloop/internal/rdma"
	"hyperloop/internal/sim"
)

// poolingOff disables trial-state reuse; the golden determinism test flips
// it to prove pooled and fresh lifecycles produce byte-identical reports.
var poolingOff atomic.Bool

// SetDevicePooling enables or disables reuse of devices, kernels, and
// fabric payload pools across trials, returning the previous setting.
// Pooling is wall-clock/GC-pressure only: virtual-time results are
// byte-identical either way (asserted by TestPooledVsFreshIdentical).
func SetDevicePooling(on bool) bool {
	return !poolingOff.Swap(!on)
}

// trialArena owns the reusable simulation state of one trial worker:
// pooled NVM devices (reset to their written ranges only, not
// reallocated), pooled simulation kernels (event free lists and heap
// capacity survive), and one fabric payload-buffer pool lent to each
// trial's fabric. A trial acquires everything through the arena and the
// worker releases the whole trial back in one endTrial call, so a
// finished trial recycles its big allocations instead of dropping them on
// the garbage collector at once.
//
// An arena is used by exactly one goroutine at a time (acquireArena /
// releaseArena hand them out), so none of this needs locking.
type trialArena struct {
	devices nvm.DevicePool
	kernels []*sim.Kernel
	bufs    *rdma.BufPool

	kernelGets, kernelPuts    int64
	kernelFresh, kernelReused int64
	kernelDropped             int64 // released with live fibers; not pooled
	trialDevs                 []*nvm.Device
	trialKernels              []*sim.Kernel
}

// kernel returns a kernel seeded like sim.NewKernel(seed), pooled when
// possible. Safe on a nil arena (always fresh) so helpers outside the
// worker pool keep working.
func (a *trialArena) kernel(seed uint64) *sim.Kernel {
	if a == nil || poolingOff.Load() {
		return sim.NewKernel(seed)
	}
	a.kernelGets++
	for n := len(a.kernels); n > 0; n = len(a.kernels) {
		k := a.kernels[n-1]
		a.kernels[n-1] = nil
		a.kernels = a.kernels[:n-1]
		if k.Reset(seed) {
			a.kernelReused++
			a.trialKernels = append(a.trialKernels, k)
			return k
		}
	}
	a.kernelFresh++
	k := sim.NewKernel(seed)
	a.trialKernels = append(a.trialKernels, k)
	return k
}

// device returns a zeroed device, pooled by size when possible.
func (a *trialArena) device(name string, size int) *nvm.Device {
	if a == nil || poolingOff.Load() {
		return nvm.NewDevice(name, size)
	}
	d := a.devices.Get(name, size)
	a.trialDevs = append(a.trialDevs, d)
	return d
}

// fabric builds a trial's fabric on k, drawing payload scratch buffers
// from the arena's pool so they survive across trials.
func (a *trialArena) fabric(k *sim.Kernel, cfg rdma.Config) *rdma.Fabric {
	fab := rdma.NewFabric(k, cfg)
	if a != nil && !poolingOff.Load() {
		if a.bufs == nil {
			a.bufs = &rdma.BufPool{}
		}
		fab.AdoptBufPool(a.bufs)
	}
	return fab
}

// endTrial releases everything the current trial acquired back to the
// arena: devices are reset (zeroing only their written ranges) and
// pooled, idle kernels are pooled for the next Reset, and the buffer pool
// was shared all along. Safe on a nil arena.
func (a *trialArena) endTrial() {
	if a == nil {
		return
	}
	for i, d := range a.trialDevs {
		a.devices.Put(d)
		a.trialDevs[i] = nil
	}
	a.trialDevs = a.trialDevs[:0]
	for i, k := range a.trialKernels {
		a.kernelPuts++
		if k.LiveFibers() == 0 && !poolingOff.Load() {
			a.kernels = append(a.kernels, k)
		} else {
			a.kernelDropped++
		}
		a.trialKernels[i] = nil
	}
	a.trialKernels = a.trialKernels[:0]
}

// arenas is the package-level pool of trial arenas. Workers check one out
// for the duration of a forEach (or a withArena call), so arenas — and
// the device/kernel/buffer state they carry — are reused across
// experiments, not just across one experiment's trials.
var arenas struct {
	mu   sync.Mutex
	free []*trialArena
	all  []*trialArena
}

func acquireArena() *trialArena {
	arenas.mu.Lock()
	defer arenas.mu.Unlock()
	if n := len(arenas.free); n > 0 {
		a := arenas.free[n-1]
		arenas.free[n-1] = nil
		arenas.free = arenas.free[:n-1]
		return a
	}
	a := &trialArena{}
	arenas.all = append(arenas.all, a)
	return a
}

func releaseArena(a *trialArena) {
	a.endTrial() // a worker exiting mid-trial (job error) still releases
	arenas.mu.Lock()
	arenas.free = append(arenas.free, a)
	arenas.mu.Unlock()
}

// withArena runs fn with a checked-out arena and releases its trial state
// afterwards — the serial-path equivalent of one forEach worker, for
// experiments that build clusters outside a worker pool.
func withArena(fn func(ar *trialArena) error) error {
	ar := acquireArena()
	defer releaseArena(ar)
	return fn(ar)
}

// ArenaStats aggregates trial-arena counters across all workers. The
// bench harness samples it around each experiment; the deltas make the
// pooling win observable (device_bytes_zeroed vs device_bytes_demand).
type ArenaStats struct {
	DeviceGets   int64 // devices acquired by trials
	DevicePuts   int64 // devices released back (Gets-Puts = leaked)
	DeviceFresh  int64 // acquisitions served by a new allocation
	DeviceReused int64 // acquisitions served from a pool
	DeviceIdle   int64 // devices sitting in pools right now

	// DeviceBytesZeroed is the zeroing actually performed (full images on
	// fresh allocation, written ranges only on reuse); DeviceBytesDemand
	// is what allocating fresh per trial would have zeroed.
	DeviceBytesZeroed int64
	DeviceBytesDemand int64

	KernelGets   int64
	KernelPuts   int64
	KernelFresh  int64
	KernelReused int64
	KernelIdle   int64
}

// Stats sums arena counters across all workers. Call it only while no
// experiment is running (the counters are unsynchronized within a
// worker); the bench harness samples between experiments.
func Stats() ArenaStats {
	arenas.mu.Lock()
	defer arenas.mu.Unlock()
	var s ArenaStats
	for _, a := range arenas.all {
		ds := a.devices.Stats()
		s.DeviceGets += ds.Gets
		s.DevicePuts += ds.Puts
		s.DeviceFresh += ds.Fresh
		s.DeviceReused += ds.Reused
		s.DeviceIdle += int64(a.devices.Idle())
		s.DeviceBytesZeroed += ds.BytesZeroed
		s.DeviceBytesDemand += ds.BytesDemand
		s.KernelGets += a.kernelGets
		s.KernelPuts += a.kernelPuts
		s.KernelFresh += a.kernelFresh
		s.KernelReused += a.kernelReused
		s.KernelIdle += int64(len(a.kernels))
	}
	return s
}
