package experiments

import (
	"sync"
	"sync/atomic"

	"hyperloop/internal/nvm"
	"hyperloop/internal/rdma"
	"hyperloop/internal/sim"
)

// poolingOff disables trial-state reuse; the golden determinism test flips
// it to prove pooled and fresh lifecycles produce byte-identical reports.
var poolingOff atomic.Bool

// SetDevicePooling enables or disables reuse of devices, kernels, and
// whole fabrics (with their NIC structs and payload pools) across trials,
// returning the previous setting. Pooling is wall-clock/GC-pressure only:
// virtual-time results are byte-identical either way (asserted by
// TestPooledVsFreshIdentical).
func SetDevicePooling(on bool) bool {
	return !poolingOff.Swap(!on)
}

// trialArena owns the reusable simulation state of one trial: pooled NVM
// devices (reset to their written ranges only, not reallocated), pooled
// simulation kernels (event free lists and heap capacity survive), and
// pooled rdma.Fabric objects — the whole fabric, its recycled NIC structs,
// and its payload-buffer pool, not just scratch buffers. A trial acquires
// everything through the arena, and the worker releases the whole trial
// back in one endTrial call, which also attributes the trial's counters
// (kernel events, fabric CQEs/messages/bytes, device pool work) to the
// experiment run that owns the trial.
//
// An arena is used by exactly one goroutine at a time (acquireArena /
// releaseArena hand them out), so none of this needs locking.
type trialArena struct {
	devices nvm.DevicePool
	kernels []*sim.Kernel
	fabrics []*rdma.Fabric

	kernelGets, kernelPuts    int64
	kernelFresh, kernelReused int64
	kernelDropped             int64 // released with live fibers; not pooled
	fabricFresh, fabricReused int64

	trialDevs    []*nvm.Device
	trialKernels []*sim.Kernel
	trialFabrics []*rdma.Fabric

	// trial accumulates the in-flight trial's arena-side counters; devSnap
	// is the device pool's stats at the last endTrial, so the next
	// endTrial can attribute the pool's delta to its trial.
	trial   StatSink
	devSnap nvm.PoolStats
}

// kernel returns a kernel seeded like sim.NewKernel(seed), pooled when
// possible. Safe on a nil arena (always fresh) so helpers outside the
// worker pool keep working; a nil arena's kernels go unattributed.
func (a *trialArena) kernel(seed uint64) *sim.Kernel {
	if a == nil {
		return sim.NewKernel(seed)
	}
	a.trial.KernelGets++
	if poolingOff.Load() {
		a.trial.KernelFresh++
		k := sim.NewKernel(seed)
		a.trialKernels = append(a.trialKernels, k)
		return k
	}
	a.kernelGets++
	for n := len(a.kernels); n > 0; n = len(a.kernels) {
		k := a.kernels[n-1]
		a.kernels[n-1] = nil
		a.kernels = a.kernels[:n-1]
		if k.Reset(seed) {
			a.kernelReused++
			a.trial.KernelReused++
			a.trialKernels = append(a.trialKernels, k)
			return k
		}
	}
	a.kernelFresh++
	a.trial.KernelFresh++
	k := sim.NewKernel(seed)
	a.trialKernels = append(a.trialKernels, k)
	return k
}

// device returns a zeroed device, pooled by size when possible.
func (a *trialArena) device(name string, size int) *nvm.Device {
	if a == nil || poolingOff.Load() {
		return nvm.NewDevice(name, size)
	}
	d := a.devices.Get(name, size)
	a.trialDevs = append(a.trialDevs, d)
	return d
}

// fabric builds a trial's fabric on k, reusing a pooled fabric (and its
// recycled NICs and payload buffers) when one is available.
func (a *trialArena) fabric(k *sim.Kernel, cfg rdma.Config) *rdma.Fabric {
	if a == nil {
		return rdma.NewFabric(k, cfg)
	}
	a.trial.FabricBuilds++
	if poolingOff.Load() {
		fab := rdma.NewFabric(k, cfg)
		a.trialFabrics = append(a.trialFabrics, fab)
		return fab
	}
	var fab *rdma.Fabric
	if n := len(a.fabrics); n > 0 {
		fab = a.fabrics[n-1]
		a.fabrics[n-1] = nil
		a.fabrics = a.fabrics[:n-1]
		fab.Reset(k, cfg)
		a.fabricReused++
		a.trial.FabricReused++
	} else {
		fab = rdma.NewFabric(k, cfg)
		a.fabricFresh++
	}
	a.trialFabrics = append(a.trialFabrics, fab)
	return fab
}

// endTrial releases everything the current trial acquired back to the
// arena — devices are reset (zeroing only their written ranges) and
// pooled, idle kernels are pooled for the next Reset, fabrics are pooled
// whole — and attributes the trial's counters to rc's experiment run:
// each kernel's executed-event count, each fabric's CQE/message/byte
// totals, and the device pool's stat delta all land in rc's StatSink.
// Safe on a nil arena and a nil rc.
func (a *trialArena) endTrial(rc *runCtx) {
	if a == nil {
		return
	}
	t := a.trial
	a.trial = StatSink{}
	for i, k := range a.trialKernels {
		t.SimEvents += k.Executed()
		t.FastDispatches += k.FastDispatches()
		t.SlowDispatches += k.SlowDispatches()
		if !poolingOff.Load() {
			a.kernelPuts++
			if k.LiveFibers() == 0 {
				a.kernels = append(a.kernels, k)
			} else {
				a.kernelDropped++
			}
		}
		a.trialKernels[i] = nil
	}
	a.trialKernels = a.trialKernels[:0]
	for i, f := range a.trialFabrics {
		msgs, bytes := f.Stats()
		t.Messages += msgs
		t.WireBytes += bytes
		t.CQEs += f.CQEs()
		if !poolingOff.Load() {
			a.fabrics = append(a.fabrics, f)
		}
		a.trialFabrics[i] = nil
	}
	a.trialFabrics = a.trialFabrics[:0]
	for i, d := range a.trialDevs {
		a.devices.Put(d)
		a.trialDevs[i] = nil
	}
	a.trialDevs = a.trialDevs[:0]
	// The trial's Puts just ran, so the pool delta since the last endTrial
	// is exactly this trial's device work.
	cur := a.devices.Stats()
	ds := cur.Sub(a.devSnap)
	a.devSnap = cur
	t.DeviceGets += ds.Gets
	t.DevicePuts += ds.Puts
	t.DeviceFresh += ds.Fresh
	t.DeviceReused += ds.Reused
	t.DeviceBytesZeroed += ds.BytesZeroed
	t.DeviceBytesDemand += ds.BytesDemand
	rc.addTrial(t)
}

// arenas is the package-level pool of trial arenas. Workers check one out
// per trial slot, so arenas — and the device/kernel/fabric state they
// carry — are reused across experiments, not just across one experiment's
// trials.
var arenas struct {
	mu   sync.Mutex
	free []*trialArena
	all  []*trialArena
}

func acquireArena() *trialArena {
	arenas.mu.Lock()
	defer arenas.mu.Unlock()
	if n := len(arenas.free); n > 0 {
		a := arenas.free[n-1]
		arenas.free[n-1] = nil
		arenas.free = arenas.free[:n-1]
		return a
	}
	a := &trialArena{}
	arenas.all = append(arenas.all, a)
	return a
}

func releaseArena(a *trialArena, rc *runCtx) {
	a.endTrial(rc) // a worker exiting mid-trial (job error) still releases
	arenas.mu.Lock()
	arenas.free = append(arenas.free, a)
	arenas.mu.Unlock()
}

// withArena runs fn with a checked-out arena and releases its trial state
// afterwards — the serial-path equivalent of one forEach worker, for
// experiments that build clusters outside a worker pool. The whole call
// counts as one trial against rc's shared slot budget.
func withArena(rc *runCtx, fn func(ar *trialArena) error) error {
	rc.acquire()
	defer rc.release()
	ar := acquireArena()
	defer releaseArena(ar, rc)
	return fn(ar)
}

// ArenaStats aggregates trial-arena counters across all workers; the
// deltas make the pooling win observable (device_bytes_zeroed vs
// device_bytes_demand). Per-experiment attribution does not use these
// process-wide sums — each run's StatSink carries its own counters.
type ArenaStats struct {
	DeviceGets   int64 // devices acquired by trials
	DevicePuts   int64 // devices released back (Gets-Puts = leaked)
	DeviceFresh  int64 // acquisitions served by a new allocation
	DeviceReused int64 // acquisitions served from a pool
	DeviceIdle   int64 // devices sitting in pools right now

	// DeviceBytesZeroed is the zeroing actually performed (full images on
	// fresh allocation, written ranges only on reuse); DeviceBytesDemand
	// is what allocating fresh per trial would have zeroed.
	DeviceBytesZeroed int64
	DeviceBytesDemand int64

	KernelGets   int64
	KernelPuts   int64
	KernelFresh  int64
	KernelReused int64
	KernelIdle   int64

	FabricFresh  int64
	FabricReused int64
	FabricIdle   int64
}

// Stats sums arena counters across all workers. Call it only while no
// experiment is running (the counters are unsynchronized within a
// worker); tests sample it between runs.
func Stats() ArenaStats {
	arenas.mu.Lock()
	defer arenas.mu.Unlock()
	var s ArenaStats
	for _, a := range arenas.all {
		ds := a.devices.Stats()
		s.DeviceGets += ds.Gets
		s.DevicePuts += ds.Puts
		s.DeviceFresh += ds.Fresh
		s.DeviceReused += ds.Reused
		s.DeviceIdle += int64(a.devices.Idle())
		s.DeviceBytesZeroed += ds.BytesZeroed
		s.DeviceBytesDemand += ds.BytesDemand
		s.KernelGets += a.kernelGets
		s.KernelPuts += a.kernelPuts
		s.KernelFresh += a.kernelFresh
		s.KernelReused += a.kernelReused
		s.KernelIdle += int64(len(a.kernels))
		s.FabricFresh += a.fabricFresh
		s.FabricReused += a.fabricReused
		s.FabricIdle += int64(len(a.fabrics))
	}
	return s
}
