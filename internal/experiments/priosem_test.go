package experiments

import (
	"reflect"
	"sync"
	"testing"
	"time"
)

// TestPrioSemGrantOrder parks waiters at mixed priorities on an empty
// semaphore and verifies releases grant strictly by descending priority,
// FIFO among equals.
func TestPrioSemGrantOrder(t *testing.T) {
	s := newPrioSem(0)
	prios := []float64{1, 5, 3, 5, 2}
	granted := make(chan int, len(prios))
	var wg sync.WaitGroup
	for i, p := range prios {
		wg.Add(1)
		go func(i int, p float64) {
			defer wg.Done()
			s.acquire(p)
			granted <- i
		}(i, p)
		// Serialize arrival so seq order (FIFO tiebreak) is deterministic.
		for {
			s.mu.Lock()
			n := len(s.waiters)
			s.mu.Unlock()
			if n == i+1 {
				break
			}
			time.Sleep(time.Millisecond)
		}
	}
	var got []int
	for range prios {
		s.release()
		got = append(got, <-granted)
	}
	wg.Wait()
	// Priorities 5(idx1), 5(idx3, later arrival), 3(idx2), 2(idx4), 1(idx0).
	if want := []int{1, 3, 2, 4, 0}; !reflect.DeepEqual(got, want) {
		t.Fatalf("grant order %v, want %v", got, want)
	}
	// A release with no waiters banks the slot: acquire must not block.
	s.release()
	done := make(chan struct{})
	go func() {
		s.acquire(0)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("acquire blocked on a semaphore with free slots")
	}
}

// TestLPTOrder checks the launch-order seeding: descending cost, stable
// for ties and unhinted ids, and a plain identity without hints.
func TestLPTOrder(t *testing.T) {
	ids := []string{"a", "b", "c", "d", "e"}
	hints := map[string]float64{"a": 10, "b": 500, "c": 10, "e": 42}
	if got, want := lptOrder(ids, hints), []int{1, 4, 0, 2, 3}; !reflect.DeepEqual(got, want) {
		t.Errorf("lptOrder with hints = %v, want %v", got, want)
	}
	if got, want := lptOrder(ids, nil), []int{0, 1, 2, 3, 4}; !reflect.DeepEqual(got, want) {
		t.Errorf("lptOrder without hints = %v, want %v", got, want)
	}
}

// TestRunAllWithCostHintsIdentical runs a small experiment set serially
// and then overlapped with cost hints installed: the critical-path-first
// schedule may reorder execution, but every report and deterministic
// counter must stay byte-identical, and results must come back in ids
// order.
func TestRunAllWithCostHintsIdentical(t *testing.T) {
	ids := []string{"fig8a", "fig8b", "table2"}
	prev := Parallelism()
	defer SetParallelism(prev)

	SetParallelism(1)
	serial, err := RunAll(ids, 1, Quick)
	if err != nil {
		t.Fatal(err)
	}

	defer SetCostHints(SetCostHints(map[string]float64{
		"fig8a": 1, "fig8b": 1000, "table2": 50,
	}))
	SetParallelism(2)
	hinted, err := RunAll(ids, 1, Quick)
	if err != nil {
		t.Fatal(err)
	}

	for i, r := range hinted {
		if r.ID != ids[i] {
			t.Fatalf("result %d is %s, want %s (ids order)", i, r.ID, ids[i])
		}
		if r.Report.String() != serial[i].Report.String() {
			t.Errorf("%s: report differs between serial and cost-hinted overlapped run", r.ID)
		}
		if got, want := deterministicStats(r.Stats), deterministicStats(serial[i].Stats); got != want {
			t.Errorf("%s: counters differ:\nhinted: %+v\nserial: %+v", r.ID, got, want)
		}
	}
}
