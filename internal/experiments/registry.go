package experiments

import (
	"fmt"
	"sort"
)

// Fn is an experiment entry point.
type Fn func(seed uint64, scale Scale) (*Report, error)

// entry pairs an experiment with its description for listings.
type entry struct {
	fn   Fn
	desc string
}

var registry = map[string]entry{
	"fig2a":           {Fig2a, "latency & context switches vs replica-sets per server (§2.2)"},
	"fig2b":           {Fig2b, "latency vs cores per machine (§2.2)"},
	"fig8a":           {Fig8a, "gWRITE latency vs message size (§6.1)"},
	"fig8b":           {Fig8b, "gMEMCPY latency vs message size (§6.1)"},
	"table2":          {Table2, "gCAS latency statistics (§6.1)"},
	"fig9":            {Fig9, "gWRITE throughput + critical-path CPU (§6.1)"},
	"fig10":           {Fig10, "p99 gWRITE latency vs group size (§6.1)"},
	"fig11":           {Fig11, "KV store YCSB-A latency across backends (§6.2)"},
	"fig12":           {Fig12, "document store latency across YCSB workloads (§6.2)"},
	"table3":          {Table3, "YCSB workload definitions (§6.2)"},
	"abl-load":        {AblationNoLoad, "ablation: co-located load is the root cause"},
	"abl-flush":       {AblationFlush, "ablation: gFLUSH durability cost"},
	"abl-depth":       {AblationDepth, "ablation: pre-armed window depth"},
	"abl-fanout":      {AblationFanout, "ablation: chain vs fan-out topology (§7)"},
	"abl-consistency": {AblationConsistency, "ablation: weaker consistency models (§7)"},
}

// Names returns all experiment ids, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for k := range registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Describe returns an experiment's one-line description.
func Describe(name string) string { return registry[name].desc }

// Run executes the named experiment.
func Run(name string, seed uint64, scale Scale) (*Report, error) {
	e, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", name, Names())
	}
	return e.fn(seed, scale)
}

// PaperOrder lists experiment ids in the order they appear in the paper.
func PaperOrder() []string {
	return []string{
		"fig2a", "fig2b",
		"table3",
		"fig8a", "fig8b", "table2", "fig9", "fig10",
		"fig11", "fig12",
		"abl-load", "abl-flush", "abl-depth", "abl-fanout", "abl-consistency",
	}
}
