package experiments

import (
	"fmt"
	"sort"
)

// runFn is an experiment entry point. rc identifies the run: the trials
// an experiment schedules report their counters into rc's StatSink, and
// when the two-level scheduler dispatched the run, trials also draw slots
// from rc's shared cross-experiment budget.
type runFn func(rc *runCtx, seed uint64, scale Scale) (*Report, error)

// entry pairs an experiment with its description for listings.
type entry struct {
	fn   runFn
	desc string
}

var registry = map[string]entry{
	"fig2a":           {fig2a, "latency & context switches vs replica-sets per server (§2.2)"},
	"fig2b":           {fig2b, "latency vs cores per machine (§2.2)"},
	"fig8a":           {fig8a, "gWRITE latency vs message size (§6.1)"},
	"fig8b":           {fig8b, "gMEMCPY latency vs message size (§6.1)"},
	"table2":          {table2, "gCAS latency statistics (§6.1)"},
	"fig9":            {fig9, "gWRITE throughput + critical-path CPU (§6.1)"},
	"fig10":           {fig10, "p99 gWRITE latency vs group size (§6.1)"},
	"fig11":           {fig11, "KV store YCSB-A latency across backends (§6.2)"},
	"fig12":           {fig12, "document store latency across YCSB workloads (§6.2)"},
	"table3":          {table3, "YCSB workload definitions (§6.2)"},
	"abl-load":        {ablationNoLoad, "ablation: co-located load is the root cause"},
	"abl-flush":       {ablationFlush, "ablation: gFLUSH durability cost"},
	"abl-depth":       {ablationDepth, "ablation: pre-armed window depth"},
	"abl-fanout":      {ablationFanout, "ablation: chain vs fan-out topology (§7)"},
	"abl-consistency": {ablationConsistency, "ablation: weaker consistency models (§7)"},
	"failover":        {failover, "mid-chain replica crash: detection, catch-up, resume (§5)"},
	"protocols":       {protocolsExp, "replication protocol comparison: latency, message cost, availability"},
	"shards":          {shardsExp, "sharded scale-out: placement, tenant skew, cross-shard 2PC"},
}

// Names returns all experiment ids, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for k := range registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Describe returns an experiment's one-line description.
func Describe(name string) string { return registry[name].desc }

// runWith executes the named experiment for the run rc.
func runWith(rc *runCtx, name string, seed uint64, scale Scale) (*Report, error) {
	e, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", name, Names())
	}
	return e.fn(rc, seed, scale)
}

// Run executes the named experiment.
func Run(name string, seed uint64, scale Scale) (*Report, error) {
	r, _, err := RunStats(name, seed, scale)
	return r, err
}

// RunStats executes the named experiment and returns, alongside the
// report, the simulation counters attributed to exactly this run's
// trials. The deterministic fields (see StatSink) are identical at any
// -procs setting and whether or not other experiments ran concurrently.
func RunStats(name string, seed uint64, scale Scale) (*Report, StatSink, error) {
	rc := &runCtx{}
	rep, err := runWith(rc, name, seed, scale)
	return rep, rc.stats(), err
}

// PaperOrder lists experiment ids in the order they appear in the paper.
func PaperOrder() []string {
	return []string{
		"fig2a", "fig2b",
		"table3",
		"fig8a", "fig8b", "table2", "fig9", "fig10",
		"fig11", "fig12",
		"abl-load", "abl-flush", "abl-depth", "abl-fanout", "abl-consistency",
		"failover", "protocols", "shards",
	}
}
