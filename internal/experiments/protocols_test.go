package experiments

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"hyperloop/internal/protocol"
	"hyperloop/internal/rdma"
	"hyperloop/internal/sim"
)

// canonicalProtocols is every protocol this repository registers. The
// conformance suite below iterates protocol.Names() dynamically, so a
// newly registered protocol is tested automatically — this list only
// guards against one silently disappearing from the registry.
var canonicalProtocols = []string{"bcast", "bcast-maj", "chain", "fanout", "naive"}

func TestProtocolRegistryComplete(t *testing.T) {
	names := protocol.Names()
	if len(names) != len(canonicalProtocols) {
		t.Fatalf("registry has %v, conformance suite expects %v — update canonicalProtocols", names, canonicalProtocols)
	}
	for i, want := range canonicalProtocols {
		if names[i] != want {
			t.Fatalf("registry has %v, conformance suite expects %v", names, canonicalProtocols)
		}
		if protocol.Describe(want) == "" {
			t.Fatalf("protocol %s has no description", want)
		}
	}
	if _, err := protocol.Build("nope", protocol.Env{}, protocol.Params{}); err == nil {
		t.Fatal("unknown protocol accepted")
	}
}

// confCluster builds a 3-replica deployment running the named protocol,
// outside the experiment worker pool (nil arena = everything fresh).
func confCluster(t *testing.T, seed uint64, name string, cfg clusterCfg) *cluster {
	t.Helper()
	cfg.seed = seed
	cfg.replicas = 3
	cfg.mirror = 64 << 10
	cfg.cores = 16
	c, err := newProtocolCluster(cfg, name)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return c
}

// drive runs fn as the sole driver fiber and fails the test if the
// simulation deadlocks instead of reaching StopRun.
func drive(t *testing.T, c *cluster, fn func(f *sim.Fiber) error) {
	t.Helper()
	var fnErr error
	done := false
	c.k.Spawn("conformance-driver", func(f *sim.Fiber) {
		defer c.k.StopRun()
		fnErr = fn(f)
		done = true
	})
	if err := c.runToStop(60 * sim.Second); err != nil {
		t.Fatalf("run: %v", err)
	}
	if fnErr != nil {
		t.Fatal(fnErr)
	}
	if !done {
		t.Fatal("driver hung: simulation horizon elapsed before the script finished")
	}
}

// TestProtocolConformance runs one op script — replicated writes, group
// memcpy, group CAS, group flush — against every registered protocol and
// checks the outcome is the same on all of them: client and every replica
// mirror converge to identical bytes, CAS returns the original values,
// and the issued/completed counters balance.
func TestProtocolConformance(t *testing.T) {
	for _, name := range protocol.Names() {
		t.Run(name, func(t *testing.T) {
			c := confCluster(t, 1, name, clusterCfg{})
			g := c.group.(protocol.Protocol)
			payload := bytes.Repeat([]byte("conform!"), 64) // 512 B
			drive(t, c, func(f *sim.Fiber) error {
				// Replicated durable writes at distinct offsets.
				for i := 0; i < 8; i++ {
					off := i * 1024
					if err := g.WriteLocal(off, payload); err != nil {
						return fmt.Errorf("WriteLocal %d: %w", i, err)
					}
					if err := g.Write(f, off, len(payload), true); err != nil {
						return fmt.Errorf("Write %d: %w", i, err)
					}
				}
				// Group memcpy: replicate a copy of block 0 into fresh space.
				if err := g.Memcpy(f, 0, 16<<10, len(payload), true); err != nil {
					return fmt.Errorf("Memcpy: %w", err)
				}
				// Group CAS on an 8-byte lock word, all members executing.
				lockOff := 32 << 10
				if err := g.WriteLocal(lockOff, make([]byte, 8)); err != nil {
					return err
				}
				if err := g.Write(f, lockOff, 8, true); err != nil {
					return fmt.Errorf("lock seed write: %w", err)
				}
				orig, err := g.CAS(f, lockOff, 0, 77, []bool{true, true, true})
				if err != nil {
					return fmt.Errorf("CAS: %w", err)
				}
				for i, v := range orig {
					if v != 0 {
						return fmt.Errorf("CAS member %d saw original %d, want 0", i, v)
					}
				}
				// Group flush over everything written so far.
				if err := g.Flush(f, 0, 34<<10); err != nil {
					return fmt.Errorf("Flush: %w", err)
				}
				// Quorum protocols complete before the slowest member's
				// apply; give stragglers time to drain before comparing.
				f.Sleep(2 * sim.Millisecond)
				return nil
			})

			if fl := g.InFlight(); fl != 0 {
				t.Fatalf("%d ops still in flight after script", fl)
			}
			issued, completed := g.Stats()
			if issued != completed || issued == 0 {
				t.Fatalf("issued=%d completed=%d, want equal and nonzero", issued, completed)
			}
			// Every replica mirror must match the client's, byte for byte.
			want, err := g.ReadLocal(0, 34<<10)
			if err != nil {
				t.Fatal(err)
			}
			got := make([]byte, len(want))
			for i, nic := range c.members {
				if err := nic.Memory().Read(0, got); err != nil {
					t.Fatalf("replica %d read: %v", i, err)
				}
				if !bytes.Equal(want, got) {
					t.Fatalf("replica %d mirror diverges from client", i)
				}
			}
			if got := want[32<<10]; got != 77 {
				t.Fatalf("lock word = %d after CAS, want 77", got)
			}
			g.Close()
		})
	}
}

// TestProtocolConformanceUnderFaults crashes a replica NIC mid-script with
// timeouts armed and requires every operation to resolve — success or a
// canonical op error — with no hangs, on every protocol.
func TestProtocolConformanceUnderFaults(t *testing.T) {
	for _, name := range protocol.Names() {
		t.Run(name, func(t *testing.T) {
			c := confCluster(t, 1, name, clusterCfg{
				opTimeout: 200 * sim.Microsecond, maxRetries: 1, retryBackoff: 50 * sim.Microsecond,
				faults: &rdma.FaultPlan{
					NICs: []rdma.NICFault{{Host: "server-1", At: sim.Time(0).Add(1 * sim.Millisecond), Down: true}},
				},
			})
			g := c.group.(protocol.Protocol)
			var ok, failed int
			drive(t, c, func(f *sim.Fiber) error {
				horizon := sim.Time(0).Add(3 * sim.Millisecond)
				for i := 0; f.Now() < horizon; i++ {
					err := g.Write(f, (i%16)*1024, 512, true)
					switch {
					case err == nil:
						ok++
					case protocol.IsOpError(err):
						failed++
						f.Sleep(100 * sim.Microsecond)
					default:
						return fmt.Errorf("op %d: non-op error %v", i, err)
					}
				}
				return nil
			})
			if ok == 0 {
				t.Fatal("no writes succeeded before the crash")
			}
			if fl := g.InFlight(); fl != 0 {
				t.Fatalf("%d ops unresolved after the script — timeout leak", fl)
			}
			// bcast-maj tolerates one dead member; every all-member
			// protocol must observe failures after the crash.
			if name != "bcast-maj" && failed == 0 {
				t.Fatalf("%s: crash produced no op failures (ok=%d)", name, ok)
			}
			if name == "bcast-maj" && failed != 0 {
				t.Fatalf("bcast-maj: %d writes failed, want quorum to absorb the crash", failed)
			}
			g.Close()
		})
	}
}

// TestProtocolClose checks teardown semantics on every protocol: in-flight
// operations fail with the canonical ErrClosed, later issues are rejected,
// and Close is idempotent.
func TestProtocolClose(t *testing.T) {
	for _, name := range protocol.Names() {
		t.Run(name, func(t *testing.T) {
			c := confCluster(t, 1, name, clusterCfg{})
			g := c.group.(protocol.Protocol)
			drive(t, c, func(f *sim.Fiber) error {
				sig, err := g.WriteAsync(0, 512, true)
				if err != nil {
					return fmt.Errorf("WriteAsync: %w", err)
				}
				g.Close()
				if !sig.Fired() {
					return errors.New("in-flight op signal not fired by Close")
				}
				if !errors.Is(sig.Err(), protocol.ErrClosed) {
					return fmt.Errorf("in-flight op failed with %v, want ErrClosed", sig.Err())
				}
				if err := g.Write(f, 0, 512, true); !errors.Is(err, protocol.ErrClosed) {
					return fmt.Errorf("post-Close write returned %v, want ErrClosed", err)
				}
				if _, err := g.WriteAsync(0, 512, true); !errors.Is(err, protocol.ErrClosed) {
					return fmt.Errorf("post-Close async write returned %v, want ErrClosed", err)
				}
				g.Close() // idempotent
				return nil
			})
			if fl := g.InFlight(); fl != 0 {
				t.Fatalf("%d ops in flight after Close", fl)
			}
		})
	}
}

// TestProtocolDeterminism runs the fault script twice per seed and
// requires identical virtual-time fingerprints: executed events, fabric
// messages/bytes/CQEs, and the op outcome tally.
func TestProtocolDeterminism(t *testing.T) {
	for _, name := range protocol.Names() {
		t.Run(name, func(t *testing.T) {
			for _, seed := range []uint64{1, 2, 42} {
				fp := func() string {
					c := confCluster(t, seed, name, clusterCfg{
						opTimeout: 200 * sim.Microsecond, maxRetries: 1, retryBackoff: 50 * sim.Microsecond,
						faults: &rdma.FaultPlan{
							NICs: []rdma.NICFault{{Host: "server-1", At: sim.Time(0).Add(1 * sim.Millisecond), Down: true}},
						},
					})
					g := c.group.(protocol.Protocol)
					var ok, failed int
					drive(t, c, func(f *sim.Fiber) error {
						horizon := sim.Time(0).Add(3 * sim.Millisecond)
						for i := 0; f.Now() < horizon; i++ {
							err := g.Write(f, (i%16)*1024, 512, true)
							switch {
							case err == nil:
								ok++
							case protocol.IsOpError(err):
								failed++
								f.Sleep(100 * sim.Microsecond)
							default:
								return fmt.Errorf("op %d: %v", i, err)
							}
						}
						return nil
					})
					msgs, wire := c.fab.Stats()
					s := fmt.Sprintf("events=%d msgs=%d wire=%d cqes=%d ok=%d failed=%d now=%d",
						c.k.Executed(), msgs, wire, c.fab.CQEs(), ok, failed, c.k.Now())
					g.Close()
					return s
				}
				a, b := fp(), fp()
				if a != b {
					t.Fatalf("seed %d not deterministic:\n  run1: %s\n  run2: %s", seed, a, b)
				}
			}
		})
	}
}
