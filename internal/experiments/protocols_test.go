package experiments

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"hyperloop/internal/protocol"
	"hyperloop/internal/rdma"
	"hyperloop/internal/sim"
)

// canonicalProtocols is every protocol this repository registers. The
// conformance suite below iterates protocol.Names() dynamically, so a
// newly registered protocol is tested automatically — this list only
// guards against one silently disappearing from the registry.
var canonicalProtocols = []string{"bcast", "bcast-maj", "chain", "fanout", "naive"}

func TestProtocolRegistryComplete(t *testing.T) {
	names := protocol.Names()
	if len(names) != len(canonicalProtocols) {
		t.Fatalf("registry has %v, conformance suite expects %v — update canonicalProtocols", names, canonicalProtocols)
	}
	for i, want := range canonicalProtocols {
		if names[i] != want {
			t.Fatalf("registry has %v, conformance suite expects %v", names, canonicalProtocols)
		}
		if protocol.Describe(want) == "" {
			t.Fatalf("protocol %s has no description", want)
		}
	}
	if _, err := protocol.Build("nope", protocol.Env{}, protocol.Params{}); err == nil {
		t.Fatal("unknown protocol accepted")
	}
}

// confCluster builds a 3-replica deployment running the named protocol,
// outside the experiment worker pool (nil arena = everything fresh).
func confCluster(t *testing.T, seed uint64, name string, cfg clusterCfg) *cluster {
	t.Helper()
	cfg.seed = seed
	cfg.replicas = 3
	cfg.mirror = 64 << 10
	cfg.cores = 16
	c, err := newProtocolCluster(cfg, name)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return c
}

// drive runs fn as the sole driver fiber and fails the test if the
// simulation deadlocks instead of reaching StopRun.
func drive(t *testing.T, c *cluster, fn func(f *sim.Fiber) error) {
	t.Helper()
	var fnErr error
	done := false
	c.k.Spawn("conformance-driver", func(f *sim.Fiber) {
		defer c.k.StopRun()
		fnErr = fn(f)
		done = true
	})
	if err := c.runToStop(60 * sim.Second); err != nil {
		t.Fatalf("run: %v", err)
	}
	if fnErr != nil {
		t.Fatal(fnErr)
	}
	if !done {
		t.Fatal("driver hung: simulation horizon elapsed before the script finished")
	}
}

// TestProtocolConformance runs one op script — replicated writes, group
// memcpy, group CAS, group flush — against every registered protocol and
// checks the outcome is the same on all of them: client and every replica
// mirror converge to identical bytes, CAS returns the original values,
// and the issued/completed counters balance.
func TestProtocolConformance(t *testing.T) {
	for _, name := range protocol.Names() {
		t.Run(name, func(t *testing.T) {
			c := confCluster(t, 1, name, clusterCfg{})
			g := c.group.(protocol.Protocol)
			payload := bytes.Repeat([]byte("conform!"), 64) // 512 B
			drive(t, c, func(f *sim.Fiber) error {
				// Replicated durable writes at distinct offsets.
				for i := 0; i < 8; i++ {
					off := i * 1024
					if err := g.WriteLocal(off, payload); err != nil {
						return fmt.Errorf("WriteLocal %d: %w", i, err)
					}
					if err := g.Write(f, off, len(payload), true); err != nil {
						return fmt.Errorf("Write %d: %w", i, err)
					}
				}
				// Group memcpy: replicate a copy of block 0 into fresh space.
				if err := g.Memcpy(f, 0, 16<<10, len(payload), true); err != nil {
					return fmt.Errorf("Memcpy: %w", err)
				}
				// Group CAS on an 8-byte lock word, all members executing.
				lockOff := 32 << 10
				if err := g.WriteLocal(lockOff, make([]byte, 8)); err != nil {
					return err
				}
				if err := g.Write(f, lockOff, 8, true); err != nil {
					return fmt.Errorf("lock seed write: %w", err)
				}
				orig, err := g.CAS(f, lockOff, 0, 77, []bool{true, true, true})
				if err != nil {
					return fmt.Errorf("CAS: %w", err)
				}
				for i, v := range orig {
					if v != 0 {
						return fmt.Errorf("CAS member %d saw original %d, want 0", i, v)
					}
				}
				// Group flush over everything written so far.
				if err := g.Flush(f, 0, 34<<10); err != nil {
					return fmt.Errorf("Flush: %w", err)
				}
				// Quorum protocols complete before the slowest member's
				// apply; give stragglers time to drain before comparing.
				f.Sleep(2 * sim.Millisecond)
				return nil
			})

			if fl := g.InFlight(); fl != 0 {
				t.Fatalf("%d ops still in flight after script", fl)
			}
			issued, completed := g.Stats()
			if issued != completed || issued == 0 {
				t.Fatalf("issued=%d completed=%d, want equal and nonzero", issued, completed)
			}
			// Every replica mirror must match the client's, byte for byte.
			want, err := g.ReadLocal(0, 34<<10)
			if err != nil {
				t.Fatal(err)
			}
			got := make([]byte, len(want))
			for i, nic := range c.members {
				if err := nic.Memory().Read(0, got); err != nil {
					t.Fatalf("replica %d read: %v", i, err)
				}
				if !bytes.Equal(want, got) {
					t.Fatalf("replica %d mirror diverges from client", i)
				}
			}
			if got := want[32<<10]; got != 77 {
				t.Fatalf("lock word = %d after CAS, want 77", got)
			}
			g.Close()
		})
	}
}

// TestProtocolConformanceUnderFaults crashes a replica NIC mid-script with
// timeouts armed and requires every operation to resolve — success or a
// canonical op error — with no hangs, on every protocol.
func TestProtocolConformanceUnderFaults(t *testing.T) {
	for _, name := range protocol.Names() {
		t.Run(name, func(t *testing.T) {
			c := confCluster(t, 1, name, clusterCfg{
				opTimeout: 200 * sim.Microsecond, maxRetries: 1, retryBackoff: 50 * sim.Microsecond,
				faults: &rdma.FaultPlan{
					NICs: []rdma.NICFault{{Host: "server-1", At: sim.Time(0).Add(1 * sim.Millisecond), Down: true}},
				},
			})
			g := c.group.(protocol.Protocol)
			var ok, failed int
			drive(t, c, func(f *sim.Fiber) error {
				horizon := sim.Time(0).Add(3 * sim.Millisecond)
				for i := 0; f.Now() < horizon; i++ {
					err := g.Write(f, (i%16)*1024, 512, true)
					switch {
					case err == nil:
						ok++
					case protocol.IsOpError(err):
						failed++
						f.Sleep(100 * sim.Microsecond)
					default:
						return fmt.Errorf("op %d: non-op error %v", i, err)
					}
				}
				return nil
			})
			if ok == 0 {
				t.Fatal("no writes succeeded before the crash")
			}
			if fl := g.InFlight(); fl != 0 {
				t.Fatalf("%d ops unresolved after the script — timeout leak", fl)
			}
			// bcast-maj tolerates one dead member; every all-member
			// protocol must observe failures after the crash.
			if name != "bcast-maj" && failed == 0 {
				t.Fatalf("%s: crash produced no op failures (ok=%d)", name, ok)
			}
			if name == "bcast-maj" && failed != 0 {
				t.Fatalf("bcast-maj: %d writes failed, want quorum to absorb the crash", failed)
			}
			g.Close()
		})
	}
}

// TestProtocolClose checks teardown semantics on every protocol: in-flight
// operations fail with the canonical ErrClosed, later issues are rejected,
// and Close is idempotent.
func TestProtocolClose(t *testing.T) {
	for _, name := range protocol.Names() {
		t.Run(name, func(t *testing.T) {
			c := confCluster(t, 1, name, clusterCfg{})
			g := c.group.(protocol.Protocol)
			drive(t, c, func(f *sim.Fiber) error {
				sig, err := g.WriteAsync(0, 512, true)
				if err != nil {
					return fmt.Errorf("WriteAsync: %w", err)
				}
				g.Close()
				if !sig.Fired() {
					return errors.New("in-flight op signal not fired by Close")
				}
				if !errors.Is(sig.Err(), protocol.ErrClosed) {
					return fmt.Errorf("in-flight op failed with %v, want ErrClosed", sig.Err())
				}
				if err := g.Write(f, 0, 512, true); !errors.Is(err, protocol.ErrClosed) {
					return fmt.Errorf("post-Close write returned %v, want ErrClosed", err)
				}
				if _, err := g.WriteAsync(0, 512, true); !errors.Is(err, protocol.ErrClosed) {
					return fmt.Errorf("post-Close async write returned %v, want ErrClosed", err)
				}
				g.Close() // idempotent
				return nil
			})
			if fl := g.InFlight(); fl != 0 {
				t.Fatalf("%d ops in flight after Close", fl)
			}
		})
	}
}

// TestProtocolDeterminism runs the fault script twice per seed and
// requires identical virtual-time fingerprints: executed events, fabric
// messages/bytes/CQEs, and the op outcome tally.
func TestProtocolDeterminism(t *testing.T) {
	for _, name := range protocol.Names() {
		t.Run(name, func(t *testing.T) {
			for _, seed := range []uint64{1, 2, 42} {
				fp := func() string {
					c := confCluster(t, seed, name, clusterCfg{
						opTimeout: 200 * sim.Microsecond, maxRetries: 1, retryBackoff: 50 * sim.Microsecond,
						faults: &rdma.FaultPlan{
							NICs: []rdma.NICFault{{Host: "server-1", At: sim.Time(0).Add(1 * sim.Millisecond), Down: true}},
						},
					})
					g := c.group.(protocol.Protocol)
					var ok, failed int
					drive(t, c, func(f *sim.Fiber) error {
						horizon := sim.Time(0).Add(3 * sim.Millisecond)
						for i := 0; f.Now() < horizon; i++ {
							err := g.Write(f, (i%16)*1024, 512, true)
							switch {
							case err == nil:
								ok++
							case protocol.IsOpError(err):
								failed++
								f.Sleep(100 * sim.Microsecond)
							default:
								return fmt.Errorf("op %d: %v", i, err)
							}
						}
						return nil
					})
					msgs, wire := c.fab.Stats()
					s := fmt.Sprintf("events=%d msgs=%d wire=%d cqes=%d ok=%d failed=%d now=%d",
						c.k.Executed(), msgs, wire, c.fab.CQEs(), ok, failed, c.k.Now())
					g.Close()
					return s
				}
				a, b := fp(), fp()
				if a != b {
					t.Fatalf("seed %d not deterministic:\n  run1: %s\n  run2: %s", seed, a, b)
				}
			}
		})
	}
}

// TestProtocolFlushUnderFault is the durability half of the conformance
// bar: with a member crashing and restarting mid-script, every gFLUSH the
// client saw acknowledged must survive a subsequent power loss of all
// member devices on at least AcksNeeded(name) of them. A flush that "acks"
// while the crash leaves fewer live copies than the protocol's contract
// promises is a durability-contract violation, not a timing artifact.
func TestProtocolFlushUnderFault(t *testing.T) {
	const (
		ops     = 60
		opSize  = 64
		downAt  = 500 * sim.Microsecond
		upAgain = 900 * sim.Microsecond
	)
	for _, name := range protocol.Names() {
		t.Run(name, func(t *testing.T) {
			c := confCluster(t, 1, name, clusterCfg{
				opTimeout: 100 * sim.Microsecond, maxRetries: 1, retryBackoff: 25 * sim.Microsecond,
				faults: &rdma.FaultPlan{
					NICs: []rdma.NICFault{
						{Host: "server-1", At: sim.Time(0).Add(downAt), Down: true},
						{Host: "server-1", At: sim.Time(0).Add(upAgain), Down: false},
					},
				},
			})
			g := c.group.(protocol.Protocol)
			payload := func(i int) []byte {
				b := make([]byte, opSize)
				for j := range b {
					b[j] = byte(i>>8) ^ byte(i+j) ^ 0xA5
				}
				return b
			}
			acked := make([]bool, ops)
			var failed int
			drive(t, c, func(f *sim.Fiber) error {
				for i := 0; i < ops; i++ {
					off := i * opSize
					if err := g.WriteLocal(off, payload(i)); err != nil {
						return err
					}
					err := g.Write(f, off, opSize, false)
					if err == nil {
						err = g.Flush(f, off, opSize)
					}
					switch {
					case err == nil:
						acked[i] = true
					case protocol.IsOpError(err):
						failed++
					default:
						return fmt.Errorf("op %d: %w", i, err)
					}
					// Pace the script across the whole crash/restart window
					// so some ops land while the member is down.
					f.Sleep(20 * sim.Microsecond)
				}
				return nil
			})
			if fl := g.InFlight(); fl != 0 {
				t.Fatalf("%d ops unresolved after the script", fl)
			}
			g.Close()
			for _, m := range c.members {
				m.Memory().Crash()
			}
			need := protocol.AcksNeeded(name, len(c.members))
			ackedN := 0
			buf := make([]byte, opSize)
			for i := 0; i < ops; i++ {
				if !acked[i] {
					continue
				}
				ackedN++
				copies := 0
				for _, m := range c.members {
					if err := m.Memory().ReadDurable(i*opSize, buf); err != nil {
						t.Fatal(err)
					}
					if bytes.Equal(buf, payload(i)) {
						copies++
					}
				}
				if copies < need {
					t.Fatalf("acked flush %d durable on %d members, contract promises %d", i, copies, need)
				}
			}
			if ackedN == 0 {
				t.Fatal("no flush was ever acknowledged; durability contract untested")
			}
			if name != "bcast-maj" && failed == 0 {
				t.Fatalf("%s: outage window produced no failures (acked=%d)", name, ackedN)
			}
		})
	}
}

// TestProtocolCASNeverRetriedUnderTimeout pins the non-idempotence rule on
// every protocol: gCAS is never re-issued by the client library, even when
// it times out against a crashed member — a blind retry could observe its
// own first attempt's swap and report a false conflict. The write path's
// retry counter is exercised first so a silently dead counter cannot pass
// the test.
func TestProtocolCASNeverRetriedUnderTimeout(t *testing.T) {
	for _, name := range protocol.Names() {
		t.Run(name, func(t *testing.T) {
			c := confCluster(t, 1, name, clusterCfg{
				opTimeout: 100 * sim.Microsecond, maxRetries: 2, retryBackoff: 25 * sim.Microsecond,
				faults: &rdma.FaultPlan{
					NICs: []rdma.NICFault{{Host: "server-1", At: sim.Time(0).Add(300 * sim.Microsecond), Down: true}},
				},
			})
			g := c.group.(protocol.Protocol)
			exec := []bool{true, true, true}
			drive(t, c, func(f *sim.Fiber) error {
				// Seed the lock word while the group is healthy.
				if err := g.WriteLocal(0, make([]byte, 8)); err != nil {
					return err
				}
				if err := g.Write(f, 0, 8, true); err != nil {
					return fmt.Errorf("seed write: %w", err)
				}
				// Drive writes through the crash until the retry machinery
				// has provably fired (quorum protocols absorb the crash and
				// never retry — that is their contract, move on).
				deadline := f.Now().Add(2 * sim.Millisecond)
				for g.Retried() == 0 && name != "bcast-maj" {
					if f.Now() > deadline {
						return fmt.Errorf("no write retry observed by %v", f.Now())
					}
					err := g.Write(f, 1024, 512, true)
					if err != nil && !protocol.IsOpError(err) {
						return err
					}
					f.Sleep(50 * sim.Microsecond)
				}
				base := g.Retried()
				// CAS into the outage: each attempt must resolve — success
				// or op error — without ever bumping the retry counter.
				for i := 0; i < 8; i++ {
					_, err := g.CAS(f, 0, uint64(i), uint64(i+1), exec)
					if err != nil && !protocol.IsOpError(err) {
						return fmt.Errorf("CAS %d: %w", i, err)
					}
					if got := g.Retried(); got != base {
						return fmt.Errorf("CAS %d: retry counter moved %d -> %d; gCAS must never be re-issued", i, base, got)
					}
					f.Sleep(50 * sim.Microsecond)
				}
				return nil
			})
			if fl := g.InFlight(); fl != 0 {
				t.Fatalf("%d ops unresolved after the script", fl)
			}
			g.Close()
		})
	}
}
