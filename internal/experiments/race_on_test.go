//go:build race

package experiments

// raceEnabled lets heavyweight determinism goldens shrink their matrix
// under the race detector, whose ~10× slowdown would otherwise push the
// package past CI's test timeout. Full-matrix byte-identity is still
// covered by the non-race run of the same tests.
const raceEnabled = true
