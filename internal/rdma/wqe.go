// Package rdma models RDMA-capable NICs at the verbs level: queue pairs
// whose send queues are rings of binary work-queue entries (WQEs) living in
// registered host memory, completion queues, memory regions with remote-key
// protection, and the full opcode set HyperLoop needs — including the
// CORE-Direct-style WAIT verb and deferred WQE ownership that make
// group-based NIC offloading possible.
//
// Because send-queue WQEs are real bytes inside a registered memory region,
// a remote peer can patch the memory descriptors of pre-posted WQEs with
// ordinary RDMA operations — exactly the "remote work request manipulation"
// mechanism of HyperLoop §4.1.
package rdma

import (
	"encoding/binary"
	"fmt"
)

// Opcode identifies a WQE operation.
type Opcode uint8

// WQE opcodes. OpNop deliberately completes without side effects so a gCAS
// participant can be skipped by rewriting its CAS opcode (selective
// execution, §4.2).
const (
	OpNop Opcode = iota + 1
	OpSend
	OpRecv // only used in completion reporting; recv WQEs are posted via PostRecv
	OpWrite
	OpWriteImm
	OpRead
	OpCAS
	OpWait
	OpMemcpy
	OpFlush
)

// String returns the opcode mnemonic.
func (o Opcode) String() string {
	switch o {
	case OpNop:
		return "NOP"
	case OpSend:
		return "SEND"
	case OpRecv:
		return "RECV"
	case OpWrite:
		return "WRITE"
	case OpWriteImm:
		return "WRITE_WITH_IMM"
	case OpRead:
		return "READ"
	case OpCAS:
		return "CAS"
	case OpWait:
		return "WAIT"
	case OpMemcpy:
		return "MEMCPY"
	case OpFlush:
		return "FLUSH"
	default:
		return fmt.Sprintf("Opcode(%d)", uint8(o))
	}
}

// WQE flags.
const (
	// FlagOwned hands the WQE to the NIC. A WQE posted without it stalls
	// the send queue until ownership is granted — either by a local
	// doorbell or by a WAIT WQE enabling it (HyperLoop's modified-driver
	// behaviour).
	FlagOwned uint8 = 1 << iota
	// FlagSignaled requests a completion-queue entry when the WQE
	// finishes.
	FlagSignaled
	// FlagWaitAbs makes an OpWait fire when the target CQ's cumulative
	// completion count reaches the WQE's Compare field, without consuming
	// completions. Several send queues can gate on the same CQ this way —
	// the fan-out topology needs it (one local completion set triggers
	// forwarding chains to every backup).
	FlagWaitAbs
)

// WQESize is the fixed on-ring footprint of one work-queue entry.
const WQESize = 64

// Byte offsets of WQE fields within a slot. Remote work-request
// manipulation patches these with RDMA writes or recv scatter entries.
const (
	wqeOffOpcode  = 0
	wqeOffFlags   = 1
	wqeOffImm     = 4  // imm data / WAIT completions-to-consume
	wqeOffLocal   = 8  // local address (source for SEND/WRITE/MEMCPY, dest for READ/CAS result)
	wqeOffLen     = 16 // byte length
	wqeOffRemote  = 24 // remote address (dest for WRITE/MEMCPY-dst/CAS target)
	wqeOffCompare = 32 // CAS compare value
	wqeOffSwap    = 40 // CAS swap value
	wqeOffAux1    = 48 // rkey, or CQN for WAIT
	wqeOffAux2    = 52 // WAIT: number of following WQEs to enable
	wqeOffWRID    = 56
	wqeDescOff    = wqeOffOpcode
	wqeDescLen    = 56 // opcode..aux2: everything a remote peer may patch
	wqeCASDescOff = wqeOffLocal
	wqeCASDescLen = 48 - wqeOffLocal // local..swap for CAS patching
)

// WQE is the decoded form of a work-queue entry.
type WQE struct {
	Opcode  Opcode
	Flags   uint8
	Imm     uint32 // immediate data; for OpWait: completions to consume
	Local   uint64 // local memory address (device offset)
	Len     uint64
	Remote  uint64 // remote memory address
	Compare uint64
	Swap    uint64
	Aux1    uint32 // rkey for remote ops; CQN for OpWait
	Aux2    uint32 // OpWait: count of subsequent WQEs to enable
	WRID    uint64
}

// Encode serializes the WQE into a WQESize-byte slot.
func (w *WQE) Encode(buf []byte) error {
	if len(buf) < WQESize {
		return fmt.Errorf("rdma: wqe buffer too small (%d bytes)", len(buf))
	}
	buf[wqeOffOpcode] = byte(w.Opcode)
	buf[wqeOffFlags] = w.Flags
	buf[2], buf[3] = 0, 0
	binary.LittleEndian.PutUint32(buf[wqeOffImm:], w.Imm)
	binary.LittleEndian.PutUint64(buf[wqeOffLocal:], w.Local)
	binary.LittleEndian.PutUint64(buf[wqeOffLen:], w.Len)
	binary.LittleEndian.PutUint64(buf[wqeOffRemote:], w.Remote)
	binary.LittleEndian.PutUint64(buf[wqeOffCompare:], w.Compare)
	binary.LittleEndian.PutUint64(buf[wqeOffSwap:], w.Swap)
	binary.LittleEndian.PutUint32(buf[wqeOffAux1:], w.Aux1)
	binary.LittleEndian.PutUint32(buf[wqeOffAux2:], w.Aux2)
	binary.LittleEndian.PutUint64(buf[wqeOffWRID:], w.WRID)
	return nil
}

// DecodeWQE parses a WQESize-byte slot.
func DecodeWQE(buf []byte) (WQE, error) {
	if len(buf) < WQESize {
		return WQE{}, fmt.Errorf("rdma: wqe buffer too small (%d bytes)", len(buf))
	}
	return WQE{
		Opcode:  Opcode(buf[wqeOffOpcode]),
		Flags:   buf[wqeOffFlags],
		Imm:     binary.LittleEndian.Uint32(buf[wqeOffImm:]),
		Local:   binary.LittleEndian.Uint64(buf[wqeOffLocal:]),
		Len:     binary.LittleEndian.Uint64(buf[wqeOffLen:]),
		Remote:  binary.LittleEndian.Uint64(buf[wqeOffRemote:]),
		Compare: binary.LittleEndian.Uint64(buf[wqeOffCompare:]),
		Swap:    binary.LittleEndian.Uint64(buf[wqeOffSwap:]),
		Aux1:    binary.LittleEndian.Uint32(buf[wqeOffAux1:]),
		Aux2:    binary.LittleEndian.Uint32(buf[wqeOffAux2:]),
		WRID:    binary.LittleEndian.Uint64(buf[wqeOffWRID:]),
	}, nil
}

// SlotAddr returns the host-memory address of slot seq in a ring that
// starts at ringOff with ringSlots slots. Sequence numbers map onto the
// ring modulo its size, so both ends of a HyperLoop group can compute the
// same slot address for operation seq.
func SlotAddr(ringOff uint64, ringSlots int, seq uint64) uint64 {
	return ringOff + (seq%uint64(ringSlots))*WQESize
}

// DescAddr returns the host-memory address of the patchable descriptor
// portion (opcode through aux2) of slot seq.
func DescAddr(ringOff uint64, ringSlots int, seq uint64) uint64 {
	return SlotAddr(ringOff, ringSlots, seq) + wqeDescOff
}

// DescLen is the length in bytes of the patchable descriptor portion of a
// WQE slot.
const DescLen = wqeDescLen

// EncodeDesc serializes only the patchable descriptor fields (opcode
// through aux2) of w into buf; the flags byte keeps FlagOwned clear unless
// set in w, matching how a remote patch re-arms a deferred WQE.
func (w *WQE) EncodeDesc(buf []byte) error {
	if len(buf) < wqeDescLen {
		return fmt.Errorf("rdma: desc buffer too small (%d bytes)", len(buf))
	}
	var full [WQESize]byte
	if err := w.Encode(full[:]); err != nil {
		return err
	}
	copy(buf, full[wqeDescOff:wqeDescOff+wqeDescLen])
	return nil
}
