package rdma

import "hyperloop/internal/sim"

// NICFault schedules a NIC availability change at a virtual instant:
// Down=true crashes the host's NIC (outgoing traffic is lost, inbound
// deliveries are dropped, the WQE engine stalls), Down=false restarts it
// (surviving send rings are re-kicked in QPN order so the restart is
// deterministic).
type NICFault struct {
	Host string
	At   sim.Time
	Down bool
}

// LinkFault degrades directed wire traffic from one host to another. An
// empty From or To matches any host, so a single rule can cut a node off
// from everyone. Probabilistic decisions (DropProb, DupProb) draw from the
// fault plan's own RNG stream — forked from the fabric RNG at install time
// — so a faulty run is seed-deterministic and byte-identical whether the
// experiment executes serially or overlapped, without perturbing the
// jitter stream that fault-free traffic consumes.
type LinkFault struct {
	From string // sending host ("" = any)
	To   string // receiving host ("" = any)

	// DropProb is the per-message probability the wire loses the message.
	// Transmit-side costs (serialization, message counters) are still paid.
	DropProb float64
	// DupProb is the per-delivered-message probability a second copy
	// arrives. The receiver's wire-sequence dedup discards the copy, as RC
	// transport would, so duplicates stress timing without double-applying.
	DupProb float64
	// ExtraDelay is added to every surviving message's latency before
	// jitter is applied.
	ExtraDelay sim.Duration
	// [PartitionFrom, PartitionUntil) is a window during which every
	// message on the link is lost. A zero window means no partition.
	PartitionFrom  sim.Time
	PartitionUntil sim.Time
}

// partitioned reports whether the link is inside its partition window.
func (lf *LinkFault) partitioned(now sim.Time) bool {
	return lf.PartitionUntil > lf.PartitionFrom &&
		now >= lf.PartitionFrom && now < lf.PartitionUntil
}

// FaultPlan is a deterministic fault-injection schedule for one fabric.
// Install it once, before traffic flows, with Fabric.InstallFaultPlan;
// Fabric.Reset clears it, so pooled fabrics never leak faults into the
// next trial. The first Links rule matching a (from, to) pair wins, so
// order specific rules before wildcards.
type FaultPlan struct {
	NICs  []NICFault
	Links []LinkFault
}

// FaultStats counts fault-plan effects since the last Reset. All three are
// virtual-time deterministic and usable as strict regression counters.
type FaultStats struct {
	// Drops counts messages lost for any reason: wire drop, partition
	// window, a sender that was down, or a receiver that died in flight.
	Drops int64
	// Dups counts extra copies injected by DupProb.
	Dups int64
	// DupsSuppressed counts duplicate deliveries discarded by the
	// receiver's wire-sequence dedup.
	DupsSuppressed int64
}

// InstallFaultPlan arms the plan on the fabric: NIC crash/restart events
// are scheduled on the kernel at their virtual instants and link rules are
// consulted on every subsequent wire message. The plan's RNG is forked
// from the fabric RNG here, so two runs with the same seed and the same
// plan replay the same faults; a run with no plan installed draws exactly
// the RNG sequence it always did.
func (f *Fabric) InstallFaultPlan(p *FaultPlan) {
	if p == nil {
		return
	}
	f.faultLinks = append(f.faultLinks[:0], p.Links...)
	f.faultRNG = f.rng.Fork()
	for _, nf := range p.NICs {
		nf := nf
		f.k.AtFunc(nf.At, func() {
			if n := f.nics[nf.Host]; n != nil {
				n.SetDown(nf.Down)
			}
		}, nil)
	}
}

// linkFault returns the first installed link rule matching the directed
// (from, to) pair, or nil.
func (f *Fabric) linkFault(from, to string) *LinkFault {
	for i := range f.faultLinks {
		lf := &f.faultLinks[i]
		if (lf.From == "" || lf.From == from) && (lf.To == "" || lf.To == to) {
			return lf
		}
	}
	return nil
}

// FaultStats reports fault-plan effect counts since creation or the last
// Reset.
func (f *Fabric) FaultStats() FaultStats { return f.faultStats }
