package rdma

import (
	"errors"
	"fmt"
	"sort"

	"hyperloop/internal/sim"
)

// ErrBadFaultPlan is the base error for every FaultPlan validation
// failure; match with errors.Is.
var ErrBadFaultPlan = errors.New("rdma: bad fault plan")

// NICFault schedules a NIC availability change at a virtual instant:
// Down=true crashes the host's NIC (outgoing traffic is lost, inbound
// deliveries are dropped, the WQE engine stalls), Down=false restarts it
// (surviving send rings are re-kicked in QPN order so the restart is
// deterministic).
type NICFault struct {
	Host string
	At   sim.Time
	Down bool
}

// LinkFault degrades directed wire traffic from one host to another. An
// empty From or To matches any host, so a single rule can cut a node off
// from everyone. Probabilistic decisions (DropProb, DupProb) draw from the
// fault plan's own RNG stream — forked from the fabric RNG at install time
// — so a faulty run is seed-deterministic and byte-identical whether the
// experiment executes serially or overlapped, without perturbing the
// jitter stream that fault-free traffic consumes.
type LinkFault struct {
	From string // sending host ("" = any)
	To   string // receiving host ("" = any)

	// DropProb is the per-message probability the wire loses the message.
	// Transmit-side costs (serialization, message counters) are still paid.
	DropProb float64
	// DupProb is the per-delivered-message probability a second copy
	// arrives. The receiver's wire-sequence dedup discards the copy, as RC
	// transport would, so duplicates stress timing without double-applying.
	DupProb float64
	// ExtraDelay is added to every surviving message's latency before
	// jitter is applied.
	ExtraDelay sim.Duration
	// [PartitionFrom, PartitionUntil) is a window during which every
	// message on the link is lost. A zero window means no partition.
	PartitionFrom  sim.Time
	PartitionUntil sim.Time
}

// partitioned reports whether the link is inside its partition window.
func (lf *LinkFault) partitioned(now sim.Time) bool {
	return lf.PartitionUntil > lf.PartitionFrom &&
		now >= lf.PartitionFrom && now < lf.PartitionUntil
}

// FaultPlan is a deterministic fault-injection schedule for one fabric.
// Install it once, before traffic flows, with Fabric.InstallFaultPlan;
// Fabric.Reset clears it, so pooled fabrics never leak faults into the
// next trial. The first Links rule matching a (from, to) pair wins, so
// order specific rules before wildcards.
type FaultPlan struct {
	NICs  []NICFault
	Links []LinkFault
}

// FaultStats counts fault-plan effects since the last Reset. All three are
// virtual-time deterministic and usable as strict regression counters.
type FaultStats struct {
	// Drops counts messages lost for any reason: wire drop, partition
	// window, a sender that was down, or a receiver that died in flight.
	Drops int64
	// Dups counts extra copies injected by DupProb.
	Dups int64
	// DupsSuppressed counts duplicate deliveries discarded by the
	// receiver's wire-sequence dedup.
	DupsSuppressed int64
}

// Validate checks the plan against the contract InstallFaultPlan assumes.
// It rejects, with an error wrapping ErrBadFaultPlan:
//
//   - link probabilities outside [0, 1], negative extra delay, and
//     malformed partition windows (negative bounds, or an inverted window
//     with PartitionUntil < PartitionFrom; an empty window — equal bounds
//     or both zero — means "no partition" and is fine);
//   - NIC faults with an empty host or a negative instant;
//   - overlapping crash/restart schedules for one host: two events at the
//     same instant (their order would be ambiguous), a schedule that does
//     not begin with a crash, or consecutive events that do not alternate
//     crash → restart → crash (a crash of an already-down NIC, or a
//     restart of one never crashed, is a plan-authoring bug, not a fault).
//
// Validate never mutates the plan. A nil plan is valid (it installs
// nothing).
func (p *FaultPlan) Validate() error {
	if p == nil {
		return nil
	}
	for i, lf := range p.Links {
		bad := func(format string, a ...any) error {
			return fmt.Errorf("%w: link %d (%q->%q): %s", ErrBadFaultPlan, i, lf.From, lf.To, fmt.Sprintf(format, a...))
		}
		if lf.DropProb < 0 || lf.DropProb > 1 {
			return bad("drop probability %v outside [0,1]", lf.DropProb)
		}
		if lf.DupProb < 0 || lf.DupProb > 1 {
			return bad("dup probability %v outside [0,1]", lf.DupProb)
		}
		if lf.ExtraDelay < 0 {
			return bad("negative extra delay %v", lf.ExtraDelay)
		}
		if lf.PartitionFrom < 0 || lf.PartitionUntil < 0 {
			return bad("negative partition bound [%v, %v)", lf.PartitionFrom, lf.PartitionUntil)
		}
		if lf.PartitionUntil < lf.PartitionFrom {
			return bad("inverted partition window [%v, %v)", lf.PartitionFrom, lf.PartitionUntil)
		}
	}
	byHost := make(map[string][]NICFault)
	for i, nf := range p.NICs {
		if nf.Host == "" {
			return fmt.Errorf("%w: NIC fault %d: empty host", ErrBadFaultPlan, i)
		}
		if nf.At < 0 {
			return fmt.Errorf("%w: NIC fault %d (%s): negative instant %v", ErrBadFaultPlan, i, nf.Host, nf.At)
		}
		byHost[nf.Host] = append(byHost[nf.Host], nf)
	}
	hosts := make([]string, 0, len(byHost))
	for h := range byHost {
		hosts = append(hosts, h)
	}
	sort.Strings(hosts)
	for _, h := range hosts {
		evs := byHost[h]
		sort.SliceStable(evs, func(a, b int) bool { return evs[a].At < evs[b].At })
		for i, nf := range evs {
			if i > 0 && evs[i-1].At == nf.At {
				return fmt.Errorf("%w: NIC %s: two events at the same instant %v", ErrBadFaultPlan, h, nf.At)
			}
			wantDown := i%2 == 0 // crash, restart, crash, …
			if nf.Down != wantDown {
				if wantDown {
					return fmt.Errorf("%w: NIC %s: restart at %v without a preceding crash", ErrBadFaultPlan, h, nf.At)
				}
				return fmt.Errorf("%w: NIC %s: crash at %v while already down", ErrBadFaultPlan, h, nf.At)
			}
		}
	}
	return nil
}

// InstallFaultPlan validates the plan and arms it on the fabric: NIC
// crash/restart events are scheduled on the kernel at their virtual
// instants and link rules are consulted on every subsequent wire message.
// The plan's RNG is forked from the fabric RNG here, so two runs with the
// same seed and the same plan replay the same faults; a run with no plan
// installed draws exactly the RNG sequence it always did. The scheduled
// NIC events belong to the fabric: Fabric.Reset stops any that have not
// fired, so a pooled fabric can never crash a later trial's NIC.
func (f *Fabric) InstallFaultPlan(p *FaultPlan) error {
	if p == nil {
		return nil
	}
	if err := p.Validate(); err != nil {
		return err
	}
	f.faultLinks = append(f.faultLinks[:0], p.Links...)
	f.faultRNG = f.rng.Fork()
	for _, nf := range p.NICs {
		nf := nf
		t := &sim.Timer{}
		f.k.AtFunc(nf.At, func() {
			if n := f.nics[nf.Host]; n != nil {
				n.SetDown(nf.Down)
			}
		}, t)
		f.faultTimers = append(f.faultTimers, t)
	}
	return nil
}

// linkFault returns the first installed link rule matching the directed
// (from, to) pair, or nil.
func (f *Fabric) linkFault(from, to string) *LinkFault {
	for i := range f.faultLinks {
		lf := &f.faultLinks[i]
		if (lf.From == "" || lf.From == from) && (lf.To == "" || lf.To == to) {
			return lf
		}
	}
	return nil
}

// FaultStats reports fault-plan effect counts since creation or the last
// Reset.
func (f *Fabric) FaultStats() FaultStats { return f.faultStats }
