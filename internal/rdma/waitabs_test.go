package rdma

import (
	"testing"

	"hyperloop/internal/nvm"
	"hyperloop/internal/sim"
)

// TestWaitAbsoluteThreshold verifies the absolute-threshold WAIT mode:
// several queues gate on the same CQ without consuming completions.
func TestWaitAbsoluteThreshold(t *testing.T) {
	p := newTestPair(t)
	// Two independent WAIT_ABS gates on qa's send CQ, each followed by a
	// NOP; both must fire once two signaled NOPs complete.
	nb := p.nb
	gate1, err := nb.CreateQP(QPConfig{SendRingOff: 2048, SendSlots: 4, SendCQ: nb.CreateCQ(), RecvCQ: nb.CreateCQ()})
	if err != nil {
		t.Fatal(err)
	}
	gate2, err := nb.CreateQP(QPConfig{SendRingOff: 2048 + 4*WQESize, SendSlots: 4, SendCQ: nb.CreateCQ(), RecvCQ: nb.CreateCQ()})
	if err != nil {
		t.Fatal(err)
	}
	src, err := nb.CreateQP(QPConfig{SendRingOff: 2048 + 8*WQESize, SendSlots: 4, SendCQ: nb.CreateCQ(), RecvCQ: nb.CreateCQ()})
	if err != nil {
		t.Fatal(err)
	}
	srcCQ := src.SendCQ()
	for _, gate := range []*QP{gate1, gate2} {
		if _, err := gate.PostSend(WQE{
			Opcode: OpWait, Flags: FlagWaitAbs, Compare: 2, Aux1: srcCQ.CQN(), WRID: 1,
		}); err != nil {
			t.Fatal(err)
		}
		if _, err := gate.PostSend(WQE{Opcode: OpNop, Flags: FlagSignaled, WRID: 2}); err != nil {
			t.Fatal(err)
		}
	}
	// One completion: gates must not fire.
	if _, err := src.PostSend(WQE{Opcode: OpNop, Flags: FlagSignaled}); err != nil {
		t.Fatal(err)
	}
	p.run(t)
	if gate1.SendCQ().Total() != 0 || gate2.SendCQ().Total() != 0 {
		t.Fatal("WAIT_ABS fired below threshold")
	}
	// Second completion: both gates fire.
	if _, err := src.PostSend(WQE{Opcode: OpNop, Flags: FlagSignaled}); err != nil {
		t.Fatal(err)
	}
	p.run(t)
	if gate1.SendCQ().Total() != 1 || gate2.SendCQ().Total() != 1 {
		t.Fatalf("WAIT_ABS gates = %d, %d completions, want 1 each",
			gate1.SendCQ().Total(), gate2.SendCQ().Total())
	}
	// Absolute waits must not consume: a consuming WAIT after them still
	// sees both completions.
	if srcCQ.Total() != 2 {
		t.Fatalf("source CQ total = %d", srcCQ.Total())
	}
}

// TestRandomProgramsNeverCorrupt runs randomized WQE programs and checks
// the engine neither panics nor writes outside registered windows, and
// every signaled op eventually completes or the queue stalls cleanly.
func TestRandomProgramsNeverCorrupt(t *testing.T) {
	for seed := uint64(1); seed <= 30; seed++ {
		k := sim.NewKernel(seed)
		rng := sim.NewRNG(seed * 977)
		fab := NewFabric(k, DefaultConfig())
		da := nvm.NewDevice("a", memSize)
		db := nvm.NewDevice("b", memSize)
		na, _ := fab.AddNIC("a", da)
		nb, _ := fab.AddNIC("b", db)
		// Register only a window of b; accesses outside must error, never
		// write.
		const winLo, winLen = 8192, 4096
		mrb, _ := nb.RegisterMR(winLo, winLen, AccessRemoteWrite|AccessRemoteRead|AccessRemoteAtomic)
		qa, _ := na.CreateQP(QPConfig{SendRingOff: 0, SendSlots: 64, SendCQ: na.CreateCQ(), RecvCQ: na.CreateCQ()})
		qb, _ := nb.CreateQP(QPConfig{SendRingOff: 0, SendSlots: 64, SendCQ: nb.CreateCQ(), RecvCQ: nb.CreateCQ()})
		qa.Connect(qb)
		// Enough receives that SENDs never block the inbox on RNR (a
		// legitimate stall, but not what this test probes).
		for i := 0; i < 48; i++ {
			qb.PostRecv(RecvWQE{SGEs: []SGE{{Addr: winLo, Len: 256}}})
		}

		posted := 0
		for i := 0; i < 40; i++ {
			op := []Opcode{OpWrite, OpRead, OpSend, OpCAS, OpNop, OpFlush}[rng.Intn(6)]
			addr := uint64(rng.Intn(memSize))
			length := uint64(rng.Intn(512))
			w := WQE{
				Opcode: op, Flags: FlagSignaled, WRID: uint64(i),
				Local: uint64(4096 + rng.Intn(1024)), Len: length,
				Remote: addr, Aux1: mrb.RKey,
			}
			if op == OpCAS {
				w.Len = 8
			}
			if _, err := qa.PostSend(w); err != nil {
				break
			}
			posted++
		}
		if err := k.RunUntil(k.Now().Add(10 * sim.Second)); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Every posted signaled op must have completed (success or error).
		if got := qa.SendCQ().Total(); got != int64(posted) {
			t.Fatalf("seed %d: %d/%d completions", seed, got, posted)
		}
		// Nothing outside the registered window on b may be dirty or
		// nonzero (except the recv scatter area inside the window).
		img := make([]byte, memSize)
		_ = db.Read(0, img)
		for off, v := range img {
			if v != 0 && (off < winLo || off >= winLo+winLen) {
				t.Fatalf("seed %d: byte outside MR window written at %d", seed, off)
			}
		}
	}
}

// TestCQHandlerAndWaitCoexist checks interrupt handlers and WAIT
// subscriptions on the same CQ both fire.
func TestCQHandlerAndWaitCoexist(t *testing.T) {
	p := newTestPair(t)
	var handlerFired int
	p.qa.SendCQ().SetHandler(func(CQE) { handlerFired++ })
	waiter, err := p.na.CreateQP(QPConfig{SendRingOff: 2048, SendSlots: 4, SendCQ: p.na.CreateCQ(), RecvCQ: p.na.CreateCQ()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := waiter.PostSend(WQE{Opcode: OpWait, Imm: 1, Aux1: p.qa.SendCQ().CQN(), Aux2: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := waiter.PostSendDeferred(WQE{Opcode: OpNop, Flags: FlagSignaled, WRID: 99}); err != nil {
		t.Fatal(err)
	}
	waiter.Doorbell()
	if _, err := p.qa.PostSend(WQE{Opcode: OpNop, Flags: FlagSignaled}); err != nil {
		t.Fatal(err)
	}
	p.run(t)
	if handlerFired != 1 {
		t.Fatalf("handler fired %d times", handlerFired)
	}
	if waiter.SendCQ().Total() != 1 {
		t.Fatal("WAIT-gated NOP did not fire alongside the handler")
	}
}
