package rdma

import (
	"errors"
	"math"
	"testing"

	"hyperloop/internal/nvm"
	"hyperloop/internal/sim"
)

// mustInstall installs a plan the test believes is valid.
func mustInstall(t *testing.T, fab *Fabric, p *FaultPlan) {
	t.Helper()
	if err := fab.InstallFaultPlan(p); err != nil {
		t.Fatalf("InstallFaultPlan: %v", err)
	}
}

func TestFaultPlanValidate(t *testing.T) {
	us := sim.Microsecond
	valid := []*FaultPlan{
		nil,
		{},
		{Links: []LinkFault{{DropProb: 0.5, DupProb: 1, ExtraDelay: 2 * us}}},
		{Links: []LinkFault{{PartitionFrom: sim.Time(10 * us), PartitionUntil: sim.Time(20 * us)}}},
		{Links: []LinkFault{{PartitionFrom: sim.Time(10 * us), PartitionUntil: sim.Time(10 * us)}}}, // empty = none
		{NICs: []NICFault{{Host: "b", At: sim.Time(5 * us), Down: true}}},
		{NICs: []NICFault{
			{Host: "b", At: sim.Time(5 * us), Down: true},
			{Host: "b", At: sim.Time(9 * us), Down: false},
			{Host: "b", At: sim.Time(12 * us), Down: true},
			{Host: "c", At: sim.Time(5 * us), Down: true}, // same instant, other host: fine
		}},
	}
	for i, p := range valid {
		if err := p.Validate(); err != nil {
			t.Errorf("valid plan %d rejected: %v", i, err)
		}
	}
	invalid := map[string]*FaultPlan{
		"drop>1":             {Links: []LinkFault{{DropProb: 1.5}}},
		"drop<0":             {Links: []LinkFault{{DropProb: -0.1}}},
		"dup>1":              {Links: []LinkFault{{DupProb: 2}}},
		"negative delay":     {Links: []LinkFault{{ExtraDelay: -us}}},
		"inverted partition": {Links: []LinkFault{{PartitionFrom: sim.Time(20 * us), PartitionUntil: sim.Time(10 * us)}}},
		"negative partition": {Links: []LinkFault{{PartitionFrom: sim.Time(-us), PartitionUntil: sim.Time(10 * us)}}},
		"empty host":         {NICs: []NICFault{{At: sim.Time(us), Down: true}}},
		"negative instant":   {NICs: []NICFault{{Host: "b", At: sim.Time(-us), Down: true}}},
		"same instant": {NICs: []NICFault{
			{Host: "b", At: sim.Time(us), Down: true},
			{Host: "b", At: sim.Time(us), Down: false},
		}},
		"restart before crash": {NICs: []NICFault{{Host: "b", At: sim.Time(us), Down: false}}},
		"double crash": {NICs: []NICFault{
			{Host: "b", At: sim.Time(us), Down: true},
			{Host: "b", At: sim.Time(2 * us), Down: true},
		}},
	}
	for name, p := range invalid {
		err := p.Validate()
		if err == nil {
			t.Errorf("%s: accepted", name)
			continue
		}
		if !errors.Is(err, ErrBadFaultPlan) {
			t.Errorf("%s: error %v does not wrap ErrBadFaultPlan", name, err)
		}
	}
	// Validate must not reorder the caller's plan.
	p := &FaultPlan{NICs: []NICFault{
		{Host: "b", At: sim.Time(9 * us), Down: true},
		{Host: "a", At: sim.Time(5 * us), Down: true},
	}}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.NICs[0].Host != "b" || p.NICs[1].Host != "a" {
		t.Fatal("Validate reordered the plan")
	}
	// Install rejects what Validate rejects.
	fab := NewFabric(sim.NewKernel(1), DefaultConfig())
	if err := fab.InstallFaultPlan(invalid["double crash"]); !errors.Is(err, ErrBadFaultPlan) {
		t.Fatalf("InstallFaultPlan accepted an invalid plan (err=%v)", err)
	}
}

// TestResetStopsPendingFaultTimers is the stale-fault-state regression
// test: a fabric whose trial ended before its scheduled NIC crash fired
// must not crash a NIC of whatever runs next. Before fault timers were
// tracked, the orphaned kernel event looked the host up by name at fire
// time and downed the *recycled* NIC the next trial re-added under the
// same name.
func TestResetStopsPendingFaultTimers(t *testing.T) {
	k := sim.NewKernel(1)
	fab := NewFabric(k, DefaultConfig())
	if _, err := fab.AddNIC("a", nvm.NewDevice("a", memSize)); err != nil {
		t.Fatal(err)
	}
	mustInstall(t, fab, &FaultPlan{NICs: []NICFault{
		{Host: "a", At: sim.Time(100 * sim.Microsecond), Down: true},
	}})
	if err := k.RunUntil(sim.Time(50 * sim.Microsecond)); err != nil {
		t.Fatal(err)
	}

	// Trial over: recycle the fabric onto the same kernel — the schedule
	// the arena reproduces when a pooled fabric is reused — and rebuild
	// the "same" topology.
	fab.Reset(k, DefaultConfig())
	na, err := fab.AddNIC("a", nvm.NewDevice("a2", memSize))
	if err != nil {
		t.Fatal(err)
	}
	if err := k.RunUntil(sim.Time(300 * sim.Microsecond)); err != nil {
		t.Fatal(err)
	}
	if na.Down() {
		t.Fatal("stale fault timer from the previous trial crashed the recycled NIC")
	}

	// A restart timer is scrubbed too: a crash that fired plus a pending
	// restart must not resurrect a NIC the next trial wants down.
	mustInstall(t, fab, &FaultPlan{NICs: []NICFault{
		{Host: "a", At: sim.Time(350 * sim.Microsecond), Down: true},
		{Host: "a", At: sim.Time(500 * sim.Microsecond), Down: false},
	}})
	if err := k.RunUntil(sim.Time(400 * sim.Microsecond)); err != nil {
		t.Fatal(err)
	}
	if !na.Down() {
		t.Fatal("crash did not fire")
	}
	fab.Reset(k, DefaultConfig())
	nb, err := fab.AddNIC("a", nvm.NewDevice("a3", memSize))
	if err != nil {
		t.Fatal(err)
	}
	nb.SetDown(true) // next trial crashes it on its own schedule
	if err := k.RunUntil(sim.Time(600 * sim.Microsecond)); err != nil {
		t.Fatal(err)
	}
	if !nb.Down() {
		t.Fatal("stale restart timer from the previous trial revived the NIC")
	}
	if fab.FaultStats() != (FaultStats{}) {
		t.Fatalf("fault counters survived Reset: %+v", fab.FaultStats())
	}
}

// clamp01 maps arbitrary fuzz floats into a probability when asked to
// build a valid field, and passes them through otherwise.
func fuzzProb(raw float64, wantValid bool) float64 {
	if !wantValid {
		return raw
	}
	if math.IsNaN(raw) || math.IsInf(raw, 0) {
		return 0
	}
	return math.Abs(math.Mod(raw, 1))
}

// FuzzFaultPlanValidate drives arbitrary plan shapes through Validate and
// checks the contract both ways: Validate never panics or hangs, plans
// built inside the documented envelope are accepted, each seeded
// malformation is rejected with ErrBadFaultPlan, and accepted plans
// install and run a bounded simulation without hanging.
func FuzzFaultPlanValidate(f *testing.F) {
	f.Add(0.3, 0.1, int64(2000), int64(1000), int64(5000), uint8(2), uint8(0))
	f.Add(1.5, -0.2, int64(-5), int64(9), int64(3), uint8(3), uint8(7))
	f.Add(0.0, 0.0, int64(0), int64(0), int64(0), uint8(0), uint8(0))
	f.Fuzz(func(t *testing.T, drop, dup float64, delay, pFrom, pUntil int64, nicEvents, malform uint8) {
		// malform bit i seeds malformation i; zero asks for a valid plan.
		wantValid := malform == 0
		plan := &FaultPlan{}
		lf := LinkFault{From: "a", To: "b"}
		lf.DropProb = fuzzProb(drop, wantValid)
		lf.DupProb = fuzzProb(dup, wantValid)
		lf.ExtraDelay = sim.Duration(delay)
		if wantValid && lf.ExtraDelay < 0 {
			lf.ExtraDelay = -lf.ExtraDelay
		}
		from, until := pFrom, pUntil
		if wantValid {
			if from < 0 {
				from = -from
			}
			if until < from {
				until = from
			}
		}
		lf.PartitionFrom, lf.PartitionUntil = sim.Time(from), sim.Time(until)
		plan.Links = append(plan.Links, lf)
		n := int(nicEvents % 6)
		for i := 0; i < n; i++ {
			plan.NICs = append(plan.NICs, NICFault{
				Host: "b",
				At:   sim.Time(int64(i+1) * int64(sim.Microsecond)),
				Down: i%2 == 0,
			})
		}
		switch {
		case malform&1 != 0:
			plan.Links[0].DropProb = 1.0001
		case malform&2 != 0:
			plan.Links[0].PartitionFrom = sim.Time(10)
			plan.Links[0].PartitionUntil = sim.Time(9)
		case malform&4 != 0:
			plan.NICs = append(plan.NICs, NICFault{Host: "", At: 1, Down: true})
		case malform&8 != 0: // duplicate instant for one host
			plan.NICs = append(plan.NICs,
				NICFault{Host: "c", At: sim.Time(7), Down: true},
				NICFault{Host: "c", At: sim.Time(7), Down: false})
		case malform&16 != 0: // crash while already down
			plan.NICs = append(plan.NICs,
				NICFault{Host: "d", At: sim.Time(3), Down: true},
				NICFault{Host: "d", At: sim.Time(5), Down: true})
		case malform&32 != 0: // restart before any crash
			plan.NICs = append(plan.NICs, NICFault{Host: "e", At: sim.Time(3), Down: false})
		case malform&64 != 0:
			plan.NICs = append(plan.NICs, NICFault{Host: "f", At: sim.Time(-4), Down: true})
		case malform&128 != 0:
			plan.Links[0].DupProb = math.Inf(1)
		}
		err := plan.Validate()
		if wantValid && err != nil {
			t.Fatalf("well-formed plan rejected: %v\nplan: %+v", err, plan)
		}
		if !wantValid {
			if err == nil {
				t.Fatalf("malformed plan (mask %08b) accepted: %+v", malform, plan)
			}
			if !errors.Is(err, ErrBadFaultPlan) {
				t.Fatalf("rejection %v does not wrap ErrBadFaultPlan", err)
			}
			return
		}
		// Accepted plans must install and run without hanging: a bounded
		// RunUntil over live traffic terminates (an eternal event loop or
		// an unbounded partition would trip the fuzz engine's timeout).
		k := sim.NewKernel(1)
		fab := NewFabric(k, DefaultConfig())
		na, err := fab.AddNIC("a", nvm.NewDevice("a", memSize))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := fab.AddNIC("b", nvm.NewDevice("b", memSize)); err != nil {
			t.Fatal(err)
		}
		if err := fab.InstallFaultPlan(plan); err != nil {
			t.Fatalf("validated plan failed to install: %v", err)
		}
		if _, err := na.RegisterMR(0, memSize, AccessLocalWrite|AccessRemoteWrite); err != nil {
			t.Fatal(err)
		}
		if err := k.RunUntil(sim.Time(2 * sim.Millisecond)); err != nil {
			t.Fatal(err)
		}
	})
}
