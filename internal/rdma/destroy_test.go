package rdma

import (
	"errors"
	"testing"

	"hyperloop/internal/sim"
)

func TestDestroyedQPRejectsPostsAndDropsInbound(t *testing.T) {
	p := newTestPair(t)
	p.qb.PostRecv(RecvWQE{SGEs: []SGE{{Addr: bufB, Len: 64}}})

	// A message in flight toward a QP that is destroyed before delivery is
	// dropped like a message to a dead NIC — the sender's ack timeout
	// surfaces the loss as an error CQE instead of a hang.
	var sendSt Status
	p.na.mem.Write(bufA, make([]byte, 64))
	if _, err := p.qa.PostSend(WQE{
		Opcode: OpSend, Flags: FlagSignaled,
		Local: bufA, Len: 64,
	}); err != nil {
		t.Fatal(err)
	}
	p.qa.sendCQ.SetHandler(func(e CQE) { sendSt = e.Status })
	// Let the requester put the message on the wire, then destroy the
	// target while the delivery is still in flight.
	if err := p.k.RunUntil(sim.Time(200 * sim.Nanosecond)); err != nil {
		t.Fatal(err)
	}
	p.qb.Destroy()

	if !p.qb.Dead() {
		t.Error("Dead() = false after Destroy")
	}
	if _, err := p.qb.PostSend(WQE{Opcode: OpNop}); !errors.Is(err, ErrQPDestroyed) {
		t.Errorf("PostSend on destroyed QP: err = %v, want ErrQPDestroyed", err)
	}
	if got := p.nb.QP(p.qb.QPN()); got != nil {
		t.Errorf("QPN %d still resolves after Destroy", p.qb.QPN())
	}
	if p.qa.Peer() != nil {
		t.Error("peer link not severed by Destroy")
	}

	p.run(t)
	if sendSt != StatusTimeout {
		t.Errorf("sender completion status = %v, want StatusTimeout", sendSt)
	}
	if drops := p.fab.FaultStats().Drops; drops == 0 {
		t.Error("delivery to destroyed QP not counted as a drop")
	}
}

func TestDestroyedQPIgnoresParkedWAITWakes(t *testing.T) {
	// The failover hazard in miniature: a QP parks a WAIT on a CQ, is
	// destroyed, and a successor QP sharing the same ring memory posts its
	// own WAIT on the same CQ. The completion must go to the successor;
	// the dead QP's stale subscription must not consume it or re-read the
	// rewritten ring slot.
	p := newTestPair(t)
	cq := p.na.CreateCQ()

	old, err := p.na.CreateQP(QPConfig{
		SendRingOff: bufA, SendSlots: 4,
		SendCQ: p.na.CreateCQ(), RecvCQ: p.na.CreateCQ(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := old.PostSend(WQE{Opcode: OpWait, Imm: 1, Aux1: cq.CQN(), Aux2: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := old.PostSendDeferred(WQE{Opcode: OpNop, Flags: FlagSignaled}); err != nil {
		t.Fatal(err)
	}
	if err := p.k.Run(); err != nil { // park the WAIT
		t.Fatal(err)
	}
	old.Destroy()

	succ, err := p.na.CreateQP(QPConfig{
		SendRingOff: bufA, SendSlots: 4, // same ring memory
		SendCQ: p.na.CreateCQ(), RecvCQ: p.na.CreateCQ(),
	})
	if err != nil {
		t.Fatal(err)
	}
	var nops int
	succ.SendCQ().SetHandler(func(e CQE) {
		if e.Op == OpNop && e.Status == StatusSuccess {
			nops++
		}
	})
	if _, err := succ.PostSend(WQE{Opcode: OpWait, Imm: 1, Aux1: cq.CQN(), Aux2: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := succ.PostSendDeferred(WQE{Opcode: OpNop, Flags: FlagSignaled}); err != nil {
		t.Fatal(err)
	}
	if err := p.k.Run(); err != nil { // park the successor's WAIT
		t.Fatal(err)
	}

	cq.push(CQE{Op: OpNop, Status: StatusSuccess}) // satisfy exactly one WAIT
	if err := p.k.Run(); err != nil {
		t.Fatal(err)
	}
	if nops != 1 {
		t.Fatalf("successor completed %d NOPs, want 1 (WAIT stolen or lost)", nops)
	}
}

func TestDestroyedCQDropsCompletionsAndRetiresCQN(t *testing.T) {
	p := newTestPair(t)
	cq := p.na.CreateCQ()
	cqn := cq.CQN()
	cq.push(CQE{Op: OpNop, Status: StatusSuccess})
	cq.Destroy()
	if got := p.na.CQ(cqn); got != nil {
		t.Errorf("CQN %d still resolves after Destroy", cqn)
	}
	cq.push(CQE{Op: OpNop, Status: StatusSuccess}) // straggler via retained pointer
	if cq.Total() != 0 || cq.Depth() != 0 {
		t.Errorf("destroyed CQ retained state: total=%d depth=%d", cq.Total(), cq.Depth())
	}

	// A WAIT naming the retired CQN completes with a local error rather
	// than parking forever.
	var st Status
	p.qa.sendCQ.SetHandler(func(e CQE) { st = e.Status })
	nq, err := p.na.CreateQP(QPConfig{
		SendRingOff: bufB, SendSlots: 4,
		SendCQ: p.qa.sendCQ, RecvCQ: p.na.CreateCQ(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nq.PostSend(WQE{Opcode: OpWait, Flags: FlagSignaled, Imm: 1, Aux1: cqn, Aux2: 1}); err != nil {
		t.Fatal(err)
	}
	p.run(t)
	if st != StatusLocalError {
		t.Errorf("WAIT on retired CQN: status = %v, want StatusLocalError", st)
	}
}
