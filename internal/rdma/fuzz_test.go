package rdma

import (
	"testing"

	"hyperloop/internal/sim"
)

// fuzzSlot builds a 64-byte ring slot from fuzz input, zero-padded like
// freshly allocated ring memory.
func fuzzSlot(raw []byte) [WQESize]byte {
	var slot [WQESize]byte
	copy(slot[:], raw)
	return slot
}

// FuzzWQEDecode feeds arbitrary 64-byte slots through the decoder and then
// through a live send ring — the exact surface a remote peer can patch with
// RDMA writes (§4.1), so malformed descriptors must degrade into error
// completions or stalls, never panics, hangs, or giant allocations.
func FuzzWQEDecode(f *testing.F) {
	// Seeds: a valid NOP, an un-owned slot, a zero opcode, an invalid
	// opcode, a WRITE with a bogus rkey, and a WRITE with an absurd length.
	seed := func(w WQE) []byte {
		var buf [WQESize]byte
		_ = w.Encode(buf[:])
		return buf[:]
	}
	f.Add(seed(WQE{Opcode: OpNop, Flags: FlagOwned | FlagSignaled, WRID: 1}))
	f.Add(seed(WQE{Opcode: OpWrite, Flags: FlagSignaled, Len: 8, Remote: bufB}))
	f.Add(seed(WQE{Opcode: Opcode(0), Flags: FlagOwned}))
	f.Add(seed(WQE{Opcode: Opcode(250), Flags: FlagOwned | FlagSignaled}))
	f.Add(seed(WQE{Opcode: OpWrite, Flags: FlagOwned | FlagSignaled, Local: bufA, Len: 16, Remote: bufB, Aux1: 0xdead}))
	f.Add(seed(WQE{Opcode: OpWrite, Flags: FlagOwned | FlagSignaled, Local: bufA, Len: 1 << 40, Remote: bufB}))

	f.Fuzz(func(t *testing.T, raw []byte) {
		slot := fuzzSlot(raw)

		// Round-trip: any 64 bytes decode, and decode∘encode∘decode is the
		// identity on the decoded struct (encode canonicalizes padding).
		w, err := DecodeWQE(slot[:])
		if err != nil {
			t.Fatalf("decode of full slot failed: %v", err)
		}
		var re [WQESize]byte
		if err := w.Encode(re[:]); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		w2, err := DecodeWQE(re[:])
		if err != nil || w2 != w {
			t.Fatalf("decode(encode(w)) = %+v, %v; want %+v", w2, err, w)
		}

		// Inject the raw slot into a live ring, as a malicious peer would,
		// and let the send engine chew on it for a bounded horizon.
		p := newTestPair(t)
		if err := p.na.Memory().Write(int(SlotAddr(ringOff, ringSlots, 0)), slot[:]); err != nil {
			t.Fatal(err)
		}
		p.qa.tail = 1
		p.qa.Doorbell()
		if err := p.k.RunUntil(sim.Time(100 * sim.Millisecond)); err != nil {
			t.Fatalf("run: %v", err)
		}

		owned := w.Flags&FlagOwned != 0
		signaled := w.Flags&FlagSignaled != 0

		// The send ring itself is plain registered memory at [0, ringBytes)
		// — that writability is the paper's §4.1 surface. An op that writes
		// local memory overlapping the ring (MEMCPY's destination, READ/CAS
		// reply payloads) can therefore mint new owned WQEs in later slots,
		// which the engine then legitimately executes: more than one
		// completion is correct behaviour there, so the single-slot oracle
		// only applies to non-self-modifying ops.
		const ringBytes = ringSlots * WQESize
		selfRing := func(off, n uint64) bool { return int64(off) < int64(ringBytes) && n > 0 }
		selfModifying := false
		if owned {
			switch w.Opcode {
			case OpMemcpy:
				selfModifying = selfRing(w.Remote, w.Len)
			case OpRead:
				selfModifying = selfRing(w.Local, w.Len)
			case OpCAS:
				selfModifying = selfRing(w.Local, 8)
			}
		}

		wqes, _ := p.na.Stats()
		cqes := p.qa.SendCQ().Poll(16)
		if len(cqes) > 1 && !selfModifying {
			t.Fatalf("single slot produced %d completions", len(cqes))
		}
		if selfModifying {
			// Only the global invariants hold: no panic, no hang, bounded
			// completions via the Poll cap above.
			return
		}

		switch {
		case !owned || w.Opcode == 0:
			// Not handed to the NIC: the engine must stall, not execute.
			if wqes != 0 || len(cqes) != 0 {
				t.Fatalf("un-owned/zero-opcode slot executed: wqes=%d cqes=%d", wqes, len(cqes))
			}

		case w.Opcode == OpRecv || w.Opcode > OpFlush:
			// Invalid opcode on a send ring: error completion, always.
			if wqes != 1 || len(cqes) != 1 || cqes[0].Status != StatusLocalError {
				t.Fatalf("invalid opcode %d: wqes=%d cqes=%v", w.Opcode, wqes, cqes)
			}

		case w.Opcode == OpNop:
			if signaled && (len(cqes) != 1 || cqes[0].Status != StatusSuccess) {
				t.Fatalf("signaled NOP: cqes=%v", cqes)
			}

		case w.Opcode == OpWrite:
			// Mirror the engine's checks to predict the completion status.
			want := StatusSuccess
			mr := p.mrb
			switch {
			case w.Len > memSize:
				want = StatusLocalError // length bounds-check precedes buffering
			case int(w.Local) < 0 || int(w.Local)+int(w.Len) > memSize:
				want = StatusLocalError // local read out of bounds
			case w.Aux1 != mr.RKey || !mr.Contains(w.Remote, w.Len):
				want = StatusRemoteAccessError // rkey/remote-range rejected
			}
			if want == StatusSuccess && !signaled {
				if len(cqes) != 0 {
					t.Fatalf("unsignaled successful WRITE completed: %v", cqes)
				}
			} else if len(cqes) != 1 || cqes[0].Status != want {
				t.Fatalf("WRITE %+v: cqes=%v, want status %v", w, cqes, want)
			}
		}
		// Remaining opcodes (SEND may retry RNR forever, WAIT may park,
		// READ/CAS/FLUSH/MEMCPY race the horizon) assert only the global
		// invariants above: no panic, bounded completions, bounded memory.
	})
}
