package rdma

import (
	"testing"

	"hyperloop/internal/nvm"
	"hyperloop/internal/sim"
)

// newTestCQ builds a CQ on a standalone NIC so push can be driven directly.
func newTestCQ(t testing.TB) (*sim.Kernel, *CQ) {
	t.Helper()
	k := sim.NewKernel(1)
	fab := NewFabric(k, DefaultConfig())
	nic, err := fab.AddNIC("cqhost", nvm.NewDevice("cqhost", 4096))
	if err != nil {
		t.Fatal(err)
	}
	return k, nic.CreateCQ()
}

func TestDrainHandlerConsumesEntries(t *testing.T) {
	_, cq := newTestCQ(t)
	var got []uint64
	cq.SetDrainHandler(func(batch []CQE) {
		for _, e := range batch {
			got = append(got, e.WRID)
		}
	})
	for i := uint64(0); i < 5; i++ {
		cq.push(CQE{WRID: i})
	}
	if len(got) != 5 {
		t.Fatalf("handler saw %d CQEs, want 5", len(got))
	}
	for i, w := range got {
		if w != uint64(i) {
			t.Fatalf("got[%d] = %d, want %d (order broken)", i, w, i)
		}
	}
	if cq.Depth() != 0 {
		t.Fatalf("Depth = %d after drain, want 0 (entries must be consumed)", cq.Depth())
	}
	if cq.Poll(10) != nil {
		t.Fatal("Poll returned entries on a drain-handler CQ")
	}
	if cq.Total() != 5 {
		t.Fatalf("Total = %d, want 5", cq.Total())
	}
}

func TestDrainHandlerMigratesBacklog(t *testing.T) {
	_, cq := newTestCQ(t)
	// Completions before any handler accumulate for Poll...
	cq.push(CQE{WRID: 1})
	cq.push(CQE{WRID: 2})
	if cq.Depth() != 2 {
		t.Fatalf("Depth = %d, want 2", cq.Depth())
	}
	// ...and the drain handler receives that backlog with the next push.
	var got []uint64
	cq.SetDrainHandler(func(batch []CQE) {
		for _, e := range batch {
			got = append(got, e.WRID)
		}
	})
	cq.push(CQE{WRID: 3})
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("got %v, want [1 2 3]", got)
	}
	if cq.Depth() != 0 {
		t.Fatalf("Depth = %d, want 0", cq.Depth())
	}
}

// TestDrainHandlerReentrantPushFoldsIntoFollowUpBatch: a push performed
// inside the handler must not recurse into the handler; it is delivered as
// a second batch of the same drain loop.
func TestDrainHandlerReentrantPushFoldsIntoFollowUpBatch(t *testing.T) {
	_, cq := newTestCQ(t)
	depth, maxDepth := 0, 0
	var batches [][]uint64
	cq.SetDrainHandler(func(batch []CQE) {
		depth++
		if depth > maxDepth {
			maxDepth = depth
		}
		var ids []uint64
		for _, e := range batch {
			ids = append(ids, e.WRID)
		}
		batches = append(batches, ids)
		if batch[0].WRID == 1 {
			cq.push(CQE{WRID: 2}) // re-entrant push from handler context
		}
		depth--
	})
	cq.push(CQE{WRID: 1})
	if maxDepth != 1 {
		t.Fatalf("handler nested to depth %d, want 1", maxDepth)
	}
	if len(batches) != 2 || batches[0][0] != 1 || batches[1][0] != 2 {
		t.Fatalf("batches = %v, want [[1] [2]]", batches)
	}
}

func TestSetHandlerRetainsEntriesForPoll(t *testing.T) {
	_, cq := newTestCQ(t)
	seen := 0
	cq.SetHandler(func(CQE) { seen++ })
	cq.push(CQE{WRID: 7})
	cq.push(CQE{WRID: 8})
	if seen != 2 {
		t.Fatalf("handler ran %d times, want 2", seen)
	}
	got := cq.Poll(10)
	if len(got) != 2 || got[0].WRID != 7 || got[1].WRID != 8 {
		t.Fatalf("Poll = %v, want WRIDs [7 8] (legacy handlers observe, not consume)", got)
	}
}

func TestDiscardCountsWithoutRetaining(t *testing.T) {
	_, cq := newTestCQ(t)
	cq.Discard()
	for i := 0; i < 100; i++ {
		cq.push(CQE{WRID: uint64(i)})
	}
	if cq.Total() != 100 {
		t.Fatalf("Total = %d, want 100", cq.Total())
	}
	if cq.Depth() != 0 || cq.Poll(10) != nil {
		t.Fatal("Discard CQ retained entries")
	}
}

// TestSubscribeThreshold: a waiter with minTotal fires exactly when the
// cumulative count reaches it — not on every push.
func TestSubscribeThreshold(t *testing.T) {
	_, cq := newTestCQ(t)
	fired := 0
	cq.subscribe(func() { fired++ }, 3)
	cq.push(CQE{})
	cq.push(CQE{})
	if fired != 0 {
		t.Fatalf("waiter fired at total=%d, want to wait for 3", cq.Total())
	}
	cq.push(CQE{})
	if fired != 1 {
		t.Fatalf("fired = %d at total=3, want 1", fired)
	}
	cq.push(CQE{})
	if fired != 1 {
		t.Fatalf("fired = %d after total=4, want 1 (waiter is one-shot)", fired)
	}
}

func TestSubscribeThresholdOrderAmongSurvivors(t *testing.T) {
	_, cq := newTestCQ(t)
	var order []int
	cq.subscribe(func() { order = append(order, 1) }, 2)
	cq.subscribe(func() { order = append(order, 2) }, 1)
	cq.subscribe(func() { order = append(order, 3) }, 2)
	cq.push(CQE{})
	if len(order) != 1 || order[0] != 2 {
		t.Fatalf("order = %v after 1 push, want [2]", order)
	}
	cq.push(CQE{})
	if len(order) != 3 || order[1] != 1 || order[2] != 3 {
		t.Fatalf("order = %v, want [2 1 3] (subscription order among same-threshold waiters)", order)
	}
}

// BenchmarkCQDrain measures the per-completion cost of the batched drain
// path against the legacy per-CQE handler path.
func BenchmarkCQDrain(b *testing.B) {
	_, cq := newTestCQ(b)
	n := 0
	cq.SetDrainHandler(func(batch []CQE) { n += len(batch) })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cq.push(CQE{WRID: uint64(i)})
	}
	if n != b.N {
		b.Fatalf("drained %d, want %d", n, b.N)
	}
}

func BenchmarkCQPerEntryHandler(b *testing.B) {
	_, cq := newTestCQ(b)
	n := 0
	cq.SetHandler(func(CQE) { n++ })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cq.push(CQE{WRID: uint64(i)})
		// Legacy handlers retain entries; drain them as a poller would so
		// the queue doesn't grow with b.N.
		if cq.Depth() >= 64 {
			cq.Poll(64)
		}
	}
}
