package rdma

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"hyperloop/internal/nvm"
	"hyperloop/internal/sim"
)

// newFaultPair is newTestPair with a caller-chosen seed and config, for
// fault tests that want tight ack timeouts or specific RNG streams.
func newFaultPair(t *testing.T, seed uint64, cfg Config) *testPair {
	t.Helper()
	k := sim.NewKernel(seed)
	fab := NewFabric(k, cfg)
	na, err := fab.AddNIC("a", nvm.NewDevice("a", memSize))
	if err != nil {
		t.Fatal(err)
	}
	nb, err := fab.AddNIC("b", nvm.NewDevice("b", memSize))
	if err != nil {
		t.Fatal(err)
	}
	all := AccessLocalWrite | AccessRemoteRead | AccessRemoteWrite | AccessRemoteAtomic
	mra, err := na.RegisterMR(0, memSize, all)
	if err != nil {
		t.Fatal(err)
	}
	mrb, err := nb.RegisterMR(0, memSize, all)
	if err != nil {
		t.Fatal(err)
	}
	qa, err := na.CreateQP(QPConfig{SendRingOff: ringOff, SendSlots: ringSlots, SendCQ: na.CreateCQ(), RecvCQ: na.CreateCQ()})
	if err != nil {
		t.Fatal(err)
	}
	qb, err := nb.CreateQP(QPConfig{SendRingOff: ringOff, SendSlots: ringSlots, SendCQ: nb.CreateCQ(), RecvCQ: nb.CreateCQ()})
	if err != nil {
		t.Fatal(err)
	}
	qa.Connect(qb)
	return &testPair{k: k, fab: fab, na: na, nb: nb, qa: qa, qb: qb, mra: mra, mrb: mrb}
}

func postWrite(t *testing.T, p *testPair, wrid uint64) {
	t.Helper()
	if _, err := p.qa.PostSend(WQE{
		Opcode: OpWrite, Flags: FlagSignaled, WRID: wrid,
		Local: bufA, Len: 1, Remote: bufB, Aux1: p.mrb.RKey,
	}); err != nil {
		t.Fatal(err)
	}
}

// TestSetDownMidOperationUnblocksClient is the regression test for the
// silent-drop hang: a client fiber blocked on a completion whose target
// NIC died mid-flight must unblock with an error CQE, never hang.
func TestSetDownMidOperationUnblocksClient(t *testing.T) {
	p := newTestPair(t)
	done := sim.NewSignal()
	var st Status
	p.qa.SendCQ().SetDrainHandler(func(es []CQE) {
		for _, e := range es {
			st = e.Status
			done.Fire(nil)
		}
	})
	p.k.Spawn("client", func(f *sim.Fiber) {
		_ = p.na.Memory().Write(bufA, []byte{7})
		postWrite(t, p, 1)
		if err := f.Await(done); err != nil {
			t.Errorf("await: %v", err)
		}
	})
	// Crash the target while the WRITE is on the wire (PropDelay is 1µs,
	// so 500ns is strictly mid-operation).
	p.k.After(500*sim.Nanosecond, func() { p.nb.SetDown(true) })
	p.run(t)
	if st != StatusTimeout {
		t.Fatalf("want TIMEOUT, got %v", st)
	}
	if p.k.LiveFibers() != 0 {
		t.Fatal("client fiber still blocked after the drop")
	}
}

// TestScheduledCrashAndRestart drives a FaultPlan NIC crash/restart window
// and checks that ops before, during, and after the window complete with
// the expected statuses — and that the restart revives the datapath.
func TestScheduledCrashAndRestart(t *testing.T) {
	cfg := DefaultConfig()
	cfg.AckTimeout = 100 * sim.Microsecond
	p := newFaultPair(t, 3, cfg)
	mustInstall(t, p.fab, &FaultPlan{NICs: []NICFault{
		{Host: "b", At: sim.Time(100 * sim.Microsecond), Down: true},
		{Host: "b", At: sim.Time(400 * sim.Microsecond), Down: false},
	}})
	var results []Status
	p.qa.SendCQ().SetDrainHandler(func(es []CQE) {
		for _, e := range es {
			results = append(results, e.Status)
		}
	})
	const ops = 10
	p.k.Spawn("client", func(f *sim.Fiber) {
		for i := 0; i < ops; i++ {
			postWrite(t, p, uint64(i))
			f.Sleep(60 * sim.Microsecond)
		}
	})
	p.run(t)
	if len(results) != ops {
		t.Fatalf("want %d completions, got %d (an op hung or doubled)", ops, len(results))
	}
	// Posts at 0,60µs land before the crash; 120..360µs are lost in the
	// window; 420µs onward hit the restarted NIC.
	okWant := []int{0, 1, 7, 8, 9}
	for _, i := range okWant {
		if results[i] != StatusSuccess {
			t.Fatalf("op %d: want OK, got %v (results %v)", i, results[i], results)
		}
	}
	for i := 2; i <= 6; i++ {
		if results[i] != StatusTimeout && results[i] != StatusFlushed {
			t.Fatalf("op %d: want TIMEOUT/FLUSHED, got %v (results %v)", i, results[i], results)
		}
	}
	if p.fab.FaultStats().Drops == 0 {
		t.Fatal("no drops recorded during the crash window")
	}
}

// TestLinkPartitionWindow checks the [from, until) partition semantics and
// the bounded CQ wait: ops before and after the window succeed, ops inside
// it surface StatusTimeout.
func TestLinkPartitionWindow(t *testing.T) {
	cfg := DefaultConfig()
	cfg.AckTimeout = 100 * sim.Microsecond
	p := newFaultPair(t, 5, cfg)
	mustInstall(t, p.fab, &FaultPlan{Links: []LinkFault{{
		From:           "a",
		PartitionFrom:  sim.Time(10 * sim.Microsecond),
		PartitionUntil: sim.Time(200 * sim.Microsecond),
	}}})
	p.k.Spawn("client", func(f *sim.Fiber) {
		cq := p.qa.SendCQ()
		expect := func(stage string, want Status) {
			if err := cq.AwaitTotal(f, cq.Total()+1, f.Now().Add(sim.Millisecond)); err != nil {
				t.Errorf("%s: await: %v", stage, err)
				return
			}
			if es := cq.Poll(1); len(es) != 1 || es[0].Status != want {
				t.Errorf("%s: want %v, got %v", stage, want, es)
			}
		}
		postWrite(t, p, 1) // t=0: before the window
		expect("before", StatusSuccess)
		f.Sleep(50*sim.Microsecond - sim.Duration(f.Now()))
		postWrite(t, p, 2) // t=50µs: inside the window
		expect("inside", StatusTimeout)
		f.Sleep(250*sim.Microsecond - sim.Duration(f.Now()))
		postWrite(t, p, 3) // t=250µs: after the window
		expect("after", StatusSuccess)
	})
	p.run(t)
	if got := p.fab.FaultStats().Drops; got != 1 {
		t.Fatalf("want exactly 1 partition drop, got %d", got)
	}
}

// TestAwaitTotalDeadline pins the bounded-wait contract of CQ.AwaitTotal
// on a CQ that never completes.
func TestAwaitTotalDeadline(t *testing.T) {
	p := newTestPair(t)
	var got error
	p.k.Spawn("waiter", func(f *sim.Fiber) {
		got = p.qa.SendCQ().AwaitTotal(f, 1, sim.Time(50*sim.Microsecond))
	})
	p.run(t)
	if !errors.Is(got, ErrWaitDeadline) {
		t.Fatalf("want ErrWaitDeadline, got %v", got)
	}
	if p.k.LiveFibers() != 0 {
		t.Fatal("waiter fiber leaked")
	}
}

// TestDuplicateDeliveriesSuppressed injects a duplicate for every message
// on the a→b link and checks each write is applied exactly once.
func TestDuplicateDeliveriesSuppressed(t *testing.T) {
	p := newTestPair(t)
	mustInstall(t, p.fab, &FaultPlan{Links: []LinkFault{{From: "a", To: "b", DupProb: 1}}})
	const ops = 10
	var sent, applied int
	p.qa.SendCQ().SetDrainHandler(func(es []CQE) {
		for _, e := range es {
			if e.Status != StatusSuccess {
				t.Errorf("sender CQE: %v", e.Status)
			}
			sent++
		}
	})
	p.qb.RecvCQ().SetDrainHandler(func(es []CQE) { applied += len(es) })
	for i := 0; i < ops; i++ {
		p.qb.PostRecv(RecvWQE{WRID: uint64(i)})
	}
	p.k.Spawn("client", func(f *sim.Fiber) {
		for i := 0; i < ops; i++ {
			_ = p.na.Memory().Write(bufA, []byte{byte(i)})
			if _, err := p.qa.PostSend(WQE{
				Opcode: OpWriteImm, Flags: FlagSignaled, WRID: uint64(i), Imm: uint32(i),
				Local: bufA, Len: 1, Remote: bufB, Aux1: p.mrb.RKey,
			}); err != nil {
				t.Error(err)
			}
			f.Sleep(5 * sim.Microsecond)
		}
	})
	p.run(t)
	if sent != ops || applied != ops {
		t.Fatalf("want %d sent and applied once each, got sent=%d applied=%d", ops, sent, applied)
	}
	fs := p.fab.FaultStats()
	if fs.Dups != ops || fs.DupsSuppressed != fs.Dups {
		t.Fatalf("want %d dups all suppressed, got %+v", ops, fs)
	}
}

// faultTrace runs a lossy, duplicating, crash-punctuated workload and
// returns the full completion trace plus fault counters.
func faultTrace(t *testing.T, seed uint64) (string, FaultStats) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.AckTimeout = 200 * sim.Microsecond
	p := newFaultPair(t, seed, cfg)
	mustInstall(t, p.fab, &FaultPlan{
		NICs: []NICFault{
			{Host: "b", At: sim.Time(40 * sim.Microsecond), Down: true},
			{Host: "b", At: sim.Time(80 * sim.Microsecond), Down: false},
		},
		Links: []LinkFault{
			{From: "a", To: "b", DropProb: 0.25, DupProb: 0.25, ExtraDelay: 2 * sim.Microsecond},
			{From: "b", To: "a", DropProb: 0.25},
		},
	})
	var tr strings.Builder
	p.qa.SendCQ().SetDrainHandler(func(es []CQE) {
		for _, e := range es {
			fmt.Fprintf(&tr, "%d:%v@%v;", e.WRID, e.Status, e.At)
		}
	})
	p.k.Spawn("client", func(f *sim.Fiber) {
		for i := 0; i < 40; i++ {
			postWrite(t, p, uint64(i))
			f.Sleep(3 * sim.Microsecond)
		}
	})
	if err := p.k.Run(); err != nil {
		t.Fatal(err)
	}
	return tr.String(), p.fab.FaultStats()
}

// TestFaultPlanDeterministic replays the same seeded fault plan twice and
// requires byte-identical completion traces and fault counters — the
// property the failover experiment's serial-vs-overlapped golden rests on.
func TestFaultPlanDeterministic(t *testing.T) {
	for _, seed := range []uint64{1, 2, 42} {
		tr1, fs1 := faultTrace(t, seed)
		tr2, fs2 := faultTrace(t, seed)
		if tr1 != tr2 {
			t.Fatalf("seed %d: fault replay diverged:\n%s\nvs\n%s", seed, tr1, tr2)
		}
		if fs1 != fs2 {
			t.Fatalf("seed %d: fault stats diverged: %+v vs %+v", seed, fs1, fs2)
		}
		if fs1.Drops == 0 {
			t.Fatalf("seed %d: plan injected no drops; trace untested", seed)
		}
	}
}

// TestFaultStressAllOpsResolve is the no-eternal-hang acceptance test:
// under bidirectional random drops, duplication, and extra delay, every
// posted op must resolve — success or error CQE — with no fiber left
// blocked and no pending op stranded.
func TestFaultStressAllOpsResolve(t *testing.T) {
	for _, seed := range []uint64{1, 2, 42} {
		cfg := DefaultConfig()
		cfg.AckTimeout = 200 * sim.Microsecond
		p := newFaultPair(t, seed, cfg)
		mustInstall(t, p.fab, &FaultPlan{Links: []LinkFault{
			{From: "a", To: "b", DropProb: 0.3, DupProb: 0.2, ExtraDelay: 2 * sim.Microsecond},
			{From: "b", To: "a", DropProb: 0.3, DupProb: 0.2},
		}})
		const ops = 120
		var aDone, bDone int
		p.qa.SendCQ().SetDrainHandler(func(es []CQE) { aDone += len(es) })
		p.qb.SendCQ().SetDrainHandler(func(es []CQE) { bDone += len(es) })
		p.k.Spawn("a", func(f *sim.Fiber) {
			for i := 0; i < ops; i++ {
				postWrite(t, p, uint64(i))
				f.Sleep(sim.Microsecond)
			}
		})
		p.k.Spawn("b", func(f *sim.Fiber) {
			for i := 0; i < ops; i++ {
				if _, err := p.qb.PostSend(WQE{
					Opcode: OpWrite, Flags: FlagSignaled, WRID: uint64(i),
					Local: bufB, Len: 1, Remote: bufA, Aux1: p.mra.RKey,
				}); err != nil {
					t.Error(err)
				}
				f.Sleep(sim.Microsecond)
			}
		})
		p.run(t)
		if aDone != ops || bDone != ops {
			t.Fatalf("seed %d: ops stranded: a %d/%d, b %d/%d", seed, aDone, ops, bDone, ops)
		}
		if p.qa.pending.Len() != 0 || p.qb.pending.Len() != 0 {
			t.Fatalf("seed %d: pending ops left: a=%d b=%d", seed, p.qa.pending.Len(), p.qb.pending.Len())
		}
		if p.k.LiveFibers() != 0 {
			t.Fatalf("seed %d: %d fibers still blocked", seed, p.k.LiveFibers())
		}
		fs := p.fab.FaultStats()
		if fs.Drops == 0 || fs.Dups == 0 {
			t.Fatalf("seed %d: stress injected nothing: %+v", seed, fs)
		}
	}
}

// TestRecycleThenReuseIsClean pins the reset contract for pooled NIC/QP/CQ
// structs: after dirtying every piece of per-QP state (FIFO clamps, wire
// sequence numbers, pending windows, a down flag) and resetting the
// fabric, an identical topology must report zeroed state, reuse the same
// structs, and replay a workload byte-identically to the first run.
func TestRecycleThenReuseIsClean(t *testing.T) {
	workload := func(fab *Fabric, k *sim.Kernel) (string, [2]*QP) {
		na, err := fab.AddNIC("a", nvm.NewDevice("a", memSize))
		if err != nil {
			t.Fatal(err)
		}
		nb, err := fab.AddNIC("b", nvm.NewDevice("b", memSize))
		if err != nil {
			t.Fatal(err)
		}
		mrb, err := nb.RegisterMR(0, memSize, AccessRemoteWrite)
		if err != nil {
			t.Fatal(err)
		}
		qa, _ := na.CreateQP(QPConfig{SendRingOff: ringOff, SendSlots: ringSlots, SendCQ: na.CreateCQ(), RecvCQ: na.CreateCQ()})
		qb, _ := nb.CreateQP(QPConfig{SendRingOff: ringOff, SendSlots: ringSlots, SendCQ: nb.CreateCQ(), RecvCQ: nb.CreateCQ()})
		qa.Connect(qb)
		// Zeroed-state checks: any survivor here is a cross-trial leak.
		for _, q := range []*QP{qa, qb} {
			if q.lastArrival != 0 || q.wireTx != 0 || q.wireRx != 0 || q.epoch != 0 ||
				q.head != 0 || q.tail != 0 || q.pending.Len() != 0 || q.inbox.Len() != 0 {
				t.Fatalf("recycled QP not scrubbed: %s", q.DebugState())
			}
			if q.sendCQ.Total() != 0 || q.sendCQ.Depth() != 0 {
				t.Fatal("recycled CQ kept counters or entries")
			}
		}
		if na.Down() || nb.Down() {
			t.Fatal("down flag survived recycle")
		}
		var tr strings.Builder
		qa.SendCQ().SetDrainHandler(func(es []CQE) {
			for _, e := range es {
				fmt.Fprintf(&tr, "%d:%v@%v;", e.WRID, e.Status, e.At)
			}
		})
		k.Spawn("client", func(f *sim.Fiber) {
			for i := 0; i < 20; i++ {
				_ = na.Memory().Write(bufA, []byte{byte(i)})
				if _, err := qa.PostSend(WQE{
					Opcode: OpWrite, Flags: FlagSignaled, WRID: uint64(i),
					Local: bufA, Len: 1, Remote: bufB, Aux1: mrb.RKey,
				}); err != nil {
					t.Error(err)
				}
				f.Sleep(2 * sim.Microsecond)
			}
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		// Dirty the engines beyond the clean end state: an op left on the
		// wire (pending window non-empty, ack timer armed) and a down NIC.
		if _, err := qa.PostSend(WQE{
			Opcode: OpWrite, Flags: FlagSignaled, WRID: 99,
			Local: bufA, Len: 1, Remote: bufB, Aux1: mrb.RKey,
		}); err != nil {
			t.Fatal(err)
		}
		_ = k.RunUntil(k.Now().Add(200 * sim.Nanosecond))
		nb.SetDown(true)
		return tr.String(), [2]*QP{qa, qb}
	}

	k1 := sim.NewKernel(9)
	fab := NewFabric(k1, DefaultConfig())
	tr1, qps1 := workload(fab, k1)

	k2 := sim.NewKernel(9)
	fab.Reset(k2, DefaultConfig())
	tr2, qps2 := workload(fab, k2)

	if tr1 != tr2 {
		t.Fatalf("recycled fabric diverged from first run:\n%s\nvs\n%s", tr1, tr2)
	}
	reused := 0
	for _, q1 := range qps1 {
		for _, q2 := range qps2 {
			if q1 == q2 {
				reused++
			}
		}
	}
	if reused != 2 {
		t.Fatalf("want both QP structs reused via the free list, got %d", reused)
	}

	k3 := sim.NewKernel(9)
	tr3, _ := workload(NewFabric(k3, DefaultConfig()), k3)
	if tr1 != tr3 {
		t.Fatalf("pooled run diverged from fresh fabric:\n%s\nvs\n%s", tr1, tr3)
	}
}

// TestResetClearsFaultPlan: a pooled fabric must not leak one trial's
// fault plan (rules, RNG, counters) into the next trial.
func TestResetClearsFaultPlan(t *testing.T) {
	k := sim.NewKernel(2)
	fab := NewFabric(k, DefaultConfig())
	mustInstall(t, fab, &FaultPlan{Links: []LinkFault{{DropProb: 1}}})
	if fab.linkFault("a", "b") == nil {
		t.Fatal("plan not installed")
	}
	k2 := sim.NewKernel(2)
	fab.Reset(k2, DefaultConfig())
	if fab.linkFault("a", "b") != nil {
		t.Fatal("link rules survived Reset")
	}
	if fab.faultRNG != nil {
		t.Fatal("fault RNG survived Reset")
	}
	if fab.FaultStats() != (FaultStats{}) {
		t.Fatal("fault counters survived Reset")
	}
}
