package rdma

import (
	"bytes"
	"encoding/binary"
	"testing"
	"testing/quick"

	"hyperloop/internal/nvm"
	"hyperloop/internal/sim"
)

// testPair wires two hosts with one QP each and returns everything a test
// needs. Ring and buffer layout per host:
//
//	[0, 64*32)      send WQE ring (32 slots)
//	[4096, 8192)    scratch buffer A
//	[8192, 12288)   scratch buffer B
const (
	ringOff   = 0
	ringSlots = 32
	bufA      = 4096
	bufB      = 8192
	memSize   = 1 << 16
)

type testPair struct {
	k        *sim.Kernel
	fab      *Fabric
	na, nb   *NIC
	qa, qb   *QP
	mra, mrb *MemoryRegion
}

func newTestPair(t *testing.T) *testPair {
	t.Helper()
	k := sim.NewKernel(1)
	fab := NewFabric(k, DefaultConfig())
	da := nvm.NewDevice("a", memSize)
	db := nvm.NewDevice("b", memSize)
	na, err := fab.AddNIC("a", da)
	if err != nil {
		t.Fatal(err)
	}
	nb, err := fab.AddNIC("b", db)
	if err != nil {
		t.Fatal(err)
	}
	mra, err := na.RegisterMR(0, memSize, AccessLocalWrite|AccessRemoteRead|AccessRemoteWrite|AccessRemoteAtomic)
	if err != nil {
		t.Fatal(err)
	}
	mrb, err := nb.RegisterMR(0, memSize, AccessLocalWrite|AccessRemoteRead|AccessRemoteWrite|AccessRemoteAtomic)
	if err != nil {
		t.Fatal(err)
	}
	qa, err := na.CreateQP(QPConfig{SendRingOff: ringOff, SendSlots: ringSlots, SendCQ: na.CreateCQ(), RecvCQ: na.CreateCQ()})
	if err != nil {
		t.Fatal(err)
	}
	qb, err := nb.CreateQP(QPConfig{SendRingOff: ringOff, SendSlots: ringSlots, SendCQ: nb.CreateCQ(), RecvCQ: nb.CreateCQ()})
	if err != nil {
		t.Fatal(err)
	}
	qa.Connect(qb)
	return &testPair{k: k, fab: fab, na: na, nb: nb, qa: qa, qb: qb, mra: mra, mrb: mrb}
}

func (p *testPair) run(t *testing.T) {
	t.Helper()
	if err := p.k.Run(); err != nil {
		t.Fatalf("kernel run: %v", err)
	}
}

func TestWQEEncodeDecodeRoundTrip(t *testing.T) {
	f := func(op uint8, flags uint8, imm uint32, local, length, remote, cmp, swap uint64, a1, a2 uint32, wrid uint64) bool {
		w := WQE{
			Opcode: Opcode(op%9 + 1), Flags: flags, Imm: imm,
			Local: local, Len: length, Remote: remote,
			Compare: cmp, Swap: swap, Aux1: a1, Aux2: a2, WRID: wrid,
		}
		var buf [WQESize]byte
		if err := w.Encode(buf[:]); err != nil {
			return false
		}
		got, err := DecodeWQE(buf[:])
		return err == nil && got == w
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestWQEBufferTooSmall(t *testing.T) {
	w := WQE{Opcode: OpNop}
	if err := w.Encode(make([]byte, 10)); err == nil {
		t.Fatal("expected encode error")
	}
	if _, err := DecodeWQE(make([]byte, 10)); err == nil {
		t.Fatal("expected decode error")
	}
	if err := w.EncodeDesc(make([]byte, 3)); err == nil {
		t.Fatal("expected desc encode error")
	}
}

func TestSlotAddrWraps(t *testing.T) {
	if SlotAddr(100, 4, 5) != 100+1*WQESize {
		t.Fatalf("SlotAddr wrap wrong: %d", SlotAddr(100, 4, 5))
	}
	if DescAddr(0, 8, 2) != 2*WQESize+wqeDescOff {
		t.Fatalf("DescAddr wrong")
	}
}

func TestOpcodeStatusStrings(t *testing.T) {
	ops := []Opcode{OpNop, OpSend, OpRecv, OpWrite, OpWriteImm, OpRead, OpCAS, OpWait, OpMemcpy, OpFlush, Opcode(99)}
	for _, o := range ops {
		if o.String() == "" {
			t.Fatalf("empty opcode string for %d", uint8(o))
		}
	}
	for _, s := range []Status{StatusSuccess, StatusRemoteAccessError, StatusLocalError, StatusFlushed, Status(42)} {
		if s.String() == "" {
			t.Fatal("empty status string")
		}
	}
}

func TestRDMAWriteDeliversData(t *testing.T) {
	p := newTestPair(t)
	data := []byte("replicate me to host b, please")
	if err := p.na.Memory().Write(bufA, data); err != nil {
		t.Fatal(err)
	}
	if _, err := p.qa.PostSend(WQE{
		Opcode: OpWrite, Flags: FlagSignaled,
		Local: bufA, Len: uint64(len(data)), Remote: bufB, Aux1: p.mrb.RKey, WRID: 7,
	}); err != nil {
		t.Fatal(err)
	}
	p.run(t)
	got := make([]byte, len(data))
	if err := p.nb.Memory().Read(bufB, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("remote memory = %q, want %q", got, data)
	}
	cqes := p.qa.SendCQ().Poll(10)
	if len(cqes) != 1 || cqes[0].Status != StatusSuccess || cqes[0].WRID != 7 {
		t.Fatalf("cqes = %+v", cqes)
	}
	if cqes[0].At <= 0 {
		t.Fatal("completion at time zero — no latency modelled")
	}
}

func TestRDMAWriteIsNotDurableUntilFlush(t *testing.T) {
	p := newTestPair(t)
	data := []byte("volatile until flushed")
	_ = p.na.Memory().Write(bufA, data)
	if _, err := p.qa.PostSend(WQE{
		Opcode: OpWrite, Flags: FlagSignaled,
		Local: bufA, Len: uint64(len(data)), Remote: bufB, Aux1: p.mrb.RKey,
	}); err != nil {
		t.Fatal(err)
	}
	p.run(t)
	durable := make([]byte, len(data))
	_ = p.nb.Memory().ReadDurable(bufB, durable)
	if bytes.Equal(durable, data) {
		t.Fatal("RDMA WRITE became durable without a flush")
	}

	// Now issue an RDMA FLUSH (the 0-byte READ trick) and re-check.
	if _, err := p.qa.PostSend(WQE{
		Opcode: OpFlush, Flags: FlagSignaled, Remote: bufB, Len: 0, Aux1: p.mrb.RKey,
	}); err != nil {
		t.Fatal(err)
	}
	p.run(t)
	_ = p.nb.Memory().ReadDurable(bufB, durable)
	if !bytes.Equal(durable, data) {
		t.Fatal("flush did not persist RDMA WRITE data")
	}
}

func TestRDMAReadFetchesRemote(t *testing.T) {
	p := newTestPair(t)
	data := []byte("remote bytes to fetch")
	_ = p.nb.Memory().Write(bufB, data)
	if _, err := p.qa.PostSend(WQE{
		Opcode: OpRead, Flags: FlagSignaled,
		Local: bufA, Len: uint64(len(data)), Remote: bufB, Aux1: p.mrb.RKey,
	}); err != nil {
		t.Fatal(err)
	}
	p.run(t)
	got := make([]byte, len(data))
	_ = p.na.Memory().Read(bufA, got)
	if !bytes.Equal(got, data) {
		t.Fatalf("read back %q, want %q", got, data)
	}
}

func TestSendConsumesRecvAndScatters(t *testing.T) {
	p := newTestPair(t)
	// Scatter a 12-byte message across two SGEs on host b.
	p.qb.PostRecv(RecvWQE{WRID: 9, SGEs: []SGE{{Addr: bufB, Len: 4}, {Addr: bufB + 100, Len: 100}}})
	msg := []byte("head|tail+++")
	_ = p.na.Memory().Write(bufA, msg)
	if _, err := p.qa.PostSend(WQE{
		Opcode: OpSend, Flags: FlagSignaled, Local: bufA, Len: uint64(len(msg)),
	}); err != nil {
		t.Fatal(err)
	}
	p.run(t)
	head := make([]byte, 4)
	tail := make([]byte, 8)
	_ = p.nb.Memory().Read(bufB, head)
	_ = p.nb.Memory().Read(bufB+100, tail)
	if string(head) != "head" || string(tail) != "|tail+++" {
		t.Fatalf("scatter wrong: %q %q", head, tail)
	}
	cqes := p.qb.RecvCQ().Poll(10)
	if len(cqes) != 1 || cqes[0].WRID != 9 || cqes[0].ByteLen != len(msg) {
		t.Fatalf("recv cqes = %+v", cqes)
	}
	if p.qb.RecvDepth() != 0 {
		t.Fatal("recv not consumed")
	}
}

func TestSendRNRRetries(t *testing.T) {
	p := newTestPair(t)
	msg := []byte("late receiver")
	_ = p.na.Memory().Write(bufA, msg)
	if _, err := p.qa.PostSend(WQE{Opcode: OpSend, Flags: FlagSignaled, Local: bufA, Len: uint64(len(msg))}); err != nil {
		t.Fatal(err)
	}
	// Post the receive only after the message has arrived and hit RNR.
	p.k.After(50*sim.Microsecond, func() {
		p.qb.PostRecv(RecvWQE{WRID: 1, SGEs: []SGE{{Addr: bufB, Len: 64}}})
	})
	p.run(t)
	if got := p.qb.RecvCQ().Total(); got != 1 {
		t.Fatalf("recv completions = %d, want 1 (RNR retry failed)", got)
	}
}

func TestWriteWithImmNotifiesReceiver(t *testing.T) {
	p := newTestPair(t)
	p.qb.PostRecv(RecvWQE{WRID: 5})
	data := []byte("ack payload")
	_ = p.na.Memory().Write(bufA, data)
	if _, err := p.qa.PostSend(WQE{
		Opcode: OpWriteImm, Flags: FlagSignaled, Imm: 0xBEEF,
		Local: bufA, Len: uint64(len(data)), Remote: bufB, Aux1: p.mrb.RKey,
	}); err != nil {
		t.Fatal(err)
	}
	p.run(t)
	got := make([]byte, len(data))
	_ = p.nb.Memory().Read(bufB, got)
	if !bytes.Equal(got, data) {
		t.Fatal("imm write payload missing")
	}
	cqes := p.qb.RecvCQ().Poll(1)
	if len(cqes) != 1 || cqes[0].Imm != 0xBEEF || cqes[0].WRID != 5 {
		t.Fatalf("imm cqe = %+v", cqes)
	}
}

func TestCASSwapsAndReturnsOriginal(t *testing.T) {
	p := newTestPair(t)
	var init [8]byte
	binary.LittleEndian.PutUint64(init[:], 111)
	_ = p.nb.Memory().Write(bufB, init[:])

	post := func(compare, swap uint64) {
		t.Helper()
		if _, err := p.qa.PostSend(WQE{
			Opcode: OpCAS, Flags: FlagSignaled,
			Local: bufA, Remote: bufB, Aux1: p.mrb.RKey, Compare: compare, Swap: swap,
		}); err != nil {
			t.Fatal(err)
		}
		p.run(t)
	}

	post(111, 222) // matches: swap happens
	cur, _ := p.nb.Memory().Slice(bufB, 8)
	if binary.LittleEndian.Uint64(cur) != 222 {
		t.Fatalf("CAS did not swap: %d", binary.LittleEndian.Uint64(cur))
	}
	orig, _ := p.na.Memory().Slice(bufA, 8)
	if binary.LittleEndian.Uint64(orig) != 111 {
		t.Fatalf("CAS original = %d, want 111", binary.LittleEndian.Uint64(orig))
	}

	post(999, 333) // mismatch: no swap, returns current value
	cur, _ = p.nb.Memory().Slice(bufB, 8)
	if binary.LittleEndian.Uint64(cur) != 222 {
		t.Fatal("CAS swapped on mismatch")
	}
	orig, _ = p.na.Memory().Slice(bufA, 8)
	if binary.LittleEndian.Uint64(orig) != 222 {
		t.Fatalf("CAS mismatch original = %d, want 222", binary.LittleEndian.Uint64(orig))
	}
}

func TestMemcpyLocal(t *testing.T) {
	p := newTestPair(t)
	data := []byte("copy within one host's NVM")
	_ = p.na.Memory().Write(bufA, data)
	if _, err := p.qa.PostSend(WQE{
		Opcode: OpMemcpy, Flags: FlagSignaled,
		Local: bufA, Len: uint64(len(data)), Remote: bufA + 1000,
	}); err != nil {
		t.Fatal(err)
	}
	p.run(t)
	got := make([]byte, len(data))
	_ = p.na.Memory().Read(bufA+1000, got)
	if !bytes.Equal(got, data) {
		t.Fatalf("memcpy = %q", got)
	}
}

func TestRemoteAccessViolationsError(t *testing.T) {
	k := sim.NewKernel(1)
	fab := NewFabric(k, DefaultConfig())
	na, _ := fab.AddNIC("a", nvm.NewDevice("a", memSize))
	nb, _ := fab.AddNIC("b", nvm.NewDevice("b", memSize))
	// Register only a narrow, read-only window on b.
	mrb, err := nb.RegisterMR(bufB, 128, AccessRemoteRead)
	if err != nil {
		t.Fatal(err)
	}
	qa, _ := na.CreateQP(QPConfig{SendRingOff: ringOff, SendSlots: ringSlots, SendCQ: na.CreateCQ(), RecvCQ: na.CreateCQ()})
	qb, _ := nb.CreateQP(QPConfig{SendRingOff: ringOff, SendSlots: ringSlots, SendCQ: nb.CreateCQ(), RecvCQ: nb.CreateCQ()})
	qa.Connect(qb)

	cases := []WQE{
		// Write to read-only MR.
		{Opcode: OpWrite, Flags: FlagSignaled, Local: bufA, Len: 8, Remote: bufB, Aux1: mrb.RKey},
		// Read outside the window.
		{Opcode: OpRead, Flags: FlagSignaled, Local: bufA, Len: 8, Remote: bufB + 1000, Aux1: mrb.RKey},
		// Unknown rkey.
		{Opcode: OpRead, Flags: FlagSignaled, Local: bufA, Len: 8, Remote: bufB, Aux1: 999},
		// CAS without atomic rights.
		{Opcode: OpCAS, Flags: FlagSignaled, Local: bufA, Remote: bufB, Aux1: mrb.RKey},
	}
	for i, w := range cases {
		if _, err := qa.PostSend(w); err != nil {
			t.Fatal(err)
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		cqes := qa.SendCQ().Poll(1)
		if len(cqes) != 1 || cqes[0].Status != StatusRemoteAccessError {
			t.Fatalf("case %d: cqes = %+v, want remote access error", i, cqes)
		}
	}
}

func TestWaitBlocksUntilCompletionThenEnables(t *testing.T) {
	p := newTestPair(t)
	// On host b, pre-post (deferred) a WRITE back to host a, gated by a
	// WAIT on b's recv CQ — a one-hop HyperLoop forwarding chain.
	reply := []byte("auto-forwarded by NIC")
	_ = p.nb.Memory().Write(bufB+500, reply)
	if _, err := p.qb.PostSend(WQE{
		Opcode: OpWait, Flags: FlagOwned, Imm: 1, Aux1: p.qb.RecvCQ().CQN(), Aux2: 1,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.qb.PostSendDeferred(WQE{
		Opcode: OpWrite, Flags: FlagSignaled,
		Local: bufB + 500, Len: uint64(len(reply)), Remote: bufA + 500, Aux1: p.mra.RKey,
	}); err != nil {
		t.Fatal(err)
	}
	p.qb.Doorbell()
	// Run: nothing should fire yet (no completion on b's recv CQ).
	p.run(t)
	got := make([]byte, len(reply))
	_ = p.na.Memory().Read(bufA+500, got)
	if bytes.Equal(got, reply) {
		t.Fatal("WAIT-gated WQE executed before trigger")
	}

	// Now send a message from a to b; its recv completion must trigger
	// the WAIT, enabling the WRITE that flows back to a.
	p.qb.PostRecv(RecvWQE{WRID: 1, SGEs: []SGE{{Addr: bufB + 600, Len: 64}}})
	_ = p.na.Memory().Write(bufA+600, []byte("trigger"))
	if _, err := p.qa.PostSend(WQE{Opcode: OpSend, Local: bufA + 600, Len: 7}); err != nil {
		t.Fatal(err)
	}
	p.run(t)
	_ = p.na.Memory().Read(bufA+500, got)
	if !bytes.Equal(got, reply) {
		t.Fatalf("WAIT chain did not forward: %q", got)
	}
}

func TestDeferredWQEStallsQueue(t *testing.T) {
	p := newTestPair(t)
	_ = p.na.Memory().Write(bufA, []byte{1, 2, 3, 4})
	seq, err := p.qa.PostSendDeferred(WQE{
		Opcode: OpWrite, Flags: FlagSignaled, Local: bufA, Len: 4, Remote: bufB, Aux1: p.mrb.RKey,
	})
	if err != nil {
		t.Fatal(err)
	}
	p.qa.Doorbell()
	p.run(t)
	if p.qa.SendCQ().Total() != 0 {
		t.Fatal("deferred WQE executed without ownership")
	}
	if err := p.qa.GrantOwnership(seq); err != nil {
		t.Fatal(err)
	}
	p.run(t)
	if p.qa.SendCQ().Total() != 1 {
		t.Fatal("granted WQE did not execute")
	}
}

func TestPatchDescriptorRetargetsWQE(t *testing.T) {
	p := newTestPair(t)
	_ = p.na.Memory().Write(bufA+64, []byte("patched payload"))
	seq, err := p.qa.PostSendDeferred(WQE{
		Opcode: OpWrite, Flags: FlagSignaled, Local: bufA, Len: 4, Remote: bufB, Aux1: p.mrb.RKey,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Rewrite the descriptor before granting ownership.
	if err := p.qa.PatchDescriptor(seq, WQE{
		Opcode: OpWrite, Flags: FlagSignaled,
		Local: bufA + 64, Len: 15, Remote: bufB + 64, Aux1: p.mrb.RKey,
	}); err != nil {
		t.Fatal(err)
	}
	if err := p.qa.GrantOwnership(seq); err != nil {
		t.Fatal(err)
	}
	p.run(t)
	got := make([]byte, 15)
	_ = p.nb.Memory().Read(bufB+64, got)
	if string(got) != "patched payload" {
		t.Fatalf("patched WQE wrote %q", got)
	}
}

func TestSendQueueFull(t *testing.T) {
	p := newTestPair(t)
	for i := 0; i < ringSlots; i++ {
		if _, err := p.qb.PostSendDeferred(WQE{Opcode: OpNop}); err != nil {
			t.Fatalf("post %d: %v", i, err)
		}
	}
	if _, err := p.qb.PostSendDeferred(WQE{Opcode: OpNop}); err != ErrSendQueueFull {
		t.Fatalf("err = %v, want ErrSendQueueFull", err)
	}
}

func TestRingWrapsAcrossManyOps(t *testing.T) {
	p := newTestPair(t)
	const ops = ringSlots * 3
	done := 0
	p.k.Spawn("driver", func(f *sim.Fiber) {
		for i := 0; i < ops; i++ {
			var data [8]byte
			binary.LittleEndian.PutUint64(data[:], uint64(i))
			if err := p.na.Memory().Write(bufA+8*i, data[:]); err != nil {
				t.Errorf("write %d: %v", i, err)
			}
			sig := sim.NewSignal()
			p.qa.SendCQ().SetHandler(func(e CQE) {
				if e.Status != StatusSuccess {
					t.Errorf("op failed: %+v", e)
				}
				done++
				sig.Fire(nil)
			})
			if _, err := p.qa.PostSend(WQE{
				Opcode: OpWrite, Flags: FlagSignaled, Local: uint64(bufA + 8*i), Len: 8,
				Remote: uint64(bufB + 8*i), Aux1: p.mrb.RKey,
			}); err != nil {
				t.Errorf("post %d: %v", i, err)
				return
			}
			if err := f.Await(sig); err != nil {
				t.Errorf("await %d: %v", i, err)
			}
		}
	})
	p.run(t)
	if done != ops {
		t.Fatalf("completed %d ops, want %d", done, ops)
	}
	for i := 0; i < ops; i++ {
		b, _ := p.nb.Memory().Slice(bufB+8*i, 8)
		if binary.LittleEndian.Uint64(b) != uint64(i) {
			t.Fatalf("op %d payload wrong", i)
		}
	}
}

func TestFIFOOrderingWriteThenSend(t *testing.T) {
	// A WRITE posted before a SEND on the same QP must land first, even
	// with jitter — the invariant HyperLoop's WAIT chains depend on.
	for seed := uint64(1); seed <= 20; seed++ {
		k := sim.NewKernel(seed)
		cfg := DefaultConfig()
		cfg.JitterFrac = 0.5 // aggressive jitter to provoke reordering bugs
		fab := NewFabric(k, cfg)
		na, _ := fab.AddNIC("a", nvm.NewDevice("a", memSize))
		nb, _ := fab.AddNIC("b", nvm.NewDevice("b", memSize))
		mrb, _ := nb.RegisterMR(0, memSize, AccessRemoteWrite)
		qa, _ := na.CreateQP(QPConfig{SendRingOff: ringOff, SendSlots: ringSlots, SendCQ: na.CreateCQ(), RecvCQ: na.CreateCQ()})
		qb, _ := nb.CreateQP(QPConfig{SendRingOff: ringOff, SendSlots: ringSlots, SendCQ: nb.CreateCQ(), RecvCQ: nb.CreateCQ()})
		qa.Connect(qb)

		var sawDataAtRecv bool
		qb.RecvCQ().SetHandler(func(e CQE) {
			b, _ := nb.Memory().Slice(bufB, 4)
			sawDataAtRecv = string(b) == "DATA"
		})
		qb.PostRecv(RecvWQE{SGEs: []SGE{{Addr: bufB + 100, Len: 16}}})
		_ = na.Memory().Write(bufA, []byte("DATA"))
		// Large WRITE then tiny SEND: jitter would reorder if unclamped.
		if _, err := qa.PostSend(WQE{Opcode: OpWrite, Local: bufA, Len: 4, Remote: bufB, Aux1: mrb.RKey}); err != nil {
			t.Fatal(err)
		}
		if _, err := qa.PostSend(WQE{Opcode: OpSend, Local: bufA, Len: 1}); err != nil {
			t.Fatal(err)
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		if !sawDataAtRecv {
			t.Fatalf("seed %d: SEND overtook WRITE", seed)
		}
	}
}

func TestDownNICDropsTraffic(t *testing.T) {
	p := newTestPair(t)
	p.nb.SetDown(true)
	var got []CQE
	p.qa.SendCQ().SetDrainHandler(func(es []CQE) { got = append(got, es...) })
	_ = p.na.Memory().Write(bufA, []byte{1})
	if _, err := p.qa.PostSend(WQE{
		Opcode: OpWrite, Flags: FlagSignaled, Local: bufA, Len: 1, Remote: bufB, Aux1: p.mrb.RKey,
	}); err != nil {
		t.Fatal(err)
	}
	p.run(t)
	// The message is lost, but the sender is not hung: the ack timeout
	// surfaces exactly one error completion.
	if len(got) != 1 {
		t.Fatalf("want 1 completion, got %d", len(got))
	}
	if got[0].Status != StatusTimeout {
		t.Fatalf("want TIMEOUT completion, got %v", got[0].Status)
	}
	if deadline := sim.Time(0).Add(p.fab.Config().AckTimeout); got[0].At < deadline {
		t.Fatalf("completion at %v, before the ack deadline %v", got[0].At, deadline)
	}
	if !p.nb.Down() {
		t.Fatal("down flag lost")
	}
}

func TestMRRegistrationBounds(t *testing.T) {
	k := sim.NewKernel(1)
	fab := NewFabric(k, DefaultConfig())
	n, _ := fab.AddNIC("x", nvm.NewDevice("x", 1024))
	if _, err := n.RegisterMR(512, 1024, AccessRemoteRead); err == nil {
		t.Fatal("oversized MR registered")
	}
	if _, err := n.CreateQP(QPConfig{SendRingOff: 0, SendSlots: 100, SendCQ: n.CreateCQ(), RecvCQ: n.CreateCQ()}); err == nil {
		t.Fatal("oversized ring accepted")
	}
	if _, err := n.CreateQP(QPConfig{SendRingOff: 0, SendSlots: 0, SendCQ: n.CreateCQ(), RecvCQ: n.CreateCQ()}); err == nil {
		t.Fatal("zero-slot ring accepted")
	}
	if _, err := n.CreateQP(QPConfig{SendRingOff: 0, SendSlots: 1}); err == nil {
		t.Fatal("QP without CQs accepted")
	}
	if _, err := fab.AddNIC("x", nvm.NewDevice("y", 64)); err == nil {
		t.Fatal("duplicate NIC accepted")
	}
}

func TestCQPolling(t *testing.T) {
	p := newTestPair(t)
	for i := 0; i < 3; i++ {
		if _, err := p.qa.PostSend(WQE{Opcode: OpNop, Flags: FlagSignaled, WRID: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	p.run(t)
	cq := p.qa.SendCQ()
	if cq.Depth() != 3 {
		t.Fatalf("depth = %d", cq.Depth())
	}
	first := cq.Poll(2)
	if len(first) != 2 || first[0].WRID != 0 || first[1].WRID != 1 {
		t.Fatalf("poll = %+v", first)
	}
	rest := cq.Poll(10)
	if len(rest) != 1 || rest[0].WRID != 2 {
		t.Fatalf("poll rest = %+v", rest)
	}
	if cq.Poll(0) != nil || cq.Poll(5) != nil {
		t.Fatal("poll on empty CQ returned entries")
	}
}

func TestFabricStats(t *testing.T) {
	p := newTestPair(t)
	_ = p.na.Memory().Write(bufA, make([]byte, 1024))
	if _, err := p.qa.PostSend(WQE{
		Opcode: OpWrite, Flags: FlagSignaled, Local: bufA, Len: 1024, Remote: bufB, Aux1: p.mrb.RKey,
	}); err != nil {
		t.Fatal(err)
	}
	p.run(t)
	msgs, wire := p.fab.Stats()
	if msgs < 2 { // write + ack
		t.Fatalf("messages = %d", msgs)
	}
	if wire < 1024 {
		t.Fatalf("wire bytes = %d", wire)
	}
	wqes, tx := p.na.Stats()
	if wqes < 1 || tx < 1024 {
		t.Fatalf("nic stats = %d, %d", wqes, tx)
	}
}

func TestLatencyScalesWithMessageSize(t *testing.T) {
	measure := func(size int) sim.Duration {
		p := newTestPair(t)
		_ = p.na.Memory().Write(bufA, make([]byte, size))
		var done sim.Time
		p.qa.SendCQ().SetHandler(func(e CQE) { done = e.At })
		if _, err := p.qa.PostSend(WQE{
			Opcode: OpWrite, Flags: FlagSignaled, Local: bufA, Len: uint64(size), Remote: bufB, Aux1: p.mrb.RKey,
		}); err != nil {
			t.Fatal(err)
		}
		p.run(t)
		return sim.Duration(done)
	}
	small := measure(128)
	large := measure(8192)
	if small <= 0 || large <= small {
		t.Fatalf("latency not size-dependent: 128B=%v 8KB=%v", small, large)
	}
	if large > 100*sim.Microsecond {
		t.Fatalf("8KB write latency implausible: %v", large)
	}
}
