package rdma

import (
	"encoding/binary"
	"fmt"

	"hyperloop/internal/ring"
	"hyperloop/internal/sim"
)

// SGE is a scatter/gather element of a receive work request. HyperLoop's
// remote work-request manipulation relies on receive scatter lists whose
// elements point *into* pre-posted WQE slots, so an arriving metadata SEND
// directly rewrites the descriptors of the operations that will forward it.
type SGE struct {
	Addr uint64
	Len  uint64
}

// RecvWQE is a posted receive buffer (scatter list).
type RecvWQE struct {
	WRID uint64
	SGEs []SGE
}

func (r *RecvWQE) totalLen() uint64 {
	var n uint64
	for _, s := range r.SGEs {
		n += s.Len
	}
	return n
}

// inKind distinguishes inbound message types.
type inKind uint8

const (
	inSend inKind = iota + 1
	inWrite
	inWriteImm
	inRead
	inFlush
	inCAS
)

// inMsg is a transport message queued at the responder QP. Messages are
// processed strictly in arrival order; an RNR (no posted receive) blocks
// the queue and retries, preserving reliable-connection ordering.
type inMsg struct {
	kind    inKind
	payload []byte
	addr    uint64
	length  uint64
	rkey    uint32
	imm     uint32
	compare uint64
	swap    uint64

	// Reply routing: the requester QP, its epoch at issue time, and the op
	// sequence the response must echo. Plain fields instead of a reply
	// closure keep the datapath allocation-free (see finishInbox).
	src    *QP
	srcEp  uint64
	srcSeq uint64
}

// pendingOp tracks an issued remote operation awaiting its ACK/response.
// at is the issue instant; the ack-timeout deadline for the QP is always
// the oldest pending op's at plus Config.AckTimeout. seq is the op's
// position in the QP's request stream — replies echo it, so a reply
// arriving for a later op proves every earlier pending op's request (or
// ack) was lost and fails them immediately instead of waiting out the
// timeout (see handleAck).
type pendingOp struct {
	wqe WQE
	at  sim.Time
	seq uint64
}

// QP is a reliable-connected queue pair. Its send queue is a ring of
// binary WQE slots in host memory; the engine walks the ring in order,
// stalling at WQEs whose ownership has not been granted — the hook that
// lets HyperLoop pre-post operation chains and have WAIT WQEs enable them.
type QP struct {
	nic       *NIC
	qpn       uint32
	ringOff   uint64
	ringSlots int
	sendCQ    *CQ
	recvCQ    *CQ
	peer      *QP

	head uint64 // next slot sequence to execute
	tail uint64 // next slot sequence to post

	// FIFO queues are ring buffers: reliable-connection ordering pops
	// strictly from the front, and a slice-shift pop would cost O(depth)
	// per message on deep windows.
	recvQueue ring.Ring[RecvWQE]
	inbox     ring.Ring[inMsg]
	pending   ring.Ring[pendingOp]

	pumpScheduled bool
	pumpBusy      bool
	inboxBusy     bool
	rnrWaiting    bool
	dead          bool // destroyed; see Destroy

	lastArrival sim.Time // FIFO clamp for inbound delivery

	// Ack-timeout machinery: ackTimer tracks the transport deadline of the
	// oldest pending op (armed on issue, stopped/re-armed as ACKs arrive,
	// so it never fires — and never executes a kernel event — on a healthy
	// QP). epoch invalidates in-flight replies when the pending window is
	// flushed: a straggler ACK from before the flush must not complete an
	// op issued after it. wireTx/wireRx number delivered wire messages per
	// direction so injected duplicates are suppressed exactly once.
	ackTimer sim.Timer
	ackArmed bool
	ackFn    func()
	epoch    uint64
	opTx     uint64
	wireTx   uint64
	wireRx   uint64

	// Cached callbacks: the engine schedules these thousands of times per
	// simulated op, so they are allocated once per QP, with the pending
	// state (inSrc/inSt/inResp) carried on the struct. Each has at most
	// one outstanding invocation (guarded by pumpBusy / inboxBusy /
	// rnrWaiting), so the shared state cannot be clobbered.
	pumpFn       func()
	pumpResumeFn func()
	inboxFn      func()
	inboxDoneFn  func()
	rnrRetryFn   func()

	inSrc  *QP // requester awaiting the in-flight inbound message's reply
	inEp   uint64
	inSeq  uint64
	inSt   Status
	inResp []byte
}

// initCallbacks builds the per-QP cached callbacks; called from CreateQP.
func (q *QP) initCallbacks() {
	q.pumpFn = q.pump
	q.pumpResumeFn = func() {
		q.pumpBusy = false
		q.pump()
	}
	q.inboxFn = q.processInbox
	q.inboxDoneFn = q.finishInbox
	q.rnrRetryFn = func() {
		q.rnrWaiting = false
		q.processInbox()
	}
	q.ackFn = q.ackExpire
}

// QPN returns the queue pair number.
func (q *QP) QPN() uint32 { return q.qpn }

// NIC returns the owning NIC.
func (q *QP) NIC() *NIC { return q.nic }

// SendCQ returns the send completion queue.
func (q *QP) SendCQ() *CQ { return q.sendCQ }

// RecvCQ returns the receive completion queue.
func (q *QP) RecvCQ() *CQ { return q.recvCQ }

// RingOff returns the host-memory offset of the send WQE ring.
func (q *QP) RingOff() uint64 { return q.ringOff }

// RingSlots returns the send ring capacity in WQE slots.
func (q *QP) RingSlots() int { return q.ringSlots }

// Connect pairs q with peer bidirectionally (reliable connection).
func (q *QP) Connect(peer *QP) {
	q.peer = peer
	peer.peer = q
}

// Peer returns the connected remote QP, or nil.
func (q *QP) Peer() *QP { return q.peer }

// ErrQPDestroyed is returned when posting to a destroyed queue pair.
var ErrQPDestroyed = fmt.Errorf("rdma: QP destroyed")

// Destroy removes the queue pair from service. A destroyed QP never
// touches its send ring again — its pump is inert, queued doorbells and
// parked CQ-waiter wakes become no-ops, posts fail with ErrQPDestroyed —
// and inbound wire messages addressed to it are dropped at delivery, the
// same way a down NIC loses them. Pending remote ops are abandoned
// without completions (the owner is expected to destroy the QP's CQs
// alongside it), the peer link is severed so the peer's subsequent sends
// fail locally instead of transmitting into a void, and the QPN is
// retired. Destroy is what makes re-allocating a QP's ring memory safe:
// an abandoned-but-live QP parked on a ring that a successor rewrites
// would otherwise wake, re-read the foreign WQEs, and race the successor
// for its own completions.
func (q *QP) Destroy() {
	if q.dead {
		return
	}
	q.dead = true
	q.stopAckTimer()
	q.epoch++ // straggler replies to abandoned pendings are discarded
	q.pending.Reset()
	q.recvQueue.Reset()
	for q.inbox.Len() > 0 {
		m := q.inbox.PopFront()
		q.nic.fabric.putBuf(m.payload)
	}
	if p := q.peer; p != nil {
		q.peer = nil
		if p.peer == q {
			p.peer = nil
		}
	}
	delete(q.nic.qps, q.qpn)
}

// Dead reports whether the QP has been destroyed.
func (q *QP) Dead() bool { return q.dead }

// ErrSendQueueFull is returned when posting would overrun un-executed WQEs.
var ErrSendQueueFull = fmt.Errorf("rdma: send queue full")

func (q *QP) writeSlot(seq uint64, w WQE) error {
	if q.tailDistance() >= q.ringSlots {
		return ErrSendQueueFull
	}
	var buf [WQESize]byte
	if err := w.Encode(buf[:]); err != nil {
		return err
	}
	addr := SlotAddr(q.ringOff, q.ringSlots, seq)
	return q.nic.mem.Write(int(addr), buf[:])
}

func (q *QP) tailDistance() int { return int(q.tail - q.head) }

// PostSend writes w at the ring tail with ownership granted and rings the
// doorbell. This is the conventional verbs path.
func (q *QP) PostSend(w WQE) (uint64, error) {
	if q.dead {
		return 0, ErrQPDestroyed
	}
	w.Flags |= FlagOwned
	seq := q.tail
	if err := q.writeSlot(seq, w); err != nil {
		return 0, err
	}
	q.tail++
	q.Doorbell()
	return seq, nil
}

// PostSendDeferred writes w at the ring tail *without* granting ownership:
// the NIC will stall at this WQE until a WAIT enables it or GrantOwnership
// is called. This is HyperLoop's modified-driver posting path (§4.1).
func (q *QP) PostSendDeferred(w WQE) (uint64, error) {
	if q.dead {
		return 0, ErrQPDestroyed
	}
	w.Flags &^= FlagOwned
	seq := q.tail
	if err := q.writeSlot(seq, w); err != nil {
		return 0, err
	}
	q.tail++
	return seq, nil
}

// GrantOwnership sets the owned flag on slot seq and rings the doorbell —
// the local (client-side) path for arming a previously deferred WQE after
// patching its descriptor.
func (q *QP) GrantOwnership(seq uint64) error {
	if q.dead {
		return ErrQPDestroyed
	}
	if err := q.setOwned(seq, true); err != nil {
		return err
	}
	q.Doorbell()
	return nil
}

func (q *QP) setOwned(seq uint64, owned bool) error {
	addr := int(SlotAddr(q.ringOff, q.ringSlots, seq)) + wqeOffFlags
	b, err := q.nic.mem.Slice(addr, 1)
	if err != nil {
		return err
	}
	flags := b[0]
	if owned {
		flags |= FlagOwned
	} else {
		flags &^= FlagOwned
	}
	return q.nic.mem.Write(addr, []byte{flags})
}

// PatchDescriptor overwrites the patchable descriptor fields of slot seq.
// Local equivalent of what a remote peer does with RDMA; used by the client
// to retarget its own pre-built WQEs.
func (q *QP) PatchDescriptor(seq uint64, w WQE) error {
	var desc [DescLen]byte
	if err := w.EncodeDesc(desc[:]); err != nil {
		return err
	}
	addr := DescAddr(q.ringOff, q.ringSlots, seq)
	return q.nic.mem.Write(int(addr), desc[:])
}

// PostRecv posts a receive scatter list. If a sender was blocked on
// receiver-not-ready, delivery resumes on the next simulation step — never
// synchronously inside the caller, which could otherwise observe its own
// half-finished setup (e.g. a receive posted before its WQE chains).
func (q *QP) PostRecv(r RecvWQE) {
	if q.dead {
		return
	}
	q.recvQueue.PushBack(r)
	if q.rnrWaiting {
		q.rnrWaiting = false
		q.nic.fabric.k.AfterFunc(0, q.inboxFn, nil)
	}
}

// RecvDepth returns the number of posted, unconsumed receives.
func (q *QP) RecvDepth() int { return q.recvQueue.Len() }

// Doorbell kicks the send engine.
func (q *QP) Doorbell() {
	if q.dead || q.pumpScheduled || q.pumpBusy {
		return
	}
	q.pumpScheduled = true
	q.nic.fabric.k.AfterFunc(0, q.pumpFn, nil)
}

// pump executes send WQEs in ring order until it stalls (un-owned WQE,
// unsatisfied WAIT) or goes busy on an occupancy delay.
func (q *QP) pump() {
	q.pumpScheduled = false
	if q.dead || q.pumpBusy || q.nic.down {
		return
	}
	slotAddr := int(SlotAddr(q.ringOff, q.ringSlots, q.head))
	buf, err := q.nic.mem.Slice(slotAddr, WQESize)
	if err != nil {
		return
	}
	w, err := DecodeWQE(buf)
	if err != nil || w.Flags&FlagOwned == 0 || w.Opcode == 0 {
		return // stall until doorbell / enable
	}
	if w.Opcode == OpWait {
		q.execWait(w)
		return
	}
	q.execute(w)
}

// execWait implements the CORE-Direct WAIT verb: block this send queue
// until the target CQ has Imm unconsumed completions, then enable the
// following Aux2 WQEs and advance.
func (q *QP) execWait(w WQE) {
	cq := q.nic.CQ(w.Aux1)
	if cq == nil {
		q.finishSlot(w, StatusLocalError, 0)
		return
	}
	// Unsatisfied WAITs park with a wake threshold: the CQ wakes this
	// send queue once per satisfied WAIT, not once per CQE. A threshold
	// can go stale when a competing WAIT consumes first; the re-executed
	// WAIT below simply re-parks with a corrected threshold, so staleness
	// costs one extra no-op pump, never correctness.
	if w.Flags&FlagWaitAbs != 0 {
		if cq.total < int64(w.Compare) {
			cq.subscribe(q.Doorbell, int64(w.Compare))
			return
		}
	} else {
		// Consuming WAITs burn successful completions only: an error CQE
		// (timeout/flush) means the gated work did NOT happen, and on real
		// hardware an errored WQE moves the QP to the error state rather
		// than silently satisfying a downstream wait. Counting errors here
		// let a crashed member's ack chain fire for a flush that never
		// executed — an acked durability contract with zero durable copies.
		need := int64(w.Imm)
		if need <= 0 {
			need = 1
		}
		if cq.okTotal-cq.waitConsumed < need {
			cq.subscribeOK(q.Doorbell, cq.waitConsumed+need)
			return
		}
		cq.waitConsumed += need
	}
	seq := q.head
	for j := uint32(1); j <= w.Aux2; j++ {
		_ = q.setOwned(seq+uint64(j), true)
	}
	q.nic.wqesExecuted++
	q.advance(w, q.nic.fabric.cfg.WQEProc)
}

// execute issues a non-WAIT WQE: it pays the engine occupancy (processing
// plus wire serialization for remote ops), advances the ring, and arranges
// completion when the ACK/response returns.
func (q *QP) execute(w WQE) {
	n := q.nic
	cfg := n.fabric.cfg
	n.wqesExecuted++

	switch w.Opcode {
	case OpNop:
		q.completeLocal(w, StatusSuccess)
		q.advance(w, cfg.WQEProc)

	case OpMemcpy:
		if w.Len > uint64(n.mem.Size()) {
			// Bounds-check before the scratch allocation: a malformed
			// length must fail like any other bad access, not size a buffer.
			q.completeLocal(w, StatusLocalError)
			q.advance(w, cfg.WQEProc)
			return
		}
		st := StatusSuccess
		data := n.fabric.getBuf(int(w.Len))
		if err := n.mem.Read(int(w.Local), data); err != nil {
			st = StatusLocalError
		} else if err := n.mem.Write(int(w.Remote), data); err != nil {
			st = StatusLocalError
		}
		n.fabric.putBuf(data)
		occ := cfg.WQEProc + sim.Duration(float64(w.Len)*8/cfg.MemCopyBps*1e9)
		q.completeAfter(w, st, occ)
		q.advance(w, occ)

	case OpSend, OpWrite, OpWriteImm:
		if q.peer == nil || w.Len > uint64(n.mem.Size()) {
			q.completeLocal(w, StatusLocalError)
			q.advance(w, cfg.WQEProc)
			return
		}
		payload := n.fabric.getBuf(int(w.Len))
		if err := n.mem.Read(int(w.Local), payload); err != nil {
			n.fabric.putBuf(payload)
			q.completeLocal(w, StatusLocalError)
			q.advance(w, cfg.WQEProc)
			return
		}
		kind := inSend
		switch w.Opcode {
		case OpWrite:
			kind = inWrite
		case OpWriteImm:
			kind = inWriteImm
		}
		q.issueRemote(w, inMsg{
			kind:    kind,
			payload: payload,
			addr:    w.Remote,
			length:  w.Len,
			rkey:    w.Aux1,
			imm:     w.Imm,
		}, len(payload))

	case OpRead:
		q.issueRemote(w, inMsg{
			kind:   inRead,
			addr:   w.Remote,
			length: w.Len,
			rkey:   w.Aux1,
		}, 0)

	case OpFlush:
		q.issueRemote(w, inMsg{
			kind:   inFlush,
			addr:   w.Remote,
			length: w.Len,
			rkey:   w.Aux1,
		}, 0)

	case OpCAS:
		q.issueRemote(w, inMsg{
			kind:    inCAS,
			addr:    w.Remote,
			length:  8,
			rkey:    w.Aux1,
			compare: w.Compare,
			swap:    w.Swap,
		}, 16)

	default:
		q.completeLocal(w, StatusLocalError)
		q.advance(w, cfg.WQEProc)
	}
}

// issueRemote transmits msg to the peer, registers the pending completion,
// and advances the ring after the engine occupancy. Response
// post-processing (READ/CAS results landing in requester memory) is
// dispatched from the stored WQE in completePending, so issuing an op
// allocates nothing.
func (q *QP) issueRemote(w WQE, msg inMsg, wireBytes int) {
	seq := q.opTx
	q.opTx++
	q.pending.PushBack(pendingOp{wqe: w, at: q.nic.fabric.k.Now(), seq: seq})
	if !q.ackArmed {
		q.armAckTimer()
	}
	msg.src, msg.srcEp, msg.srcSeq = q, q.epoch, seq
	q.nic.sendRequest(q.peer, wireBytes, msg)
	q.advance(w, q.nic.fabric.cfg.WQEProc+q.nic.fabric.xmitTime(wireBytes))
}

// completePending resolves one issued remote op with its response: a
// READ/CAS response payload (a pooled scratch buffer owned by handleAck)
// is copied into requester memory first, then the send completion is
// pushed with the resulting status.
func (q *QP) completePending(op pendingOp, st Status, payload []byte) {
	if st == StatusSuccess {
		switch op.wqe.Opcode {
		case OpRead:
			if err := q.nic.mem.Write(int(op.wqe.Local), payload); err != nil {
				st = StatusLocalError
			}
		case OpCAS:
			if len(payload) != 8 {
				st = StatusLocalError
			} else if err := q.nic.mem.Write(int(op.wqe.Local), payload); err != nil {
				st = StatusLocalError
			}
		}
	}
	q.pushSendCompletion(op.wqe, st, len(payload))
}

// armAckTimer (re)schedules the transport deadline for the oldest pending
// op. A timer that is stopped before firing never executes a kernel event
// and consumes no RNG, so on a healthy QP the ack timeout is invisible to
// event counts and ordering.
func (q *QP) armAckTimer() {
	d := q.nic.fabric.cfg.AckTimeout
	if d <= 0 || q.pending.Len() == 0 {
		return
	}
	q.ackArmed = true
	q.nic.fabric.k.AtFunc(q.pending.Front().at.Add(d), q.ackFn, &q.ackTimer)
}

func (q *QP) stopAckTimer() {
	if q.ackArmed {
		q.ackTimer.Stop()
		q.ackArmed = false
	}
}

// ackExpire fires when the oldest pending op outlived AckTimeout without
// a response: the peer crashed or the wire lost the request or its ACK.
func (q *QP) ackExpire() {
	q.ackArmed = false
	q.flushPending(StatusTimeout)
}

// flushPending fails every un-acked remote op — the expired head with
// first (StatusTimeout on an ack deadline), the rest with StatusFlushed,
// mirroring how a real RC QP enters the error state and flushes its send
// queue. Error completions are pushed even for unsignaled WQEs, so no
// requester fiber is left waiting. The epoch advances so straggler
// replies to the flushed ops are discarded on arrival. The QP itself
// stays usable (the simulation models transparent QP recovery): new ops
// issue normally and start a fresh pending window.
func (q *QP) flushPending(first Status) {
	q.stopAckTimer()
	if q.pending.Len() == 0 {
		return
	}
	q.epoch++
	st := first
	for q.pending.Len() > 0 {
		op := q.pending.PopFront()
		q.completePending(op, st, nil)
		st = StatusFlushed
	}
}

func (q *QP) handleAck(ep uint64, seq uint64, st Status, payload []byte) {
	if q.dead {
		return
	}
	if ep != q.epoch || q.pending.Len() == 0 {
		// Straggler response: the pending window was flushed (ack timeout)
		// after this reply was sent, or the QP was reset. Drop it, but
		// still recycle the scratch buffer it carried.
		q.nic.fabric.putBuf(payload)
		return
	}
	// A sequence gap proves every pending op older than this reply lost
	// its request (or its ack) on the wire: without the check, the reply
	// would pop the wrong pendingOp and report a vanished write as OK.
	// Fail the gapped ops now — faster and more precise than waiting out
	// their full timeout.
	for q.pending.Len() > 0 && q.pending.Front().seq < seq {
		op := q.pending.PopFront()
		q.completePending(op, StatusTimeout, nil)
	}
	if q.pending.Len() == 0 || q.pending.Front().seq != seq {
		// The op this reply answers was already resolved; drop it.
		q.nic.fabric.putBuf(payload)
		q.rearmOrStopAckTimer()
		return
	}
	op := q.pending.PopFront()
	q.completePending(op, st, payload)
	// Response payloads (READ/CAS results) are consumed by completePending;
	// recycle the scratch buffer.
	q.nic.fabric.putBuf(payload)
	q.rearmOrStopAckTimer()
}

// rearmOrStopAckTimer retracks the deadline after the pending front moved.
func (q *QP) rearmOrStopAckTimer() {
	if q.pending.Len() == 0 {
		q.stopAckTimer()
	} else {
		q.armAckTimer()
	}
}

// completeLocal pushes a send completion immediately (local-only ops).
func (q *QP) completeLocal(w WQE, st Status) {
	q.pushSendCompletion(w, st, int(w.Len))
}

// completeAfter pushes a send completion after a delay (local ops with
// duration, e.g. MEMCPY).
func (q *QP) completeAfter(w WQE, st Status, d sim.Duration) {
	q.nic.fabric.k.AfterFunc(d, func() {
		q.pushSendCompletion(w, st, int(w.Len))
	}, nil)
}

func (q *QP) pushSendCompletion(w WQE, st Status, n int) {
	if w.Flags&FlagSignaled == 0 && st == StatusSuccess {
		return
	}
	q.sendCQ.push(CQE{
		QPN: q.qpn, WRID: w.WRID, Op: w.Opcode, Status: st, Imm: w.Imm, ByteLen: n,
	})
}

// finishSlot completes a slot with an error without executing it.
func (q *QP) finishSlot(w WQE, st Status, n int) {
	q.pushSendCompletion(w, st, n)
	q.advance(w, q.nic.fabric.cfg.WQEProc)
}

// advance releases ownership of the head slot, moves past it and schedules
// the next pump after the occupancy delay.
func (q *QP) advance(_ WQE, occupancy sim.Duration) {
	_ = q.setOwned(q.head, false)
	q.head++
	q.pumpBusy = true
	q.nic.fabric.k.AfterFunc(occupancy, q.pumpResumeFn, nil)
}

// enqueueInbox receives a transport message at the responder.
func (q *QP) enqueueInbox(m inMsg) {
	q.inbox.PushBack(m)
	if !q.inboxBusy && !q.rnrWaiting {
		q.processInbox()
	}
}

// processInbox handles inbound messages in order, paying NIC processing
// cost per message. A SEND/WRITE_WITH_IMM with no posted receive blocks the
// queue (RNR) and retries.
func (q *QP) processInbox() {
	if q.inboxBusy || q.inbox.Len() == 0 || q.nic.down {
		// A down NIC leaves its inbox queued; SetDown(false) re-kicks it.
		return
	}
	m := q.inbox.Front()
	if (m.kind == inSend || m.kind == inWriteImm) && q.recvQueue.Len() == 0 {
		if !q.rnrWaiting {
			q.rnrWaiting = true
			q.nic.fabric.k.AfterFunc(q.nic.fabric.cfg.RNRRetryDelay, q.rnrRetryFn, nil)
		}
		return
	}
	q.inbox.PopFront()
	q.inboxBusy = true
	cfg := q.nic.fabric.cfg
	occ := cfg.WQEProc
	st, resp, extra := q.applyInbound(m)
	occ += extra
	// The request payload has been applied to memory; recycle it before the
	// occupancy delay so back-to-back messages reuse the same buffer.
	q.nic.fabric.putBuf(m.payload)
	q.inSrc, q.inEp, q.inSeq, q.inSt, q.inResp = m.src, m.srcEp, m.srcSeq, st, resp
	q.nic.fabric.k.AfterFunc(occ, q.inboxDoneFn, nil)
}

// finishInbox completes the in-flight inbound message after its occupancy
// delay: it sends the reply (if any) and resumes inbox processing.
func (q *QP) finishInbox() {
	q.inboxBusy = false
	src, ep, seq, st, resp := q.inSrc, q.inEp, q.inSeq, q.inSt, q.inResp
	q.inSrc, q.inResp = nil, nil
	if src != nil {
		// Responses travel the reverse direction with the same FIFO clamp.
		q.nic.sendAck(src, len(resp), ep, seq, st, resp)
	}
	q.processInbox()
}

// applyInbound performs the memory effect of an inbound message and
// returns the reply status/payload plus any extra processing delay.
func (q *QP) applyInbound(m inMsg) (Status, []byte, sim.Duration) {
	n := q.nic
	switch m.kind {
	case inWrite:
		if _, err := n.lookupMR(m.rkey, m.addr, uint64(len(m.payload)), AccessRemoteWrite); err != nil {
			return StatusRemoteAccessError, nil, 0
		}
		if err := n.mem.Write(int(m.addr), m.payload); err != nil {
			return StatusRemoteAccessError, nil, 0
		}
		return StatusSuccess, nil, 0

	case inWriteImm:
		if _, err := n.lookupMR(m.rkey, m.addr, uint64(len(m.payload)), AccessRemoteWrite); err != nil {
			return StatusRemoteAccessError, nil, 0
		}
		if err := n.mem.Write(int(m.addr), m.payload); err != nil {
			return StatusRemoteAccessError, nil, 0
		}
		r := q.popRecv()
		q.recvCQ.push(CQE{
			QPN: q.qpn, WRID: r.WRID, Op: OpWriteImm, Status: StatusSuccess,
			Imm: m.imm, ByteLen: len(m.payload),
		})
		return StatusSuccess, nil, 0

	case inSend:
		r := q.popRecv()
		if uint64(len(m.payload)) > r.totalLen() {
			q.recvCQ.push(CQE{
				QPN: q.qpn, WRID: r.WRID, Op: OpSend, Status: StatusLocalError,
				ByteLen: len(m.payload),
			})
			return StatusRemoteAccessError, nil, 0
		}
		rest := m.payload
		for _, sge := range r.SGEs {
			if len(rest) == 0 {
				break
			}
			chunk := rest
			if uint64(len(chunk)) > sge.Len {
				chunk = chunk[:sge.Len]
			}
			if err := n.mem.Write(int(sge.Addr), chunk); err != nil {
				q.recvCQ.push(CQE{
					QPN: q.qpn, WRID: r.WRID, Op: OpSend, Status: StatusLocalError,
					ByteLen: len(m.payload),
				})
				return StatusRemoteAccessError, nil, 0
			}
			rest = rest[len(chunk):]
		}
		q.recvCQ.push(CQE{
			QPN: q.qpn, WRID: r.WRID, Op: OpSend, Status: StatusSuccess,
			Imm: m.imm, ByteLen: len(m.payload),
		})
		return StatusSuccess, nil, 0

	case inRead:
		if _, err := n.lookupMR(m.rkey, m.addr, m.length, AccessRemoteRead); err != nil {
			return StatusRemoteAccessError, nil, 0
		}
		buf := n.fabric.getBuf(int(m.length))
		if err := n.mem.Read(int(m.addr), buf); err != nil {
			n.fabric.putBuf(buf)
			return StatusRemoteAccessError, nil, 0
		}
		return StatusSuccess, buf, 0

	case inFlush:
		mr, err := n.lookupMR(m.rkey, m.addr, m.length, AccessRemoteRead)
		if err != nil {
			return StatusRemoteAccessError, nil, 0
		}
		lo, ln := int(m.addr), int(m.length)
		if m.length == 0 {
			lo, ln = int(mr.Off), int(mr.Len)
		}
		flushed, err := n.mem.Flush(lo, ln)
		if err != nil {
			return StatusRemoteAccessError, nil, 0
		}
		cfg := n.fabric.cfg
		cost := cfg.CacheFlushBase + sim.Duration(flushed/64+1)*cfg.CacheFlushPerLine
		return StatusSuccess, nil, cost

	case inCAS:
		if _, err := n.lookupMR(m.rkey, m.addr, 8, AccessRemoteAtomic); err != nil {
			return StatusRemoteAccessError, nil, 0
		}
		cur, err := n.mem.Slice(int(m.addr), 8)
		if err != nil {
			return StatusRemoteAccessError, nil, 0
		}
		orig := binary.LittleEndian.Uint64(cur)
		if orig == m.compare {
			var nb [8]byte
			binary.LittleEndian.PutUint64(nb[:], m.swap)
			if err := n.mem.Write(int(m.addr), nb[:]); err != nil {
				return StatusRemoteAccessError, nil, 0
			}
		}
		var ob [8]byte
		binary.LittleEndian.PutUint64(ob[:], orig)
		return StatusSuccess, ob[:], 0

	default:
		return StatusLocalError, nil, 0
	}
}

func (q *QP) popRecv() RecvWQE {
	return q.recvQueue.PopFront()
}

// scrub returns the QP to its zero operating state for reuse by CreateQP
// after a Fabric.Reset. Everything timing-visible must clear: a stale
// lastArrival would clamp a fresh trial's first deliveries to a past
// kernel's timestamps, stale wire sequence numbers would make the dedup
// discard fresh traffic, and stale ring cursors would misplace WQEs. The
// cached callbacks survive — they close over the struct, not its state.
// Queued inbox payloads are returned to the buffer pool so a trial cut
// short by StopRun does not leak scratch buffers.
func (q *QP) scrub() {
	q.peer = nil
	q.head, q.tail = 0, 0
	q.recvQueue.Reset()
	for q.inbox.Len() > 0 {
		m := q.inbox.PopFront()
		q.nic.fabric.putBuf(m.payload)
	}
	q.pending.Reset()
	q.pumpScheduled, q.pumpBusy, q.inboxBusy, q.rnrWaiting = false, false, false, false
	q.dead = false
	q.lastArrival = 0
	q.ackTimer = sim.Timer{} // old kernel's handle; never Stop it here
	q.ackArmed = false
	q.epoch = 0
	q.opTx = 0
	q.wireTx, q.wireRx = 0, 0
	q.inSrc, q.inResp = nil, nil
	q.inEp, q.inSeq = 0, 0
	q.inSt = 0
}

// DebugState summarizes the QP's engine state for diagnostics.
func (q *QP) DebugState() string {
	return fmt.Sprintf("head=%d tail=%d pending=%d inbox=%d recvs=%d pumpBusy=%v pumpSched=%v rnr=%v inboxBusy=%v",
		q.head, q.tail, q.pending.Len(), q.inbox.Len(), q.recvQueue.Len(),
		q.pumpBusy, q.pumpScheduled, q.rnrWaiting, q.inboxBusy)
}
