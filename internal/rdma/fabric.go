package rdma

import (
	"fmt"
	"math/bits"

	"hyperloop/internal/nvm"
	"hyperloop/internal/sim"
)

// Config sets the fabric's timing model. Defaults are calibrated to a
// 56 Gbps ConnectX-3-class deployment (DESIGN.md, "Calibration constants").
type Config struct {
	// PropDelay is the one-way propagation + switching delay per message.
	PropDelay sim.Duration
	// BandwidthBps is the link bandwidth in bits per second.
	BandwidthBps float64
	// JitterFrac scales random jitter on each message's latency (±frac).
	JitterFrac float64
	// WQEProc is the NIC's per-WQE processing cost.
	WQEProc sim.Duration
	// HeaderBytes models per-message transport header overhead.
	HeaderBytes int
	// CacheFlushBase is the fixed cost of flushing the NIC cache to NVM.
	CacheFlushBase sim.Duration
	// CacheFlushPerLine is the added cost per dirty 64-byte line flushed.
	CacheFlushPerLine sim.Duration
	// MemCopyBps is local memory bandwidth for MEMCPY, bytes per second.
	MemCopyBps float64
	// RNRRetryDelay is the back-off before retrying a SEND that found no
	// posted receive (receiver-not-ready).
	RNRRetryDelay sim.Duration
}

// DefaultConfig returns the calibrated configuration.
func DefaultConfig() Config {
	return Config{
		PropDelay:         1 * sim.Microsecond,
		BandwidthBps:      56e9,
		JitterFrac:        0.05,
		WQEProc:           250 * sim.Nanosecond,
		HeaderBytes:       30,
		CacheFlushBase:    700 * sim.Nanosecond,
		CacheFlushPerLine: 1 * sim.Nanosecond,
		MemCopyBps:        8 * 8e9, // ~8 GB/s
		RNRRetryDelay:     10 * sim.Microsecond,
	}
}

// Fabric connects NICs through a latency/bandwidth-modelled network. All
// message delivery is FIFO per (source QP → destination QP) direction,
// matching reliable-connection ordering guarantees that HyperLoop's WAIT
// chains depend on (a WRITE posted before a SEND lands before it).
type Fabric struct {
	k    *sim.Kernel
	cfg  Config
	rng  *sim.RNG
	nics map[string]*NIC

	// bytesOnWire counts total payload+header bytes transmitted.
	bytesOnWire int64
	msgs        int64

	// bufs recycles payload scratch buffers. The fabric is single-threaded
	// (one kernel), so no locking; buffers are returned once the responder
	// has applied the message or the requester has consumed the response.
	bufs *BufPool
}

// bufClasses covers scratch buffers up to 1<<(bufClasses-1) = 32 MB;
// larger requests fall through to plain allocation.
const bufClasses = 26

// BufPool recycles payload scratch buffers by power-of-two size class.
// Every fabric owns one by default; a trial arena can instead lend the
// same pool to a sequence of fabrics (AdoptBufPool) so buffers survive
// across trials. Buffer contents are undefined — every user overwrites
// them fully — so reuse never changes behaviour. A BufPool must only be
// used by one fabric at a time.
type BufPool struct {
	classes [bufClasses][][]byte
}

// get returns a length-n scratch buffer, reusing a pooled one when
// available. The contents are undefined; every user overwrites them fully.
func (p *BufPool) get(n int) []byte {
	if n <= 0 {
		return nil
	}
	c := bits.Len(uint(n - 1))
	if c >= bufClasses {
		return make([]byte, n)
	}
	if l := len(p.classes[c]); l > 0 {
		b := p.classes[c][l-1]
		p.classes[c][l-1] = nil
		p.classes[c] = p.classes[c][:l-1]
		return b[:n]
	}
	return make([]byte, n, 1<<c)
}

// put returns a scratch buffer to the pool. Only buffers with exact
// power-of-two capacity (the shape get produces) are kept, so passing a
// foreign slice is harmless.
func (p *BufPool) put(b []byte) {
	if cap(b) == 0 {
		return
	}
	c := bits.Len(uint(cap(b))) - 1
	if 1<<c != cap(b) || c >= bufClasses {
		return
	}
	p.classes[c] = append(p.classes[c], b[:cap(b)])
}

// Buffers reports the number of pooled buffers; leak tests compare it
// across trials.
func (p *BufPool) Buffers() int {
	n := 0
	for _, c := range p.classes {
		n += len(c)
	}
	return n
}

func (f *Fabric) getBuf(n int) []byte { return f.bufs.get(n) }
func (f *Fabric) putBuf(b []byte)     { f.bufs.put(b) }

// AdoptBufPool makes f draw payload scratch buffers from bp instead of
// its own pool. Call it before any traffic flows; bp must not be shared
// with a concurrently running fabric.
func (f *Fabric) AdoptBufPool(bp *BufPool) {
	if bp != nil {
		f.bufs = bp
	}
}

// NewFabric creates a fabric driven by kernel k.
func NewFabric(k *sim.Kernel, cfg Config) *Fabric {
	if cfg.BandwidthBps <= 0 {
		cfg.BandwidthBps = DefaultConfig().BandwidthBps
	}
	if cfg.MemCopyBps <= 0 {
		cfg.MemCopyBps = DefaultConfig().MemCopyBps
	}
	if cfg.RNRRetryDelay <= 0 {
		cfg.RNRRetryDelay = DefaultConfig().RNRRetryDelay
	}
	return &Fabric{
		k:    k,
		cfg:  cfg,
		rng:  k.RNG().Fork(),
		nics: make(map[string]*NIC),
		bufs: &BufPool{},
	}
}

// Kernel returns the driving simulation kernel.
func (f *Fabric) Kernel() *sim.Kernel { return f.k }

// Config returns the fabric's timing configuration.
func (f *Fabric) Config() Config { return f.cfg }

// AddNIC attaches a NIC named host whose host memory is dev.
func (f *Fabric) AddNIC(host string, dev *nvm.Device) (*NIC, error) {
	if _, ok := f.nics[host]; ok {
		return nil, fmt.Errorf("rdma: duplicate NIC %q", host)
	}
	n := &NIC{
		fabric: f,
		host:   host,
		mem:    dev,
		mrs:    make(map[uint32]*MemoryRegion),
		qps:    make(map[uint32]*QP),
		cqs:    make(map[uint32]*CQ),
	}
	f.nics[host] = n
	return n, nil
}

// NIC returns the NIC named host, or nil.
func (f *Fabric) NIC(host string) *NIC { return f.nics[host] }

// xmitTime returns serialization delay for a payload of size bytes.
func (f *Fabric) xmitTime(size int) sim.Duration {
	bytes := float64(size + f.cfg.HeaderBytes)
	sec := bytes * 8 / f.cfg.BandwidthBps
	return sim.Duration(sec * 1e9)
}

// Stats reports fabric-wide transmission totals.
func (f *Fabric) Stats() (messages, bytes int64) { return f.msgs, f.bytesOnWire }
