package rdma

import (
	"fmt"
	"math/bits"

	"hyperloop/internal/nvm"
	"hyperloop/internal/sim"
)

// Config sets the fabric's timing model. Defaults are calibrated to a
// 56 Gbps ConnectX-3-class deployment (DESIGN.md, "Calibration constants").
type Config struct {
	// PropDelay is the one-way propagation + switching delay per message.
	PropDelay sim.Duration
	// BandwidthBps is the link bandwidth in bits per second.
	BandwidthBps float64
	// JitterFrac scales random jitter on each message's latency (±frac).
	JitterFrac float64
	// WQEProc is the NIC's per-WQE processing cost.
	WQEProc sim.Duration
	// HeaderBytes models per-message transport header overhead.
	HeaderBytes int
	// CacheFlushBase is the fixed cost of flushing the NIC cache to NVM.
	CacheFlushBase sim.Duration
	// CacheFlushPerLine is the added cost per dirty 64-byte line flushed.
	CacheFlushPerLine sim.Duration
	// MemCopyBps is local memory bandwidth for MEMCPY, bytes per second.
	MemCopyBps float64
	// RNRRetryDelay is the back-off before retrying a SEND that found no
	// posted receive (receiver-not-ready).
	RNRRetryDelay sim.Duration
	// AckTimeout bounds how long an issued remote operation may wait for
	// its transport ACK/response. When the oldest pending op on a QP
	// exceeds it, the QP flushes its pending window with error completions
	// (StatusTimeout for the expired head, StatusFlushed behind it)
	// instead of hanging the requester forever. The deadline timer is
	// stopped whenever an ACK arrives in time, and a stopped timer never
	// executes a kernel event, so in healthy runs the timeout is invisible
	// to event counts, RNG draws, and event ordering. Zero selects the
	// calibrated default; negative disables the timeout.
	AckTimeout sim.Duration
}

// DefaultConfig returns the calibrated configuration.
func DefaultConfig() Config {
	return Config{
		PropDelay:         1 * sim.Microsecond,
		BandwidthBps:      56e9,
		JitterFrac:        0.05,
		WQEProc:           250 * sim.Nanosecond,
		HeaderBytes:       30,
		CacheFlushBase:    700 * sim.Nanosecond,
		CacheFlushPerLine: 1 * sim.Nanosecond,
		MemCopyBps:        8 * 8e9, // ~8 GB/s
		RNRRetryDelay:     10 * sim.Microsecond,
		AckTimeout:        5 * sim.Millisecond,
	}
}

// Fabric connects NICs through a latency/bandwidth-modelled network. All
// message delivery is FIFO per (source QP → destination QP) direction,
// matching reliable-connection ordering guarantees that HyperLoop's WAIT
// chains depend on (a WRITE posted before a SEND lands before it).
type Fabric struct {
	k    *sim.Kernel
	cfg  Config
	rng  *sim.RNG
	nics map[string]*NIC

	// bytesOnWire counts total payload+header bytes transmitted.
	bytesOnWire int64
	msgs        int64
	// cqes counts completion-queue entries delivered across all of the
	// fabric's CQs. Together with msgs/bytesOnWire these are the fabric's
	// owned counters: they rewind on Reset, so a trial's fabric reports
	// exactly that trial's work and an arena can attribute it to the
	// experiment that ran the trial.
	cqes int64

	// bufs recycles payload scratch buffers. The fabric is single-threaded
	// (one kernel), so no locking; buffers are returned once the responder
	// has applied the message or the requester has consumed the response.
	bufs *BufPool

	// nicFree holds recycled NIC structs awaiting reuse by AddNIC after a
	// Reset; their MR/QP/CQ map storage survives across trials.
	nicFree []*NIC

	// wireFree recycles in-flight wire-message structs (see wireMsg). Like
	// nicFree it survives Reset: a pooled struct holds no trial state.
	// Messages still in flight when a trial is cut short are dropped with
	// the kernel's event queue and simply never return to the pool.
	wireFree []*wireMsg

	// Fault-injection state (see fault.go). faultRNG is forked from rng
	// only when a plan is installed, so plan-free runs draw the exact RNG
	// sequence they always did. All of it clears on Reset, including the
	// scheduled NIC crash/restart timers — a plan armed for one trial must
	// not fire into whatever runs on the kernel next.
	faultLinks  []LinkFault
	faultRNG    *sim.RNG
	faultStats  FaultStats
	faultTimers []*sim.Timer
}

// bufClasses covers scratch buffers up to 1<<(bufClasses-1) = 32 MB;
// larger requests fall through to plain allocation.
const bufClasses = 26

// BufPool recycles payload scratch buffers by power-of-two size class.
// Every fabric owns one by default; a trial arena can instead lend the
// same pool to a sequence of fabrics (AdoptBufPool) so buffers survive
// across trials. Buffer contents are undefined — every user overwrites
// them fully — so reuse never changes behaviour. A BufPool must only be
// used by one fabric at a time.
type BufPool struct {
	classes [bufClasses][][]byte
}

// get returns a length-n scratch buffer, reusing a pooled one when
// available. The contents are undefined; every user overwrites them fully.
func (p *BufPool) get(n int) []byte {
	if n <= 0 {
		return nil
	}
	c := bits.Len(uint(n - 1))
	if c >= bufClasses {
		return make([]byte, n)
	}
	if l := len(p.classes[c]); l > 0 {
		b := p.classes[c][l-1]
		p.classes[c][l-1] = nil
		p.classes[c] = p.classes[c][:l-1]
		return b[:n]
	}
	return make([]byte, n, 1<<c)
}

// put returns a scratch buffer to the pool. Only buffers with exact
// power-of-two capacity (the shape get produces) are kept, so passing a
// foreign slice is harmless.
func (p *BufPool) put(b []byte) {
	if cap(b) == 0 {
		return
	}
	c := bits.Len(uint(cap(b))) - 1
	if 1<<c != cap(b) || c >= bufClasses {
		return
	}
	p.classes[c] = append(p.classes[c], b[:cap(b)])
}

// Buffers reports the number of pooled buffers; leak tests compare it
// across trials.
func (p *BufPool) Buffers() int {
	n := 0
	for _, c := range p.classes {
		n += len(c)
	}
	return n
}

func (f *Fabric) getBuf(n int) []byte { return f.bufs.get(n) }
func (f *Fabric) putBuf(b []byte)     { f.bufs.put(b) }

// getWire takes a wire-message struct from the pool or allocates one with
// its fire closure pre-built.
func (f *Fabric) getWire() *wireMsg {
	if n := len(f.wireFree); n > 0 {
		wm := f.wireFree[n-1]
		f.wireFree[n-1] = nil
		f.wireFree = f.wireFree[:n-1]
		return wm
	}
	wm := &wireMsg{f: f}
	wm.fireFn = wm.fire
	return wm
}

// putWire recycles a delivered (or dropped) wire message, clearing the
// references it carried so pooled structs pin neither QPs nor payloads.
func (f *Fabric) putWire(wm *wireMsg) {
	wm.to = nil
	wm.msg = inMsg{}
	wm.payload = nil
	f.wireFree = append(f.wireFree, wm)
}

// AdoptBufPool makes f draw payload scratch buffers from bp instead of
// its own pool. Call it before any traffic flows; bp must not be shared
// with a concurrently running fabric.
func (f *Fabric) AdoptBufPool(bp *BufPool) {
	if bp != nil {
		f.bufs = bp
	}
}

// normalize fills unset config fields with the calibrated defaults.
func (c Config) normalize() Config {
	if c.BandwidthBps <= 0 {
		c.BandwidthBps = DefaultConfig().BandwidthBps
	}
	if c.MemCopyBps <= 0 {
		c.MemCopyBps = DefaultConfig().MemCopyBps
	}
	if c.RNRRetryDelay <= 0 {
		c.RNRRetryDelay = DefaultConfig().RNRRetryDelay
	}
	if c.AckTimeout == 0 {
		c.AckTimeout = DefaultConfig().AckTimeout
	} else if c.AckTimeout < 0 {
		c.AckTimeout = 0 // explicit opt-out: ops may hang forever
	}
	return c
}

// NewFabric creates a fabric driven by kernel k.
func NewFabric(k *sim.Kernel, cfg Config) *Fabric {
	return &Fabric{
		k:    k,
		cfg:  cfg.normalize(),
		rng:  k.RNG().Fork(),
		nics: make(map[string]*NIC),
		bufs: &BufPool{},
	}
}

// Reset returns the fabric to the state NewFabric(k, cfg) would produce
// while keeping allocated capacity: the NIC table's storage, retired NIC
// structs (with their MR/QP/CQ maps), and any adopted scratch-buffer pool
// all survive for the next trial. Behaviour after Reset is byte-identical
// to a fresh fabric's — the RNG is re-forked from k exactly as NewFabric
// does, and a recycled NIC is indistinguishable from a new one — so
// fabric pooling can never move a virtual-time number.
func (f *Fabric) Reset(k *sim.Kernel, cfg Config) {
	for host, n := range f.nics {
		n.recycle()
		f.nicFree = append(f.nicFree, n)
		delete(f.nics, host)
	}
	f.k = k
	f.cfg = cfg.normalize()
	f.rng = k.RNG().Fork()
	f.msgs, f.bytesOnWire, f.cqes = 0, 0, 0
	// A pooled fabric must not leak one trial's fault plan into the next:
	// stale link rules would drop fresh traffic, a stale fault RNG would
	// desynchronize the replayed stream, and an unfired NIC crash/restart
	// timer would down a recycled NIC re-added under the same host name.
	f.faultLinks = f.faultLinks[:0]
	f.faultRNG = nil
	f.faultStats = FaultStats{}
	for i, t := range f.faultTimers {
		t.Stop()
		f.faultTimers[i] = nil
	}
	f.faultTimers = f.faultTimers[:0]
}

// Kernel returns the driving simulation kernel.
func (f *Fabric) Kernel() *sim.Kernel { return f.k }

// Config returns the fabric's timing configuration.
func (f *Fabric) Config() Config { return f.cfg }

// AddNIC attaches a NIC named host whose host memory is dev, reusing a
// recycled NIC struct when Reset has retired one.
func (f *Fabric) AddNIC(host string, dev *nvm.Device) (*NIC, error) {
	if _, ok := f.nics[host]; ok {
		return nil, fmt.Errorf("rdma: duplicate NIC %q", host)
	}
	var n *NIC
	if l := len(f.nicFree); l > 0 {
		n = f.nicFree[l-1]
		f.nicFree[l-1] = nil
		f.nicFree = f.nicFree[:l-1]
		n.fabric = f
		n.host = host
		n.mem = dev
	} else {
		n = &NIC{
			fabric: f,
			host:   host,
			mem:    dev,
			mrs:    make(map[uint32]*MemoryRegion),
			qps:    make(map[uint32]*QP),
			cqs:    make(map[uint32]*CQ),
		}
	}
	f.nics[host] = n
	return n, nil
}

// NIC returns the NIC named host, or nil.
func (f *Fabric) NIC(host string) *NIC { return f.nics[host] }

// xmitTime returns serialization delay for a payload of size bytes.
func (f *Fabric) xmitTime(size int) sim.Duration {
	bytes := float64(size + f.cfg.HeaderBytes)
	sec := bytes * 8 / f.cfg.BandwidthBps
	return sim.Duration(sec * 1e9)
}

// Stats reports fabric-wide transmission totals since creation or the
// last Reset.
func (f *Fabric) Stats() (messages, bytes int64) { return f.msgs, f.bytesOnWire }

// CQEs reports the number of completion-queue entries delivered across
// all of the fabric's CQs since creation or the last Reset.
func (f *Fabric) CQEs() int64 { return f.cqes }

// PooledNICs reports the number of recycled NIC structs awaiting reuse;
// leak tests compare it across trials.
func (f *Fabric) PooledNICs() int { return len(f.nicFree) }
