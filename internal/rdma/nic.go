package rdma

import (
	"fmt"

	"hyperloop/internal/nvm"
	"hyperloop/internal/sim"
)

// Access flags for memory regions.
type Access uint8

// Memory-region access rights.
const (
	AccessLocalWrite Access = 1 << iota
	AccessRemoteRead
	AccessRemoteWrite
	AccessRemoteAtomic
)

// MemoryRegion is a registered window of host memory. Remote operations
// name it by RKey and are bounds- and rights-checked against it.
type MemoryRegion struct {
	RKey   uint32
	Off    uint64
	Len    uint64
	Rights Access
}

// Contains reports whether [addr, addr+n) lies inside the region.
func (m *MemoryRegion) Contains(addr, n uint64) bool {
	return addr >= m.Off && addr+n <= m.Off+m.Len && addr+n >= addr
}

// CQE is a completion-queue entry.
type CQE struct {
	QPN     uint32
	WRID    uint64
	Op      Opcode
	Status  Status
	Imm     uint32
	ByteLen int
	At      sim.Time
}

// Status reports how a work request completed.
type Status uint8

// Completion statuses.
const (
	StatusSuccess Status = iota + 1
	StatusRemoteAccessError
	StatusLocalError
	StatusFlushed // QP torn down / host down
)

// String returns the status mnemonic.
func (s Status) String() string {
	switch s {
	case StatusSuccess:
		return "OK"
	case StatusRemoteAccessError:
		return "REMOTE_ACCESS_ERR"
	case StatusLocalError:
		return "LOCAL_ERR"
	case StatusFlushed:
		return "FLUSHED"
	default:
		return fmt.Sprintf("Status(%d)", uint8(s))
	}
}

// CQ is a completion queue. Completions accumulate for polling; an optional
// handler is invoked on each completion (modelling an interrupt/event
// channel); WAIT WQEs subscribe to the cumulative completion count.
type CQ struct {
	nic     *NIC
	cqn     uint32
	entries []CQE

	total        int64 // cumulative completions ever pushed
	waitConsumed int64 // completions consumed by WAIT WQEs

	handler func(CQE)
	waiters []func() // WAIT WQEs re-kicked on each push
}

// CQN returns the completion queue number.
func (c *CQ) CQN() uint32 { return c.cqn }

// SetHandler installs an event handler invoked on every completion. This is
// the interrupt path the Naive-RDMA baseline uses; HyperLoop's datapath
// never needs it.
func (c *CQ) SetHandler(h func(CQE)) { c.handler = h }

// Poll removes and returns up to max pending completions.
func (c *CQ) Poll(max int) []CQE {
	if max <= 0 || len(c.entries) == 0 {
		return nil
	}
	if max > len(c.entries) {
		max = len(c.entries)
	}
	out := make([]CQE, max)
	copy(out, c.entries[:max])
	c.entries = append(c.entries[:0], c.entries[max:]...)
	return out
}

// Depth returns the number of unpolled completions.
func (c *CQ) Depth() int { return len(c.entries) }

// Total returns the cumulative number of completions ever delivered.
func (c *CQ) Total() int64 { return c.total }

func (c *CQ) push(e CQE) {
	e.At = c.nic.fabric.k.Now()
	c.entries = append(c.entries, e)
	c.total++
	if c.handler != nil {
		c.handler(e)
	}
	ws := c.waiters
	c.waiters = nil
	for _, w := range ws {
		w()
	}
}

func (c *CQ) subscribe(fn func()) { c.waiters = append(c.waiters, fn) }

// NIC is one host's RDMA network interface. Its WQE engine runs entirely in
// simulation events — no cpusim process is involved — which is precisely
// what makes the HyperLoop datapath immune to host CPU contention.
type NIC struct {
	fabric *Fabric
	host   string
	mem    *nvm.Device
	down   bool

	mrs     map[uint32]*MemoryRegion
	qps     map[uint32]*QP
	cqs     map[uint32]*CQ
	nextKey uint32
	nextQPN uint32
	nextCQN uint32

	wqesExecuted int64
	bytesTx      int64
}

// Host returns the NIC's host name.
func (n *NIC) Host() string { return n.host }

// Memory returns the NIC's host memory device.
func (n *NIC) Memory() *nvm.Device { return n.mem }

// Fabric returns the owning fabric.
func (n *NIC) Fabric() *Fabric { return n.fabric }

// SetDown simulates host/NIC failure: outgoing operations fail and incoming
// messages are dropped (peers observe timeouts).
func (n *NIC) SetDown(down bool) { n.down = down }

// Down reports whether the NIC is failed.
func (n *NIC) Down() bool { return n.down }

// RegisterMR registers [off, off+len) of host memory with the given rights
// and returns the region (its RKey names it remotely).
func (n *NIC) RegisterMR(off, length uint64, rights Access) (*MemoryRegion, error) {
	if off+length > uint64(n.mem.Size()) || off+length < off {
		return nil, fmt.Errorf("rdma %s: MR [%d,+%d) exceeds memory size %d",
			n.host, off, length, n.mem.Size())
	}
	n.nextKey++
	mr := &MemoryRegion{RKey: n.nextKey, Off: off, Len: length, Rights: rights}
	n.mrs[mr.RKey] = mr
	return mr, nil
}

// lookupMR validates a remote access against a registered region.
func (n *NIC) lookupMR(rkey uint32, addr, length uint64, need Access) (*MemoryRegion, error) {
	mr, ok := n.mrs[rkey]
	if !ok {
		return nil, fmt.Errorf("rdma %s: unknown rkey %d", n.host, rkey)
	}
	if mr.Rights&need != need {
		return nil, fmt.Errorf("rdma %s: rkey %d lacks rights %b", n.host, rkey, need)
	}
	if !mr.Contains(addr, length) {
		return nil, fmt.Errorf("rdma %s: rkey %d access [%d,+%d) out of window [%d,+%d)",
			n.host, rkey, addr, length, mr.Off, mr.Len)
	}
	return mr, nil
}

// CreateCQ allocates a completion queue.
func (n *NIC) CreateCQ() *CQ {
	n.nextCQN++
	cq := &CQ{nic: n, cqn: n.nextCQN}
	n.cqs[cq.CQN()] = cq
	return cq
}

// CQ returns the completion queue with the given number, or nil.
func (n *NIC) CQ(cqn uint32) *CQ { return n.cqs[cqn] }

// QPConfig describes a queue pair's send ring placement.
type QPConfig struct {
	// SendRingOff is the host-memory offset of the send WQE ring. The ring
	// occupies SendSlots*WQESize bytes. In HyperLoop groups the caller
	// registers this range as an MR so peers can patch pre-posted WQEs.
	SendRingOff uint64
	SendSlots   int
	SendCQ      *CQ
	RecvCQ      *CQ
}

// CreateQP allocates a queue pair with its send ring at cfg.SendRingOff.
func (n *NIC) CreateQP(cfg QPConfig) (*QP, error) {
	if cfg.SendSlots <= 0 {
		return nil, fmt.Errorf("rdma %s: QP needs at least 1 send slot", n.host)
	}
	end := cfg.SendRingOff + uint64(cfg.SendSlots)*WQESize
	if end > uint64(n.mem.Size()) || end < cfg.SendRingOff {
		return nil, fmt.Errorf("rdma %s: send ring [%d,+%d slots) exceeds memory",
			n.host, cfg.SendRingOff, cfg.SendSlots)
	}
	if cfg.SendCQ == nil || cfg.RecvCQ == nil {
		return nil, fmt.Errorf("rdma %s: QP requires send and recv CQs", n.host)
	}
	n.nextQPN++
	qp := &QP{
		nic:       n,
		qpn:       n.nextQPN,
		ringOff:   cfg.SendRingOff,
		ringSlots: cfg.SendSlots,
		sendCQ:    cfg.SendCQ,
		recvCQ:    cfg.RecvCQ,
	}
	qp.initCallbacks()
	n.qps[qp.qpn] = qp
	return qp, nil
}

// QP returns the queue pair with the given number, or nil.
func (n *NIC) QP(qpn uint32) *QP { return n.qps[qpn] }

// Stats reports WQEs executed and payload bytes transmitted by this NIC.
func (n *NIC) Stats() (wqes, bytesTx int64) { return n.wqesExecuted, n.bytesTx }

// send transmits a message to a peer QP with FIFO ordering per direction.
// Loopback traffic (same NIC) skips the wire entirely and costs only NIC
// processing time.
func (n *NIC) send(to *QP, size int, deliver func()) {
	f := n.fabric
	var d sim.Duration
	if to.nic == n {
		d = f.cfg.WQEProc
	} else {
		f.msgs++
		f.bytesOnWire += int64(size + f.cfg.HeaderBytes)
		n.bytesTx += int64(size)
		d = f.cfg.PropDelay + f.xmitTime(size)
		d = f.rng.Jitter(d, f.cfg.JitterFrac)
	}
	at := f.k.Now().Add(d)
	if at < to.lastArrival {
		at = to.lastArrival // preserve per-QP FIFO despite jitter
	}
	to.lastArrival = at
	targetNIC := to.nic
	f.k.AtFunc(at, func() {
		if targetNIC.down {
			return // dropped; sender times out at a higher layer
		}
		deliver()
	}, nil)
}
