package rdma

import (
	"errors"
	"fmt"

	"hyperloop/internal/nvm"
	"hyperloop/internal/ring"
	"hyperloop/internal/sim"
)

// Access flags for memory regions.
type Access uint8

// Memory-region access rights.
const (
	AccessLocalWrite Access = 1 << iota
	AccessRemoteRead
	AccessRemoteWrite
	AccessRemoteAtomic
)

// MemoryRegion is a registered window of host memory. Remote operations
// name it by RKey and are bounds- and rights-checked against it.
type MemoryRegion struct {
	RKey   uint32
	Off    uint64
	Len    uint64
	Rights Access
}

// Contains reports whether [addr, addr+n) lies inside the region.
func (m *MemoryRegion) Contains(addr, n uint64) bool {
	return addr >= m.Off && addr+n <= m.Off+m.Len && addr+n >= addr
}

// CQE is a completion-queue entry.
type CQE struct {
	QPN     uint32
	WRID    uint64
	Op      Opcode
	Status  Status
	Imm     uint32
	ByteLen int
	At      sim.Time
}

// Status reports how a work request completed.
type Status uint8

// Completion statuses.
const (
	StatusSuccess Status = iota + 1
	StatusRemoteAccessError
	StatusLocalError
	StatusFlushed // QP torn down / host down
	// StatusTimeout reports that the operation's transport ACK did not
	// arrive within Config.AckTimeout — the peer crashed or the wire lost
	// the message. The rest of the pending window flushes as StatusFlushed.
	StatusTimeout
)

// String returns the status mnemonic.
func (s Status) String() string {
	switch s {
	case StatusSuccess:
		return "OK"
	case StatusRemoteAccessError:
		return "REMOTE_ACCESS_ERR"
	case StatusLocalError:
		return "LOCAL_ERR"
	case StatusFlushed:
		return "FLUSHED"
	case StatusTimeout:
		return "TIMEOUT"
	default:
		return fmt.Sprintf("Status(%d)", uint8(s))
	}
}

// CQ is a completion queue. Completions accumulate for polling; an optional
// handler is invoked on each completion (modelling an interrupt/event
// channel); WAIT WQEs subscribe to the cumulative completion count with a
// wake threshold, so a WAIT armed for N completions wakes once when the
// N-th arrives instead of re-checking on every push.
//
// Re-entrancy rules for handlers (per-CQE and batch alike): a handler runs
// synchronously inside the push — that is, inside the simulation event
// that produced the completion — so it sees the CQ with the new entry
// already accounted (Total includes it). A handler may post work requests,
// ring doorbells, schedule events, and push onto *other* CQs, but every
// path that would complete back onto the same CQ goes through a scheduled
// event, never synchronously; a batch handler that does trigger a
// same-instant push sees it folded into a follow-up batch of the same
// drain loop, not a nested handler call.
type CQ struct {
	nic *NIC
	cqn uint32

	entries ring.Ring[CQE] // unpolled completions (Poll/SetHandler modes)

	total        int64 // cumulative completions ever pushed
	okTotal      int64 // cumulative successful completions (WAIT fuel)
	waitConsumed int64 // successful completions consumed by WAIT WQEs

	handler      func(CQE)
	drainHandler func([]CQE)
	batch        []CQE // completions awaiting the drain handler
	spare        []CQE // second buffer; batch/spare alternate, zero-alloc
	draining     bool  // drain loop active; nested pushes only append

	waiters []cqWaiter // parked WAIT WQEs, woken at their thresholds

	dead bool // destroyed; see Destroy
}

// cqWaiter is a parked WAIT WQE: fn re-kicks the owning send queue once
// the CQ's cumulative completion count reaches minTotal. The threshold is
// a wake filter, not a grant — the woken engine re-validates against live
// counters and re-parks (with a fresh threshold) if another consumer got
// there first.
type cqWaiter struct {
	fn       func()
	minTotal int64
	onOK     bool // threshold counts successful completions only
}

// CQN returns the completion queue number.
func (c *CQ) CQN() uint32 { return c.cqn }

// SetHandler installs an event handler invoked once per completion, in
// completion order. Entries are still retained for Poll — a per-CQE
// handler observes completions but does not consume them. This is the
// legacy interrupt path; datapath CQs use SetDrainHandler, which also
// keeps the queue from growing without bound.
func (c *CQ) SetHandler(h func(CQE)) { c.handler = h }

// SetDrainHandler installs a batched handler: each wake receives every
// completion that is ready — the batch — and consumes them, so the CQ
// retains nothing and Poll on the same CQ always returns empty. Any
// completions pushed while the handler runs are delivered in a follow-up
// batch of the same drain loop rather than nested calls (see the CQ
// re-entrancy rules). Installing a drain handler also consumes whatever
// entries had accumulated before installation, on the next push.
//
// The batch slice is owned by the CQ and recycled across wakes; handlers
// must not retain it. Pass a non-nil handler (an empty func is the idiom
// for counter-only CQs that exist solely for WAIT thresholds).
func (c *CQ) SetDrainHandler(h func([]CQE)) { c.drainHandler = h }

// Discard marks the CQ counter-only: completions still advance Total —
// and therefore WAIT thresholds and waiter wakes — but no entries are
// retained for Poll. Use for CQs that exist purely as WAIT targets or
// whose completions carry no information; without it every completion
// accumulates in the queue for the life of the run.
func (c *CQ) Discard() { c.SetDrainHandler(discardCQEs) }

func discardCQEs([]CQE) {}

// Poll removes and returns up to max pending completions, oldest first.
// Allocation note: Poll builds a fresh slice; steady-state datapaths use
// SetDrainHandler and never poll.
func (c *CQ) Poll(max int) []CQE {
	n := c.entries.Len()
	if max <= 0 || n == 0 {
		return nil
	}
	if max > n {
		max = n
	}
	out := make([]CQE, max)
	for i := range out {
		out[i] = c.entries.PopFront()
	}
	return out
}

// Depth returns the number of unpolled completions. A CQ in drain-handler
// mode consumes eagerly, so its depth is zero between events.
func (c *CQ) Depth() int { return c.entries.Len() }

// Total returns the cumulative number of completions ever delivered.
func (c *CQ) Total() int64 { return c.total }

func (c *CQ) push(e CQE) {
	if c.dead {
		return
	}
	e.At = c.nic.fabric.k.Now()
	c.total++
	if e.Status == StatusSuccess {
		c.okTotal++
	}
	c.nic.fabric.cqes++
	switch {
	case c.drainHandler != nil:
		// Migrate anything queued before the drain handler was installed
		// so the first wake drains the full backlog.
		for c.entries.Len() > 0 {
			c.batch = append(c.batch, c.entries.PopFront())
		}
		c.batch = append(c.batch, e)
		if !c.draining {
			c.draining = true
			for len(c.batch) > 0 {
				ready := c.batch
				c.batch = c.spare[:0]
				c.drainHandler(ready)
				c.spare = ready[:0]
			}
			c.draining = false
		}
	case c.handler != nil:
		c.entries.PushBack(e)
		c.handler(e)
	default:
		c.entries.PushBack(e)
	}
	c.wakeWaiters()
}

// wakeWaiters fires every parked waiter whose threshold is reached,
// preserving subscription order among survivors. Waiter callbacks only
// schedule doorbell events — they never subscribe synchronously — so the
// in-place filter cannot observe a mutating waiter list.
func (c *CQ) wakeWaiters() {
	if len(c.waiters) == 0 {
		return
	}
	kept := c.waiters[:0]
	for _, w := range c.waiters {
		cnt := c.total
		if w.onOK {
			cnt = c.okTotal
		}
		if cnt >= w.minTotal {
			w.fn()
		} else {
			kept = append(kept, w)
		}
	}
	for i := len(kept); i < len(c.waiters); i++ {
		c.waiters[i] = cqWaiter{}
	}
	c.waiters = kept
}

// subscribe parks fn until the cumulative completion count reaches
// minTotal. The caller re-validates on wake; see cqWaiter.
func (c *CQ) subscribe(fn func(), minTotal int64) {
	c.waiters = append(c.waiters, cqWaiter{fn: fn, minTotal: minTotal})
}

// subscribeOK parks fn until the cumulative count of *successful*
// completions reaches minOK — the wake filter for consuming WAIT WQEs,
// which error completions must never satisfy.
func (c *CQ) subscribeOK(fn func(), minOK int64) {
	c.waiters = append(c.waiters, cqWaiter{fn: fn, minTotal: minOK, onOK: true})
}

// ErrWaitDeadline is returned by AwaitTotal when the deadline passes
// before the completion-count threshold is reached.
var ErrWaitDeadline = errors.New("rdma: CQ wait deadline exceeded")

// AwaitTotal parks f until the CQ's cumulative completion count reaches n,
// or returns ErrWaitDeadline once the virtual deadline passes — a bounded
// alternative to spinning on Total for callers that would otherwise hang
// on a completion that never arrives. A deadline wake leaves a stale
// one-shot waiter behind; it fires harmlessly into the already-resolved
// signal if the threshold is ever reached later.
func (c *CQ) AwaitTotal(f *sim.Fiber, n int64, deadline sim.Time) error {
	if c.total >= n {
		return nil
	}
	sig := sim.NewSignal()
	c.subscribe(func() { sig.Fire(nil) }, n)
	t := c.nic.fabric.k.At(deadline, func() { sig.Fire(ErrWaitDeadline) })
	err := f.Await(sig)
	t.Stop()
	return err
}

// scrub returns the CQ to its zero operating state for reuse by CreateCQ.
// Counters must clear — a stale total would satisfy a fresh trial's WAIT
// thresholds instantly — and waiter callbacks must drop for GC.
func (c *CQ) scrub() {
	c.entries.Reset()
	c.total, c.okTotal, c.waitConsumed = 0, 0, 0
	c.handler, c.drainHandler = nil, nil
	c.batch = c.batch[:0]
	c.spare = c.spare[:0]
	c.draining = false
	for i := range c.waiters {
		c.waiters[i] = cqWaiter{}
	}
	c.waiters = c.waiters[:0]
}

// Destroy removes the completion queue from service: handlers and parked
// waiters are dropped, retained entries are cleared, the CQN is retired
// (WAIT WQEs that still name it complete with a local error), and any
// straggler completion pushed through a retained pointer is discarded.
// Owners destroy a CQ together with the QPs that complete into it.
func (c *CQ) Destroy() {
	if c.dead {
		return
	}
	c.dead = true
	c.scrub()
	delete(c.nic.cqs, c.cqn)
}

// NIC is one host's RDMA network interface. Its WQE engine runs entirely in
// simulation events — no cpusim process is involved — which is precisely
// what makes the HyperLoop datapath immune to host CPU contention.
type NIC struct {
	fabric *Fabric
	host   string
	mem    *nvm.Device
	down   bool

	mrs     map[uint32]*MemoryRegion
	qps     map[uint32]*QP
	cqs     map[uint32]*CQ
	nextKey uint32
	nextQPN uint32
	nextCQN uint32

	wqesExecuted int64
	bytesTx      int64

	// qpFree/cqFree pool scrubbed QP/CQ structs across Fabric.Reset so a
	// recycled NIC reuses its queue storage (rings, waiter slices) instead
	// of reallocating per trial. See QP.scrub / CQ.scrub for the state
	// that must clear to keep reuse byte-identical to fresh allocation.
	qpFree []*QP
	cqFree []*CQ
}

// Host returns the NIC's host name.
func (n *NIC) Host() string { return n.host }

// Memory returns the NIC's host memory device.
func (n *NIC) Memory() *nvm.Device { return n.mem }

// Fabric returns the owning fabric.
func (n *NIC) Fabric() *Fabric { return n.fabric }

// SetDown simulates host/NIC failure and recovery. While down, outgoing
// messages are lost at the sender, in-flight deliveries are dropped at
// arrival, and the WQE engines stall; peers observe ack timeouts (error
// CQEs), never eternal hangs. Restarting re-kicks every surviving send
// ring and inbox in QPN order — a fixed order, never map iteration, so a
// restart schedules the same event sequence on every run.
func (n *NIC) SetDown(down bool) {
	if n.down == down {
		return
	}
	n.down = down
	if down {
		return
	}
	for qpn := uint32(1); qpn <= n.nextQPN; qpn++ {
		q := n.qps[qpn]
		if q == nil {
			continue
		}
		q.Doorbell()
		if q.inbox.Len() > 0 && !q.inboxBusy && !q.rnrWaiting {
			q.processInbox()
		}
	}
}

// Down reports whether the NIC is failed.
func (n *NIC) Down() bool { return n.down }

// RegisterMR registers [off, off+len) of host memory with the given rights
// and returns the region (its RKey names it remotely).
func (n *NIC) RegisterMR(off, length uint64, rights Access) (*MemoryRegion, error) {
	if off+length > uint64(n.mem.Size()) || off+length < off {
		return nil, fmt.Errorf("rdma %s: MR [%d,+%d) exceeds memory size %d",
			n.host, off, length, n.mem.Size())
	}
	n.nextKey++
	mr := &MemoryRegion{RKey: n.nextKey, Off: off, Len: length, Rights: rights}
	n.mrs[mr.RKey] = mr
	return mr, nil
}

// lookupMR validates a remote access against a registered region.
func (n *NIC) lookupMR(rkey uint32, addr, length uint64, need Access) (*MemoryRegion, error) {
	mr, ok := n.mrs[rkey]
	if !ok {
		return nil, fmt.Errorf("rdma %s: unknown rkey %d", n.host, rkey)
	}
	if mr.Rights&need != need {
		return nil, fmt.Errorf("rdma %s: rkey %d lacks rights %b", n.host, rkey, need)
	}
	if !mr.Contains(addr, length) {
		return nil, fmt.Errorf("rdma %s: rkey %d access [%d,+%d) out of window [%d,+%d)",
			n.host, rkey, addr, length, mr.Off, mr.Len)
	}
	return mr, nil
}

// CreateCQ allocates a completion queue, reusing a scrubbed struct when
// recycle has pooled one.
func (n *NIC) CreateCQ() *CQ {
	n.nextCQN++
	var cq *CQ
	if l := len(n.cqFree); l > 0 {
		cq = n.cqFree[l-1]
		n.cqFree[l-1] = nil
		n.cqFree = n.cqFree[:l-1]
	} else {
		cq = &CQ{}
	}
	cq.nic = n
	cq.cqn = n.nextCQN
	cq.dead = false
	n.cqs[cq.CQN()] = cq
	return cq
}

// CQ returns the completion queue with the given number, or nil.
func (n *NIC) CQ(cqn uint32) *CQ { return n.cqs[cqn] }

// QPConfig describes a queue pair's send ring placement.
type QPConfig struct {
	// SendRingOff is the host-memory offset of the send WQE ring. The ring
	// occupies SendSlots*WQESize bytes. In HyperLoop groups the caller
	// registers this range as an MR so peers can patch pre-posted WQEs.
	SendRingOff uint64
	SendSlots   int
	SendCQ      *CQ
	RecvCQ      *CQ
}

// CreateQP allocates a queue pair with its send ring at cfg.SendRingOff.
func (n *NIC) CreateQP(cfg QPConfig) (*QP, error) {
	if cfg.SendSlots <= 0 {
		return nil, fmt.Errorf("rdma %s: QP needs at least 1 send slot", n.host)
	}
	end := cfg.SendRingOff + uint64(cfg.SendSlots)*WQESize
	if end > uint64(n.mem.Size()) || end < cfg.SendRingOff {
		return nil, fmt.Errorf("rdma %s: send ring [%d,+%d slots) exceeds memory",
			n.host, cfg.SendRingOff, cfg.SendSlots)
	}
	if cfg.SendCQ == nil || cfg.RecvCQ == nil {
		return nil, fmt.Errorf("rdma %s: QP requires send and recv CQs", n.host)
	}
	n.nextQPN++
	var qp *QP
	if l := len(n.qpFree); l > 0 {
		qp = n.qpFree[l-1]
		n.qpFree[l-1] = nil
		n.qpFree = n.qpFree[:l-1]
	} else {
		qp = &QP{}
	}
	qp.nic = n
	qp.qpn = n.nextQPN
	qp.ringOff = cfg.SendRingOff
	qp.ringSlots = cfg.SendSlots
	qp.sendCQ = cfg.SendCQ
	qp.recvCQ = cfg.RecvCQ
	if qp.pumpFn == nil {
		qp.initCallbacks() // cached callbacks survive scrub; build once
	}
	n.qps[qp.qpn] = qp
	return qp, nil
}

// QP returns the queue pair with the given number, or nil.
func (n *NIC) QP(qpn uint32) *QP { return n.qps[qpn] }

// Stats reports WQEs executed and payload bytes transmitted by this NIC.
func (n *NIC) Stats() (wqes, bytesTx int64) { return n.wqesExecuted, n.bytesTx }

// recycle strips the NIC for reuse under a new identity: registered
// regions are dropped, queue pairs and completion queues are scrubbed
// into per-NIC free lists for CreateQP/CreateCQ to reuse, counters and id
// allocators rewind to zero, and the device reference is released. The
// scrub is what makes reuse safe: stale per-QP state — above all the
// lastArrival FIFO clamp, which would pin a fresh trial's first
// deliveries to a past kernel's timestamps — and stale CQ counters must
// never survive a reset. Free lists fill in QPN/CQN order (never map
// iteration) so reuse order is deterministic. A recycled NIC re-issued by
// AddNIC is indistinguishable from a freshly allocated one.
func (n *NIC) recycle() {
	clear(n.mrs)
	for qpn := uint32(1); qpn <= n.nextQPN; qpn++ {
		if q := n.qps[qpn]; q != nil {
			q.scrub()
			n.qpFree = append(n.qpFree, q)
		}
	}
	clear(n.qps)
	for cqn := uint32(1); cqn <= n.nextCQN; cqn++ {
		if c := n.cqs[cqn]; c != nil {
			c.scrub()
			n.cqFree = append(n.cqFree, c)
		}
	}
	clear(n.cqs)
	n.mem = nil
	n.down = false
	n.nextKey, n.nextQPN, n.nextCQN = 0, 0, 0
	n.wqesExecuted, n.bytesTx = 0, 0
}

// wireMsg is one in-flight wire message: either a request leg carrying an
// inMsg to the responder's inbox or an ack leg carrying a response back to
// the requester. Structs are pooled on the fabric and each carries its own
// cached fire closure, so a message on the wire costs one kernel event and
// zero allocations.
type wireMsg struct {
	f       *Fabric
	to      *QP
	psn     uint64
	isAck   bool
	msg     inMsg // request leg
	ep      uint64
	seq     uint64
	st      Status
	payload []byte // ack leg
	fireFn  func()
}

// fire is the delivery event for one wire message. The receiver-side
// checks run at delivery time: a receiver that died while the message was
// in flight loses it (the silent-drop contract is backed by the sender's
// ack timeout, so the loss surfaces as an error CQE instead of an eternal
// hang), and a duplicate of an already-delivered psn is discarded exactly
// as RC transport dedup would discard a retransmission. The struct is
// recycled before the payload is handed on, so re-entrant sends inside the
// handler can reuse it.
func (wm *wireMsg) fire() {
	f, to := wm.f, wm.to
	if to.nic.down || to.dead {
		// A destroyed QP loses in-flight messages exactly like a dead NIC;
		// the sender's ack timeout bounds the loss.
		f.faultStats.Drops++
		f.putWire(wm)
		return
	}
	if wm.psn < to.wireRx {
		f.faultStats.DupsSuppressed++
		f.putWire(wm)
		return
	}
	to.wireRx = wm.psn + 1
	if wm.isAck {
		ep, seq, st, payload := wm.ep, wm.seq, wm.st, wm.payload
		f.putWire(wm)
		to.handleAck(ep, seq, st, payload)
		return
	}
	m := wm.msg
	f.putWire(wm)
	to.enqueueInbox(m)
}

// sendRequest transmits a request leg to the responder's inbox.
func (n *NIC) sendRequest(to *QP, size int, msg inMsg) {
	wm := n.fabric.getWire()
	wm.isAck = false
	wm.msg = msg
	n.send(to, size, wm)
}

// sendAck transmits an ack/response leg back to the requester.
func (n *NIC) sendAck(to *QP, size int, ep, seq uint64, st Status, payload []byte) {
	wm := n.fabric.getWire()
	wm.isAck = true
	wm.ep, wm.seq, wm.st, wm.payload = ep, seq, st, payload
	n.send(to, size, wm)
}

// send transmits a message to a peer QP with FIFO ordering per direction.
// Loopback traffic (same NIC) skips the wire entirely and costs only NIC
// processing time. The installed fault plan (if any) is consulted per wire
// message: partitioned or randomly dropped messages still pay their
// transmit-side costs but never deliver, and a duplicated message
// schedules a second delivery carrying the same wire sequence number,
// which the receiver's dedup discards. Every loss is bounded by the
// requester's ack timeout (see QP.ackExpire) — nothing hangs on a drop.
func (n *NIC) send(to *QP, size int, wm *wireMsg) {
	f := n.fabric
	if n.down {
		// A dead NIC transmits nothing; its own pending window flushes via
		// the ack timeout.
		f.faultStats.Drops++
		f.putWire(wm)
		return
	}
	var d sim.Duration
	dup := false
	if to.nic == n {
		d = f.cfg.WQEProc
	} else {
		f.msgs++
		f.bytesOnWire += int64(size + f.cfg.HeaderBytes)
		n.bytesTx += int64(size)
		if lf := f.linkFault(n.host, to.nic.host); lf != nil {
			if lf.partitioned(f.k.Now()) || (lf.DropProb > 0 && f.faultRNG.Bernoulli(lf.DropProb)) {
				f.faultStats.Drops++
				f.putWire(wm)
				return // lost on the wire; transmit costs already paid
			}
			d += lf.ExtraDelay
			dup = lf.DupProb > 0 && f.faultRNG.Bernoulli(lf.DupProb)
		}
		d += f.cfg.PropDelay + f.xmitTime(size)
		d = f.rng.Jitter(d, f.cfg.JitterFrac)
	}
	at := f.k.Now().Add(d)
	if at < to.lastArrival {
		at = to.lastArrival // preserve per-QP FIFO despite jitter
	}
	to.lastArrival = at
	psn := to.wireTx
	to.wireTx++
	wm.to, wm.psn = to, psn
	if dup {
		// An injected duplicate is a second delivery event carrying the same
		// wire sequence number; the receiver's psn dedup discards one.
		f.faultStats.Dups++
		wm2 := f.getWire()
		wm2.to, wm2.psn, wm2.isAck = to, psn, wm.isAck
		wm2.msg, wm2.ep, wm2.seq, wm2.st, wm2.payload = wm.msg, wm.ep, wm.seq, wm.st, wm.payload
		f.k.AtFunc(at, wm.fireFn, nil)
		f.k.AtFunc(at, wm2.fireFn, nil)
		return
	}
	f.k.AtFunc(at, wm.fireFn, nil)
}
