package nvm

// PoolStats counts a DevicePool's allocation and reset work. BytesZeroed
// is the zeroing actually performed (a fresh allocation zero-fills both
// images; a reuse zeroes only the previous trial's written ranges);
// BytesDemand is what allocating fresh on every Get would have zeroed, so
// BytesZeroed/BytesDemand is the fraction of setup zeroing that remains.
type PoolStats struct {
	Gets   int64
	Puts   int64
	Fresh  int64 // Gets served by a new allocation
	Reused int64 // Gets served from the pool

	BytesZeroed int64
	BytesDemand int64
}

// Sub returns the counter deltas s-o. Trial arenas snapshot a pool's
// stats around each trial and use the delta to attribute the trial's
// device work to the experiment that ran it.
func (s PoolStats) Sub(o PoolStats) PoolStats {
	return PoolStats{
		Gets:        s.Gets - o.Gets,
		Puts:        s.Puts - o.Puts,
		Fresh:       s.Fresh - o.Fresh,
		Reused:      s.Reused - o.Reused,
		BytesZeroed: s.BytesZeroed - o.BytesZeroed,
		BytesDemand: s.BytesDemand - o.BytesDemand,
	}
}

// DevicePool recycles Devices by exact size. Put resets a device to its
// freshly-allocated state (zeroing only its written ranges); Get hands it
// out again under a new name. The pool is used from one goroutine at a
// time (each experiment worker owns one) and needs no locking.
type DevicePool struct {
	bySize map[int][]*Device
	stats  PoolStats
}

// Get returns a zeroed device of the given size, reusing a pooled one
// when available.
func (p *DevicePool) Get(name string, size int) *Device {
	p.stats.Gets++
	p.stats.BytesDemand += 2 * int64(size)
	if devs := p.bySize[size]; len(devs) > 0 {
		d := devs[len(devs)-1]
		devs[len(devs)-1] = nil
		p.bySize[size] = devs[:len(devs)-1]
		d.name = name
		p.stats.Reused++
		return d
	}
	p.stats.Fresh++
	p.stats.BytesZeroed += 2 * int64(size) // make() zero-fills both images
	return NewDevice(name, size)
}

// Put resets d and returns it to the pool. The reset happens here, not on
// Get, so the pool's invariant is that every pooled device is
// indistinguishable from a fresh one.
func (p *DevicePool) Put(d *Device) {
	if d == nil {
		return
	}
	p.stats.Puts++
	p.stats.BytesZeroed += int64(d.Reset())
	if p.bySize == nil {
		p.bySize = make(map[int][]*Device)
	}
	p.bySize[d.Size()] = append(p.bySize[d.Size()], d)
}

// ForEachIdle calls fn for every pooled device; leak tests use it to
// assert the reset-on-Put invariant (every pooled device looks fresh).
func (p *DevicePool) ForEachIdle(fn func(*Device)) {
	for _, devs := range p.bySize {
		for _, d := range devs {
			fn(d)
		}
	}
}

// Idle returns the number of pooled devices.
func (p *DevicePool) Idle() int {
	n := 0
	for _, devs := range p.bySize {
		n += len(devs)
	}
	return n
}

// Stats returns the pool's cumulative counters.
func (p *DevicePool) Stats() PoolStats { return p.stats }
