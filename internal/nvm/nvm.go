// Package nvm models byte-addressable non-volatile memory fronted by a
// volatile cache, as used by HyperLoop's durability argument (§4.2,
// gFLUSH).
//
// RDMA WRITEs land in the NIC/CPU cache hierarchy and are acknowledged
// before reaching the durable medium; only a flush (triggered in HyperLoop
// by a 0-byte RDMA READ to the same address) commits them. A power failure
// (Crash) discards everything unflushed. The model keeps two images — the
// current view and the durable image — plus the set of dirty ranges, so
// tests can assert exactly which bytes survive a crash.
package nvm

import (
	"fmt"
	"sort"
)

// Device is one node's non-volatile memory. It is used only from
// simulation (single-threaded) context and needs no locking.
type Device struct {
	name    string
	current []byte // latest view: durable bytes overlaid with cached writes
	durable []byte // what survives a crash
	dirty   RangeSet
	written RangeSet // every byte written since NewDevice/Reset; bounds Reset cost

	writes  int64
	flushes int64
	crashes int64
}

// NewDevice returns a zeroed device of the given size in bytes.
func NewDevice(name string, size int) *Device {
	return &Device{
		name:    name,
		current: make([]byte, size),
		durable: make([]byte, size),
	}
}

// Name returns the device's diagnostic name.
func (d *Device) Name() string { return d.name }

// Size returns the capacity in bytes.
func (d *Device) Size() int { return len(d.current) }

// BoundsError reports an out-of-range access.
type BoundsError struct {
	Device string
	Off    int
	Len    int
	Size   int
}

func (e *BoundsError) Error() string {
	return fmt.Sprintf("nvm %s: access [%d, %d) out of bounds (size %d)",
		e.Device, e.Off, e.Off+e.Len, e.Size)
}

func (d *Device) check(off, n int) error {
	if off < 0 || n < 0 || off+n > len(d.current) {
		return &BoundsError{Device: d.name, Off: off, Len: n, Size: len(d.current)}
	}
	return nil
}

// Write stores data at off in the volatile cache. The bytes are visible to
// subsequent reads but not durable until flushed.
func (d *Device) Write(off int, data []byte) error {
	if err := d.check(off, len(data)); err != nil {
		return err
	}
	copy(d.current[off:], data)
	if len(data) > 0 {
		d.dirty.Insert(off, off+len(data))
		d.written.Insert(off, off+len(data))
		d.writes++
	}
	return nil
}

// Read copies the current view (durable + cached) at off into buf.
func (d *Device) Read(off int, buf []byte) error {
	if err := d.check(off, len(buf)); err != nil {
		return err
	}
	copy(buf, d.current[off:])
	return nil
}

// ReadDurable copies only the durable image at off into buf; it shows what
// a post-crash recovery would see.
func (d *Device) ReadDurable(off int, buf []byte) error {
	if err := d.check(off, len(buf)); err != nil {
		return err
	}
	copy(buf, d.durable[off:])
	return nil
}

// Slice returns a read-only view of the current image; callers must not
// retain or mutate it across simulation steps.
func (d *Device) Slice(off, n int) ([]byte, error) {
	if err := d.check(off, n); err != nil {
		return nil, err
	}
	return d.current[off : off+n : off+n], nil
}

// Flush commits all dirty bytes intersecting [off, off+n) to the durable
// image and returns the number of bytes flushed.
func (d *Device) Flush(off, n int) (int, error) {
	if err := d.check(off, n); err != nil {
		return 0, err
	}
	flushed := 0
	for _, r := range d.dirty.Intersect(off, off+n) {
		copy(d.durable[r.Lo:r.Hi], d.current[r.Lo:r.Hi])
		flushed += r.Hi - r.Lo
	}
	d.dirty.Remove(off, off+n)
	if flushed > 0 {
		d.flushes++
	}
	return flushed, nil
}

// FlushAll commits every dirty byte.
func (d *Device) FlushAll() int {
	n, _ := d.Flush(0, len(d.current))
	return n
}

// Crash simulates power loss: all unflushed writes are discarded and the
// current view reverts to the durable image.
func (d *Device) Crash() {
	copy(d.current, d.durable)
	d.dirty.Clear()
	d.crashes++
}

// DirtyBytes returns the number of bytes written but not yet durable.
func (d *Device) DirtyBytes() int { return d.dirty.Total() }

// WrittenBytes returns the number of distinct bytes written since the
// device was created or last Reset — the footprint Reset will zero.
func (d *Device) WrittenBytes() int { return d.written.Total() }

// Reset returns the device to the state NewDevice would produce — both
// images all-zero, no dirty ranges, zeroed stats — without reallocating.
// Only bytes recorded in the written set are cleared, so a trial that
// touched 1 MB of a 16 MB device pays for 1 MB, not 16. It returns the
// number of bytes zeroed across both images.
func (d *Device) Reset() int {
	zeroed := 0
	for _, r := range d.written.rs {
		clear(d.current[r.Lo:r.Hi])
		clear(d.durable[r.Lo:r.Hi])
		zeroed += 2 * (r.Hi - r.Lo)
	}
	d.written.Clear()
	d.dirty.Clear()
	d.writes, d.flushes, d.crashes = 0, 0, 0
	return zeroed
}

// Stats reports operation counts.
func (d *Device) Stats() (writes, flushes, crashes int64) {
	return d.writes, d.flushes, d.crashes
}

// Region is a named sub-range of a device, carved by an Allocator.
type Region struct {
	Dev  *Device
	Name string
	Off  int
	Len  int
}

// Write stores data at region-relative offset off.
func (r *Region) Write(off int, data []byte) error {
	if off < 0 || off+len(data) > r.Len {
		return &BoundsError{Device: r.Dev.name + "/" + r.Name, Off: off, Len: len(data), Size: r.Len}
	}
	return r.Dev.Write(r.Off+off, data)
}

// Read copies the current view at region-relative offset off into buf.
func (r *Region) Read(off int, buf []byte) error {
	if off < 0 || off+len(buf) > r.Len {
		return &BoundsError{Device: r.Dev.name + "/" + r.Name, Off: off, Len: len(buf), Size: r.Len}
	}
	return r.Dev.Read(r.Off+off, buf)
}

// Flush commits region-relative [off, off+n).
func (r *Region) Flush(off, n int) (int, error) {
	if off < 0 || off+n > r.Len {
		return 0, &BoundsError{Device: r.Dev.name + "/" + r.Name, Off: off, Len: n, Size: r.Len}
	}
	return r.Dev.Flush(r.Off+off, n)
}

// Allocator carves non-overlapping regions out of a device.
type Allocator struct {
	dev  *Device
	next int
}

// NewAllocator returns an allocator over dev starting at offset 0.
func NewAllocator(dev *Device) *Allocator { return &Allocator{dev: dev} }

// Alloc reserves n bytes (aligned to 64) and returns the region.
func (a *Allocator) Alloc(name string, n int) (*Region, error) {
	const align = 64
	off := (a.next + align - 1) &^ (align - 1)
	if off+n > a.dev.Size() {
		return nil, fmt.Errorf("nvm %s: out of space allocating %q (%d bytes, %d free)",
			a.dev.name, name, n, a.dev.Size()-off)
	}
	a.next = off + n
	return &Region{Dev: a.dev, Name: name, Off: off, Len: n}, nil
}

// Remaining returns the unallocated byte count.
func (a *Allocator) Remaining() int {
	const align = 64
	off := (a.next + align - 1) &^ (align - 1)
	if off > a.dev.Size() {
		return 0
	}
	return a.dev.Size() - off
}

// Range is a half-open interval [Lo, Hi).
type Range struct {
	Lo, Hi int
}

// RangeSet maintains sorted, disjoint, non-adjacent ranges. The zero value
// is an empty set.
type RangeSet struct {
	rs []Range
}

// Insert adds [lo, hi), merging with overlapping or adjacent ranges.
func (s *RangeSet) Insert(lo, hi int) {
	if hi <= lo {
		return
	}
	i := sort.Search(len(s.rs), func(i int) bool { return s.rs[i].Hi >= lo })
	j := i
	for j < len(s.rs) && s.rs[j].Lo <= hi {
		if s.rs[j].Lo < lo {
			lo = s.rs[j].Lo
		}
		if s.rs[j].Hi > hi {
			hi = s.rs[j].Hi
		}
		j++
	}
	s.rs = append(s.rs[:i], append([]Range{{lo, hi}}, s.rs[j:]...)...)
}

// Remove deletes [lo, hi) from the set, splitting ranges as needed.
func (s *RangeSet) Remove(lo, hi int) {
	if hi <= lo {
		return
	}
	var out []Range
	for _, r := range s.rs {
		if r.Hi <= lo || r.Lo >= hi {
			out = append(out, r)
			continue
		}
		if r.Lo < lo {
			out = append(out, Range{r.Lo, lo})
		}
		if r.Hi > hi {
			out = append(out, Range{hi, r.Hi})
		}
	}
	s.rs = out
}

// Intersect returns the portions of the set inside [lo, hi).
func (s *RangeSet) Intersect(lo, hi int) []Range {
	var out []Range
	for _, r := range s.rs {
		l, h := r.Lo, r.Hi
		if l < lo {
			l = lo
		}
		if h > hi {
			h = hi
		}
		if l < h {
			out = append(out, Range{l, h})
		}
	}
	return out
}

// Contains reports whether every byte of [lo, hi) is in the set.
func (s *RangeSet) Contains(lo, hi int) bool {
	if hi <= lo {
		return true
	}
	for _, r := range s.rs {
		if r.Lo <= lo && hi <= r.Hi {
			return true
		}
	}
	return false
}

// Total returns the number of bytes covered.
func (s *RangeSet) Total() int {
	n := 0
	for _, r := range s.rs {
		n += r.Hi - r.Lo
	}
	return n
}

// Clear empties the set.
func (s *RangeSet) Clear() { s.rs = nil }

// Ranges returns a copy of the ranges in ascending order.
func (s *RangeSet) Ranges() []Range {
	out := make([]Range, len(s.rs))
	copy(out, s.rs)
	return out
}
