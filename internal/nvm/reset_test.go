package nvm

import (
	"bytes"
	"testing"
	"testing/quick"
)

// devOp is one step of a random device workload; see applyOp.
type devOp struct {
	Kind uint8
	Off  uint16
	Len  uint8
	Val  uint8
}

// applyOp interprets o against d and returns the observable result (flush
// count, or -1 for non-flush ops) so two devices can be compared op by op.
func applyOp(d *Device, o devOp) int {
	off := int(o.Off) % d.Size()
	n := int(o.Len)%64 + 1
	if off+n > d.Size() {
		n = d.Size() - off
	}
	switch o.Kind % 4 {
	case 0, 1:
		_ = d.Write(off, bytes.Repeat([]byte{o.Val}, n))
	case 2:
		f, _ := d.Flush(off, n)
		return f
	case 3:
		d.Crash()
	}
	return -1
}

// sameState compares every observable of two devices: the full current and
// durable images (via Read/ReadDurable), the dirty and written footprints,
// and the op counters.
func sameState(t *testing.T, a, b *Device) bool {
	t.Helper()
	if a.Size() != b.Size() {
		return false
	}
	ca, cb := make([]byte, a.Size()), make([]byte, b.Size())
	if err := a.Read(0, ca); err != nil {
		t.Fatal(err)
	}
	if err := b.Read(0, cb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ca, cb) {
		return false
	}
	if err := a.ReadDurable(0, ca); err != nil {
		t.Fatal(err)
	}
	if err := b.ReadDurable(0, cb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ca, cb) {
		return false
	}
	if a.DirtyBytes() != b.DirtyBytes() || a.WrittenBytes() != b.WrittenBytes() {
		return false
	}
	aw, af, ac := a.Stats()
	bw, bf, bc := b.Stats()
	return aw == bw && af == bf && ac == bc
}

// TestDeviceResetEqualsFresh is the pooling soundness property: a device
// that ran an arbitrary workload and was Reset must be indistinguishable
// from a fresh device through any subsequent workload — same reads, same
// durable views, same Flush return values.
func TestDeviceResetEqualsFresh(t *testing.T) {
	f := func(first, second []devOp) bool {
		used := NewDevice("used", 512)
		for _, o := range first {
			applyOp(used, o)
		}
		used.Reset()
		fresh := NewDevice("fresh", 512)
		if !sameState(t, used, fresh) {
			return false
		}
		for _, o := range second {
			if applyOp(used, o) != applyOp(fresh, o) {
				return false
			}
		}
		return sameState(t, used, fresh)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestResetZeroesOnlyWritten pins the cost model: Reset reports 2x the
// written footprint (both images), not 2x the device size.
func TestResetZeroesOnlyWritten(t *testing.T) {
	d := NewDevice("r", 1<<20)
	if err := d.Write(100, make([]byte, 50)); err != nil {
		t.Fatal(err)
	}
	if err := d.Write(120, make([]byte, 100)); err != nil { // overlaps: union is [100,220)
		t.Fatal(err)
	}
	if _, err := d.Flush(0, 1<<20); err != nil {
		t.Fatal(err)
	}
	if got, want := d.WrittenBytes(), 120; got != want {
		t.Fatalf("WrittenBytes = %d, want %d", got, want)
	}
	if got, want := d.Reset(), 240; got != want {
		t.Fatalf("Reset zeroed %d bytes, want %d", got, want)
	}
	if d.WrittenBytes() != 0 || d.DirtyBytes() != 0 {
		t.Fatalf("footprints after reset: written=%d dirty=%d", d.WrittenBytes(), d.DirtyBytes())
	}
	if got := d.Reset(); got != 0 {
		t.Fatalf("second Reset zeroed %d bytes, want 0", got)
	}
}

// TestResetClearsFlushedAndCrashed covers the subtle path: bytes that were
// flushed (live in durable) or crash-restored (copied back into current)
// still sit inside the written set, so Reset must clear both images.
func TestResetClearsFlushedAndCrashed(t *testing.T) {
	d := NewDevice("fc", 256)
	if err := d.Write(0, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	d.FlushAll()
	if err := d.Write(10, []byte{4, 5}); err != nil {
		t.Fatal(err)
	}
	d.Crash() // current now mirrors durable: {1,2,3} at 0, zeros at 10
	d.Reset()
	buf := make([]byte, 16)
	if err := d.Read(0, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, make([]byte, 16)) {
		t.Fatalf("current image not zeroed: %v", buf)
	}
	if err := d.ReadDurable(0, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, make([]byte, 16)) {
		t.Fatalf("durable image not zeroed: %v", buf)
	}
}

// TestRangeSetIntersectContainsProperty extends the bitmap-model property
// to the read-side operations Reset and Flush depend on.
func TestRangeSetIntersectContainsProperty(t *testing.T) {
	type op struct {
		Insert bool
		Lo, Hi uint8
	}
	type query struct{ Lo, Hi uint8 }
	f := func(ops []op, qs []query) bool {
		var s RangeSet
		model := make([]bool, 256)
		for _, o := range ops {
			lo, hi := int(o.Lo), int(o.Hi)
			if lo > hi {
				lo, hi = hi, lo
			}
			if o.Insert {
				s.Insert(lo, hi)
			} else {
				s.Remove(lo, hi)
			}
			for i := lo; i < hi; i++ {
				model[i] = o.Insert
			}
		}
		for _, q := range qs {
			lo, hi := int(q.Lo), int(q.Hi)
			if lo > hi {
				lo, hi = hi, lo
			}
			covered, all := 0, true
			for i := lo; i < hi; i++ {
				if model[i] {
					covered++
				} else {
					all = false
				}
			}
			if s.Contains(lo, hi) != all {
				return false
			}
			got := 0
			prev := lo - 1
			for _, r := range s.Intersect(lo, hi) {
				if r.Lo <= prev || r.Hi <= r.Lo || r.Lo < lo || r.Hi > hi {
					return false
				}
				prev = r.Hi
				got += r.Hi - r.Lo
				for i := r.Lo; i < r.Hi; i++ {
					if !model[i] {
						return false
					}
				}
			}
			if got != covered {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// FuzzDeviceReset drives a device with a fuzzer-chosen workload, resets
// it, and requires equivalence with a fresh device under a second
// fuzzer-chosen workload.
func FuzzDeviceReset(f *testing.F) {
	f.Add([]byte{0, 0, 10, 3, 7}, []byte{2, 0, 10})
	f.Add([]byte{1, 0, 200, 63, 255, 3, 0, 0, 0}, []byte{0, 0, 5, 8, 1})
	f.Fuzz(func(t *testing.T, first, second []byte) {
		decode := func(raw []byte) []devOp {
			var ops []devOp
			for i := 0; i+4 < len(raw); i += 5 {
				ops = append(ops, devOp{
					Kind: raw[i],
					Off:  uint16(raw[i+1])<<8 | uint16(raw[i+2]),
					Len:  raw[i+3],
					Val:  raw[i+4],
				})
			}
			return ops
		}
		used := NewDevice("used", 4096)
		for _, o := range decode(first) {
			applyOp(used, o)
		}
		used.Reset()
		fresh := NewDevice("fresh", 4096)
		for _, o := range decode(second) {
			if a, b := applyOp(used, o), applyOp(fresh, o); a != b {
				t.Fatalf("op %+v diverged: reset=%d fresh=%d", o, a, b)
			}
		}
		if !sameState(t, used, fresh) {
			t.Fatal("reset device state differs from fresh device")
		}
	})
}

// TestDevicePoolReuse checks the pool's core contract: Put+Get of a
// matching size reuses the reset device under the new name, other sizes
// allocate fresh, and the counters record the split.
func TestDevicePoolReuse(t *testing.T) {
	var p DevicePool
	d1 := p.Get("a", 1024)
	if err := d1.Write(0, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	p.Put(d1)
	if p.Idle() != 1 {
		t.Fatalf("idle = %d, want 1", p.Idle())
	}
	d2 := p.Get("b", 1024)
	if d2 != d1 {
		t.Fatal("same-size Get did not reuse the pooled device")
	}
	if d2.Name() != "b" {
		t.Fatalf("reused device name = %q, want %q", d2.Name(), "b")
	}
	if !sameState(t, d2, NewDevice("b", 1024)) {
		t.Fatal("reused device not fresh")
	}
	d3 := p.Get("c", 2048)
	if d3.Size() != 2048 {
		t.Fatalf("size = %d", d3.Size())
	}
	s := p.Stats()
	if s.Gets != 3 || s.Puts != 1 || s.Fresh != 2 || s.Reused != 1 {
		t.Fatalf("stats = %+v", s)
	}
	// Demand counts a full fresh allocation per Get; actual zeroing paid
	// full price twice (fresh allocs) plus 6 bytes for the reset.
	if s.BytesDemand != 2*(1024+1024+2048) {
		t.Fatalf("BytesDemand = %d", s.BytesDemand)
	}
	if s.BytesZeroed != 2*(1024+2048)+6 {
		t.Fatalf("BytesZeroed = %d", s.BytesZeroed)
	}
	p.Put(nil) // must be a no-op
	if p.Stats().Puts != 1 {
		t.Fatal("Put(nil) counted")
	}
}
