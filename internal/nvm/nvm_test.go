package nvm

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestWriteReadRoundTrip(t *testing.T) {
	d := NewDevice("test", 1024)
	data := []byte("hello, nvm")
	if err := d.Write(100, data); err != nil {
		t.Fatalf("write: %v", err)
	}
	buf := make([]byte, len(data))
	if err := d.Read(100, buf); err != nil {
		t.Fatalf("read: %v", err)
	}
	if !bytes.Equal(buf, data) {
		t.Fatalf("read back %q, want %q", buf, data)
	}
}

func TestDurabilityAcrossCrash(t *testing.T) {
	d := NewDevice("test", 1024)
	flushed := []byte("durable")
	lost := []byte("volatile")
	if err := d.Write(0, flushed); err != nil {
		t.Fatal(err)
	}
	if n := d.FlushAll(); n != len(flushed) {
		t.Fatalf("flushed %d bytes, want %d", n, len(flushed))
	}
	if err := d.Write(100, lost); err != nil {
		t.Fatal(err)
	}
	if d.DirtyBytes() != len(lost) {
		t.Fatalf("dirty = %d, want %d", d.DirtyBytes(), len(lost))
	}

	d.Crash()

	buf := make([]byte, len(flushed))
	if err := d.Read(0, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, flushed) {
		t.Fatalf("flushed data lost: %q", buf)
	}
	buf2 := make([]byte, len(lost))
	if err := d.Read(100, buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf2, make([]byte, len(lost))) {
		t.Fatalf("unflushed data survived crash: %q", buf2)
	}
	if d.DirtyBytes() != 0 {
		t.Fatal("dirty bytes after crash")
	}
}

func TestPartialFlush(t *testing.T) {
	d := NewDevice("test", 1024)
	if err := d.Write(0, bytes.Repeat([]byte{0xAA}, 200)); err != nil {
		t.Fatal(err)
	}
	// Flush only the first 100 bytes.
	if n, err := d.Flush(0, 100); err != nil || n != 100 {
		t.Fatalf("flush: n=%d err=%v", n, err)
	}
	d.Crash()
	buf := make([]byte, 200)
	if err := d.Read(0, buf); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if buf[i] != 0xAA {
			t.Fatalf("flushed byte %d lost", i)
		}
	}
	for i := 100; i < 200; i++ {
		if buf[i] != 0 {
			t.Fatalf("unflushed byte %d survived", i)
		}
	}
}

func TestReadDurableSeesOnlyFlushed(t *testing.T) {
	d := NewDevice("test", 64)
	if err := d.Write(0, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 3)
	if err := d.ReadDurable(0, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, []byte{0, 0, 0}) {
		t.Fatalf("durable view shows unflushed data: %v", buf)
	}
	d.FlushAll()
	if err := d.ReadDurable(0, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, []byte{1, 2, 3}) {
		t.Fatalf("durable view missing flushed data: %v", buf)
	}
}

func TestBoundsErrors(t *testing.T) {
	d := NewDevice("test", 64)
	var be *BoundsError
	if err := d.Write(60, make([]byte, 8)); !errors.As(err, &be) {
		t.Fatalf("write OOB err = %v, want BoundsError", err)
	}
	if err := d.Read(-1, make([]byte, 1)); !errors.As(err, &be) {
		t.Fatalf("negative read err = %v", err)
	}
	if _, err := d.Flush(0, 100); !errors.As(err, &be) {
		t.Fatalf("flush OOB err = %v", err)
	}
	if _, err := d.Slice(63, 2); !errors.As(err, &be) {
		t.Fatalf("slice OOB err = %v", err)
	}
	if be.Error() == "" {
		t.Fatal("empty error message")
	}
}

func TestRegionOffsets(t *testing.T) {
	d := NewDevice("test", 4096)
	a := NewAllocator(d)
	r1, err := a.Alloc("log", 1000)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := a.Alloc("data", 1000)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Off < r1.Off+r1.Len {
		t.Fatalf("regions overlap: %+v %+v", r1, r2)
	}
	if r2.Off%64 != 0 {
		t.Fatalf("region not aligned: %d", r2.Off)
	}
	if err := r1.Write(0, []byte("abc")); err != nil {
		t.Fatal(err)
	}
	if err := r2.Write(0, []byte("xyz")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 3)
	if err := r1.Read(0, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "abc" {
		t.Fatalf("region read = %q", buf)
	}
	var be *BoundsError
	if err := r1.Write(999, []byte("ab")); !errors.As(err, &be) {
		t.Fatalf("region overflow err = %v", err)
	}
	if _, err := r1.Flush(0, 3); err != nil {
		t.Fatal(err)
	}
}

func TestAllocatorExhaustion(t *testing.T) {
	d := NewDevice("test", 128)
	a := NewAllocator(d)
	if _, err := a.Alloc("big", 100); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Alloc("more", 100); err == nil {
		t.Fatal("expected out-of-space error")
	}
	if a.Remaining() > 128 {
		t.Fatalf("remaining = %d", a.Remaining())
	}
}

func TestRangeSetInsertMerge(t *testing.T) {
	var s RangeSet
	s.Insert(10, 20)
	s.Insert(30, 40)
	s.Insert(15, 35) // bridges both
	rs := s.Ranges()
	if len(rs) != 1 || rs[0] != (Range{10, 40}) {
		t.Fatalf("ranges = %v, want [{10 40}]", rs)
	}
	s.Insert(40, 50) // adjacent merges
	rs = s.Ranges()
	if len(rs) != 1 || rs[0] != (Range{10, 50}) {
		t.Fatalf("ranges = %v, want [{10 50}]", rs)
	}
	if s.Total() != 40 {
		t.Fatalf("total = %d", s.Total())
	}
}

func TestRangeSetRemoveSplit(t *testing.T) {
	var s RangeSet
	s.Insert(0, 100)
	s.Remove(40, 60)
	rs := s.Ranges()
	if len(rs) != 2 || rs[0] != (Range{0, 40}) || rs[1] != (Range{60, 100}) {
		t.Fatalf("ranges = %v", rs)
	}
	if s.Contains(30, 50) {
		t.Fatal("Contains includes removed span")
	}
	if !s.Contains(0, 40) || !s.Contains(60, 100) {
		t.Fatal("Contains misses present span")
	}
}

func TestRangeSetIntersect(t *testing.T) {
	var s RangeSet
	s.Insert(0, 10)
	s.Insert(20, 30)
	got := s.Intersect(5, 25)
	if len(got) != 2 || got[0] != (Range{5, 10}) || got[1] != (Range{20, 25}) {
		t.Fatalf("intersect = %v", got)
	}
	if s.Intersect(12, 18) != nil {
		t.Fatal("intersect of gap should be empty")
	}
}

func TestRangeSetEmptyOps(t *testing.T) {
	var s RangeSet
	s.Insert(5, 5)  // empty insert
	s.Remove(0, 10) // remove from empty
	if s.Total() != 0 {
		t.Fatal("empty ops changed set")
	}
	if !s.Contains(3, 3) {
		t.Fatal("empty interval not contained")
	}
}

// TestRangeSetModelProperty checks the RangeSet against a naive boolean
// array model under random insert/remove sequences.
func TestRangeSetModelProperty(t *testing.T) {
	type op struct {
		Insert bool
		Lo, Hi uint8
	}
	f := func(ops []op) bool {
		var s RangeSet
		model := make([]bool, 256)
		for _, o := range ops {
			lo, hi := int(o.Lo), int(o.Hi)
			if lo > hi {
				lo, hi = hi, lo
			}
			if o.Insert {
				s.Insert(lo, hi)
				for i := lo; i < hi; i++ {
					model[i] = true
				}
			} else {
				s.Remove(lo, hi)
				for i := lo; i < hi; i++ {
					model[i] = false
				}
			}
		}
		total := 0
		for _, b := range model {
			if b {
				total++
			}
		}
		if s.Total() != total {
			return false
		}
		// Every reported range must be covered in the model, maximal and sorted.
		prev := -1
		for _, r := range s.Ranges() {
			if r.Lo <= prev || r.Hi <= r.Lo {
				return false
			}
			prev = r.Hi
			for i := r.Lo; i < r.Hi; i++ {
				if !model[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCrashWriteFlushProperty(t *testing.T) {
	// Property: after any sequence of writes with some flushed, a crash
	// preserves exactly the flushed prefix state.
	f := func(vals []uint8) bool {
		d := NewDevice("p", 256)
		for i, v := range vals {
			off := int(v)
			_ = d.Write(off%200, []byte{v})
			if i%3 == 0 {
				_, _ = d.Flush(off%200, 1)
			}
		}
		snapshot := make([]byte, 256)
		_ = d.ReadDurable(0, snapshot)
		d.Crash()
		after := make([]byte, 256)
		_ = d.Read(0, after)
		return bytes.Equal(snapshot, after)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestStats(t *testing.T) {
	d := NewDevice("s", 64)
	_ = d.Write(0, []byte{1})
	d.FlushAll()
	d.Crash()
	w, f, c := d.Stats()
	if w != 1 || f != 1 || c != 1 {
		t.Fatalf("stats = %d,%d,%d", w, f, c)
	}
}
