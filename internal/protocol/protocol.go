package protocol

import (
	"errors"
	"fmt"
	"sort"

	"hyperloop/internal/cpusim"
	"hyperloop/internal/rdma"
	"hyperloop/internal/sim"
)

// Canonical sentinel errors. Implementations wrap these (see WrapErr) so
// cross-protocol code can match failure classes with errors.Is without
// knowing which datapath produced them.
var (
	// ErrTooManyInFlight: the operation window (Depth-2) is full.
	ErrTooManyInFlight = errors.New("replication: operation window exceeded")
	// ErrTimeout: the op's ACK did not arrive within OpTimeout.
	ErrTimeout = errors.New("replication: operation timed out")
	// ErrBadArgument: an op argument is outside the mirror or malformed.
	ErrBadArgument = errors.New("replication: bad argument")
	// ErrClosed: the group was torn down with Close.
	ErrClosed = errors.New("replication: group closed")
)

// IsOpError reports whether err is one of the canonical per-operation
// failures (timeout, window full, bad argument, closed group) — the
// errors a driver can skip past — as opposed to a datapath breakage.
func IsOpError(err error) bool {
	return errors.Is(err, ErrTimeout) || errors.Is(err, ErrTooManyInFlight) ||
		errors.Is(err, ErrBadArgument) || errors.Is(err, ErrClosed)
}

// wrappedErr is a sentinel with its own message but a canonical base, so
// errors.Is(pkgErr, protocol.ErrX) holds while the package keeps its
// historical error string.
type wrappedErr struct {
	msg  string
	base error
}

func (e *wrappedErr) Error() string { return e.msg }
func (e *wrappedErr) Unwrap() error { return e.base }

// WrapErr builds a package-level sentinel: it prints msg, and unwraps to
// base for errors.Is. Example:
//
//	var ErrTimeout = protocol.WrapErr("hyperloop: operation timed out", protocol.ErrTimeout)
func WrapErr(msg string, base error) error { return &wrappedErr{msg: msg, base: base} }

// Protocol is the group-primitive surface every replication strategy
// provides. All offsets are relative to the mirrored region, which spans
// [0, MirrorSize) on every member including the client.
type Protocol interface {
	// WriteLocal stores data into the client's mirror; the usual pattern
	// is WriteLocal followed by Write to replicate the range.
	WriteLocal(off int, data []byte) error
	// ReadLocal returns a copy of the client's mirror range.
	ReadLocal(off, n int) ([]byte, error)

	// WriteAsync replicates [off, off+size) to all replicas (gWRITE),
	// optionally durable on each; the signal fires on the group ACK.
	WriteAsync(off, size int, durable bool) (*sim.Signal, error)
	// Write is the blocking form of WriteAsync; with MaxRetries > 0 a
	// timed-out write is re-issued under a fresh sequence number.
	Write(f *sim.Fiber, off, size int, durable bool) error
	// MemcpyAsync copies src→dst locally on every member (gMEMCPY).
	MemcpyAsync(src, dst, size int, durable bool) (*sim.Signal, error)
	// Memcpy is the blocking form of MemcpyAsync, with Write's retry
	// policy (gMEMCPY is idempotent).
	Memcpy(f *sim.Fiber, src, dst, size int, durable bool) error
	// CAS performs a group compare-and-swap of the 8-byte word at off on
	// every member whose execute-map entry is true, returning the original
	// values observed. gCAS is never retried.
	CAS(f *sim.Fiber, off int, old, new uint64, exec []bool) ([]uint64, error)
	// FlushAsync makes [off, off+size) durable on every member (gFLUSH).
	FlushAsync(off, size int) (*sim.Signal, error)
	// Flush is the blocking form of FlushAsync, with Write's retry policy.
	Flush(f *sim.Fiber, off, size int) error

	// GroupSize returns the number of replicated members (the client's
	// copy not included).
	GroupSize() int
	// InFlight returns operations awaiting their group ACK.
	InFlight() int
	// Stats reports operations issued and completed.
	Stats() (issued, completed int64)
	// Retried reports timed-out operations re-issued by blocking paths.
	Retried() int64
	// Close tears the datapath down: in-flight operations fail with the
	// protocol's ErrClosed, further issues are rejected, and every QP/CQ
	// the group created is destroyed at the rdma layer.
	Close()
}

// Env is the cluster half of a protocol's inputs: the shared fabric, the
// client NIC, the replica NICs in member order, and (for CPU-driven
// protocols) each replica machine's CPU scheduler. Scheds may be nil for
// NIC-offloaded protocols.
type Env struct {
	Fabric   *rdma.Fabric
	Client   *rdma.NIC
	Replicas []*rdma.NIC
	Scheds   []*cpusim.Scheduler
}

// Params is the policy half: mirror size, in-flight window, and the
// timeout/retry policy shared by every protocol's blocking paths. Zero
// values select each implementation's defaults (Depth 32, no timeout).
type Params struct {
	MirrorSize   int
	Depth        int
	OpTimeout    sim.Duration
	MaxRetries   int
	RetryBackoff sim.Duration
	// Quorum is broadcast-specific: acks required to complete a write
	// (0 = all members). Other protocols ignore it.
	Quorum int

	// WakePenalty/WakePenaltyProb model multi-tenant co-location for
	// CPU-driven protocols: with probability WakePenaltyProb a replica
	// handler wake pays up to WakePenalty of extra scheduling delay (the
	// paper's §2.2 tail mechanism). NIC-offloaded protocols have no
	// replica handler and ignore both.
	WakePenalty     sim.Duration
	WakePenaltyProb float64
}

// Traits are static per-protocol properties that cross-protocol harnesses
// (the conformance suite, the hypothesis catalog) use to pick applicable
// scenarios and the guarantee each protocol actually makes. The zero value
// is the strongest default: completion requires every member's ack and no
// replica CPU sits on the critical path.
type Traits struct {
	// AcksNeeded returns how many member acks (of a group of g members)
	// the protocol requires before it completes a write — the floor on how
	// many replicas provably hold an acknowledged op. nil means all g.
	AcksNeeded func(g int) int
	// CPUDriven marks protocols whose replica datapath runs on the
	// replicas' CPU schedulers, exposing op latency to co-located tenant
	// load. NIC-offloaded protocols leave it false.
	CPUDriven bool
}

// SetTraits attaches traits to a registered protocol; implementations call
// it from the same init that called Register. Unknown names panic — it is
// the same wiring bug as a duplicate registration.
func SetTraits(name string, t Traits) {
	e, ok := registry[name]
	if !ok {
		panic(fmt.Sprintf("protocol: SetTraits on unregistered protocol %q", name))
	}
	e.traits = t
	registry[name] = e
}

// TraitsOf returns a protocol's traits (the zero value when none were set
// or the name is unknown).
func TraitsOf(name string) Traits { return registry[name].traits }

// AcksNeeded returns the number of member acks protocol name requires to
// complete a write on a group of g members: the registered trait when one
// is set, otherwise all g.
func AcksNeeded(name string, g int) int {
	if fn := registry[name].traits.AcksNeeded; fn != nil {
		return fn(g)
	}
	return g
}

// Builder constructs a protocol instance over a cluster.
type Builder func(Env, Params) (Protocol, error)

type regEntry struct {
	desc   string
	build  Builder
	traits Traits
}

var registry = map[string]regEntry{}

// Register installs a protocol under name; implementations call it from
// package init. Registering a duplicate name panics — it is a wiring bug.
func Register(name, desc string, b Builder) {
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("protocol: duplicate registration of %q", name))
	}
	registry[name] = regEntry{desc: desc, build: b}
}

// Names returns all registered protocol names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Describe returns a protocol's one-line description ("" if unknown).
func Describe(name string) string { return registry[name].desc }

// Build constructs the named protocol over env with params.
func Build(name string, env Env, p Params) (Protocol, error) {
	e, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("protocol: unknown protocol %q (have %v)", name, Names())
	}
	return e.build(env, p)
}
