// Package protocol defines the pluggable replication-strategy contract
// shared by every group datapath in this repository.
//
// A replication protocol takes the same inputs — one client NIC, a set of
// replica NICs on a common fabric, and a mirrored memory region of
// MirrorSize bytes at device offset 0 on every member — and provides the
// same group primitives: gWRITE, gCAS, gMEMCPY and gFLUSH, each in async
// (Signal-returning) and blocking (Fiber-taking) form, plus local mirror
// access, lifecycle (Close) and accounting (Stats, InFlight, Retried).
// What differs per protocol is the dataflow between doorbell and
// completion:
//
//   - chain ("chain", internal/hyperloop.Group): the paper's §4 topology.
//     The op hops replica to replica through pre-posted WAIT-gated WQE
//     chains; the tail's WRITE_WITH_IMM is the group ACK. Total order,
//     2(G+1) messages per replicated write, but a single slow or dead hop
//     stalls the whole group.
//   - fan-out ("fanout", internal/hyperloop.FanoutGroup): the §7
//     extension. A primary NIC coordinates all backups in parallel and
//     aggregates their acks in hardware via absolute WAIT thresholds.
//   - broadcast ("bcast"/"bcast-maj", internal/hyperloop.BroadcastGroup):
//     ABD/Hermes-style. The client NIC fans value + metadata directly to
//     every replica and completes on a quorum of acks — all replicas for
//     "bcast" (Hermes-style strong mode), a majority for "bcast-maj"
//     (ABD-style, stays available across a minority of replica crashes).
//   - naive ("naive", internal/naive.Group): the §6 baseline — the chain
//     topology with replica CPUs on the critical path.
//
// Implementations register a Builder under a protocol name in their
// package init; Build constructs one over an Env (the cluster resources)
// and Params (mirror size, window depth, timeout/retry policy). Note the
// registry is populated by importing the implementing packages — callers
// that construct protocols by name must import internal/hyperloop and
// internal/naive (the root hyperloop package and internal/experiments
// both do).
//
// The package also hosts the client-side bookkeeping every protocol
// shares and that used to be duplicated per datapath: the Tracker
// (sequence numbers, in-flight window, per-op timeout timers, retry
// accounting, fail-all-on-Close) and ApplyLocal (mirroring an op on the
// client's own copy, §4.1). Canonical sentinel errors live here too;
// per-package errors wrap them via WrapErr so errors.Is matches across
// protocols while each package keeps its historical error strings.
package protocol
