package protocol

import (
	"encoding/binary"
	"errors"

	"hyperloop/internal/nvm"
	"hyperloop/internal/sim"
)

// OpKind distinguishes the four group primitives on the wire. The values
// are the shared op encoding: every protocol's metadata header carries
// them as a little-endian uint32.
type OpKind uint32

// The group primitives.
const (
	KindWrite OpKind = iota + 1
	KindCAS
	KindMemcpy
	KindFlush
)

// Op carries one operation's arguments through metadata building and the
// client-side local apply.
type Op struct {
	Off, Size int
	Src, Dst  int
	Old, New  uint64
	Exec      []bool
	Durable   bool
}

// Pending tracks a client-issued operation awaiting its group ACK.
type Pending struct {
	Kind    OpKind
	Sig     *sim.Signal
	Results []uint64
	Started sim.Time
	timer   *sim.Timer
}

// Tracker owns the client-side ack/credit bookkeeping every protocol
// shares: sequence assignment, the in-flight window, per-op timeout
// timers, issue/complete/retry counters, and fail-everything-on-Close.
// It schedules kernel events only when a timeout is configured, so a
// datapath moved onto it keeps a byte-identical event stream.
type Tracker struct {
	k            *sim.Kernel
	depth        int
	opTimeout    sim.Duration
	maxRetries   int
	retryBackoff sim.Duration
	errTimeout   error // fired into pending signals on timeout
	errClosed    error // fired into pending signals on Close

	nextSeq  uint64
	inflight map[uint64]*Pending

	issued    int64
	completed int64
	retries   int64
	closed    bool
}

// NewTracker builds the bookkeeping for a group with the given window
// depth and timeout/retry policy. errTimeout and errClosed are the
// owning package's sentinels (wrapping the canonical ones via WrapErr).
func NewTracker(k *sim.Kernel, depth int, opTimeout sim.Duration,
	maxRetries int, retryBackoff sim.Duration, errTimeout, errClosed error) *Tracker {
	return &Tracker{
		k: k, depth: depth,
		opTimeout: opTimeout, maxRetries: maxRetries, retryBackoff: retryBackoff,
		errTimeout: errTimeout, errClosed: errClosed,
		inflight: make(map[uint64]*Pending),
	}
}

// Closed reports whether Close ran.
func (t *Tracker) Closed() bool { return t.closed }

// InFlight returns operations awaiting their group ACK.
func (t *Tracker) InFlight() int { return len(t.inflight) }

// HasWindow reports whether another operation fits the in-flight window.
// Two window slots stay reserved so the pre-armed chains for sequence
// seq+Depth are always re-armed before seq wraps onto their ring slots.
func (t *Tracker) HasWindow() bool { return len(t.inflight) < t.depth-2 }

// NextSeq assigns the next operation sequence number.
func (t *Tracker) NextSeq() uint64 {
	seq := t.nextSeq
	t.nextSeq++
	return seq
}

// Track registers the pending op for seq and arms its timeout timer (if
// the tracker has one). Call it at the same point the datapath is ready
// to transmit — the timer is a kernel event, so its arming position is
// part of the deterministic event stream.
func (t *Tracker) Track(seq uint64, kind OpKind) *Pending {
	op := &Pending{Kind: kind, Sig: sim.NewSignal(), Started: t.k.Now()}
	t.inflight[seq] = op
	if t.opTimeout > 0 {
		op.timer = t.k.After(t.opTimeout, func() {
			if _, ok := t.inflight[seq]; ok {
				delete(t.inflight, seq)
				op.Sig.Fire(t.errTimeout)
			}
		})
	}
	return op
}

// Complete removes seq from the window, stops its timer and counts the
// completion, returning the pending op — or nil for a late ACK that
// arrived after a timeout already resolved the op.
func (t *Tracker) Complete(seq uint64) *Pending {
	op, ok := t.inflight[seq]
	if !ok {
		return nil
	}
	delete(t.inflight, seq)
	if op.timer != nil {
		op.timer.Stop()
	}
	t.completed++
	return op
}

// Abort removes seq from the window without counting a completion — for
// an issue path that tracked the op and then failed before transmission.
func (t *Tracker) Abort(seq uint64) {
	if op, ok := t.inflight[seq]; ok {
		delete(t.inflight, seq)
		if op.timer != nil {
			op.timer.Stop()
		}
	}
}

// Lookup returns seq's pending op without completing it (nil if absent).
// Quorum protocols use it to accumulate per-member results before the
// ack threshold is reached.
func (t *Tracker) Lookup(seq uint64) *Pending { return t.inflight[seq] }

// MarkIssued counts a successfully transmitted operation.
func (t *Tracker) MarkIssued() { t.issued++ }

// Stats reports operations issued and completed.
func (t *Tracker) Stats() (issued, completed int64) { return t.issued, t.completed }

// Retried reports timed-out operations re-issued by the blocking paths.
func (t *Tracker) Retried() int64 { return t.retries }

// Retry runs an idempotent async issue function, awaiting its signal and
// re-issuing on the tracker's timeout error up to MaxRetries extra
// attempts with linear backoff. Only the blocking forms of idempotent
// primitives use it; gCAS is never retried.
func (t *Tracker) Retry(f *sim.Fiber, issue func() (*sim.Signal, error)) error {
	for attempt := 0; ; attempt++ {
		sig, err := issue()
		if err == nil {
			err = f.Await(sig)
		}
		if err == nil || !errors.Is(err, t.errTimeout) || attempt >= t.maxRetries {
			return err
		}
		t.retries++
		if t.retryBackoff > 0 {
			f.Sleep(t.retryBackoff * sim.Duration(attempt+1))
		}
	}
}

// Close fails every in-flight operation with the tracker's closed error
// and rejects further tracking. Safe to call twice.
func (t *Tracker) Close() {
	if t.closed {
		return
	}
	t.closed = true
	for seq, op := range t.inflight {
		if op.timer != nil {
			op.timer.Stop()
		}
		delete(t.inflight, seq)
		op.Sig.Fire(t.errClosed)
	}
}

// ApplyLocal mirrors an operation on the client's own copy, exactly as
// §4.1 prescribes: the client performs the memory operation in its own
// region while the replica NICs (or CPUs) perform the same operation in
// theirs. Durability of the client's copy is the client CPU's job.
func ApplyLocal(mem *nvm.Device, kind OpKind, p Op) error {
	switch kind {
	case KindWrite, KindFlush:
		if p.Durable || kind == KindFlush {
			if _, err := mem.Flush(p.Off, p.Size); err != nil {
				return err
			}
		}
	case KindMemcpy:
		data := make([]byte, p.Size)
		if err := mem.Read(p.Src, data); err != nil {
			return err
		}
		if err := mem.Write(p.Dst, data); err != nil {
			return err
		}
		if p.Durable {
			if _, err := mem.Flush(p.Dst, p.Size); err != nil {
				return err
			}
		}
	case KindCAS:
		cur, err := mem.Slice(p.Off, 8)
		if err != nil {
			return err
		}
		if binary.LittleEndian.Uint64(cur) == p.Old {
			var nb [8]byte
			binary.LittleEndian.PutUint64(nb[:], p.New)
			if err := mem.Write(p.Off, nb[:]); err != nil {
				return err
			}
		}
	}
	return nil
}
