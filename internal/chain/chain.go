// Package chain provides the replication control path the datapath
// packages deliberately leave out (§5): heartbeat-based failure detection
// ("a configurable number of consecutive missing heartbeats is considered
// a data path failure"), pausing writes, catch-up state transfer for a
// replacement replica, and re-establishing a fresh HyperLoop datapath.
//
// HyperLoop accelerates only the data path; when membership changes, the
// application's recovery protocol takes over — this package is that
// protocol's skeleton.
package chain

import (
	"errors"
	"fmt"

	"hyperloop/internal/rdma"
	"hyperloop/internal/sim"
)

// Errors returned by the manager.
var (
	ErrStopped    = errors.New("chain: monitor stopped")
	ErrNoHealthy  = errors.New("chain: no healthy source for catch-up")
	ErrBadMember  = errors.New("chain: bad member index")
	ErrNotStarted = errors.New("chain: monitor not started")
	// ErrSourceLost reports that the catch-up source died mid-transfer;
	// the copied image cannot be trusted and the caller must pick a new
	// source and retry.
	ErrSourceLost = errors.New("chain: catch-up source died during transfer")
	// ErrTargetLost reports that the replacement died mid-transfer; the
	// caller must provision a different replacement.
	ErrTargetLost = errors.New("chain: catch-up target died during transfer")
)

// Config parameterizes failure detection.
type Config struct {
	// HeartbeatEvery is the beat interval.
	HeartbeatEvery sim.Duration
	// MissedThreshold is how many consecutive missed beats mark a member
	// suspected (the paper's "configurable number of consecutive missing
	// heartbeats").
	MissedThreshold int
	// CatchUpBandwidthBps bounds state-transfer speed during catch-up.
	CatchUpBandwidthBps float64
}

// DefaultConfig returns production-ish settings scaled to the simulation.
func DefaultConfig() Config {
	return Config{
		HeartbeatEvery:      5 * sim.Millisecond,
		MissedThreshold:     3,
		CatchUpBandwidthBps: 56e9,
	}
}

// MemberState describes a member's health.
type MemberState int

// Member states.
const (
	StateHealthy MemberState = iota + 1
	StateSuspected
)

// String returns the state name.
func (s MemberState) String() string {
	if s == StateHealthy {
		return "healthy"
	}
	return "suspected"
}

// member tracks one replica's heartbeat state.
type member struct {
	nic    *rdma.NIC
	missed int
	state  MemberState
}

// Manager monitors a replica set and coordinates recovery.
type Manager struct {
	k       *sim.Kernel
	cfg     Config
	members []*member

	onSuspect func(idx int)
	running   bool
	stop      *sim.Timer
	paused    bool

	beats     int64
	suspicion int64
}

// New builds a manager over the replicas' NICs.
func New(k *sim.Kernel, nics []*rdma.NIC, cfg Config) (*Manager, error) {
	if len(nics) == 0 {
		return nil, fmt.Errorf("%w: no members", ErrBadMember)
	}
	if cfg.HeartbeatEvery <= 0 {
		cfg.HeartbeatEvery = DefaultConfig().HeartbeatEvery
	}
	if cfg.MissedThreshold <= 0 {
		cfg.MissedThreshold = DefaultConfig().MissedThreshold
	}
	if cfg.CatchUpBandwidthBps <= 0 {
		cfg.CatchUpBandwidthBps = DefaultConfig().CatchUpBandwidthBps
	}
	m := &Manager{k: k, cfg: cfg}
	for _, nic := range nics {
		m.members = append(m.members, &member{nic: nic, state: StateHealthy})
	}
	return m, nil
}

// OnSuspect installs the callback fired once per transition to suspected.
func (m *Manager) OnSuspect(fn func(idx int)) { m.onSuspect = fn }

// Start begins heartbeat monitoring.
func (m *Manager) Start() {
	if m.running {
		return
	}
	m.running = true
	m.tick()
}

// Stop halts monitoring.
func (m *Manager) Stop() {
	m.running = false
	if m.stop != nil {
		m.stop.Stop()
		m.stop = nil
	}
}

func (m *Manager) tick() {
	if !m.running {
		return
	}
	m.beats++
	for i, mem := range m.members {
		if mem.nic.Down() {
			mem.missed++
		} else {
			mem.missed = 0
			if mem.state == StateSuspected {
				mem.state = StateHealthy
			}
		}
		if mem.missed >= m.cfg.MissedThreshold && mem.state != StateSuspected {
			mem.state = StateSuspected
			m.suspicion++
			if m.onSuspect != nil {
				m.onSuspect(i)
			}
		}
	}
	m.stop = m.k.After(m.cfg.HeartbeatEvery, m.tick)
}

// State returns member i's health.
func (m *Manager) State(i int) (MemberState, error) {
	if i < 0 || i >= len(m.members) {
		return 0, fmt.Errorf("%w: %d", ErrBadMember, i)
	}
	return m.members[i].state, nil
}

// Suspected lists the indices of suspected members.
func (m *Manager) Suspected() []int {
	var out []int
	for i, mem := range m.members {
		if mem.state == StateSuspected {
			out = append(out, i)
		}
	}
	return out
}

// Healthy returns the index of some healthy member, or -1.
func (m *Manager) Healthy() int {
	for i, mem := range m.members {
		if mem.state == StateHealthy && !mem.nic.Down() {
			return i
		}
	}
	return -1
}

// PauseWrites marks the chain write-paused during catch-up (§5.1: "writes
// are paused for a short duration of catch-up phase"). The application
// checks Paused before issuing writes.
func (m *Manager) PauseWrites()  { m.paused = true }
func (m *Manager) ResumeWrites() { m.paused = false }

// Paused reports whether writes are paused.
func (m *Manager) Paused() bool { return m.paused }

// Replace swaps member idx's NIC for a replacement (a fresh machine) and
// resets its health.
func (m *Manager) Replace(idx int, nic *rdma.NIC) error {
	if idx < 0 || idx >= len(m.members) {
		return fmt.Errorf("%w: %d", ErrBadMember, idx)
	}
	m.members[idx] = &member{nic: nic, state: StateHealthy}
	return nil
}

// CatchUp copies the first mirrorSize bytes of a healthy member's durable
// state onto the replacement device and flushes it, charging transfer time
// at the configured bandwidth. It returns the source member used.
func (m *Manager) CatchUp(f *sim.Fiber, to *rdma.NIC, mirrorSize int) (int, error) {
	src := m.Healthy()
	if src < 0 {
		return -1, ErrNoHealthy
	}
	img := make([]byte, mirrorSize)
	if err := m.members[src].nic.Memory().Read(0, img); err != nil {
		return src, err
	}
	// Transfer time: full image over the wire.
	sec := float64(mirrorSize) * 8 / m.cfg.CatchUpBandwidthBps
	f.Sleep(sim.Duration(sec * 1e9))
	// The transfer window is exactly when a second failure can strike.
	// Re-check both ends before installing the image: a source that died
	// mid-transfer may have stopped streaming anywhere, so the snapshot
	// read above can no longer be certified complete, and a dead target
	// would silently absorb the image into memory nothing will ever serve.
	if m.members[src].nic.Down() {
		return src, fmt.Errorf("%w (source member %d)", ErrSourceLost, src)
	}
	if to.Down() {
		return src, fmt.Errorf("%w (target %s)", ErrTargetLost, to.Host())
	}
	if err := to.Memory().Write(0, img); err != nil {
		return src, err
	}
	to.Memory().FlushAll()
	return src, nil
}

// Stats reports heartbeat rounds and suspicion transitions.
func (m *Manager) Stats() (beats, suspicions int64) { return m.beats, m.suspicion }
