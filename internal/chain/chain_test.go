package chain

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"hyperloop/internal/hyperloop"
	"hyperloop/internal/nvm"
	"hyperloop/internal/rdma"
	"hyperloop/internal/sim"
	"hyperloop/internal/txn"
	"hyperloop/internal/wal"
)

const devSize = 1 << 20

func buildNICs(t *testing.T, k *sim.Kernel, n int) (*rdma.Fabric, []*rdma.NIC) {
	t.Helper()
	fab := rdma.NewFabric(k, rdma.DefaultConfig())
	var nics []*rdma.NIC
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("m%d", i)
		nic, err := fab.AddNIC(name, nvm.NewDevice(name, devSize))
		if err != nil {
			t.Fatal(err)
		}
		nics = append(nics, nic)
	}
	return fab, nics
}

func TestValidation(t *testing.T) {
	k := sim.NewKernel(1)
	if _, err := New(k, nil, DefaultConfig()); !errors.Is(err, ErrBadMember) {
		t.Fatalf("err = %v", err)
	}
	_, nics := buildNICs(t, k, 1)
	m, err := New(k, nics, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.State(5); !errors.Is(err, ErrBadMember) {
		t.Fatalf("state err = %v", err)
	}
	if err := m.Replace(7, nics[0]); !errors.Is(err, ErrBadMember) {
		t.Fatalf("replace err = %v", err)
	}
}

func TestFailureDetectionAfterConsecutiveMisses(t *testing.T) {
	k := sim.NewKernel(1)
	_, nics := buildNICs(t, k, 3)
	cfg := DefaultConfig()
	m, err := New(k, nics, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var suspected []int
	m.OnSuspect(func(idx int) { suspected = append(suspected, idx) })
	m.Start()

	// Fail member 1 at t=20ms; suspicion requires 3 consecutive misses.
	k.At(sim.Time(20*sim.Millisecond), func() { nics[1].SetDown(true) })
	if err := k.RunUntil(sim.Time(100 * sim.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if len(suspected) != 1 || suspected[0] != 1 {
		t.Fatalf("suspected = %v, want [1]", suspected)
	}
	st, _ := m.State(1)
	if st != StateSuspected {
		t.Fatalf("state = %v", st)
	}
	if got := m.Suspected(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("Suspected() = %v", got)
	}
	if h := m.Healthy(); h != 0 && h != 2 {
		t.Fatalf("healthy = %d", h)
	}
	beats, susp := m.Stats()
	if beats == 0 || susp != 1 {
		t.Fatalf("stats = %d, %d", beats, susp)
	}
	m.Stop()
}

func TestBriefBlipDoesNotTriggerSuspicion(t *testing.T) {
	k := sim.NewKernel(1)
	_, nics := buildNICs(t, k, 2)
	m, err := New(k, nics, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	fired := false
	m.OnSuspect(func(int) { fired = true })
	m.Start()
	// Down for just one heartbeat interval — below the 3-miss threshold.
	k.At(sim.Time(20*sim.Millisecond), func() { nics[0].SetDown(true) })
	k.At(sim.Time(27*sim.Millisecond), func() { nics[0].SetDown(false) })
	if err := k.RunUntil(sim.Time(100 * sim.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("transient blip marked suspected")
	}
	m.Stop()
}

func TestRecoveryAfterSuspicionClears(t *testing.T) {
	k := sim.NewKernel(1)
	_, nics := buildNICs(t, k, 2)
	m, err := New(k, nics, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	k.At(sim.Time(10*sim.Millisecond), func() { nics[0].SetDown(true) })
	k.At(sim.Time(60*sim.Millisecond), func() { nics[0].SetDown(false) })
	if err := k.RunUntil(sim.Time(120 * sim.Millisecond)); err != nil {
		t.Fatal(err)
	}
	st, _ := m.State(0)
	if st != StateHealthy {
		t.Fatalf("member did not return to healthy: %v", st)
	}
	m.Stop()
}

func TestPauseResumeWrites(t *testing.T) {
	k := sim.NewKernel(1)
	_, nics := buildNICs(t, k, 1)
	m, _ := New(k, nics, DefaultConfig())
	if m.Paused() {
		t.Fatal("paused initially")
	}
	m.PauseWrites()
	if !m.Paused() {
		t.Fatal("pause lost")
	}
	m.ResumeWrites()
	if m.Paused() {
		t.Fatal("resume lost")
	}
}

func TestCatchUpCopiesDurableState(t *testing.T) {
	k := sim.NewKernel(1)
	_, nics := buildNICs(t, k, 3)
	m, err := New(k, nics, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("replica state to transfer")
	_ = nics[0].Memory().Write(0, payload)
	nics[0].Memory().FlushAll()

	var src int
	var catchErr error
	var took sim.Duration
	k.Spawn("recovery", func(f *sim.Fiber) {
		start := f.Now()
		src, catchErr = m.CatchUp(f, nics[2], 64*1024)
		took = f.Now().Sub(start)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if catchErr != nil {
		t.Fatalf("catch up: %v", catchErr)
	}
	if src != 0 {
		t.Fatalf("source = %d", src)
	}
	if took <= 0 {
		t.Fatal("catch-up transfer took no time")
	}
	got := make([]byte, len(payload))
	_ = nics[2].Memory().ReadDurable(0, got)
	if !bytes.Equal(got, payload) {
		t.Fatalf("replacement durable state = %q", got)
	}
}

// TestCatchUpSourceDiesMidTransfer pins the race the transfer sleep
// opens: the source fails while the image is in flight, so CatchUp must
// return ErrSourceLost and must not install the now-uncertifiable image.
func TestCatchUpSourceDiesMidTransfer(t *testing.T) {
	k := sim.NewKernel(1)
	_, nics := buildNICs(t, k, 3)
	m, err := New(k, nics, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	_ = nics[0].Memory().Write(0, []byte("doomed source image"))
	// A 64 KB transfer at the default bandwidth takes ~9µs; kill the
	// source halfway through it.
	k.After(4*sim.Microsecond, func() { nics[0].SetDown(true) })
	var catchErr error
	k.Spawn("recovery", func(f *sim.Fiber) {
		_, catchErr = m.CatchUp(f, nics[2], 64*1024)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(catchErr, ErrSourceLost) {
		t.Fatalf("err = %v, want ErrSourceLost", catchErr)
	}
	got := make([]byte, 6)
	_ = nics[2].Memory().Read(0, got)
	if string(got) == "doomed" {
		t.Fatal("untrusted image was installed on the replacement")
	}
}

// TestCatchUpTargetDiesMidTransfer covers the other end of the same race.
func TestCatchUpTargetDiesMidTransfer(t *testing.T) {
	k := sim.NewKernel(1)
	_, nics := buildNICs(t, k, 3)
	m, err := New(k, nics[:2], DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	k.After(4*sim.Microsecond, func() { nics[2].SetDown(true) })
	var catchErr error
	k.Spawn("recovery", func(f *sim.Fiber) {
		_, catchErr = m.CatchUp(f, nics[2], 64*1024)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(catchErr, ErrTargetLost) {
		t.Fatalf("err = %v, want ErrTargetLost", catchErr)
	}
}

func TestCatchUpNeedsHealthySource(t *testing.T) {
	k := sim.NewKernel(1)
	_, nics := buildNICs(t, k, 2)
	m, _ := New(k, nics[:1], DefaultConfig())
	nics[0].SetDown(true)
	var err error
	k.Spawn("recovery", func(f *sim.Fiber) {
		_, err = m.CatchUp(f, nics[1], 1024)
	})
	if kerr := k.Run(); kerr != nil {
		t.Fatal(kerr)
	}
	if !errors.Is(err, ErrNoHealthy) {
		t.Fatalf("err = %v", err)
	}
}

// TestEndToEndFailover exercises the full §5 recovery flow: a replica
// dies mid-workload; the monitor detects it; writes pause; a replacement
// catches up from a healthy member; a fresh HyperLoop datapath is
// established; writes resume and the data survives.
func TestEndToEndFailover(t *testing.T) {
	k := sim.NewKernel(77)
	fab, nics := buildNICs(t, k, 5) // client, r0, r1, r2, spare
	client, r0, r1, r2, spare := nics[0], nics[1], nics[2], nics[3], nics[4]

	const mirror = 256 * 1024
	gcfg := hyperloop.DefaultConfig(mirror)
	gcfg.OpTimeout = 2 * sim.Millisecond
	g, err := hyperloop.Setup(fab, client, []*rdma.NIC{r0, r1, r2}, gcfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := txn.New(g, txn.Config{LogSize: 32 * 1024, DataSize: 64 * 1024})
	if err != nil {
		t.Fatal(err)
	}
	mon, err := New(k, []*rdma.NIC{r0, r1, r2}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	suspectCh := sim.NewSignal()
	var failedIdx int
	mon.OnSuspect(func(idx int) {
		failedIdx = idx
		mon.PauseWrites()
		suspectCh.Fire(nil)
	})
	mon.Start()

	var phase2Data = []byte("written after failover")
	k.Spawn("workload", func(f *sim.Fiber) {
		defer k.StopRun()
		// Phase 1: normal writes.
		for i := 0; i < 5; i++ {
			if _, err := st.Append(f, []wal.Entry{{Off: i * 64, Data: []byte(fmt.Sprintf("pre-%d", i))}}); err != nil {
				t.Errorf("phase1 append %d: %v", i, err)
				return
			}
		}
		if _, err := st.ExecuteAll(f); err != nil {
			t.Errorf("phase1 execute: %v", err)
			return
		}

		// Kill replica 1 and wait for detection.
		r1.SetDown(true)
		if err := f.Await(suspectCh); err != nil {
			t.Errorf("await suspicion: %v", err)
			return
		}
		if failedIdx != 1 {
			t.Errorf("suspected %d, want 1", failedIdx)
			return
		}
		if !mon.Paused() {
			t.Error("writes not paused on failure")
			return
		}

		// Catch-up: transfer a healthy member's state to the spare.
		if _, err := mon.CatchUp(f, spare, mirror); err != nil {
			t.Errorf("catch up: %v", err)
			return
		}
		if err := mon.Replace(1, spare); err != nil {
			t.Errorf("replace: %v", err)
			return
		}

		// Re-establish the datapath: close the old group first — its
		// abandoned QPs share ring memory with the successor and must not
		// wake on its traffic — then build a fresh group over the new chain.
		g.Close()
		g2, err := hyperloop.Setup(fab, client, []*rdma.NIC{r0, spare, r2}, hyperloop.DefaultConfig(mirror))
		if err != nil {
			t.Errorf("re-setup: %v", err)
			return
		}
		st2, err := txn.New(g2, txn.Config{LogSize: 32 * 1024, DataSize: 64 * 1024})
		if err != nil {
			t.Errorf("re-txn: %v", err)
			return
		}
		if _, err := st2.Recover(f); err != nil {
			t.Errorf("recover on new chain: %v", err)
			return
		}
		mon.ResumeWrites()

		// Phase 2: writes flow on the new chain.
		if _, err := st2.Append(f, []wal.Entry{{Off: 1024, Data: phase2Data}}); err != nil {
			t.Errorf("phase2 append: %v", err)
			return
		}
		if _, err := st2.ExecuteAll(f); err != nil {
			t.Errorf("phase2 execute: %v", err)
		}
	})
	if err := k.RunUntil(sim.Time(5 * sim.Second)); err != nil && !errors.Is(err, sim.ErrStopped) {
		t.Fatal(err)
	}

	// The spare must hold both the pre-failure data (via catch-up) and the
	// post-failover write (via the new chain).
	dataOff := txn.CtrlSize + 32*1024
	img := make([]byte, 16)
	_ = spare.Memory().Read(dataOff, img[:5])
	if string(img[:5]) != "pre-0" {
		t.Fatalf("spare missing caught-up data: %q", img[:5])
	}
	buf := make([]byte, len(phase2Data))
	_ = spare.Memory().Read(dataOff+1024, buf)
	if !bytes.Equal(buf, phase2Data) {
		t.Fatalf("spare missing post-failover data: %q", buf)
	}
}
