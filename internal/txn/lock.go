package txn

import (
	"errors"
	"fmt"

	"hyperloop/internal/sim"
)

// WrLock acquires the exclusive group write lock via gCAS. If only some
// replicas grant the lock (another writer raced us), the acquisition is
// undone with a second gCAS whose execute map names exactly the replicas
// that succeeded (§4.2's selective-execution undo), then retried after a
// backoff.
func (s *Store) WrLock(f *sim.Fiber) error {
	g := s.r.GroupSize()
	all := make([]bool, g)
	for i := range all {
		all[i] = true
	}
	for attempt := 0; attempt < s.cfg.LockRetries; attempt++ {
		res, err := s.r.CAS(f, ctrlWrLock, 0, s.cfg.LockToken, all)
		if err != nil {
			return err
		}
		succ := make([]bool, g)
		nSucc := 0
		for i, orig := range res {
			if orig == 0 {
				succ[i] = true
				nSucc++
			}
		}
		if nSucc == g {
			return nil
		}
		// Partial (or failed) acquisition: undo on the replicas that
		// granted it, then back off and retry.
		if _, err := s.r.CAS(f, ctrlWrLock, s.cfg.LockToken, 0, succ); err != nil {
			return fmt.Errorf("lock undo: %w", err)
		}
		f.Sleep(s.cfg.LockBackoff * sim.Duration(attempt+1))
	}
	return ErrLockContended
}

// WrUnlock releases the group write lock on every replica.
func (s *Store) WrUnlock(f *sim.Fiber) error {
	g := s.r.GroupSize()
	all := make([]bool, g)
	for i := range all {
		all[i] = true
	}
	res, err := s.r.CAS(f, ctrlWrLock, s.cfg.LockToken, 0, all)
	if err != nil {
		return err
	}
	for i, orig := range res {
		if orig != s.cfg.LockToken {
			return fmt.Errorf("txn: unlock found token %d on replica %d, want %d",
				orig, i, s.cfg.LockToken)
		}
	}
	return nil
}

// WithWrLock runs fn under the group write lock.
func (s *Store) WithWrLock(f *sim.Fiber, fn func() error) error {
	if err := s.WrLock(f); err != nil {
		return err
	}
	ferr := fn()
	if uerr := s.WrUnlock(f); uerr != nil && ferr == nil {
		ferr = uerr
	}
	return ferr
}

// RdLock takes a shared read lock on one replica (0-based) by CASing the
// reader-count word there — only the replica being read participates
// (§5, "read locks are not group based").
func (s *Store) RdLock(f *sim.Fiber, replica int) error {
	return s.adjustReaders(f, replica, +1)
}

// RdUnlock drops the shared read lock on one replica.
func (s *Store) RdUnlock(f *sim.Fiber, replica int) error {
	return s.adjustReaders(f, replica, -1)
}

func (s *Store) adjustReaders(f *sim.Fiber, replica int, delta int) error {
	g := s.r.GroupSize()
	if replica < 0 || replica >= g {
		return fmt.Errorf("%w: replica %d of %d", ErrBadArgument, replica, g)
	}
	exec := make([]bool, g)
	exec[replica] = true
	for attempt := 0; attempt < s.cfg.LockRetries; attempt++ {
		b, err := s.r.ReadLocal(ctrlRdLock, 8)
		if err != nil {
			return err
		}
		cur := leUint64(b)
		want := uint64(int64(cur) + int64(delta))
		if int64(want) < 0 {
			return fmt.Errorf("%w: reader count underflow", ErrBadArgument)
		}
		res, err := s.r.CAS(f, ctrlRdLock, cur, want, exec)
		if err != nil {
			return err
		}
		if res[replica] == cur {
			return nil
		}
		f.Sleep(s.cfg.LockBackoff)
	}
	return ErrLockContended
}

// Readers returns the client-coherent reader count (diagnostics).
func (s *Store) Readers() (uint64, error) {
	b, err := s.r.ReadLocal(ctrlRdLock, 8)
	if err != nil {
		return 0, err
	}
	return leUint64(b), nil
}

// Locked reports whether the write lock word currently holds any token.
func (s *Store) Locked() (bool, error) {
	b, err := s.r.ReadLocal(ctrlWrLock, 8)
	if err != nil {
		return false, err
	}
	return leUint64(b) != 0, nil
}

// ErrRecovered is wrapped by RepairLog when the tail had to be rolled back
// over a torn record.
var ErrRecovered = errors.New("txn: log tail repaired")
