package txn

import (
	"errors"
	"fmt"
	"testing"

	"hyperloop/internal/sim"
	"hyperloop/internal/wal"
)

// memRep is an in-process single-"replica" Replicator with an op-level
// fault hook, for driving the store's I/O-error branches that a healthy
// fabric never takes. No fiber ever blocks: every op completes inline.
type memRep struct {
	buf  []byte
	fail func(op string) error
}

var errInjected = errors.New("injected replicator fault")

func newMemRep(size int) *memRep { return &memRep{buf: make([]byte, size)} }

func (m *memRep) check(op string) error {
	if m.fail != nil {
		return m.fail(op)
	}
	return nil
}

func (m *memRep) GroupSize() int { return 1 }

func (m *memRep) WriteLocal(off int, data []byte) error {
	if err := m.check("writelocal"); err != nil {
		return err
	}
	if off < 0 || off+len(data) > len(m.buf) {
		return fmt.Errorf("writelocal out of range [%d,%d)", off, off+len(data))
	}
	copy(m.buf[off:], data)
	return nil
}

func (m *memRep) ReadLocal(off, n int) ([]byte, error) {
	if err := m.check("readlocal"); err != nil {
		return nil, err
	}
	if off < 0 || off+n > len(m.buf) {
		return nil, fmt.Errorf("readlocal out of range [%d,%d)", off, off+n)
	}
	out := make([]byte, n)
	copy(out, m.buf[off:])
	return out, nil
}

func (m *memRep) Write(f *sim.Fiber, off, size int, durable bool) error {
	return m.check("write")
}

func (m *memRep) Memcpy(f *sim.Fiber, src, dst, size int, durable bool) error {
	if err := m.check("memcpy"); err != nil {
		return err
	}
	copy(m.buf[dst:dst+size], m.buf[src:src+size])
	return nil
}

func (m *memRep) CAS(f *sim.Fiber, off int, old, new uint64, exec []bool) ([]uint64, error) {
	if err := m.check("cas"); err != nil {
		return nil, err
	}
	cur := leUint64(m.buf[off : off+8])
	if exec[0] && cur == old {
		var b [8]byte
		for i := range b {
			b[i] = byte(new >> (8 * i))
		}
		copy(m.buf[off:], b[:])
	}
	return []uint64{cur}, nil
}

func (m *memRep) Flush(f *sim.Fiber, off, size int) error { return m.check("flush") }

// failOn returns a hook erroring the nth (1-based) occurrence of op.
func failOn(op string, nth int) func(string) error {
	seen := 0
	return func(o string) error {
		if o != op {
			return nil
		}
		seen++
		if seen == nth {
			return errInjected
		}
		return nil
	}
}

func memStore(t *testing.T) (*memRep, *Store, *sim.Kernel) {
	t.Helper()
	m := newMemRep(MirrorSizeFor(testLog, testData))
	st, err := New(m, Config{LogSize: testLog, DataSize: testData, LockToken: 42})
	if err != nil {
		t.Fatal(err)
	}
	return m, st, sim.NewKernel(3)
}

func runMem(t *testing.T, k *sim.Kernel, fn func(f *sim.Fiber)) {
	t.Helper()
	k.Spawn("mem", fn)
	if err := k.RunUntil(k.Now().Add(sim.Second)); err != nil {
		t.Fatalf("kernel: %v", err)
	}
}

func TestStoreIOFaults(t *testing.T) {
	m, st, k := memStore(t)
	runMem(t, k, func(f *sim.Fiber) {
		entry := []wal.Entry{{Off: 0, Data: []byte("io")}}

		// Append: tail read, record flush, tail-pointer write.
		m.fail = failOn("readlocal", 1)
		if _, err := st.Append(f, entry); !errors.Is(err, errInjected) {
			t.Errorf("append tail read: %v", err)
		}
		m.fail = failOn("write", 1)
		if _, err := st.Append(f, entry); !errors.Is(err, errInjected) {
			t.Errorf("append record write: %v", err)
		}

		// LogUsed / Locked / Readers / readPtr error propagation.
		m.fail = failOn("readlocal", 1)
		if _, err := st.LogUsed(); !errors.Is(err, errInjected) {
			t.Errorf("log used: %v", err)
		}
		m.fail = failOn("readlocal", 2)
		if _, err := st.LogUsed(); !errors.Is(err, errInjected) {
			t.Errorf("log used tail: %v", err)
		}
		m.fail = failOn("readlocal", 1)
		if _, err := st.Locked(); !errors.Is(err, errInjected) {
			t.Errorf("locked: %v", err)
		}
		m.fail = failOn("readlocal", 1)
		if _, err := st.Readers(); !errors.Is(err, errInjected) {
			t.Errorf("readers: %v", err)
		}

		// WriteData local mirror failure and group-write failure.
		m.fail = failOn("writelocal", 1)
		if err := st.WriteData(f, 0, []byte("x")); !errors.Is(err, errInjected) {
			t.Errorf("write data local: %v", err)
		}
		m.fail = failOn("write", 1)
		if err := st.WriteData(f, 0, []byte("x")); !errors.Is(err, errInjected) {
			t.Errorf("write data group: %v", err)
		}

		// Lock paths: CAS failure in WrLock/WrUnlock, WithWrLock propagation.
		m.fail = failOn("cas", 1)
		if err := st.WrLock(f); !errors.Is(err, errInjected) {
			t.Errorf("lock cas: %v", err)
		}
		m.fail = failOn("cas", 1)
		if err := st.WithWrLock(f, func() error { return nil }); !errors.Is(err, errInjected) {
			t.Errorf("with lock: %v", err)
		}
		m.fail = nil
		if err := st.WrLock(f); err != nil {
			t.Fatal(err)
		}
		m.fail = failOn("cas", 1)
		if err := st.WrUnlock(f); !errors.Is(err, errInjected) {
			t.Errorf("unlock cas: %v", err)
		}
		m.fail = nil
		if err := st.WrUnlock(f); err != nil {
			t.Fatal(err)
		}

		// TruncateAll: tail read failure.
		m.fail = failOn("readlocal", 1)
		if err := st.TruncateAll(f); !errors.Is(err, errInjected) {
			t.Errorf("truncate all: %v", err)
		}
		m.fail = nil
	})
}

func TestRecoverIOFaults(t *testing.T) {
	m, st, k := memStore(t)
	runMem(t, k, func(f *sim.Fiber) {
		// A prepared-but-unexecuted record under our token.
		if err := st.WrLock(f); err != nil {
			t.Fatal(err)
		}
		if _, err := st.Append(f, []wal.Entry{{Off: 0, Data: []byte("orphan")}}); err != nil {
			t.Fatal(err)
		}

		m.fail = failOn("readlocal", 1)
		if _, err := RecoverAbort(f, st, 42); !errors.Is(err, errInjected) {
			t.Errorf("recover abort lock read: %v", err)
		}
		m.fail = failOn("readlocal", 1)
		if _, _, err := RecoverCommit(f, st, 42); !errors.Is(err, errInjected) {
			t.Errorf("recover commit lock read: %v", err)
		}
		m.fail = failOn("readlocal", 1)
		if _, err := st.PendingSeqs(); !errors.Is(err, errInjected) {
			t.Errorf("pending seqs head read: %v", err)
		}
		m.fail = failOn("readlocal", 2)
		if _, err := st.PendingSeqs(); !errors.Is(err, errInjected) {
			t.Errorf("pending seqs tail read: %v", err)
		}
		m.fail = failOn("readlocal", 3)
		if _, err := st.PendingSeqs(); !errors.Is(err, errInjected) {
			t.Errorf("pending seqs record read: %v", err)
		}
		// Unlock failure after a successful roll-forward: the record is
		// applied but the lock stays held for the next pass.
		m.fail = failOn("cas", 1)
		if n, _, err := RecoverCommit(f, st, 42); !errors.Is(err, errInjected) || n != 1 {
			t.Errorf("recover commit unlock = (%d, %v)", n, err)
		}
		// The retry finds nothing left to execute and releases the lock.
		m.fail = nil
		if n, ok, err := RecoverCommit(f, st, 42); err != nil || !ok || n != 0 {
			t.Errorf("recover commit retry = (%d, %v, %v)", n, ok, err)
		}
		if locked, err := st.Locked(); err != nil || locked {
			t.Errorf("lock leaked after recovery (locked=%v, err=%v)", locked, err)
		}
	})
}

func TestDistTxnRollbackFaults(t *testing.T) {
	m, st, k := memStore(t)
	m2 := newMemRep(MirrorSizeFor(testLog, testData))
	st2, err := New(m2, Config{LogSize: testLog, DataSize: testData, LockToken: 42})
	if err != nil {
		t.Fatal(err)
	}
	runMem(t, k, func(f *sim.Fiber) {
		ps := []Participant{
			{Store: st, Entries: []wal.Entry{{Off: 0, Data: []byte("a")}}},
			{Store: st2, Entries: []wal.Entry{{Off: 0, Data: []byte("b")}}},
		}
		// Participant 1's append fails → failPrepare rolls participant 0
		// back; participant 0's third group write (its rollback tail
		// rewrite — the first two replicated its own record + tail) fails
		// too, so rollback keeps its lock (in doubt until recovery).
		m2.fail = failOn("write", 1)
		m.fail = failOn("write", 3)
		tx := BeginDist(ps)
		err := tx.Prepare(f)
		if !errors.Is(err, ErrAborted) || !errors.Is(err, errInjected) {
			t.Fatalf("prepare = %v, want aborted with injected faults", err)
		}
		// Participant 0 kept its lock: recovery's job now.
		m.fail = nil
		if locked, _ := st.Locked(); !locked {
			t.Error("participant 0 released its lock despite failed rollback")
		}
		if rolled, err := RecoverAbort(f, st, 42); err != nil || !rolled {
			t.Fatalf("recover = (%v, %v)", rolled, err)
		}

		// Commit-side: ExecuteAll failure leaves the txn in doubt.
		m2.fail = nil
		tx2 := BeginDist(ps)
		if err := tx2.Prepare(f); err != nil {
			t.Fatal(err)
		}
		m.fail = failOn("memcpy", 1)
		if err := tx2.Commit(f); !errors.Is(err, ErrInDoubt) {
			t.Fatalf("commit = %v, want ErrInDoubt", err)
		}
		// Retried Commit resumes and finishes.
		m.fail = nil
		if err := tx2.Commit(f); err != nil {
			t.Fatalf("retried commit: %v", err)
		}
	})
}
