package txn

import (
	"errors"
	"fmt"

	"hyperloop/internal/sim"
	"hyperloop/internal/wal"
)

// Two-phase commit across independently replicated stores. Each Store sits
// on its own replication group (its own chain, NICs and fault domain — see
// internal/shard), so a transaction spanning several of them cannot ride a
// single group ACK. Instead the coordinator runs classic presumed-abort
// 2PC built from the primitives §5 already provides:
//
//	prepare  = per store: group write lock (gCAS), append the write-set
//	           record to the store's replicated WAL (gWRITE + gFLUSH).
//	           A prepared record is durable on every member but not yet
//	           applied to the database region.
//	commit   = per store: ExecuteAll (gMEMCPY + gFLUSH per entry, head
//	           advance) and release the lock.
//	abort    = per store: roll the durable tail pointer back over the
//	           prepared record and release the lock.
//
// There is no separate commit record: a coordinator that vanishes between
// prepare and commit leaves locked stores with prepared-but-unexecuted
// records, and recovery resolves them with RecoverAbort (presumed abort).
//
// Deadlock avoidance is by lock ordering: callers must list participants
// in a globally consistent order (internal/shard sorts by shard ID), so
// two racing coordinators contend on the first common store instead of
// deadlocking on each other's suffixes.

// ErrAborted wraps every error returned from a failed Prepare: the
// transaction took effect nowhere (prepared participants were rolled back
// and unlocked as far as their groups allowed).
var ErrAborted = errors.New("txn: distributed transaction aborted")

// ErrInDoubt wraps errors from a failed Commit: at least one participant
// prepared but the commit pass could not finish everywhere. Commit may be
// retried (it skips participants already committed); giving up instead
// requires operator-level recovery, not Abort.
var ErrInDoubt = errors.New("txn: distributed commit incomplete")

// Participant is one store's slice of a distributed transaction.
type Participant struct {
	// Store is the participant's replicated store. Stores must be distinct.
	Store *Store
	// Entries is the write-set applied to this store's data region.
	Entries []wal.Entry
}

// txnState tracks one participant's progress through the protocol.
type txnState int

const (
	stIdle     txnState = iota
	stLocked            // write lock held, nothing appended
	stPrepared          // locked + record durably appended
	stDone              // committed or rolled back, lock released
)

// DistTxn is one distributed transaction. The zero value is invalid; use
// BeginDist. A DistTxn is driven by a single fiber and is not reusable:
// after Commit or Abort returns it is spent.
type DistTxn struct {
	parts []Participant
	state []txnState
	tails []int // pre-prepare tail snapshot, valid once state ≥ stLocked
}

// BeginDist starts a distributed transaction over the given participants,
// in the given (deadlock-consistent) order.
func BeginDist(parts []Participant) *DistTxn {
	return &DistTxn{
		parts: parts,
		state: make([]txnState, len(parts)),
		tails: make([]int, len(parts)),
	}
}

// Prepare runs phase one: in participant order, take the store's group
// write lock, snapshot its tail, and durably append the write-set record.
// On any failure the prepared prefix is rolled back and unlocked
// (best-effort — a participant whose group is down keeps its lock until
// RecoverAbort) and the cause is returned wrapped in ErrAborted.
func (t *DistTxn) Prepare(f *sim.Fiber) error {
	for i := range t.parts {
		p := &t.parts[i]
		if err := p.Store.WrLock(f); err != nil {
			return t.failPrepare(f, fmt.Errorf("participant %d lock: %w", i, err))
		}
		t.state[i] = stLocked
		tail, err := p.Store.Tail()
		if err != nil {
			return t.failPrepare(f, fmt.Errorf("participant %d tail: %w", i, err))
		}
		t.tails[i] = tail
		if _, err := p.Store.Append(f, p.Entries); err != nil {
			return t.failPrepare(f, fmt.Errorf("participant %d append: %w", i, err))
		}
		t.state[i] = stPrepared
	}
	return nil
}

// failPrepare aborts everything the failed Prepare managed to do and
// returns cause wrapped in ErrAborted (with any rollback errors joined).
func (t *DistTxn) failPrepare(f *sim.Fiber, cause error) error {
	if err := t.rollback(f); err != nil {
		cause = errors.Join(cause, err)
	}
	return fmt.Errorf("%w: %w", ErrAborted, cause)
}

// Commit runs phase two: in participant order, apply the prepared record
// (ExecuteAll) and release the lock. All participants must be prepared.
// On failure Commit returns ErrInDoubt and may be called again — finished
// participants are skipped, so a retry resumes where the fault hit.
func (t *DistTxn) Commit(f *sim.Fiber) error {
	for i := range t.parts {
		if t.state[i] == stDone {
			continue
		}
		if t.state[i] != stPrepared {
			return fmt.Errorf("%w: participant %d not prepared", ErrBadArgument, i)
		}
		if _, err := t.parts[i].Store.ExecuteAll(f); err != nil {
			return fmt.Errorf("%w: participant %d execute: %w", ErrInDoubt, i, err)
		}
		if err := t.parts[i].Store.WrUnlock(f); err != nil {
			return fmt.Errorf("%w: participant %d unlock: %w", ErrInDoubt, i, err)
		}
		t.state[i] = stDone
	}
	return nil
}

// Abort rolls back every participant the transaction touched: the durable
// tail rewinds over the prepared record and the lock is released. Errors
// from unreachable groups are joined and returned; healthy participants
// are still cleaned up.
func (t *DistTxn) Abort(f *sim.Fiber) error {
	return t.rollback(f)
}

// rollback undoes lock/append on every participant not already done,
// continuing past per-participant failures.
func (t *DistTxn) rollback(f *sim.Fiber) error {
	var errs []error
	for i := range t.parts {
		p := &t.parts[i]
		switch t.state[i] {
		case stPrepared:
			if err := p.Store.writePtr(f, ctrlTailPtr, t.tails[i]); err != nil {
				errs = append(errs, fmt.Errorf("participant %d tail rollback: %w", i, err))
				continue // keep the lock: the store is in doubt until recovery
			}
			fallthrough
		case stLocked:
			if err := p.Store.WrUnlock(f); err != nil {
				errs = append(errs, fmt.Errorf("participant %d unlock: %w", i, err))
				continue
			}
			t.state[i] = stDone
		}
	}
	return errors.Join(errs...)
}

// Prepared reports how many participants are currently in the prepared
// state (diagnostics and tests).
func (t *DistTxn) Prepared() int {
	n := 0
	for _, s := range t.state {
		if s == stPrepared {
			n++
		}
	}
	return n
}

// RecoverAbort resolves an orphaned prepared transaction on one store
// after its coordinator crashed between prepare and commit: if the group
// write lock currently holds token, the durable tail is rolled back to the
// head — discarding every prepared-but-unexecuted record — and the lock is
// released. It reports whether a rollback happened.
//
// Presumed abort is sound here because there is no commit record: a
// coordinator that reached Commit has already executed and unlocked the
// participants it finished, and those no longer hold token. The rollback
// targets stores whose log is drained at prepare time (every committed
// record executed), which the shard router guarantees; pending committed
// records would be discarded along with the prepared one.
func RecoverAbort(f *sim.Fiber, s *Store, token uint64) (bool, error) {
	b, err := s.r.ReadLocal(ctrlWrLock, 8)
	if err != nil {
		return false, err
	}
	if leUint64(b) != token {
		return false, nil
	}
	head, err := s.Head()
	if err != nil {
		return false, err
	}
	if err := s.writePtr(f, ctrlTailPtr, head); err != nil {
		return false, err
	}
	hold := s.cfg.LockToken
	s.cfg.LockToken = token
	err = s.WrUnlock(f)
	s.cfg.LockToken = hold
	if err != nil {
		return false, err
	}
	return true, nil
}
