package txn

import (
	"errors"
	"fmt"

	"hyperloop/internal/sim"
	"hyperloop/internal/wal"
)

// Two-phase commit across independently replicated stores. Each Store sits
// on its own replication group (its own chain, NICs and fault domain — see
// internal/shard), so a transaction spanning several of them cannot ride a
// single group ACK. Instead the coordinator runs classic presumed-abort
// 2PC built from the primitives §5 already provides:
//
//	prepare  = per store: group write lock (gCAS), append the write-set
//	           record to the store's replicated WAL (gWRITE + gFLUSH).
//	           A prepared record is durable on every member but not yet
//	           applied to the database region.
//	commit   = per store: ExecuteAll (gMEMCPY + gFLUSH per entry, head
//	           advance) and release the lock.
//	abort    = per store: roll the durable tail pointer back over the
//	           prepared record and release the lock.
//
// The commit point is a durable record on the coordinator's own
// replicated store (see CommitLog): a logged transaction appends
// (txnID, token, participant IDs) after every participant prepared and
// before any executes, and truncates it once all are done. Recovery
// therefore has an unambiguous rule — a prepared participant named by a
// commit record rolls forward (RecoverCommit), one named by no record
// rolls back (RecoverAbort, presumed abort). Unlogged transactions
// (BeginDist with no CommitLog) keep the original presumed-abort-only
// behavior and must tolerate a mid-commit coordinator crash aborting
// participants the coordinator had not reached.
//
// Deadlock avoidance is by lock ordering: callers must list participants
// in a globally consistent order (internal/shard sorts by shard ID), so
// two racing coordinators contend on the first common store instead of
// deadlocking on each other's suffixes.

// ErrAborted wraps every error returned from a failed Prepare: the
// transaction took effect nowhere (prepared participants were rolled back
// and unlocked as far as their groups allowed).
var ErrAborted = errors.New("txn: distributed transaction aborted")

// ErrInDoubt wraps errors from a failed Commit: at least one participant
// prepared but the commit pass could not finish everywhere. Commit may be
// retried (it skips participants already committed); giving up instead
// requires recovery (Router.Recover / RecoverCommit), not Abort.
var ErrInDoubt = errors.New("txn: distributed commit incomplete")

// ErrCoordinatorCrash is the sentinel a step hook returns to simulate the
// coordinator vanishing mid-protocol: DistTxn returns it immediately with
// NO cleanup, leaving every participant exactly as a real crash would —
// locks held, records appended, nothing rolled back. Crash-point sweep
// harnesses and the 2pc-recovery hypothesis scenario drive it.
var ErrCoordinatorCrash = errors.New("txn: coordinator crashed (injected)")

// Step identifies one coordinator-side action inside Prepare/Commit. A
// step hook (SetStepHook) fires after each step completes, so returning
// ErrCoordinatorCrash from it kills the coordinator at that exact point
// in the protocol.
type Step int

// Coordinator steps, in protocol order for one participant. StepLogCommit
// and StepLogTruncate fire once per transaction (participant index -1);
// the rest fire once per participant.
const (
	StepLock        Step = iota // participant's group write lock taken
	StepAppend                  // write-set record durably appended
	StepLogCommit               // commit record durable on the coordinator log
	StepExecute                 // participant's log executed into the data region
	StepUnlock                  // participant's group lock released
	StepLogTruncate             // commit record truncated
)

func (s Step) String() string {
	switch s {
	case StepLock:
		return "lock"
	case StepAppend:
		return "append"
	case StepLogCommit:
		return "log-commit"
	case StepExecute:
		return "execute"
	case StepUnlock:
		return "unlock"
	case StepLogTruncate:
		return "log-truncate"
	default:
		return fmt.Sprintf("step(%d)", int(s))
	}
}

// Participant is one store's slice of a distributed transaction.
type Participant struct {
	// Store is the participant's replicated store. Stores must be distinct.
	Store *Store
	// Entries is the write-set applied to this store's data region.
	Entries []wal.Entry
}

// txnState tracks one participant's progress through the protocol.
type txnState int

const (
	stIdle     txnState = iota
	stLocked            // write lock held, nothing appended
	stPrepared          // locked + record durably appended
	stDone              // committed or rolled back, lock released
)

// DistTxn is one distributed transaction. The zero value is invalid; use
// BeginDist or BeginDistLogged. A DistTxn is driven by a single fiber and
// is not reusable: after Commit or Abort returns it is spent.
type DistTxn struct {
	parts []Participant
	state []txnState
	tails []int // pre-prepare tail snapshot, valid once state ≥ stLocked

	clog   *CommitLog // nil for unlogged (presumed-abort-only) transactions
	ids    []int      // participant shard IDs named in the commit record
	txnID  uint64     // assigned by the commit log at the commit point
	logged bool       // commit record durably appended
	hook   func(Step, int) error
}

// BeginDist starts a distributed transaction over the given participants,
// in the given (deadlock-consistent) order.
func BeginDist(parts []Participant) *DistTxn {
	return &DistTxn{
		parts: parts,
		state: make([]txnState, len(parts)),
		tails: make([]int, len(parts)),
	}
}

// BeginDistLogged starts a distributed transaction whose commit point is
// durably recorded on cl before phase two: Commit appends a record naming
// shardIDs (one per participant, same order) so recovery can roll the
// transaction forward past a coordinator crash. A nil cl degrades to
// BeginDist.
func BeginDistLogged(parts []Participant, cl *CommitLog, shardIDs []int) (*DistTxn, error) {
	t := BeginDist(parts)
	if cl == nil {
		return t, nil
	}
	if len(shardIDs) != len(parts) {
		return nil, fmt.Errorf("%w: %d shard IDs for %d participants", ErrBadArgument, len(shardIDs), len(parts))
	}
	t.clog = cl
	t.ids = shardIDs
	return t, nil
}

// TxnID returns the transaction's commit-log ID — 0 until the commit
// record has been appended (unlogged transactions never get one).
func (t *DistTxn) TxnID() uint64 { return t.txnID }

// SetStepHook installs a hook fired after every coordinator step (see
// Step). A non-nil hook error is returned from Prepare/Commit verbatim
// with no cleanup — the contract crash-injection harnesses rely on.
func (t *DistTxn) SetStepHook(fn func(s Step, participant int) error) { t.hook = fn }

// step fires the hook after a completed coordinator action.
func (t *DistTxn) step(s Step, participant int) error {
	if t.hook == nil {
		return nil
	}
	return t.hook(s, participant)
}

// Prepare runs phase one: in participant order, take the store's group
// write lock, snapshot its tail, and durably append the write-set record.
// On any failure the prepared prefix is rolled back and unlocked
// (best-effort — a participant whose group is down keeps its lock until
// RecoverAbort) and the cause is returned wrapped in ErrAborted.
func (t *DistTxn) Prepare(f *sim.Fiber) error {
	for i := range t.parts {
		p := &t.parts[i]
		if err := p.Store.WrLock(f); err != nil {
			return t.failPrepare(f, fmt.Errorf("participant %d lock: %w", i, err))
		}
		t.state[i] = stLocked
		if err := t.step(StepLock, i); err != nil {
			return err
		}
		tail, err := p.Store.Tail()
		if err != nil {
			return t.failPrepare(f, fmt.Errorf("participant %d tail: %w", i, err))
		}
		t.tails[i] = tail
		if _, err := p.Store.Append(f, p.Entries); err != nil {
			return t.failPrepare(f, fmt.Errorf("participant %d append: %w", i, err))
		}
		t.state[i] = stPrepared
		if err := t.step(StepAppend, i); err != nil {
			return err
		}
	}
	return nil
}

// failPrepare aborts everything the failed Prepare managed to do and
// returns cause wrapped in ErrAborted (with any rollback errors joined).
func (t *DistTxn) failPrepare(f *sim.Fiber, cause error) error {
	if err := t.rollback(f); err != nil {
		cause = errors.Join(cause, err)
	}
	return fmt.Errorf("%w: %w", ErrAborted, cause)
}

// Commit runs phase two. For a logged transaction the commit record is
// first made durable on the coordinator's log — the commit point: before
// it, a crash aborts the transaction everywhere; at or after it, recovery
// rolls every participant forward. Then, in participant order, the
// prepared record is applied (ExecuteAll) and the lock released; finally
// the commit record is truncated. All participants must be prepared.
// On failure past the commit point Commit returns ErrInDoubt and may be
// called again — finished participants are skipped, so a retry resumes
// where the fault hit (and re-truncates the record). A commit-record
// append failure returns ErrAborted instead: nothing has executed yet,
// so the prepared participants are rolled back as a failed Prepare would.
func (t *DistTxn) Commit(f *sim.Fiber) error {
	for i := range t.parts {
		if t.state[i] != stPrepared && t.state[i] != stDone {
			return fmt.Errorf("%w: participant %d not prepared", ErrBadArgument, i)
		}
	}
	if t.clog != nil && !t.logged {
		token := t.parts[0].Store.cfg.LockToken
		id, err := t.clog.Append(f, token, t.ids)
		if err != nil {
			// The commit point was never durably recorded and no
			// participant has executed: abort is still sound.
			return t.failPrepare(f, fmt.Errorf("commit record: %w", err))
		}
		t.txnID = id
		t.logged = true
		if err := t.step(StepLogCommit, -1); err != nil {
			return err
		}
	}
	for i := range t.parts {
		if t.state[i] == stDone {
			continue
		}
		if _, err := t.parts[i].Store.ExecuteAll(f); err != nil {
			return fmt.Errorf("%w: participant %d execute: %w", ErrInDoubt, i, err)
		}
		if err := t.step(StepExecute, i); err != nil {
			return err
		}
		if err := t.parts[i].Store.WrUnlock(f); err != nil {
			return fmt.Errorf("%w: participant %d unlock: %w", ErrInDoubt, i, err)
		}
		t.state[i] = stDone
		if err := t.step(StepUnlock, i); err != nil {
			return err
		}
	}
	if t.clog != nil && t.logged {
		if err := t.clog.Truncate(f, t.txnID); err != nil {
			// The transaction IS committed everywhere; only the record
			// cleanup failed. A retried Commit skips every participant and
			// re-truncates; a leftover record is harmless to recovery
			// (every named shard is already unlocked).
			return fmt.Errorf("%w: commit-record truncate: %w", ErrInDoubt, err)
		}
		if err := t.step(StepLogTruncate, -1); err != nil {
			return err
		}
	}
	return nil
}

// Abort rolls back every participant the transaction touched: the durable
// tail rewinds over the prepared record and the lock is released. Errors
// from unreachable groups are joined and returned; healthy participants
// are still cleaned up.
func (t *DistTxn) Abort(f *sim.Fiber) error {
	return t.rollback(f)
}

// rollback undoes lock/append on every participant not already done,
// continuing past per-participant failures.
func (t *DistTxn) rollback(f *sim.Fiber) error {
	var errs []error
	for i := range t.parts {
		p := &t.parts[i]
		switch t.state[i] {
		case stPrepared:
			if err := p.Store.writePtr(f, ctrlTailPtr, t.tails[i]); err != nil {
				errs = append(errs, fmt.Errorf("participant %d tail rollback: %w", i, err))
				continue // keep the lock: the store is in doubt until recovery
			}
			fallthrough
		case stLocked:
			if err := p.Store.WrUnlock(f); err != nil {
				errs = append(errs, fmt.Errorf("participant %d unlock: %w", i, err))
				continue
			}
			t.state[i] = stDone
		}
	}
	return errors.Join(errs...)
}

// Prepared reports how many participants are currently in the prepared
// state (diagnostics and tests).
func (t *DistTxn) Prepared() int {
	n := 0
	for _, s := range t.state {
		if s == stPrepared {
			n++
		}
	}
	return n
}

// RecoverAbort resolves an orphaned prepared transaction on one store
// after its coordinator crashed: if the group write lock currently holds
// token, the durable tail is rolled back to the head — discarding every
// prepared-but-unexecuted record — and the lock is released. It reports
// whether a rollback happened.
//
// RecoverAbort is only sound for transactions with NO durable commit
// record. The commit record is appended after every participant prepared
// and before any executes, so a token-locked store with no record belongs
// to a transaction that never reached its commit point — aborting it
// cannot discard committed work. A coordinator that crashed past the
// commit point leaves a record behind, and recovery (Router.Recover)
// must resolve those stores with RecoverCommit instead: rolling them back
// here would erase half of a committed transaction — exactly the
// partial-commit hazard the commit log exists to close. The rollback
// targets stores whose log is drained at prepare time (every committed
// record executed), which the shard router guarantees; pending committed
// records would be discarded along with the prepared one.
func RecoverAbort(f *sim.Fiber, s *Store, token uint64) (bool, error) {
	b, err := s.r.ReadLocal(ctrlWrLock, 8)
	if err != nil {
		return false, err
	}
	if leUint64(b) != token {
		return false, nil
	}
	head, err := s.Head()
	if err != nil {
		return false, err
	}
	if err := s.writePtr(f, ctrlTailPtr, head); err != nil {
		return false, err
	}
	hold := s.cfg.LockToken
	s.cfg.LockToken = token
	err = s.WrUnlock(f)
	s.cfg.LockToken = hold
	if err != nil {
		return false, err
	}
	return true, nil
}

// RecoverCommit rolls an orphaned prepared participant *forward* after
// its coordinator crashed past the commit point: if the group write lock
// currently holds token, every pending record is executed into the data
// region (ExecuteAll) and the lock released. It returns the number of
// records applied and whether a roll-forward happened.
//
// Callers must only invoke this for stores named by a durable commit
// record (see CommitLog): the record is written after every participant
// prepared and before any executes, so a token-locked store named by one
// holds exactly the logged transaction's prepared record — executing it
// completes the commit the coordinator started. A named store that is no
// longer token-locked was already executed and unlocked before the crash;
// it is skipped (false, nil).
func RecoverCommit(f *sim.Fiber, s *Store, token uint64) (int, bool, error) {
	b, err := s.r.ReadLocal(ctrlWrLock, 8)
	if err != nil {
		return 0, false, err
	}
	if leUint64(b) != token {
		return 0, false, nil
	}
	n, err := s.ExecuteAll(f)
	if err != nil {
		return n, false, err
	}
	hold := s.cfg.LockToken
	s.cfg.LockToken = token
	err = s.WrUnlock(f)
	s.cfg.LockToken = hold
	if err != nil {
		return n, false, err
	}
	return n, true, nil
}
