package txn

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"hyperloop/internal/cpusim"
	"hyperloop/internal/hyperloop"
	"hyperloop/internal/naive"
	"hyperloop/internal/nvm"
	"hyperloop/internal/rdma"
	"hyperloop/internal/sim"
	"hyperloop/internal/wal"
)

const (
	testLog  = 8 * 1024
	testData = 32 * 1024
	testDev  = 1 << 20
)

// backends builds the same store over both the HyperLoop and Naive-RDMA
// replicators so every test exercises both datapaths.
type backend struct {
	name string
	k    *sim.Kernel
	st   *Store
	nics []*rdma.NIC
}

func newBackends(t *testing.T, nReplicas int) []backend {
	t.Helper()
	var out []backend

	mirror := MirrorSizeFor(testLog, testData)

	{ // HyperLoop
		k := sim.NewKernel(7)
		fab := rdma.NewFabric(k, rdma.DefaultConfig())
		client, _ := fab.AddNIC("client", nvm.NewDevice("client", testDev))
		var reps []*rdma.NIC
		for i := 0; i < nReplicas; i++ {
			nic, _ := fab.AddNIC(fmt.Sprintf("h%d", i), nvm.NewDevice(fmt.Sprintf("h%d", i), testDev))
			reps = append(reps, nic)
		}
		g, err := hyperloop.Setup(fab, client, reps, hyperloop.DefaultConfig(mirror))
		if err != nil {
			t.Fatal(err)
		}
		st, err := New(g, Config{LogSize: testLog, DataSize: testData})
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, backend{name: "hyperloop", k: k, st: st, nics: reps})
	}

	{ // Naive-RDMA
		k := sim.NewKernel(7)
		fab := rdma.NewFabric(k, rdma.DefaultConfig())
		client, _ := fab.AddNIC("client", nvm.NewDevice("client", testDev))
		var reps []*rdma.NIC
		var scheds []*cpusim.Scheduler
		for i := 0; i < nReplicas; i++ {
			nic, _ := fab.AddNIC(fmt.Sprintf("n%d", i), nvm.NewDevice(fmt.Sprintf("n%d", i), testDev))
			reps = append(reps, nic)
			s, err := cpusim.New(k, cpusim.DefaultConfig(4))
			if err != nil {
				t.Fatal(err)
			}
			scheds = append(scheds, s)
		}
		g, err := naive.Setup(fab, client, reps, scheds, naive.DefaultConfig(mirror))
		if err != nil {
			t.Fatal(err)
		}
		st, err := New(g, Config{LogSize: testLog, DataSize: testData})
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, backend{name: "naive", k: k, st: st, nics: reps})
	}
	return out
}

func (b backend) run(t *testing.T, fn func(f *sim.Fiber)) {
	t.Helper()
	b.k.Spawn("txn-test", fn)
	if err := b.k.RunUntil(b.k.Now().Add(30 * sim.Second)); err != nil {
		t.Fatalf("%s: kernel: %v", b.name, err)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(nil, Config{LogSize: 0, DataSize: 10}); !errors.Is(err, ErrBadArgument) {
		t.Fatalf("err = %v", err)
	}
}

func TestAppendExecuteReadBack(t *testing.T) {
	for _, b := range newBackends(t, 3) {
		b := b
		t.Run(b.name, func(t *testing.T) {
			b.run(t, func(f *sim.Fiber) {
				seq, err := b.st.Append(f, []wal.Entry{
					{Off: 0, Data: []byte("alpha")},
					{Off: 100, Data: []byte("beta")},
				})
				if err != nil {
					t.Errorf("append: %v", err)
					return
				}
				if seq != 1 {
					t.Errorf("seq = %d", seq)
				}
				got, err := b.st.ExecuteAndAdvance(f)
				if err != nil {
					t.Errorf("execute: %v", err)
					return
				}
				if got != seq {
					t.Errorf("executed seq = %d", got)
				}
				data, err := b.st.ReadData(0, 5)
				if err != nil || string(data) != "alpha" {
					t.Errorf("data[0] = %q (%v)", data, err)
				}
				data, _ = b.st.ReadData(100, 4)
				if string(data) != "beta" {
					t.Errorf("data[100] = %q", data)
				}
				if _, err := b.st.ExecuteAndAdvance(f); !errors.Is(err, ErrLogEmpty) {
					t.Errorf("empty execute err = %v", err)
				}
			})
			// The executed data must be present AND durable on every replica.
			for i, nic := range b.nics {
				nic.Memory().Crash()
				img := make([]byte, 5)
				_ = nic.Memory().Read(b.st.DataOff(), img)
				if string(img) != "alpha" {
					t.Fatalf("%s replica %d lost executed data after crash: %q", b.name, i, img)
				}
			}
		})
	}
}

func TestLogWrapsAround(t *testing.T) {
	for _, b := range newBackends(t, 2) {
		b := b
		t.Run(b.name, func(t *testing.T) {
			b.run(t, func(f *sim.Fiber) {
				// Each record ~ 520 bytes; the 8KB log wraps several times
				// across 50 append+execute rounds.
				payload := bytes.Repeat([]byte{0xAB}, 500)
				for i := 0; i < 50; i++ {
					copy(payload, []byte(fmt.Sprintf("rec-%03d", i)))
					if _, err := b.st.Append(f, []wal.Entry{{Off: 0, Data: payload}}); err != nil {
						t.Errorf("append %d: %v", i, err)
						return
					}
					if _, err := b.st.ExecuteAndAdvance(f); err != nil {
						t.Errorf("execute %d: %v", i, err)
						return
					}
				}
				got, _ := b.st.ReadData(0, 7)
				if string(got) != "rec-049" {
					t.Errorf("final record = %q", got)
				}
				used, _ := b.st.LogUsed()
				if used != 0 {
					t.Errorf("log used = %d after draining", used)
				}
			})
		})
	}
}

func TestLogFull(t *testing.T) {
	b := newBackends(t, 1)[0] // hyperloop only; semantics identical
	b.run(t, func(f *sim.Fiber) {
		payload := bytes.Repeat([]byte{1}, 1000)
		full := false
		for i := 0; i < 20; i++ {
			_, err := b.st.Append(f, []wal.Entry{{Off: 0, Data: payload}})
			if errors.Is(err, ErrLogFull) {
				full = true
				break
			}
			if err != nil {
				t.Errorf("append: %v", err)
				return
			}
		}
		if !full {
			t.Error("log never filled")
			return
		}
		// Draining makes room again.
		if _, err := b.st.ExecuteAll(f); err != nil {
			t.Errorf("drain: %v", err)
			return
		}
		if _, err := b.st.Append(f, []wal.Entry{{Off: 0, Data: payload}}); err != nil {
			t.Errorf("append after drain: %v", err)
		}
	})
}

func TestOversizedRecordRejected(t *testing.T) {
	b := newBackends(t, 1)[0]
	b.run(t, func(f *sim.Fiber) {
		if _, err := b.st.Append(f, []wal.Entry{{Off: 0, Data: make([]byte, testLog)}}); !errors.Is(err, ErrBadArgument) {
			t.Errorf("oversized append err = %v", err)
		}
		if _, err := b.st.Append(f, []wal.Entry{{Off: testData, Data: []byte{1}}}); !errors.Is(err, ErrBadArgument) {
			t.Errorf("out-of-data-region append err = %v", err)
		}
	})
}

func TestWrLockExcludes(t *testing.T) {
	for _, b := range newBackends(t, 3) {
		b := b
		t.Run(b.name, func(t *testing.T) {
			b.run(t, func(f *sim.Fiber) {
				if err := b.st.WrLock(f); err != nil {
					t.Errorf("lock: %v", err)
					return
				}
				locked, _ := b.st.Locked()
				if !locked {
					t.Error("lock word not set")
				}
				if err := b.st.WrUnlock(f); err != nil {
					t.Errorf("unlock: %v", err)
				}
				locked, _ = b.st.Locked()
				if locked {
					t.Error("lock word still set after unlock")
				}
			})
		})
	}
}

func TestWrLockContention(t *testing.T) {
	// Two writers with distinct tokens share one group: the second must
	// back off while the first holds the lock, and acquire afterwards.
	b := newBackends(t, 3)[0]
	st2, err := New(b.st.r, Config{LogSize: testLog, DataSize: testData, LockToken: 2, LockRetries: 200})
	if err != nil {
		t.Fatal(err)
	}
	var order []string
	b.k.Spawn("writer-1", func(f *sim.Fiber) {
		if err := b.st.WrLock(f); err != nil {
			t.Errorf("w1 lock: %v", err)
			return
		}
		order = append(order, "w1-acquired")
		f.Sleep(500 * sim.Microsecond)
		order = append(order, "w1-released")
		if err := b.st.WrUnlock(f); err != nil {
			t.Errorf("w1 unlock: %v", err)
		}
	})
	b.k.Spawn("writer-2", func(f *sim.Fiber) {
		f.Sleep(50 * sim.Microsecond) // let w1 win
		if err := st2.WrLock(f); err != nil {
			t.Errorf("w2 lock: %v", err)
			return
		}
		order = append(order, "w2-acquired")
		if err := st2.WrUnlock(f); err != nil {
			t.Errorf("w2 unlock: %v", err)
		}
	})
	if err := b.k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"w1-acquired", "w1-released", "w2-acquired"}
	if len(order) != 3 {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestWithWrLockReleasesOnError(t *testing.T) {
	b := newBackends(t, 2)[0]
	b.run(t, func(f *sim.Fiber) {
		wantErr := errors.New("app failure")
		err := b.st.WithWrLock(f, func() error { return wantErr })
		if !errors.Is(err, wantErr) {
			t.Errorf("err = %v", err)
		}
		locked, _ := b.st.Locked()
		if locked {
			t.Error("lock leaked after callback error")
		}
	})
}

func TestRdLockCounts(t *testing.T) {
	b := newBackends(t, 3)[0]
	b.run(t, func(f *sim.Fiber) {
		if err := b.st.RdLock(f, 1); err != nil {
			t.Errorf("rdlock: %v", err)
			return
		}
		if err := b.st.RdLock(f, 1); err != nil {
			t.Errorf("rdlock 2: %v", err)
			return
		}
		n, _ := b.st.Readers()
		if n != 2 {
			t.Errorf("readers = %d", n)
		}
		_ = b.st.RdUnlock(f, 1)
		_ = b.st.RdUnlock(f, 1)
		n, _ = b.st.Readers()
		if n != 0 {
			t.Errorf("readers after unlock = %d", n)
		}
		if err := b.st.RdUnlock(f, 1); err == nil {
			t.Error("reader underflow not caught")
		}
		if err := b.st.RdLock(f, 99); !errors.Is(err, ErrBadArgument) {
			t.Errorf("bad replica err = %v", err)
		}
	})
}

func TestPendingSeqsAndRecover(t *testing.T) {
	for _, b := range newBackends(t, 3) {
		b := b
		t.Run(b.name, func(t *testing.T) {
			b.run(t, func(f *sim.Fiber) {
				for i := 0; i < 3; i++ {
					if _, err := b.st.Append(f, []wal.Entry{{Off: i * 8, Data: []byte("12345678")}}); err != nil {
						t.Errorf("append: %v", err)
						return
					}
				}
				seqs, err := b.st.PendingSeqs()
				if err != nil || len(seqs) != 3 {
					t.Errorf("pending = %v (%v)", seqs, err)
					return
				}
				n, err := b.st.Recover(f)
				if err != nil || n != 3 {
					t.Errorf("recover applied %d (%v)", n, err)
					return
				}
				for i := 0; i < 3; i++ {
					d, _ := b.st.ReadData(i*8, 8)
					if string(d) != "12345678" {
						t.Errorf("entry %d = %q", i, d)
					}
				}
			})
		})
	}
}

func TestRepairLogRollsBackTornTail(t *testing.T) {
	b := newBackends(t, 2)[0]
	b.run(t, func(f *sim.Fiber) {
		if _, err := b.st.Append(f, []wal.Entry{{Off: 0, Data: []byte("good record")}}); err != nil {
			t.Errorf("append: %v", err)
			return
		}
		// Simulate a torn append: advance the tail pointer over garbage
		// (as if the crash hit between the pointer write and the record).
		tail, _ := b.st.Tail()
		if err := b.st.writePtr(f, ctrlTailPtr, tail+64); err != nil {
			t.Errorf("corrupt tail: %v", err)
			return
		}
		n, repaired, err := b.st.RepairLog(f)
		if err != nil {
			t.Errorf("repair: %v", err)
			return
		}
		if !repaired || n != 1 {
			t.Errorf("repair = %d records, repaired=%v", n, repaired)
			return
		}
		newTail, _ := b.st.Tail()
		if newTail != tail {
			t.Errorf("tail = %d, want rollback to %d", newTail, tail)
		}
		// The surviving record must still execute.
		if _, err := b.st.ExecuteAndAdvance(f); err != nil {
			t.Errorf("execute after repair: %v", err)
		}
	})
}

func TestSequencesSurviveRecovery(t *testing.T) {
	b := newBackends(t, 2)[0]
	b.run(t, func(f *sim.Fiber) {
		s1, _ := b.st.Append(f, []wal.Entry{{Off: 0, Data: []byte("a")}})
		if _, _, err := b.st.RepairLog(f); err != nil {
			t.Errorf("repair: %v", err)
			return
		}
		s2, err := b.st.Append(f, []wal.Entry{{Off: 0, Data: []byte("b")}})
		if err != nil {
			t.Errorf("append: %v", err)
			return
		}
		if s2 <= s1 {
			t.Errorf("sequence did not advance: %d then %d", s1, s2)
		}
	})
}

// TestTxnOverFanout verifies the transaction layer runs unchanged over the
// §7 fan-out topology — the third interchangeable Replicator.
func TestTxnOverFanout(t *testing.T) {
	k := sim.NewKernel(7)
	fab := rdma.NewFabric(k, rdma.DefaultConfig())
	client, _ := fab.AddNIC("client", nvm.NewDevice("client", testDev))
	var reps []*rdma.NIC
	for i := 0; i < 3; i++ {
		nic, _ := fab.AddNIC(fmt.Sprintf("f%d", i), nvm.NewDevice(fmt.Sprintf("f%d", i), testDev))
		reps = append(reps, nic)
	}
	g, err := hyperloop.SetupFanout(fab, client, reps,
		hyperloop.DefaultConfig(MirrorSizeFor(testLog, testData)))
	if err != nil {
		t.Fatal(err)
	}
	st, err := New(g, Config{LogSize: testLog, DataSize: testData})
	if err != nil {
		t.Fatal(err)
	}
	b := backend{name: "fanout", k: k, st: st, nics: reps}
	b.run(t, func(f *sim.Fiber) {
		if err := st.WithWrLock(f, func() error {
			if _, err := st.Append(f, []wal.Entry{{Off: 0, Data: []byte("fanout txn")}}); err != nil {
				return err
			}
			_, err := st.ExecuteAll(f)
			return err
		}); err != nil {
			t.Errorf("txn: %v", err)
		}
	})
	for i, nic := range reps {
		nic.Memory().Crash()
		got := make([]byte, 10)
		_ = nic.Memory().Read(st.DataOff(), got)
		if string(got) != "fanout txn" {
			t.Fatalf("member %d lost committed txn: %q", i, got)
		}
	}
}
