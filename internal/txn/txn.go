// Package txn is the replicated-transaction layer of §5: a write-ahead log
// and a database region inside a replication group's mirrored memory,
// driven entirely through the group primitives. Appending a transaction is
// a gWRITE(+gFLUSH) of the record and the tail pointer; executing it is a
// gMEMCPY(+gFLUSH) per entry plus a head-pointer advance; isolation is a
// group lock built from gCAS with undo on partial acquisition.
//
// The layer works identically over the HyperLoop backend (NIC-offloaded,
// package hyperloop) and the Naive-RDMA baseline (CPU-driven, package
// naive) — mirroring how the paper drops the same APIs into RocksDB and
// MongoDB with either datapath underneath.
package txn

import (
	"errors"
	"fmt"

	"hyperloop/internal/sim"
	"hyperloop/internal/wal"
)

// Replicator is the group-primitive surface the transaction layer needs.
// Both hyperloop.Group and naive.Group satisfy it.
type Replicator interface {
	GroupSize() int
	WriteLocal(off int, data []byte) error
	ReadLocal(off, n int) ([]byte, error)
	Write(f *sim.Fiber, off, size int, durable bool) error
	Memcpy(f *sim.Fiber, src, dst, size int, durable bool) error
	CAS(f *sim.Fiber, off int, old, new uint64, exec []bool) ([]uint64, error)
	Flush(f *sim.Fiber, off, size int) error
}

// Control-block layout at the top of the mirror.
const (
	ctrlWrLock  = 0  // writer lock word
	ctrlHeadPtr = 8  // log head (byte offset within the log region)
	ctrlTailPtr = 16 // log tail
	ctrlRdLock  = 24 // per-replica reader count word (CASed selectively)
	ctrlSize    = 64
)

// Errors returned by the transaction layer.
var (
	ErrLogFull       = errors.New("txn: log full — execute or truncate first")
	ErrLogEmpty      = errors.New("txn: log empty")
	ErrLockContended = errors.New("txn: lock contended")
	ErrBadArgument   = errors.New("txn: bad argument")
)

// Config parameterizes a Store.
type Config struct {
	// LogSize is the circular write-ahead-log region size.
	LogSize int
	// DataSize is the database region size.
	DataSize int
	// LockToken identifies this writer in the group lock word.
	LockToken uint64
	// LockRetries bounds lock acquisition attempts.
	LockRetries int
	// LockBackoff is the sleep between lock attempts.
	LockBackoff sim.Duration
}

// Store manages a replicated write-ahead log plus database region.
type Store struct {
	r   Replicator
	cfg Config

	logOff  int
	dataOff int
	nextSeq uint64
}

// New carves the control block, log and data regions out of the mirror.
// The mirror must be at least ctrl+LogSize+DataSize bytes (the caller
// configured the group's MirrorSize accordingly).
func New(r Replicator, cfg Config) (*Store, error) {
	if cfg.LogSize <= 2*wal.PadHeaderSize || cfg.DataSize <= 0 {
		return nil, fmt.Errorf("%w: log and data sizes must be positive", ErrBadArgument)
	}
	if cfg.LockToken == 0 {
		cfg.LockToken = 1
	}
	if cfg.LockRetries <= 0 {
		cfg.LockRetries = 100
	}
	if cfg.LockBackoff <= 0 {
		cfg.LockBackoff = 10 * sim.Microsecond
	}
	return &Store{
		r:       r,
		cfg:     cfg,
		logOff:  ctrlSize,
		dataOff: ctrlSize + cfg.LogSize,
		nextSeq: 1,
	}, nil
}

// DataOff returns the mirror offset of the database region.
func (s *Store) DataOff() int { return s.dataOff }

// DataSize returns the database region size.
func (s *Store) DataSize() int { return s.cfg.DataSize }

// MirrorSize returns the total mirror footprint of this store.
func (s *Store) MirrorSize() int { return ctrlSize + s.cfg.LogSize + s.cfg.DataSize }

// MirrorSizeFor returns the mirror size a group must provide for the given
// log and data region sizes.
func MirrorSizeFor(logSize, dataSize int) int { return ctrlSize + logSize + dataSize }

func (s *Store) readPtr(off int) (int, error) {
	b, err := s.r.ReadLocal(off, 8)
	if err != nil {
		return 0, err
	}
	return int(leUint64(b)), nil
}

func leUint64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func lePut(v uint64) []byte {
	return []byte{
		byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24),
		byte(v >> 32), byte(v >> 40), byte(v >> 48), byte(v >> 56),
	}
}

// writePtr durably replicates a control pointer.
func (s *Store) writePtr(f *sim.Fiber, off int, v int) error {
	if err := s.r.WriteLocal(off, lePut(uint64(v))); err != nil {
		return err
	}
	return s.r.Write(f, off, 8, true)
}

// Head returns the log head offset.
func (s *Store) Head() (int, error) { return s.readPtr(ctrlHeadPtr) }

// Tail returns the log tail offset.
func (s *Store) Tail() (int, error) { return s.readPtr(ctrlTailPtr) }

// LogUsed returns the bytes currently occupied in the log ring.
func (s *Store) LogUsed() (int, error) {
	head, err := s.Head()
	if err != nil {
		return 0, err
	}
	tail, err := s.Tail()
	if err != nil {
		return 0, err
	}
	return (tail - head + s.cfg.LogSize) % s.cfg.LogSize, nil
}

// wrapAt reports whether position p is inside the implicit-wrap strip at
// the end of the ring (too small to hold even a pad marker).
func (s *Store) wrapAt(p int) bool { return s.cfg.LogSize-p < wal.PadHeaderSize }

// Append encodes the transaction, durably replicates the record bytes
// (gWRITE + interleaved gFLUSH) and then the tail pointer. The record's
// entry offsets are relative to the data region.
func (s *Store) Append(f *sim.Fiber, entries []wal.Entry) (uint64, error) {
	for _, e := range entries {
		if e.Off < 0 || e.Off+len(e.Data) > s.cfg.DataSize {
			return 0, fmt.Errorf("%w: entry outside data region", ErrBadArgument)
		}
	}
	rec := wal.Record{Seq: s.nextSeq, Entries: entries}
	size := rec.EncodedSize()
	if size >= s.cfg.LogSize-wal.PadHeaderSize {
		return 0, fmt.Errorf("%w: record of %d bytes exceeds log", ErrBadArgument, size)
	}
	head, err := s.Head()
	if err != nil {
		return 0, err
	}
	tail, err := s.Tail()
	if err != nil {
		return 0, err
	}
	free := s.cfg.LogSize - ((tail - head + s.cfg.LogSize) % s.cfg.LogSize) - 1
	needsWrap := tail+size > s.cfg.LogSize
	need := size
	if needsWrap {
		need += s.cfg.LogSize - tail // the pad / wrap strip
	}
	if need > free {
		return 0, ErrLogFull
	}
	if needsWrap {
		padLen := s.cfg.LogSize - tail
		if padLen >= wal.PadHeaderSize {
			pad := make([]byte, padLen)
			if err := wal.EncodePad(pad, padLen); err != nil {
				return 0, err
			}
			if err := s.r.WriteLocal(s.logOff+tail, pad); err != nil {
				return 0, err
			}
			if err := s.r.Write(f, s.logOff+tail, wal.PadHeaderSize, true); err != nil {
				return 0, err
			}
		}
		tail = 0
	}
	buf := make([]byte, size)
	if _, err := rec.Encode(buf); err != nil {
		return 0, err
	}
	if err := s.r.WriteLocal(s.logOff+tail, buf); err != nil {
		return 0, err
	}
	if err := s.r.Write(f, s.logOff+tail, size, true); err != nil {
		return 0, err
	}
	newTail := tail + size
	if s.wrapAt(newTail) {
		newTail = 0
	}
	if err := s.writePtr(f, ctrlTailPtr, newTail); err != nil {
		return 0, err
	}
	s.nextSeq++
	return rec.Seq, nil
}

// ExecuteAndAdvance processes the record at the log head: one gMEMCPY +
// gFLUSH per entry moves the data from the log region into the database
// region on every member without replica CPU involvement, then the head
// pointer advances (truncation). It returns the record's sequence.
func (s *Store) ExecuteAndAdvance(f *sim.Fiber) (uint64, error) {
	head, err := s.Head()
	if err != nil {
		return 0, err
	}
	tail, err := s.Tail()
	if err != nil {
		return 0, err
	}
	for {
		if head == tail {
			return 0, ErrLogEmpty
		}
		if s.wrapAt(head) {
			head = 0
			continue
		}
		strip, err := s.r.ReadLocal(s.logOff+head, minInt(wal.PadHeaderSize, s.cfg.LogSize-head))
		if err != nil {
			return 0, err
		}
		if padLen, ok := wal.IsPad(strip); ok {
			head += padLen
			if s.wrapAt(head) || head >= s.cfg.LogSize {
				head = 0
			}
			continue
		}
		break
	}
	img, err := s.r.ReadLocal(s.logOff+head, s.cfg.LogSize-head)
	if err != nil {
		return 0, err
	}
	rec, err := wal.Decode(img)
	if err != nil {
		return 0, fmt.Errorf("execute: %w", err)
	}
	for _, e := range rec.Entries {
		if e.Len == 0 {
			continue
		}
		src := s.logOff + head + e.DataPos
		dst := s.dataOff + e.Off
		if err := s.r.Memcpy(f, src, dst, e.Len, true); err != nil {
			return 0, fmt.Errorf("execute seq %d: %w", rec.Seq, err)
		}
	}
	newHead := head + rec.Size
	if s.wrapAt(newHead) {
		newHead = 0
	}
	if err := s.writePtr(f, ctrlHeadPtr, newHead); err != nil {
		return 0, err
	}
	return rec.Seq, nil
}

// ExecuteAll drains the log, returning how many records were applied.
func (s *Store) ExecuteAll(f *sim.Fiber) (int, error) {
	n := 0
	for {
		if _, err := s.ExecuteAndAdvance(f); err != nil {
			if errors.Is(err, ErrLogEmpty) {
				return n, nil
			}
			return n, err
		}
		n++
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// WriteData durably replicates raw bytes into the data region at off —
// used by checkpointing stores that serialize state outside the log.
func (s *Store) WriteData(f *sim.Fiber, off int, data []byte) error {
	if off < 0 || off+len(data) > s.cfg.DataSize {
		return fmt.Errorf("%w: data write out of range", ErrBadArgument)
	}
	if err := s.r.WriteLocal(s.dataOff+off, data); err != nil {
		return err
	}
	return s.r.Write(f, s.dataOff+off, len(data), true)
}

// TruncateAll advances the log head to the tail without executing records
// — the truncation step after a checkpoint has captured their effects.
func (s *Store) TruncateAll(f *sim.Fiber) error {
	tail, err := s.Tail()
	if err != nil {
		return err
	}
	return s.writePtr(f, ctrlHeadPtr, tail)
}

// Exported layout constants so external readers (replica-side view
// builders, recovery tools) can interpret a raw mirror image.
const (
	// CtrlSize is the control block size at the top of the mirror.
	CtrlSize = ctrlSize
	// HeadPtrOff / TailPtrOff locate the log pointers in the mirror.
	HeadPtrOff = ctrlHeadPtr
	TailPtrOff = ctrlTailPtr
)
