package txn

import (
	"errors"
	"testing"

	"hyperloop/internal/sim"
)

func TestCommitLogSizing(t *testing.T) {
	// Header(24) + 4·span + trailer(4), rounded up to 8.
	if got := CommitLogSlotSize(1); got != 32 {
		t.Errorf("slot size span 1 = %d, want 32", got)
	}
	if got := CommitLogSlotSize(4); got != 48 {
		t.Errorf("slot size span 4 = %d, want 48", got)
	}
	if got := CommitLogSizeFor(16, 4); got != 16*48 {
		t.Errorf("size for 16 slots span 4 = %d, want %d", got, 16*48)
	}
}

func TestCommitLogBadArguments(t *testing.T) {
	rig := newTwoPCRig(t, 1, nil, 0)
	st := rig.stores[0]
	if _, err := NewCommitLog(nil, 4); !errors.Is(err, ErrBadArgument) {
		t.Errorf("nil store: %v, want ErrBadArgument", err)
	}
	if _, err := NewCommitLog(st, 0); !errors.Is(err, ErrBadArgument) {
		t.Errorf("zero span: %v, want ErrBadArgument", err)
	}
	// A span so large no slot fits the data region.
	if _, err := NewCommitLog(st, testData); !errors.Is(err, ErrBadArgument) {
		t.Errorf("oversized span: %v, want ErrBadArgument", err)
	}
	cl, err := NewCommitLog(st, 4)
	if err != nil {
		t.Fatal(err)
	}
	rig.run(t, func(f *sim.Fiber) {
		// Span-4 slots round up to 48 bytes, leaving room for 5 shard IDs;
		// 6 must be rejected.
		if _, err := cl.Append(f, 42, []int{0, 1, 2, 3, 4, 5}); !errors.Is(err, ErrBadArgument) {
			t.Errorf("append past span: %v, want ErrBadArgument", err)
		}
	})
}

func TestCommitLogAppendTruncateRecords(t *testing.T) {
	rig := newTwoPCRig(t, 1, nil, 0)
	cl, err := NewCommitLog(rig.stores[0], 4)
	if err != nil {
		t.Fatal(err)
	}
	rig.run(t, func(f *sim.Fiber) {
		a, err := cl.Append(f, 42, []int{0, 2})
		if err != nil {
			t.Fatalf("append a: %v", err)
		}
		b, err := cl.Append(f, 42, []int{1})
		if err != nil {
			t.Fatalf("append b: %v", err)
		}
		if a == b {
			t.Fatalf("txnIDs collide: %d", a)
		}
		recs, err := cl.Records()
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != 2 {
			t.Fatalf("records = %d, want 2", len(recs))
		}
		byID := map[uint64]CommitRecord{}
		for _, r := range recs {
			byID[r.TxnID] = r
		}
		ra := byID[a]
		if ra.Token != 42 || len(ra.Shards) != 2 || ra.Shards[0] != 0 || ra.Shards[1] != 2 {
			t.Errorf("record a = %+v", ra)
		}
		if err := cl.Truncate(f, a); err != nil {
			t.Fatalf("truncate: %v", err)
		}
		// Truncating an unknown (already truncated) id is a no-op.
		if err := cl.Truncate(f, a); err != nil {
			t.Errorf("re-truncate: %v", err)
		}
		recs, err = cl.Records()
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != 1 || recs[0].TxnID != b {
			t.Errorf("records after truncate = %+v, want only %d", recs, b)
		}
	})
}

func TestCommitLogFullAndSlotReuse(t *testing.T) {
	rig := newTwoPCRig(t, 1, nil, 0)
	cl, err := NewCommitLog(rig.stores[0], 4)
	if err != nil {
		t.Fatal(err)
	}
	rig.run(t, func(f *sim.Fiber) {
		ids := make([]uint64, cl.Slots())
		for i := range ids {
			id, err := cl.Append(f, 7, []int{0})
			if err != nil {
				t.Fatalf("append %d/%d: %v", i, cl.Slots(), err)
			}
			ids[i] = id
		}
		if _, err := cl.Append(f, 7, []int{0}); !errors.Is(err, ErrCommitLogFull) {
			t.Errorf("append into full log: %v, want ErrCommitLogFull", err)
		}
		// Truncation frees a slot for the next record.
		if err := cl.Truncate(f, ids[3]); err != nil {
			t.Fatal(err)
		}
		if _, err := cl.Append(f, 7, []int{0}); err != nil {
			t.Errorf("append after truncate: %v", err)
		}
	})
}

// TestCommitLogRestart drives the coordinator-restart path: a fresh
// CommitLog over a store holding old records must surface them from
// Records, resume txnID allocation past them, and truncate them.
func TestCommitLogRestart(t *testing.T) {
	rig := newTwoPCRig(t, 1, nil, 0)
	st := rig.stores[0]
	cl, err := NewCommitLog(st, 4)
	if err != nil {
		t.Fatal(err)
	}
	rig.run(t, func(f *sim.Fiber) {
		id, err := cl.Append(f, 42, []int{0, 1})
		if err != nil {
			t.Fatal(err)
		}
		// "Restart": a brand-new CommitLog over the same durable store.
		cl2, err := NewCommitLog(st, 4)
		if err != nil {
			t.Fatal(err)
		}
		recs, err := cl2.Records()
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != 1 || recs[0].TxnID != id || recs[0].Token != 42 {
			t.Fatalf("records after restart = %+v, want txn %d", recs, id)
		}
		next, err := cl2.Append(f, 42, []int{1})
		if err != nil {
			t.Fatal(err)
		}
		if next <= id {
			t.Errorf("restarted log reissued txnID %d (old max %d)", next, id)
		}
		if err := cl2.Truncate(f, id); err != nil {
			t.Fatalf("truncate after restart: %v", err)
		}
		recs, err = cl2.Records()
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != 1 || recs[0].TxnID != next {
			t.Errorf("records = %+v, want only %d", recs, next)
		}
	})
}

// TestCommitLogRecordOnReplicas checks the commit point is replicated:
// after Append returns, the record decodes from a replica's own memory
// image, not just the client mirror.
func TestCommitLogRecordOnReplicas(t *testing.T) {
	rig := newTwoPCRig(t, 1, nil, 0)
	st := rig.stores[0]
	cl, err := NewCommitLog(st, 4)
	if err != nil {
		t.Fatal(err)
	}
	rig.run(t, func(f *sim.Fiber) {
		id, err := cl.Append(f, 42, []int{0, 3})
		if err != nil {
			t.Fatal(err)
		}
		img := make([]byte, CommitLogSlotSize(4))
		if err := rig.groups[0].ReplicaNIC(1).Memory().Read(st.DataOff(), img); err != nil {
			t.Fatal(err)
		}
		rec, ok := decodeCommitRecord(img)
		if !ok {
			t.Fatal("replica image holds no valid commit record")
		}
		if rec.TxnID != id || rec.Token != 42 || len(rec.Shards) != 2 {
			t.Errorf("replica record = %+v", rec)
		}
	})
}

func TestDecodeCommitRecordRejectsTorn(t *testing.T) {
	buf := make([]byte, CommitLogSlotSize(4))
	if _, ok := decodeCommitRecord(nil); ok {
		t.Error("decoded nil buffer")
	}
	if _, ok := decodeCommitRecord(buf); ok {
		t.Error("decoded zeroed slot")
	}
	// Valid magic but garbage CRC must be rejected (torn write).
	buf[0], buf[1], buf[2], buf[3] = 0x50, 0x43, 0x4C, 0x48
	if _, ok := decodeCommitRecord(buf); ok {
		t.Error("decoded record with bad CRC")
	}
}
