package txn

import (
	"errors"
	"fmt"

	"hyperloop/internal/sim"
	"hyperloop/internal/wal"
)

// ReadData returns a copy of [off, off+n) of the data region from the
// client's mirror.
func (s *Store) ReadData(off, n int) ([]byte, error) {
	if off < 0 || off+n > s.cfg.DataSize {
		return nil, fmt.Errorf("%w: data read out of range", ErrBadArgument)
	}
	return s.r.ReadLocal(s.dataOff+off, n)
}

// logRecord pairs a decoded record with its position in the log ring.
type logRecord struct {
	pos int
	rec wal.DecodedRecord
}

// scanLog walks valid records from head to tail on the client's current
// view, skipping pads and wraps. It returns the valid prefix and, if the
// walk hit a torn/corrupt record before reaching tail, the position where
// validity ended.
func (s *Store) scanLog() (recs []logRecord, validEnd int, torn bool, err error) {
	head, err := s.Head()
	if err != nil {
		return nil, 0, false, err
	}
	tail, err := s.Tail()
	if err != nil {
		return nil, 0, false, err
	}
	p := head
	for p != tail {
		if s.wrapAt(p) {
			p = 0
			continue
		}
		strip, err := s.r.ReadLocal(s.logOff+p, minInt(wal.PadHeaderSize, s.cfg.LogSize-p))
		if err != nil {
			return nil, 0, false, err
		}
		if padLen, ok := wal.IsPad(strip); ok {
			p += padLen
			if p >= s.cfg.LogSize || s.wrapAt(p) {
				p = 0
			}
			continue
		}
		img, err := s.r.ReadLocal(s.logOff+p, s.cfg.LogSize-p)
		if err != nil {
			return nil, 0, false, err
		}
		rec, derr := wal.Decode(img)
		if derr != nil {
			return recs, p, true, nil
		}
		recs = append(recs, logRecord{pos: p, rec: rec})
		p += rec.Size
		if s.wrapAt(p) {
			p = 0
		}
	}
	return recs, p, false, nil
}

// PendingSeqs returns the sequence numbers of valid, unexecuted records.
func (s *Store) PendingSeqs() ([]uint64, error) {
	recs, _, _, err := s.scanLog()
	if err != nil {
		return nil, err
	}
	seqs := make([]uint64, len(recs))
	for i, lr := range recs {
		seqs[i] = lr.rec.Seq
	}
	return seqs, nil
}

// RepairLog validates the log after a crash. A torn append (record bytes
// not fully durable, or tail pointer ahead of valid data) is rolled back
// by rewriting the tail pointer to the end of the valid prefix — durably,
// on the whole group. It returns the number of valid pending records and
// whether a repair was needed. The caller typically runs ExecuteAll next.
func (s *Store) RepairLog(f *sim.Fiber) (valid int, repaired bool, err error) {
	recs, validEnd, torn, err := s.scanLog()
	if err != nil {
		return 0, false, err
	}
	if torn {
		if err := s.writePtr(f, ctrlTailPtr, validEnd); err != nil {
			return len(recs), false, fmt.Errorf("%w: %v", ErrRecovered, err)
		}
		repaired = true
	}
	// Restore the client's next sequence past anything still in the log.
	for _, lr := range recs {
		if lr.rec.Seq >= s.nextSeq {
			s.nextSeq = lr.rec.Seq + 1
		}
	}
	return len(recs), repaired, nil
}

// Recover repairs the log and re-executes every pending record — the full
// §5 recovery flow once a stable chain is re-established. It returns how
// many records were applied.
func (s *Store) Recover(f *sim.Fiber) (int, error) {
	if _, _, err := s.RepairLog(f); err != nil && !errors.Is(err, ErrRecovered) {
		return 0, err
	}
	return s.ExecuteAll(f)
}

// VisitPending calls fn for every valid pending record in log order,
// materializing entry data (copies). Used by stores that replay the log
// into in-memory structures during recovery.
func (s *Store) VisitPending(fn func(seq uint64, entries []wal.Entry) error) error {
	recs, _, _, err := s.scanLog()
	if err != nil {
		return err
	}
	for _, lr := range recs {
		img, err := s.r.ReadLocal(s.logOff+lr.pos, lr.rec.Size)
		if err != nil {
			return err
		}
		entries := make([]wal.Entry, len(lr.rec.Entries))
		for i, e := range lr.rec.Entries {
			entries[i] = wal.Entry{
				Off:  e.Off,
				Data: append([]byte(nil), lr.rec.Data(img, e)...),
			}
		}
		if err := fn(lr.rec.Seq, entries); err != nil {
			return err
		}
	}
	return nil
}
