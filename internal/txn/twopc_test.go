package txn

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"hyperloop/internal/hyperloop"
	"hyperloop/internal/nvm"
	"hyperloop/internal/rdma"
	"hyperloop/internal/sim"
	"hyperloop/internal/wal"
)

// twoPCRig is a pair of independently replicated stores on one kernel —
// the smallest cross-shard deployment. Each store has its own client NIC
// and replica chain, like two shards of internal/shard's router.
type twoPCRig struct {
	k      *sim.Kernel
	fab    *rdma.Fabric
	stores []*Store
	groups []*hyperloop.Group
}

// newTwoPCRig builds nStores 2-replica chains. faults (optional) is
// installed on the fabric before any NIC exists; opTimeout arms each
// group's client-side timeout so faulted chains fail instead of hanging.
func newTwoPCRig(t *testing.T, nStores int, faults *rdma.FaultPlan, opTimeout sim.Duration) *twoPCRig {
	t.Helper()
	k := sim.NewKernel(11)
	fab := rdma.NewFabric(k, rdma.DefaultConfig())
	if faults != nil {
		if err := fab.InstallFaultPlan(faults); err != nil {
			t.Fatal(err)
		}
	}
	rig := &twoPCRig{k: k, fab: fab}
	mirror := MirrorSizeFor(testLog, testData)
	for s := 0; s < nStores; s++ {
		client, err := fab.AddNIC(fmt.Sprintf("cli-%d", s), nvm.NewDevice(fmt.Sprintf("cli-%d", s), testDev))
		if err != nil {
			t.Fatal(err)
		}
		var reps []*rdma.NIC
		for i := 0; i < 2; i++ {
			host := fmt.Sprintf("s%d-r%d", s, i)
			nic, err := fab.AddNIC(host, nvm.NewDevice(host, testDev))
			if err != nil {
				t.Fatal(err)
			}
			reps = append(reps, nic)
		}
		cfg := hyperloop.DefaultConfig(mirror)
		cfg.OpTimeout = opTimeout
		g, err := hyperloop.Setup(fab, client, reps, cfg)
		if err != nil {
			t.Fatal(err)
		}
		st, err := New(g, Config{LogSize: testLog, DataSize: testData, LockToken: 42})
		if err != nil {
			t.Fatal(err)
		}
		rig.stores = append(rig.stores, st)
		rig.groups = append(rig.groups, g)
	}
	return rig
}

func (r *twoPCRig) run(t *testing.T, fn func(f *sim.Fiber)) {
	t.Helper()
	r.k.Spawn("twopc-test", fn)
	if err := r.k.RunUntil(r.k.Now().Add(30 * sim.Second)); err != nil {
		t.Fatalf("kernel: %v", err)
	}
}

// mustUnlocked fails the test if any store still holds its write lock —
// the "no leaked group locks" invariant every abort path must keep.
func mustUnlocked(t *testing.T, stores []*Store) {
	t.Helper()
	for i, st := range stores {
		locked, err := st.Locked()
		if err != nil {
			t.Errorf("store %d: Locked: %v", i, err)
			continue
		}
		if locked {
			t.Errorf("store %d: write lock leaked", i)
		}
	}
}

func parts(stores []*Store, payload string) []Participant {
	ps := make([]Participant, len(stores))
	for i, st := range stores {
		ps[i] = Participant{
			Store:   st,
			Entries: []wal.Entry{{Off: 64 * i, Data: []byte(fmt.Sprintf("%s-%d", payload, i))}},
		}
	}
	return ps
}

func TestTwoPCCommitAppliesEverywhere(t *testing.T) {
	rig := newTwoPCRig(t, 2, nil, 0)
	rig.run(t, func(f *sim.Fiber) {
		tx := BeginDist(parts(rig.stores, "commit"))
		if err := tx.Prepare(f); err != nil {
			t.Errorf("prepare: %v", err)
			return
		}
		if got := tx.Prepared(); got != 2 {
			t.Errorf("prepared = %d, want 2", got)
		}
		if err := tx.Commit(f); err != nil {
			t.Errorf("commit: %v", err)
			return
		}
		for i, st := range rig.stores {
			want := []byte(fmt.Sprintf("commit-%d", i))
			got, err := st.ReadData(64*i, len(want))
			if err != nil || !bytes.Equal(got, want) {
				t.Errorf("store %d: data = %q (%v), want %q", i, got, err, want)
			}
			// Applied on the replicas too, not just the client's mirror.
			img := make([]byte, len(want))
			if err := rig.groups[i].ReplicaNIC(1).Memory().Read(st.DataOff()+64*i, img); err != nil {
				t.Errorf("store %d: replica read: %v", i, err)
			} else if !bytes.Equal(img, want) {
				t.Errorf("store %d: replica data = %q, want %q", i, img, want)
			}
			if used, err := st.LogUsed(); err != nil || used != 0 {
				t.Errorf("store %d: log used = %d (%v), want 0", i, used, err)
			}
		}
		mustUnlocked(t, rig.stores)
	})
}

func TestTwoPCAbortReleasesLocksAndRollsBack(t *testing.T) {
	rig := newTwoPCRig(t, 2, nil, 0)
	rig.run(t, func(f *sim.Fiber) {
		tx := BeginDist(parts(rig.stores, "abort"))
		if err := tx.Prepare(f); err != nil {
			t.Errorf("prepare: %v", err)
			return
		}
		if err := tx.Abort(f); err != nil {
			t.Errorf("abort: %v", err)
			return
		}
		for i, st := range rig.stores {
			if used, err := st.LogUsed(); err != nil || used != 0 {
				t.Errorf("store %d: log used after abort = %d (%v), want 0", i, used, err)
			}
			got, err := st.ReadData(64*i, 5)
			if err != nil || !bytes.Equal(got, make([]byte, 5)) {
				t.Errorf("store %d: data leaked through abort: %q (%v)", i, got, err)
			}
		}
		mustUnlocked(t, rig.stores)

		// The aborted stores are immediately reusable.
		tx2 := BeginDist(parts(rig.stores, "after"))
		if err := tx2.Prepare(f); err != nil {
			t.Errorf("prepare after abort: %v", err)
			return
		}
		if err := tx2.Commit(f); err != nil {
			t.Errorf("commit after abort: %v", err)
		}
		mustUnlocked(t, rig.stores)
	})
}

// TestTwoPCCoordinatorCrashRecovery drives the orphaned-transaction path:
// the coordinator prepares both stores and then "crashes" (the DistTxn is
// dropped), leaving both groups locked with durable, unexecuted records.
// A recovery agent resolves each store with RecoverAbort and the stores
// come back clean: unlocked, empty logs, no data applied.
func TestTwoPCCoordinatorCrashRecovery(t *testing.T) {
	rig := newTwoPCRig(t, 2, nil, 0)
	rig.run(t, func(f *sim.Fiber) {
		tx := BeginDist(parts(rig.stores, "crash"))
		if err := tx.Prepare(f); err != nil {
			t.Errorf("prepare: %v", err)
			return
		}
		// Coordinator crashes here: tx is never driven again.
		for i, st := range rig.stores {
			if locked, _ := st.Locked(); !locked {
				t.Errorf("store %d: not locked after prepare", i)
			}
			if pend, err := st.PendingSeqs(); err != nil || len(pend) != 1 {
				t.Errorf("store %d: pending = %v (%v), want one record", i, pend, err)
			}
		}
		for i, st := range rig.stores {
			rolled, err := RecoverAbort(f, st, 42)
			if err != nil {
				t.Errorf("store %d: recover: %v", i, err)
				return
			}
			if !rolled {
				t.Errorf("store %d: recovery found nothing to roll back", i)
			}
		}
		for i, st := range rig.stores {
			if used, err := st.LogUsed(); err != nil || used != 0 {
				t.Errorf("store %d: log used after recovery = %d (%v)", i, used, err)
			}
			got, err := st.ReadData(64*i, 5)
			if err != nil || !bytes.Equal(got, make([]byte, 5)) {
				t.Errorf("store %d: data applied despite abort: %q (%v)", i, got, err)
			}
		}
		mustUnlocked(t, rig.stores)

		// RecoverAbort on a clean store is a no-op.
		if rolled, err := RecoverAbort(f, rig.stores[0], 42); err != nil || rolled {
			t.Errorf("recover on clean store = %v, %v; want false, nil", rolled, err)
		}
	})
}

// TestTwoPCPrepareTimeoutAbortsPreparedPrefix injects a fault plan that
// kills one of store 1's replica NICs before the transaction starts. The
// coordinator prepares store 0 (healthy), then store 1's lock CAS times
// out; Prepare must roll store 0 back and release its lock — no leaked
// group locks on any reachable store.
func TestTwoPCPrepareTimeoutAbortsPreparedPrefix(t *testing.T) {
	faults := &rdma.FaultPlan{
		NICs: []rdma.NICFault{{Host: "s1-r1", At: sim.Time(5 * sim.Microsecond), Down: true}},
	}
	rig := newTwoPCRig(t, 2, faults, 200*sim.Microsecond)
	rig.run(t, func(f *sim.Fiber) {
		f.Sleep(50 * sim.Microsecond) // let the crash land first
		tx := BeginDist(parts(rig.stores, "timeout"))
		err := tx.Prepare(f)
		if !errors.Is(err, ErrAborted) {
			t.Errorf("prepare err = %v, want ErrAborted", err)
			return
		}
		if got := tx.Prepared(); got != 0 {
			t.Errorf("prepared after failed prepare = %d, want 0", got)
		}
		// Store 0 (healthy, was prepared first) must be fully rolled back.
		st := rig.stores[0]
		mustUnlocked(t, rig.stores[:1])
		if used, err := st.LogUsed(); err != nil || used != 0 {
			t.Errorf("store 0: log used = %d (%v), want 0", used, err)
		}
		// And usable: a single-store transaction commits straight through.
		tx2 := BeginDist(parts(rig.stores[:1], "retry"))
		if err := tx2.Prepare(f); err != nil {
			t.Errorf("prepare after aborted txn: %v", err)
			return
		}
		if err := tx2.Commit(f); err != nil {
			t.Errorf("commit after aborted txn: %v", err)
		}
	})
}

func TestTwoPCCommitWithoutPrepare(t *testing.T) {
	rig := newTwoPCRig(t, 1, nil, 0)
	rig.run(t, func(f *sim.Fiber) {
		tx := BeginDist(parts(rig.stores, "x"))
		if err := tx.Commit(f); !errors.Is(err, ErrBadArgument) {
			t.Errorf("commit without prepare = %v, want ErrBadArgument", err)
		}
	})
}
