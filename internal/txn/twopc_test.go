package txn

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"hyperloop/internal/hyperloop"
	"hyperloop/internal/nvm"
	"hyperloop/internal/rdma"
	"hyperloop/internal/sim"
	"hyperloop/internal/wal"
)

// twoPCRig is a pair of independently replicated stores on one kernel —
// the smallest cross-shard deployment. Each store has its own client NIC
// and replica chain, like two shards of internal/shard's router.
type twoPCRig struct {
	k      *sim.Kernel
	fab    *rdma.Fabric
	stores []*Store
	groups []*hyperloop.Group
}

// newTwoPCRig builds nStores 2-replica chains. faults (optional) is
// installed on the fabric before any NIC exists; opTimeout arms each
// group's client-side timeout so faulted chains fail instead of hanging.
func newTwoPCRig(t *testing.T, nStores int, faults *rdma.FaultPlan, opTimeout sim.Duration) *twoPCRig {
	t.Helper()
	k := sim.NewKernel(11)
	fab := rdma.NewFabric(k, rdma.DefaultConfig())
	if faults != nil {
		if err := fab.InstallFaultPlan(faults); err != nil {
			t.Fatal(err)
		}
	}
	rig := &twoPCRig{k: k, fab: fab}
	mirror := MirrorSizeFor(testLog, testData)
	for s := 0; s < nStores; s++ {
		client, err := fab.AddNIC(fmt.Sprintf("cli-%d", s), nvm.NewDevice(fmt.Sprintf("cli-%d", s), testDev))
		if err != nil {
			t.Fatal(err)
		}
		var reps []*rdma.NIC
		for i := 0; i < 2; i++ {
			host := fmt.Sprintf("s%d-r%d", s, i)
			nic, err := fab.AddNIC(host, nvm.NewDevice(host, testDev))
			if err != nil {
				t.Fatal(err)
			}
			reps = append(reps, nic)
		}
		cfg := hyperloop.DefaultConfig(mirror)
		cfg.OpTimeout = opTimeout
		g, err := hyperloop.Setup(fab, client, reps, cfg)
		if err != nil {
			t.Fatal(err)
		}
		st, err := New(g, Config{LogSize: testLog, DataSize: testData, LockToken: 42})
		if err != nil {
			t.Fatal(err)
		}
		rig.stores = append(rig.stores, st)
		rig.groups = append(rig.groups, g)
	}
	return rig
}

func (r *twoPCRig) run(t *testing.T, fn func(f *sim.Fiber)) {
	t.Helper()
	r.k.Spawn("twopc-test", fn)
	if err := r.k.RunUntil(r.k.Now().Add(30 * sim.Second)); err != nil {
		t.Fatalf("kernel: %v", err)
	}
}

// mustUnlocked fails the test if any store still holds its write lock —
// the "no leaked group locks" invariant every abort path must keep.
func mustUnlocked(t *testing.T, stores []*Store) {
	t.Helper()
	for i, st := range stores {
		locked, err := st.Locked()
		if err != nil {
			t.Errorf("store %d: Locked: %v", i, err)
			continue
		}
		if locked {
			t.Errorf("store %d: write lock leaked", i)
		}
	}
}

func parts(stores []*Store, payload string) []Participant {
	ps := make([]Participant, len(stores))
	for i, st := range stores {
		ps[i] = Participant{
			Store:   st,
			Entries: []wal.Entry{{Off: 64 * i, Data: []byte(fmt.Sprintf("%s-%d", payload, i))}},
		}
	}
	return ps
}

func TestTwoPCCommitAppliesEverywhere(t *testing.T) {
	rig := newTwoPCRig(t, 2, nil, 0)
	rig.run(t, func(f *sim.Fiber) {
		tx := BeginDist(parts(rig.stores, "commit"))
		if err := tx.Prepare(f); err != nil {
			t.Errorf("prepare: %v", err)
			return
		}
		if got := tx.Prepared(); got != 2 {
			t.Errorf("prepared = %d, want 2", got)
		}
		if err := tx.Commit(f); err != nil {
			t.Errorf("commit: %v", err)
			return
		}
		for i, st := range rig.stores {
			want := []byte(fmt.Sprintf("commit-%d", i))
			got, err := st.ReadData(64*i, len(want))
			if err != nil || !bytes.Equal(got, want) {
				t.Errorf("store %d: data = %q (%v), want %q", i, got, err, want)
			}
			// Applied on the replicas too, not just the client's mirror.
			img := make([]byte, len(want))
			if err := rig.groups[i].ReplicaNIC(1).Memory().Read(st.DataOff()+64*i, img); err != nil {
				t.Errorf("store %d: replica read: %v", i, err)
			} else if !bytes.Equal(img, want) {
				t.Errorf("store %d: replica data = %q, want %q", i, img, want)
			}
			if used, err := st.LogUsed(); err != nil || used != 0 {
				t.Errorf("store %d: log used = %d (%v), want 0", i, used, err)
			}
		}
		mustUnlocked(t, rig.stores)
	})
}

func TestTwoPCAbortReleasesLocksAndRollsBack(t *testing.T) {
	rig := newTwoPCRig(t, 2, nil, 0)
	rig.run(t, func(f *sim.Fiber) {
		tx := BeginDist(parts(rig.stores, "abort"))
		if err := tx.Prepare(f); err != nil {
			t.Errorf("prepare: %v", err)
			return
		}
		if err := tx.Abort(f); err != nil {
			t.Errorf("abort: %v", err)
			return
		}
		for i, st := range rig.stores {
			if used, err := st.LogUsed(); err != nil || used != 0 {
				t.Errorf("store %d: log used after abort = %d (%v), want 0", i, used, err)
			}
			got, err := st.ReadData(64*i, 5)
			if err != nil || !bytes.Equal(got, make([]byte, 5)) {
				t.Errorf("store %d: data leaked through abort: %q (%v)", i, got, err)
			}
		}
		mustUnlocked(t, rig.stores)

		// The aborted stores are immediately reusable.
		tx2 := BeginDist(parts(rig.stores, "after"))
		if err := tx2.Prepare(f); err != nil {
			t.Errorf("prepare after abort: %v", err)
			return
		}
		if err := tx2.Commit(f); err != nil {
			t.Errorf("commit after abort: %v", err)
		}
		mustUnlocked(t, rig.stores)
	})
}

// TestTwoPCCoordinatorCrashRecovery drives the orphaned-transaction path:
// the coordinator prepares both stores and then "crashes" (the DistTxn is
// dropped), leaving both groups locked with durable, unexecuted records.
// A recovery agent resolves each store with RecoverAbort and the stores
// come back clean: unlocked, empty logs, no data applied.
func TestTwoPCCoordinatorCrashRecovery(t *testing.T) {
	rig := newTwoPCRig(t, 2, nil, 0)
	rig.run(t, func(f *sim.Fiber) {
		tx := BeginDist(parts(rig.stores, "crash"))
		if err := tx.Prepare(f); err != nil {
			t.Errorf("prepare: %v", err)
			return
		}
		// Coordinator crashes here: tx is never driven again.
		for i, st := range rig.stores {
			if locked, _ := st.Locked(); !locked {
				t.Errorf("store %d: not locked after prepare", i)
			}
			if pend, err := st.PendingSeqs(); err != nil || len(pend) != 1 {
				t.Errorf("store %d: pending = %v (%v), want one record", i, pend, err)
			}
		}
		for i, st := range rig.stores {
			rolled, err := RecoverAbort(f, st, 42)
			if err != nil {
				t.Errorf("store %d: recover: %v", i, err)
				return
			}
			if !rolled {
				t.Errorf("store %d: recovery found nothing to roll back", i)
			}
		}
		for i, st := range rig.stores {
			if used, err := st.LogUsed(); err != nil || used != 0 {
				t.Errorf("store %d: log used after recovery = %d (%v)", i, used, err)
			}
			got, err := st.ReadData(64*i, 5)
			if err != nil || !bytes.Equal(got, make([]byte, 5)) {
				t.Errorf("store %d: data applied despite abort: %q (%v)", i, got, err)
			}
		}
		mustUnlocked(t, rig.stores)

		// RecoverAbort on a clean store is a no-op.
		if rolled, err := RecoverAbort(f, rig.stores[0], 42); err != nil || rolled {
			t.Errorf("recover on clean store = %v, %v; want false, nil", rolled, err)
		}
	})
}

// TestTwoPCPrepareTimeoutAbortsPreparedPrefix injects a fault plan that
// kills one of store 1's replica NICs before the transaction starts. The
// coordinator prepares store 0 (healthy), then store 1's lock CAS times
// out; Prepare must roll store 0 back and release its lock — no leaked
// group locks on any reachable store.
func TestTwoPCPrepareTimeoutAbortsPreparedPrefix(t *testing.T) {
	faults := &rdma.FaultPlan{
		NICs: []rdma.NICFault{{Host: "s1-r1", At: sim.Time(5 * sim.Microsecond), Down: true}},
	}
	rig := newTwoPCRig(t, 2, faults, 200*sim.Microsecond)
	rig.run(t, func(f *sim.Fiber) {
		f.Sleep(50 * sim.Microsecond) // let the crash land first
		tx := BeginDist(parts(rig.stores, "timeout"))
		err := tx.Prepare(f)
		if !errors.Is(err, ErrAborted) {
			t.Errorf("prepare err = %v, want ErrAborted", err)
			return
		}
		if got := tx.Prepared(); got != 0 {
			t.Errorf("prepared after failed prepare = %d, want 0", got)
		}
		// Store 0 (healthy, was prepared first) must be fully rolled back.
		st := rig.stores[0]
		mustUnlocked(t, rig.stores[:1])
		if used, err := st.LogUsed(); err != nil || used != 0 {
			t.Errorf("store 0: log used = %d (%v), want 0", used, err)
		}
		// And usable: a single-store transaction commits straight through.
		tx2 := BeginDist(parts(rig.stores[:1], "retry"))
		if err := tx2.Prepare(f); err != nil {
			t.Errorf("prepare after aborted txn: %v", err)
			return
		}
		if err := tx2.Commit(f); err != nil {
			t.Errorf("commit after aborted txn: %v", err)
		}
	})
}

func TestTwoPCCommitWithoutPrepare(t *testing.T) {
	rig := newTwoPCRig(t, 1, nil, 0)
	rig.run(t, func(f *sim.Fiber) {
		tx := BeginDist(parts(rig.stores, "x"))
		if err := tx.Commit(f); !errors.Is(err, ErrBadArgument) {
			t.Errorf("commit without prepare = %v, want ErrBadArgument", err)
		}
	})
}

// loggedRig builds nParts participant stores plus one extra store serving
// as the coordinator's commit log.
func loggedRig(t *testing.T, nParts int) (*twoPCRig, *CommitLog) {
	t.Helper()
	rig := newTwoPCRig(t, nParts+1, nil, 0)
	cl, err := NewCommitLog(rig.stores[nParts], nParts)
	if err != nil {
		t.Fatal(err)
	}
	return rig, cl
}

func TestBeginDistLogged(t *testing.T) {
	rig, cl := loggedRig(t, 2)
	ps := parts(rig.stores[:2], "x")
	if _, err := BeginDistLogged(ps, cl, []int{0}); !errors.Is(err, ErrBadArgument) {
		t.Errorf("mismatched shard IDs: %v, want ErrBadArgument", err)
	}
	tx, err := BeginDistLogged(ps, nil, nil)
	if err != nil || tx.clog != nil {
		t.Errorf("nil log must degrade to BeginDist (tx=%+v, err=%v)", tx, err)
	}
}

func TestTwoPCLoggedCommit(t *testing.T) {
	rig, cl := loggedRig(t, 2)
	rig.run(t, func(f *sim.Fiber) {
		tx, err := BeginDistLogged(parts(rig.stores[:2], "logged"), cl, []int{0, 1})
		if err != nil {
			t.Fatal(err)
		}
		if err := tx.Prepare(f); err != nil {
			t.Fatalf("prepare: %v", err)
		}
		if tx.TxnID() != 0 {
			t.Errorf("txnID before commit = %d, want 0", tx.TxnID())
		}
		if err := tx.Commit(f); err != nil {
			t.Fatalf("commit: %v", err)
		}
		if tx.TxnID() == 0 {
			t.Error("committed logged txn has no txnID")
		}
		for i, st := range rig.stores[:2] {
			want := []byte(fmt.Sprintf("logged-%d", i))
			got, err := st.ReadData(64*i, len(want))
			if err != nil || !bytes.Equal(got, want) {
				t.Errorf("store %d: data = %q (%v), want %q", i, got, err, want)
			}
		}
		// The record was truncated on the way out.
		recs, err := cl.Records()
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != 0 {
			t.Errorf("commit log holds %d records after clean commit, want 0", len(recs))
		}
		mustUnlocked(t, rig.stores[:2])
	})
}

// TestTwoPCCrashMidCommitRollsForward is the partial-commit bug in
// miniature: the coordinator crashes after executing+unlocking participant
// 0 but before touching participant 1. The commit record is durable, so
// recovery must roll participant 1 *forward* — RecoverAbort here would
// erase half the transaction.
func TestTwoPCCrashMidCommitRollsForward(t *testing.T) {
	rig, cl := loggedRig(t, 2)
	rig.run(t, func(f *sim.Fiber) {
		tx, err := BeginDistLogged(parts(rig.stores[:2], "crash"), cl, []int{0, 1})
		if err != nil {
			t.Fatal(err)
		}
		tx.SetStepHook(func(s Step, participant int) error {
			if s == StepUnlock && participant == 0 {
				return ErrCoordinatorCrash
			}
			return nil
		})
		if err := tx.Prepare(f); err != nil {
			t.Fatalf("prepare: %v", err)
		}
		if err := tx.Commit(f); !errors.Is(err, ErrCoordinatorCrash) {
			t.Fatalf("commit = %v, want injected crash", err)
		}
		// Participant 0 committed and unlocked; participant 1 orphaned.
		if locked, _ := rig.stores[0].Locked(); locked {
			t.Error("participant 0 still locked")
		}
		if locked, _ := rig.stores[1].Locked(); !locked {
			t.Error("participant 1 lost its lock in the crash")
		}
		recs, err := cl.Records()
		if err != nil || len(recs) != 1 {
			t.Fatalf("records = %v (%v), want the commit record", recs, err)
		}
		// Recovery: both stores are named by the record; 0 is already done.
		if n, ok, err := RecoverCommit(f, rig.stores[0], 42); n != 0 || ok || err != nil {
			t.Errorf("recover participant 0 = (%d, %v, %v), want no-op", n, ok, err)
		}
		n, ok, err := RecoverCommit(f, rig.stores[1], 42)
		if err != nil || !ok || n != 1 {
			t.Fatalf("recover participant 1 = (%d, %v, %v), want 1 record applied", n, ok, err)
		}
		for i, st := range rig.stores[:2] {
			want := []byte(fmt.Sprintf("crash-%d", i))
			got, err := st.ReadData(64*i, len(want))
			if err != nil || !bytes.Equal(got, want) {
				t.Errorf("store %d: data = %q (%v), want %q", i, got, err, want)
			}
		}
		mustUnlocked(t, rig.stores[:2])
	})
}

// TestTwoPCCrashBeforeCommitPointRollsBack crashes the coordinator after
// the last prepare but before the commit record lands: no record, so
// presumed abort resolves both participants back to empty.
func TestTwoPCCrashBeforeCommitPointRollsBack(t *testing.T) {
	rig, cl := loggedRig(t, 2)
	rig.run(t, func(f *sim.Fiber) {
		tx, err := BeginDistLogged(parts(rig.stores[:2], "gone"), cl, []int{0, 1})
		if err != nil {
			t.Fatal(err)
		}
		tx.SetStepHook(func(s Step, participant int) error {
			if s == StepAppend && participant == 1 {
				return ErrCoordinatorCrash
			}
			return nil
		})
		if err := tx.Prepare(f); !errors.Is(err, ErrCoordinatorCrash) {
			t.Fatalf("prepare = %v, want injected crash", err)
		}
		if recs, err := cl.Records(); err != nil || len(recs) != 0 {
			t.Fatalf("records = %v (%v), want none before the commit point", recs, err)
		}
		for i, st := range rig.stores[:2] {
			rolled, err := RecoverAbort(f, st, 42)
			if err != nil || !rolled {
				t.Errorf("store %d: recover abort = (%v, %v)", i, rolled, err)
			}
			if got, err := st.ReadData(64*i, 4); err != nil || !bytes.Equal(got, make([]byte, 4)) {
				t.Errorf("store %d: aborted data visible: %q (%v)", i, got, err)
			}
		}
		mustUnlocked(t, rig.stores[:2])
	})
}

func TestRecoverCommitSkipsForeignLock(t *testing.T) {
	rig := newTwoPCRig(t, 1, nil, 0)
	rig.run(t, func(f *sim.Fiber) {
		// Unlocked store: nothing to do.
		if n, ok, err := RecoverCommit(f, rig.stores[0], 42); n != 0 || ok || err != nil {
			t.Errorf("unlocked store = (%d, %v, %v), want no-op", n, ok, err)
		}
		// Locked under a different token: not ours, skip.
		if err := rig.stores[0].WrLock(f); err != nil {
			t.Fatal(err)
		}
		if n, ok, err := RecoverCommit(f, rig.stores[0], 999); n != 0 || ok || err != nil {
			t.Errorf("foreign token = (%d, %v, %v), want no-op", n, ok, err)
		}
		if err := rig.stores[0].WrUnlock(f); err != nil {
			t.Fatal(err)
		}
	})
}

func TestStepString(t *testing.T) {
	want := map[Step]string{
		StepLock: "lock", StepAppend: "append", StepLogCommit: "log-commit",
		StepExecute: "execute", StepUnlock: "unlock", StepLogTruncate: "log-truncate",
		Step(99): "step(99)",
	}
	for s, w := range want {
		if got := s.String(); got != w {
			t.Errorf("Step(%d).String() = %q, want %q", int(s), got, w)
		}
	}
}

// TestTwoPCCommitRecordFullAborts exhausts the commit log before the
// transaction reaches its commit point: the record append fails, nothing
// has executed, and Commit must abort cleanly instead of going in doubt.
func TestTwoPCCommitRecordFullAborts(t *testing.T) {
	rig, cl := loggedRig(t, 2)
	rig.run(t, func(f *sim.Fiber) {
		for i := 0; i < cl.Slots(); i++ {
			if _, err := cl.Append(f, 7, []int{0}); err != nil {
				t.Fatalf("fill %d: %v", i, err)
			}
		}
		tx, err := BeginDistLogged(parts(rig.stores[:2], "full"), cl, []int{0, 1})
		if err != nil {
			t.Fatal(err)
		}
		if err := tx.Prepare(f); err != nil {
			t.Fatalf("prepare: %v", err)
		}
		err = tx.Commit(f)
		if !errors.Is(err, ErrAborted) || !errors.Is(err, ErrCommitLogFull) {
			t.Fatalf("commit = %v, want ErrAborted wrapping ErrCommitLogFull", err)
		}
		for i, st := range rig.stores[:2] {
			if used, e := st.LogUsed(); e != nil || used != 0 {
				t.Errorf("store %d: log used = %d (%v), want 0", i, used, e)
			}
			if got, e := st.ReadData(64*i, 4); e != nil || !bytes.Equal(got, make([]byte, 4)) {
				t.Errorf("store %d: aborted data visible: %q (%v)", i, got, e)
			}
		}
		mustUnlocked(t, rig.stores[:2])
	})
}

// TestStoreVisitPendingAndTruncate rounds out the checkpoint-side store
// surface: pending records are visitable without executing, TruncateAll
// drops them, and MirrorSize reports the configured footprint.
func TestStoreVisitPendingAndTruncate(t *testing.T) {
	rig := newTwoPCRig(t, 1, nil, 0)
	st := rig.stores[0]
	if got := st.MirrorSize(); got != MirrorSizeFor(testLog, testData) {
		t.Errorf("mirror size = %d, want %d", got, MirrorSizeFor(testLog, testData))
	}
	rig.run(t, func(f *sim.Fiber) {
		if err := st.WrLock(f); err != nil {
			t.Fatal(err)
		}
		if _, err := st.Append(f, []wal.Entry{{Off: 0, Data: []byte("pending")}}); err != nil {
			t.Fatal(err)
		}
		var seen int
		err := st.VisitPending(func(seq uint64, entries []wal.Entry) error {
			seen++
			if len(entries) != 1 || !bytes.Equal(entries[0].Data, []byte("pending")) {
				t.Errorf("visited entries = %+v", entries)
			}
			return nil
		})
		if err != nil || seen != 1 {
			t.Fatalf("visit = %v, saw %d records, want 1", err, seen)
		}
		if err := st.TruncateAll(f); err != nil {
			t.Fatal(err)
		}
		if used, err := st.LogUsed(); err != nil || used != 0 {
			t.Errorf("log used after truncate = %d (%v), want 0", used, err)
		}
		// The truncated record must not apply.
		if got, err := st.ReadData(0, 7); err != nil || !bytes.Equal(got, make([]byte, 7)) {
			t.Errorf("truncated data visible: %q (%v)", got, err)
		}
		if err := st.WrUnlock(f); err != nil {
			t.Fatal(err)
		}
	})
}

// TestTwoPCCrashSweep kills the coordinator after every protocol step of a
// 2-participant logged transaction and recovers by the commit-record rule:
// shards named by a record roll forward, the rest roll back. Every kill
// point must leave an all-or-nothing outcome and no leaked locks.
func TestTwoPCCrashSweep(t *testing.T) {
	const span = 2
	// Steps: (lock, append) per participant, log-commit, (execute, unlock)
	// per participant, log-truncate.
	totalSteps := 4*span + 2
	commitPoint := 2*span + 1 // steps before the record is durable
	for kill := 1; kill <= totalSteps; kill++ {
		rig, cl := loggedRig(t, span)
		rig.run(t, func(f *sim.Fiber) {
			tx, err := BeginDistLogged(parts(rig.stores[:span], "sweep"), cl, []int{0, 1})
			if err != nil {
				t.Fatal(err)
			}
			step := 0
			tx.SetStepHook(func(s Step, participant int) error {
				step++
				if step == kill {
					return ErrCoordinatorCrash
				}
				return nil
			})
			err = tx.Prepare(f)
			if err == nil {
				err = tx.Commit(f)
			}
			if kill == totalSteps {
				// The "crash" fired after the final step: the transaction
				// is complete and the error is immaterial to durability.
				if !errors.Is(err, ErrCoordinatorCrash) {
					t.Fatalf("kill %d: err = %v", kill, err)
				}
			} else if !errors.Is(err, ErrCoordinatorCrash) {
				t.Fatalf("kill %d: err = %v, want injected crash", kill, err)
			}

			// Recover exactly as Router.Recover does.
			recs, err := cl.Records()
			if err != nil {
				t.Fatal(err)
			}
			committed := map[int]bool{}
			for _, rec := range recs {
				if rec.Token != 42 {
					continue
				}
				for _, sid := range rec.Shards {
					committed[sid] = true
				}
			}
			if wantRec := kill >= commitPoint && kill < totalSteps; (len(recs) > 0) != wantRec {
				t.Errorf("kill %d: %d live records, want record=%v", kill, len(recs), wantRec)
			}
			for i := 0; i < span; i++ {
				if committed[i] {
					if _, _, err := RecoverCommit(f, rig.stores[i], 42); err != nil {
						t.Fatalf("kill %d: recover commit %d: %v", kill, i, err)
					}
				} else if _, err := RecoverAbort(f, rig.stores[i], 42); err != nil {
					t.Fatalf("kill %d: recover abort %d: %v", kill, i, err)
				}
			}
			for _, rec := range recs {
				if err := cl.Truncate(f, rec.TxnID); err != nil {
					t.Fatal(err)
				}
			}

			// All-or-nothing: every participant shows the write, or none.
			wantCommitted := kill >= commitPoint
			for i := 0; i < span; i++ {
				want := make([]byte, 7)
				if wantCommitted {
					want = []byte(fmt.Sprintf("sweep-%d", i))
				}
				got, err := rig.stores[i].ReadData(64*i, len(want))
				if err != nil || !bytes.Equal(got, want) {
					t.Errorf("kill %d: store %d data = %q (%v), want %q", kill, i, got, err, want)
				}
				if used, err := rig.stores[i].LogUsed(); err != nil || used != 0 {
					t.Errorf("kill %d: store %d log used = %d (%v)", kill, i, used, err)
				}
			}
			mustUnlocked(t, rig.stores[:span])
			if recs, err := cl.Records(); err != nil || len(recs) != 0 {
				t.Errorf("kill %d: commit log not drained: %v (%v)", kill, recs, err)
			}
		})
	}
}

func TestStoreDataRangeChecks(t *testing.T) {
	rig := newTwoPCRig(t, 1, nil, 0)
	st := rig.stores[0]
	if _, err := st.ReadData(-1, 8); !errors.Is(err, ErrBadArgument) {
		t.Errorf("negative read offset: %v", err)
	}
	if _, err := st.ReadData(testData, 8); !errors.Is(err, ErrBadArgument) {
		t.Errorf("read past data region: %v", err)
	}
	rig.run(t, func(f *sim.Fiber) {
		if err := st.WriteData(f, -1, []byte("x")); !errors.Is(err, ErrBadArgument) {
			t.Errorf("negative write offset: %v", err)
		}
		if err := st.WriteData(f, testData, []byte("x")); !errors.Is(err, ErrBadArgument) {
			t.Errorf("write past data region: %v", err)
		}
	})
}
