package txn

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"hyperloop/internal/sim"
)

// The coordinator commit log closes the classic 2PC atomicity hole: a
// coordinator that crashes inside Commit — after executing and unlocking
// some participants but not others — must not let recovery roll the
// stragglers back, or half of a committed transaction vanishes. Before
// entering phase two the coordinator durably appends a commit record
// (txnID, lock token, participant shard IDs) to its *own* replicated
// store (a plain gWRITE + gFLUSH through the Store's data region), and
// truncates it once every participant is done. Recovery consults the log
// first: a prepared participant named by a record rolls *forward*
// (RecoverCommit); everything else still presumes abort, which stays
// sound because the record is written before any participant executes.
//
// Records live in a fixed array of slots inside the store's data region —
// not in its WAL ring — so concurrent in-flight transactions truncate
// independently, in any order, with one 8-byte invalidating write each.

// Commit-record framing inside a slot.
const (
	clMagic   = 0x484C4350  // "HLCP": HyperLoop commit point
	clHeader  = 4 + 8 + 8 + 4 // magic, txnID, lock token, shard count
	clTrailer = 4             // crc32 over header + shard IDs
)

// ErrCommitLogFull reports that every slot holds a live commit record:
// more transactions are between commit point and truncation than the log
// was provisioned for. Recover or retry the in-flight transactions first.
var ErrCommitLogFull = errors.New("txn: commit log full")

// CommitRecord is one durable commit point: transaction txnID, driven by
// the coordinator holding Token on every participant's group lock, spans
// the participants named by Shards.
type CommitRecord struct {
	TxnID  uint64
	Token  uint64
	Shards []int
}

// CommitLogSlotSize returns the per-record slot footprint for records
// naming at most maxSpan participants.
func CommitLogSlotSize(maxSpan int) int {
	n := clHeader + 4*maxSpan + clTrailer
	return (n + 7) &^ 7
}

// CommitLogSizeFor returns the data-region size a commit-log store must
// provide to hold slots concurrent records of at most maxSpan
// participants. Callers size the store's Config.DataSize with it.
func CommitLogSizeFor(slots, maxSpan int) int {
	return slots * CommitLogSlotSize(maxSpan)
}

// CommitLog is a coordinator's replicated commit-point log over its own
// Store. Like the Store beneath it, it is driven by simulation fibers on
// one kernel and is not safe for concurrent OS-thread use.
type CommitLog struct {
	s        *Store
	slotSize int
	slots    int
	nextID   uint64
	used     []bool
	slotOf   map[uint64]int // txnID → slot, for truncation
}

// NewCommitLog carves the store's data region into commit-record slots
// sized for transactions spanning at most maxSpan participants. The store
// must be the coordinator's own replicated store — appends ride its
// group's gWRITE+gFLUSH path, so a record is durable on every member of
// the coordinator's group before phase two begins.
func NewCommitLog(s *Store, maxSpan int) (*CommitLog, error) {
	if s == nil || maxSpan < 1 {
		return nil, fmt.Errorf("%w: commit log needs a store and a positive max span", ErrBadArgument)
	}
	size := CommitLogSlotSize(maxSpan)
	n := s.DataSize() / size
	if n < 1 {
		return nil, fmt.Errorf("%w: data region of %d bytes holds no %d-byte commit slot",
			ErrBadArgument, s.DataSize(), size)
	}
	return &CommitLog{
		s:        s,
		slotSize: size,
		slots:    n,
		nextID:   1,
		used:     make([]bool, n),
		slotOf:   make(map[uint64]int),
	}, nil
}

// Slots returns how many commit records can be in flight at once.
func (l *CommitLog) Slots() int { return l.slots }

// Append durably replicates a commit record for a transaction holding
// token on the groups named by shards, and returns the assigned txnID.
// The record is on every member of the coordinator's group when Append
// returns — the transaction is committed from this instant, whatever
// happens to the coordinator afterwards.
func (l *CommitLog) Append(f *sim.Fiber, token uint64, shards []int) (uint64, error) {
	if max := (l.slotSize - clHeader - clTrailer) / 4; len(shards) > max {
		return 0, fmt.Errorf("%w: %d participants exceed the %d-participant slot", ErrBadArgument, len(shards), max)
	}
	slot := -1
	for i, u := range l.used {
		if !u {
			slot = i
			break
		}
	}
	if slot < 0 {
		return 0, ErrCommitLogFull
	}
	id := l.nextID
	buf := make([]byte, l.slotSize)
	binary.LittleEndian.PutUint32(buf[0:], clMagic)
	binary.LittleEndian.PutUint64(buf[4:], id)
	binary.LittleEndian.PutUint64(buf[12:], token)
	binary.LittleEndian.PutUint32(buf[20:], uint32(len(shards)))
	p := clHeader
	for _, s := range shards {
		binary.LittleEndian.PutUint32(buf[p:], uint32(s))
		p += 4
	}
	binary.LittleEndian.PutUint32(buf[p:], crc32.ChecksumIEEE(buf[:p]))
	if err := l.s.WriteData(f, slot*l.slotSize, buf); err != nil {
		return 0, err
	}
	l.nextID++
	l.used[slot] = true
	l.slotOf[id] = slot
	return id, nil
}

// Truncate durably removes txnID's commit record: every participant is
// done, so recovery no longer needs it. Truncating an unknown (already
// truncated) txnID is a no-op — retried commits re-truncate safely.
func (l *CommitLog) Truncate(f *sim.Fiber, txnID uint64) error {
	slot, ok := l.slotOf[txnID]
	if !ok {
		return nil
	}
	// One 8-byte durable write over the magic (and half the txnID)
	// invalidates the slot on every member.
	if err := l.s.WriteData(f, slot*l.slotSize, make([]byte, 8)); err != nil {
		return err
	}
	l.used[slot] = false
	delete(l.slotOf, txnID)
	return nil
}

// Records scans the log and returns every live commit record. It also
// refreshes the client-side slot map from the durable image, so a
// coordinator that restarted over an existing store (a fresh CommitLog
// over old records) can Truncate what it finds.
func (l *CommitLog) Records() ([]CommitRecord, error) {
	var out []CommitRecord
	for i := range l.used {
		l.used[i] = false
	}
	l.slotOf = make(map[uint64]int)
	for i := 0; i < l.slots; i++ {
		buf, err := l.s.ReadData(i*l.slotSize, l.slotSize)
		if err != nil {
			return nil, err
		}
		rec, ok := decodeCommitRecord(buf)
		if !ok {
			continue
		}
		l.used[i] = true
		l.slotOf[rec.TxnID] = i
		if rec.TxnID >= l.nextID {
			l.nextID = rec.TxnID + 1
		}
		out = append(out, rec)
	}
	return out, nil
}

// decodeCommitRecord parses one slot image, rejecting empty and torn
// slots by magic and CRC.
func decodeCommitRecord(buf []byte) (CommitRecord, bool) {
	var rec CommitRecord
	if len(buf) < clHeader+clTrailer {
		return rec, false
	}
	if binary.LittleEndian.Uint32(buf[0:]) != clMagic {
		return rec, false
	}
	n := int(binary.LittleEndian.Uint32(buf[20:]))
	if n < 0 || clHeader+4*n+clTrailer > len(buf) {
		return rec, false
	}
	p := clHeader + 4*n
	if crc32.ChecksumIEEE(buf[:p]) != binary.LittleEndian.Uint32(buf[p:]) {
		return rec, false
	}
	rec.TxnID = binary.LittleEndian.Uint64(buf[4:])
	rec.Token = binary.LittleEndian.Uint64(buf[12:])
	rec.Shards = make([]int, n)
	for i := 0; i < n; i++ {
		rec.Shards[i] = int(binary.LittleEndian.Uint32(buf[clHeader+4*i:]))
	}
	return rec, true
}
