package sim

import "math"

// RNG is a small, fast, deterministic random source (xoshiro256** core).
// Every source of randomness in the simulation flows through an RNG seeded
// from the experiment seed, so runs are reproducible.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded from seed via splitmix64, which also
// maps seed 0 to a valid non-zero state.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	x := seed
	for i := range r.s {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

// Fork derives an independent generator; useful to give each component its
// own stream so adding randomness in one place does not perturb others.
func (r *RNG) Fork() *RNG { return NewRNG(r.Uint64()) }

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform int in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform int64 in [0, n). n must be positive.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		return 0
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Exp returns an exponentially distributed value with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	u := r.Float64()
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	return -mean * math.Log(1-u)
}

// DurationRange returns a uniform duration in [lo, hi).
func (r *RNG) DurationRange(lo, hi Duration) Duration {
	if hi <= lo {
		return lo
	}
	return lo + Duration(r.Int63n(int64(hi-lo)))
}

// Jitter returns d scaled by a uniform factor in [1-f, 1+f].
func (r *RNG) Jitter(d Duration, f float64) Duration {
	if f <= 0 {
		return d
	}
	scale := 1 + f*(2*r.Float64()-1)
	return Duration(float64(d) * scale)
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Bernoulli reports true with probability p.
func (r *RNG) Bernoulli(p float64) bool { return r.Float64() < p }
