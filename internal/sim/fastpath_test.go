package sim

import (
	"fmt"
	"math"
	"sort"
	"testing"
)

// refLess is the pre-packing two-field comparator: the ground truth the
// packed 128-bit key must reproduce bit-for-bit.
func refLess(aAt Time, aSeq uint64, bAt Time, bSeq uint64) bool {
	if aAt != bAt {
		return aAt < bAt
	}
	return aSeq < bSeq
}

// TestPackedKeyMatchesReference drives keyLess across a corpus of Time
// values straddling the int64 boundaries (where the sign-flip trick must
// hold) and seq values up to uint64 wraparound, comparing every ordered
// pair against the old two-field comparator.
func TestPackedKeyMatchesReference(t *testing.T) {
	times := []Time{
		math.MinInt64, math.MinInt64 + 1, -1e18, -4097, -1, 0, 1, 4096,
		1e18, math.MaxInt64 - 1, math.MaxInt64,
	}
	seqs := []uint64{0, 1, 2, 1 << 32, math.MaxUint64 - 1, math.MaxUint64}
	type key struct {
		at  Time
		seq uint64
	}
	var corpus []key
	for _, at := range times {
		for _, s := range seqs {
			corpus = append(corpus, key{at, s})
		}
	}
	rng := NewRNG(7)
	for i := 0; i < 500; i++ {
		corpus = append(corpus, key{Time(rng.Uint64()), rng.Uint64()})
	}
	for _, a := range corpus {
		for _, b := range corpus {
			got := keyLess(packHi(a.at), a.seq, packHi(b.at), b.seq)
			want := refLess(a.at, a.seq, b.at, b.seq)
			if got != want {
				t.Fatalf("keyLess((%d,%d),(%d,%d)) = %v, reference says %v",
					a.at, a.seq, b.at, b.seq, got, want)
			}
		}
	}
}

// TestPackedHeapPopOrder pushes events with adversarial (at, seq) keys —
// including times near the int64 extremes — straight into the kernel heap
// and verifies pops come out in exactly the order the old two-field
// compare would have produced.
func TestPackedHeapPopOrder(t *testing.T) {
	k := NewKernel(1)
	rng := NewRNG(42)
	times := []Time{
		math.MinInt64, math.MinInt64 + 1, -1, 0, 1,
		math.MaxInt64 - 1, math.MaxInt64,
	}
	type key struct {
		at  Time
		seq uint64
	}
	var want []key
	push := func(at Time) {
		ev := k.alloc(func() {})
		want = append(want, key{at, ev.seq})
		k.heapPush(at, ev)
	}
	for i := 0; i < 2000; i++ {
		push(Time(rng.Uint64()))
	}
	for _, at := range times {
		push(at)
	}
	sort.SliceStable(want, func(i, j int) bool {
		return refLess(want[i].at, want[i].seq, want[j].at, want[j].seq)
	})
	for i, w := range want {
		if len(k.events) == 0 {
			t.Fatalf("heap empty after %d pops, want %d", i, len(want))
		}
		at := unpackAt(k.events[0].hi)
		ev := k.heapRemove(0)
		if at != w.at || ev.seq != w.seq {
			t.Fatalf("pop %d: got (%d,%d), want (%d,%d)", i, at, ev.seq, w.at, w.seq)
		}
		k.release(ev)
	}
	if len(k.events) != 0 {
		t.Fatalf("heap still has %d entries", len(k.events))
	}
}

// TestTimerStopConcurrentWithFire pins the generation-check semantics the
// Timer.Stop doc promises: a Stop racing its own firing in virtual time —
// from the callback itself, or from a same-instant event after the struct
// was recycled — reports false and never cancels an innocent event.
func TestTimerStopConcurrentWithFire(t *testing.T) {
	k := NewKernel(1)
	var t1, t2 Timer
	var fromOwnCallback, stale bool
	innocentFired := false
	k.AfterFunc(10, func() {
		// Stop from the timer's own callback: the event has fired, and the
		// kernel bumped its generation (release) before calling us. Use a
		// copy so t1 keeps its — now stale — event pointer for the second
		// half of the test.
		h := t1
		fromOwnCallback = h.Stop()
		// Recycle the just-freed event struct for an innocent timer at the
		// same instant (the free list is LIFO, so t2 reuses t1's struct).
		k.AfterFunc(0, func() { innocentFired = true }, &t2)
		if t2.ev != t1.ev {
			t.Error("free list did not recycle the fired event struct; stale-handle case not exercised")
		}
		// The stale handle must not be able to cancel the recycled struct.
		stale = t1.Stop()
	}, &t1)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fromOwnCallback {
		t.Error("Stop from the timer's own callback returned true; want false (already fired)")
	}
	if stale {
		t.Error("Stop through a stale-generation handle returned true; want false")
	}
	if !innocentFired {
		t.Error("stale Stop cancelled the innocent recycled event")
	}
	// And the plain not-yet-fired case still reports true.
	var t3 Timer
	k.AfterFunc(5, func() { t.Error("cancelled event ran") }, &t3)
	if !t3.Stop() {
		t.Error("Stop before firing returned false; want true")
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

// traceRun executes a mixed fast/slow fiber workload — run-to-completion
// fibers, sleepers, signal waiters, a mutex convoy, and nested spawns —
// and returns the virtual-time trace it produced.
func traceRun(t *testing.T, seed uint64) []string {
	t.Helper()
	k := NewKernel(seed)
	var trace []string
	log := func(f string, a ...any) {
		trace = append(trace, fmt.Sprintf("%d: ", k.Now())+fmt.Sprintf(f, a...))
	}
	var mu Mutex
	done := NewSignal()
	waiting := 0
	for i := 0; i < 40; i++ {
		i := i
		switch i % 4 {
		case 0: // run-to-completion: never blocks, stays inline on the fast path
			k.Spawn(fmt.Sprintf("inline-%d", i), func(f *Fiber) {
				log("inline-%d ran", i)
			})
		case 1: // sleeper: demotes on its first Sleep
			k.Spawn(fmt.Sprintf("sleeper-%d", i), func(f *Fiber) {
				log("sleeper-%d start", i)
				f.Sleep(Duration(10 + i))
				log("sleeper-%d woke", i)
			})
		case 2: // convoy: contends a shared mutex, FIFO handoff
			k.Spawn(fmt.Sprintf("lock-%d", i), func(f *Fiber) {
				mu.Lock(f)
				log("lock-%d acquired", i)
				f.Sleep(3)
				mu.Unlock()
			})
		case 3: // waiter: parks on a shared signal; the last one fires it
			k.Spawn(fmt.Sprintf("wait-%d", i), func(f *Fiber) {
				waiting++
				if waiting == 10 {
					// Nested spawn from fiber context: starts at this instant.
					f.Kernel().Spawn("firer", func(g *Fiber) {
						g.Sleep(100)
						log("firer fires")
						done.Fire(nil)
					})
				}
				if err := f.Await(done); err != nil {
					t.Errorf("wait-%d: %v", i, err)
				}
				log("wait-%d released", i)
			})
		}
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if lf := k.LiveFibers(); lf != 0 {
		t.Fatalf("%d fibers still live after Run", lf)
	}
	return trace
}

// TestFastPathTraceIdentical is the fast-path golden: the same workload,
// with the direct-dispatch fast path forced on and then forced off, must
// produce byte-identical virtual-time traces. Run under -race this also
// stresses the demotion machinery: kernel-role migrations, pooled worker
// handoffs, and classic runners all interleave here.
func TestFastPathTraceIdentical(t *testing.T) {
	defer SetFastPath(SetFastPath(true))
	for seed := uint64(1); seed <= 3; seed++ {
		SetFastPath(true)
		fast := traceRun(t, seed)
		SetFastPath(false)
		slow := traceRun(t, seed)
		if len(fast) != len(slow) {
			t.Fatalf("seed %d: trace length %d with fast path, %d without", seed, len(fast), len(slow))
		}
		for i := range fast {
			if fast[i] != slow[i] {
				t.Fatalf("seed %d: traces diverge at %d:\n  fast: %s\n  slow: %s", seed, i, fast[i], slow[i])
			}
		}
		if len(fast) == 0 {
			t.Fatal("empty trace")
		}
	}
}

// TestDispatchCounters checks the FastDispatches/SlowDispatches split: with
// the fast path on, run-to-completion fibers are all inline; with it off,
// every control transfer is a rendezvous and no inline start happens.
func TestDispatchCounters(t *testing.T) {
	defer SetFastPath(SetFastPath(true))

	k := NewKernel(1)
	for i := 0; i < 8; i++ {
		k.Spawn("inline", func(f *Fiber) {})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if k.FastDispatches() != 8 {
		t.Errorf("FastDispatches = %d, want 8", k.FastDispatches())
	}
	if k.SlowDispatches() != 0 {
		t.Errorf("SlowDispatches = %d, want 0", k.SlowDispatches())
	}

	SetFastPath(false)
	k2 := NewKernel(1)
	for i := 0; i < 8; i++ {
		k2.Spawn("classic", func(f *Fiber) {})
	}
	if err := k2.Run(); err != nil {
		t.Fatal(err)
	}
	if k2.FastDispatches() != 0 {
		t.Errorf("fast path off: FastDispatches = %d, want 0", k2.FastDispatches())
	}
	if k2.SlowDispatches() != 8 {
		t.Errorf("fast path off: SlowDispatches = %d, want 8", k2.SlowDispatches())
	}
}
