package sim

import (
	"errors"
	"math/bits"
	"sync/atomic"
	"time"

	"hyperloop/internal/ring"
)

// Time is a virtual-clock instant in nanoseconds since the start of the
// simulation. It is unrelated to the wall clock.
type Time int64

// Duration re-exports time.Duration for convenience; virtual durations use
// the same unit (nanoseconds) as wall-clock durations.
type Duration = time.Duration

// Common virtual durations.
const (
	Nanosecond  = Duration(time.Nanosecond)
	Microsecond = Duration(time.Microsecond)
	Millisecond = Duration(time.Millisecond)
	Second      = Duration(time.Second)
)

// Add returns the instant d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration elapsed from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// String formats the instant as a duration offset, e.g. "1.5ms".
func (t Time) String() string { return Duration(t).String() }

// event is a scheduled callback. Events are recycled through a per-kernel
// free list; gen distinguishes incarnations so a stale Timer can never
// cancel a recycled event. gen is 64-bit on purpose: a 32-bit counter wraps
// after 2^32 recycles of one struct — reachable in a long fuzzing or
// soak run — at which point a stale Timer held across the wrap would
// cancel an innocent event. 64 bits never wrap in practice.
type event struct {
	fn    func()
	seq   uint64
	gen   uint64
	index int32 // heap index; -1 when not queued
}

// signBit flips the int64 sign so that packing a Time into a uint64
// preserves order under unsigned comparison.
const signBit = 1 << 63

// packHi maps a Time to the high word of the packed ordering key. The sign
// flip makes uint64 comparison agree with int64 comparison, so negative
// instants (which the public API clamps away, but the comparator must not
// rely on that) still order correctly.
func packHi(at Time) uint64 { return uint64(at) ^ signBit }

// unpackAt recovers the Time from a packed high word.
func unpackAt(hi uint64) Time { return Time(hi ^ signBit) }

// keyLess compares two packed (Time, seq) keys as a single 128-bit unsigned
// value: the subtraction a-b borrows out of the high word exactly when
// a < b. One borrow chain, no branches — the event heap's entire ordering
// rule, (at, seq) lexicographic, in two ALU ops.
func keyLess(ahi, alo, bhi, blo uint64) bool {
	_, borrow := bits.Sub64(alo, blo, 0)
	_, borrow = bits.Sub64(ahi, bhi, borrow)
	return borrow != 0
}

// heapEntry keeps the packed ordering key inline so sift operations compare
// without chasing the event pointer. hi is packHi(at), lo is the sequence
// number; together they form one 128-bit key with the same total order as
// lexicographic (at, seq).
type heapEntry struct {
	hi, lo uint64
	ev     *event
}

// ringEv is a same-instant callback queued on the kernel's FIFO ring
// instead of the heap. Only callbacks scheduled with a nil *Timer ride the
// ring, so no handle can ever cancel one; seq keeps the total order exact
// when ring and heap both hold events for the current instant.
type ringEv struct {
	seq uint64
	fn  func()
}

// Timer is a handle to a scheduled event that can be cancelled. The zero
// value is an unarmed timer, ready for use with AfterFunc/AtFunc.
type Timer struct {
	k   *Kernel
	ev  *event
	gen uint64
}

// Stop cancels the timer. It reports whether the event had not yet fired.
//
// Stop is safe at any point in the event's lifetime: before it fires Stop
// removes it and returns true; at or after the instant it fires —
// including from the event's own callback, or from another event at the
// same virtual instant — the generation check sees the recycled struct and
// Stop returns false. The kernel bumps the generation before invoking the
// callback, so "has fired" and "stale handle" are the same observation.
func (t *Timer) Stop() bool {
	if t == nil || t.ev == nil {
		return false
	}
	ev := t.ev
	t.ev = nil
	if ev.gen != t.gen || ev.index < 0 {
		return false
	}
	t.k.heapRemove(int(ev.index))
	t.k.release(ev)
	return true
}

// ErrStopped is returned by Run when StopRun was called.
var ErrStopped = errors.New("sim: run stopped")

// totalEvents accumulates executed-event counts across all kernels in the
// process; each kernel flushes its delta when a top-level Run returns.
var totalEvents atomic.Int64

// TotalEvents returns the number of events executed process-wide across all
// kernels whose top-level Run has returned. The bench harness samples it
// around an experiment to report events/sec.
func TotalEvents() int64 { return totalEvents.Load() }

// Kernel is the discrete-event simulation core. It is not safe for
// concurrent use; fibers hand control back and forth cooperatively so all
// simulation logic is effectively single-threaded.
type Kernel struct {
	now     Time
	seq     uint64
	events  []heapEntry
	nowq    ring.Ring[ringEv] // same-instant FIFO: timer-less events at t <= now
	free    []*event
	rng     *RNG
	stopped bool
	depth   int  // Run re-entry depth (RunUntil nests inside event callbacks)
	limit   Time // 0 = no limit
	fibers  int  // live fiber count, for leak detection

	fiberFree   []*Fiber // parked runner goroutines, reused across Spawns
	fiberStarts int64    // runner goroutines ever created (pool misses)

	// Direct-dispatch fast path state; see fastpath.go.
	fiberStructs []*Fiber   // runner-less fibers for inline dispatch
	workerFree   []*kworker // parked kernel-worker goroutines
	curWorker    *kworker   // worker currently holding the kernel role (nil: origin)
	curLoop      *loopCtx   // innermost live event loop's context
	handoff      *Fiber     // fiber the next woken worker dispatches inline
	runDone      chan runResult
	migrated     bool // kernel role has left the origin Run goroutine

	fastDispatches int64 // fiber bodies started inline on the kernel goroutine
	slowDispatches int64 // rendezvous control transfers into a fiber runner

	executed int64
	flushed  int64 // portion of executed already added to totalEvents
}

// NewKernel returns a kernel with its clock at zero and a deterministic RNG
// derived from seed.
func NewKernel(seed uint64) *Kernel {
	return &Kernel{rng: NewRNG(seed)}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// RNG returns the kernel's deterministic random source.
func (k *Kernel) RNG() *RNG { return k.rng }

// Executed returns the number of events this kernel has executed.
func (k *Kernel) Executed() int64 { return k.executed }

// alloc takes an event from the free list (or the heap allocator) and arms
// it with fn and a fresh sequence number.
func (k *Kernel) alloc(fn func()) *event {
	k.seq++
	var ev *event
	if n := len(k.free); n > 0 {
		ev = k.free[n-1]
		k.free[n-1] = nil
		k.free = k.free[:n-1]
	} else {
		ev = &event{}
	}
	ev.fn = fn
	ev.seq = k.seq
	ev.index = -1
	return ev
}

// release returns a fired or cancelled event to the free list, bumping its
// generation so outstanding Timer handles go stale.
func (k *Kernel) release(ev *event) {
	ev.gen++
	ev.fn = nil
	k.free = append(k.free, ev)
}

// The event queue is a 4-ary heap over packed 128-bit keys: half the depth
// of a binary heap means half the moves per sift, the four children share a
// cache line of heapEntries, and each comparison is one borrow chain
// (keyLess) instead of a two-field branch. Sifts move entries into a hole
// rather than swapping, so each level costs one entry copy, not three.
// Heap shape never affects simulation order — pops follow the strict total
// order (at, seq), which any correct heap yields identically.
func (k *Kernel) siftUp(i int) {
	h := k.events
	e := h[i]
	for i > 0 {
		p := (i - 1) >> 2
		if !keyLess(e.hi, e.lo, h[p].hi, h[p].lo) {
			break
		}
		h[i] = h[p]
		h[i].ev.index = int32(i)
		i = p
	}
	h[i] = e
	e.ev.index = int32(i)
}

// siftDown restores heap order below i, reporting whether the entry moved.
// The interior-node case (all four children present) is specialized: the
// min-of-four scan runs with no per-child bounds checks.
func (k *Kernel) siftDown(i int) bool {
	h := k.events
	n := len(h)
	e := h[i]
	i0 := i
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		m := c
		mhi, mlo := h[c].hi, h[c].lo
		if c+4 <= n {
			// Interior node: exactly four children, unrolled.
			if keyLess(h[c+1].hi, h[c+1].lo, mhi, mlo) {
				m, mhi, mlo = c+1, h[c+1].hi, h[c+1].lo
			}
			if keyLess(h[c+2].hi, h[c+2].lo, mhi, mlo) {
				m, mhi, mlo = c+2, h[c+2].hi, h[c+2].lo
			}
			if keyLess(h[c+3].hi, h[c+3].lo, mhi, mlo) {
				m, mhi, mlo = c+3, h[c+3].hi, h[c+3].lo
			}
		} else {
			for j := c + 1; j < n; j++ {
				if keyLess(h[j].hi, h[j].lo, mhi, mlo) {
					m, mhi, mlo = j, h[j].hi, h[j].lo
				}
			}
		}
		if !keyLess(mhi, mlo, e.hi, e.lo) {
			break
		}
		h[i] = h[m]
		h[i].ev.index = int32(i)
		i = m
	}
	h[i] = e
	e.ev.index = int32(i)
	return i > i0
}

func (k *Kernel) heapPush(at Time, ev *event) {
	ev.index = int32(len(k.events))
	k.events = append(k.events, heapEntry{hi: packHi(at), lo: ev.seq, ev: ev})
	k.siftUp(len(k.events) - 1)
}

func (k *Kernel) heapRemove(i int) *event {
	n := len(k.events) - 1
	ev := k.events[i].ev
	if i != n {
		k.events[i] = k.events[n]
		k.events[i].ev.index = int32(i)
	}
	k.events[n] = heapEntry{}
	k.events = k.events[:n]
	if i < n {
		if !k.siftDown(i) {
			k.siftUp(i)
		}
	}
	ev.index = -1
	return ev
}

// schedule queues fn at instant t (clamped to now) and returns its event.
func (k *Kernel) schedule(t Time, fn func()) *event {
	if t < k.now {
		t = k.now
	}
	ev := k.alloc(fn)
	k.heapPush(t, ev)
	return ev
}

// At schedules fn to run at instant t. Scheduling in the past is an error in
// simulation logic; such events fire immediately at the current time instead
// of rewinding the clock.
func (k *Kernel) At(t Time, fn func()) *Timer {
	ev := k.schedule(t, fn)
	return &Timer{k: k, ev: ev, gen: ev.gen}
}

// After schedules fn to run d from now.
func (k *Kernel) After(d Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return k.At(k.now.Add(d), fn)
}

// AfterFunc schedules fn to run d from now, reusing the caller-provided
// timer handle instead of allocating one. If t is still pending it is
// stopped first; t may be nil for fire-and-forget callbacks that will never
// be cancelled. This is the allocation-free path for hot schedulers (NIC
// engines, the CPU scheduler, fiber sleeps) that keep at most one
// outstanding callback per handle.
func (k *Kernel) AfterFunc(d Duration, fn func(), t *Timer) {
	if d < 0 {
		d = 0
	}
	k.AtFunc(k.now.Add(d), fn, t)
}

// AtFunc is AfterFunc with an absolute instant.
//
// A timer-less callback at the current instant — the shape of every
// doorbell, dispatch kick, and fiber start in the datapath — skips the
// event heap entirely: it is appended to the kernel's same-instant FIFO
// ring, which pops in O(1) with no event allocation. The ring preserves
// the exact (at, seq) total order: its entries all carry at == now, they
// are pushed (hence popped) in seq order, and the run loop fires a heap
// event first whenever the heap's front sorts earlier.
func (k *Kernel) AtFunc(at Time, fn func(), t *Timer) {
	if t == nil {
		if at <= k.now {
			k.seq++
			k.nowq.PushBack(ringEv{seq: k.seq, fn: fn})
			return
		}
		k.schedule(at, fn)
		return
	}
	t.Stop()
	ev := k.schedule(at, fn)
	t.k = k
	t.ev = ev
	t.gen = ev.gen
}

// StopRun makes Run return after the current event completes.
func (k *Kernel) StopRun() { k.stopped = true }

// loopCtx is one live event loop's goroutine-local state. lost is set when
// the kernel role migrates off the goroutine running the loop (see
// fastpath.go); the loop then returns immediately — the run continues on
// the worker that took the role — without touching shared kernel state
// again. Only the goroutine that owns the loop ever writes its ctx.
type loopCtx struct {
	lost bool
}

// runResult carries a finished run's outcome from the worker goroutine that
// completed it back to the origin Run caller.
type runResult struct {
	err error
	pan any
}

// Run executes events in order until the queue drains, the optional limit is
// reached, or StopRun is called. It returns ErrStopped in the latter case.
//
// Run may re-enter through RunUntil called from an event callback. The stop
// flag is reset only at top-level entry, so a StopRun issued during a nested
// RunUntil propagates out to the outer Run instead of being swallowed by the
// nested call's own reset.
//
// A top-level Run does not necessarily finish on the calling goroutine:
// when a fiber started inline demotes (see fastpath.go), the kernel role
// migrates to a pooled worker goroutine and the caller waits for the
// worker to deliver the result. Callers observe identical semantics either
// way — same error, same panics, same virtual-time behaviour.
func (k *Kernel) Run() error {
	if k.depth == 0 {
		k.stopped = false
		k.migrated = false
		k.curWorker = nil
		return k.runTop()
	}
	// Nested re-entry (RunUntil from an event callback) always completes on
	// the current kernel goroutine: inline dispatch is gated to depth 1, so
	// a nested loop can never lose the kernel role.
	k.depth++
	defer k.exitRun()
	var lc loopCtx
	return k.loop(&lc)
}

// runTop drives a depth-1 run from the origin goroutine, handing off to a
// worker-completed result if the kernel role migrates away.
func (k *Kernel) runTop() error {
	k.depth++
	var lc loopCtx
	err := func() (err error) {
		defer func() {
			if !lc.lost {
				k.exitRun()
			}
		}()
		return k.loop(&lc)
	}()
	if !lc.lost {
		return err
	}
	// The role migrated: a worker goroutine is (or will be) finishing the
	// run. Its finishRun does the exit bookkeeping and reports here.
	res := <-k.runDone
	if res.pan != nil {
		panic(res.pan)
	}
	return res.err
}

// loop is the event loop body shared by all kernel goroutines. It returns
// when the queue drains, the limit is hit, StopRun fires, or — lc.lost —
// the kernel role migrated off this goroutine mid-event.
func (k *Kernel) loop(lc *loopCtx) error {
	prev := k.curLoop
	k.curLoop = lc
	for {
		nh := len(k.events)
		if k.nowq.Len() == 0 && nh == 0 {
			k.curLoop = prev
			return nil
		}
		if k.stopped {
			k.curLoop = prev
			return ErrStopped
		}
		useRing := k.nowq.Len() > 0
		if useRing && nh > 0 {
			// Ring entries sit at (now, seq); fire the heap front first if
			// it sorts earlier (same instant, smaller seq).
			if keyLess(k.events[0].hi, k.events[0].lo, packHi(k.now), k.nowq.Front().seq) {
				useRing = false
			}
		}
		var fn func()
		if useRing {
			fn = k.nowq.PopFront().fn
		} else {
			at := unpackAt(k.events[0].hi)
			if k.limit > 0 && at > k.limit {
				k.now = k.limit
				k.curLoop = prev
				return nil
			}
			k.now = at
			ev := k.heapRemove(0)
			fn = ev.fn
			k.release(ev) // before fn so the callback can reuse the slot
		}
		k.executed++
		fn()
		if lc.lost {
			// The kernel role left this goroutine during fn (a fiber
			// demoted, or the first inline start migrated off the origin).
			// The new kernel goroutine continues the run; do not restore
			// curLoop — the new role holder owns it now.
			return nil
		}
	}
}

func (k *Kernel) exitRun() {
	k.depth--
	if k.depth != 0 {
		return
	}
	// Retire pooled fiber runners at top-level exit: reuse amortizes the
	// goroutine starts *within* a run (where the thousands of Spawns are),
	// while a kernel dropped after Run leaks nothing. Parked kernel workers
	// retire for the same reason.
	k.drainFiberPool()
	k.drainWorkerPool()
	if k.executed != k.flushed {
		totalEvents.Add(k.executed - k.flushed)
		k.flushed = k.executed
	}
}

// RunUntil executes events up to and including instant t, then advances the
// clock to t and returns. Events after t remain queued.
func (k *Kernel) RunUntil(t Time) error {
	prev := k.limit
	k.limit = t
	err := k.Run()
	k.limit = prev
	if err == nil && k.now < t {
		k.now = t
	}
	return err
}

// Reset returns the kernel to the state NewKernel(seed) would produce
// while keeping its allocated capacity: the event free list, the event
// heap's backing array, the same-instant ring, and pooled fiber structs
// survive, so a pooled kernel's next trial allocates (and starts
// goroutines) far less than a fresh one. Still-queued events are cancelled
// into the free list and the RNG is re-seeded, so simulation behaviour
// after Reset is byte-identical to a fresh kernel's — event ordering
// depends only on (time, seq), and both restart from zero.
//
// Reset only applies between top-level runs: it reports false and leaves
// the kernel untouched if called while running or with live fibers.
func (k *Kernel) Reset(seed uint64) bool {
	if k.depth != 0 || k.fibers != 0 {
		return false
	}
	for i := range k.events {
		ev := k.events[i].ev
		ev.index = -1
		k.release(ev)
		k.events[i] = heapEntry{}
	}
	k.events = k.events[:0]
	k.nowq.Reset()
	if k.executed != k.flushed {
		totalEvents.Add(k.executed - k.flushed)
	}
	k.now, k.seq = 0, 0
	k.stopped, k.limit = false, 0
	k.migrated, k.curWorker, k.handoff = false, nil, nil
	k.executed, k.flushed, k.fiberStarts = 0, 0, 0
	k.fastDispatches, k.slowDispatches = 0, 0
	k.rng = NewRNG(seed)
	return true
}

// Pending reports the number of queued events (heap and same-instant ring).
func (k *Kernel) Pending() int { return len(k.events) + k.nowq.Len() }

// FreeEvents reports the size of the event free list — recycled event
// structs awaiting reuse. Leak tests compare it across runs.
func (k *Kernel) FreeEvents() int { return len(k.free) }

// PooledFibers reports the number of parked runner goroutines. The pool
// drains at top-level Run exit, so between runs it is zero.
func (k *Kernel) PooledFibers() int { return len(k.fiberFree) }

// LiveFibers reports the number of fibers that have started and not yet
// exited; useful to assert that a scenario wound down cleanly.
func (k *Kernel) LiveFibers() int { return k.fibers }

// FiberStarts reports how many runner goroutines this kernel has ever
// created. With the fiber pool, spawning N fibers sequentially costs one
// goroutine start, not N; the delta across a workload measures pool misses
// (it grows only with peak fiber concurrency per top-level Run). Fibers
// dispatched inline (see fastpath.go) never create runners and so never
// count here.
func (k *Kernel) FiberStarts() int64 { return k.fiberStarts }

// FastDispatches reports how many fiber bodies were started inline on the
// kernel goroutine (the direct-dispatch fast path). Deterministic for a
// fixed fast-path setting.
func (k *Kernel) FastDispatches() int64 { return k.fastDispatches }

// SlowDispatches reports how many rendezvous control transfers into a
// fiber runner the kernel performed: classic starts, every resume of a
// blocked fiber, and resumes of demoted fast-path fibers.
func (k *Kernel) SlowDispatches() int64 { return k.slowDispatches }
