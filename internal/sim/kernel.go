package sim

import (
	"errors"
	"sync/atomic"
	"time"
)

// Time is a virtual-clock instant in nanoseconds since the start of the
// simulation. It is unrelated to the wall clock.
type Time int64

// Duration re-exports time.Duration for convenience; virtual durations use
// the same unit (nanoseconds) as wall-clock durations.
type Duration = time.Duration

// Common virtual durations.
const (
	Nanosecond  = Duration(time.Nanosecond)
	Microsecond = Duration(time.Microsecond)
	Millisecond = Duration(time.Millisecond)
	Second      = Duration(time.Second)
)

// Add returns the instant d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration elapsed from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// String formats the instant as a duration offset, e.g. "1.5ms".
func (t Time) String() string { return Duration(t).String() }

// event is a scheduled callback. Events are recycled through a per-kernel
// free list; gen distinguishes incarnations so a stale Timer can never
// cancel a recycled event.
type event struct {
	fn    func()
	seq   uint64
	gen   uint32
	index int32 // heap index; -1 when not queued
}

// heapEntry keeps the ordering key inline so sift operations compare
// without chasing the event pointer.
type heapEntry struct {
	at  Time
	seq uint64 // tie-break: FIFO among same-instant events
	ev  *event
}

// Timer is a handle to a scheduled event that can be cancelled. The zero
// value is an unarmed timer, ready for use with AfterFunc/AtFunc.
type Timer struct {
	k   *Kernel
	ev  *event
	gen uint32
}

// Stop cancels the timer. It reports whether the event had not yet fired.
// Stopping a timer whose event already fired is a no-op, even if the
// underlying event struct has since been recycled for another callback.
func (t *Timer) Stop() bool {
	if t == nil || t.ev == nil {
		return false
	}
	ev := t.ev
	t.ev = nil
	if ev.gen != t.gen || ev.index < 0 {
		return false
	}
	t.k.heapRemove(int(ev.index))
	t.k.release(ev)
	return true
}

// ErrStopped is returned by Run when StopRun was called.
var ErrStopped = errors.New("sim: run stopped")

// totalEvents accumulates executed-event counts across all kernels in the
// process; each kernel flushes its delta when a top-level Run returns.
var totalEvents atomic.Int64

// TotalEvents returns the number of events executed process-wide across all
// kernels whose top-level Run has returned. The bench harness samples it
// around an experiment to report events/sec.
func TotalEvents() int64 { return totalEvents.Load() }

// Kernel is the discrete-event simulation core. It is not safe for
// concurrent use; fibers hand control back and forth cooperatively so all
// simulation logic is effectively single-threaded.
type Kernel struct {
	now     Time
	seq     uint64
	events  []heapEntry
	free    []*event
	rng     *RNG
	stopped bool
	depth   int  // Run re-entry depth (RunUntil nests inside event callbacks)
	limit   Time // 0 = no limit
	fibers  int  // live fiber count, for leak detection

	fiberFree   []*Fiber // parked runner goroutines, reused across Spawns
	fiberStarts int64    // runner goroutines ever created (pool misses)

	executed int64
	flushed  int64 // portion of executed already added to totalEvents
}

// NewKernel returns a kernel with its clock at zero and a deterministic RNG
// derived from seed.
func NewKernel(seed uint64) *Kernel {
	return &Kernel{rng: NewRNG(seed)}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// RNG returns the kernel's deterministic random source.
func (k *Kernel) RNG() *RNG { return k.rng }

// Executed returns the number of events this kernel has executed.
func (k *Kernel) Executed() int64 { return k.executed }

// alloc takes an event from the free list (or the heap allocator) and arms
// it with fn and a fresh sequence number.
func (k *Kernel) alloc(fn func()) *event {
	k.seq++
	var ev *event
	if n := len(k.free); n > 0 {
		ev = k.free[n-1]
		k.free[n-1] = nil
		k.free = k.free[:n-1]
	} else {
		ev = &event{}
	}
	ev.fn = fn
	ev.seq = k.seq
	ev.index = -1
	return ev
}

// release returns a fired or cancelled event to the free list, bumping its
// generation so outstanding Timer handles go stale.
func (k *Kernel) release(ev *event) {
	ev.gen++
	ev.fn = nil
	k.free = append(k.free, ev)
}

func (k *Kernel) heapLess(i, j int) bool {
	a, b := &k.events[i], &k.events[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (k *Kernel) heapSwap(i, j int) {
	h := k.events
	h[i], h[j] = h[j], h[i]
	h[i].ev.index = int32(i)
	h[j].ev.index = int32(j)
}

// The event queue is a 4-ary heap: half the depth of a binary heap means
// half the swaps per sift, and the four children share a cache line of
// heapEntries. Heap shape never affects simulation order — pops follow the
// strict total order (at, seq), which any correct heap yields identically.
func (k *Kernel) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 4
		if !k.heapLess(i, parent) {
			break
		}
		k.heapSwap(i, parent)
		i = parent
	}
}

func (k *Kernel) siftDown(i int) bool {
	n := len(k.events)
	i0 := i
	for {
		l := 4*i + 1
		if l >= n {
			break
		}
		j := l
		hi := l + 4
		if hi > n {
			hi = n
		}
		for c := l + 1; c < hi; c++ {
			if k.heapLess(c, j) {
				j = c
			}
		}
		if !k.heapLess(j, i) {
			break
		}
		k.heapSwap(i, j)
		i = j
	}
	return i > i0
}

func (k *Kernel) heapPush(at Time, ev *event) {
	ev.index = int32(len(k.events))
	k.events = append(k.events, heapEntry{at: at, seq: ev.seq, ev: ev})
	k.siftUp(len(k.events) - 1)
}

func (k *Kernel) heapRemove(i int) *event {
	n := len(k.events) - 1
	ev := k.events[i].ev
	if i != n {
		k.events[i] = k.events[n]
		k.events[i].ev.index = int32(i)
	}
	k.events[n] = heapEntry{}
	k.events = k.events[:n]
	if i < n {
		if !k.siftDown(i) {
			k.siftUp(i)
		}
	}
	ev.index = -1
	return ev
}

// schedule queues fn at instant t (clamped to now) and returns its event.
func (k *Kernel) schedule(t Time, fn func()) *event {
	if t < k.now {
		t = k.now
	}
	ev := k.alloc(fn)
	k.heapPush(t, ev)
	return ev
}

// At schedules fn to run at instant t. Scheduling in the past is an error in
// simulation logic; such events fire immediately at the current time instead
// of rewinding the clock.
func (k *Kernel) At(t Time, fn func()) *Timer {
	ev := k.schedule(t, fn)
	return &Timer{k: k, ev: ev, gen: ev.gen}
}

// After schedules fn to run d from now.
func (k *Kernel) After(d Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return k.At(k.now.Add(d), fn)
}

// AfterFunc schedules fn to run d from now, reusing the caller-provided
// timer handle instead of allocating one. If t is still pending it is
// stopped first; t may be nil for fire-and-forget callbacks that will never
// be cancelled. This is the allocation-free path for hot schedulers (NIC
// engines, the CPU scheduler, fiber sleeps) that keep at most one
// outstanding callback per handle.
func (k *Kernel) AfterFunc(d Duration, fn func(), t *Timer) {
	if d < 0 {
		d = 0
	}
	k.AtFunc(k.now.Add(d), fn, t)
}

// AtFunc is AfterFunc with an absolute instant.
func (k *Kernel) AtFunc(at Time, fn func(), t *Timer) {
	if t != nil {
		t.Stop()
	}
	ev := k.schedule(at, fn)
	if t != nil {
		t.k = k
		t.ev = ev
		t.gen = ev.gen
	}
}

// StopRun makes Run return after the current event completes.
func (k *Kernel) StopRun() { k.stopped = true }

// Run executes events in order until the queue drains, the optional limit is
// reached, or StopRun is called. It returns ErrStopped in the latter case.
//
// Run may re-enter through RunUntil called from an event callback. The stop
// flag is reset only at top-level entry, so a StopRun issued during a nested
// RunUntil propagates out to the outer Run instead of being swallowed by the
// nested call's own reset.
func (k *Kernel) Run() error {
	if k.depth == 0 {
		k.stopped = false
	}
	k.depth++
	defer k.exitRun()
	for len(k.events) > 0 {
		if k.stopped {
			return ErrStopped
		}
		top := &k.events[0]
		if k.limit > 0 && top.at > k.limit {
			k.now = k.limit
			return nil
		}
		k.now = top.at
		ev := k.heapRemove(0)
		fn := ev.fn
		k.release(ev) // before fn so the callback can reuse the slot
		k.executed++
		fn()
	}
	return nil
}

func (k *Kernel) exitRun() {
	k.depth--
	if k.depth != 0 {
		return
	}
	// Retire pooled fiber runners at top-level exit: reuse amortizes the
	// goroutine starts *within* a run (where the thousands of Spawns are),
	// while a kernel dropped after Run leaks nothing.
	k.drainFiberPool()
	if k.executed != k.flushed {
		totalEvents.Add(k.executed - k.flushed)
		k.flushed = k.executed
	}
}

// RunUntil executes events up to and including instant t, then advances the
// clock to t and returns. Events after t remain queued.
func (k *Kernel) RunUntil(t Time) error {
	prev := k.limit
	k.limit = t
	err := k.Run()
	k.limit = prev
	if err == nil && k.now < t {
		k.now = t
	}
	return err
}

// Reset returns the kernel to the state NewKernel(seed) would produce
// while keeping its allocated capacity: the event free list, the event
// heap's backing array, and any parked fiber runners survive, so a pooled
// kernel's next trial allocates (and starts goroutines) far less than a
// fresh one. Still-queued events are cancelled into the free list and the
// RNG is re-seeded, so simulation behaviour after Reset is byte-identical
// to a fresh kernel's — event ordering depends only on (time, seq), and
// both restart from zero.
//
// Reset only applies between top-level runs: it reports false and leaves
// the kernel untouched if called while running or with live fibers.
func (k *Kernel) Reset(seed uint64) bool {
	if k.depth != 0 || k.fibers != 0 {
		return false
	}
	for i := range k.events {
		ev := k.events[i].ev
		ev.index = -1
		k.release(ev)
		k.events[i] = heapEntry{}
	}
	k.events = k.events[:0]
	if k.executed != k.flushed {
		totalEvents.Add(k.executed - k.flushed)
	}
	k.now, k.seq = 0, 0
	k.stopped, k.limit = false, 0
	k.executed, k.flushed, k.fiberStarts = 0, 0, 0
	k.rng = NewRNG(seed)
	return true
}

// Pending reports the number of queued events.
func (k *Kernel) Pending() int { return len(k.events) }

// FreeEvents reports the size of the event free list — recycled event
// structs awaiting reuse. Leak tests compare it across runs.
func (k *Kernel) FreeEvents() int { return len(k.free) }

// PooledFibers reports the number of parked runner goroutines. The pool
// drains at top-level Run exit, so between runs it is zero.
func (k *Kernel) PooledFibers() int { return len(k.fiberFree) }

// LiveFibers reports the number of fibers that have started and not yet
// exited; useful to assert that a scenario wound down cleanly.
func (k *Kernel) LiveFibers() int { return k.fibers }

// FiberStarts reports how many runner goroutines this kernel has ever
// created. With the fiber pool, spawning N fibers sequentially costs one
// goroutine start, not N; the delta across a workload measures pool misses
// (it grows only with peak fiber concurrency per top-level Run).
func (k *Kernel) FiberStarts() int64 { return k.fiberStarts }
