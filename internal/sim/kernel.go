// Package sim provides a deterministic discrete-event simulation kernel.
//
// All HyperLoop components — the RDMA fabric, the NVM devices, and the
// multi-tenant CPU scheduler — are driven by a single Kernel that advances a
// virtual clock. Events scheduled for the same instant fire in insertion
// order, so a run is bit-reproducible given the same seed.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"time"
)

// Time is a virtual-clock instant in nanoseconds since the start of the
// simulation. It is unrelated to the wall clock.
type Time int64

// Duration re-exports time.Duration for convenience; virtual durations use
// the same unit (nanoseconds) as wall-clock durations.
type Duration = time.Duration

// Common virtual durations.
const (
	Nanosecond  = Duration(time.Nanosecond)
	Microsecond = Duration(time.Microsecond)
	Millisecond = Duration(time.Millisecond)
	Second      = Duration(time.Second)
)

// Add returns the instant d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration elapsed from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// String formats the instant as a duration offset, e.g. "1.5ms".
func (t Time) String() string { return Duration(t).String() }

// event is a scheduled callback.
type event struct {
	at  Time
	seq uint64 // tie-break: FIFO among same-instant events
	fn  func()

	index int // heap index; -1 when cancelled
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev, ok := x.(*event)
	if !ok {
		return
	}
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Timer is a handle to a scheduled event that can be cancelled.
type Timer struct {
	k  *Kernel
	ev *event
}

// Stop cancels the timer. It reports whether the event had not yet fired.
func (t *Timer) Stop() bool {
	if t == nil || t.ev == nil || t.ev.index < 0 {
		return false
	}
	heap.Remove(&t.k.events, t.ev.index)
	t.ev = nil
	return true
}

// ErrStopped is returned by Run when StopRun was called.
var ErrStopped = errors.New("sim: run stopped")

// Kernel is the discrete-event simulation core. It is not safe for
// concurrent use; fibers hand control back and forth cooperatively so all
// simulation logic is effectively single-threaded.
type Kernel struct {
	now     Time
	seq     uint64
	events  eventHeap
	rng     *RNG
	stopped bool
	limit   Time // 0 = no limit
	fibers  int  // live fiber count, for leak detection
}

// NewKernel returns a kernel with its clock at zero and a deterministic RNG
// derived from seed.
func NewKernel(seed uint64) *Kernel {
	return &Kernel{rng: NewRNG(seed)}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// RNG returns the kernel's deterministic random source.
func (k *Kernel) RNG() *RNG { return k.rng }

// At schedules fn to run at instant t. Scheduling in the past is an error in
// simulation logic; such events fire immediately at the current time instead
// of rewinding the clock.
func (k *Kernel) At(t Time, fn func()) *Timer {
	if t < k.now {
		t = k.now
	}
	k.seq++
	ev := &event{at: t, seq: k.seq, fn: fn}
	heap.Push(&k.events, ev)
	return &Timer{k: k, ev: ev}
}

// After schedules fn to run d from now.
func (k *Kernel) After(d Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return k.At(k.now.Add(d), fn)
}

// StopRun makes Run return after the current event completes.
func (k *Kernel) StopRun() { k.stopped = true }

// Run executes events in order until the queue drains, the optional limit is
// reached, or StopRun is called. It returns ErrStopped in the latter case.
func (k *Kernel) Run() error {
	k.stopped = false
	for len(k.events) > 0 {
		if k.stopped {
			return ErrStopped
		}
		if k.limit > 0 && k.events[0].at > k.limit {
			k.now = k.limit
			return nil
		}
		ev, ok := heap.Pop(&k.events).(*event)
		if !ok {
			return fmt.Errorf("sim: corrupt event queue")
		}
		k.now = ev.at
		ev.fn()
	}
	return nil
}

// RunUntil executes events up to and including instant t, then advances the
// clock to t and returns. Events after t remain queued.
func (k *Kernel) RunUntil(t Time) error {
	prev := k.limit
	k.limit = t
	err := k.Run()
	k.limit = prev
	if err == nil && k.now < t {
		k.now = t
	}
	return err
}

// Pending reports the number of queued events.
func (k *Kernel) Pending() int { return len(k.events) }

// LiveFibers reports the number of fibers that have started and not yet
// exited; useful to assert that a scenario wound down cleanly.
func (k *Kernel) LiveFibers() int { return k.fibers }
