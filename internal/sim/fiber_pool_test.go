package sim

import (
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"
)

// numGoroutinesSettled samples runtime.NumGoroutine until it stops
// shrinking, giving retired runners a moment to exit.
func numGoroutinesSettled() int {
	prev := runtime.NumGoroutine()
	for i := 0; i < 50; i++ {
		time.Sleep(time.Millisecond)
		n := runtime.NumGoroutine()
		if n >= prev {
			return n
		}
		prev = n
	}
	return prev
}

// TestFiberPoolReusesRunners: sequential fibers inside one Run share a
// single runner goroutine — the pool-hit path the datapath lives on.
func TestFiberPoolReusesRunners(t *testing.T) {
	k := NewKernel(1)
	const n = 1000
	ran := 0
	var spawn func(i int)
	spawn = func(i int) {
		if i == n {
			return
		}
		k.Spawn(fmt.Sprintf("f%d", i), func(f *Fiber) {
			ran++
			f.Sleep(Microsecond)
			spawn(i + 1) // next fiber starts only after this one exited
		})
	}
	spawn(0)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if ran != n {
		t.Fatalf("ran %d of %d fibers", ran, n)
	}
	if k.LiveFibers() != 0 {
		t.Fatalf("LiveFibers = %d, want 0", k.LiveFibers())
	}
	// Spawn posts the body at now+0, so consecutive fibers overlap only at
	// the dispatch boundary; a handful of runners must cover all of them.
	if s := k.FiberStarts(); s > 2 {
		t.Fatalf("FiberStarts = %d for %d sequential fibers, want ≤2", s, n)
	}
}

// TestFiberPoolNoGoroutineLeak: thousands of spawn/exits across several
// reused kernels leave no runner goroutines behind once each top-level Run
// has returned.
func TestFiberPoolNoGoroutineLeak(t *testing.T) {
	base := numGoroutinesSettled()
	for trial := 0; trial < 20; trial++ {
		k := NewKernel(uint64(trial))
		for i := 0; i < 50; i++ {
			i := i
			k.Spawn("worker", func(f *Fiber) {
				f.Sleep(Duration(i) * Microsecond)
				sig := NewSignal()
				k.After(Microsecond, func() { sig.Fire(nil) })
				_ = f.Await(sig)
			})
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		// Re-enter the same kernel: the pool was drained, so this must
		// transparently start fresh runners and drain them again.
		k.Spawn("again", func(f *Fiber) { f.Sleep(Microsecond) })
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		if k.LiveFibers() != 0 {
			t.Fatalf("trial %d: LiveFibers = %d", trial, k.LiveFibers())
		}
	}
	if got := numGoroutinesSettled(); got > base+2 {
		t.Fatalf("goroutines grew from %d to %d — leaked runners", base, got)
	}
}

// TestFiberPanicPropagates: a panicking body surfaces through Run with the
// fiber's name and stack, and the dead runner is not pooled.
func TestFiberPanicPropagates(t *testing.T) {
	k := NewKernel(1)
	k.Spawn("doomed", func(f *Fiber) {
		f.Sleep(Microsecond)
		panic("boom")
	})
	func() {
		defer func() {
			p := recover()
			if p == nil {
				t.Fatal("Run did not panic")
			}
			msg := fmt.Sprint(p)
			if !strings.Contains(msg, "doomed") || !strings.Contains(msg, "boom") {
				t.Fatalf("panic message %q missing fiber name or value", msg)
			}
		}()
		_ = k.Run()
	}()
	// The kernel must remain usable: new spawns get a fresh runner.
	ok := false
	k.Spawn("survivor", func(f *Fiber) { f.Sleep(Microsecond); ok = true })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("fiber after panic did not run")
	}
}

// TestMutexConvoyFIFO: a long convoy hands the lock over strictly in
// arrival order, one holder per Unlock.
func TestMutexConvoyFIFO(t *testing.T) {
	k := NewKernel(1)
	var mu Mutex
	const n = 2000
	var order []int
	for i := 0; i < n; i++ {
		i := i
		k.Spawn(fmt.Sprintf("w%d", i), func(f *Fiber) {
			mu.Lock(f)
			order = append(order, i)
			f.Sleep(Microsecond)
			mu.Unlock()
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != n {
		t.Fatalf("got %d completions, want %d", len(order), n)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d, want %d (not FIFO)", i, v, i)
		}
	}
}

// BenchmarkFiberSpawn measures the steady-state cost of spawning a fiber
// that sleeps once and exits, all within one Run — the shape of a datapath
// issuing operations back-to-back. goroutine-starts/op must be ~0: every
// spawn after the first reuses a pooled runner. (The pool drains at
// top-level Run exit, so reuse across Run calls is intentionally not
// benchmarked — that path exists for leak-freedom, not speed.)
func BenchmarkFiberSpawn(b *testing.B) {
	k := NewKernel(1)
	n := 0
	var next func()
	next = func() {
		if n == b.N {
			return
		}
		n++
		k.Spawn("bench", func(f *Fiber) {
			f.Sleep(Microsecond)
			next() // spawned only after the previous fiber exited
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	next()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	starts := k.FiberStarts()
	// Sequential fibers overlap only at the dispatch boundary; a constant
	// few runners must serve all b.N spawns.
	b.ReportMetric(float64(starts)/float64(b.N), "goroutine-starts/op")
	if b.N >= 100 && starts > 2 {
		b.Fatalf("FiberStarts = %d over %d sequential spawns; pool not reusing", starts, b.N)
	}
}

// BenchmarkFiberSpawnParallel spawns waves of 100 concurrent fibers inside
// one Run: the pool must plateau at the wave's peak concurrency, not grow
// with the number of waves.
func BenchmarkFiberSpawnParallel(b *testing.B) {
	k := NewKernel(1)
	const wave = 100
	waves := (b.N + wave - 1) / wave
	launched := 0
	var launch func()
	launch = func() {
		if launched == waves {
			return
		}
		launched++
		remaining := wave
		for j := 0; j < wave; j++ {
			k.Spawn("bench", func(f *Fiber) {
				f.Sleep(Microsecond)
				remaining--
				if remaining == 0 {
					launch() // next wave starts after this one fully exits
				}
			})
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	launch()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	b.ReportMetric(float64(k.FiberStarts())/float64(waves*wave), "goroutine-starts/op")
	if waves >= 2 && k.FiberStarts() > wave+1 {
		b.Fatalf("FiberStarts = %d for waves of %d; pool growing with wave count", k.FiberStarts(), wave)
	}
}

// BenchmarkMutexConvoy exercises Unlock handoff with a deep waiter queue;
// the ring-backed queue keeps each handoff O(1).
func BenchmarkMutexConvoy(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := NewKernel(1)
		var mu Mutex
		for j := 0; j < 500; j++ {
			k.Spawn("w", func(f *Fiber) {
				mu.Lock(f)
				mu.Unlock()
			})
		}
		if err := k.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
