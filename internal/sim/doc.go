// Package sim provides a deterministic discrete-event simulation kernel.
//
// All HyperLoop components — the RDMA fabric, the NVM devices, and the
// multi-tenant CPU scheduler — are driven by a single Kernel that advances a
// virtual clock. Events scheduled for the same instant fire in insertion
// order, so a run is bit-reproducible given the same seed.
//
// A Kernel is single-threaded, but independent Kernels are fully isolated
// and may run concurrently on separate goroutines — the property the
// parallel experiment runner (internal/experiments) exploits.
//
// # Fiber concurrency model
//
// Fibers let simulation logic block (Sleep, Await) in ordinary sequential
// style. Each fiber is backed by a goroutine — its "runner" — but the
// package is built on a single invariant:
//
// The one-runner invariant. At every moment, exactly one goroutine of a
// kernel is executing: either the kernel's event loop or one fiber runner.
// All others are parked on a channel receive. Every piece of kernel,
// fabric, and application state may therefore be accessed without locks or
// atomics; mutual exclusion is structural, not advisory. The transfer
// points (and the happens-before edges the race detector sees) are the
// rendezvous operations below, so a -race run proves the invariant rather
// than assuming it.
//
// The park/unpark protocol. Each runner shares one unbuffered channel
// (Fiber.ctl) with the kernel, used in strictly alternating directions:
//
//	kernel: dispatch = send ctl  (unparks fiber) ; recv ctl (parks kernel)
//	fiber:  pause    = send ctl  (unparks kernel); recv ctl (parks fiber)
//
// A control transfer is thus exactly one rendezvous — one park and one
// unpark — per direction. The alternation makes the single channel
// unambiguous: a goroutine cannot match its own send with its own receive,
// and at any instant at most one side is sending. (The previous design
// used two channels, resume and yield, and paid two channel handoffs per
// step.) A blocked fiber is always parked inside pause; the kernel is
// parked inside dispatch for as long as the fiber runs.
//
// Pool lifecycle. Runners are pooled per kernel. Spawn takes a parked
// runner from the free list (creating one only on a pool miss — see
// Kernel.FiberStarts) and schedules the body at the current instant. When
// the body returns, the runner hands control back, its Fiber is pushed on
// the free list, and the goroutine parks awaiting the next Spawn. When a
// top-level Run returns, the kernel retires every pooled runner (a nil-fn
// retire token makes the goroutine return), so dropping a kernel after Run
// leaks no goroutines while all Spawns inside one Run — where experiments
// spawn thousands of fibers — reuse warm runners. A fiber parked
// mid-Await whose signal never fires remains parked, exactly as an
// un-exited fiber goroutine did before pooling; LiveFibers exists to
// assert scenarios wind down cleanly.
//
// Direct-dispatch fast path. The rendezvous above is only needed once a
// fiber can block. Most datapath bodies never do, so when the fast path is
// enabled (default; see SetFastPath, or -fastpath/SIM_FASTPATH at the CLI)
// a fiber starting at run depth 1 executes its body inline on the kernel
// goroutine, with no runner and no channel operation at all
// (Kernel.FastDispatches counts these; SlowDispatches counts rendezvous
// transfers). If the inline body blocks, it demotes: the goroutine running
// it parks as the fiber's runner and the kernel role migrates — one channel
// send — to a pooled worker goroutine that continues the event loop, so
// the one-runner invariant is preserved verbatim. The goroutine that
// called Run never executes bodies inline (the first fast start migrates
// the role away), since a demotion would park the Run caller inside an
// arbitrary fiber. The fast path changes which goroutine runs a body, not
// what the event heap schedules, so traces are byte-identical with it on
// or off (TestFastPathTraceIdentical).
//
// Panic safety. A panic in a fiber body is caught in the runner, which
// records the value and stack, wakes the kernel, and lets the goroutine
// exit (a dead runner is never pooled). The kernel re-raises the panic in
// event context — inside the Run call that dispatched the fiber — with the
// fiber's stack appended, instead of crashing the process from an
// anonymous goroutine.
//
// Why determinism survives goroutine reuse. Scheduling decisions are made
// only by the kernel's event heap, keyed by (virtual time, sequence
// number); which OS thread or goroutine executes a fiber body is
// invisible to simulation state. Reusing a runner changes neither the
// number nor the order of scheduled events (Spawn posts exactly one start
// event either way), performs no RNG draws, and shares no data between
// fibers beyond the zero-reset Fiber fields. The Go scheduler chooses only
// *when wall-clock-wise* a handoff completes, never *which* event runs
// next — so virtual-time results are byte-identical with pooling on a
// fresh goroutine, a reused one, or any GOMAXPROCS.
package sim
