package sim

import (
	"sort"
	"testing"
)

// TestNestedRunUntilPropagatesStop is the regression test for the stop-flag
// reset: a StopRun issued before (or during) a nested RunUntil must not be
// swallowed by the nested call resetting k.stopped, and must propagate to
// the outer Run.
func TestNestedRunUntilPropagatesStop(t *testing.T) {
	k := NewKernel(1)
	var nestedErr error
	afterStop := false
	k.After(Microsecond, func() {
		k.StopRun()
		// Nested drive of the kernel from inside an event callback: the
		// pending stop must hold, so the nested run executes nothing.
		nestedErr = k.RunUntil(k.Now().Add(Millisecond))
	})
	k.After(2*Microsecond, func() { afterStop = true })
	if err := k.Run(); err != ErrStopped {
		t.Fatalf("outer Run err = %v, want ErrStopped", err)
	}
	if nestedErr != ErrStopped {
		t.Fatalf("nested RunUntil err = %v, want ErrStopped", nestedErr)
	}
	if afterStop {
		t.Fatal("event after StopRun fired: nested RunUntil swallowed the stop")
	}
	// A fresh top-level Run clears the stop flag and drains the queue.
	if err := k.Run(); err != nil {
		t.Fatalf("rerun: %v", err)
	}
	if !afterStop {
		t.Fatal("queued event lost across stop/rerun")
	}
}

// TestStopDuringNestedRunUntil stops the kernel from an event executed by a
// nested RunUntil and checks both levels observe it.
func TestStopDuringNestedRunUntil(t *testing.T) {
	k := NewKernel(1)
	var nestedErr error
	outerRan := false
	k.After(Microsecond, func() {
		k.After(2*Microsecond, k.StopRun)
		nestedErr = k.RunUntil(k.Now().Add(Millisecond))
	})
	k.After(10*Microsecond, func() { outerRan = true })
	if err := k.Run(); err != ErrStopped {
		t.Fatalf("outer Run err = %v, want ErrStopped", err)
	}
	if nestedErr != ErrStopped {
		t.Fatalf("nested RunUntil err = %v, want ErrStopped", nestedErr)
	}
	if outerRan {
		t.Fatal("outer Run continued past a stop raised in nested RunUntil")
	}
}

// TestAfterFuncReusesTimer re-arms one Timer handle repeatedly and checks
// the chain fires in order with Stop working at every incarnation.
func TestAfterFuncReusesTimer(t *testing.T) {
	k := NewKernel(1)
	var tm Timer
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < 100 {
			k.AfterFunc(Microsecond, tick, &tm)
		}
	}
	k.AfterFunc(Microsecond, tick, &tm)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if n != 100 {
		t.Fatalf("ticks = %d, want 100", n)
	}
	// Re-arm then cancel: the callback must not fire.
	k.AfterFunc(Microsecond, tick, &tm)
	if !tm.Stop() {
		t.Fatal("Stop on armed reused timer returned false")
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if n != 100 {
		t.Fatalf("cancelled reused timer fired: ticks = %d", n)
	}
}

// TestAfterFuncReplacesPending arms a timer that is still pending and
// checks the first callback is cancelled, not duplicated.
func TestAfterFuncReplacesPending(t *testing.T) {
	k := NewKernel(1)
	var tm Timer
	var fired []string
	k.AfterFunc(5*Microsecond, func() { fired = append(fired, "first") }, &tm)
	k.AfterFunc(Microsecond, func() { fired = append(fired, "second") }, &tm)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 1 || fired[0] != "second" {
		t.Fatalf("fired = %v, want [second]", fired)
	}
}

// TestStaleTimerCannotCancelRecycledEvent guards the free-list: a Timer
// whose event fired must not cancel a later event that recycled the same
// struct.
func TestStaleTimerCannotCancelRecycledEvent(t *testing.T) {
	k := NewKernel(1)
	first := k.After(Microsecond, func() {})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// The next scheduled event recycles the fired event's struct.
	fired := false
	k.After(Microsecond, func() { fired = true })
	if first.Stop() {
		t.Fatal("stale Stop reported success")
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("stale Timer.Stop cancelled a recycled event")
	}
}

// TestHeapRandomizedOrdering cross-checks the hand-rolled event heap
// against a reference sort under random scheduling and cancellation.
func TestHeapRandomizedOrdering(t *testing.T) {
	rng := NewRNG(99)
	for trial := 0; trial < 50; trial++ {
		k := NewKernel(uint64(trial))
		type ref struct {
			at  Time
			id  int
			tm  *Timer
			cut bool
		}
		var refs []*ref
		var fired []int
		const n = 200
		for i := 0; i < n; i++ {
			r := &ref{at: Time(rng.Intn(50)) * Time(Microsecond), id: i}
			r.tm = k.At(r.at, func() { fired = append(fired, r.id) })
			refs = append(refs, r)
		}
		// Cancel a random third.
		for _, r := range refs {
			if rng.Intn(3) == 0 {
				r.cut = true
				if !r.tm.Stop() {
					t.Fatalf("trial %d: Stop failed on pending event %d", trial, r.id)
				}
			}
		}
		if err := k.Run(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		var want []int
		kept := make([]*ref, 0, n)
		for _, r := range refs {
			if !r.cut {
				kept = append(kept, r)
			}
		}
		sort.SliceStable(kept, func(i, j int) bool { return kept[i].at < kept[j].at })
		for _, r := range kept {
			want = append(want, r.id)
		}
		if len(fired) != len(want) {
			t.Fatalf("trial %d: fired %d events, want %d", trial, len(fired), len(want))
		}
		for i := range want {
			if fired[i] != want[i] {
				t.Fatalf("trial %d: order[%d] = %d, want %d", trial, i, fired[i], want[i])
			}
		}
	}
}

// TestExecutedCounter checks per-kernel and process-wide event accounting.
func TestExecutedCounter(t *testing.T) {
	before := TotalEvents()
	k := NewKernel(1)
	for i := 0; i < 10; i++ {
		k.After(Duration(i)*Microsecond, func() {})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if k.Executed() != 10 {
		t.Fatalf("Executed = %d, want 10", k.Executed())
	}
	if got := TotalEvents() - before; got < 10 {
		t.Fatalf("TotalEvents delta = %d, want >= 10", got)
	}
}
