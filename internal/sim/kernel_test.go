package sim

import (
	"testing"
	"testing/quick"
)

func TestKernelOrdering(t *testing.T) {
	k := NewKernel(1)
	var order []int
	k.After(3*Microsecond, func() { order = append(order, 3) })
	k.After(1*Microsecond, func() { order = append(order, 1) })
	k.After(2*Microsecond, func() { order = append(order, 2) })
	if err := k.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	want := []int{1, 2, 3}
	for i, v := range want {
		if order[i] != v {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if got := k.Now(); got != Time(3*Microsecond) {
		t.Fatalf("clock = %v, want 3µs", got)
	}
}

func TestKernelSameInstantFIFO(t *testing.T) {
	k := NewKernel(1)
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		k.At(Time(5*Microsecond), func() { order = append(order, i) })
	}
	if err := k.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events not FIFO: order[%d]=%d", i, v)
		}
	}
}

func TestKernelNestedScheduling(t *testing.T) {
	k := NewKernel(1)
	fired := 0
	k.After(Microsecond, func() {
		fired++
		k.After(Microsecond, func() {
			fired++
			k.After(0, func() { fired++ })
		})
	})
	if err := k.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if fired != 3 {
		t.Fatalf("fired = %d, want 3", fired)
	}
	if k.Now() != Time(2*Microsecond) {
		t.Fatalf("clock = %v, want 2µs", k.Now())
	}
}

func TestKernelPastEventClamped(t *testing.T) {
	k := NewKernel(1)
	var at Time
	k.After(10*Microsecond, func() {
		k.At(Time(Microsecond), func() { at = k.Now() }) // in the past
	})
	if err := k.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if at != Time(10*Microsecond) {
		t.Fatalf("past event fired at %v, want clamp to 10µs", at)
	}
}

func TestTimerStop(t *testing.T) {
	k := NewKernel(1)
	fired := false
	tm := k.After(Microsecond, func() { fired = true })
	if !tm.Stop() {
		t.Fatal("Stop returned false for pending timer")
	}
	if tm.Stop() {
		t.Fatal("second Stop returned true")
	}
	if err := k.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if fired {
		t.Fatal("cancelled timer fired")
	}
}

func TestRunUntil(t *testing.T) {
	k := NewKernel(1)
	var fired []int
	k.After(1*Millisecond, func() { fired = append(fired, 1) })
	k.After(3*Millisecond, func() { fired = append(fired, 3) })
	if err := k.RunUntil(Time(2 * Millisecond)); err != nil {
		t.Fatalf("run until: %v", err)
	}
	if len(fired) != 1 || fired[0] != 1 {
		t.Fatalf("fired = %v, want [1]", fired)
	}
	if k.Now() != Time(2*Millisecond) {
		t.Fatalf("clock = %v, want 2ms", k.Now())
	}
	if err := k.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(fired) != 2 {
		t.Fatalf("fired = %v, want both", fired)
	}
}

func TestStopRun(t *testing.T) {
	k := NewKernel(1)
	n := 0
	for i := 0; i < 10; i++ {
		k.After(Duration(i)*Microsecond, func() {
			n++
			if n == 3 {
				k.StopRun()
			}
		})
	}
	if err := k.Run(); err != ErrStopped {
		t.Fatalf("err = %v, want ErrStopped", err)
	}
	if n != 3 {
		t.Fatalf("executed %d events before stop, want 3", n)
	}
}

func TestFiberSleepAndAwait(t *testing.T) {
	k := NewKernel(1)
	sig := NewSignal()
	var trace []string
	k.Spawn("a", func(f *Fiber) {
		trace = append(trace, "a-start")
		f.Sleep(5 * Microsecond)
		trace = append(trace, "a-slept")
		sig.Fire(nil)
	})
	k.Spawn("b", func(f *Fiber) {
		trace = append(trace, "b-start")
		if err := f.Await(sig); err != nil {
			t.Errorf("await: %v", err)
		}
		trace = append(trace, "b-woke")
	})
	if err := k.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	want := []string{"a-start", "b-start", "a-slept", "b-woke"}
	if len(trace) != len(want) {
		t.Fatalf("trace = %v, want %v", trace, want)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
	if k.LiveFibers() != 0 {
		t.Fatalf("live fibers = %d, want 0", k.LiveFibers())
	}
}

func TestFiberAwaitFiredSignal(t *testing.T) {
	k := NewKernel(1)
	sig := NewSignal()
	sig.Fire(nil)
	done := false
	k.Spawn("a", func(f *Fiber) {
		if err := f.Await(sig); err != nil {
			t.Errorf("await: %v", err)
		}
		done = true
	})
	if err := k.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !done {
		t.Fatal("fiber did not complete on pre-fired signal")
	}
}

func TestFiberAwaitAllPropagatesError(t *testing.T) {
	k := NewKernel(1)
	s1, s2 := NewSignal(), NewSignal()
	var got error
	k.Spawn("w", func(f *Fiber) {
		got = f.AwaitAll(s1, s2)
	})
	k.After(Microsecond, func() { s1.Fire(nil) })
	k.After(2*Microsecond, func() { s2.Fire(ErrStopped) })
	if err := k.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if got != ErrStopped {
		t.Fatalf("AwaitAll err = %v, want ErrStopped", got)
	}
}

func TestManyFibersDeterministic(t *testing.T) {
	run := func(seed uint64) []int {
		k := NewKernel(seed)
		var order []int
		for i := 0; i < 50; i++ {
			i := i
			k.Spawn("f", func(f *Fiber) {
				f.Sleep(Duration(k.RNG().Intn(1000)) * Microsecond)
				order = append(order, i)
			})
		}
		if err := k.Run(); err != nil {
			t.Fatalf("run: %v", err)
		}
		return order
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs with same seed diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed RNGs diverged")
		}
	}
}

func TestRNGIntnBounds(t *testing.T) {
	r := NewRNG(3)
	f := func(n uint16) bool {
		m := int(n%1000) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestRNGExpMean(t *testing.T) {
	r := NewRNG(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Exp(100)
	}
	mean := sum / n
	if mean < 95 || mean > 105 {
		t.Fatalf("Exp(100) sample mean = %v, want ≈100", mean)
	}
}

func TestRNGPerm(t *testing.T) {
	r := NewRNG(13)
	p := r.Perm(100)
	seen := make(map[int]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestJitterBounds(t *testing.T) {
	r := NewRNG(17)
	for i := 0; i < 1000; i++ {
		d := r.Jitter(1000*Nanosecond, 0.1)
		if d < 900*Nanosecond || d > 1100*Nanosecond {
			t.Fatalf("jitter out of ±10%%: %v", d)
		}
	}
	if r.Jitter(Microsecond, 0) != Microsecond {
		t.Fatal("zero jitter changed value")
	}
}

func TestMutexExcludesAndIsFIFO(t *testing.T) {
	k := NewKernel(1)
	var mu Mutex
	var order []string
	hold := func(name string, start, dur Duration) {
		k.Spawn(name, func(f *Fiber) {
			f.Sleep(start)
			mu.Lock(f)
			order = append(order, name+"-in")
			f.Sleep(dur)
			order = append(order, name+"-out")
			mu.Unlock()
		})
	}
	hold("a", 0, 10*Microsecond)
	hold("b", 1*Microsecond, 5*Microsecond)
	hold("c", 2*Microsecond, 5*Microsecond)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"a-in", "a-out", "b-in", "b-out", "c-in", "c-out"}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v (critical sections interleaved or not FIFO)", order, want)
		}
	}
	if mu.Locked() {
		t.Fatal("mutex still held")
	}
}

func TestMutexUncontendedIsImmediate(t *testing.T) {
	k := NewKernel(1)
	var mu Mutex
	var at Time
	k.Spawn("solo", func(f *Fiber) {
		mu.Lock(f)
		at = f.Now()
		mu.Unlock()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 0 {
		t.Fatalf("uncontended lock took until %v", at)
	}
}
