package sim

import (
	"fmt"
	"runtime/debug"

	"hyperloop/internal/ring"
)

// Fiber is a cooperative coroutine driven by the kernel. Exactly one of the
// kernel loop or a single fiber runs at any moment (the one-runner
// invariant; see the package documentation), so fiber code can use ordinary
// sequential style (Sleep, Await) while the whole simulation stays
// deterministic.
//
// Fibers exist so that client logic — a storage front end issuing a
// transaction, a YCSB worker — reads top-to-bottom instead of as a chain of
// completion callbacks.
//
// A fiber's body starts in one of two modes. On the direct-dispatch fast
// path (the default; see fastpath.go) the body runs inline on the kernel
// goroutine and only acquires a goroutine of its own — by demotion — if it
// blocks. With the fast path off, or at nested run depth, the body runs on
// a pooled runner goroutine behind a channel rendezvous, as before. Either
// way a *Fiber handle is only valid until the body it was passed to
// returns; retaining it past exit observes an unrelated, recycled fiber.
type Fiber struct {
	k      *Kernel
	name   string
	ctl    chan struct{} // rendezvous: strictly alternating kernel <-> runner
	fn     func(*Fiber)  // body for the current spawn; nil retires the runner
	exited bool
	dead   bool   // body panicked; kernel re-raises and discards the runner
	pan    any    // recovered panic value
	stack  []byte // runner stack captured at the panic site

	hasRunner  bool     // a run() goroutine owns ctl's far end
	fastActive bool     // body currently executing inline on the kernel goroutine
	demoted    bool     // inline body blocked; host goroutine became the runner
	host       *kworker // the worker goroutine hosting a demoted fiber

	// Cached method-value closures: allocated once per fiber, reused for
	// every spawn and every park/unpark, so the hot path is allocation-free.
	dispatchFn func()
	startFn    func()
}

// Spawn starts fn as a fiber at the current instant. fn runs until it
// blocks (Sleep/Await) or returns; control then returns to the kernel.
//
// On the fast path the body executes inline on the kernel goroutine: a
// body that never blocks costs no goroutine and no channel operation, and
// one that blocks demotes transparently to a runner. With the fast path
// off the fiber gets a pooled runner goroutine up front (FiberStarts
// counts the creations). If fn panics, the panic is re-raised in kernel
// context — inside the Run that dispatched the fiber — with the fiber's
// stack trace attached.
func (k *Kernel) Spawn(name string, fn func(f *Fiber)) {
	var f *Fiber
	if fastOff.Load() || k.depth > 1 {
		f = k.getFiber()
	} else {
		f = k.getFiberStruct()
	}
	f.name = name
	f.fn = fn
	k.AfterFunc(0, f.startFn, nil)
}

// getFiber takes a parked runner from the pool or creates one.
func (k *Kernel) getFiber() *Fiber {
	if n := len(k.fiberFree); n > 0 {
		f := k.fiberFree[n-1]
		k.fiberFree[n-1] = nil
		k.fiberFree = k.fiberFree[:n-1]
		f.exited = false
		return f
	}
	f := &Fiber{k: k, ctl: make(chan struct{}), hasRunner: true}
	f.dispatchFn = f.dispatch
	f.startFn = func() { k.startFiber(f) }
	k.fiberStarts++
	go f.run()
	return f
}

// getFiberStruct takes a runner-less fiber for inline dispatch from the
// struct pool or allocates one. No goroutine is started; the fiber gains a
// runner only if its start is gated to the classic path (startFiber) or it
// demotes (pause).
func (k *Kernel) getFiberStruct() *Fiber {
	if n := len(k.fiberStructs); n > 0 {
		f := k.fiberStructs[n-1]
		k.fiberStructs[n-1] = nil
		k.fiberStructs = k.fiberStructs[:n-1]
		f.exited = false
		return f
	}
	f := &Fiber{k: k, ctl: make(chan struct{})}
	f.dispatchFn = f.dispatch
	f.startFn = func() { k.startFiber(f) }
	return f
}

// releaseFiber parks an exited fiber's runner on the free list. Reset
// happens on reuse (getFiber/Spawn), not here, so diagnostics taken right
// after exit still see the name.
func (k *Kernel) releaseFiber(f *Fiber) {
	k.fiberFree = append(k.fiberFree, f)
}

// releaseFiberStruct pools an exited runner-less fiber. Unlike the runner
// pool, the struct pool survives top-level Run exit — there is no
// goroutine to leak.
func (k *Kernel) releaseFiberStruct(f *Fiber) {
	k.fiberStructs = append(k.fiberStructs, f)
}

// drainFiberPool retires every pooled runner goroutine. Called when a
// top-level Run returns, so an abandoned kernel never leaks parked
// goroutines; the next Run simply repopulates the pool on demand.
func (k *Kernel) drainFiberPool() {
	for i, f := range k.fiberFree {
		f.fn = nil // already nil; explicit for the retire contract
		f.ctl <- struct{}{}
		k.fiberFree[i] = nil
	}
	k.fiberFree = k.fiberFree[:0]
}

// run is the runner goroutine's loop: park until dispatched, execute one
// fiber body, hand control back, repeat. A nil fn is the retire token from
// drainFiberPool. A panicking body is caught so the kernel (parked in
// dispatch) can re-raise it in simulation context instead of crashing the
// process from an anonymous goroutine.
func (f *Fiber) run() {
	defer func() {
		if p := recover(); p != nil {
			f.pan = p
			f.stack = debug.Stack()
			f.dead = true
			f.exited = true
			f.k.fibers--
			f.ctl <- struct{}{} // wake the kernel; runner goroutine exits
		}
	}()
	for {
		<-f.ctl
		fn := f.fn
		f.fn = nil
		if fn == nil {
			return // retired by drainFiberPool
		}
		fn(f)
		f.exited = true
		f.k.fibers--
		f.ctl <- struct{}{}
	}
}

// dispatch transfers control into the fiber and blocks until it yields or
// exits. It must be called from kernel (event) context. The send unparks
// the runner; the receive parks the kernel — one rendezvous each way. When
// a demoted fiber exits, its hosting worker goroutine is returned to the
// kernel's worker pool here, on the kernel side of the rendezvous.
func (f *Fiber) dispatch() {
	f.k.slowDispatches++
	f.ctl <- struct{}{}
	<-f.ctl
	if f.exited {
		if f.demoted {
			f.k.poolWorker(f.host)
			f.host = nil
			f.demoted = false
			if !f.dead {
				f.k.releaseFiberStruct(f)
			}
		} else if !f.dead {
			f.k.releaseFiber(f)
		}
	}
	if f.dead {
		panic(fmt.Sprintf("sim: fiber %q panicked: %v\n%s", f.name, f.pan, f.stack))
	}
}

// pause transfers control back to the kernel and blocks until resumed. It
// must be called from fiber context. The first pause of an inline body
// demotes the fiber: the kernel role migrates to a worker goroutine and
// this goroutine — the former kernel — parks as the fiber's runner.
func (f *Fiber) pause() {
	if f.fastActive {
		k := f.k
		f.fastActive = false
		f.demoted = true
		f.host = k.curWorker
		lc := k.curLoop
		k.migrate(nil)
		lc.lost = true // own loop's ctx; the new role holder has its own
		<-f.ctl        // park as a classic runner until dispatched
		return
	}
	f.ctl <- struct{}{}
	<-f.ctl
}

// Name returns the fiber's diagnostic name.
func (f *Fiber) Name() string { return f.name }

// Kernel returns the owning kernel.
func (f *Fiber) Kernel() *Kernel { return f.k }

// Now returns the current virtual time.
func (f *Fiber) Now() Time { return f.k.Now() }

// Sleep blocks the fiber for virtual duration d.
func (f *Fiber) Sleep(d Duration) {
	f.k.AfterFunc(d, f.dispatchFn, nil)
	f.pause()
}

// Await blocks the fiber until s fires and returns the signal's error. If s
// already fired it returns immediately.
func (f *Fiber) Await(s *Signal) error {
	if !s.fired {
		s.subscribe(f.dispatchFn)
		f.pause()
	}
	return s.err
}

// AwaitAll blocks until every signal has fired and returns the first
// non-nil error among them (in argument order).
func (f *Fiber) AwaitAll(sigs ...*Signal) error {
	var firstErr error
	for _, s := range sigs {
		if err := f.Await(s); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Signal is a one-shot completion notification. Fire may be called from
// kernel or fiber context; waiters resume synchronously, in subscription
// order, before Fire returns.
type Signal struct {
	fired   bool
	err     error
	waiters []func()
}

// NewSignal returns an unfired signal.
func NewSignal() *Signal { return &Signal{} }

// Fired reports whether the signal has fired.
func (s *Signal) Fired() bool { return s.fired }

// Err returns the error the signal fired with (nil before firing).
func (s *Signal) Err() error { return s.err }

func (s *Signal) subscribe(fn func()) { s.waiters = append(s.waiters, fn) }

// Fire marks the signal complete and wakes all waiters. A signal fires at
// most once: calling Fire on an already-fired signal is a logic error in
// the caller and is deliberately ignored — the signal keeps the error (or
// nil) from the first Fire, no waiter runs twice, and err from the second
// call is dropped. Waiters subscribing after the fire are run immediately
// by Await instead.
func (s *Signal) Fire(err error) {
	if s.fired {
		return
	}
	s.fired = true
	s.err = err
	ws := s.waiters
	s.waiters = nil
	for _, w := range ws {
		w()
	}
}

// String describes the signal state for debugging.
func (s *Signal) String() string {
	if !s.fired {
		return "signal(pending)"
	}
	return fmt.Sprintf("signal(fired err=%v)", s.err)
}

// Mutex is a cooperative mutual-exclusion lock for fibers. Waiters are
// granted the lock in strict FIFO order: Unlock never releases a contended
// lock but hands it directly to the oldest waiter (no barging), so a
// convoy drains in arrival order. The waiter queue is a ring buffer, so
// Lock and Unlock are O(1) regardless of convoy length.
//
// The zero value is an unlocked mutex ready for use.
type Mutex struct {
	locked  bool
	waiters ring.Ring[*Signal]
}

// Lock blocks the fiber until the mutex is acquired.
func (m *Mutex) Lock(f *Fiber) {
	if !m.locked {
		m.locked = true
		return
	}
	s := NewSignal()
	m.waiters.PushBack(s)
	_ = f.Await(s)
}

// Unlock releases the mutex, handing it to the oldest waiter if any.
func (m *Mutex) Unlock() {
	if m.waiters.Len() == 0 {
		m.locked = false
		return
	}
	m.waiters.PopFront().Fire(nil) // lock stays held, ownership transfers
}

// Locked reports whether the mutex is held.
func (m *Mutex) Locked() bool { return m.locked }
