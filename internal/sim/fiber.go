package sim

import "fmt"

// Fiber is a cooperative coroutine driven by the kernel. Exactly one of the
// kernel loop or a single fiber runs at any moment, so fiber code can use
// ordinary sequential style (Sleep, Await) while the whole simulation stays
// deterministic.
//
// Fibers exist so that client logic — a storage front end issuing a
// transaction, a YCSB worker — reads top-to-bottom instead of as a chain of
// completion callbacks.
type Fiber struct {
	k      *Kernel
	name   string
	resume chan struct{}
	yield  chan struct{}
	exited bool

	dispatchFn func() // cached method value: one closure per fiber, not per block
}

// Spawn starts fn as a fiber at the current instant. fn runs until it
// blocks (Sleep/Await) or returns; control then returns to the kernel.
func (k *Kernel) Spawn(name string, fn func(f *Fiber)) {
	f := &Fiber{
		k:      k,
		name:   name,
		resume: make(chan struct{}),
		yield:  make(chan struct{}),
	}
	f.dispatchFn = f.dispatch
	k.AfterFunc(0, func() {
		k.fibers++
		go func() {
			<-f.resume
			fn(f)
			f.exited = true
			k.fibers--
			f.yield <- struct{}{}
		}()
		f.dispatch()
	}, nil)
}

// dispatch transfers control into the fiber and blocks until it yields or
// exits. It must be called from kernel (event) context.
func (f *Fiber) dispatch() {
	f.resume <- struct{}{}
	<-f.yield
}

// pause transfers control back to the kernel and blocks until resumed. It
// must be called from fiber context.
func (f *Fiber) pause() {
	f.yield <- struct{}{}
	<-f.resume
}

// Name returns the fiber's diagnostic name.
func (f *Fiber) Name() string { return f.name }

// Kernel returns the owning kernel.
func (f *Fiber) Kernel() *Kernel { return f.k }

// Now returns the current virtual time.
func (f *Fiber) Now() Time { return f.k.Now() }

// Sleep blocks the fiber for virtual duration d.
func (f *Fiber) Sleep(d Duration) {
	f.k.AfterFunc(d, f.dispatchFn, nil)
	f.pause()
}

// Await blocks the fiber until s fires and returns the signal's error. If s
// already fired it returns immediately.
func (f *Fiber) Await(s *Signal) error {
	if !s.fired {
		s.subscribe(f.dispatchFn)
		f.pause()
	}
	return s.err
}

// AwaitAll blocks until every signal has fired and returns the first
// non-nil error among them (in argument order).
func (f *Fiber) AwaitAll(sigs ...*Signal) error {
	var firstErr error
	for _, s := range sigs {
		if err := f.Await(s); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Signal is a one-shot completion notification. Fire may be called from
// kernel or fiber context; waiters resume in subscription order.
type Signal struct {
	fired   bool
	err     error
	waiters []func()
}

// NewSignal returns an unfired signal.
func NewSignal() *Signal { return &Signal{} }

// Fired reports whether the signal has fired.
func (s *Signal) Fired() bool { return s.fired }

// Err returns the error the signal fired with (nil before firing).
func (s *Signal) Err() error { return s.err }

func (s *Signal) subscribe(fn func()) { s.waiters = append(s.waiters, fn) }

// Fire marks the signal complete and wakes all waiters. Firing twice is a
// logic error and is ignored except for recording the first error.
func (s *Signal) Fire(err error) {
	if s.fired {
		return
	}
	s.fired = true
	s.err = err
	ws := s.waiters
	s.waiters = nil
	for _, w := range ws {
		w()
	}
}

// String describes the signal state for debugging.
func (s *Signal) String() string {
	if !s.fired {
		return "signal(pending)"
	}
	return fmt.Sprintf("signal(fired err=%v)", s.err)
}

// Mutex is a cooperative mutual-exclusion lock for fibers. Waiters are
// granted the lock in FIFO order.
type Mutex struct {
	locked  bool
	waiters []*Signal
}

// Lock blocks the fiber until the mutex is acquired.
func (m *Mutex) Lock(f *Fiber) {
	if !m.locked {
		m.locked = true
		return
	}
	s := NewSignal()
	m.waiters = append(m.waiters, s)
	_ = f.Await(s)
}

// Unlock releases the mutex, handing it to the oldest waiter if any.
func (m *Mutex) Unlock() {
	if len(m.waiters) == 0 {
		m.locked = false
		return
	}
	next := m.waiters[0]
	m.waiters = append(m.waiters[:0], m.waiters[1:]...)
	next.Fire(nil) // lock stays held, ownership transfers
}

// Locked reports whether the mutex is held.
func (m *Mutex) Locked() bool { return m.locked }
