package sim

import (
	"fmt"
	"os"
	"runtime/debug"
	"sync/atomic"
)

// Direct-dispatch fast path.
//
// Most fiber bodies in the datapath run a short, straight-line step and
// either exit or block exactly once. The classic dispatch pays two channel
// rendezvous (four park/unpark operations) per control transfer into a
// runner goroutine even for a body that never blocks. The fast path
// instead executes a starting fiber's body inline, on the kernel
// goroutine, inside the start event itself: a run-to-completion fiber
// costs zero channel operations and zero goroutines.
//
// Demotion. A body cannot be proven block-free up front, so the fast path
// is optimistic: the moment an inline body blocks (Sleep, Await,
// Mutex.Lock — they all funnel into pause), the fiber demotes. The
// goroutine currently running the body — which *is* the kernel goroutine —
// becomes the fiber's runner and parks, and the kernel role migrates to a
// pooled worker goroutine, which continues the event loop. From then on
// the fiber is indistinguishable from a classic one: it resumes via the
// usual ctl rendezvous, and when it exits, the kernel re-pools the hosting
// worker goroutine.
//
// Invariants the kernel goroutine relies on:
//
//   - One-runner invariant, unchanged: exactly one goroutine of a kernel
//     executes at any moment. Migration transfers the kernel role with a
//     single channel send (the worker's wake), which is also the
//     happens-before edge for the race detector.
//   - The origin goroutine — the one that called Run — never executes a
//     fiber body inline. The first fast start of a run migrates the role
//     to a worker before dispatching; otherwise a demotion would park the
//     Run caller inside a fiber that may never resume (StopRun with
//     parked fibers is routine), and Run could never return. The origin
//     instead waits for the finishing worker's result.
//   - Inline dispatch is gated to depth 1. A demotion inside a nested
//     RunUntil would strand the nested caller's stack under the parked
//     fiber; nested loops therefore always use classic runner dispatch.
//   - A goroutine that loses the kernel role stops touching shared kernel
//     state the moment the role leaves: role loss is recorded in the
//     goroutine-local loopCtx (written only by its owner) before the
//     transfer, never read from shared state afterwards.

// fastOff is the package-wide escape hatch for the direct-dispatch fast
// path. Set SIM_FASTPATH=off (or 0) in the environment, call
// SetFastPath(false), or pass -fastpath=off to hyperloop-bench to force
// every fiber through the classic runner path. Virtual-time behaviour is
// byte-identical either way (TestFastPathTraceIdentical).
var fastOff atomic.Bool

func init() {
	switch os.Getenv("SIM_FASTPATH") {
	case "off", "0", "false":
		fastOff.Store(true)
	}
}

// SetFastPath enables or disables the direct-dispatch fast path for all
// kernels in the process, returning the previous setting.
func SetFastPath(on bool) bool { return !fastOff.Swap(!on) }

// FastPathEnabled reports whether the direct-dispatch fast path is on.
func FastPathEnabled() bool { return !fastOff.Load() }

// kworker is a pooled kernel-worker goroutine: it parks until handed the
// kernel role, serves the event loop (and at most one inline fiber start)
// until the run finishes or the role migrates away again, then parks or
// retires.
type kworker struct {
	k      *Kernel
	wake   chan struct{} // buffered(1): the role handoff
	retire bool          // set (then woken) by drainWorkerPool
}

// getWorker takes a parked worker from the pool or starts one.
func (k *Kernel) getWorker() *kworker {
	if n := len(k.workerFree); n > 0 {
		w := k.workerFree[n-1]
		k.workerFree[n-1] = nil
		k.workerFree = k.workerFree[:n-1]
		return w
	}
	w := &kworker{k: k, wake: make(chan struct{}, 1)}
	go w.main()
	return w
}

// poolWorker parks a worker that lost the kernel role for reuse. Called
// only from kernel context.
func (k *Kernel) poolWorker(w *kworker) {
	k.workerFree = append(k.workerFree, w)
}

// drainWorkerPool retires every parked worker goroutine at top-level Run
// exit, mirroring drainFiberPool: an abandoned kernel leaks nothing.
func (k *Kernel) drainWorkerPool() {
	for i, w := range k.workerFree {
		w.retire = true
		w.wake <- struct{}{}
		k.workerFree[i] = nil
	}
	k.workerFree = k.workerFree[:0]
}

// migrate hands the kernel role to a worker goroutine. When handoff is
// non-nil the worker dispatches that fiber inline before entering the
// event loop (the origin-goroutine case); with nil it continues the loop
// directly (the demotion case). The caller must record role loss in its
// own loopCtx — captured before calling migrate — and stop touching
// kernel state.
func (k *Kernel) migrate(handoff *Fiber) {
	if k.runDone == nil {
		k.runDone = make(chan runResult, 1)
	}
	w := k.getWorker()
	k.migrated = true
	k.curWorker = w
	k.handoff = handoff
	w.wake <- struct{}{}
}

// main is the worker goroutine's loop: park until woken with the kernel
// role (or a retire token), serve until the run finishes or the role
// moves on, repeat.
func (w *kworker) main() {
	for {
		<-w.wake
		if w.retire {
			return
		}
		done, err, pan := w.serve()
		if !done {
			// The role migrated off this goroutine (it hosted a demoted
			// fiber, or its loop lost the role). By the time serve
			// returned, the then-kernel re-pooled this worker; park until
			// the next wake. No shared state is touched here.
			continue
		}
		w.k.finishRun(err, pan)
		return
	}
}

// serve runs the kernel role on this worker: the pending inline handoff,
// if any, then the event loop. It reports done=false when the role
// migrated away (the run continues elsewhere), and captures a panic from
// event or fiber code so main can forward it to the origin goroutine.
func (w *kworker) serve() (done bool, err error, pan any) {
	k := w.k
	var lc loopCtx
	defer func() {
		if p := recover(); p != nil {
			pan = p
			done = true
		}
	}()
	if f := k.handoff; f != nil {
		k.handoff = nil
		k.curLoop = &lc
		k.dispatchInline(f)
		if lc.lost {
			return false, nil, nil
		}
	}
	err = k.loop(&lc)
	return !lc.lost, err, nil
}

// finishRun completes a migrated run on the worker that finished it: exit
// bookkeeping (the origin goroutine skipped its own), then the result
// handoff that unblocks the origin's Run call. On panic the bookkeeping
// still runs first, matching the deferred exitRun of a classic Run.
func (k *Kernel) finishRun(err error, pan any) {
	k.exitRun()
	k.runDone <- runResult{err: err, pan: pan}
}

// startFiber is every fiber's start event. It picks the dispatch mode:
// inline on the kernel goroutine when the fast path allows it, classic
// runner rendezvous otherwise (fast path off, nested run depth, or a
// fiber that already owns a runner goroutine).
func (k *Kernel) startFiber(f *Fiber) {
	if f.hasRunner {
		k.fibers++
		f.dispatch()
		return
	}
	if k.depth != 1 || fastOff.Load() {
		// Gate: attach a runner and dispatch classically. The struct came
		// from the runner-less pool; it keeps its runner from here on.
		f.hasRunner = true
		k.fiberStarts++
		go f.run()
		k.fibers++
		f.dispatch()
		return
	}
	if !k.migrated {
		// Never run a body inline on the origin goroutine (see the
		// invariants above). Hand the role — and this fiber — to a worker;
		// this goroutine's loop sees lost and Run waits on runDone.
		lc := k.curLoop
		k.migrate(f)
		lc.lost = true
		return
	}
	k.dispatchInline(f)
}

// dispatchInline runs a fiber body on the current kernel goroutine. If the
// body blocks, pause demotes the fiber: this goroutine becomes its runner
// and the kernel role migrates (demoted reports that). The deferred
// handler runs in both worlds — still-kernel (plain return or panic) and
// demoted host (body finished long after, on what is now a runner
// goroutine parked-in-dispatch's exclusive window) — and must only decide
// which side it is on via the fiber's own state.
func (k *Kernel) dispatchInline(f *Fiber) (demoted bool) {
	k.fastDispatches++
	k.fibers++
	f.fastActive = true
	fn := f.fn
	f.fn = nil
	defer func() {
		p := recover()
		f.fastActive = false
		f.exited = true
		if p != nil {
			f.pan = p
			f.stack = debug.Stack()
			f.dead = true
		}
		k.fibers--
		demoted = f.demoted
		if demoted {
			// A kernel goroutine is parked in dispatch() waiting for this
			// fiber; wake it. It re-pools this hosting worker, releases
			// the fiber, and re-raises a panic in kernel context.
			f.ctl <- struct{}{}
			return
		}
		// Still on the kernel goroutine.
		if f.dead {
			panic(fmt.Sprintf("sim: fiber %q panicked: %v\n%s", f.name, f.pan, f.stack))
		}
		k.releaseFiberStruct(f)
	}()
	fn(f)
	return
}
