package shard

import "fmt"

// Placement maps shard replicas onto a rack of servers. The simulated rack
// hosts many NICs per server (SR-IOV style): a server contributes its CPU
// schedulers and fabric ports, and each shard replica placed on it gets a
// dedicated NIC+device there (mirrors live at device offset 0, so replicas
// never share a device).

// PlacementPolicy selects how shard replicas spread across servers.
type PlacementPolicy int

const (
	// RoundRobin stripes replicas across all servers uniformly —
	// maximizes spread, so a hot tenant's load lands everywhere.
	RoundRobin PlacementPolicy = iota
	// TenantAffinity packs each tenant's shards onto the same few
	// servers — contains a hot tenant's interference to its own racks.
	TenantAffinity
)

func (p PlacementPolicy) String() string {
	switch p {
	case RoundRobin:
		return "round-robin"
	case TenantAffinity:
		return "tenant-affinity"
	default:
		return fmt.Sprintf("placement(%d)", int(p))
	}
}

// Place assigns each of shards × replicas replica slots to a server index
// in [0, servers). tenantOf maps a shard to its owning tenant and is only
// consulted by TenantAffinity. Replicas of one shard always land on
// distinct servers (requires replicas ≤ servers). The result is
// deterministic: result[shard][replica] = server.
func Place(policy PlacementPolicy, shards, replicas, servers int, tenantOf func(shard int) int) ([][]int, error) {
	if shards < 1 || replicas < 1 || servers < 1 {
		return nil, fmt.Errorf("%w: shards, replicas and servers must be positive", ErrBadArgument)
	}
	if replicas > servers {
		return nil, fmt.Errorf("%w: %d replicas need at least that many servers, have %d", ErrBadArgument, replicas, servers)
	}
	if policy == TenantAffinity && tenantOf == nil {
		return nil, fmt.Errorf("%w: tenant-affinity placement needs tenantOf", ErrBadArgument)
	}
	out := make([][]int, shards)
	for s := 0; s < shards; s++ {
		base := s * replicas
		if policy == TenantAffinity {
			base = tenantOf(s) * replicas
		}
		row := make([]int, replicas)
		for j := 0; j < replicas; j++ {
			row[j] = (base + j) % servers
		}
		out[s] = row
	}
	return out, nil
}
