package shard

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"hyperloop/internal/hyperloop"
	"hyperloop/internal/nvm"
	"hyperloop/internal/rdma"
	"hyperloop/internal/sim"
	"hyperloop/internal/txn"
	"hyperloop/internal/wal"
)

const testDev = 64 * 1024

func testConfig(shards int) Config {
	return Config{Shards: shards, SlotSize: 64, SlotsPerShard: 8, LogSize: 1024}
}

// rig builds a Router over real hyperloop chains, one independent
// 2-replica group per shard.
type rig struct {
	k      *sim.Kernel
	fab    *rdma.Fabric
	router *Router
}

func newRig(t *testing.T, cfg Config, faults *rdma.FaultPlan, opTimeout sim.Duration) *rig {
	t.Helper()
	k := sim.NewKernel(7)
	fab := rdma.NewFabric(k, rdma.DefaultConfig())
	if faults != nil {
		if err := fab.InstallFaultPlan(faults); err != nil {
			t.Fatal(err)
		}
	}
	mirror := cfg.MirrorSize()
	if mirror <= 0 {
		t.Fatalf("bad mirror size %d", mirror)
	}
	r, err := New(cfg, func(id int) (Backend, error) {
		client, err := fab.AddNIC(fmt.Sprintf("cli-%d", id), nvm.NewDevice(fmt.Sprintf("cli-%d", id), testDev))
		if err != nil {
			return nil, err
		}
		var reps []*rdma.NIC
		for j := 0; j < 2; j++ {
			host := fmt.Sprintf("sh%d-r%d", id, j)
			nic, err := fab.AddNIC(host, nvm.NewDevice(host, testDev))
			if err != nil {
				return nil, err
			}
			reps = append(reps, nic)
		}
		gcfg := hyperloop.DefaultConfig(mirror)
		gcfg.OpTimeout = opTimeout
		return hyperloop.Setup(fab, client, reps, gcfg)
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	return &rig{k: k, fab: fab, router: r}
}

func (r *rig) run(t *testing.T, fn func(f *sim.Fiber)) {
	t.Helper()
	r.k.Spawn("shard-test", fn)
	if err := r.k.RunUntil(r.k.Now().Add(30 * sim.Second)); err != nil {
		t.Fatalf("kernel: %v", err)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}, nil); !errors.Is(err, ErrBadArgument) {
		t.Errorf("zero shards: err = %v, want ErrBadArgument", err)
	}
	if _, err := New(Config{Shards: 2, Policy: Range}, nil); !errors.Is(err, ErrBadArgument) {
		t.Errorf("range without keys: err = %v, want ErrBadArgument", err)
	}
	if got := (Config{}).MirrorSize(); got != 0 {
		t.Errorf("invalid config MirrorSize = %d, want 0", got)
	}
	cfg := testConfig(4)
	want := txn.MirrorSizeFor(cfg.LogSize, cfg.SlotsPerShard*cfg.SlotSize)
	if got := cfg.MirrorSize(); got != want {
		t.Errorf("MirrorSize = %d, want %d", got, want)
	}
	if Hash.String() != "hash" || Range.String() != "range" || Policy(9).String() != "policy(9)" {
		t.Error("Policy.String mismatch")
	}
}

func TestNewBuilderFailure(t *testing.T) {
	boom := errors.New("boom")
	closed := 0
	_, err := New(testConfig(3), func(id int) (Backend, error) {
		if id == 2 {
			return nil, boom
		}
		return &fakeBackend{onClose: func() { closed++ }}, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if closed != 2 {
		t.Errorf("closed %d backends on failure, want 2", closed)
	}
}

// fakeBackend satisfies Backend with an in-memory mirror — enough for
// txn.New's initial control-block write (WriteLocal + Write).
type fakeBackend struct {
	mem     [8192]byte
	onClose func()
}

func (b *fakeBackend) GroupSize() int { return 1 }
func (b *fakeBackend) WriteLocal(off int, data []byte) error {
	copy(b.mem[off:], data)
	return nil
}
func (b *fakeBackend) ReadLocal(off, n int) ([]byte, error) {
	out := make([]byte, n)
	copy(out, b.mem[off:])
	return out, nil
}
func (b *fakeBackend) Write(f *sim.Fiber, off, size int, durable bool) error { return nil }
func (b *fakeBackend) Memcpy(f *sim.Fiber, src, dst, size int, durable bool) error {
	copy(b.mem[dst:dst+size], b.mem[src:src+size])
	return nil
}
func (b *fakeBackend) CAS(f *sim.Fiber, off int, old, new uint64, exec []bool) ([]uint64, error) {
	return nil, errors.New("unsupported")
}
func (b *fakeBackend) Flush(f *sim.Fiber, off, size int) error { return nil }
func (b *fakeBackend) Close() {
	if b.onClose != nil {
		b.onClose()
	}
}

func TestShardOfHashAndRange(t *testing.T) {
	hash, err := New(testConfig(8), func(int) (Backend, error) { return &fakeBackend{}, nil })
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 8)
	for k := uint64(0); k < 4096; k++ {
		s := hash.ShardOf(k)
		if s < 0 || s >= 8 {
			t.Fatalf("hash shard %d out of range", s)
		}
		counts[s]++
	}
	for s, n := range counts {
		if n < 256 || n > 768 {
			t.Errorf("hash shard %d got %d of 4096 keys — badly unbalanced", s, n)
		}
	}

	rcfg := testConfig(4)
	rcfg.Policy = Range
	rcfg.Keys = 100
	rng, err := New(rcfg, func(int) (Backend, error) { return &fakeBackend{}, nil })
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct{ key, want uint64 }{
		{0, 0}, {24, 0}, {25, 1}, {99, 3}, {1000, 3}, // ≥ Keys clamps to last
	} {
		if got := rng.ShardOf(tc.key); got != int(tc.want) {
			t.Errorf("range ShardOf(%d) = %d, want %d", tc.key, got, tc.want)
		}
	}
}

func TestPutGetAcrossShards(t *testing.T) {
	r := newRig(t, testConfig(4), nil, 0)
	r.run(t, func(f *sim.Fiber) {
		if got, err := r.router.Get(7); err != nil || got != nil {
			t.Errorf("get of unwritten key = %q, %v; want nil, nil", got, err)
		}
		for k := uint64(0); k < 16; k++ {
			if err := r.router.Put(f, k, []byte(fmt.Sprintf("v%d", k))); err != nil {
				t.Fatalf("put %d: %v", k, err)
			}
		}
		for k := uint64(0); k < 16; k++ {
			want := []byte(fmt.Sprintf("v%d", k))
			got, err := r.router.Get(k)
			if err != nil || !bytes.Equal(got, want) {
				t.Errorf("get %d = %q (%v), want %q", k, got, err, want)
			}
		}
		// Overwrite shrinks the visible value.
		if err := r.router.Put(f, 3, []byte("x")); err != nil {
			t.Fatal(err)
		}
		if got, _ := r.router.Get(3); !bytes.Equal(got, []byte("x")) {
			t.Errorf("overwrite: got %q, want \"x\"", got)
		}
		if err := r.router.Put(f, 4, bytes.Repeat([]byte("z"), 65)); !errors.Is(err, ErrBadArgument) {
			t.Errorf("oversized put err = %v, want ErrBadArgument", err)
		}
		st := r.router.Stats()
		if st.Puts != 17 || st.Gets < 16 {
			t.Errorf("stats = %+v, want 17 puts, ≥16 gets", st)
		}
	})
}

func TestShardFull(t *testing.T) {
	cfg := testConfig(1)
	cfg.SlotsPerShard = 2
	r := newRig(t, cfg, nil, 0)
	r.run(t, func(f *sim.Fiber) {
		if err := r.router.Put(f, 1, []byte("a")); err != nil {
			t.Fatal(err)
		}
		if err := r.router.Put(f, 2, []byte("b")); err != nil {
			t.Fatal(err)
		}
		if err := r.router.Put(f, 3, []byte("c")); !errors.Is(err, ErrShardFull) {
			t.Errorf("err = %v, want ErrShardFull", err)
		}
		// Existing keys still writable.
		if err := r.router.Put(f, 1, []byte("a2")); err != nil {
			t.Errorf("rewrite after full: %v", err)
		}
	})
}

func TestCrossShardTxnCommit(t *testing.T) {
	cfg := testConfig(4)
	cfg.Policy = Range
	cfg.Keys = 4 // one key per shard: keys 0..3 hit shards 0..3
	r := newRig(t, cfg, nil, 0)
	r.run(t, func(f *sim.Fiber) {
		if err := r.router.Txn(f, nil); err != nil {
			t.Errorf("empty txn: %v", err)
		}
		err := r.router.Txn(f, []Write{
			{Key: 3, Data: []byte("three")}, // deliberately out of shard order
			{Key: 0, Data: []byte("zero")},
			{Key: 2, Data: []byte("two")},
		})
		if err != nil {
			t.Fatalf("txn: %v", err)
		}
		for _, tc := range []struct {
			key  uint64
			want string
		}{{0, "zero"}, {2, "two"}, {3, "three"}} {
			got, err := r.router.Get(tc.key)
			if err != nil || string(got) != tc.want {
				t.Errorf("get %d = %q (%v), want %q", tc.key, got, err, tc.want)
			}
		}
		if got, _ := r.router.Get(1); got != nil {
			t.Errorf("untouched shard has data: %q", got)
		}
		// Single-shard txn counts as commit but not cross-shard.
		if err := r.router.Txn(f, []Write{{Key: 1, Data: []byte("one")}}); err != nil {
			t.Fatal(err)
		}
		st := r.router.Stats()
		if st.Commits != 2 || st.CrossShard != 1 || st.Aborts != 0 {
			t.Errorf("stats = %+v, want 2 commits, 1 cross-shard, 0 aborts", st)
		}
		if err := r.router.Txn(f, []Write{{Key: 0, Data: bytes.Repeat([]byte("z"), 65)}}); !errors.Is(err, ErrBadArgument) {
			t.Errorf("oversized txn write err = %v, want ErrBadArgument", err)
		}
	})
}

func TestCrossShardTxnAbortUnderFault(t *testing.T) {
	cfg := testConfig(2)
	cfg.Policy = Range
	cfg.Keys = 2
	faults := &rdma.FaultPlan{
		NICs: []rdma.NICFault{{Host: "sh1-r1", At: sim.Time(5 * sim.Microsecond), Down: true}},
	}
	r := newRig(t, cfg, faults, 200*sim.Microsecond)
	r.run(t, func(f *sim.Fiber) {
		f.Sleep(50 * sim.Microsecond)
		err := r.router.Txn(f, []Write{
			{Key: 0, Data: []byte("healthy")},
			{Key: 1, Data: []byte("faulted")},
		})
		if !errors.Is(err, txn.ErrAborted) {
			t.Fatalf("txn err = %v, want txn.ErrAborted", err)
		}
		if st := r.router.Stats(); st.Aborts != 1 || st.Commits != 0 {
			t.Errorf("stats = %+v, want 1 abort, 0 commits", st)
		}
		// Healthy shard rolled back: unlocked, no data visible.
		if locked, err := r.router.Shard(0).Store.Locked(); err != nil || locked {
			t.Errorf("shard 0 lock leaked (locked=%v, err=%v)", locked, err)
		}
		if got, _ := r.router.Get(0); got != nil {
			t.Errorf("aborted write visible: %q", got)
		}
		// Healthy shard still serves traffic.
		if err := r.router.Txn(f, []Write{{Key: 0, Data: []byte("retry")}}); err != nil {
			t.Errorf("healthy shard txn after abort: %v", err)
		}
		if got, _ := r.router.Get(0); string(got) != "retry" {
			t.Errorf("get after retry = %q", got)
		}
	})
}

func TestRouterRecover(t *testing.T) {
	cfg := testConfig(2)
	cfg.Policy = Range
	cfg.Keys = 2
	r := newRig(t, cfg, nil, 0)
	r.run(t, func(f *sim.Fiber) {
		// A coordinator prepares shard 0 and crashes before commit.
		tx := txn.BeginDist([]txn.Participant{{
			Store:   r.router.Shard(0).Store,
			Entries: []wal.Entry{{Off: 0, Data: []byte("orphan")}},
		}})
		if err := tx.Prepare(f); err != nil {
			t.Fatal(err)
		}
		rs, err := r.router.Recover(f)
		if err != nil {
			t.Fatalf("recover: %v", err)
		}
		if rs.Back != 1 || rs.Forward != 0 {
			t.Errorf("recover stats = %+v, want 1 rolled back", rs)
		}
		if locked, _ := r.router.Shard(0).Store.Locked(); locked {
			t.Error("lock leaked after recover")
		}
		// Idempotent on a clean router.
		if rs, err := r.router.Recover(f); err != nil || rs != (RecoverStats{}) {
			t.Errorf("second recover = %+v, %v; want zero stats, nil", rs, err)
		}
	})
}

func TestPlace(t *testing.T) {
	if RoundRobin.String() != "round-robin" || TenantAffinity.String() != "tenant-affinity" ||
		PlacementPolicy(9).String() != "placement(9)" {
		t.Error("PlacementPolicy.String mismatch")
	}
	if _, err := Place(RoundRobin, 0, 1, 1, nil); !errors.Is(err, ErrBadArgument) {
		t.Errorf("zero shards: %v", err)
	}
	if _, err := Place(RoundRobin, 1, 3, 2, nil); !errors.Is(err, ErrBadArgument) {
		t.Errorf("replicas > servers: %v", err)
	}
	if _, err := Place(TenantAffinity, 1, 1, 1, nil); !errors.Is(err, ErrBadArgument) {
		t.Errorf("affinity without tenantOf: %v", err)
	}

	rr, err := Place(RoundRobin, 6, 2, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	servers := map[int]bool{}
	for s, row := range rr {
		if len(row) != 2 {
			t.Fatalf("shard %d has %d replicas", s, len(row))
		}
		if row[0] == row[1] {
			t.Errorf("shard %d replicas share server %d", s, row[0])
		}
		for _, srv := range row {
			if srv < 0 || srv >= 4 {
				t.Errorf("shard %d placed on bad server %d", s, srv)
			}
			servers[srv] = true
		}
	}
	if len(servers) != 4 {
		t.Errorf("round-robin used %d of 4 servers", len(servers))
	}

	tenantOf := func(s int) int { return s % 3 }
	aff, err := Place(TenantAffinity, 9, 2, 8, tenantOf)
	if err != nil {
		t.Fatal(err)
	}
	for s, row := range aff {
		// Same tenant ⇒ same servers.
		peer := (s + 3) % 9 // next shard of the same tenant
		if tenantOf(peer) == tenantOf(s) {
			if aff[peer][0] != row[0] || aff[peer][1] != row[1] {
				t.Errorf("tenant %d shards %d/%d placed apart: %v vs %v",
					tenantOf(s), s, peer, row, aff[peer])
			}
		}
		if row[0] == row[1] {
			t.Errorf("shard %d replicas share server %d", s, row[0])
		}
	}
}
