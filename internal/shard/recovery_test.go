package shard

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"hyperloop/internal/hyperloop"
	"hyperloop/internal/nvm"
	"hyperloop/internal/rdma"
	"hyperloop/internal/sim"
	"hyperloop/internal/txn"
)

// newLoggedRig builds a rig whose router has a coordinator commit log on
// its own 2-replica group, mirroring NewShardedCluster's wiring.
func newLoggedRig(t *testing.T, cfg Config, faults *rdma.FaultPlan, opTimeout sim.Duration) *rig {
	t.Helper()
	k := sim.NewKernel(7)
	fab := rdma.NewFabric(k, rdma.DefaultConfig())
	if faults != nil {
		if err := fab.InstallFaultPlan(faults); err != nil {
			t.Fatal(err)
		}
	}
	if err := cfg.fill(); err != nil {
		t.Fatal(err)
	}
	clLog := 256
	clData := txn.CommitLogSizeFor(8, cfg.Shards)
	clMirror := txn.MirrorSizeFor(clLog, clData)
	client, err := fab.AddNIC("cli-coord", nvm.NewDevice("cli-coord", testDev))
	if err != nil {
		t.Fatal(err)
	}
	var reps []*rdma.NIC
	for j := 0; j < 2; j++ {
		host := fmt.Sprintf("coord-r%d", j)
		nic, err := fab.AddNIC(host, nvm.NewDevice(host, testDev))
		if err != nil {
			t.Fatal(err)
		}
		reps = append(reps, nic)
	}
	gcfg := hyperloop.DefaultConfig(clMirror)
	gcfg.OpTimeout = opTimeout
	g, err := hyperloop.Setup(fab, client, reps, gcfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Close)
	st, err := txn.New(g, txn.Config{LogSize: clLog, DataSize: clData, LockToken: cfg.LockToken})
	if err != nil {
		t.Fatal(err)
	}
	cfg.CoordLog = st

	mirror := cfg.MirrorSize()
	r, err := New(cfg, func(id int) (Backend, error) {
		client, err := fab.AddNIC(fmt.Sprintf("cli-%d", id), nvm.NewDevice(fmt.Sprintf("cli-%d", id), testDev))
		if err != nil {
			return nil, err
		}
		var reps []*rdma.NIC
		for j := 0; j < 2; j++ {
			host := fmt.Sprintf("sh%d-r%d", id, j)
			nic, err := fab.AddNIC(host, nvm.NewDevice(host, testDev))
			if err != nil {
				return nil, err
			}
			reps = append(reps, nic)
		}
		sgcfg := hyperloop.DefaultConfig(mirror)
		sgcfg.OpTimeout = opTimeout
		return hyperloop.Setup(fab, client, reps, sgcfg)
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	return &rig{k: k, fab: fab, router: r}
}

// sweepConfig maps key i → shard i so a span-S transaction touches
// exactly shards 0..S-1, each write landing in slot 0 (data offset 0).
func sweepConfig(shards int) Config {
	cfg := testConfig(shards)
	cfg.Policy = Range
	cfg.Keys = uint64(shards)
	return cfg
}

// TestCrashPointSweep kills the coordinator after every protocol step for
// transactions spanning 1, 2 and 4 shards, runs Router.Recover, and
// asserts the outcome is all-or-nothing at the durable level with no
// leaked group locks and a drained commit log; then retries the
// transaction and checks it commits and is counted exactly once.
func TestCrashPointSweep(t *testing.T) {
	for _, span := range []int{1, 2, 4} {
		// Steps per transaction: (lock, append) per shard, log-commit,
		// (execute, unlock) per shard, log-truncate.
		totalSteps := 4*span + 2
		commitPoint := 2*span + 1 // the step at which the record is durable
		for kill := 1; kill <= totalSteps; kill++ {
			kill := kill
			t.Run(fmt.Sprintf("span%d/kill%d", span, kill), func(t *testing.T) {
				r := newLoggedRig(t, sweepConfig(4), nil, 0)
				r.run(t, func(f *sim.Fiber) {
					writes := make([]Write, span)
					for i := range writes {
						writes[i] = Write{Key: uint64(i), Data: []byte(fmt.Sprintf("v%d", i))}
					}
					step := 0
					r.router.SetTxnStepHook(func(s txn.Step, participant int) error {
						step++
						if step == kill {
							return txn.ErrCoordinatorCrash
						}
						return nil
					})
					err := r.router.Txn(f, writes)
					if kill == totalSteps {
						// The crash fired after the last protocol action;
						// durability is already decided either way.
						if !errors.Is(err, txn.ErrCoordinatorCrash) {
							t.Fatalf("txn err = %v", err)
						}
					} else if !errors.Is(err, txn.ErrCoordinatorCrash) {
						t.Fatalf("txn err = %v, want injected crash", err)
					}
					if st := r.router.Stats(); st.Commits != 0 || st.Aborts != 0 || st.InDoubt != 0 {
						t.Errorf("crashed txn was counted: %+v", st)
					}

					// The "restarted" coordinator recovers.
					r.router.SetTxnStepHook(nil)
					rs, err := r.router.Recover(f)
					if err != nil {
						t.Fatalf("recover: %v", err)
					}
					wantCommitted := kill >= commitPoint
					if wantCommitted && rs.Back != 0 {
						t.Errorf("recover rolled %d shards back past the commit point (stats %+v)", rs.Back, rs)
					}
					if !wantCommitted && rs.Forward != 0 {
						t.Errorf("recover rolled %d shards forward before the commit point (stats %+v)", rs.Forward, rs)
					}

					// All-or-nothing at the durable level: every shard shows
					// its write, or none does.
					for i := 0; i < span; i++ {
						want := make([]byte, 2)
						if wantCommitted {
							want = []byte(fmt.Sprintf("v%d", i))
						}
						got, err := r.router.Shard(i).Store.ReadData(0, len(want))
						if err != nil || !bytes.Equal(got, want) {
							t.Errorf("shard %d data = %q (%v), want %q", i, got, err, want)
						}
					}
					// No leaked locks, no pending log records, no live
					// commit records.
					for i := 0; i < r.router.Shards(); i++ {
						st := r.router.Shard(i).Store
						if locked, err := st.Locked(); err != nil || locked {
							t.Errorf("shard %d: lock leaked (locked=%v, err=%v)", i, locked, err)
						}
						if used, err := st.LogUsed(); err != nil || used != 0 {
							t.Errorf("shard %d: log used = %d (%v)", i, used, err)
						}
					}
					if recs, err := r.router.CommitLog().Records(); err != nil || len(recs) != 0 {
						t.Errorf("commit log not drained: %v (%v)", recs, err)
					}
					// Idempotent.
					if rs, err := r.router.Recover(f); err != nil || rs != (RecoverStats{}) {
						t.Errorf("second recover = %+v, %v", rs, err)
					}

					// The client retries the whole transaction; it must
					// commit and be the only counted outcome.
					if err := r.router.Txn(f, writes); err != nil {
						t.Fatalf("retry after recover: %v", err)
					}
					st := r.router.Stats()
					if st.Commits != 1 || st.Aborts != 0 || st.InDoubt != 0 {
						t.Errorf("retried txn stats = %+v, want exactly one commit", st)
					}
					for i := 0; i < span; i++ {
						want := fmt.Sprintf("v%d", i)
						if got, err := r.router.Get(uint64(i)); err != nil || string(got) != want {
							t.Errorf("get(%d) after retry = %q (%v), want %q", i, got, err, want)
						}
					}
				})
			})
		}
	}
}

// TestInDoubtRecoveredThenRetriedCountedOnce produces an in-doubt outcome
// (an injected group failure after participant 1 executed but before it
// unlocked — past the commit point), then recovers and retries: the
// transaction must be counted exactly once as InDoubt and exactly once as
// a commit on retry, never as an abort.
func TestInDoubtRecoveredThenRetriedCountedOnce(t *testing.T) {
	r := newLoggedRig(t, sweepConfig(2), nil, 0)
	r.run(t, func(f *sim.Fiber) {
		writes := []Write{
			{Key: 0, Data: []byte("aa")},
			{Key: 1, Data: []byte("bb")},
		}
		r.router.SetTxnStepHook(func(s txn.Step, participant int) error {
			if s == txn.StepExecute && participant == 1 {
				return fmt.Errorf("%w: injected mid-commit group failure", txn.ErrInDoubt)
			}
			return nil
		})
		err := r.router.Txn(f, writes)
		if !errors.Is(err, txn.ErrInDoubt) {
			t.Fatalf("txn err = %v, want txn.ErrInDoubt", err)
		}
		st := r.router.Stats()
		if st.InDoubt != 1 || st.Commits != 0 || st.Aborts != 0 {
			t.Fatalf("in-doubt stats = %+v, want exactly one InDoubt", st)
		}

		// Recover: the commit record names both shards, so the still-locked
		// one rolls forward; nothing rolls back.
		r.router.SetTxnStepHook(nil)
		rs, err := r.router.Recover(f)
		if err != nil {
			t.Fatalf("recover: %v", err)
		}
		if rs.Back != 0 || rs.Records == 0 {
			t.Errorf("recover stats = %+v, want roll-forward only", rs)
		}
		for i := 0; i < 2; i++ {
			st := r.router.Shard(i).Store
			if locked, err := st.Locked(); err != nil || locked {
				t.Errorf("shard %d: lock leaked (locked=%v, err=%v)", i, locked, err)
			}
		}
		want := map[int]string{0: "aa", 1: "bb"}
		for i, w := range want {
			got, err := r.router.Shard(i).Store.ReadData(0, len(w))
			if err != nil || string(got) != w {
				t.Errorf("shard %d data = %q (%v), want %q", i, got, err, w)
			}
		}

		// Retry: a fresh transaction, counted as the one commit.
		if err := r.router.Txn(f, writes); err != nil {
			t.Fatalf("retry: %v", err)
		}
		st = r.router.Stats()
		if st.InDoubt != 1 || st.Commits != 1 || st.Aborts != 0 {
			t.Errorf("final stats = %+v, want {InDoubt:1 Commits:1 Aborts:0}", st)
		}
	})
}

func TestGetCountsMisses(t *testing.T) {
	r := newRig(t, testConfig(2), nil, 0)
	r.run(t, func(f *sim.Fiber) {
		if got, err := r.router.Get(99); err != nil || got != nil {
			t.Fatalf("get of unwritten key = %q, %v", got, err)
		}
		if err := r.router.Put(f, 1, []byte("x")); err != nil {
			t.Fatal(err)
		}
		if _, err := r.router.Get(1); err != nil {
			t.Fatal(err)
		}
		if _, err := r.router.Get(98); err != nil {
			t.Fatal(err)
		}
		st := r.router.Stats()
		if st.Gets != 3 || st.Misses != 2 {
			t.Errorf("stats = %+v, want Gets=3 Misses=2", st)
		}
	})
}

// TestAbortReleasesFreshSlots drives the slot-directory leak: a stream of
// aborting transactions on new keys must not consume SlotsPerShard
// capacity, and reclaimed slots are reused by later writes.
func TestAbortReleasesFreshSlots(t *testing.T) {
	cfg := testConfig(1)
	cfg.SlotsPerShard = 4
	r := newLoggedRig(t, cfg, nil, 0)
	r.run(t, func(f *sim.Fiber) {
		// Aborting far more transactions than there are slots: every
		// abort must hand its fresh slot back.
		crash := errors.New("validation failure")
		for i := 0; i < 3*cfg.SlotsPerShard; i++ {
			key := uint64(1000 + i)
			// Oversized value fails validation after the slot allocation.
			err := r.router.Txn(f, []Write{
				{Key: key, Data: []byte("fits")},
				{Key: key + 100000, Data: make([]byte, cfg.SlotSize+1)},
			})
			if !errors.Is(err, ErrBadArgument) {
				t.Fatalf("txn %d: err = %v, want ErrBadArgument (%v)", i, err, crash)
			}
		}
		// All capacity is still available.
		for i := 0; i < cfg.SlotsPerShard; i++ {
			if err := r.router.Put(f, uint64(i), []byte("keep")); err != nil {
				t.Fatalf("put %d after aborts: %v", i, err)
			}
		}
		// And now the shard is genuinely full.
		if err := r.router.Put(f, 77, []byte("x")); !errors.Is(err, ErrShardFull) {
			t.Errorf("put into full shard: %v, want ErrShardFull", err)
		}
	})
}

// TestPreparedAbortReleasesFreshSlots covers the 2PC abort path: a
// prepare that fails (commit log full) must release slots allocated for
// the transaction's new keys.
func TestPreparedAbortReleasesFreshSlots(t *testing.T) {
	cfg := testConfig(1)
	cfg.SlotsPerShard = 4
	r := newLoggedRig(t, cfg, nil, 0)
	r.run(t, func(f *sim.Fiber) {
		// Exhaust the commit log so phase two's record append fails and
		// the transaction aborts after a successful prepare.
		cl := r.router.CommitLog()
		for i := 0; i < cl.Slots(); i++ {
			if _, err := cl.Append(f, 999, []int{0}); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 3*cfg.SlotsPerShard; i++ {
			err := r.router.Txn(f, []Write{{Key: uint64(2000 + i), Data: []byte("x")}})
			if !errors.Is(err, txn.ErrAborted) {
				t.Fatalf("txn %d: err = %v, want txn.ErrAborted", i, err)
			}
		}
		st := r.router.Stats()
		if st.Aborts != uint64(3*cfg.SlotsPerShard) {
			t.Errorf("aborts = %d, want %d", st.Aborts, 3*cfg.SlotsPerShard)
		}
		// Drain the foreign records and confirm full capacity remains.
		recs, err := cl.Records()
		if err != nil {
			t.Fatal(err)
		}
		for _, rec := range recs {
			if err := cl.Truncate(f, rec.TxnID); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < cfg.SlotsPerShard; i++ {
			if err := r.router.Put(f, uint64(i), []byte("keep")); err != nil {
				t.Fatalf("put %d after aborts: %v", i, err)
			}
		}
	})
}
