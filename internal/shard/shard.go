// Package shard partitions a keyspace across many independent replication
// groups. Each shard owns its own protocol group — its own chain, NICs and
// fault domain — and a client-side Router maps keys to shards, serves
// single-key reads and durable writes, and runs cross-shard transactions
// with internal/txn's two-phase commit over the per-shard group locks.
//
// Consistency contract: operations within one shard are strictly
// serializable (they ride the shard's single replication group, §4 of the
// paper). Cross-shard transactions are atomic and serializable via 2PC
// with lock ordering by shard ID ("strong partition serializable":
// serializable globally, strictly so per partition).
package shard

import (
	"errors"
	"fmt"
	"sort"

	"hyperloop/internal/sim"
	"hyperloop/internal/txn"
	"hyperloop/internal/wal"
)

// Canonical error sentinels, matching the internal/protocol convention.
var (
	// ErrBadArgument reports a key, payload or config outside the router's
	// contract.
	ErrBadArgument = errors.New("shard: bad argument")
	// ErrShardFull reports a shard whose slot directory is exhausted: more
	// distinct keys landed on it than SlotsPerShard.
	ErrShardFull = errors.New("shard: out of slots")
)

// Policy selects how keys map to shards.
type Policy int

const (
	// Hash spreads keys uniformly with a 64-bit mix — the default, robust
	// to any key distribution.
	Hash Policy = iota
	// Range splits [0, Keys) into contiguous runs, one per shard —
	// preserves key locality, exposes skew.
	Range
)

func (p Policy) String() string {
	switch p {
	case Hash:
		return "hash"
	case Range:
		return "range"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Config sizes a Router and the per-shard stores beneath it.
type Config struct {
	// Shards is the number of partitions (required, ≥ 1).
	Shards int
	// Policy maps keys to shards (default Hash). Range requires Keys.
	Policy Policy
	// Keys is the keyspace size [0, Keys); required for Range, advisory
	// for Hash.
	Keys uint64
	// SlotSize is the fixed per-key value capacity in the shard's data
	// region (default 128).
	SlotSize int
	// SlotsPerShard caps distinct keys per shard (default 64).
	SlotsPerShard int
	// LogSize is each shard store's WAL ring size (default 4096).
	LogSize int
	// LockToken identifies this router in the per-shard group lock words
	// (default 1).
	LockToken uint64
	// CoordLog, when set, is the coordinator's own replicated store used
	// as the 2PC commit log: Txn durably appends a commit record before
	// entering phase two and Recover presumes *commit* for transactions
	// with a record, rolling prepared participants forward instead of
	// aborting them. The store must sit on its own replication group
	// (never a shard's) with DataSize ≥ txn.CommitLogSizeFor(slots,
	// Shards). When nil, recovery presumes abort for everything — the
	// pre-commit-log behavior, which can roll back half of a transaction
	// whose coordinator crashed mid-Commit.
	CoordLog *txn.Store
}

func (c *Config) fill() error {
	if c.Shards < 1 {
		return fmt.Errorf("%w: need at least one shard", ErrBadArgument)
	}
	if c.SlotSize <= 0 {
		c.SlotSize = 128
	}
	if c.SlotsPerShard <= 0 {
		c.SlotsPerShard = 64
	}
	if c.LogSize <= 0 {
		c.LogSize = 4096
	}
	if c.LockToken == 0 {
		c.LockToken = 1
	}
	if c.Policy == Range && c.Keys == 0 {
		return fmt.Errorf("%w: range policy needs Keys", ErrBadArgument)
	}
	return nil
}

// MirrorSize returns the mirror footprint each shard's group must provide
// for this config. Callers size their protocol groups with it before
// building the Router.
func (c Config) MirrorSize() int {
	if err := c.fill(); err != nil {
		return 0
	}
	return txn.MirrorSizeFor(c.LogSize, c.SlotsPerShard*c.SlotSize)
}

// Backend is the replication group one shard runs on: the txn.Replicator
// surface plus teardown. *hyperloop.Group and every internal/protocol
// strategy satisfy it.
type Backend interface {
	txn.Replicator
	Close()
}

// slot is one key's home in a shard's data region.
type slot struct {
	idx int // slot index, data offset = idx*SlotSize
	n   int // bytes written by the last Put
}

// Shard is one partition: a replication group, the transactional store on
// top of it, and the client-side slot directory.
type Shard struct {
	ID      int
	Backend Backend
	Store   *txn.Store

	dir  map[uint64]*slot
	next int
	free []int // slot indexes returned by aborted first-touch allocations
}

// slotFor returns key's slot, allocating one on first touch — reclaimed
// slots first, then the next never-used index. fresh reports a first
// touch, so callers can release the slot if the operation aborts.
func (s *Shard) slotFor(key uint64, size int) (sl *slot, fresh bool, err error) {
	if sl, ok := s.dir[key]; ok {
		return sl, false, nil
	}
	idx := -1
	if n := len(s.free); n > 0 {
		idx = s.free[n-1]
		s.free = s.free[:n-1]
	} else if s.next < size {
		idx = s.next
		s.next++
	}
	if idx < 0 {
		return nil, false, fmt.Errorf("%w: shard %d at %d keys", ErrShardFull, s.ID, s.next)
	}
	sl = &slot{idx: idx}
	s.dir[key] = sl
	return sl, true, nil
}

// release returns a freshly allocated slot to the shard after the
// operation that allocated it aborted, so a stream of aborting
// transactions cannot permanently consume SlotsPerShard capacity.
func (s *Shard) release(key uint64) {
	sl, ok := s.dir[key]
	if !ok {
		return
	}
	delete(s.dir, key)
	s.free = append(s.free, sl.idx)
}

// Write is one key update inside a (possibly cross-shard) transaction.
type Write struct {
	Key  uint64
	Data []byte
}

// Stats counts router-level outcomes.
type Stats struct {
	Puts, Gets uint64 // single-key operations served (Gets counts misses too)
	Misses     uint64 // Gets of never-written keys
	Commits    uint64 // transactions committed
	Aborts     uint64 // transactions aborted (2PC prepare or commit-record failures)
	InDoubt    uint64 // transactions left in doubt mid-commit (txn.ErrInDoubt)
	CrossShard uint64 // committed transactions spanning >1 shard
}

// Router maps keys onto shards and drives operations against them. A
// Router is driven from simulation fibers on one kernel; like the groups
// beneath it, it is not safe for concurrent use from real OS threads.
type Router struct {
	cfg    Config
	shards []*Shard
	clog   *txn.CommitLog // nil unless cfg.CoordLog was provided
	hook   func(txn.Step, int) error
	stats  Stats
}

// New builds a Router with cfg.Shards shards, calling build once per shard
// to produce its replication group. Each group must be independent (its
// own NICs and device — mirrors start at device offset 0, so groups cannot
// share) and sized to at least cfg.MirrorSize().
func New(cfg Config, build func(shardID int) (Backend, error)) (*Router, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	r := &Router{cfg: cfg}
	if cfg.CoordLog != nil {
		cl, err := txn.NewCommitLog(cfg.CoordLog, cfg.Shards)
		if err != nil {
			return nil, fmt.Errorf("coordinator log: %w", err)
		}
		r.clog = cl
	}
	for i := 0; i < cfg.Shards; i++ {
		b, err := build(i)
		if err != nil {
			r.Close()
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		st, err := txn.New(b, txn.Config{
			LogSize:   cfg.LogSize,
			DataSize:  cfg.SlotsPerShard * cfg.SlotSize,
			LockToken: cfg.LockToken,
		})
		if err != nil {
			b.Close()
			r.Close()
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		r.shards = append(r.shards, &Shard{
			ID:      i,
			Backend: b,
			Store:   st,
			dir:     make(map[uint64]*slot),
		})
	}
	return r, nil
}

// Shards returns the number of partitions.
func (r *Router) Shards() int { return len(r.shards) }

// Shard returns partition i (experiments and tests reach through it for
// per-shard stores and backends).
func (r *Router) Shard(i int) *Shard { return r.shards[i] }

// Stats returns a snapshot of router-level counters.
func (r *Router) Stats() Stats { return r.stats }

// CommitLog returns the coordinator commit log, or nil when the router
// runs presumed-abort-only (no Config.CoordLog).
func (r *Router) CommitLog() *txn.CommitLog { return r.clog }

// SetTxnStepHook installs a coordinator step hook on every transaction
// Txn drives — the deterministic fault-injection surface crash-point
// sweeps use. A hook returning txn.ErrCoordinatorCrash makes Txn return
// it verbatim with no cleanup and no stats accounting, leaving shards
// exactly as a mid-protocol coordinator crash would; Recover resolves
// them. Pass nil to remove the hook.
func (r *Router) SetTxnStepHook(fn func(s txn.Step, participant int) error) { r.hook = fn }

// mix64 is the splitmix64 finalizer — a full-avalanche 64-bit mix, so
// sequential keys spread uniformly across shards.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// ShardOf returns the shard index owning key. Deterministic: a pure
// function of (key, Shards, Policy, Keys).
func (r *Router) ShardOf(key uint64) int {
	n := uint64(len(r.shards))
	switch r.cfg.Policy {
	case Range:
		width := (r.cfg.Keys + n - 1) / n
		s := key / width
		if s >= n {
			s = n - 1
		}
		return int(s)
	default:
		return int(mix64(key) % n)
	}
}

// Put durably writes data as key's value: replicated to every member of
// the owning shard's group before it returns. len(data) must fit SlotSize.
func (r *Router) Put(f *sim.Fiber, key uint64, data []byte) error {
	if len(data) > r.cfg.SlotSize {
		return fmt.Errorf("%w: value %d exceeds slot size %d", ErrBadArgument, len(data), r.cfg.SlotSize)
	}
	sh := r.shards[r.ShardOf(key)]
	sl, fresh, err := sh.slotFor(key, r.cfg.SlotsPerShard)
	if err != nil {
		return err
	}
	if err := sh.Store.WriteData(f, sl.idx*r.cfg.SlotSize, data); err != nil {
		if fresh {
			sh.release(key)
		}
		return err
	}
	sl.n = len(data)
	r.stats.Puts++
	return nil
}

// Get returns key's current value from the owning shard's local mirror, or
// nil if the key has never been written.
func (r *Router) Get(key uint64) ([]byte, error) {
	r.stats.Gets++
	sh := r.shards[r.ShardOf(key)]
	sl, ok := sh.dir[key]
	if !ok || sl.n == 0 {
		r.stats.Misses++
		return nil, nil
	}
	return sh.Store.ReadData(sl.idx*r.cfg.SlotSize, sl.n)
}

// Txn atomically applies writes, which may span shards. Writes are grouped
// per shard and the participant list is sorted by shard ID — the global
// lock order that keeps concurrent routers deadlock-free — then driven
// through txn's two-phase commit. On abort (some shard's prepare failed,
// or the commit record could not be written) the error wraps
// txn.ErrAborted, no write took effect, and slots freshly allocated for
// this transaction are released; on txn.ErrInDoubt the transaction may
// yet commit, so allocations are kept and Recover resolves the outcome.
func (r *Router) Txn(f *sim.Fiber, writes []Write) error {
	if len(writes) == 0 {
		return nil
	}
	byShard := make(map[int][]wal.Entry)
	type allocation struct {
		sh  *Shard
		key uint64
	}
	var fresh []allocation
	release := func() {
		for _, a := range fresh {
			a.sh.release(a.key)
		}
	}
	for _, w := range writes {
		if len(w.Data) > r.cfg.SlotSize {
			release()
			return fmt.Errorf("%w: value %d exceeds slot size %d", ErrBadArgument, len(w.Data), r.cfg.SlotSize)
		}
		sh := r.shards[r.ShardOf(w.Key)]
		sl, isNew, err := sh.slotFor(w.Key, r.cfg.SlotsPerShard)
		if err != nil {
			release()
			return err
		}
		if isNew {
			fresh = append(fresh, allocation{sh, w.Key})
		}
		byShard[sh.ID] = append(byShard[sh.ID], wal.Entry{Off: sl.idx * r.cfg.SlotSize, Data: w.Data})
	}
	ids := make([]int, 0, len(byShard))
	for id := range byShard {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	parts := make([]txn.Participant, len(ids))
	for i, id := range ids {
		parts[i] = txn.Participant{Store: r.shards[id].Store, Entries: byShard[id]}
	}
	tx, err := txn.BeginDistLogged(parts, r.clog, ids)
	if err != nil {
		release()
		return err
	}
	if r.hook != nil {
		tx.SetStepHook(r.hook)
	}
	if err := tx.Prepare(f); err != nil {
		if errors.Is(err, txn.ErrCoordinatorCrash) {
			// The injected crash killed the coordinator mid-protocol:
			// leave every shard exactly as the crash did, no accounting.
			return err
		}
		r.stats.Aborts++
		release()
		return err
	}
	if err := tx.Commit(f); err != nil {
		switch {
		case errors.Is(err, txn.ErrCoordinatorCrash):
		case errors.Is(err, txn.ErrAborted):
			// The commit record could not be written; every participant
			// was rolled back before any executed.
			r.stats.Aborts++
			release()
		case errors.Is(err, txn.ErrInDoubt):
			r.stats.InDoubt++
		}
		return err
	}
	// The commit drained each participant's log (ExecuteAll), so the
	// post-commit value lengths are visible to Get.
	for _, w := range writes {
		r.shards[r.ShardOf(w.Key)].dir[w.Key].n = len(w.Data)
	}
	r.stats.Commits++
	if len(ids) > 1 {
		r.stats.CrossShard++
	}
	return nil
}

// RecoverStats reports what one Recover pass resolved.
type RecoverStats struct {
	// Forward counts shards rolled forward: prepared participants named
	// by a durable commit record, whose pending records were executed.
	Forward int
	// Back counts shards rolled back: token-locked participants with no
	// commit record (presumed abort).
	Back int
	// Records counts commit records resolved and truncated.
	Records int
}

// Recover resolves orphaned transactions on every shard after a
// coordinator crash. The coordinator commit log (when configured) is
// consulted first: a token-locked shard named by a commit record is
// rolled *forward* with txn.RecoverCommit — the record is only written
// once every participant prepared, so the transaction is committed and
// executing its prepared record finishes the job. Token-locked shards
// named by no record roll back with txn.RecoverAbort (presumed abort,
// sound because the record is written before any participant executes).
// Once every shard is resolved the records are truncated; if any shard
// failed to recover, its records are kept for the next pass.
//
// Recover repairs durable state, not the client-side key directory: keys
// whose transaction was rolled forward stay invisible to Get on this
// router until rewritten (their slots remain allocated), exactly as a
// restarted coordinator with a cold directory would see them.
func (r *Router) Recover(f *sim.Fiber) (RecoverStats, error) {
	var rs RecoverStats
	var errs []error
	committed := make(map[int]bool)
	var recs []txn.CommitRecord
	if r.clog != nil {
		var err error
		recs, err = r.clog.Records()
		if err != nil {
			return rs, fmt.Errorf("coordinator log scan: %w", err)
		}
		for _, rec := range recs {
			if rec.Token != r.cfg.LockToken {
				continue
			}
			for _, sid := range rec.Shards {
				committed[sid] = true
			}
		}
	}
	for _, sh := range r.shards {
		if committed[sh.ID] {
			_, ok, err := txn.RecoverCommit(f, sh.Store, r.cfg.LockToken)
			if err != nil {
				errs = append(errs, fmt.Errorf("shard %d: roll forward: %w", sh.ID, err))
				continue
			}
			if ok {
				rs.Forward++
			}
			continue
		}
		ok, err := txn.RecoverAbort(f, sh.Store, r.cfg.LockToken)
		if err != nil {
			errs = append(errs, fmt.Errorf("shard %d: %w", sh.ID, err))
			continue
		}
		if ok {
			rs.Back++
		}
	}
	if r.clog != nil && len(errs) == 0 {
		for _, rec := range recs {
			if rec.Token != r.cfg.LockToken {
				continue
			}
			if err := r.clog.Truncate(f, rec.TxnID); err != nil {
				errs = append(errs, fmt.Errorf("txn %d: record truncate: %w", rec.TxnID, err))
				continue
			}
			rs.Records++
		}
	}
	return rs, errors.Join(errs...)
}

// Close tears down every shard's replication group.
func (r *Router) Close() {
	for _, sh := range r.shards {
		if sh.Backend != nil {
			sh.Backend.Close()
		}
	}
}
