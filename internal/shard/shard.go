// Package shard partitions a keyspace across many independent replication
// groups. Each shard owns its own protocol group — its own chain, NICs and
// fault domain — and a client-side Router maps keys to shards, serves
// single-key reads and durable writes, and runs cross-shard transactions
// with internal/txn's two-phase commit over the per-shard group locks.
//
// Consistency contract: operations within one shard are strictly
// serializable (they ride the shard's single replication group, §4 of the
// paper). Cross-shard transactions are atomic and serializable via 2PC
// with lock ordering by shard ID ("strong partition serializable":
// serializable globally, strictly so per partition).
package shard

import (
	"errors"
	"fmt"
	"sort"

	"hyperloop/internal/sim"
	"hyperloop/internal/txn"
	"hyperloop/internal/wal"
)

// Canonical error sentinels, matching the internal/protocol convention.
var (
	// ErrBadArgument reports a key, payload or config outside the router's
	// contract.
	ErrBadArgument = errors.New("shard: bad argument")
	// ErrShardFull reports a shard whose slot directory is exhausted: more
	// distinct keys landed on it than SlotsPerShard.
	ErrShardFull = errors.New("shard: out of slots")
)

// Policy selects how keys map to shards.
type Policy int

const (
	// Hash spreads keys uniformly with a 64-bit mix — the default, robust
	// to any key distribution.
	Hash Policy = iota
	// Range splits [0, Keys) into contiguous runs, one per shard —
	// preserves key locality, exposes skew.
	Range
)

func (p Policy) String() string {
	switch p {
	case Hash:
		return "hash"
	case Range:
		return "range"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Config sizes a Router and the per-shard stores beneath it.
type Config struct {
	// Shards is the number of partitions (required, ≥ 1).
	Shards int
	// Policy maps keys to shards (default Hash). Range requires Keys.
	Policy Policy
	// Keys is the keyspace size [0, Keys); required for Range, advisory
	// for Hash.
	Keys uint64
	// SlotSize is the fixed per-key value capacity in the shard's data
	// region (default 128).
	SlotSize int
	// SlotsPerShard caps distinct keys per shard (default 64).
	SlotsPerShard int
	// LogSize is each shard store's WAL ring size (default 4096).
	LogSize int
	// LockToken identifies this router in the per-shard group lock words
	// (default 1).
	LockToken uint64
}

func (c *Config) fill() error {
	if c.Shards < 1 {
		return fmt.Errorf("%w: need at least one shard", ErrBadArgument)
	}
	if c.SlotSize <= 0 {
		c.SlotSize = 128
	}
	if c.SlotsPerShard <= 0 {
		c.SlotsPerShard = 64
	}
	if c.LogSize <= 0 {
		c.LogSize = 4096
	}
	if c.LockToken == 0 {
		c.LockToken = 1
	}
	if c.Policy == Range && c.Keys == 0 {
		return fmt.Errorf("%w: range policy needs Keys", ErrBadArgument)
	}
	return nil
}

// MirrorSize returns the mirror footprint each shard's group must provide
// for this config. Callers size their protocol groups with it before
// building the Router.
func (c Config) MirrorSize() int {
	if err := c.fill(); err != nil {
		return 0
	}
	return txn.MirrorSizeFor(c.LogSize, c.SlotsPerShard*c.SlotSize)
}

// Backend is the replication group one shard runs on: the txn.Replicator
// surface plus teardown. *hyperloop.Group and every internal/protocol
// strategy satisfy it.
type Backend interface {
	txn.Replicator
	Close()
}

// slot is one key's home in a shard's data region.
type slot struct {
	idx int // slot index, data offset = idx*SlotSize
	n   int // bytes written by the last Put
}

// Shard is one partition: a replication group, the transactional store on
// top of it, and the client-side slot directory.
type Shard struct {
	ID      int
	Backend Backend
	Store   *txn.Store

	dir  map[uint64]*slot
	next int
}

// slotFor returns key's slot, allocating the next free one on first touch.
func (s *Shard) slotFor(key uint64, size int) (*slot, error) {
	if sl, ok := s.dir[key]; ok {
		return sl, nil
	}
	if s.next >= size {
		return nil, fmt.Errorf("%w: shard %d at %d keys", ErrShardFull, s.ID, s.next)
	}
	sl := &slot{idx: s.next}
	s.next++
	s.dir[key] = sl
	return sl, nil
}

// Write is one key update inside a (possibly cross-shard) transaction.
type Write struct {
	Key  uint64
	Data []byte
}

// Stats counts router-level outcomes.
type Stats struct {
	Puts, Gets uint64 // single-key operations served
	Commits    uint64 // transactions committed
	Aborts     uint64 // transactions aborted (2PC prepare failures)
	CrossShard uint64 // committed transactions spanning >1 shard
}

// Router maps keys onto shards and drives operations against them. A
// Router is driven from simulation fibers on one kernel; like the groups
// beneath it, it is not safe for concurrent use from real OS threads.
type Router struct {
	cfg    Config
	shards []*Shard
	stats  Stats
}

// New builds a Router with cfg.Shards shards, calling build once per shard
// to produce its replication group. Each group must be independent (its
// own NICs and device — mirrors start at device offset 0, so groups cannot
// share) and sized to at least cfg.MirrorSize().
func New(cfg Config, build func(shardID int) (Backend, error)) (*Router, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	r := &Router{cfg: cfg}
	for i := 0; i < cfg.Shards; i++ {
		b, err := build(i)
		if err != nil {
			r.Close()
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		st, err := txn.New(b, txn.Config{
			LogSize:   cfg.LogSize,
			DataSize:  cfg.SlotsPerShard * cfg.SlotSize,
			LockToken: cfg.LockToken,
		})
		if err != nil {
			b.Close()
			r.Close()
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		r.shards = append(r.shards, &Shard{
			ID:      i,
			Backend: b,
			Store:   st,
			dir:     make(map[uint64]*slot),
		})
	}
	return r, nil
}

// Shards returns the number of partitions.
func (r *Router) Shards() int { return len(r.shards) }

// Shard returns partition i (experiments and tests reach through it for
// per-shard stores and backends).
func (r *Router) Shard(i int) *Shard { return r.shards[i] }

// Stats returns a snapshot of router-level counters.
func (r *Router) Stats() Stats { return r.stats }

// mix64 is the splitmix64 finalizer — a full-avalanche 64-bit mix, so
// sequential keys spread uniformly across shards.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// ShardOf returns the shard index owning key. Deterministic: a pure
// function of (key, Shards, Policy, Keys).
func (r *Router) ShardOf(key uint64) int {
	n := uint64(len(r.shards))
	switch r.cfg.Policy {
	case Range:
		width := (r.cfg.Keys + n - 1) / n
		s := key / width
		if s >= n {
			s = n - 1
		}
		return int(s)
	default:
		return int(mix64(key) % n)
	}
}

// Put durably writes data as key's value: replicated to every member of
// the owning shard's group before it returns. len(data) must fit SlotSize.
func (r *Router) Put(f *sim.Fiber, key uint64, data []byte) error {
	if len(data) > r.cfg.SlotSize {
		return fmt.Errorf("%w: value %d exceeds slot size %d", ErrBadArgument, len(data), r.cfg.SlotSize)
	}
	sh := r.shards[r.ShardOf(key)]
	sl, err := sh.slotFor(key, r.cfg.SlotsPerShard)
	if err != nil {
		return err
	}
	if err := sh.Store.WriteData(f, sl.idx*r.cfg.SlotSize, data); err != nil {
		return err
	}
	sl.n = len(data)
	r.stats.Puts++
	return nil
}

// Get returns key's current value from the owning shard's local mirror, or
// nil if the key has never been written.
func (r *Router) Get(key uint64) ([]byte, error) {
	sh := r.shards[r.ShardOf(key)]
	sl, ok := sh.dir[key]
	if !ok || sl.n == 0 {
		return nil, nil
	}
	r.stats.Gets++
	return sh.Store.ReadData(sl.idx*r.cfg.SlotSize, sl.n)
}

// Txn atomically applies writes, which may span shards. Writes are grouped
// per shard and the participant list is sorted by shard ID — the global
// lock order that keeps concurrent routers deadlock-free — then driven
// through txn's two-phase commit. On abort (some shard's prepare failed)
// the error wraps txn.ErrAborted and no write took effect.
func (r *Router) Txn(f *sim.Fiber, writes []Write) error {
	if len(writes) == 0 {
		return nil
	}
	byShard := make(map[int][]wal.Entry)
	for _, w := range writes {
		if len(w.Data) > r.cfg.SlotSize {
			return fmt.Errorf("%w: value %d exceeds slot size %d", ErrBadArgument, len(w.Data), r.cfg.SlotSize)
		}
		sh := r.shards[r.ShardOf(w.Key)]
		sl, err := sh.slotFor(w.Key, r.cfg.SlotsPerShard)
		if err != nil {
			return err
		}
		byShard[sh.ID] = append(byShard[sh.ID], wal.Entry{Off: sl.idx * r.cfg.SlotSize, Data: w.Data})
	}
	ids := make([]int, 0, len(byShard))
	for id := range byShard {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	parts := make([]txn.Participant, len(ids))
	for i, id := range ids {
		parts[i] = txn.Participant{Store: r.shards[id].Store, Entries: byShard[id]}
	}
	tx := txn.BeginDist(parts)
	if err := tx.Prepare(f); err != nil {
		r.stats.Aborts++
		return err
	}
	if err := tx.Commit(f); err != nil {
		return err
	}
	// The commit drained each participant's log (ExecuteAll), so the
	// post-commit value lengths are visible to Get.
	for _, w := range writes {
		r.shards[r.ShardOf(w.Key)].dir[w.Key].n = len(w.Data)
	}
	r.stats.Commits++
	if len(ids) > 1 {
		r.stats.CrossShard++
	}
	return nil
}

// Recover resolves orphaned prepared transactions on every shard (e.g.
// after a coordinator crash between prepare and commit) by rolling them
// back with txn.RecoverAbort. It returns the number of shards rolled back.
func (r *Router) Recover(f *sim.Fiber) (int, error) {
	rolled := 0
	var errs []error
	for _, sh := range r.shards {
		ok, err := txn.RecoverAbort(f, sh.Store, r.cfg.LockToken)
		if err != nil {
			errs = append(errs, fmt.Errorf("shard %d: %w", sh.ID, err))
			continue
		}
		if ok {
			rolled++
		}
	}
	return rolled, errors.Join(errs...)
}

// Close tears down every shard's replication group.
func (r *Router) Close() {
	for _, sh := range r.shards {
		if sh.Backend != nil {
			sh.Backend.Close()
		}
	}
}
