// Package hypotheses is the claim-validating scenario catalog: each entry
// states one falsifiable claim the paper or this reproduction makes about
// fault handling or durability, runs a deterministic simulated scenario
// that could refute it, and renders the evidence as a FINDINGS.md
// artifact. Scenarios mirror the experiments registry (same id → run-fn
// shape) but return pass/fail checks instead of paper figures: an
// experiment regenerates a number, a hypothesis defends a sentence.
//
// Every scenario is virtual-time deterministic — its counters and its
// rendered findings are byte-identical for a given (seed, scale) — so the
// catalog doubles as a regression gate: cmd/hypothesis-run emits the
// counters in the benchmark-report schema and ci.sh diffs them against a
// committed baseline.
package hypotheses

import (
	"fmt"
	"sort"
	"strings"

	"hyperloop/internal/metrics"
)

// Scale selects run sizes: Quick for tests and the CI gate, Full for
// paper-grade sample counts.
type Scale int

// Scales.
const (
	Quick Scale = iota + 1
	Full
)

func (s Scale) pick(quick, full int) int {
	if s == Full {
		return full
	}
	return quick
}

// String names the scale for reports and CLI flags.
func (s Scale) String() string {
	if s == Full {
		return "full"
	}
	return "quick"
}

// ParseScale maps a CLI flag value to a Scale.
func ParseScale(s string) (Scale, error) {
	switch s {
	case "quick":
		return Quick, nil
	case "full":
		return Full, nil
	}
	return 0, fmt.Errorf("hypotheses: unknown scale %q (want quick or full)", s)
}

// Check is one falsifiable assertion a scenario made against its claim,
// with the observation that decided it.
type Check struct {
	Name     string
	Pass     bool
	Observed string
}

// Counters are the deterministic totals a scenario accumulated across all
// of its deployments. They are virtual-time exact: any code change that
// moves an event shows up here before it shows up in a latency table.
type Counters struct {
	SimEvents int64
	CQEs      int64
	Messages  int64
	WireBytes int64
	Drops     int64
	Dups      int64
}

func (c Counters) add(o Counters) Counters {
	return Counters{
		SimEvents: c.SimEvents + o.SimEvents,
		CQEs:      c.CQEs + o.CQEs,
		Messages:  c.Messages + o.Messages,
		WireBytes: c.WireBytes + o.WireBytes,
		Drops:     c.Drops + o.Drops,
		Dups:      c.Dups + o.Dups,
	}
}

// Result is one scenario run's evidence: the checks that validate or
// refute the claim, the data tables behind them, and the deterministic
// counters the CI baseline pins.
type Result struct {
	ID       string
	Claim    string
	Checks   []Check
	Tables   []*metrics.Table
	Notes    []string
	Counters Counters
}

// check records one assertion and its observation.
func (r *Result) check(name string, pass bool, format string, a ...any) {
	r.Checks = append(r.Checks, Check{Name: name, Pass: pass, Observed: fmt.Sprintf(format, a...)})
}

// Passed reports whether every check held.
func (r *Result) Passed() bool {
	for _, c := range r.Checks {
		if !c.Pass {
			return false
		}
	}
	return true
}

// Findings renders the run as a deterministic markdown artifact: same
// (seed, scale) → byte-identical output. It never includes wall-clock
// values, so CI can diff a regenerated artifact against the committed one.
func (r *Result) Findings() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# Hypothesis: %s\n\n", r.ID)
	fmt.Fprintf(&b, "**Claim.** %s\n\n", r.Claim)
	passed := 0
	for _, c := range r.Checks {
		if c.Pass {
			passed++
		}
	}
	verdict := "VALIDATED"
	if passed != len(r.Checks) {
		verdict = "REFUTED"
	}
	fmt.Fprintf(&b, "**Verdict: %s** — %d/%d checks passed.\n\n", verdict, passed, len(r.Checks))
	b.WriteString("## Checks\n\n| check | result | observed |\n|---|---|---|\n")
	for _, c := range r.Checks {
		res := "pass"
		if !c.Pass {
			res = "**FAIL**"
		}
		fmt.Fprintf(&b, "| %s | %s | %s |\n", c.Name, res, c.Observed)
	}
	if len(r.Tables) > 0 {
		b.WriteString("\n## Data\n")
		for _, t := range r.Tables {
			b.WriteString("\n```\n")
			b.WriteString(t.String())
			b.WriteString("```\n")
		}
	}
	if len(r.Notes) > 0 {
		b.WriteString("\n## Notes\n\n")
		for _, n := range r.Notes {
			fmt.Fprintf(&b, "- %s\n", n)
		}
	}
	b.WriteString("\n## Deterministic counters\n\n| counter | value |\n|---|---|\n")
	c := r.Counters
	fmt.Fprintf(&b, "| sim_events | %d |\n", c.SimEvents)
	fmt.Fprintf(&b, "| cqes | %d |\n", c.CQEs)
	fmt.Fprintf(&b, "| messages | %d |\n", c.Messages)
	fmt.Fprintf(&b, "| wire_bytes | %d |\n", c.WireBytes)
	fmt.Fprintf(&b, "| drops | %d |\n", c.Drops)
	fmt.Fprintf(&b, "| dups | %d |\n", c.Dups)
	return b.String()
}

// runFn runs a scenario and returns its evidence. A non-nil error means
// the scenario infrastructure broke (a build failure, a hung driver) — a
// refuted claim is NOT an error, it is a Result whose checks failed.
type runFn func(seed uint64, sc Scale) (*Result, error)

type entry struct {
	claim string
	desc  string
	fn    runFn
}

var registry = map[string]entry{}

// register installs a scenario under id; scenario files call it from init.
// A duplicate id panics — it is a wiring bug, same as the experiments and
// protocol registries.
func register(id, claim, desc string, fn runFn) {
	if _, dup := registry[id]; dup {
		panic(fmt.Sprintf("hypotheses: duplicate registration of %q", id))
	}
	registry[id] = entry{claim: claim, desc: desc, fn: fn}
}

// Names returns all registered scenario ids, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// CatalogOrder returns the ids in presentation order: cheap wire-level
// claims first, the recovery and durability scenarios after, the CPU
// scheduling claim last.
func CatalogOrder() []string {
	return []string{
		"retry-vs-loss",
		"multi-failure",
		"partition-failover",
		"flush-storm",
		"2pc-recovery",
		"tenant-interference",
	}
}

// Describe returns a scenario's one-line description ("" if unknown).
func Describe(id string) string { return registry[id].desc }

// Claim returns the falsifiable claim a scenario defends ("" if unknown).
func Claim(id string) string { return registry[id].claim }

// Run executes one scenario.
func Run(id string, seed uint64, sc Scale) (*Result, error) {
	e, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("hypotheses: unknown scenario %q (have %v)", id, Names())
	}
	r, err := e.fn(seed, sc)
	if err != nil {
		return nil, fmt.Errorf("hypotheses: %s: %w", id, err)
	}
	r.ID = id
	r.Claim = e.claim
	return r, nil
}
