package hypotheses

import (
	"fmt"

	"hyperloop/internal/metrics"
	"hyperloop/internal/protocol"
	"hyperloop/internal/rdma"
	"hyperloop/internal/sim"
)

func init() {
	register("retry-vs-loss",
		"Client-level timeout/retry absorbs transient wire loss on every protocol: "+
			"a loss-free run never retries or fails an op, injected loss induces "+
			"retries, and the retry+failure burden does not shrink as loss grows.",
		"sweep wire drop probability 0→5% per protocol, count retries and failures",
		runRetryLoss)
}

// lossRates is the sweep's x-axis: per-message drop probability applied to
// every link in both directions.
var lossRates = []float64{0, 0.01, 0.025, 0.05}

func runRetryLoss(seed uint64, sc Scale) (*Result, error) {
	ops := sc.pick(150, 1200)
	res := &Result{}
	table := metrics.NewTable("Retry cost vs injected wire loss (1KB durable gWRITE)",
		"protocol", "loss", "ok", "failed", "retried", "drops")
	for _, name := range protocol.Names() {
		burden := make([]int64, 0, len(lossRates))
		for _, loss := range lossRates {
			var plan *rdma.FaultPlan
			if loss > 0 {
				// One wildcard rule matches every (from, to) pair, so data,
				// forwards, and acks are all equally lossy.
				plan = &rdma.FaultPlan{Links: []rdma.LinkFault{{DropProb: loss}}}
			}
			d, err := newDeployment(deployCfg{
				seed: seed, proto: name,
				opTimeout:    200 * sim.Microsecond,
				maxRetries:   3,
				retryBackoff: 50 * sim.Microsecond,
				faults:       plan,
			})
			if err != nil {
				return nil, fmt.Errorf("%s loss=%v: %w", name, loss, err)
			}
			var ok, failed int64
			err = d.drive(60*sim.Second, func(f *sim.Fiber) error {
				for i := 0; i < ops; i++ {
					err := d.group.Write(f, (i%128)*2048, 1024, true)
					switch {
					case err == nil:
						ok++
					case protocol.IsOpError(err):
						failed++
					default:
						return fmt.Errorf("op %d: %w", i, err)
					}
				}
				return nil
			})
			if err != nil {
				return nil, fmt.Errorf("%s loss=%v: %w", name, loss, err)
			}
			retried := d.group.Retried()
			inflight := d.group.InFlight()
			d.group.Close()
			fs := d.fab.FaultStats()
			table.AddRow(name, fmt.Sprintf("%.1f%%", loss*100), ok, failed, retried, fs.Drops)
			burden = append(burden, retried+failed)
			res.Counters = res.Counters.add(d.counters())
			if inflight != 0 {
				res.check(fmt.Sprintf("%s: ops quiesce at %.1f%% loss", name, loss*100),
					false, "%d ops still in flight after the driver finished", inflight)
			}
		}
		// Three checks per protocol: clean baseline, loss bites, and the
		// burden trends upward (compared half-vs-half so one lucky point
		// cannot flip the verdict).
		res.check(fmt.Sprintf("%s: loss-free run is retry-free", name),
			burden[0] == 0, "retried+failed = %d at 0%% loss", burden[0])
		last := burden[len(burden)-1]
		res.check(fmt.Sprintf("%s: %.1f%% loss induces retries", name, lossRates[len(lossRates)-1]*100),
			last > 0, "retried+failed = %d", last)
		half := len(burden) / 2
		var lo, hi int64
		for i, b := range burden {
			if i < half {
				lo += b
			} else {
				hi += b
			}
		}
		res.check(fmt.Sprintf("%s: burden grows with loss", name),
			hi >= lo, "upper-half burden %d vs lower-half %d", hi, lo)
	}
	res.Tables = append(res.Tables, table)
	res.Notes = append(res.Notes,
		fmt.Sprintf("%d closed-loop 1KB durable writes per point; op timeout 200µs, ≤3 retries, 50µs backoff", ops),
		"drops count transmit-side losses in both directions, so ack loss also charges the op that must retry")
	return res, nil
}
