package hypotheses

import (
	"bytes"
	"fmt"

	"hyperloop/internal/metrics"
	"hyperloop/internal/protocol"
	"hyperloop/internal/rdma"
	"hyperloop/internal/sim"
)

func init() {
	register("flush-storm",
		"An acknowledged gFLUSH is a durability contract that crash storms cannot "+
			"break: after a rolling storm of single-member NIC failures, every "+
			"acked flush's bytes survive a power-loss crash of all member devices "+
			"on at least AcksNeeded members; the majority-quorum broadcast "+
			"additionally fails strictly fewer ops through the storm than its "+
			"all-ack twin, while all-ack protocols must fail ops whenever any "+
			"member is down.",
		"crash/restart storm across members, then power-fail every device and audit durable images",
		runFlushStorm)
}

// Storm schedule: rolling single-member outages, one member at a time, so
// a majority is always up.
const (
	fsOpSize    = 64
	fsDownFor   = 350 * sim.Microsecond
	fsCycleGap  = 700 * sim.Microsecond
	fsFirstDown = 500 * sim.Microsecond
	fsCycles    = 4
	fsTimeout   = 100 * sim.Microsecond
)

// stormPlan builds the rolling outage schedule over nReplicas members.
func stormPlan(nReplicas int) *rdma.FaultPlan {
	p := &rdma.FaultPlan{}
	for c := 0; c < fsCycles; c++ {
		host := fmt.Sprintf("server-%d", c%nReplicas)
		at := sim.Time(fsFirstDown + sim.Duration(c)*fsCycleGap)
		p.NICs = append(p.NICs,
			rdma.NICFault{Host: host, At: at, Down: true},
			rdma.NICFault{Host: host, At: at.Add(fsDownFor), Down: false})
	}
	return p
}

func runFlushStorm(seed uint64, sc Scale) (*Result, error) {
	ops := sc.pick(240, 1600)
	res := &Result{}
	// bcast sorts before bcast-maj in protocol.Names(), so its failure
	// count is available when the quorum variant's checks run.
	allAckFailed := int64(-1)
	table := metrics.NewTable("gFLUSH durability through a rolling NIC crash storm",
		"protocol", "acked flushes", "failed ops", "min durable copies", "quorum needed", "drops")
	for _, name := range protocol.Names() {
		d, err := newDeployment(deployCfg{
			seed: seed, proto: name,
			opTimeout:    fsTimeout,
			maxRetries:   1,
			retryBackoff: 25 * sim.Microsecond,
			faults:       stormPlan(3),
		})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		// Each op writes a unique payload at a unique offset, so a failed
		// (possibly partially applied) op can never corrupt an acked one.
		acked := make([]bool, ops)
		payload := func(i int) []byte {
			b := make([]byte, fsOpSize)
			for j := range b {
				b[j] = byte(seed) ^ byte(i>>8) ^ byte(i+j)
			}
			return b
		}
		var failed int64
		err = d.drive(60*sim.Second, func(f *sim.Fiber) error {
			for i := 0; i < ops; i++ {
				off := i * fsOpSize
				if err := d.group.WriteLocal(off, payload(i)); err != nil {
					return fmt.Errorf("op %d: write local: %w", i, err)
				}
				err := d.group.Write(f, off, fsOpSize, false)
				if err == nil {
					err = d.group.Flush(f, off, fsOpSize)
				}
				switch {
				case err == nil:
					acked[i] = true
				case protocol.IsOpError(err):
					failed++
					f.Sleep(20 * sim.Microsecond)
				default:
					return fmt.Errorf("op %d: %w", i, err)
				}
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		inflight := d.group.InFlight()
		d.group.Close()

		// Power-fail every member device: unflushed writes vanish and the
		// current image reverts to the durable one. Whatever survives is
		// exactly what a post-crash recovery would find.
		for _, m := range d.members {
			m.Memory().Crash()
		}
		need := protocol.AcksNeeded(name, len(d.members))
		minCopies, ackedN := len(d.members)+1, 0
		underQuorum := 0
		buf := make([]byte, fsOpSize)
		for i := 0; i < ops; i++ {
			if !acked[i] {
				continue
			}
			ackedN++
			copies := 0
			for _, m := range d.members {
				if err := m.Memory().ReadDurable(i*fsOpSize, buf); err != nil {
					return nil, fmt.Errorf("%s: member read: %w", name, err)
				}
				if bytes.Equal(buf, payload(i)) {
					copies++
				}
			}
			if copies < minCopies {
				minCopies = copies
			}
			if copies < need {
				underQuorum++
			}
		}
		if ackedN == 0 {
			minCopies = 0
		}
		fs := d.fab.FaultStats()
		table.AddRow(name, ackedN, failed, minCopies, need, fs.Drops)
		res.Counters = res.Counters.add(d.counters())

		res.check(fmt.Sprintf("%s: acked flushes survive power loss on ≥%d members", name, need),
			ackedN > 0 && underQuorum == 0,
			"%d acked flushes, %d below the %d-copy quorum, weakest op durable on %d", ackedN, underQuorum, need, minCopies)
		if name == "bcast" {
			allAckFailed = failed
		}
		if need < len(d.members) {
			// Not zero failures: a member that crashed mid-chain keeps its
			// loop QP one op behind (errored WQEs no longer satisfy WAITs),
			// so an op can still time out when the storm shrinks the live
			// quorum to exactly the needed size and the laggard is in it.
			// The quorum's guarantee is masking, not immunity.
			res.check(fmt.Sprintf("%s: majority quorum masks outage failures the all-ack twin takes", name),
				allAckFailed >= 0 && failed < allAckFailed,
				"%d failed ops vs %d for all-ack bcast through %d outage windows", failed, allAckFailed, fsCycles)
		} else {
			res.check(fmt.Sprintf("%s: all-ack completion must fail while a member is down", name),
				failed > 0, "%d failed ops across %d outage windows", failed, fsCycles)
		}
		res.check(fmt.Sprintf("%s: nothing left in flight", name),
			inflight == 0, "InFlight() = %d after the driver finished", inflight)
	}
	res.Tables = append(res.Tables, table)
	res.Notes = append(res.Notes,
		fmt.Sprintf("storm: %d rolling outages, one member down %s every %s starting at %s; op timeout %s, ≤1 retry",
			fsCycles, fd(fsDownFor), fd(fsCycleGap), fd(fsFirstDown), fd(fsTimeout)),
		"unique per-op offsets mean a timed-out op's partial application can never be mistaken for an acked op's bytes",
		"AcksNeeded comes from the protocol traits registry: bcast-maj guarantees ⌊G/2⌋+1 copies, everything else all G",
		"a member that crashes mid-chain limps one op behind afterwards (its flushed loop WQEs produce error CQEs, which never satisfy WAITs), so even the majority quorum sees residual timeouts when the storm leaves it needing every live member")
	return res, nil
}
