package hypotheses

import (
	"strings"
	"testing"

	"hyperloop/internal/metrics"
)

func TestCatalog(t *testing.T) {
	names := Names()
	order := CatalogOrder()
	if len(names) != len(order) {
		t.Fatalf("Names() has %d ids, CatalogOrder() %d", len(names), len(order))
	}
	inOrder := map[string]bool{}
	for _, id := range order {
		inOrder[id] = true
	}
	for i, id := range names {
		if i > 0 && names[i-1] >= id {
			t.Fatalf("Names() not sorted: %v", names)
		}
		if !inOrder[id] {
			t.Fatalf("registered id %q missing from CatalogOrder()", id)
		}
		if Describe(id) == "" {
			t.Errorf("%s: empty description", id)
		}
		if Claim(id) == "" {
			t.Errorf("%s: empty claim", id)
		}
	}
	if _, err := Run("no-such-scenario", 1, Quick); err == nil {
		t.Fatal("Run accepted an unknown id")
	}
}

func TestScaleParse(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Scale
	}{{"quick", Quick}, {"full", Full}} {
		got, err := ParseScale(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseScale(%q) = %v, %v", tc.in, got, err)
		}
		if got.String() != tc.in {
			t.Fatalf("Scale(%v).String() = %q, want %q", got, got.String(), tc.in)
		}
	}
	if _, err := ParseScale("medium"); err == nil {
		t.Fatal("ParseScale accepted an unknown scale")
	}
	if Quick.pick(3, 7) != 3 || Full.pick(3, 7) != 7 {
		t.Fatal("Scale.pick broken")
	}
}

func TestFindingsRendering(t *testing.T) {
	r := &Result{
		ID:    "demo",
		Claim: "the sky is blue",
		Notes: []string{"observed at noon"},
		Counters: Counters{
			SimEvents: 10, CQEs: 2, Messages: 3, WireBytes: 4, Drops: 5, Dups: 6,
		},
	}
	r.Tables = append(r.Tables, metrics.NewTable("colors", "what", "color"))
	r.Tables[0].AddRow("sky", "blue")
	r.check("spectrometer agrees", true, "peak at 470nm")
	if !r.Passed() {
		t.Fatal("all-pass result not Passed")
	}
	out := r.Findings()
	for _, want := range []string{
		"# Hypothesis: demo", "the sky is blue", "Verdict: VALIDATED", "1/1 checks",
		"spectrometer agrees", "peak at 470nm", "colors", "observed at noon",
		"| sim_events | 10 |", "| drops | 5 |",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("findings missing %q:\n%s", want, out)
		}
	}
	r.check("barometer disagrees", false, "sky reads green")
	if r.Passed() {
		t.Fatal("failed check left result Passed")
	}
	out = r.Findings()
	if !strings.Contains(out, "Verdict: REFUTED") || !strings.Contains(out, "1/2 checks") {
		t.Errorf("refuted findings wrong verdict:\n%s", out)
	}
	if !strings.Contains(out, "**FAIL**") {
		t.Errorf("failed check not marked:\n%s", out)
	}
}

func TestDeploymentErrors(t *testing.T) {
	if _, err := newDeployment(deployCfg{seed: 1, proto: "no-such-protocol"}); err == nil {
		t.Fatal("unknown protocol accepted")
	}
}

// TestScenariosPassQuick runs the whole catalog at quick scale and demands
// every claim hold — the same bar ci.sh holds the committed artifacts to.
func TestScenariosPassQuick(t *testing.T) {
	for _, id := range CatalogOrder() {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			r, err := Run(id, 1, Quick)
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if r.ID != id || r.Claim == "" {
				t.Fatalf("result not stamped: id=%q claim=%q", r.ID, r.Claim)
			}
			for _, c := range r.Checks {
				if !c.Pass {
					t.Errorf("check failed: %s — %s", c.Name, c.Observed)
				}
			}
			if len(r.Checks) == 0 {
				t.Fatal("scenario made no checks")
			}
			if r.Counters.SimEvents == 0 || r.Counters.Messages == 0 {
				t.Fatalf("counters not collected: %+v", r.Counters)
			}
			if t.Failed() {
				t.Logf("findings:\n%s", r.Findings())
			}
		})
	}
}

// TestScenarioDeterminism re-runs one scenario and demands byte-identical
// findings — the property the CI baseline and artifact diffs depend on.
func TestScenarioDeterminism(t *testing.T) {
	a, err := Run("multi-failure", 42, Quick)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run("multi-failure", 42, Quick)
	if err != nil {
		t.Fatal(err)
	}
	if a.Counters != b.Counters {
		t.Fatalf("counters differ across identical runs:\n%+v\n%+v", a.Counters, b.Counters)
	}
	if a.Findings() != b.Findings() {
		t.Fatal("findings differ across identical runs")
	}
	c, err := Run("multi-failure", 43, Quick)
	if err != nil {
		t.Fatal(err)
	}
	if c.Counters == a.Counters {
		t.Fatal("different seeds produced identical counters — seed not wired through")
	}
}
