package hypotheses

import (
	"fmt"

	"hyperloop/internal/metrics"
	"hyperloop/internal/protocol"
	"hyperloop/internal/sim"
)

func init() {
	register("tenant-interference",
		"NIC offload makes replication immune to co-located tenant load: "+
			"saturating the replica CPUs with bursty multi-tenant noise leaves "+
			"every NIC-driven protocol's write latency unchanged, while the "+
			"CPU-driven baseline's tail inflates by multiples (§2.2).",
		"sweep per-core tenant noise on replica CPUs, compare p99 write latency per protocol",
		runTenantInterference)
}

// Tenancy sweep: tenant processes per replica core. The heavy point
// matches the paper's co-location (~10 bursty tenants per core plus hogs
// and periodic storms).
const (
	tiCores      = 8
	tiNoiseBurst = 300 * sim.Microsecond
	tiNoiseIdle  = 2700 * sim.Microsecond
)

func runTenantInterference(seed uint64, sc Scale) (*Result, error) {
	ops := sc.pick(60, 400)
	loads := []int{0, 10}
	if sc == Full {
		loads = []int{0, 2, 10}
	}
	res := &Result{}
	table := metrics.NewTable("1KB durable gWRITE latency vs co-located tenant load",
		"protocol", "tenants/core", "avg", "p99", "p99 vs idle")
	for _, name := range protocol.Names() {
		cpuDriven := protocol.TraitsOf(name).CPUDriven
		var idleP99, loadedP99 sim.Duration
		for _, perCore := range loads {
			cfg := deployCfg{
				seed: seed, proto: name,
				cores:        tiCores,
				opTimeout:    20 * sim.Millisecond,
				maxRetries:   1,
				retryBackoff: 50 * sim.Microsecond,
			}
			if perCore > 0 {
				cfg.noise = perCore * tiCores
				cfg.noiseBurst = tiNoiseBurst
				cfg.noiseIdle = tiNoiseIdle
				cfg.hogs = tiCores / 2
				cfg.storms = true
				if cpuDriven {
					// Multi-tenant co-location also costs the replica handler
					// its machine-wide sleeper credit (§2.2 tail mechanism).
					cfg.wakePenalty = 3 * sim.Millisecond
					cfg.wakePenaltyProb = 0.015
				}
			}
			d, err := newDeployment(cfg)
			if err != nil {
				return nil, fmt.Errorf("%s load=%d: %w", name, perCore, err)
			}
			h, err := d.latency(ops, 1024)
			if err != nil {
				return nil, fmt.Errorf("%s load=%d: %w", name, perCore, err)
			}
			d.group.Close()
			res.Counters = res.Counters.add(d.counters())
			p99 := sim.Duration(h.Percentile(99))
			if perCore == 0 {
				idleP99 = p99
			}
			loadedP99 = p99
			ratio := "1.0x"
			if perCore > 0 && idleP99 > 0 {
				ratio = fmt.Sprintf("%.1fx", float64(p99)/float64(idleP99))
			}
			table.AddRow(name, perCore, fd(sim.Duration(int64(h.Mean()))), fd(p99), ratio)
		}
		ratio := float64(loadedP99) / float64(idleP99)
		if cpuDriven {
			res.check(fmt.Sprintf("%s: CPU-driven tail inflates under tenant load", name),
				ratio >= 3, "p99 %s loaded vs %s idle (%.1fx)", fd(loadedP99), fd(idleP99), ratio)
		} else {
			res.check(fmt.Sprintf("%s: NIC-offloaded latency unmoved by tenant load", name),
				ratio <= 1.02, "p99 %s loaded vs %s idle (%.2fx)", fd(loadedP99), fd(idleP99), ratio)
		}
	}
	res.Tables = append(res.Tables, table)
	res.Notes = append(res.Notes,
		fmt.Sprintf("%d closed-loop 1KB durable writes per point on %d-core replicas; heavy load = 10 bursty tenants/core (%s burst / %s idle) + %d hogs + storms",
			ops, tiCores, fd(tiNoiseBurst), fd(tiNoiseIdle), tiCores/2),
		"tenant fibers never touch the fabric, so for NIC-driven protocols the loaded run replays the idle run's wire schedule exactly",
		"CPUDriven comes from the protocol traits registry; the wake-penalty co-location model only applies to CPU-driven protocols")
	return res, nil
}
