package hypotheses

import (
	"fmt"

	"hyperloop/internal/chain"
	"hyperloop/internal/hyperloop"
	"hyperloop/internal/metrics"
	"hyperloop/internal/nvm"
	"hyperloop/internal/protocol"
	"hyperloop/internal/rdma"
	"hyperloop/internal/sim"
)

func init() {
	register("partition-failover",
		"A network partition that outlives failover recovery extends client "+
			"unavailability to the partition's heal time, not the recovery time: "+
			"detection, catch-up, and datapath re-setup all complete during the "+
			"partition because none of them needs the partitioned wire — but a "+
			"datapath established while the wire still drops messages is broken "+
			"by the loss (a reliable connection that loses a message is dead, as "+
			"after RC retry exhaustion), so writes resume only once the partition "+
			"heals and the datapath is re-established over the healed link.",
		"crash mid-chain replica, partition the client↔head link across the whole recovery",
		runPartitionFailover)
}

// Partition-failover schedule. The crash lands at 2ms; suspicion needs 3
// missed 500µs heartbeats (~3.5ms); the partition opens just after the
// crash and heals long after recovery has re-established the datapath.
const (
	pfMirror   = 256 << 10
	pfCrashAt  = 2000 * sim.Microsecond
	pfPartFrom = 2200 * sim.Microsecond
	pfPartTo   = 6000 * sim.Microsecond
	pfBeat     = 500 * sim.Microsecond
	pfMissed   = 3
	pfMaxGap   = 8 * sim.Millisecond // window must stay under this
	pfMinGap   = 2 * sim.Millisecond // and over this: the partition, not recovery, set it
	// Consecutive write failures on a freshly established datapath before
	// the client declares its reliable connection broken and re-establishes.
	pfBrokenAfter = 2
	// Writes must resume within this long of the heal: one more failed
	// attempt cycle, one re-establishment, one successful write.
	pfResumeBound = 2 * sim.Millisecond
)

func runPartitionFailover(seed uint64, sc Scale) (*Result, error) {
	ops := sc.pick(300, 2000)
	res := &Result{}
	d, err := newDeployment(deployCfg{
		seed: seed, proto: "chain",
		mirror:       pfMirror,
		opTimeout:    200 * sim.Microsecond,
		maxRetries:   1,
		retryBackoff: 50 * sim.Microsecond,
		faults: &rdma.FaultPlan{
			NICs: []rdma.NICFault{{Host: "server-1", At: sim.Time(pfCrashAt), Down: true}},
			// Sever client↔head in both directions for the whole recovery.
			Links: []rdma.LinkFault{
				{From: "client", To: "server-0", PartitionFrom: sim.Time(pfPartFrom), PartitionUntil: sim.Time(pfPartTo)},
				{From: "server-0", To: "client", PartitionFrom: sim.Time(pfPartFrom), PartitionUntil: sim.Time(pfPartTo)},
			},
		},
	})
	if err != nil {
		return nil, err
	}
	spare, err := d.fab.AddNIC("spare", nvm.NewDevice("spare", devSize(pfMirror)))
	if err != nil {
		return nil, err
	}
	mon, err := chain.New(d.k, d.members, chain.Config{
		HeartbeatEvery:  pfBeat,
		MissedThreshold: pfMissed,
	})
	if err != nil {
		return nil, err
	}

	var (
		tSuspect, tResetup         sim.Time
		tLastResetup               sim.Time
		resetups                   int
		lastOKBefore, firstOKAfter sim.Time
		failedIdx                  = -1
		sawFailure                 bool
		timeouts                   int64
		repairErr                  error
		newMembers                 []*rdma.NIC
	)
	suspected := sim.NewSignal()
	mon.OnSuspect(func(idx int) {
		failedIdx = idx
		tSuspect = d.k.Now()
		mon.PauseWrites()
		suspected.Fire(nil)
	})
	mon.Start()

	group := d.group
	// reestablish tears down the current datapath and arms a fresh one over
	// the post-repair membership. Arming is remote work-request manipulation
	// posted directly into member rings by the control path — no wire
	// round-trips — so it succeeds mid-partition; whether the new datapath
	// *survives* depends on the wire no longer eating messages.
	reestablish := func() error {
		group.Close()
		gcfg := hyperloop.DefaultConfig(pfMirror)
		gcfg.OpTimeout = 200 * sim.Microsecond
		gcfg.MaxRetries = 1
		gcfg.RetryBackoff = 50 * sim.Microsecond
		g, err := hyperloop.Setup(d.fab, d.client, newMembers, gcfg)
		if err != nil {
			return err
		}
		group = g
		resetups++
		tLastResetup = d.k.Now()
		return nil
	}
	d.k.Spawn("repair", func(f *sim.Fiber) {
		if err := f.Await(suspected); err != nil {
			return
		}
		// Catch-up reads a healthy member's memory over the storage-side
		// interconnect (the chain package models it off the client fabric),
		// so the client-side partition cannot delay it.
		if _, err := mon.CatchUp(f, spare, pfMirror); err != nil {
			repairErr = fmt.Errorf("catch-up: %w", err)
			return
		}
		if err := mon.Replace(failedIdx, spare); err != nil {
			repairErr = fmt.Errorf("replace: %w", err)
			return
		}
		newMembers = append([]*rdma.NIC(nil), d.members...)
		newMembers[failedIdx] = spare
		if err := reestablish(); err != nil {
			repairErr = fmt.Errorf("re-setup: %w", err)
			return
		}
		tResetup = f.Now()
		mon.ResumeWrites()
	})

	err = d.drive(60*sim.Second, func(f *sim.Fiber) error {
		defer mon.Stop()
		deadline := f.Now().Add(sim.Second)
		consecFails := 0
		for i := 0; i < ops; i++ {
			off := (i % 128) * 2048
			for {
				if f.Now() > deadline {
					return fmt.Errorf("op %d: gave up at t=%v (%d timeouts, paused=%v)",
						i, f.Now(), timeouts, mon.Paused())
				}
				if mon.Paused() {
					f.Sleep(50 * sim.Microsecond)
					continue
				}
				if err := group.Write(f, off, 1024, true); err != nil {
					if !protocol.IsOpError(err) {
						return fmt.Errorf("op %d: %w", i, err)
					}
					sawFailure = true
					timeouts++
					// After the first repair, repeated failures on a fresh
					// datapath mean the partition broke it: losing even one
					// message desynchronizes the pre-posted chains (real RC
					// would exhaust retries and error the QP). Re-establish
					// and try again — this converges once the wire heals.
					if tResetup > 0 {
						consecFails++
						if consecFails >= pfBrokenAfter {
							consecFails = 0
							if err := reestablish(); err != nil {
								return fmt.Errorf("op %d: re-establish: %w", i, err)
							}
						}
					}
					f.Sleep(100 * sim.Microsecond)
					continue
				}
				consecFails = 0
				now := f.Now()
				if !sawFailure {
					lastOKBefore = now
				} else if firstOKAfter == 0 {
					firstOKAfter = now
				}
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if repairErr != nil {
		return nil, repairErr
	}
	if !sawFailure || firstOKAfter == 0 {
		return nil, fmt.Errorf("crash produced no observable outage (failures=%v firstOKAfter=%v)", sawFailure, firstOKAfter)
	}
	res.Counters = d.counters()
	fs := d.fab.FaultStats()
	window := firstOKAfter.Sub(lastOKBefore)

	timeline := metrics.NewTable("Recovery vs partition timeline (virtual time)", "event", "t")
	timeline.AddRow("NIC crash injected (server-1)", fd(pfCrashAt))
	timeline.AddRow("client↔server-0 partition opens", fd(pfPartFrom))
	timeline.AddRow(fmt.Sprintf("failure suspected, writes paused (%d beats @ %s)", pfMissed, fd(pfBeat)), ft(tSuspect))
	timeline.AddRow("failover recovery done, datapath armed, writes resumed", ft(tResetup))
	timeline.AddRow("partition heals", fd(pfPartTo))
	timeline.AddRow(fmt.Sprintf("final datapath re-establishment (%d total)", resetups), ft(tLastResetup))
	timeline.AddRow("last good write before outage", ft(lastOKBefore))
	timeline.AddRow("first good write after outage", ft(firstOKAfter))
	timeline.AddRow("unavailability window", fd(window))
	res.Tables = append(res.Tables, timeline)

	res.check("recovery completes during the partition",
		tResetup > 0 && tResetup < sim.Time(pfPartTo),
		"failover recovery re-armed the datapath at %s, partition heals at %s", ft(tResetup), fd(pfPartTo))
	res.check("writes stay down until the partition heals",
		firstOKAfter >= sim.Time(pfPartTo),
		"first good write at %s, heal at %s, %d timed-out attempts in between", ft(firstOKAfter), fd(pfPartTo), timeouts)
	res.check("a partitioned datapath is broken, not paused",
		resetups >= 2 && tLastResetup > tResetup,
		"%d datapath establishments: every one armed while the wire dropped messages was poisoned by the loss", resetups)
	res.check("writes resume promptly once the wire heals",
		firstOKAfter.Sub(sim.Time(pfPartTo)) < pfResumeBound,
		"first good write %s after the heal (bound %s)", fd(firstOKAfter.Sub(sim.Time(pfPartTo))), fd(pfResumeBound))
	res.check("the partition, not recovery, sets the unavailability window",
		window > pfMinGap && window < pfMaxGap,
		"window %s (plain failover recovers in ~1.5ms; bound %s)", fd(window), fd(pfMaxGap))
	res.check("the partition dropped live traffic",
		fs.Drops > 0, "%d messages dropped", fs.Drops)

	res.Notes = append(res.Notes,
		fmt.Sprintf("partition [%s, %s) outlives suspicion (+catch-up +re-setup) by design; %d write attempts timed out, %d datapath establishments",
			fd(pfPartFrom), fd(pfPartTo), timeouts, resetups),
		"heartbeats and catch-up are the application's recovery protocol and run off the partitioned wire; only the client datapath is cut",
		"the fabric models message loss as permanent (RC retry exhaustion): one dropped metadata SEND shifts every later receive against its pre-posted seq-keyed chain slots, so the group forwards stale staging bytes and wedges — exactly why real RC moves a lossy QP to the error state and forces re-establishment",
		fmt.Sprintf("the client declares a post-repair datapath broken after %d consecutive op timeouts and re-arms it; re-arming is wireless control-path work, so the loop converges one cycle after heal", pfBrokenAfter))
	return res, nil
}
