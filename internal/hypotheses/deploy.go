package hypotheses

import (
	"fmt"

	"hyperloop/internal/cpusim"
	"hyperloop/internal/metrics"
	"hyperloop/internal/nvm"
	"hyperloop/internal/protocol"
	"hyperloop/internal/rdma"
	"hyperloop/internal/sim"

	// Scenarios build protocols by registry name; link the implementations.
	_ "hyperloop/internal/hyperloop"
	_ "hyperloop/internal/naive"
)

// deployCfg describes one simulated deployment: a client machine plus
// nReplicas storage servers. Unlike the experiments cluster there is no
// trial arena — every scenario run builds fresh kernels, so one scenario
// can never perturb another's counters and the catalog needs no pooling
// discipline to stay deterministic.
type deployCfg struct {
	seed     uint64
	proto    string // protocol registry name
	replicas int    // default 3
	mirror   int    // default 256 KB
	cores    int    // per-replica CPU cores, default 8

	// Co-located tenant load on every replica's scheduler.
	hogs       int
	noise      int
	noiseBurst sim.Duration
	noiseIdle  sim.Duration
	storms     bool

	// Blocking-path failure policy.
	opTimeout    sim.Duration
	maxRetries   int
	retryBackoff sim.Duration

	// Multi-tenant wake penalty for CPU-driven protocols (see
	// protocol.Params).
	wakePenalty     sim.Duration
	wakePenaltyProb float64

	// faults is installed on the fabric before any NIC exists, exactly as
	// the experiments cluster does, so scheduled NIC events and link rules
	// are armed for the whole run.
	faults *rdma.FaultPlan
}

// deployment is a built scenario cluster.
type deployment struct {
	k       *sim.Kernel
	fab     *rdma.Fabric
	client  *rdma.NIC
	members []*rdma.NIC
	scheds  []*cpusim.Scheduler
	group   protocol.Protocol
}

// devSize returns the device size needed for mirror + control structures.
func devSize(mirror int) int { return mirror + 4<<20 }

// newDeployment builds the deployment and the named protocol over it.
func newDeployment(cfg deployCfg) (*deployment, error) {
	if cfg.replicas == 0 {
		cfg.replicas = 3
	}
	if cfg.mirror == 0 {
		cfg.mirror = 256 << 10
	}
	if cfg.cores == 0 {
		cfg.cores = 8
	}
	k := sim.NewKernel(cfg.seed)
	fab := rdma.NewFabric(k, rdma.DefaultConfig())
	if cfg.faults != nil {
		if err := fab.InstallFaultPlan(cfg.faults); err != nil {
			return nil, err
		}
	}
	client, err := fab.AddNIC("client", nvm.NewDevice("client", devSize(cfg.mirror)))
	if err != nil {
		return nil, err
	}
	d := &deployment{k: k, fab: fab, client: client}
	for i := 0; i < cfg.replicas; i++ {
		host := fmt.Sprintf("server-%d", i)
		nic, err := fab.AddNIC(host, nvm.NewDevice(host, devSize(cfg.mirror)))
		if err != nil {
			return nil, err
		}
		d.members = append(d.members, nic)
		sched, err := cpusim.New(k, cpusim.DefaultConfig(cfg.cores))
		if err != nil {
			return nil, err
		}
		sched.AddHogs(cfg.hogs)
		if cfg.noise > 0 {
			sched.AddNoise(cfg.noise, cfg.noiseBurst, cfg.noiseIdle)
		}
		if cfg.storms {
			sched.AddStorms(2*cfg.cores, 200*sim.Millisecond, 4*sim.Millisecond)
		}
		d.scheds = append(d.scheds, sched)
	}
	g, err := protocol.Build(cfg.proto, protocol.Env{
		Fabric: fab, Client: client, Replicas: d.members, Scheds: d.scheds,
	}, protocol.Params{
		MirrorSize:      cfg.mirror,
		OpTimeout:       cfg.opTimeout,
		MaxRetries:      cfg.maxRetries,
		RetryBackoff:    cfg.retryBackoff,
		WakePenalty:     cfg.wakePenalty,
		WakePenaltyProb: cfg.wakePenaltyProb,
	})
	if err != nil {
		return nil, err
	}
	d.group = g
	return d, nil
}

// counters snapshots the deployment's deterministic totals.
func (d *deployment) counters() Counters {
	msgs, bytes := d.fab.Stats()
	fs := d.fab.FaultStats()
	return Counters{
		SimEvents: d.k.Executed(),
		CQEs:      d.fab.CQEs(),
		Messages:  msgs,
		WireBytes: bytes,
		Drops:     fs.Drops,
		Dups:      fs.Dups,
	}
}

// runToStop runs the kernel until a driver calls StopRun or the horizon
// elapses; background tenant load never drains on its own.
func (d *deployment) runToStop(horizon sim.Duration) error {
	err := d.k.RunUntil(d.k.Now().Add(horizon))
	if err == sim.ErrStopped {
		return nil
	}
	return err
}

// drive spawns a single driver fiber, runs the kernel until the driver
// finishes (it stops the run) or the horizon elapses, and propagates the
// driver's error.
func (d *deployment) drive(horizon sim.Duration, fn func(f *sim.Fiber) error) error {
	var runErr error
	done := false
	d.k.Spawn("hypothesis-driver", func(f *sim.Fiber) {
		defer d.k.StopRun()
		runErr = fn(f)
		done = true
	})
	if err := d.runToStop(horizon); err != nil {
		return err
	}
	if runErr != nil {
		return runErr
	}
	if !done {
		return fmt.Errorf("driver hung: horizon %v elapsed", horizon)
	}
	return nil
}

// latency drives ops closed-loop durable writes of the given size and
// returns the latency histogram.
func (d *deployment) latency(ops, size int) (*metrics.Histogram, error) {
	h := metrics.NewHistogram()
	err := d.drive(60*sim.Second, func(f *sim.Fiber) error {
		for i := 0; i < ops; i++ {
			off := (i % 128) * 2048
			start := f.Now()
			if err := d.group.Write(f, off, size, true); err != nil {
				return fmt.Errorf("op %d: %w", i, err)
			}
			h.RecordDuration(f.Now().Sub(start))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return h, nil
}

// fd formats a virtual duration for tables and observations.
func fd(d sim.Duration) string { return metrics.FormatDuration(d) }

// ft formats a virtual instant as an offset from t=0.
func ft(t sim.Time) string { return fd(t.Sub(sim.Time(0))) }
