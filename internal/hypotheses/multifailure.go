package hypotheses

import (
	"fmt"

	"hyperloop/internal/metrics"
	"hyperloop/internal/protocol"
	"hyperloop/internal/rdma"
	"hyperloop/internal/sim"
)

func init() {
	register("multi-failure",
		"Concurrent failures never hang a blocking client: when the client NIC "+
			"and a replica NIC crash within the same in-flight window, every op "+
			"still resolves within its timeout and nothing is left in flight. "+
			"After both NICs restart, protocols whose armed state lives on the "+
			"surviving members carry writes again — while the chain, whose "+
			"head-side forwarding state died with the client NIC, stays down "+
			"until explicitly reconfigured (the partition-failover scenario "+
			"exercises exactly that repair).",
		"crash client + replica NICs ~50µs apart mid-run, restart both, per protocol",
		runMultiFailure)
}

// Multi-failure schedule: the client NIC dies first, a replica follows one
// op-timeout later (so ops are failing for both reasons at once), and both
// restart inside the run.
const (
	mfClientDownAt = 1000 * sim.Microsecond
	mfServerDownAt = 1050 * sim.Microsecond
	mfClientUpAt   = 2000 * sim.Microsecond
	mfServerUpAt   = 2050 * sim.Microsecond
	mfTimeout      = 100 * sim.Microsecond
)

func runMultiFailure(seed uint64, sc Scale) (*Result, error) {
	ops := sc.pick(400, 2500)
	res := &Result{}
	table := metrics.NewTable("Op outcomes around a concurrent client+replica crash (1KB gWRITE)",
		"protocol", "ok before", "failed during", "ok after", "drops", "in flight at end")
	for _, name := range protocol.Names() {
		d, err := newDeployment(deployCfg{
			seed: seed, proto: name,
			opTimeout: mfTimeout,
			// No retries: the scenario observes raw failures, not the retry
			// policy's ability to paper over them.
			faults: &rdma.FaultPlan{NICs: []rdma.NICFault{
				{Host: "client", At: sim.Time(mfClientDownAt), Down: true},
				{Host: "client", At: sim.Time(mfClientUpAt), Down: false},
				{Host: "server-1", At: sim.Time(mfServerDownAt), Down: true},
				{Host: "server-1", At: sim.Time(mfServerUpAt), Down: false},
			}},
		})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		var okBefore, failedDuring, okAfter, failedAfter int64
		err = d.drive(60*sim.Second, func(f *sim.Fiber) error {
			for i := 0; i < ops; i++ {
				err := d.group.Write(f, (i%128)*2048, 1024, false)
				now := f.Now()
				switch {
				case err == nil && now < sim.Time(mfClientDownAt):
					okBefore++
				case err == nil && now >= sim.Time(mfServerUpAt):
					okAfter++
				case err != nil && protocol.IsOpError(err):
					if now >= sim.Time(mfServerUpAt) {
						failedAfter++
						// A failure after both restarts stalls the closed
						// loop; give the datapath a beat instead of spinning.
						f.Sleep(20 * sim.Microsecond)
					} else {
						failedDuring++
					}
				case err != nil:
					return fmt.Errorf("op %d: %w", i, err)
				}
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		inflight := d.group.InFlight()
		d.group.Close()
		fs := d.fab.FaultStats()
		table.AddRow(name, okBefore, failedDuring, okAfter, fs.Drops, inflight)
		res.Counters = res.Counters.add(d.counters())

		res.check(fmt.Sprintf("%s: healthy before the crashes", name),
			okBefore > 0, "%d ops completed before t=%s", okBefore, fd(mfClientDownAt))
		res.check(fmt.Sprintf("%s: every op resolves during the outage", name),
			failedDuring > 0, "%d ops failed (none hung) while both NICs were down", failedDuring)
		if name == "chain" {
			// The chain head's pre-armed forwarding chains died with the
			// client NIC; in-protocol traffic cannot rebuild them. Recovery
			// is the failover protocol's job (see partition-failover), so
			// spontaneous resumption here would mean the model leaks state
			// across a crash.
			res.check(fmt.Sprintf("%s: head crash requires reconfiguration to resume", name),
				okAfter == 0, "%d ops completed after t=%s without repair (%d residual failures)",
				okAfter, fd(mfServerUpAt), failedAfter)
		} else {
			res.check(fmt.Sprintf("%s: datapath carries writes after both restarts", name),
				okAfter > 0, "%d ops completed after t=%s (%d residual failures)", okAfter, fd(mfServerUpAt), failedAfter)
		}
		res.check(fmt.Sprintf("%s: nothing left in flight", name),
			inflight == 0, "InFlight() = %d after the driver finished", inflight)
	}
	res.Tables = append(res.Tables, table)
	res.Notes = append(res.Notes,
		fmt.Sprintf("client NIC down [%s, %s), server-1 down [%s, %s); op timeout %s, no client retries",
			fd(mfClientDownAt), fd(mfClientUpAt), fd(mfServerDownAt), fd(mfServerUpAt), fd(mfTimeout)),
		"the driver is closed-loop, so a single hung op would stall it and trip the horizon guard")
	return res, nil
}
