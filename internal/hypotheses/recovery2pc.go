package hypotheses

import (
	"bytes"
	"errors"
	"fmt"

	"hyperloop/internal/metrics"
	"hyperloop/internal/nvm"
	"hyperloop/internal/protocol"
	"hyperloop/internal/rdma"
	"hyperloop/internal/shard"
	"hyperloop/internal/sim"
	"hyperloop/internal/txn"
)

func init() {
	register("2pc-recovery",
		"A durable coordinator commit record makes 2PC crash recovery unambiguous: "+
			"whatever protocol step the coordinator dies at, recovery rolls "+
			"record-bearing transactions forward and record-less ones back, so "+
			"post-recovery visibility is all-or-nothing on every shard and every "+
			"replica, no group lock leaks, the commit log drains, and the client's "+
			"retry commits exactly once — even under duplicated and delayed wire "+
			"traffic.",
		"kill the coordinator after every 2PC step across spans 1/2/4, recover, audit visibility/locks/log",
		run2PCRecovery)
}

// Deployment shape: r2Shards 2-replica chain groups plus a dedicated
// 2-replica coordinator-log group, range-partitioned so key i lives on
// shard i (span-S transactions touch exactly shards 0..S-1, slot 0).
const (
	r2Shards     = 4
	r2SlotSize   = 64
	r2Slots      = 8
	r2LogSize    = 1024
	r2CoordLog   = 256
	r2CoordSlots = 8
	r2Timeout    = 500 * sim.Microsecond
)

// recoveryRig is one sharded deployment with a commit-logged router.
type recoveryRig struct {
	k         *sim.Kernel
	fab       *rdma.Fabric
	router    *shard.Router
	shardNICs [][]*rdma.NIC // per shard, its replica NICs
}

func newRecoveryRig(seed uint64, faults *rdma.FaultPlan) (*recoveryRig, error) {
	k := sim.NewKernel(seed)
	fab := rdma.NewFabric(k, rdma.DefaultConfig())
	if faults != nil {
		if err := fab.InstallFaultPlan(faults); err != nil {
			return nil, err
		}
	}
	rig := &recoveryRig{k: k, fab: fab}

	buildGroup := func(name string, mirror int) (protocol.Protocol, []*rdma.NIC, error) {
		client, err := fab.AddNIC("cli-"+name, nvm.NewDevice("cli-"+name, devSize(mirror)))
		if err != nil {
			return nil, nil, err
		}
		var reps []*rdma.NIC
		for j := 0; j < 2; j++ {
			host := fmt.Sprintf("%s-r%d", name, j)
			nic, err := fab.AddNIC(host, nvm.NewDevice(host, devSize(mirror)))
			if err != nil {
				return nil, nil, err
			}
			reps = append(reps, nic)
		}
		g, err := protocol.Build("chain", protocol.Env{Fabric: fab, Client: client, Replicas: reps},
			protocol.Params{MirrorSize: mirror, OpTimeout: r2Timeout})
		if err != nil {
			return nil, nil, err
		}
		return g, reps, nil
	}

	clData := txn.CommitLogSizeFor(r2CoordSlots, r2Shards)
	coordGroup, _, err := buildGroup("coord", txn.MirrorSizeFor(r2CoordLog, clData))
	if err != nil {
		return nil, err
	}
	coordStore, err := txn.New(coordGroup, txn.Config{LogSize: r2CoordLog, DataSize: clData})
	if err != nil {
		return nil, err
	}

	cfg := shard.Config{
		Shards: r2Shards, Policy: shard.Range, Keys: r2Shards,
		SlotSize: r2SlotSize, SlotsPerShard: r2Slots, LogSize: r2LogSize,
		CoordLog: coordStore,
	}
	rig.router, err = shard.New(cfg, func(id int) (shard.Backend, error) {
		g, reps, err := buildGroup(fmt.Sprintf("sh%d", id), cfg.MirrorSize())
		if err != nil {
			return nil, err
		}
		rig.shardNICs = append(rig.shardNICs, reps)
		return g, nil
	})
	if err != nil {
		return nil, err
	}
	return rig, nil
}

// drive mirrors deployment.drive for the recovery rig.
func (r *recoveryRig) drive(fn func(f *sim.Fiber) error) error {
	var runErr error
	done := false
	r.k.Spawn("2pc-recovery-driver", func(f *sim.Fiber) {
		defer r.k.StopRun()
		runErr = fn(f)
		done = true
	})
	err := r.k.RunUntil(r.k.Now().Add(60 * sim.Second))
	if err != nil && err != sim.ErrStopped {
		return err
	}
	if runErr != nil {
		return runErr
	}
	if !done {
		return fmt.Errorf("driver hung")
	}
	return nil
}

func (r *recoveryRig) counters() Counters {
	msgs, bytes := r.fab.Stats()
	fs := r.fab.FaultStats()
	return Counters{
		SimEvents: r.k.Executed(),
		CQEs:      r.fab.CQEs(),
		Messages:  msgs,
		WireBytes: bytes,
		Drops:     fs.Drops,
		Dups:      fs.Dups,
	}
}

func run2PCRecovery(seed uint64, sc Scale) (*Result, error) {
	res := &Result{}
	table := metrics.NewTable("coordinator crash-point sweep, recovery by the commit-record rule",
		"leg", "span", "kill points", "rolled back", "rolled forward", "lock leaks", "retry commits")
	legs := []struct {
		name   string
		faults func() *rdma.FaultPlan
	}{
		{"clean", func() *rdma.FaultPlan { return nil }},
		{"dup+delay", func() *rdma.FaultPlan {
			return &rdma.FaultPlan{Links: []rdma.LinkFault{
				{DupProb: 0.05, ExtraDelay: 2 * sim.Microsecond},
			}}
		}},
	}
	// Full scale stresses each recovered deployment with extra
	// post-recovery transactions; quick proves the decision rule.
	afterTxns := sc.pick(1, 8)

	for _, leg := range legs {
		for _, span := range []int{1, 2, 4} {
			// Coordinator steps: (lock, append) per shard, log-commit,
			// (execute, unlock) per shard, log-truncate.
			totalSteps := 4*span + 2
			commitPoint := 2*span + 1
			rolledBack, rolledForward, lockLeaks, retryCommits := 0, 0, 0, 0
			mixedVisibility := 0 // kill points whose outcome was not all-or-nothing
			logResidue := 0      // kill points leaving live commit records after recovery
			for kill := 1; kill <= totalSteps; kill++ {
				rig, err := newRecoveryRig(seed+uint64(1000*span+kill), leg.faults())
				if err != nil {
					return nil, fmt.Errorf("%s span %d kill %d: %w", leg.name, span, kill, err)
				}
				writes := make([]shard.Write, span)
				for i := range writes {
					writes[i] = shard.Write{Key: uint64(i), Data: []byte(fmt.Sprintf("p%d", i))}
				}
				err = rig.drive(func(f *sim.Fiber) error {
					step := 0
					rig.router.SetTxnStepHook(func(s txn.Step, participant int) error {
						step++
						if step == kill {
							return txn.ErrCoordinatorCrash
						}
						return nil
					})
					if err := rig.router.Txn(f, writes); !errors.Is(err, txn.ErrCoordinatorCrash) {
						return fmt.Errorf("txn survived the injected crash: %v", err)
					}
					rig.router.SetTxnStepHook(nil)

					rs, err := rig.router.Recover(f)
					if err != nil {
						return fmt.Errorf("recover: %w", err)
					}
					rolledBack += rs.Back
					rolledForward += rs.Forward

					// Audit: all-or-nothing visibility on the client mirror
					// and on every replica's memory image.
					wantCommitted := kill >= commitPoint
					visible := 0
					for i := 0; i < span; i++ {
						st := rig.router.Shard(i).Store
						want := []byte(fmt.Sprintf("p%d", i))
						got, err := st.ReadData(0, len(want))
						if err != nil {
							return fmt.Errorf("shard %d read: %w", i, err)
						}
						shardVisible := bytes.Equal(got, want)
						for _, nic := range rig.shardNICs[i] {
							img := make([]byte, len(want))
							if err := nic.Memory().Read(st.DataOff(), img); err != nil {
								return fmt.Errorf("shard %d replica read: %w", i, err)
							}
							if bytes.Equal(img, want) != shardVisible {
								return fmt.Errorf("shard %d: replica image diverges from client mirror", i)
							}
						}
						if shardVisible {
							visible++
						}
					}
					committedAll := visible == span
					if visible != 0 && !committedAll {
						mixedVisibility++
					} else if committedAll != wantCommitted {
						mixedVisibility++ // wrong side of the commit point
					}
					for i := 0; i < r2Shards; i++ {
						if locked, err := rig.router.Shard(i).Store.Locked(); err != nil {
							return err
						} else if locked {
							lockLeaks++
						}
					}
					if recs, err := rig.router.CommitLog().Records(); err != nil {
						return err
					} else if len(recs) != 0 {
						logResidue++
					}

					// The client retries, then keeps using the deployment.
					for n := 0; n < afterTxns; n++ {
						if err := rig.router.Txn(f, writes); err != nil {
							return fmt.Errorf("retry %d: %w", n, err)
						}
					}
					st := rig.router.Stats()
					if st.Commits == uint64(afterTxns) && st.Aborts == 0 && st.InDoubt == 0 {
						retryCommits++
					}
					return nil
				})
				if err != nil {
					return nil, fmt.Errorf("%s span %d kill %d: %w", leg.name, span, kill, err)
				}
				res.Counters = res.Counters.add(rig.counters())
			}
			table.AddRow(leg.name, span, totalSteps, rolledBack, rolledForward, lockLeaks, retryCommits)

			// Every pre-commit-point kill must roll back, every later one
			// roll forward; both sides all-or-nothing.
			res.check(fmt.Sprintf("%s span %d: post-recovery visibility is all-or-nothing at every kill point", leg.name, span),
				mixedVisibility == 0,
				"%d of %d kill points violated all-or-nothing or landed on the wrong side of the commit point", mixedVisibility, totalSteps)
			res.check(fmt.Sprintf("%s span %d: no group lock leaks and the commit log drains", leg.name, span),
				lockLeaks == 0 && logResidue == 0,
				"%d leaked locks, %d kill points with live commit records after recovery", lockLeaks, logResidue)
			res.check(fmt.Sprintf("%s span %d: the retried transaction commits exactly once per attempt", leg.name, span),
				retryCommits == totalSteps,
				"%d of %d recovered deployments committed %d retried transaction(s) cleanly", retryCommits, totalSteps, afterTxns)
			wantFwd := (totalSteps - commitPoint + 1) * span
			res.check(fmt.Sprintf("%s span %d: recovery rolled forward exactly the record-bearing shards", leg.name, span),
				rolledForward <= wantFwd && rolledForward > 0,
				"%d shards rolled forward across %d post-commit-point kills (≤%d: shards already unlocked before the crash are skipped)",
				rolledForward, totalSteps-commitPoint+1, wantFwd)
		}
	}
	res.Tables = append(res.Tables, table)
	res.Notes = append(res.Notes,
		"the commit record (txnID, lock token, participant shards) is durably appended to the coordinator's own 2-replica group after every participant prepared and before any executes",
		"recovery decision rule: token-locked shard named by a record → roll forward (execute + unlock); token-locked shard with no record → roll back (presumed abort); never both for one transaction",
		"kill points 1..2S are pre-commit-point (lock/append per shard), 2S+1 logs the record, 2S+2..4S+1 execute/unlock, 4S+2 truncates",
		"the dup+delay leg draws from the fault plan's forked RNG stream, so both legs are seed-deterministic and the clean leg's event stream matches a fault-free run byte for byte",
		fmt.Sprintf("each recovered deployment then serves %d follow-up transaction(s); commit/abort/in-doubt accounting must show exactly the commits", sc.pick(1, 8)))
	return res, nil
}
