// Package ycsb reimplements the Yahoo! Cloud Serving Benchmark core
// workloads (Cooper et al., SoCC 2010) used by the paper's evaluation
// (§6.2, Table 3): operation mixes A/B/D/E/F, zipfian / scrambled-zipfian
// / latest / uniform request distributions, and a fiber-driven runner that
// records per-operation latencies.
package ycsb

import (
	"fmt"
	"math"

	"hyperloop/internal/sim"
)

// Generator produces the next item index to operate on.
type Generator interface {
	// Next returns an index in [0, n) where n is the current item count
	// the caller supplies (grows as inserts happen).
	Next(n int) int
}

// Uniform picks uniformly at random.
type Uniform struct {
	rng *sim.RNG
}

// NewUniform returns a uniform generator.
func NewUniform(rng *sim.RNG) *Uniform { return &Uniform{rng: rng} }

// Next implements Generator.
func (u *Uniform) Next(n int) int {
	if n <= 0 {
		return 0
	}
	return u.rng.Intn(n)
}

// Zipfian implements the Gray et al. "Quickly generating billion-record
// synthetic databases" algorithm, as in the YCSB core package. Lower
// indices are exponentially more popular.
type Zipfian struct {
	rng   *sim.RNG
	items int
	theta float64

	alpha, zetan, eta, zeta2theta float64
}

// ZipfianConstant is YCSB's default skew.
const ZipfianConstant = 0.99

// NewZipfian returns a zipfian generator over items elements.
func NewZipfian(rng *sim.RNG, items int, theta float64) *Zipfian {
	if items < 1 {
		items = 1
	}
	z := &Zipfian{rng: rng, items: items, theta: theta}
	z.zeta2theta = zetaStatic(2, theta)
	z.recompute()
	return z
}

func zetaStatic(n int, theta float64) float64 {
	sum := 0.0
	for i := 1; i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

func (z *Zipfian) recompute() {
	z.zetan = zetaStatic(z.items, z.theta)
	z.alpha = 1 / (1 - z.theta)
	z.eta = (1 - math.Pow(2/float64(z.items), 1-z.theta)) / (1 - z.zeta2theta/z.zetan)
}

// Next implements Generator. If n differs from the configured item count
// the distribution is recomputed (inserts grew the keyspace).
func (z *Zipfian) Next(n int) int {
	if n <= 0 {
		return 0
	}
	if n != z.items {
		z.items = n
		z.recompute()
	}
	u := z.rng.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+math.Pow(0.5, z.theta) {
		return 1
	}
	idx := int(float64(n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if idx >= n {
		idx = n - 1
	}
	return idx
}

// ScrambledZipfian spreads the zipfian head across the keyspace by
// hashing, as YCSB does for workloads A/B/E/F.
type ScrambledZipfian struct {
	z *Zipfian
}

// NewScrambledZipfian returns a scrambled zipfian generator.
func NewScrambledZipfian(rng *sim.RNG, items int) *ScrambledZipfian {
	return &ScrambledZipfian{z: NewZipfian(rng, items, ZipfianConstant)}
}

func fnvHash64(v uint64) uint64 {
	var h uint64 = 0xCBF29CE484222325
	for i := 0; i < 8; i++ {
		h ^= v & 0xFF
		h *= 0x100000001B3
		v >>= 8
	}
	return h
}

// Next implements Generator.
func (s *ScrambledZipfian) Next(n int) int {
	if n <= 0 {
		return 0
	}
	return int(fnvHash64(uint64(s.z.Next(n))) % uint64(n))
}

// Latest skews toward the most recently inserted items (workload D).
type Latest struct {
	z *Zipfian
}

// NewLatest returns a latest-skewed generator.
func NewLatest(rng *sim.RNG, items int) *Latest {
	return &Latest{z: NewZipfian(rng, items, ZipfianConstant)}
}

// Next implements Generator.
func (l *Latest) Next(n int) int {
	if n <= 0 {
		return 0
	}
	off := l.z.Next(n)
	return n - 1 - off
}

// Distribution names a request distribution.
type Distribution int

// Request distributions.
const (
	DistUniform Distribution = iota + 1
	DistZipfian
	DistLatest
)

// String returns the distribution name.
func (d Distribution) String() string {
	switch d {
	case DistUniform:
		return "uniform"
	case DistZipfian:
		return "zipfian"
	case DistLatest:
		return "latest"
	default:
		return fmt.Sprintf("Distribution(%d)", int(d))
	}
}

// NewGenerator builds the generator for a distribution.
func NewGenerator(d Distribution, rng *sim.RNG, items int) Generator {
	switch d {
	case DistLatest:
		return NewLatest(rng, items)
	case DistZipfian:
		return NewScrambledZipfian(rng, items)
	default:
		return NewUniform(rng)
	}
}
