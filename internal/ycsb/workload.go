package ycsb

import (
	"fmt"

	"hyperloop/internal/metrics"
	"hyperloop/internal/sim"
)

// OpType is one YCSB operation kind.
type OpType int

// Operation kinds (Table 3 columns).
const (
	OpRead OpType = iota + 1
	OpUpdate
	OpInsert
	OpModify // read-modify-write
	OpScan
)

// String returns the op name.
func (o OpType) String() string {
	switch o {
	case OpRead:
		return "read"
	case OpUpdate:
		return "update"
	case OpInsert:
		return "insert"
	case OpModify:
		return "modify"
	case OpScan:
		return "scan"
	default:
		return fmt.Sprintf("OpType(%d)", int(o))
	}
}

// Workload is a YCSB core workload definition.
type Workload struct {
	Name string
	// Proportions, summing to 1 (Table 3, in percent there).
	Read, Update, Insert, Modify, Scan float64
	// Dist is the request distribution.
	Dist Distribution
	// MaxScanLen bounds scan lengths (uniform in [1, MaxScanLen]).
	MaxScanLen int
}

// The paper's Table 3 workloads.
var (
	// WorkloadA is 50% read / 50% update, zipfian.
	WorkloadA = Workload{Name: "A", Read: 0.5, Update: 0.5, Dist: DistZipfian}
	// WorkloadB is 95% read / 5% update, zipfian.
	WorkloadB = Workload{Name: "B", Read: 0.95, Update: 0.05, Dist: DistZipfian}
	// WorkloadD is 95% read / 5% insert, latest.
	WorkloadD = Workload{Name: "D", Read: 0.95, Insert: 0.05, Dist: DistLatest}
	// WorkloadE is 95% scan / 5% insert, zipfian.
	WorkloadE = Workload{Name: "E", Scan: 0.95, Insert: 0.05, Dist: DistZipfian, MaxScanLen: 100}
	// WorkloadF is 50% read / 50% read-modify-write, zipfian.
	WorkloadF = Workload{Name: "F", Read: 0.5, Modify: 0.5, Dist: DistZipfian}
)

// Workloads returns the Table 3 set in paper order.
func Workloads() []Workload {
	return []Workload{WorkloadA, WorkloadB, WorkloadD, WorkloadE, WorkloadF}
}

// ByName returns the named workload.
func ByName(name string) (Workload, error) {
	for _, w := range Workloads() {
		if w.Name == name {
			return w, nil
		}
	}
	return Workload{}, fmt.Errorf("ycsb: unknown workload %q", name)
}

// pick chooses an op type per the workload proportions.
func (w Workload) pick(rng *sim.RNG) OpType {
	r := rng.Float64()
	switch {
	case r < w.Read:
		return OpRead
	case r < w.Read+w.Update:
		return OpUpdate
	case r < w.Read+w.Update+w.Insert:
		return OpInsert
	case r < w.Read+w.Update+w.Insert+w.Modify:
		return OpModify
	default:
		return OpScan
	}
}

// DB is the store interface the runner drives. Key encoding and value
// construction are the adapter's concern.
type DB interface {
	Read(f *sim.Fiber, key int) error
	Update(f *sim.Fiber, key int, value []byte) error
	Insert(f *sim.Fiber, key int, value []byte) error
	Scan(f *sim.Fiber, startKey, count int) error
	ReadModifyWrite(f *sim.Fiber, key int, value []byte) error
}

// Key renders the canonical YCSB key for index i.
func Key(i int) string { return fmt.Sprintf("user%012d", i) }

// RunnerConfig parameterizes a workload run.
type RunnerConfig struct {
	Workload    Workload
	RecordCount int // preloaded records
	OpCount     int
	ValueSize   int
	Seed        uint64
	// ThinkTime inserts idle time between operations (0 = closed loop).
	ThinkTime sim.Duration
}

// Result aggregates a run's latency distributions.
type Result struct {
	Overall *metrics.Histogram
	ByOp    map[OpType]*metrics.Histogram
	Ops     int
	Errors  int
}

// Runner drives a workload against a DB from a fiber.
type Runner struct {
	cfg  RunnerConfig
	rng  *sim.RNG
	gen  Generator
	keys int
}

// NewRunner builds a runner; Load must run before Run.
func NewRunner(cfg RunnerConfig) *Runner {
	if cfg.ValueSize <= 0 {
		cfg.ValueSize = 1024
	}
	rng := sim.NewRNG(cfg.Seed)
	return &Runner{
		cfg:  cfg,
		rng:  rng,
		gen:  NewGenerator(cfg.Workload.Dist, rng.Fork(), cfg.RecordCount),
		keys: cfg.RecordCount,
	}
}

func (r *Runner) value() []byte {
	v := make([]byte, r.cfg.ValueSize)
	for i := range v {
		v[i] = byte('a' + r.rng.Intn(26))
	}
	return v
}

// Load preloads RecordCount records.
func (r *Runner) Load(f *sim.Fiber, db DB) error {
	for i := 0; i < r.cfg.RecordCount; i++ {
		if err := db.Insert(f, i, r.value()); err != nil {
			return fmt.Errorf("load record %d: %w", i, err)
		}
	}
	return nil
}

// Run executes OpCount operations, returning latency distributions.
func (r *Runner) Run(f *sim.Fiber, db DB) (*Result, error) {
	res := &Result{
		Overall: metrics.NewHistogram(),
		ByOp:    make(map[OpType]*metrics.Histogram),
	}
	for _, op := range []OpType{OpRead, OpUpdate, OpInsert, OpModify, OpScan} {
		res.ByOp[op] = metrics.NewHistogram()
	}
	for i := 0; i < r.cfg.OpCount; i++ {
		op := r.cfg.Workload.pick(r.rng)
		start := f.Now()
		var err error
		switch op {
		case OpRead:
			err = db.Read(f, r.gen.Next(r.keys))
		case OpUpdate:
			err = db.Update(f, r.gen.Next(r.keys), r.value())
		case OpInsert:
			err = db.Insert(f, r.keys, r.value())
			if err == nil {
				r.keys++
			}
		case OpModify:
			err = db.ReadModifyWrite(f, r.gen.Next(r.keys), r.value())
		case OpScan:
			n := 1 + r.rng.Intn(maxInt(r.cfg.Workload.MaxScanLen, 1))
			err = db.Scan(f, r.gen.Next(r.keys), n)
		}
		lat := f.Now().Sub(start)
		if err != nil {
			res.Errors++
		} else {
			res.Overall.RecordDuration(lat)
			res.ByOp[op].RecordDuration(lat)
			res.Ops++
		}
		if r.cfg.ThinkTime > 0 {
			f.Sleep(r.cfg.ThinkTime)
		}
	}
	return res, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
