package ycsb

import (
	"math"
	"testing"
	"testing/quick"

	"hyperloop/internal/sim"
)

func TestTable3Proportions(t *testing.T) {
	// The exact op mixes of the paper's Table 3.
	cases := []struct {
		w                                  Workload
		read, update, insert, modify, scan float64
	}{
		{WorkloadA, 0.5, 0.5, 0, 0, 0},
		{WorkloadB, 0.95, 0.05, 0, 0, 0},
		{WorkloadD, 0.95, 0, 0.05, 0, 0},
		{WorkloadE, 0, 0, 0.05, 0, 0.95},
		{WorkloadF, 0.5, 0, 0, 0.5, 0},
	}
	for _, c := range cases {
		if c.w.Read != c.read || c.w.Update != c.update || c.w.Insert != c.insert ||
			c.w.Modify != c.modify || c.w.Scan != c.scan {
			t.Errorf("workload %s mix = %+v", c.w.Name, c.w)
		}
		sum := c.w.Read + c.w.Update + c.w.Insert + c.w.Modify + c.w.Scan
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("workload %s proportions sum to %v", c.w.Name, sum)
		}
	}
	if WorkloadD.Dist != DistLatest {
		t.Error("workload D must use the latest distribution")
	}
	if WorkloadE.MaxScanLen <= 0 {
		t.Error("workload E needs a scan length")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"A", "B", "D", "E", "F"} {
		w, err := ByName(name)
		if err != nil || w.Name != name {
			t.Fatalf("ByName(%s) = %+v, %v", name, w, err)
		}
	}
	if _, err := ByName("C"); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestPickMatchesProportions(t *testing.T) {
	rng := sim.NewRNG(1)
	counts := make(map[OpType]int)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[WorkloadA.pick(rng)]++
	}
	readFrac := float64(counts[OpRead]) / n
	if readFrac < 0.48 || readFrac > 0.52 {
		t.Fatalf("workload A read fraction = %v", readFrac)
	}
	if counts[OpInsert]+counts[OpScan]+counts[OpModify] != 0 {
		t.Fatalf("workload A produced unexpected ops: %v", counts)
	}
}

func TestUniformBounds(t *testing.T) {
	u := NewUniform(sim.NewRNG(2))
	f := func(n uint16) bool {
		m := int(n)%1000 + 1
		v := u.Next(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if u.Next(0) != 0 {
		t.Fatal("Next(0) != 0")
	}
}

func TestZipfianSkew(t *testing.T) {
	z := NewZipfian(sim.NewRNG(3), 1000, ZipfianConstant)
	counts := make([]int, 1000)
	const n = 200000
	for i := 0; i < n; i++ {
		idx := z.Next(1000)
		if idx < 0 || idx >= 1000 {
			t.Fatalf("zipfian out of range: %d", idx)
		}
		counts[idx]++
	}
	// Head must be far more popular than the tail.
	if counts[0] < 20*counts[900] && counts[900] > 0 {
		t.Fatalf("zipfian not skewed: head=%d tail=%d", counts[0], counts[900])
	}
	// Head frequency for theta=0.99, n=1000 is ≈ 1/zetan ≈ 13%.
	frac := float64(counts[0]) / n
	if frac < 0.08 || frac > 0.25 {
		t.Fatalf("head fraction = %v, want ≈0.13", frac)
	}
}

func TestScrambledZipfianSpreadsHead(t *testing.T) {
	s := NewScrambledZipfian(sim.NewRNG(4), 1000)
	counts := make(map[int]int)
	for i := 0; i < 100000; i++ {
		idx := s.Next(1000)
		if idx < 0 || idx >= 1000 {
			t.Fatalf("scrambled out of range: %d", idx)
		}
		counts[idx]++
	}
	// The most popular item should NOT be index 0 (hashed away) but some
	// item must still dominate.
	maxIdx, maxCount := 0, 0
	for k, v := range counts {
		if v > maxCount {
			maxIdx, maxCount = k, v
		}
	}
	if maxCount < 5000 {
		t.Fatalf("no hot key after scrambling: max=%d", maxCount)
	}
	_ = maxIdx
}

func TestLatestFavorsRecent(t *testing.T) {
	l := NewLatest(sim.NewRNG(5), 1000)
	recent, old := 0, 0
	for i := 0; i < 100000; i++ {
		idx := l.Next(1000)
		if idx >= 900 {
			recent++
		}
		if idx < 100 {
			old++
		}
	}
	if recent < 10*old {
		t.Fatalf("latest distribution not recency-skewed: recent=%d old=%d", recent, old)
	}
}

func TestGeneratorGrowsWithInserts(t *testing.T) {
	l := NewLatest(sim.NewRNG(6), 10)
	seen := false
	for i := 0; i < 1000; i++ {
		if l.Next(100) >= 10 {
			seen = true
		}
	}
	if !seen {
		t.Fatal("generator ignored keyspace growth")
	}
}

func TestKeyFormat(t *testing.T) {
	if Key(42) != "user000000000042" {
		t.Fatalf("Key(42) = %q", Key(42))
	}
}

// fakeDB counts ops and simulates fixed latencies.
type fakeDB struct {
	reads, updates, inserts, modifies, scans int
}

func (d *fakeDB) Read(f *sim.Fiber, key int) error { d.reads++; f.Sleep(sim.Microsecond); return nil }
func (d *fakeDB) Update(f *sim.Fiber, key int, v []byte) error {
	d.updates++
	f.Sleep(2 * sim.Microsecond)
	return nil
}
func (d *fakeDB) Insert(f *sim.Fiber, key int, v []byte) error {
	d.inserts++
	f.Sleep(2 * sim.Microsecond)
	return nil
}
func (d *fakeDB) Scan(f *sim.Fiber, start, count int) error {
	d.scans++
	f.Sleep(sim.Duration(count) * sim.Microsecond)
	return nil
}
func (d *fakeDB) ReadModifyWrite(f *sim.Fiber, key int, v []byte) error {
	d.modifies++
	f.Sleep(3 * sim.Microsecond)
	return nil
}

func TestRunnerDrivesWorkload(t *testing.T) {
	k := sim.NewKernel(9)
	db := &fakeDB{}
	r := NewRunner(RunnerConfig{
		Workload:    WorkloadA,
		RecordCount: 100,
		OpCount:     1000,
		ValueSize:   64,
		Seed:        1,
	})
	var res *Result
	k.Spawn("runner", func(f *sim.Fiber) {
		if err := r.Load(f, db); err != nil {
			t.Errorf("load: %v", err)
			return
		}
		var err error
		res, err = r.Run(f, db)
		if err != nil {
			t.Errorf("run: %v", err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if db.inserts != 100 { // loads only; A has no inserts
		t.Fatalf("inserts = %d", db.inserts)
	}
	if res.Ops != 1000 || res.Errors != 0 {
		t.Fatalf("ops=%d errors=%d", res.Ops, res.Errors)
	}
	if db.reads < 400 || db.reads > 600 {
		t.Fatalf("reads = %d, want ≈500", db.reads)
	}
	if db.updates+db.reads != 1000 {
		t.Fatalf("A mix wrong: %+v", db)
	}
	if res.Overall.Count() != 1000 {
		t.Fatalf("histogram count = %d", res.Overall.Count())
	}
	if res.ByOp[OpUpdate].MeanDuration() <= res.ByOp[OpRead].MeanDuration() {
		t.Fatal("per-op histograms not separated")
	}
}

func TestRunnerWorkloadEInsertsGrowKeyspace(t *testing.T) {
	k := sim.NewKernel(10)
	db := &fakeDB{}
	r := NewRunner(RunnerConfig{Workload: WorkloadE, RecordCount: 50, OpCount: 500, Seed: 2})
	k.Spawn("runner", func(f *sim.Fiber) {
		if err := r.Load(f, db); err != nil {
			t.Errorf("load: %v", err)
			return
		}
		if _, err := r.Run(f, db); err != nil {
			t.Errorf("run: %v", err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if db.scans < 400 {
		t.Fatalf("scans = %d, want ≈475", db.scans)
	}
	if db.inserts <= 50 {
		t.Fatal("workload E never inserted")
	}
	if r.keys <= 50 {
		t.Fatal("keyspace did not grow")
	}
}

func TestDistributionStrings(t *testing.T) {
	for _, d := range []Distribution{DistUniform, DistZipfian, DistLatest, Distribution(9)} {
		if d.String() == "" {
			t.Fatal("empty distribution string")
		}
	}
	for _, o := range []OpType{OpRead, OpUpdate, OpInsert, OpModify, OpScan, OpType(9)} {
		if o.String() == "" {
			t.Fatal("empty op string")
		}
	}
}

func TestRunnerThinkTime(t *testing.T) {
	k := sim.NewKernel(12)
	db := &fakeDB{}
	r := NewRunner(RunnerConfig{
		Workload:    WorkloadB,
		RecordCount: 10,
		OpCount:     100,
		Seed:        4,
		ThinkTime:   100 * sim.Microsecond,
	})
	var end sim.Time
	k.Spawn("runner", func(f *sim.Fiber) {
		if err := r.Load(f, db); err != nil {
			t.Errorf("load: %v", err)
			return
		}
		if _, err := r.Run(f, db); err != nil {
			t.Errorf("run: %v", err)
		}
		end = f.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if end < sim.Time(100*100*sim.Microsecond) {
		t.Fatalf("think time not applied: finished at %v", end)
	}
}
