package wal

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	r := Record{
		Seq: 42,
		Entries: []Entry{
			{Off: 100, Data: []byte("hello")},
			{Off: 2000, Data: []byte("world!")},
			{Off: 0, Data: nil},
		},
	}
	buf := make([]byte, r.EncodedSize())
	n, err := r.Encode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != r.EncodedSize() {
		t.Fatalf("encoded %d bytes, size says %d", n, r.EncodedSize())
	}
	d, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if d.Seq != 42 || len(d.Entries) != 3 || d.Size != n {
		t.Fatalf("decoded %+v", d)
	}
	if d.Entries[0].Off != 100 || string(d.Data(buf, d.Entries[0])) != "hello" {
		t.Fatalf("entry 0 wrong: %+v", d.Entries[0])
	}
	if d.Entries[1].Off != 2000 || string(d.Data(buf, d.Entries[1])) != "world!" {
		t.Fatalf("entry 1 wrong")
	}
	if d.Entries[2].Len != 0 {
		t.Fatalf("empty entry len = %d", d.Entries[2].Len)
	}
}

func TestEncodeBufferTooSmall(t *testing.T) {
	r := Record{Seq: 1, Entries: []Entry{{Off: 0, Data: make([]byte, 100)}}}
	if _, err := r.Encode(make([]byte, 10)); !errors.Is(err, ErrTooSmall) {
		t.Fatalf("err = %v", err)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	r := Record{Seq: 7, Entries: []Entry{{Off: 5, Data: []byte("payload")}}}
	good := make([]byte, r.EncodedSize())
	if _, err := r.Encode(good); err != nil {
		t.Fatal(err)
	}

	cases := map[string]func([]byte){
		"bad magic":      func(b []byte) { b[0] ^= 0xFF },
		"flipped data":   func(b []byte) { b[len(b)-6] ^= 0x01 },
		"flipped crc":    func(b []byte) { b[len(b)-1] ^= 0x01 },
		"flipped seq":    func(b []byte) { b[5] ^= 0x01 },
		"truncated ding": func(b []byte) { b[12] = 0xFF; b[13] = 0xFF }, // entry count explodes
	}
	for name, corrupt := range cases {
		bad := append([]byte(nil), good...)
		corrupt(bad)
		if _, err := Decode(bad); err == nil {
			t.Errorf("%s: corruption not detected", name)
		}
	}
	// Truncated buffer.
	if _, err := Decode(good[:len(good)-2]); err == nil {
		t.Error("truncated record accepted")
	}
	if _, err := Decode(good[:3]); !errors.Is(err, ErrTooSmall) {
		t.Error("tiny buffer accepted")
	}
}

func TestPadMarkers(t *testing.T) {
	buf := make([]byte, 64)
	if err := EncodePad(buf, 64); err != nil {
		t.Fatal(err)
	}
	n, ok := IsPad(buf)
	if !ok || n != 64 {
		t.Fatalf("pad = %d,%v", n, ok)
	}
	if err := EncodePad(buf, 2); !errors.Is(err, ErrTooSmall) {
		t.Fatalf("tiny pad err = %v", err)
	}
	if _, ok := IsPad(buf[:2]); ok {
		t.Fatal("short buffer recognized as pad")
	}
}

func TestScanWalksRecordsAndPads(t *testing.T) {
	img := make([]byte, 4096)
	p := 0
	var seqs []uint64
	for i := 0; i < 5; i++ {
		r := Record{Seq: uint64(i + 1), Entries: []Entry{{Off: i * 10, Data: bytes.Repeat([]byte{byte(i)}, i+1)}}}
		n, err := r.Encode(img[p:])
		if err != nil {
			t.Fatal(err)
		}
		p += n
		seqs = append(seqs, uint64(i+1))
		if i == 2 { // insert a pad mid-stream
			if err := EncodePad(img[p:], 32); err != nil {
				t.Fatal(err)
			}
			p += 32
		}
	}
	recs, positions, err := Scan(img, 0, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 || len(positions) != 5 {
		t.Fatalf("scanned %d records", len(recs))
	}
	for i, r := range recs {
		if r.Seq != seqs[i] {
			t.Fatalf("record %d seq = %d", i, r.Seq)
		}
	}
}

func TestScanStopsAtTornTail(t *testing.T) {
	img := make([]byte, 1024)
	r1 := Record{Seq: 1, Entries: []Entry{{Off: 0, Data: []byte("ok")}}}
	n1, _ := r1.Encode(img)
	r2 := Record{Seq: 2, Entries: []Entry{{Off: 8, Data: []byte("torn")}}}
	n2, _ := r2.Encode(img[n1:])
	img[n1+n2-2] ^= 0xFF // corrupt record 2's tail
	recs, _, err := Scan(img, 0, n1+n2)
	if err == nil {
		t.Fatal("torn tail not detected")
	}
	if len(recs) != 1 || recs[0].Seq != 1 {
		t.Fatalf("valid prefix = %d records", len(recs))
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seq uint64, offs []uint16, blobs [][]byte) bool {
		n := len(offs)
		if len(blobs) < n {
			n = len(blobs)
		}
		if n > 16 {
			n = 16
		}
		r := Record{Seq: seq}
		for i := 0; i < n; i++ {
			data := blobs[i]
			if len(data) > 512 {
				data = data[:512]
			}
			r.Entries = append(r.Entries, Entry{Off: int(offs[i]), Data: data})
		}
		buf := make([]byte, r.EncodedSize()+16)
		sz, err := r.Encode(buf)
		if err != nil {
			return false
		}
		d, err := Decode(buf)
		if err != nil || d.Seq != seq || len(d.Entries) != len(r.Entries) || d.Size != sz {
			return false
		}
		for i, e := range d.Entries {
			if e.Off != r.Entries[i].Off || !bytes.Equal(d.Data(buf, e), r.Entries[i].Data) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestCorruptionDetectionProperty(t *testing.T) {
	// Flipping any single bit of an encoded record must make Decode fail
	// or change nothing material (never silently yield different content).
	r := Record{Seq: 99, Entries: []Entry{{Off: 1234, Data: []byte("property-based")}}}
	buf := make([]byte, r.EncodedSize())
	if _, err := r.Encode(buf); err != nil {
		t.Fatal(err)
	}
	f := func(bitIdx uint16) bool {
		pos := int(bitIdx) % (len(buf) * 8)
		bad := append([]byte(nil), buf...)
		bad[pos/8] ^= 1 << (pos % 8)
		_, err := Decode(bad)
		return err != nil // every single-bit flip must be caught
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
