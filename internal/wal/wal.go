// Package wal defines the write-ahead-log record format used by the
// replicated transaction layer (§5, "Log Replication"): each record is a
// redo log structured as a list of modifications, where each entry is a
// (data, len, offset) tuple meaning "copy data of length len to offset in
// the database". Records carry a CRC so recovery can reject torn writes.
//
// The package is pure data structure: encoding, decoding, and scanning a
// circular log region. Replication of the bytes is the txn package's job.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Record framing constants.
const (
	magicRecord = 0x484C5247 // "HLRG"
	magicPad    = 0x484C5044 // "HLPD": fills the tail of the region before wrap

	recHeaderSize  = 4 + 8 + 4 // magic, seq, nEntries
	entryHeader    = 8 + 4     // dstOff, len
	recTrailerSize = 4         // crc32
	padHeaderSize  = 4 + 4     // magic, padLen
)

// Errors surfaced to recovery code.
var (
	ErrCorrupt  = errors.New("wal: corrupt record")
	ErrTooSmall = errors.New("wal: buffer too small")
)

// Entry is one modification: Data is copied to database offset Off.
type Entry struct {
	Off  int
	Data []byte
}

// Record is an atomic group of modifications.
type Record struct {
	Seq     uint64
	Entries []Entry
}

// EncodedSize returns the record's on-log footprint.
func (r *Record) EncodedSize() int {
	n := recHeaderSize + recTrailerSize
	for _, e := range r.Entries {
		n += entryHeader + len(e.Data)
	}
	return n
}

// Encode serializes the record into buf, returning the bytes written.
func (r *Record) Encode(buf []byte) (int, error) {
	need := r.EncodedSize()
	if len(buf) < need {
		return 0, fmt.Errorf("%w: need %d, have %d", ErrTooSmall, need, len(buf))
	}
	binary.LittleEndian.PutUint32(buf[0:], magicRecord)
	binary.LittleEndian.PutUint64(buf[4:], r.Seq)
	binary.LittleEndian.PutUint32(buf[12:], uint32(len(r.Entries)))
	p := recHeaderSize
	for _, e := range r.Entries {
		binary.LittleEndian.PutUint64(buf[p:], uint64(e.Off))
		binary.LittleEndian.PutUint32(buf[p+8:], uint32(len(e.Data)))
		copy(buf[p+entryHeader:], e.Data)
		p += entryHeader + len(e.Data)
	}
	crc := crc32.ChecksumIEEE(buf[:p])
	binary.LittleEndian.PutUint32(buf[p:], crc)
	return p + recTrailerSize, nil
}

// DecodedEntry is an entry plus the position of its data bytes relative to
// the start of the record — what gMEMCPY needs to copy the data out of the
// log region without the CPU touching it.
type DecodedEntry struct {
	Off     int // database offset to copy to
	Len     int
	DataPos int // offset of the data within the record's encoding
}

// DecodedRecord is the result of parsing one on-log record.
type DecodedRecord struct {
	Seq     uint64
	Entries []DecodedEntry
	Size    int // total encoded size including trailer
}

// Data returns entry e's bytes given the record's encoding.
func (d *DecodedRecord) Data(buf []byte, e DecodedEntry) []byte {
	return buf[e.DataPos : e.DataPos+e.Len]
}

// Decode parses a record at the start of buf, verifying framing and CRC.
func Decode(buf []byte) (DecodedRecord, error) {
	var d DecodedRecord
	if len(buf) < recHeaderSize+recTrailerSize {
		return d, ErrTooSmall
	}
	if binary.LittleEndian.Uint32(buf[0:]) != magicRecord {
		return d, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	d.Seq = binary.LittleEndian.Uint64(buf[4:])
	n := int(binary.LittleEndian.Uint32(buf[12:]))
	if n < 0 || n > 1<<20 {
		return d, fmt.Errorf("%w: implausible entry count %d", ErrCorrupt, n)
	}
	p := recHeaderSize
	d.Entries = make([]DecodedEntry, 0, n)
	for i := 0; i < n; i++ {
		if p+entryHeader > len(buf) {
			return d, fmt.Errorf("%w: truncated entry header", ErrCorrupt)
		}
		off := int(binary.LittleEndian.Uint64(buf[p:]))
		ln := int(binary.LittleEndian.Uint32(buf[p+8:]))
		if ln < 0 || p+entryHeader+ln > len(buf) {
			return d, fmt.Errorf("%w: truncated entry data", ErrCorrupt)
		}
		d.Entries = append(d.Entries, DecodedEntry{Off: off, Len: ln, DataPos: p + entryHeader})
		p += entryHeader + ln
	}
	if p+recTrailerSize > len(buf) {
		return d, fmt.Errorf("%w: truncated trailer", ErrCorrupt)
	}
	want := binary.LittleEndian.Uint32(buf[p:])
	if crc32.ChecksumIEEE(buf[:p]) != want {
		return d, fmt.Errorf("%w: crc mismatch", ErrCorrupt)
	}
	d.Size = p + recTrailerSize
	return d, nil
}

// EncodePad writes a pad marker filling length bytes (the unusable tail of
// the region before a wrap). length must be at least padHeaderSize.
func EncodePad(buf []byte, length int) error {
	if length < padHeaderSize || len(buf) < length {
		return ErrTooSmall
	}
	binary.LittleEndian.PutUint32(buf[0:], magicPad)
	binary.LittleEndian.PutUint32(buf[4:], uint32(length))
	return nil
}

// PadHeaderSize is the minimum size of a pad marker.
const PadHeaderSize = padHeaderSize

// IsPad reports whether a pad marker starts at buf, and its length.
func IsPad(buf []byte) (int, bool) {
	if len(buf) < padHeaderSize {
		return 0, false
	}
	if binary.LittleEndian.Uint32(buf[0:]) != magicPad {
		return 0, false
	}
	return int(binary.LittleEndian.Uint32(buf[4:])), true
}

// Scan walks the log image from head to tail (both byte offsets within
// img, head possibly behind tail after wrap is NOT supported here — the
// caller passes logical positions via the ring view) and returns all valid
// records in order. Scanning stops at the first corrupt record, which is
// how recovery rejects torn tails.
func Scan(img []byte, head, tail int) ([]DecodedRecord, []int, error) {
	var recs []DecodedRecord
	var positions []int
	p := head
	for p != tail {
		if p > len(img) || p < 0 {
			return recs, positions, fmt.Errorf("%w: scan out of bounds", ErrCorrupt)
		}
		if padLen, ok := IsPad(img[p:]); ok {
			p += padLen
			if p >= len(img) {
				p = 0
			}
			continue
		}
		d, err := Decode(img[p:])
		if err != nil {
			return recs, positions, err
		}
		recs = append(recs, d)
		positions = append(positions, p)
		p += d.Size
	}
	return recs, positions, nil
}
