// Package naive implements the Naive-RDMA baseline of the HyperLoop paper
// (§6, "Baseline RDMA implementation"): the same group primitives and chain
// topology as package hyperloop, but with replica CPUs on the critical
// path. Each replica runs a handler process in the cpusim scheduler that
// receives, parses, executes and forwards every operation. Under
// multi-tenant CPU load this is where the paper's tail latency comes from.
//
// Three replica modes mirror the paper's comparisons:
//   - ModeEvent: the handler sleeps and is woken per completion event
//     (interrupt-driven; pays scheduling delay per hop).
//   - ModePolling: the handler busy-polls but shares cores with other
//     tenants (the contended polling of Fig. 11).
//   - ModePinned: the handler busy-polls on a dedicated core (best case;
//     economically non-viable at scale, per §2.2).
//
// Group implements protocol.Protocol; ModeEvent is registered with the
// protocol registry as "naive" at init. The other modes are selected
// explicitly through Config by the experiments that compare them.
package naive
