package naive

import (
	"bytes"
	"errors"
	"testing"

	"hyperloop/internal/cpusim"
	"hyperloop/internal/nvm"
	"hyperloop/internal/rdma"
	"hyperloop/internal/sim"
)

const (
	testMirror = 64 * 1024
	testDev    = 1 << 20
)

type env struct {
	k      *sim.Kernel
	g      *Group
	scheds []*cpusim.Scheduler
}

func newEnv(t *testing.T, nReplicas, cores int, cfg Config) *env {
	t.Helper()
	k := sim.NewKernel(42)
	fab := rdma.NewFabric(k, rdma.DefaultConfig())
	client, err := fab.AddNIC("client", nvm.NewDevice("client", testDev))
	if err != nil {
		t.Fatal(err)
	}
	var reps []*rdma.NIC
	var scheds []*cpusim.Scheduler
	for i := 0; i < nReplicas; i++ {
		host := string(rune('a' + i))
		nic, err := fab.AddNIC(host, nvm.NewDevice(host, testDev))
		if err != nil {
			t.Fatal(err)
		}
		reps = append(reps, nic)
		s, err := cpusim.New(k, cpusim.DefaultConfig(cores))
		if err != nil {
			t.Fatal(err)
		}
		scheds = append(scheds, s)
	}
	g, err := Setup(fab, client, reps, scheds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &env{k: k, g: g, scheds: scheds}
}

func (e *env) run(t *testing.T, horizon sim.Duration, fn func(f *sim.Fiber)) {
	t.Helper()
	e.k.Spawn("test", fn)
	if err := e.k.RunUntil(sim.Time(horizon)); err != nil {
		t.Fatalf("kernel: %v", err)
	}
}

func TestSetupValidation(t *testing.T) {
	k := sim.NewKernel(1)
	fab := rdma.NewFabric(k, rdma.DefaultConfig())
	client, _ := fab.AddNIC("c", nvm.NewDevice("c", testDev))
	if _, err := Setup(fab, client, nil, nil, DefaultConfig(testMirror)); !errors.Is(err, ErrBadArgument) {
		t.Fatalf("err = %v", err)
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	h := opHeader{
		seq: 12345, kind: kindCAS, off: 77, size: 8, src: 1, dst: 2,
		old: 10, swp: 20, execMap: 0b101, durable: true,
	}
	buf := make([]byte, headerSize)
	h.encode(buf)
	got := decodeHeader(buf)
	if got != h {
		t.Fatalf("round trip: %+v != %+v", got, h)
	}
}

func TestModeStrings(t *testing.T) {
	for _, m := range []Mode{ModeEvent, ModePolling, ModePinned, Mode(9)} {
		if m.String() == "" {
			t.Fatal("empty mode string")
		}
	}
}

func TestNaiveWriteReplicates(t *testing.T) {
	e := newEnv(t, 3, 4, DefaultConfig(testMirror))
	data := []byte("naive chain payload")
	e.run(t, sim.Second, func(f *sim.Fiber) {
		_ = e.g.WriteLocal(64, data)
		if err := e.g.Write(f, 64, len(data), false); err != nil {
			t.Errorf("write: %v", err)
		}
	})
	for i := 0; i < 3; i++ {
		got := make([]byte, len(data))
		_ = e.g.ReplicaNIC(i).Memory().Read(64, got)
		if !bytes.Equal(got, data) {
			t.Fatalf("replica %d = %q", i, got)
		}
	}
}

func TestNaiveDurableWriteSurvivesCrash(t *testing.T) {
	e := newEnv(t, 2, 4, DefaultConfig(testMirror))
	data := []byte("durable naive")
	e.run(t, sim.Second, func(f *sim.Fiber) {
		_ = e.g.WriteLocal(0, data)
		if err := e.g.Write(f, 0, len(data), true); err != nil {
			t.Errorf("write: %v", err)
		}
	})
	for i := 0; i < 2; i++ {
		mem := e.g.ReplicaNIC(i).Memory()
		mem.Crash()
		got := make([]byte, len(data))
		_ = mem.Read(0, got)
		if !bytes.Equal(got, data) {
			t.Fatalf("replica %d lost durable data", i)
		}
	}
}

func TestNaiveCASWithExecuteMap(t *testing.T) {
	e := newEnv(t, 3, 4, DefaultConfig(testMirror))
	e.run(t, sim.Second, func(f *sim.Fiber) {
		res, err := e.g.CAS(f, 256, 0, 5, []bool{true, false, true})
		if err != nil {
			t.Errorf("cas: %v", err)
			return
		}
		if res[0] != 0 || res[2] != 0 {
			t.Errorf("originals = %v", res)
		}
	})
	for i, want := range []byte{5, 0, 5} {
		b, _ := e.g.ReplicaNIC(i).Memory().Slice(256, 8)
		if b[0] != want {
			t.Fatalf("replica %d = %d, want %d", i, b[0], want)
		}
	}
}

func TestNaiveMemcpyAndFlush(t *testing.T) {
	e := newEnv(t, 2, 4, DefaultConfig(testMirror))
	rec := []byte("apply this record")
	e.run(t, sim.Second, func(f *sim.Fiber) {
		_ = e.g.WriteLocal(0, rec)
		if err := e.g.Write(f, 0, len(rec), false); err != nil {
			t.Errorf("write: %v", err)
			return
		}
		if err := e.g.Memcpy(f, 0, 4096, len(rec), true); err != nil {
			t.Errorf("memcpy: %v", err)
			return
		}
		if err := e.g.Flush(f, 0, len(rec)); err != nil {
			t.Errorf("flush: %v", err)
		}
	})
	for i := 0; i < 2; i++ {
		mem := e.g.ReplicaNIC(i).Memory()
		mem.Crash() // both ranges were flushed
		got := make([]byte, len(rec))
		_ = mem.Read(4096, got)
		if !bytes.Equal(got, rec) {
			t.Fatalf("replica %d memcpy dst lost", i)
		}
		_ = mem.Read(0, got)
		if !bytes.Equal(got, rec) {
			t.Fatalf("replica %d flushed log lost", i)
		}
	}
}

func TestNaiveUsesReplicaCPU(t *testing.T) {
	e := newEnv(t, 3, 4, DefaultConfig(testMirror))
	e.run(t, sim.Second, func(f *sim.Fiber) {
		for i := 0; i < 20; i++ {
			_ = e.g.WriteLocal(0, []byte{byte(i)})
			if err := e.g.Write(f, 0, 1, true); err != nil {
				t.Errorf("op %d: %v", i, err)
				return
			}
		}
	})
	// Every replica's handler process must have consumed CPU — the very
	// thing HyperLoop eliminates.
	for i, s := range e.scheds {
		_ = s
		if e.g.replicas[i].proc.TotalCPU() <= 0 {
			t.Fatalf("replica %d consumed no CPU", i)
		}
	}
}

func TestNaiveLatencyInflatesUnderLoad(t *testing.T) {
	measure := func(hogs int) sim.Duration {
		cfg := DefaultConfig(testMirror)
		e := newEnv(t, 3, 2, cfg)
		for _, s := range e.scheds {
			s.AddHogs(hogs)
		}
		var total sim.Duration
		const ops = 30
		done := 0
		e.run(t, 10*sim.Second, func(f *sim.Fiber) {
			for i := 0; i < ops; i++ {
				_ = e.g.WriteLocal(0, []byte{byte(i)})
				start := f.Now()
				if err := e.g.Write(f, 0, 1, false); err != nil {
					t.Errorf("op %d: %v", i, err)
					return
				}
				total += f.Now().Sub(start)
				done++
			}
		})
		if done != ops {
			t.Fatalf("hogs=%d: completed %d/%d", hogs, done, ops)
		}
		return total / ops
	}
	idle := measure(0)
	loaded := measure(16)
	if loaded < 5*idle {
		t.Fatalf("multi-tenant load did not inflate naive latency: idle=%v loaded=%v", idle, loaded)
	}
}

func TestPinnedPollingAvoidsSchedulingDelay(t *testing.T) {
	measure := func(mode Mode) sim.Duration {
		cfg := DefaultConfig(testMirror)
		cfg.Mode = mode
		e := newEnv(t, 3, 2, cfg)
		for _, s := range e.scheds {
			s.AddHogs(16)
		}
		var total sim.Duration
		const ops = 20
		e.run(t, 20*sim.Second, func(f *sim.Fiber) {
			for i := 0; i < ops; i++ {
				_ = e.g.WriteLocal(0, []byte{byte(i)})
				start := f.Now()
				if err := e.g.Write(f, 0, 1, false); err != nil {
					t.Errorf("%v op %d: %v", mode, i, err)
					return
				}
				total += f.Now().Sub(start)
			}
		})
		return total / ops
	}
	event := measure(ModeEvent)
	pinned := measure(ModePinned)
	if pinned >= event {
		t.Fatalf("pinned polling (%v) not faster than event mode (%v) under load", pinned, event)
	}
	if pinned > 200*sim.Microsecond {
		t.Fatalf("pinned polling latency %v, want well under load-inflated values", pinned)
	}
}

func TestNaiveWindowAndValidation(t *testing.T) {
	cfg := DefaultConfig(testMirror)
	cfg.Depth = 4
	e := newEnv(t, 1, 2, cfg)
	e.run(t, sim.Second, func(f *sim.Fiber) {
		count := 0
		var last *sim.Signal
		for {
			sig, err := e.g.WriteAsync(0, 1, false)
			if errors.Is(err, ErrTooManyInFlight) {
				break
			}
			if err != nil {
				t.Errorf("err: %v", err)
				return
			}
			last = sig
			count++
			if count > 100 {
				t.Error("window never closed")
				return
			}
		}
		if last != nil {
			_ = f.Await(last)
		}
		if _, err := e.g.WriteAsync(testMirror, 8, false); err == nil {
			t.Error("out of range accepted")
		}
		if _, err := e.g.CAS(f, 0, 0, 1, []bool{true, true}); !errors.Is(err, ErrBadArgument) {
			t.Errorf("bad exec map err = %v", err)
		}
	})
}

func TestNaiveTimeout(t *testing.T) {
	cfg := DefaultConfig(testMirror)
	cfg.OpTimeout = 300 * sim.Microsecond
	e := newEnv(t, 3, 4, cfg)
	e.run(t, sim.Second, func(f *sim.Fiber) {
		e.g.ReplicaNIC(1).SetDown(true)
		_ = e.g.WriteLocal(0, []byte{1})
		if err := e.g.Write(f, 0, 1, false); !errors.Is(err, ErrTimeout) {
			t.Errorf("err = %v, want timeout", err)
		}
	})
}

func TestRetryRecoversFromTransientCrash(t *testing.T) {
	// The replica handlers are stateless per message, so after a replica
	// NIC restart a re-issued write goes through — the retry loop converts
	// a transient crash into latency instead of an error.
	cfg := DefaultConfig(testMirror)
	cfg.OpTimeout = 300 * sim.Microsecond
	cfg.MaxRetries = 3
	cfg.RetryBackoff = 200 * sim.Microsecond
	e := newEnv(t, 3, 4, cfg)
	e.run(t, sim.Second, func(f *sim.Fiber) {
		nic := e.g.ReplicaNIC(1)
		nic.SetDown(true)
		e.k.After(450*sim.Microsecond, func() { nic.SetDown(false) })
		_ = e.g.WriteLocal(0, []byte{0xAB})
		if err := e.g.Write(f, 0, 1, true); err != nil {
			t.Errorf("retried write failed: %v", err)
		}
		if got := e.g.Retried(); got < 1 {
			t.Errorf("Retried() = %d, want >= 1", got)
		}
		// The write that finally succeeded must be replicated everywhere.
		for i := 0; i < e.g.GroupSize(); i++ {
			b := make([]byte, 1)
			if err := e.g.ReplicaNIC(i).Memory().Read(0, b); err != nil {
				t.Fatal(err)
			}
			if b[0] != 0xAB {
				t.Errorf("replica %d byte = %#x, want 0xAB", i, b[0])
			}
		}
	})
}

func TestContendedPollingWorseThanEvent(t *testing.T) {
	// §6.2's counterintuitive Fig. 11 finding: with many tenants polling,
	// contention makes polling SLOWER on average than event-driven
	// handlers, because pollers burn shared cores.
	measure := func(mode Mode) sim.Duration {
		cfg := DefaultConfig(testMirror)
		cfg.Mode = mode
		e := newEnv(t, 3, 2, cfg)
		for _, s := range e.scheds {
			// Several other tenants' pollers contend for the two cores.
			for i := 0; i < 6; i++ {
				p := s.NewProc("tenant-poller")
				p.SetRefill(func() sim.Duration { return 50 * sim.Microsecond })
			}
		}
		var total sim.Duration
		const ops = 25
		e.run(t, 30*sim.Second, func(f *sim.Fiber) {
			for i := 0; i < ops; i++ {
				_ = e.g.WriteLocal(0, []byte{byte(i)})
				start := f.Now()
				if err := e.g.Write(f, 0, 1, false); err != nil {
					t.Errorf("%v op %d: %v", mode, i, err)
					return
				}
				total += f.Now().Sub(start)
			}
		})
		return total / ops
	}
	event := measure(ModeEvent)
	polling := measure(ModePolling)
	if polling <= event {
		t.Fatalf("contended polling (%v) should be slower than event mode (%v)", polling, event)
	}
}
