package naive

import (
	"fmt"

	"hyperloop/internal/protocol"
)

func init() {
	protocol.Register("naive",
		"chain replication with replica CPUs on the critical path (§6 baseline, event mode)",
		func(env protocol.Env, p protocol.Params) (protocol.Protocol, error) {
			if len(env.Scheds) != len(env.Replicas) {
				return nil, fmt.Errorf("%w: naive protocol needs one CPU scheduler per replica", ErrBadArgument)
			}
			cfg := DefaultConfig(p.MirrorSize)
			if p.Depth > 0 {
				cfg.Depth = p.Depth
			}
			cfg.OpTimeout = p.OpTimeout
			cfg.MaxRetries = p.MaxRetries
			cfg.RetryBackoff = p.RetryBackoff
			if p.WakePenalty > 0 {
				cfg.WakePenalty = p.WakePenalty
				cfg.WakePenaltyProb = p.WakePenaltyProb
			}
			return Setup(env.Fabric, env.Client, env.Replicas, env.Scheds, cfg)
		})
	// The replica-side recv handler runs on the replicas' CPU schedulers,
	// so op latency is exposed to co-located tenant load (§2.2).
	protocol.SetTraits("naive", protocol.Traits{CPUDriven: true})
}
