package naive

import (
	"encoding/binary"
	"fmt"

	"hyperloop/internal/cpusim"
	"hyperloop/internal/nvm"
	"hyperloop/internal/protocol"
	"hyperloop/internal/rdma"
	"hyperloop/internal/sim"
)

// Mode selects how replica CPUs pick up completions.
type Mode int

// Replica CPU modes.
const (
	ModeEvent Mode = iota + 1
	ModePolling
	ModePinned
)

// String returns the mode mnemonic.
func (m Mode) String() string {
	switch m {
	case ModeEvent:
		return "event"
	case ModePolling:
		return "polling"
	case ModePinned:
		return "pinned"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Config parameterizes the baseline group.
type Config struct {
	MirrorSize int
	Depth      int
	Mode       Mode
	// RecvHandlerCPU is CPU time to take the completion, read the CQ and
	// parse the message.
	RecvHandlerCPU sim.Duration
	// PostCPU is CPU time per work request posted (forwarding, reposting
	// receives).
	PostCPU sim.Duration
	// CPUCopyBps is memcpy bandwidth when the CPU executes log records.
	CPUCopyBps float64
	// FlushBase/FlushPerLine model CPU-driven persistence (clwb+fence).
	FlushBase    sim.Duration
	FlushPerLine sim.Duration
	// WakePenalty/WakePenaltyProb model per-tenant cgroup-share placement
	// on wakeup (see cpusim.Proc.SetWakePenalty); zero values give the
	// handler full CFS sleeper credit.
	WakePenalty     sim.Duration
	WakePenaltyProb float64
	// OpTimeout aborts operations without an ACK (0 disables).
	OpTimeout sim.Duration
	// MaxRetries re-issues a blocking operation that failed with
	// ErrTimeout up to this many extra times (0 disables). The replica
	// handlers are stateless per message, so a re-issued write survives
	// a transient replica crash; gCAS is never retried.
	MaxRetries int
	// RetryBackoff is the linear backoff between retries: attempt k
	// sleeps k*RetryBackoff before re-issuing.
	RetryBackoff sim.Duration
}

// DefaultConfig returns calibrated costs (DESIGN.md).
func DefaultConfig(mirrorSize int) Config {
	return Config{
		MirrorSize:     mirrorSize,
		Depth:          32,
		Mode:           ModeEvent,
		RecvHandlerCPU: 2 * sim.Microsecond,
		PostCPU:        1 * sim.Microsecond,
		CPUCopyBps:     6 * 8e9,
		FlushBase:      700 * sim.Nanosecond,
		FlushPerLine:   1 * sim.Nanosecond,
	}
}

// Errors returned by group operations. Each wraps the canonical
// protocol sentinel, so errors.Is matches either form.
var (
	ErrTooManyInFlight = protocol.WrapErr("naive: operation window exceeded", protocol.ErrTooManyInFlight)
	ErrTimeout         = protocol.WrapErr("naive: operation timed out", protocol.ErrTimeout)
	ErrBadArgument     = protocol.WrapErr("naive: bad argument", protocol.ErrBadArgument)
	ErrClosed          = protocol.WrapErr("naive: group closed", protocol.ErrClosed)
)

// The op encoding on the wire is the shared protocol one.
type opKind = protocol.OpKind

const (
	kindWrite  = protocol.KindWrite
	kindCAS    = protocol.KindCAS
	kindMemcpy = protocol.KindMemcpy
	kindFlush  = protocol.KindFlush
)

// Wire format: header (80 bytes) followed by the result map (8*G bytes).
const headerSize = 80

type opHeader struct {
	seq     uint64
	kind    opKind
	off     uint64
	size    uint64
	src     uint64
	dst     uint64
	old     uint64
	swp     uint64
	execMap uint64
	durable bool
}

func (h *opHeader) encode(buf []byte) {
	binary.LittleEndian.PutUint64(buf[0:], h.seq)
	binary.LittleEndian.PutUint32(buf[8:], uint32(h.kind))
	var d uint32
	if h.durable {
		d = 1
	}
	binary.LittleEndian.PutUint32(buf[12:], d)
	binary.LittleEndian.PutUint64(buf[16:], h.off)
	binary.LittleEndian.PutUint64(buf[24:], h.size)
	binary.LittleEndian.PutUint64(buf[32:], h.src)
	binary.LittleEndian.PutUint64(buf[40:], h.dst)
	binary.LittleEndian.PutUint64(buf[48:], h.old)
	binary.LittleEndian.PutUint64(buf[56:], h.swp)
	binary.LittleEndian.PutUint64(buf[64:], h.execMap)
}

func decodeHeader(buf []byte) opHeader {
	return opHeader{
		seq:     binary.LittleEndian.Uint64(buf[0:]),
		kind:    opKind(binary.LittleEndian.Uint32(buf[8:])),
		durable: binary.LittleEndian.Uint32(buf[12:]) == 1,
		off:     binary.LittleEndian.Uint64(buf[16:]),
		size:    binary.LittleEndian.Uint64(buf[24:]),
		src:     binary.LittleEndian.Uint64(buf[32:]),
		dst:     binary.LittleEndian.Uint64(buf[40:]),
		old:     binary.LittleEndian.Uint64(buf[48:]),
		swp:     binary.LittleEndian.Uint64(buf[56:]),
		execMap: binary.LittleEndian.Uint64(buf[64:]),
	}
}

type replica struct {
	index  int
	nic    *rdma.NIC
	proc   *cpusim.Proc
	mirror *rdma.MemoryRegion
	qpPrev *rdma.QP
	qpNext *rdma.QP

	stagingOff  uint64
	stagingSlot int
	isTail      bool
	g           *Group

	// Per-replica scratch, reused across handler invocations. Safe because
	// the one-runner invariant serializes all handlers on a kernel and no
	// buffer outlives the call that filled it.
	scratch []byte // staging-slot decode buffer
	copyBuf []byte // memcpy bounce buffer
}

// Group is the Naive-RDMA replication chain. It implements
// protocol.Protocol (registered as "naive", in ModeEvent).
type Group struct {
	fab *rdma.Fabric
	k   *sim.Kernel
	cfg Config

	client   *rdma.NIC
	qpHead   *rdma.QP
	qpAck    *rdma.QP
	ackMR    *rdma.MemoryRegion
	ackOff   uint64
	metaOff  uint64
	replicas []*replica

	groupSize int
	trk       *protocol.Tracker // window/seq/timeout/retry bookkeeping

	ackBuf []byte // onAck decode scratch, reused across ACKs
}

func (g *Group) msgLen() int { return headerSize + 8*g.groupSize }

// Setup builds a naive chain. scheds[i] is the CPU scheduler of the
// machine hosting replicas[i]; the replica's handler becomes one more
// tenant process there.
func Setup(fab *rdma.Fabric, client *rdma.NIC, replicas []*rdma.NIC,
	scheds []*cpusim.Scheduler, cfg Config) (*Group, error) {
	if len(replicas) == 0 || len(scheds) != len(replicas) {
		return nil, fmt.Errorf("%w: need replicas with matching schedulers", ErrBadArgument)
	}
	if cfg.MirrorSize <= 0 {
		return nil, fmt.Errorf("%w: mirror size must be positive", ErrBadArgument)
	}
	if cfg.Depth <= 0 {
		cfg.Depth = 32
	}
	// ACK imm truncates seq to 32 bits; power-of-two depth keeps slot
	// arithmetic consistent (see hyperloop.Setup).
	for cfg.Depth&(cfg.Depth-1) != 0 {
		cfg.Depth++
	}
	if cfg.Mode == 0 {
		cfg.Mode = ModeEvent
	}
	g := &Group{
		fab:       fab,
		k:         fab.Kernel(),
		cfg:       cfg,
		client:    client,
		groupSize: len(replicas),
		trk: protocol.NewTracker(fab.Kernel(), cfg.Depth,
			cfg.OpTimeout, cfg.MaxRetries, cfg.RetryBackoff, ErrTimeout, ErrClosed),
	}
	if err := g.setupClient(); err != nil {
		return nil, err
	}
	for i, nic := range replicas {
		r, err := g.setupReplica(i+1, nic, scheds[i])
		if err != nil {
			return nil, fmt.Errorf("replica %d: %w", i+1, err)
		}
		g.replicas = append(g.replicas, r)
	}
	g.qpHead.Connect(g.replicas[0].qpPrev)
	for i := 0; i < len(g.replicas)-1; i++ {
		g.replicas[i].qpNext.Connect(g.replicas[i+1].qpPrev)
	}
	g.replicas[len(g.replicas)-1].qpNext.Connect(g.qpAck)

	for _, r := range g.replicas {
		for i := 0; i < cfg.Depth; i++ {
			r.postRecv(uint64(i))
		}
		r.install()
	}
	for i := 0; i < cfg.Depth; i++ {
		g.qpAck.PostRecv(rdma.RecvWQE{})
	}
	g.qpAck.RecvCQ().SetDrainHandler(g.onAcks)
	// The remaining CQs carry no information the chain consumes; keep them
	// as counters only so completions don't accumulate for the whole run.
	g.qpHead.SendCQ().Discard()
	g.qpHead.RecvCQ().Discard()
	g.qpAck.SendCQ().Discard()
	return g, nil
}

func (g *Group) setupClient() error {
	alloc := nvm.NewAllocator(g.client.Memory())
	mirror, err := alloc.Alloc("mirror", g.cfg.MirrorSize)
	if err != nil {
		return err
	}
	if mirror.Off != 0 {
		return fmt.Errorf("naive: client mirror not at offset 0")
	}
	meta, err := alloc.Alloc("meta", g.cfg.Depth*g.msgLen())
	if err != nil {
		return err
	}
	ack, err := alloc.Alloc("ack", g.cfg.Depth*g.msgLen())
	if err != nil {
		return err
	}
	headRing, err := alloc.Alloc("head-ring", 2*g.cfg.Depth*rdma.WQESize)
	if err != nil {
		return err
	}
	ackRing, err := alloc.Alloc("ack-ring", rdma.WQESize)
	if err != nil {
		return err
	}
	g.metaOff = uint64(meta.Off)
	g.ackOff = uint64(ack.Off)
	g.ackMR, err = g.client.RegisterMR(uint64(ack.Off), uint64(ack.Len), rdma.AccessRemoteWrite)
	if err != nil {
		return err
	}
	g.qpHead, err = g.client.CreateQP(rdma.QPConfig{
		SendRingOff: uint64(headRing.Off), SendSlots: headRing.Len / rdma.WQESize,
		SendCQ: g.client.CreateCQ(), RecvCQ: g.client.CreateCQ(),
	})
	if err != nil {
		return err
	}
	g.qpAck, err = g.client.CreateQP(rdma.QPConfig{
		SendRingOff: uint64(ackRing.Off), SendSlots: 1,
		SendCQ: g.client.CreateCQ(), RecvCQ: g.client.CreateCQ(),
	})
	return err
}

func (g *Group) setupReplica(index int, nic *rdma.NIC, sched *cpusim.Scheduler) (*replica, error) {
	r := &replica{index: index, nic: nic, g: g} // isTail finalized in install
	alloc := nvm.NewAllocator(nic.Memory())
	mirror, err := alloc.Alloc("mirror", g.cfg.MirrorSize)
	if err != nil {
		return nil, err
	}
	if mirror.Off != 0 {
		return nil, fmt.Errorf("naive: mirror not at offset 0")
	}
	staging, err := alloc.Alloc("staging", g.cfg.Depth*g.msgLen())
	if err != nil {
		return nil, err
	}
	prevRing, err := alloc.Alloc("prev-ring", rdma.WQESize)
	if err != nil {
		return nil, err
	}
	nextRing, err := alloc.Alloc("next-ring", 2*g.cfg.Depth*rdma.WQESize)
	if err != nil {
		return nil, err
	}
	r.stagingOff = uint64(staging.Off)
	r.stagingSlot = g.msgLen()
	r.mirror, err = nic.RegisterMR(0, uint64(g.cfg.MirrorSize),
		rdma.AccessRemoteRead|rdma.AccessRemoteWrite|rdma.AccessRemoteAtomic)
	if err != nil {
		return nil, err
	}
	r.qpPrev, err = nic.CreateQP(rdma.QPConfig{
		SendRingOff: uint64(prevRing.Off), SendSlots: 1,
		SendCQ: nic.CreateCQ(), RecvCQ: nic.CreateCQ(),
	})
	if err != nil {
		return nil, err
	}
	r.qpNext, err = nic.CreateQP(rdma.QPConfig{
		SendRingOff: uint64(nextRing.Off), SendSlots: nextRing.Len / rdma.WQESize,
		SendCQ: nic.CreateCQ(), RecvCQ: nic.CreateCQ(),
	})
	if err != nil {
		return nil, err
	}
	r.proc = sched.NewProc(fmt.Sprintf("replica-%d", index))
	if g.cfg.WakePenalty > 0 {
		r.proc.SetWakePenalty(g.cfg.WakePenaltyProb, g.cfg.WakePenalty)
	}
	switch g.cfg.Mode {
	case ModePinned:
		r.proc.Pin()
	case ModePolling:
		// Busy-poll loop sharing cores with the other tenants.
		r.proc.SetRefill(func() sim.Duration { return 50 * sim.Microsecond })
	}
	return r, nil
}

// install wires the replica's completion handler: every metadata receive
// becomes CPU work for the replica process.
func (r *replica) install() {
	r.isTail = r.index == len(r.g.replicas)
	r.qpPrev.RecvCQ().SetDrainHandler(func(batch []rdma.CQE) {
		for _, e := range batch {
			if e.Status != rdma.StatusSuccess {
				continue
			}
			slot := e.WRID
			r.proc.Submit(r.handlerCost(slot), func() { r.handle(slot) })
		}
	})
	r.qpPrev.SendCQ().Discard()
	r.qpNext.SendCQ().Discard()
	r.qpNext.RecvCQ().Discard()
}

// handlerCost computes the CPU time the handler will consume for the
// message in the given staging slot — parse + execute + forward posts.
func (r *replica) handlerCost(slot uint64) sim.Duration {
	g := r.g
	cost := g.cfg.RecvHandlerCPU
	buf := r.stagingBuf(slot)
	h := decodeHeader(buf)
	switch h.kind {
	case kindWrite:
		if h.durable {
			cost += g.flushCost(int(h.size))
		}
	case kindMemcpy:
		cost += sim.Duration(float64(h.size) * 8 / g.cfg.CPUCopyBps * 1e9)
		if h.durable {
			cost += g.flushCost(int(h.size))
		}
	case kindCAS:
		cost += 200 * sim.Nanosecond
	case kindFlush:
		cost += g.flushCost(int(h.size))
	}
	// Forward posts (data + meta, or the ACK) and the receive repost.
	cost += 3 * g.cfg.PostCPU
	return cost
}

func (g *Group) flushCost(size int) sim.Duration {
	return g.cfg.FlushBase + sim.Duration(size/64+1)*g.cfg.FlushPerLine
}

func (r *replica) stagingBuf(slot uint64) []byte {
	g := r.g
	addr := int(r.stagingOff) + int(slot%uint64(g.cfg.Depth))*r.stagingSlot
	if cap(r.scratch) < g.msgLen() {
		r.scratch = make([]byte, g.msgLen())
	}
	buf := r.scratch[:g.msgLen()]
	_ = r.nic.Memory().Read(addr, buf)
	return buf
}

func (r *replica) stagingAddr(slot uint64) uint64 {
	return r.stagingOff + (slot%uint64(r.g.cfg.Depth))*uint64(r.stagingSlot)
}

// handle runs on the replica CPU once scheduled: execute the operation
// locally, update the result map, forward down the chain, repost the
// receive. This is precisely the work HyperLoop moves onto the NIC.
func (r *replica) handle(slot uint64) {
	g := r.g
	mem := r.nic.Memory()
	buf := r.stagingBuf(slot)
	h := decodeHeader(buf)

	switch h.kind {
	case kindWrite:
		if h.durable {
			_, _ = mem.Flush(int(h.off), int(h.size))
		}
	case kindMemcpy:
		if cap(r.copyBuf) < int(h.size) {
			r.copyBuf = make([]byte, h.size)
		}
		data := r.copyBuf[:h.size]
		if err := mem.Read(int(h.src), data); err == nil {
			_ = mem.Write(int(h.dst), data)
		}
		if h.durable {
			_, _ = mem.Flush(int(h.dst), int(h.size))
		}
	case kindCAS:
		if h.execMap&(1<<uint(r.index-1)) != 0 {
			cur, err := mem.Slice(int(h.off), 8)
			if err == nil {
				orig := binary.LittleEndian.Uint64(cur)
				if orig == h.old {
					var nb [8]byte
					binary.LittleEndian.PutUint64(nb[:], h.swp)
					_ = mem.Write(int(h.off), nb[:])
				}
				binary.LittleEndian.PutUint64(buf[headerSize+(r.index-1)*8:], orig)
			}
		}
	case kindFlush:
		_, _ = mem.Flush(int(h.off), int(h.size))
	}

	// Write the (possibly updated) message back to staging for forwarding.
	_ = mem.Write(int(r.stagingAddr(slot)), buf)

	if r.isTail {
		_, _ = r.qpNext.PostSend(rdma.WQE{
			Opcode: rdma.OpWriteImm, WRID: h.seq, Imm: uint32(h.seq),
			Local: r.stagingAddr(slot), Len: uint64(g.msgLen()),
			Remote: g.ackAddr(h.seq), Aux1: g.ackMR.RKey,
		})
	} else {
		next := g.replicas[r.index] // hop index+1, 0-based index
		if h.kind == kindWrite {
			_, _ = r.qpNext.PostSend(rdma.WQE{
				Opcode: rdma.OpWrite, WRID: h.seq,
				Local: h.off, Len: h.size, Remote: h.off, Aux1: next.mirror.RKey,
			})
		}
		_, _ = r.qpNext.PostSend(rdma.WQE{
			Opcode: rdma.OpSend, WRID: h.seq,
			Local: r.stagingAddr(slot), Len: uint64(g.msgLen()),
		})
	}
	r.postRecv(slot + uint64(g.cfg.Depth))
}

func (r *replica) postRecv(slot uint64) {
	r.qpPrev.PostRecv(rdma.RecvWQE{
		WRID: slot,
		SGEs: []rdma.SGE{{Addr: r.stagingAddr(slot), Len: uint64(r.g.msgLen())}},
	})
}

func (g *Group) ackAddr(seq uint64) uint64 {
	return g.ackOff + (seq%uint64(g.cfg.Depth))*uint64(g.msgLen())
}

// onAcks handles a drained batch of tail ACK completions.
func (g *Group) onAcks(batch []rdma.CQE) {
	for _, e := range batch {
		g.onAck(e)
	}
}

func (g *Group) onAck(e rdma.CQE) {
	g.qpAck.PostRecv(rdma.RecvWQE{})
	slotAddr := int(g.ackAddr(uint64(e.Imm)))
	if cap(g.ackBuf) < g.msgLen() {
		g.ackBuf = make([]byte, g.msgLen())
	}
	buf := g.ackBuf[:g.msgLen()]
	if err := g.client.Memory().Read(slotAddr, buf); err != nil {
		return
	}
	h := decodeHeader(buf)
	op := g.trk.Complete(h.seq)
	if op == nil {
		return
	}
	if op.Kind == kindCAS {
		op.Results = make([]uint64, len(g.replicas))
		for j := range g.replicas {
			op.Results[j] = binary.LittleEndian.Uint64(buf[headerSize+j*8:])
		}
	}
	op.Sig.Fire(nil)
}

// Close tears the chain down: in-flight operations fail with ErrClosed,
// further issues are rejected, and the group's QPs are destroyed. The
// replica handler processes stay registered with their schedulers but
// receive no further work.
func (g *Group) Close() {
	if g.trk.Closed() {
		return
	}
	g.trk.Close()
	g.qpHead.Destroy()
	g.qpAck.Destroy()
	for _, r := range g.replicas {
		r.qpPrev.Destroy()
		r.qpNext.Destroy()
	}
}
