package naive

import (
	"fmt"

	"hyperloop/internal/protocol"
	"hyperloop/internal/rdma"
	"hyperloop/internal/sim"
)

// issue transmits one operation down the chain: optional data WRITE, then
// the metadata SEND that wakes the first replica's handler process.
func (g *Group) issue(kind opKind, h opHeader) (*protocol.Pending, error) {
	if g.trk.Closed() {
		return nil, ErrClosed
	}
	if !g.trk.HasWindow() {
		return nil, ErrTooManyInFlight
	}
	if int(h.off) < 0 || int(h.off+h.size) > g.cfg.MirrorSize {
		return nil, fmt.Errorf("%w: range outside mirror", ErrBadArgument)
	}
	if kind == kindMemcpy && (int(h.src+h.size) > g.cfg.MirrorSize || int(h.dst+h.size) > g.cfg.MirrorSize) {
		return nil, fmt.Errorf("%w: memcpy range outside mirror", ErrBadArgument)
	}
	seq := g.trk.NextSeq()
	h.seq = seq
	h.kind = kind

	msg := make([]byte, g.msgLen())
	h.encode(msg)
	metaAddr := g.metaOff + (seq%uint64(g.cfg.Depth))*uint64(g.msgLen())
	if err := g.client.Memory().Write(int(metaAddr), msg); err != nil {
		return nil, err
	}

	op := g.trk.Track(seq, kind)

	// Mirror the operation on the client's own copy (same semantics as
	// package hyperloop, so the two backends are interchangeable).
	if err := protocol.ApplyLocal(g.client.Memory(), kind, protocol.Op{
		Off: int(h.off), Size: int(h.size), Src: int(h.src), Dst: int(h.dst),
		Old: h.old, New: h.swp, Durable: h.durable,
	}); err != nil {
		return nil, err
	}

	if kind == kindWrite {
		if _, err := g.qpHead.PostSend(rdma.WQE{
			Opcode: rdma.OpWrite, WRID: seq,
			Local: h.off, Len: h.size, Remote: h.off, Aux1: g.replicas[0].mirror.RKey,
		}); err != nil {
			return nil, err
		}
	}
	if _, err := g.qpHead.PostSend(rdma.WQE{
		Opcode: rdma.OpSend, WRID: seq,
		Local: metaAddr, Len: uint64(g.msgLen()),
	}); err != nil {
		return nil, err
	}
	g.trk.MarkIssued()
	return op, nil
}

// GroupSize returns the number of replicas.
func (g *Group) GroupSize() int { return len(g.replicas) }

// ReplicaNIC returns the i-th (0-based) replica's NIC.
func (g *Group) ReplicaNIC(i int) *rdma.NIC { return g.replicas[i].nic }

// ClientNIC returns the client's NIC.
func (g *Group) ClientNIC() *rdma.NIC { return g.client }

// Stats reports operations issued and completed.
func (g *Group) Stats() (issued, completed int64) { return g.trk.Stats() }

// Retried reports how many timed-out operations were re-issued by the
// blocking paths.
func (g *Group) Retried() int64 { return g.trk.Retried() }

// InFlight returns operations awaiting their ACK.
func (g *Group) InFlight() int { return g.trk.InFlight() }

// WriteLocal stores data into the client's mirror.
func (g *Group) WriteLocal(off int, data []byte) error {
	if off < 0 || off+len(data) > g.cfg.MirrorSize {
		return fmt.Errorf("%w: local write outside mirror", ErrBadArgument)
	}
	return g.client.Memory().Write(off, data)
}

// ReadLocal returns a copy of the client's mirror range.
func (g *Group) ReadLocal(off, n int) ([]byte, error) {
	if off < 0 || off+n > g.cfg.MirrorSize {
		return nil, fmt.Errorf("%w: local read outside mirror", ErrBadArgument)
	}
	buf := make([]byte, n)
	err := g.client.Memory().Read(off, buf)
	return buf, err
}

// WriteAsync replicates [off, off+size) to all replicas.
func (g *Group) WriteAsync(off, size int, durable bool) (*sim.Signal, error) {
	op, err := g.issue(kindWrite, opHeader{off: uint64(off), size: uint64(size), durable: durable})
	if err != nil {
		return nil, err
	}
	return op.Sig, nil
}

// retry runs an idempotent async issue function, awaiting its signal and
// re-issuing on ErrTimeout up to MaxRetries extra attempts with linear
// backoff. Only the blocking forms of idempotent primitives use it.
func (g *Group) retry(f *sim.Fiber, issue func() (*sim.Signal, error)) error {
	return g.trk.Retry(f, issue)
}

// Write is the blocking form of WriteAsync. With MaxRetries > 0 a timed-out
// write is re-issued (fresh sequence number) after linear backoff.
func (g *Group) Write(f *sim.Fiber, off, size int, durable bool) error {
	return g.retry(f, func() (*sim.Signal, error) {
		return g.WriteAsync(off, size, durable)
	})
}

// MemcpyAsync copies src→dst locally on every member.
func (g *Group) MemcpyAsync(src, dst, size int, durable bool) (*sim.Signal, error) {
	op, err := g.issue(kindMemcpy, opHeader{
		src: uint64(src), dst: uint64(dst), size: uint64(size), durable: durable,
	})
	if err != nil {
		return nil, err
	}
	return op.Sig, nil
}

// Memcpy is the blocking form of MemcpyAsync, with the same retry policy
// as Write.
func (g *Group) Memcpy(f *sim.Fiber, src, dst, size int, durable bool) error {
	return g.retry(f, func() (*sim.Signal, error) {
		return g.MemcpyAsync(src, dst, size, durable)
	})
}

// CAS performs a group compare-and-swap with an execute map.
func (g *Group) CAS(f *sim.Fiber, off int, old, new uint64, exec []bool) ([]uint64, error) {
	if len(exec) != len(g.replicas) {
		return nil, fmt.Errorf("%w: execute map must have %d entries", ErrBadArgument, len(g.replicas))
	}
	var mask uint64
	for i, e := range exec {
		if e {
			mask |= 1 << uint(i)
		}
	}
	op, err := g.issue(kindCAS, opHeader{off: uint64(off), size: 8, old: old, swp: new, execMap: mask})
	if err != nil {
		return nil, err
	}
	if err := f.Await(op.Sig); err != nil {
		return nil, err
	}
	return op.Results, nil
}

// FlushAsync makes [off, off+size) durable on every member.
func (g *Group) FlushAsync(off, size int) (*sim.Signal, error) {
	op, err := g.issue(kindFlush, opHeader{off: uint64(off), size: uint64(size)})
	if err != nil {
		return nil, err
	}
	return op.Sig, nil
}

// Flush is the blocking form of FlushAsync, with the same retry policy as
// Write.
func (g *Group) Flush(f *sim.Fiber, off, size int) error {
	return g.retry(f, func() (*sim.Signal, error) {
		return g.FlushAsync(off, size)
	})
}

// ReplicaHandlerCPU sums the CPU time consumed by the replica handler
// processes — the cost HyperLoop eliminates from the datapath.
func (g *Group) ReplicaHandlerCPU() sim.Duration {
	var d sim.Duration
	for _, r := range g.replicas {
		d += r.proc.TotalCPU()
	}
	return d
}
