package metrics

import (
	"fmt"
	"strings"
	"text/tabwriter"
	"time"
)

// Table is a simple column-aligned text table used by the benchmark harness
// to print rows in the same layout as the paper's tables and figures.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case time.Duration:
			row[i] = FormatDuration(v)
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table.
func (t *Table) String() string {
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteString("\n")
		sb.WriteString(strings.Repeat("=", len(t.Title)))
		sb.WriteString("\n")
	}
	w := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, strings.Join(t.Columns, "\t"))
	dashes := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		dashes[i] = strings.Repeat("-", len(c))
	}
	fmt.Fprintln(w, strings.Join(dashes, "\t"))
	for _, row := range t.Rows {
		fmt.Fprintln(w, strings.Join(row, "\t"))
	}
	w.Flush()
	return sb.String()
}

// FormatDuration renders d with a sensible unit and 4 significant figures,
// matching the µs/ms scales in the paper.
func FormatDuration(d time.Duration) string {
	switch {
	case d < 10*time.Microsecond:
		return fmt.Sprintf("%.2fµs", float64(d)/float64(time.Microsecond))
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d)/float64(time.Microsecond))
	case d < 10*time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	case d < time.Second:
		return fmt.Sprintf("%.1fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}

// FormatBytes renders a byte count as B/KB/MB.
func FormatBytes(n int) string {
	switch {
	case n < 1024:
		return fmt.Sprintf("%dB", n)
	case n < 1024*1024:
		return fmt.Sprintf("%dK", n/1024)
	default:
		return fmt.Sprintf("%dM", n/(1024*1024))
	}
}

// Ratio formats a/b as "N.Nx"; it guards against division by zero.
func Ratio(a, b time.Duration) string {
	if b == 0 {
		return "inf"
	}
	return fmt.Sprintf("%.1fx", float64(a)/float64(b))
}

// Counter is a monotonically increasing event counter.
type Counter struct {
	n int64
}

// Inc adds one.
func (c *Counter) Inc() { c.n++ }

// Add adds delta.
func (c *Counter) Add(delta int64) { c.n += delta }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n }

// Reset zeroes the counter.
func (c *Counter) Reset() { c.n = 0 }
