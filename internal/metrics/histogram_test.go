package metrics

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram has nonzero stats")
	}
	if h.Percentile(99) != 0 {
		t.Fatal("empty histogram percentile nonzero")
	}
}

func TestHistogramSingleValue(t *testing.T) {
	h := NewHistogram()
	h.Record(12345)
	for _, p := range []float64{0, 50, 95, 99, 100} {
		got := h.Percentile(p)
		if got != 12345 {
			t.Fatalf("p%v = %d, want 12345", p, got)
		}
	}
	if h.Mean() != 12345 {
		t.Fatalf("mean = %v", h.Mean())
	}
}

func TestHistogramExactSmallValues(t *testing.T) {
	// Values below subBucketCount are recorded exactly.
	h := NewHistogram()
	for i := int64(0); i < 64; i++ {
		h.Record(i)
	}
	if h.Min() != 0 || h.Max() != 63 {
		t.Fatalf("min/max = %d/%d", h.Min(), h.Max())
	}
	if got := h.Percentile(50); got < 31 || got > 33 {
		t.Fatalf("p50 = %d, want ≈32", got)
	}
}

func TestHistogramRelativeError(t *testing.T) {
	// Percentiles must be within ~3.2% (2 sub-buckets) of exact for a
	// broad range of magnitudes.
	values := make([]int64, 0, 10000)
	h := NewHistogram()
	x := int64(100)
	for i := 0; i < 10000; i++ {
		v := x + int64(i)*int64(i)*7 // spans 100 .. ~700M
		values = append(values, v)
		h.Record(v)
	}
	sort.Slice(values, func(i, j int) bool { return values[i] < values[j] })
	for _, p := range []float64{10, 50, 90, 99, 99.9} {
		rank := int(math.Ceil(p/100*float64(len(values)))) - 1
		exact := values[rank]
		got := h.Percentile(p)
		relErr := math.Abs(float64(got-exact)) / float64(exact)
		if relErr > 0.032 {
			t.Fatalf("p%v = %d, exact %d, rel err %.4f > 3.2%%", p, got, exact, relErr)
		}
	}
}

func TestHistogramPercentileMonotonic(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 5000; i++ {
		h.Record(int64(i * 977 % 1000003))
	}
	prev := int64(-1)
	for p := 0.0; p <= 100; p += 0.5 {
		v := h.Percentile(p)
		if v < prev {
			t.Fatalf("percentile not monotonic at p=%v: %d < %d", p, v, prev)
		}
		prev = v
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b, c := NewHistogram(), NewHistogram(), NewHistogram()
	for i := int64(1); i <= 1000; i++ {
		a.Record(i)
		c.Record(i)
	}
	for i := int64(1001); i <= 2000; i++ {
		b.Record(i)
		c.Record(i)
	}
	a.Merge(b)
	if a.Count() != c.Count() {
		t.Fatalf("merged count = %d, want %d", a.Count(), c.Count())
	}
	if a.Min() != c.Min() || a.Max() != c.Max() {
		t.Fatalf("merged min/max mismatch")
	}
	for _, p := range []float64{25, 50, 75, 99} {
		if a.Percentile(p) != c.Percentile(p) {
			t.Fatalf("merged p%v = %d, want %d", p, a.Percentile(p), c.Percentile(p))
		}
	}
	a.Merge(nil) // must not panic
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram()
	h.Record(5)
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 {
		t.Fatal("reset did not clear histogram")
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	h := NewHistogram()
	h.Record(-5)
	if h.Min() != 0 {
		t.Fatalf("negative value not clamped: min=%d", h.Min())
	}
}

func TestBucketRoundTripProperty(t *testing.T) {
	f := func(raw uint32) bool {
		v := int64(raw)
		idx := bucketIndex(v)
		rep := bucketValue(idx)
		// Representative must be within one sub-bucket width.
		if v < subBucketCount {
			return rep == v
		}
		relErr := math.Abs(float64(rep-v)) / float64(v)
		return relErr <= 1.0/subBucketCount
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestBucketIndexMonotonicProperty(t *testing.T) {
	f := func(a, b uint32) bool {
		x, y := int64(a), int64(b)
		if x > y {
			x, y = y, x
		}
		return bucketIndex(x) <= bucketIndex(y)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestSummary(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 100; i++ {
		h.RecordDuration(time.Duration(i) * time.Microsecond)
	}
	s := h.Summarize()
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.P99 < 98*time.Microsecond || s.P99 > 100*time.Microsecond {
		t.Fatalf("p99 = %v", s.P99)
	}
	if !strings.Contains(s.String(), "n=100") {
		t.Fatalf("summary string: %s", s.String())
	}
}

func TestTableRendering(t *testing.T) {
	tbl := NewTable("Table 2: gCAS", "impl", "avg", "p99")
	tbl.AddRow("naive", 539*time.Microsecond, 11886*time.Microsecond)
	tbl.AddRow("hyperloop", 10*time.Microsecond, 14*time.Microsecond)
	out := tbl.String()
	for _, want := range []string{"Table 2", "impl", "naive", "hyperloop", "11.9ms"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}
}

func TestFormatDuration(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{1500 * time.Nanosecond, "1.50µs"},
		{14 * time.Microsecond, "14.0µs"},
		{539 * time.Microsecond, "539.0µs"},
		{2500 * time.Microsecond, "2.50ms"},
		{118 * time.Millisecond, "118.0ms"},
		{2 * time.Second, "2.00s"},
	}
	for _, c := range cases {
		if got := FormatDuration(c.d); got != c.want {
			t.Errorf("FormatDuration(%v) = %q, want %q", c.d, got, c.want)
		}
	}
}

func TestFormatBytes(t *testing.T) {
	if FormatBytes(128) != "128B" || FormatBytes(2048) != "2K" || FormatBytes(1<<21) != "2M" {
		t.Fatal("FormatBytes wrong")
	}
}

func TestRatio(t *testing.T) {
	if Ratio(100, 0) != "inf" {
		t.Fatal("Ratio div by zero")
	}
	if Ratio(800*time.Microsecond, 100*time.Microsecond) != "8.0x" {
		t.Fatalf("Ratio = %s", Ratio(800*time.Microsecond, 100*time.Microsecond))
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d", c.Value())
	}
	c.Reset()
	if c.Value() != 0 {
		t.Fatal("counter reset failed")
	}
}
