// Package metrics provides latency histograms, counters and table
// formatting for the benchmark harness.
//
// The Histogram is HDR-style: values are bucketed with bounded relative
// error (sub-buckets within power-of-two ranges), so recording is O(1),
// memory is small and percentiles up to p99.99 are accurate to ~1.5% —
// sufficient for reproducing the paper's average/p95/p99 tables.
package metrics

import (
	"fmt"
	"math"
	"math/bits"
	"time"
)

const (
	// subBucketBits gives 64 linear sub-buckets in the base range and 32
	// upper-half sub-buckets per subsequent power-of-two range (the lower
	// half of each range overlaps the previous one), bounding the
	// midpoint's relative error at 1/64 ≈ 1.6%.
	subBucketBits      = 6
	subBucketCount     = 1 << subBucketBits
	subBucketHalfCount = subBucketCount / 2
	maxShift           = 64 - subBucketBits // highest power-of-two range
	totalBuckets       = subBucketCount + maxShift*subBucketHalfCount
)

// Histogram records int64 values (typically latencies in nanoseconds) with
// bounded relative error. The zero value is ready to use.
type Histogram struct {
	counts [totalBuckets]int64
	total  int64
	sum    float64
	min    int64
	max    int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{min: math.MaxInt64}
}

func bucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	if v < subBucketCount {
		return int(v)
	}
	// shift ≥ 1 normalizes v so v>>shift lands in [32, 64).
	shift := bits.Len64(uint64(v)) - subBucketBits
	sub := int(v >> uint(shift))
	return subBucketCount + (shift-1)*subBucketHalfCount + (sub - subBucketHalfCount)
}

// bucketValue returns a representative (midpoint) value for index i.
func bucketValue(i int) int64 {
	if i < subBucketCount {
		return int64(i)
	}
	j := i - subBucketCount
	shift := uint(j/subBucketHalfCount + 1)
	sub := int64(j%subBucketHalfCount + subBucketHalfCount)
	low := sub << shift
	width := int64(1) << shift
	return low + width/2
}

// Record adds one observation.
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	if h.total == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.counts[bucketIndex(v)]++
	h.total++
	h.sum += float64(v)
}

// RecordDuration adds one latency observation.
func (h *Histogram) RecordDuration(d time.Duration) { h.Record(int64(d)) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.total }

// Mean returns the arithmetic mean of observations (0 if empty).
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// MeanDuration returns the mean as a time.Duration.
func (h *Histogram) MeanDuration() time.Duration {
	return time.Duration(h.Mean())
}

// Min returns the smallest recorded value (0 if empty).
func (h *Histogram) Min() int64 {
	if h.total == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest recorded value (0 if empty).
func (h *Histogram) Max() int64 { return h.max }

// Percentile returns the value at percentile p in [0, 100]. Exact recorded
// minima/maxima are returned at the extremes; interior percentiles carry
// the histogram's ~1.6% relative error.
func (h *Histogram) Percentile(p float64) int64 {
	if h.total == 0 {
		return 0
	}
	if p <= 0 {
		return h.min
	}
	if p >= 100 {
		return h.max
	}
	rank := int64(math.Ceil(p / 100 * float64(h.total)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			v := bucketValue(i)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// PercentileDuration returns Percentile(p) as a time.Duration.
func (h *Histogram) PercentileDuration(p float64) time.Duration {
	return time.Duration(h.Percentile(p))
}

// Merge adds all of other's observations into h.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil || other.total == 0 {
		return
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	if h.total == 0 || other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	h.total += other.total
	h.sum += other.sum
}

// Reset discards all observations.
func (h *Histogram) Reset() {
	*h = Histogram{min: math.MaxInt64}
}

// Summary bundles the statistics the paper's tables report.
type Summary struct {
	Count int64
	Mean  time.Duration
	P50   time.Duration
	P95   time.Duration
	P99   time.Duration
	Max   time.Duration
}

// Summarize extracts a Summary from the histogram.
func (h *Histogram) Summarize() Summary {
	return Summary{
		Count: h.Count(),
		Mean:  h.MeanDuration(),
		P50:   h.PercentileDuration(50),
		P95:   h.PercentileDuration(95),
		P99:   h.PercentileDuration(99),
		Max:   time.Duration(h.Max()),
	}
}

// String renders the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v p99=%v max=%v",
		s.Count, s.Mean.Round(time.Microsecond), s.P50.Round(time.Microsecond),
		s.P95.Round(time.Microsecond), s.P99.Round(time.Microsecond),
		s.Max.Round(time.Microsecond))
}
