// Package hyperloop implements the HyperLoop group-based NIC-offloading
// primitives (SIGCOMM 2018): gWRITE, gCAS, gMEMCPY and gFLUSH over a chain
// of replicas, executed entirely by the NICs — replica CPUs are not on the
// datapath.
//
// # How an operation flows
//
// Every replica pre-posts, per operation sequence number, two WAIT-gated
// WQE chains plus one receive with a scatter list that points INTO the
// pre-posted WQE slots:
//
//	loopback QP:  [WAIT(recvCQ,1) → L1 → L2]   local ops (CAS/MEMCPY/FLUSH)
//	next-hop QP:  [WAIT(loopCQ,2) → F1 → F2]   forwarding (data WRITE + meta SEND)
//
// The client issues an operation by (optionally) RDMA-WRITEing data to the
// first replica's mirror region and then SENDing a metadata message whose
// head is the descriptor block for that hop. The receive scatter lands the
// descriptor block directly in the pre-posted WQE slots (remote work
// request manipulation, §4.1), and the remainder in a staging buffer. The
// receive completion triggers the loopback WAIT, which enables the patched
// local operations; their completions trigger the next-hop WAIT, which
// enables the data WRITE and the metadata SEND toward the next replica.
// The metadata message "peels" one descriptor block per hop. The tail's F2
// is a WRITE_WITH_IMM carrying the accumulated gCAS result map back to the
// client as the group ACK.
//
// No replica CPU cycle is spent between the client's doorbell and the
// ACK: the package never touches the cpusim scheduler.
//
// # Topologies
//
// The package provides three NIC-offloaded replication topologies, all
// implementing protocol.Protocol and registered with the protocol
// registry at init:
//
//   - Group ("chain"): the §4 chain above — total order, minimal
//     per-NIC load, one slow hop stalls the group.
//   - FanoutGroup ("fanout"): the §7 primary-coordinated fan-out — a
//     primary NIC drives all backups in parallel and aggregates acks in
//     hardware with absolute WAIT thresholds.
//   - BroadcastGroup ("bcast", "bcast-maj"): client-driven broadcast —
//     the client NIC fans the value to every replica directly and the
//     client completes an op on a configurable quorum of NIC-generated
//     acks ("bcast" waits for all, "bcast-maj" for a majority).
package hyperloop
