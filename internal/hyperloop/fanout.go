package hyperloop

import (
	"fmt"

	"hyperloop/internal/nvm"
	"hyperloop/internal/protocol"
	"hyperloop/internal/rdma"
	"hyperloop/internal/sim"
)

// FanoutGroup implements the paper's §7 extension: instead of a chain, a
// single primary coordinates all backups (FaRM-style), with the
// coordination offloaded from the primary's CPU to the primary's NIC.
//
// Per operation the primary's NIC runs, without CPU:
//
//	loopback QP:        [WAIT(recvCQ,1) → L1 → L2]        local ops
//	per-backup fwd QP:  [WAIT_ABS(loopCQ) → F1 → F2]      parallel fan-out
//	client QP:          [WAIT_ABS(ack_1) … WAIT_ABS(ack_B) → ACK WRITE_IMM]
//
// Each backup runs the same loopback chain plus an ACK SEND back to the
// primary. The per-backup absolute WAITs make the group ACK correct even
// with pipelined operations: the ACK for sequence s fires only once every
// backup has acknowledged its s-th operation.
//
// Chain vs fan-out is the load-balance trade-off the paper discusses: the
// chain keeps at most one active write QP per hop, while fan-out
// concentrates G-1 of them (and all the data transmission) on the primary.
// It implements protocol.Protocol (registered as "fanout").
type FanoutGroup struct {
	fab *rdma.Fabric
	k   *sim.Kernel
	cfg Config

	client  *rdma.NIC
	qpHead  *rdma.QP
	qpAck   *rdma.QP // client side of the primary's client QP (ACK target)
	ackMR   *rdma.MemoryRegion
	ackOff  uint64
	metaOff uint64

	primary *fanPrimary
	backups []*fanBackup

	trk *protocol.Tracker // window/seq/timeout/retry bookkeeping

	ackBuf []byte // onAck decode scratch, reused across ACKs
}

// fanPrimary holds the coordinator's NIC resources.
type fanPrimary struct {
	nic    *rdma.NIC
	mirror *rdma.MemoryRegion

	qpClient *rdma.QP // from client (metadata in, group ACK out)
	qpLoop   *rdma.QP
	qpFwd    []*rdma.QP // one per backup
	qpAckIn  []*rdma.QP // one per backup, ack receive side

	recvCQ *rdma.CQ   // metadata receives
	loopCQ *rdma.CQ   // L1/L2 completions
	ackCQs []*rdma.CQ // per-backup ack receive CQs

	resultOff   uint64 // per-op result blocks: [(1+B)*8 results][16 hdr]
	resultSlot  int
	stagingOff  uint64 // per-op per-backup forwarded metadata
	stagingSlot int

	completed uint64
}

// fanBackup holds one backup's NIC resources.
type fanBackup struct {
	index  int // 1-based backup number
	nic    *rdma.NIC
	mirror *rdma.MemoryRegion

	qpPrev *rdma.QP // from primary
	qpLoop *rdma.QP
	qpAck  *rdma.QP // to primary

	recvCQ *rdma.CQ
	loopCQ *rdma.CQ

	ackOff  uint64 // per-op ack slots: [16 hdr][8 result]
	ackSlot int

	completed uint64
}

// Fan-out metadata layout (client → primary):
//
//	[P.L1][P.L2]  [F1_1][F2_1]…[F1_B][F2_B]  [bmeta_1]…[bmeta_B]  [hdr]
//
// where bmeta_j = [B.L1][B.L2][hdr] is forwarded verbatim to backup j.
const (
	fanBackupMetaLen = 2*rdma.DescLen + headerSize
	fanAckLen        = headerSize + resultEntry // backup → primary ack
)

func (g *FanoutGroup) numBackups() int { return len(g.backups) }

func (g *FanoutGroup) metaLen() int {
	b := g.numBackups()
	return 2*rdma.DescLen + b*2*rdma.DescLen + b*fanBackupMetaLen + headerSize
}

func (g *FanoutGroup) resultSlotLen() int {
	return (1+g.numBackups())*resultEntry + headerSize
}

// SetupFanout builds a fan-out group: members[0] is the primary, the rest
// are backups. The same Config as the chain group applies.
func SetupFanout(fab *rdma.Fabric, client *rdma.NIC, members []*rdma.NIC, cfg Config) (*FanoutGroup, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("%w: need at least a primary", ErrBadArgument)
	}
	if cfg.MirrorSize <= 0 {
		return nil, fmt.Errorf("%w: mirror size must be positive", ErrBadArgument)
	}
	if cfg.Depth <= 0 {
		cfg.Depth = 32
	}
	for cfg.Depth&(cfg.Depth-1) != 0 {
		cfg.Depth++
	}
	if cfg.ReArmDelay <= 0 {
		cfg.ReArmDelay = 5 * sim.Microsecond
	}
	g := &FanoutGroup{
		fab:    fab,
		k:      fab.Kernel(),
		cfg:    cfg,
		client: client,
		trk: protocol.NewTracker(fab.Kernel(), cfg.Depth,
			cfg.OpTimeout, cfg.MaxRetries, cfg.RetryBackoff, ErrTimeout, ErrClosed),
	}
	for i := 1; i < len(members); i++ {
		g.backups = append(g.backups, &fanBackup{index: i})
	}
	if err := g.setupClient(); err != nil {
		return nil, err
	}
	if err := g.setupPrimary(members[0]); err != nil {
		return nil, fmt.Errorf("primary: %w", err)
	}
	for j, b := range g.backups {
		if err := g.setupBackup(b, members[j+1]); err != nil {
			return nil, fmt.Errorf("backup %d: %w", j+1, err)
		}
	}
	// Wire: client ↔ primary; primary fwd_j ↔ backup j prev; backup ack ↔
	// primary ackIn_j.
	g.qpHead.Connect(g.primary.qpClient)
	// The ACK WRITE_IMM travels primary→client on the same QP pair; the
	// client's qpAck is an alias of qpHead's peer relationship, so ACK
	// receives are posted on qpHead itself.
	g.qpAck = g.qpHead
	for j, b := range g.backups {
		g.primary.qpFwd[j].Connect(b.qpPrev)
		b.qpAck.Connect(g.primary.qpAckIn[j])
	}
	for seq := uint64(0); seq < uint64(cfg.Depth); seq++ {
		if err := g.armPrimary(seq); err != nil {
			return nil, fmt.Errorf("arm primary seq %d: %w", seq, err)
		}
		for _, b := range g.backups {
			if err := g.armBackup(b, seq); err != nil {
				return nil, fmt.Errorf("arm backup %d seq %d: %w", b.index, seq, err)
			}
		}
		g.qpAck.PostRecv(rdma.RecvWQE{})
	}
	g.installFanReArm()
	g.qpAck.RecvCQ().SetDrainHandler(g.onAcks)
	g.qpHead.SendCQ().Discard() // client sends are unobserved
	return g, nil
}

func (g *FanoutGroup) setupClient() error {
	dev := g.client.Memory()
	alloc := nvm.NewAllocator(dev)
	mirror, err := alloc.Alloc("mirror", g.cfg.MirrorSize)
	if err != nil {
		return err
	}
	if mirror.Off != 0 {
		return fmt.Errorf("hyperloop: client mirror not at offset 0")
	}
	meta, err := alloc.Alloc("meta", g.cfg.Depth*g.metaLen())
	if err != nil {
		return err
	}
	ack, err := alloc.Alloc("ack", g.cfg.Depth*g.resultSlotLen())
	if err != nil {
		return err
	}
	ring, err := alloc.Alloc("head-ring", 2*g.cfg.Depth*rdma.WQESize)
	if err != nil {
		return err
	}
	g.metaOff = uint64(meta.Off)
	g.ackOff = uint64(ack.Off)
	g.ackMR, err = g.client.RegisterMR(uint64(ack.Off), uint64(ack.Len), rdma.AccessRemoteWrite)
	if err != nil {
		return err
	}
	g.qpHead, err = g.client.CreateQP(rdma.QPConfig{
		SendRingOff: uint64(ring.Off), SendSlots: ring.Len / rdma.WQESize,
		SendCQ: g.client.CreateCQ(), RecvCQ: g.client.CreateCQ(),
	})
	return err
}

func (g *FanoutGroup) setupPrimary(nic *rdma.NIC) error {
	p := &fanPrimary{nic: nic}
	b := g.numBackups()
	alloc := nvm.NewAllocator(nic.Memory())
	mirror, err := alloc.Alloc("mirror", g.cfg.MirrorSize)
	if err != nil {
		return err
	}
	if mirror.Off != 0 {
		return fmt.Errorf("hyperloop: primary mirror not at offset 0")
	}
	p.resultSlot = g.resultSlotLen()
	results, err := alloc.Alloc("results", g.cfg.Depth*p.resultSlot)
	if err != nil {
		return err
	}
	p.stagingSlot = fanBackupMetaLen
	staging, err := alloc.Alloc("staging", g.cfg.Depth*maxInt(b, 1)*p.stagingSlot)
	if err != nil {
		return err
	}
	clientRing, err := alloc.Alloc("client-ring", (maxInt(b, 1)+1)*g.cfg.Depth*rdma.WQESize)
	if err != nil {
		return err
	}
	loopRing, err := alloc.Alloc("loop-ring", 3*g.cfg.Depth*rdma.WQESize)
	if err != nil {
		return err
	}
	p.resultOff = uint64(results.Off)
	p.stagingOff = uint64(staging.Off)
	p.mirror, err = nic.RegisterMR(0, uint64(g.cfg.MirrorSize),
		rdma.AccessRemoteRead|rdma.AccessRemoteWrite|rdma.AccessRemoteAtomic)
	if err != nil {
		return err
	}
	p.recvCQ = nic.CreateCQ()
	p.loopCQ = nic.CreateCQ()
	p.qpClient, err = nic.CreateQP(rdma.QPConfig{
		SendRingOff: uint64(clientRing.Off), SendSlots: clientRing.Len / rdma.WQESize,
		SendCQ: nic.CreateCQ(), RecvCQ: p.recvCQ,
	})
	if err != nil {
		return err
	}
	p.qpLoop, err = nic.CreateQP(rdma.QPConfig{
		SendRingOff: uint64(loopRing.Off), SendSlots: loopRing.Len / rdma.WQESize,
		SendCQ: p.loopCQ, RecvCQ: nic.CreateCQ(),
	})
	if err != nil {
		return err
	}
	p.qpLoop.Connect(p.qpLoop)
	for j := 0; j < b; j++ {
		fwdRing, err := alloc.Alloc(fmt.Sprintf("fwd-ring-%d", j), 3*g.cfg.Depth*rdma.WQESize)
		if err != nil {
			return err
		}
		qp, err := nic.CreateQP(rdma.QPConfig{
			SendRingOff: uint64(fwdRing.Off), SendSlots: fwdRing.Len / rdma.WQESize,
			SendCQ: nic.CreateCQ(), RecvCQ: nic.CreateCQ(),
		})
		if err != nil {
			return err
		}
		p.qpFwd = append(p.qpFwd, qp)

		ackRing, err := alloc.Alloc(fmt.Sprintf("ackin-ring-%d", j), rdma.WQESize)
		if err != nil {
			return err
		}
		ackCQ := nic.CreateCQ()
		aqp, err := nic.CreateQP(rdma.QPConfig{
			SendRingOff: uint64(ackRing.Off), SendSlots: 1,
			SendCQ: nic.CreateCQ(), RecvCQ: ackCQ,
		})
		if err != nil {
			return err
		}
		p.qpAckIn = append(p.qpAckIn, aqp)
		p.ackCQs = append(p.ackCQs, ackCQ)
		// ackCQ is a pure WAIT_ABS target; the rest are never read.
		ackCQ.Discard()
		aqp.SendCQ().Discard()
		qp.SendCQ().Discard()
		qp.RecvCQ().Discard()
	}
	// recvCQ/loopCQ drive WAIT thresholds only; the loopback receive side
	// carries nothing. (qpClient's send CQ keeps entriesless drain mode via
	// installFanReArm.)
	p.recvCQ.Discard()
	p.loopCQ.Discard()
	p.qpLoop.RecvCQ().Discard()
	g.primary = p
	return nil
}

func (g *FanoutGroup) setupBackup(b *fanBackup, nic *rdma.NIC) error {
	b.nic = nic
	alloc := nvm.NewAllocator(nic.Memory())
	mirror, err := alloc.Alloc("mirror", g.cfg.MirrorSize)
	if err != nil {
		return err
	}
	if mirror.Off != 0 {
		return fmt.Errorf("hyperloop: backup mirror not at offset 0")
	}
	b.ackSlot = fanAckLen
	ackBuf, err := alloc.Alloc("ack", g.cfg.Depth*b.ackSlot)
	if err != nil {
		return err
	}
	prevRing, err := alloc.Alloc("prev-ring", rdma.WQESize)
	if err != nil {
		return err
	}
	loopRing, err := alloc.Alloc("loop-ring", 3*g.cfg.Depth*rdma.WQESize)
	if err != nil {
		return err
	}
	ackRing, err := alloc.Alloc("ack-ring", 2*g.cfg.Depth*rdma.WQESize)
	if err != nil {
		return err
	}
	b.ackOff = uint64(ackBuf.Off)
	b.mirror, err = nic.RegisterMR(0, uint64(g.cfg.MirrorSize),
		rdma.AccessRemoteRead|rdma.AccessRemoteWrite|rdma.AccessRemoteAtomic)
	if err != nil {
		return err
	}
	b.recvCQ = nic.CreateCQ()
	b.loopCQ = nic.CreateCQ()
	b.qpPrev, err = nic.CreateQP(rdma.QPConfig{
		SendRingOff: uint64(prevRing.Off), SendSlots: 1,
		SendCQ: nic.CreateCQ(), RecvCQ: b.recvCQ,
	})
	if err != nil {
		return err
	}
	b.qpLoop, err = nic.CreateQP(rdma.QPConfig{
		SendRingOff: uint64(loopRing.Off), SendSlots: loopRing.Len / rdma.WQESize,
		SendCQ: b.loopCQ, RecvCQ: nic.CreateCQ(),
	})
	if err != nil {
		return err
	}
	b.qpLoop.Connect(b.qpLoop)
	b.qpAck, err = nic.CreateQP(rdma.QPConfig{
		SendRingOff: uint64(ackRing.Off), SendSlots: ackRing.Len / rdma.WQESize,
		SendCQ: nic.CreateCQ(), RecvCQ: nic.CreateCQ(),
	})
	if err != nil {
		return err
	}
	// WAIT targets and never-read CQs, as on the primary. qpAck's send CQ
	// gets its re-arm drain handler in installFanReArm.
	b.recvCQ.Discard()
	b.loopCQ.Discard()
	b.qpPrev.SendCQ().Discard()
	b.qpLoop.RecvCQ().Discard()
	b.qpAck.RecvCQ().Discard()
	return nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
