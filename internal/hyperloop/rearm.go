package hyperloop

import (
	"hyperloop/internal/protocol"
	"hyperloop/internal/rdma"
	"hyperloop/internal/sim"
)

// reArmAfter schedules one off-critical-path chain re-arm. A down NIC
// defers the re-arm instead of dropping it: a NIC outage doesn't kill the
// member host, whose control path keeps retrying its replenishment until
// the link returns. Dropping the re-arm would permanently shrink the
// pre-posted window — enough crash/restart cycles and the group wedges
// with every receive slot gone.
func reArmAfter(k *sim.Kernel, trk *protocol.Tracker, nic *rdma.NIC, d sim.Duration, arm func()) {
	var fn func()
	fn = func() {
		if trk.Closed() {
			return
		}
		if nic.Down() {
			k.After(d, fn)
			return
		}
		arm()
	}
	k.After(d, fn)
}
