package hyperloop

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"hyperloop/internal/nvm"
	"hyperloop/internal/rdma"
	"hyperloop/internal/sim"
)

const (
	testMirror = 64 * 1024
	testDev    = 1 << 20
)

// testGroup spins up a kernel, fabric, client and nReplicas replicas.
func testGroup(t *testing.T, nReplicas int, cfg Config) (*sim.Kernel, *Group) {
	t.Helper()
	k := sim.NewKernel(42)
	fab := rdma.NewFabric(k, rdma.DefaultConfig())
	client, err := fab.AddNIC("client", nvm.NewDevice("client", testDev))
	if err != nil {
		t.Fatal(err)
	}
	var reps []*rdma.NIC
	for i := 0; i < nReplicas; i++ {
		host := string(rune('a' + i))
		nic, err := fab.AddNIC(host, nvm.NewDevice(host, testDev))
		if err != nil {
			t.Fatal(err)
		}
		reps = append(reps, nic)
	}
	g, err := Setup(fab, client, reps, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return k, g
}

// runFiber drives fn as a fiber and the kernel to completion.
func runFiber(t *testing.T, k *sim.Kernel, fn func(f *sim.Fiber)) {
	t.Helper()
	k.Spawn("test", fn)
	if err := k.Run(); err != nil {
		t.Fatalf("kernel: %v", err)
	}
}

func TestSetupValidation(t *testing.T) {
	k := sim.NewKernel(1)
	fab := rdma.NewFabric(k, rdma.DefaultConfig())
	client, _ := fab.AddNIC("c", nvm.NewDevice("c", testDev))
	if _, err := Setup(fab, client, nil, DefaultConfig(testMirror)); !errors.Is(err, ErrBadArgument) {
		t.Fatalf("no replicas: err = %v", err)
	}
	r1, _ := fab.AddNIC("r1", nvm.NewDevice("r1", testDev))
	if _, err := Setup(fab, client, []*rdma.NIC{r1}, Config{MirrorSize: 0}); !errors.Is(err, ErrBadArgument) {
		t.Fatalf("zero mirror: err = %v", err)
	}
}

func TestDepthRoundedToPowerOfTwo(t *testing.T) {
	k := sim.NewKernel(1)
	fab := rdma.NewFabric(k, rdma.DefaultConfig())
	client, _ := fab.AddNIC("c", nvm.NewDevice("c", testDev))
	r1, _ := fab.AddNIC("r1", nvm.NewDevice("r1", testDev))
	cfg := DefaultConfig(1024)
	cfg.Depth = 19
	g, err := Setup(fab, client, []*rdma.NIC{r1}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d := g.cfg.Depth; d&(d-1) != 0 {
		t.Fatalf("depth %d not a power of two", d)
	}
}

func TestGWriteReplicatesToAll(t *testing.T) {
	k, g := testGroup(t, 3, DefaultConfig(testMirror))
	data := []byte("chain-replicated payload 12345")
	runFiber(t, k, func(f *sim.Fiber) {
		if err := g.WriteLocal(100, data); err != nil {
			t.Error(err)
			return
		}
		if err := g.Write(f, 100, len(data), false); err != nil {
			t.Errorf("gWRITE: %v", err)
		}
	})
	for i := 0; i < g.GroupSize(); i++ {
		got := make([]byte, len(data))
		if err := g.ReplicaNIC(i).Memory().Read(100, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("replica %d mirror = %q, want %q", i, got, data)
		}
	}
	issued, completed := g.Stats()
	if issued != 1 || completed != 1 {
		t.Fatalf("stats = %d issued, %d completed", issued, completed)
	}
}

func TestGWriteLatencyIsMicroseconds(t *testing.T) {
	k, g := testGroup(t, 3, DefaultConfig(testMirror))
	var lat sim.Duration
	runFiber(t, k, func(f *sim.Fiber) {
		_ = g.WriteLocal(0, make([]byte, 1024))
		start := f.Now()
		if err := g.Write(f, 0, 1024, true); err != nil {
			t.Errorf("gWRITE: %v", err)
		}
		lat = f.Now().Sub(start)
	})
	if lat <= 0 || lat > 100*sim.Microsecond {
		t.Fatalf("durable 1KB gWRITE over 3 replicas took %v, want µs-scale", lat)
	}
}

func TestDurableGWriteSurvivesCrash(t *testing.T) {
	k, g := testGroup(t, 3, DefaultConfig(testMirror))
	durableData := []byte("must survive power loss")
	volatileData := []byte("may vanish on power loss")
	runFiber(t, k, func(f *sim.Fiber) {
		_ = g.WriteLocal(0, durableData)
		if err := g.Write(f, 0, len(durableData), true); err != nil {
			t.Errorf("durable write: %v", err)
		}
		_ = g.WriteLocal(4096, volatileData)
		if err := g.Write(f, 4096, len(volatileData), false); err != nil {
			t.Errorf("volatile write: %v", err)
		}
	})
	for i := 0; i < g.GroupSize(); i++ {
		mem := g.ReplicaNIC(i).Memory()
		mem.Crash()
		got := make([]byte, len(durableData))
		_ = mem.Read(0, got)
		if !bytes.Equal(got, durableData) {
			t.Fatalf("replica %d lost durable data: %q", i, got)
		}
		gotV := make([]byte, len(volatileData))
		_ = mem.Read(4096, gotV)
		if bytes.Equal(gotV, volatileData) {
			t.Fatalf("replica %d kept non-durable data across crash — flush semantics broken", i)
		}
	}
}

func TestManySequentialWritesWrapRing(t *testing.T) {
	cfg := DefaultConfig(testMirror)
	cfg.Depth = 8
	k, g := testGroup(t, 3, cfg)
	const ops = 50 // several ring wraps at depth 8
	runFiber(t, k, func(f *sim.Fiber) {
		for i := 0; i < ops; i++ {
			payload := []byte{byte(i), byte(i >> 8), 0xCC, byte(i)}
			off := (i % 16) * 256
			_ = g.WriteLocal(off, payload)
			if err := g.Write(f, off, len(payload), false); err != nil {
				t.Errorf("op %d: %v", i, err)
				return
			}
		}
	})
	issued, completed := g.Stats()
	if issued != ops || completed != ops {
		t.Fatalf("stats = %d/%d, want %d", issued, completed, ops)
	}
	// Spot-check the final op's payload everywhere.
	want := []byte{byte(ops - 1), byte((ops - 1) >> 8), 0xCC, byte(ops - 1)}
	for i := 0; i < g.GroupSize(); i++ {
		got := make([]byte, 4)
		_ = g.ReplicaNIC(i).Memory().Read(((ops-1)%16)*256, got)
		if !bytes.Equal(got, want) {
			t.Fatalf("replica %d final op = %v, want %v", i, got, want)
		}
	}
}

func TestPipelinedAsyncWrites(t *testing.T) {
	cfg := DefaultConfig(testMirror)
	cfg.Depth = 32
	k, g := testGroup(t, 3, cfg)
	const window = 16
	runFiber(t, k, func(f *sim.Fiber) {
		sigs := make([]*sim.Signal, 0, window)
		for i := 0; i < window; i++ {
			_ = g.WriteLocal(i*512, []byte{byte(i + 1)})
			sig, err := g.WriteAsync(i*512, 1, false)
			if err != nil {
				t.Errorf("async %d: %v", i, err)
				return
			}
			sigs = append(sigs, sig)
		}
		if err := f.AwaitAll(sigs...); err != nil {
			t.Errorf("await: %v", err)
		}
	})
	for i := 0; i < window; i++ {
		b, _ := g.ReplicaNIC(2).Memory().Slice(i*512, 1)
		if b[0] != byte(i+1) {
			t.Fatalf("pipelined op %d missing at tail", i)
		}
	}
}

func TestWindowLimitEnforced(t *testing.T) {
	cfg := DefaultConfig(testMirror)
	cfg.Depth = 4
	k, g := testGroup(t, 1, cfg)
	runFiber(t, k, func(f *sim.Fiber) {
		var last *sim.Signal
		for i := 0; ; i++ {
			sig, err := g.WriteAsync(0, 1, false)
			if errors.Is(err, ErrTooManyInFlight) {
				if i < 2 {
					t.Errorf("window closed after only %d ops", i)
				}
				break
			}
			if err != nil {
				t.Errorf("unexpected err: %v", err)
				break
			}
			last = sig
			if i > 100 {
				t.Error("window never closed")
				break
			}
		}
		if last != nil {
			_ = f.Await(last)
		}
	})
}

func TestGCASAcquiresLockOnAllReplicas(t *testing.T) {
	k, g := testGroup(t, 3, DefaultConfig(testMirror))
	const lockOff = 512
	exec := []bool{true, true, true}
	runFiber(t, k, func(f *sim.Fiber) {
		// Acquire: 0 → 7 everywhere.
		res, err := g.CAS(f, lockOff, 0, 7, exec)
		if err != nil {
			t.Errorf("gCAS: %v", err)
			return
		}
		for i, v := range res {
			if v != 0 {
				t.Errorf("replica %d original = %d, want 0", i, v)
			}
		}
		// Second acquire must fail everywhere and report holder 7.
		res, err = g.CAS(f, lockOff, 0, 9, exec)
		if err != nil {
			t.Errorf("gCAS 2: %v", err)
			return
		}
		for i, v := range res {
			if v != 7 {
				t.Errorf("replica %d original = %d, want 7 (lock held)", i, v)
			}
		}
	})
	// Lock word must be 7 (second CAS failed) on every replica.
	for i := 0; i < 3; i++ {
		b, _ := g.ReplicaNIC(i).Memory().Slice(lockOff, 8)
		if b[0] != 7 {
			t.Fatalf("replica %d lock word = %d, want 7", i, b[0])
		}
	}
}

func TestGCASSelectiveExecution(t *testing.T) {
	// The undo path: execute only on replicas 0 and 2, skip 1.
	k, g := testGroup(t, 3, DefaultConfig(testMirror))
	const off = 1024
	runFiber(t, k, func(f *sim.Fiber) {
		if _, err := g.CAS(f, off, 0, 5, []bool{true, false, true}); err != nil {
			t.Errorf("gCAS: %v", err)
		}
	})
	for i, want := range []byte{5, 0, 5} {
		b, _ := g.ReplicaNIC(i).Memory().Slice(off, 8)
		if b[0] != want {
			t.Fatalf("replica %d word = %d, want %d (selective execution broken)", i, b[0], want)
		}
	}
}

func TestGCASExecMapValidation(t *testing.T) {
	k, g := testGroup(t, 3, DefaultConfig(testMirror))
	runFiber(t, k, func(f *sim.Fiber) {
		if _, err := g.CAS(f, 0, 0, 1, []bool{true}); !errors.Is(err, ErrBadArgument) {
			t.Errorf("short exec map: err = %v", err)
		}
	})
}

func TestGMemcpyExecutesLogOnAllMembers(t *testing.T) {
	k, g := testGroup(t, 3, DefaultConfig(testMirror))
	record := []byte("log record: set X=42")
	const logOff, dataOff = 0, 8192
	runFiber(t, k, func(f *sim.Fiber) {
		// Replicate the log record first (gWRITE), then execute it
		// everywhere (gMEMCPY) — the paper's ExecuteAndAdvance step.
		_ = g.WriteLocal(logOff, record)
		if err := g.Write(f, logOff, len(record), true); err != nil {
			t.Errorf("append: %v", err)
			return
		}
		if err := g.Memcpy(f, logOff, dataOff, len(record), true); err != nil {
			t.Errorf("gMEMCPY: %v", err)
		}
	})
	// Client and every replica must now have the record in the data area.
	check := func(name string, mem *nvm.Device) {
		got := make([]byte, len(record))
		_ = mem.Read(dataOff, got)
		if !bytes.Equal(got, record) {
			t.Fatalf("%s data area = %q, want %q", name, got, record)
		}
	}
	check("client", g.ClientNIC().Memory())
	for i := 0; i < 3; i++ {
		check("replica", g.ReplicaNIC(i).Memory())
	}
}

func TestGFlushMakesPriorWriteDurable(t *testing.T) {
	k, g := testGroup(t, 2, DefaultConfig(testMirror))
	data := []byte("write now, flush later")
	runFiber(t, k, func(f *sim.Fiber) {
		_ = g.WriteLocal(0, data)
		if err := g.Write(f, 0, len(data), false); err != nil {
			t.Errorf("write: %v", err)
			return
		}
		if err := g.Flush(f, 0, len(data)); err != nil {
			t.Errorf("gFLUSH: %v", err)
		}
	})
	for i := 0; i < 2; i++ {
		mem := g.ReplicaNIC(i).Memory()
		mem.Crash()
		got := make([]byte, len(data))
		_ = mem.Read(0, got)
		if !bytes.Equal(got, data) {
			t.Fatalf("replica %d: standalone gFLUSH did not persist data", i)
		}
	}
}

func TestReadHead(t *testing.T) {
	k, g := testGroup(t, 3, DefaultConfig(testMirror))
	data := []byte("read me back one-sided")
	runFiber(t, k, func(f *sim.Fiber) {
		_ = g.WriteLocal(0, data)
		if err := g.Write(f, 0, len(data), false); err != nil {
			t.Errorf("write: %v", err)
			return
		}
		// Scribble over the client copy, then fetch from the head replica.
		_ = g.WriteLocal(2048, bytes.Repeat([]byte{0xFF}, len(data)))
		if err := g.ReadHead(f, 0, 2048, len(data)); err != nil {
			t.Errorf("read head: %v", err)
			return
		}
		got, err := g.ReadLocal(2048, len(data))
		if err != nil {
			t.Error(err)
			return
		}
		if !bytes.Equal(got, data) {
			t.Errorf("read head = %q, want %q", got, data)
		}
	})
}

func TestOpTimeoutOnDeadReplica(t *testing.T) {
	cfg := DefaultConfig(testMirror)
	cfg.OpTimeout = 500 * sim.Microsecond
	k, g := testGroup(t, 3, cfg)
	runFiber(t, k, func(f *sim.Fiber) {
		g.ReplicaNIC(1).SetDown(true)
		_ = g.WriteLocal(0, []byte{1})
		err := g.Write(f, 0, 1, false)
		if !errors.Is(err, ErrTimeout) {
			t.Errorf("err = %v, want ErrTimeout", err)
		}
		if g.InFlight() != 0 {
			t.Errorf("inflight = %d after timeout", g.InFlight())
		}
	})
}

func TestRetryBoundedOnPermanentCrash(t *testing.T) {
	// A permanently dead mid-chain replica must make a retried Write fail
	// in bounded time — exactly MaxRetries re-issues, never a hang. (The
	// pre-armed WQE chains die with the replica, so retries cannot succeed
	// without group re-setup; what they must do is terminate.)
	cfg := DefaultConfig(testMirror)
	cfg.OpTimeout = 500 * sim.Microsecond
	cfg.MaxRetries = 2
	cfg.RetryBackoff = 100 * sim.Microsecond
	k, g := testGroup(t, 3, cfg)
	runFiber(t, k, func(f *sim.Fiber) {
		g.ReplicaNIC(1).SetDown(true)
		_ = g.WriteLocal(0, []byte{1})
		start := f.Now()
		err := g.Write(f, 0, 1, false)
		if !errors.Is(err, ErrTimeout) {
			t.Errorf("err = %v, want ErrTimeout", err)
		}
		if got := g.Retried(); got != 2 {
			t.Errorf("Retried() = %d, want 2", got)
		}
		// 3 attempts x 500µs timeout + 100µs + 200µs backoff, plus slack.
		if el := f.Now().Sub(start); el > 3*sim.Millisecond {
			t.Errorf("write took %v, want bounded by retries", el)
		}
		if g.InFlight() != 0 {
			t.Errorf("inflight = %d after retries exhausted", g.InFlight())
		}
	})
	if n := k.LiveFibers(); n != 0 {
		t.Errorf("%d fibers still live", n)
	}
}

func TestCloseThenResetupOverlappingNICs(t *testing.T) {
	// Failover re-establishes a group over surviving members. Both Setups
	// allocate control rings at identical device offsets, so the old
	// group's QPs — still parked on WAITs — would wake on the new group's
	// traffic, re-read the rewritten ring slots, and steal its WAIT
	// completions, stalling the new chain forever on disowned WQEs.
	// Close must make the abandoned datapath fully inert.
	k := sim.NewKernel(1)
	fab := rdma.NewFabric(k, rdma.DefaultConfig())
	client, err := fab.AddNIC("client", nvm.NewDevice("client", testDev))
	if err != nil {
		t.Fatal(err)
	}
	var reps []*rdma.NIC
	for _, h := range []string{"r0", "r1", "r2", "spare"} {
		nic, err := fab.AddNIC(h, nvm.NewDevice(h, testDev))
		if err != nil {
			t.Fatal(err)
		}
		reps = append(reps, nic)
	}
	cfg := DefaultConfig(testMirror)
	cfg.OpTimeout = 200 * sim.Microsecond
	g1, err := Setup(fab, client, reps[:3], cfg)
	if err != nil {
		t.Fatal(err)
	}
	g1.Close()
	if _, err := g1.WriteAsync(0, 64, false); !errors.Is(err, ErrClosed) {
		t.Fatalf("WriteAsync on closed group: err = %v, want ErrClosed", err)
	}
	g2, err := Setup(fab, client, []*rdma.NIC{reps[0], reps[3], reps[2]}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	runFiber(t, k, func(f *sim.Fiber) {
		for i := 0; i < 100; i++ {
			if err := g2.Write(f, (i%16)*1024, 1024, true); err != nil {
				t.Fatalf("write %d on re-established group: %v", i, err)
			}
		}
	})
	if _, completed := g2.Stats(); completed != 100 {
		t.Errorf("completed = %d, want 100", completed)
	}
}

func TestCloseFailsInFlightOps(t *testing.T) {
	// Close fires ErrClosed into every awaiting fiber; nothing hangs on an
	// operation the torn-down datapath will never complete.
	cfg := DefaultConfig(testMirror)
	k, g := testGroup(t, 2, cfg)
	runFiber(t, k, func(f *sim.Fiber) {
		g.ReplicaNIC(0).SetDown(true) // freeze the chain so the op stays in flight
		sig, err := g.WriteAsync(0, 64, false)
		if err != nil {
			t.Fatal(err)
		}
		g.Close()
		if err := f.Await(sig); !errors.Is(err, ErrClosed) {
			t.Errorf("await = %v, want ErrClosed", err)
		}
		if g.InFlight() != 0 {
			t.Errorf("inflight = %d after Close", g.InFlight())
		}
	})
}

func TestBadRangeRejected(t *testing.T) {
	k, g := testGroup(t, 2, DefaultConfig(testMirror))
	runFiber(t, k, func(f *sim.Fiber) {
		if _, err := g.WriteAsync(testMirror-1, 2, false); !errors.Is(err, ErrBadArgument) {
			t.Errorf("overflow write err = %v", err)
		}
		if _, err := g.MemcpyAsync(0, testMirror-1, 8, false); !errors.Is(err, ErrBadArgument) {
			t.Errorf("overflow memcpy err = %v", err)
		}
		if err := g.WriteLocal(-1, []byte{1}); !errors.Is(err, ErrBadArgument) {
			t.Errorf("negative local write err = %v", err)
		}
		if _, err := g.ReadLocal(testMirror, 1); !errors.Is(err, ErrBadArgument) {
			t.Errorf("local read err = %v", err)
		}
	})
}

func TestGroupSizesOneThroughFive(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5} {
		n := n
		cfg := DefaultConfig(testMirror)
		k, g := testGroup(t, n, cfg)
		data := []byte("size sweep payload")
		runFiber(t, k, func(f *sim.Fiber) {
			_ = g.WriteLocal(0, data)
			if err := g.Write(f, 0, len(data), true); err != nil {
				t.Errorf("G=%d: %v", n, err)
			}
		})
		for i := 0; i < n; i++ {
			got := make([]byte, len(data))
			_ = g.ReplicaNIC(i).Memory().Read(0, got)
			if !bytes.Equal(got, data) {
				t.Fatalf("G=%d replica %d missing data", n, i)
			}
		}
	}
}

// TestMirrorConsistencyProperty replays random op sequences and checks the
// fundamental invariant: after all operations complete, every replica's
// mirror equals the client's mirror.
func TestMirrorConsistencyProperty(t *testing.T) {
	type step struct {
		Kind    uint8
		Off     uint16
		Size    uint8
		Payload uint8
	}
	f := func(steps []step) bool {
		if len(steps) > 25 {
			steps = steps[:25]
		}
		k, g := testGroup(t, 3, DefaultConfig(testMirror))
		ok := true
		runFiber(t, k, func(f *sim.Fiber) {
			for _, s := range steps {
				off := int(s.Off) % (testMirror - 300)
				size := int(s.Size)%255 + 1
				switch s.Kind % 3 {
				case 0: // gWRITE
					payload := bytes.Repeat([]byte{s.Payload}, size)
					if err := g.WriteLocal(off, payload); err != nil {
						ok = false
						return
					}
					if err := g.Write(f, off, size, s.Payload%2 == 0); err != nil {
						ok = false
						return
					}
				case 1: // gMEMCPY within mirror
					dst := (off + 300) % (testMirror - 300)
					if err := g.Memcpy(f, off, dst, size, false); err != nil {
						ok = false
						return
					}
				case 2: // gCAS on an aligned word
					word := off &^ 7
					if _, err := g.CAS(f, word, uint64(s.Payload), uint64(s.Payload)+1,
						[]bool{true, true, true}); err != nil {
						ok = false
						return
					}
				}
			}
		})
		if !ok {
			return false
		}
		clientImg := make([]byte, testMirror)
		if err := g.ClientNIC().Memory().Read(0, clientImg); err != nil {
			return false
		}
		for i := 0; i < 3; i++ {
			img := make([]byte, testMirror)
			if err := g.ReplicaNIC(i).Memory().Read(0, img); err != nil {
				return false
			}
			if !bytes.Equal(img, clientImg) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestCASConsistencyAcrossClientAndReplicas: the client must apply the CAS
// locally too for the mirror invariant to hold — verify the group leaves
// replicas consistent with each other even though the client does not CAS
// its own copy (locks live on replicas; see txn package).
func TestReplicasAgreeAfterContendedCAS(t *testing.T) {
	k, g := testGroup(t, 3, DefaultConfig(testMirror))
	runFiber(t, k, func(f *sim.Fiber) {
		for i := uint64(0); i < 10; i++ {
			if _, err := g.CAS(f, 0, i, i+1, []bool{true, true, true}); err != nil {
				t.Errorf("cas %d: %v", i, err)
				return
			}
		}
	})
	var want []byte
	for i := 0; i < 3; i++ {
		b, _ := g.ReplicaNIC(i).Memory().Slice(0, 8)
		if want == nil {
			want = append([]byte(nil), b...)
		} else if !bytes.Equal(b, want) {
			t.Fatalf("replicas disagree on lock word: %v vs %v", b, want)
		}
	}
	if want[0] != 10 {
		t.Fatalf("lock word = %d, want 10", want[0])
	}
}
