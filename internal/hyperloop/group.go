package hyperloop

import (
	"encoding/binary"
	"fmt"

	"hyperloop/internal/nvm"
	"hyperloop/internal/protocol"
	"hyperloop/internal/rdma"
	"hyperloop/internal/sim"
)

// Config parameterizes a replication group.
type Config struct {
	// MirrorSize is the size of the replicated memory region. Offsets in
	// group operations are relative to the mirror, which starts at device
	// offset 0 on every member (client included).
	MirrorSize int
	// Depth is the maximum number of in-flight operations (pre-armed WQE
	// chains per replica).
	Depth int
	// ReArmDelay is how long after an operation completes at a replica its
	// control path re-arms the chain for sequence seq+Depth. It is off the
	// critical path by construction.
	ReArmDelay sim.Duration
	// OpTimeout aborts an operation whose ACK does not arrive in time
	// (0 disables). Needed when replicas fail.
	OpTimeout sim.Duration
	// MaxRetries re-issues a blocking operation that failed with
	// ErrTimeout up to this many extra times (0 disables). Re-issue is
	// safe because gWRITE/gMEMCPY/gFLUSH are idempotent and each attempt
	// takes a fresh sequence number; gCAS is never retried.
	MaxRetries int
	// RetryBackoff is the linear backoff between retries: attempt k
	// sleeps k*RetryBackoff before re-issuing.
	RetryBackoff sim.Duration
	// AckQuorum applies to the broadcast protocol only: member acks
	// required to complete a write/memcpy/flush (0 = all members). gCAS
	// always waits for every member's ack, since it returns per-member
	// results. The chain and fan-out groups ignore this field.
	AckQuorum int
}

// DefaultConfig returns a config suitable for the benchmarks.
func DefaultConfig(mirrorSize int) Config {
	return Config{
		MirrorSize: mirrorSize,
		Depth:      32,
		ReArmDelay: 5 * sim.Microsecond,
	}
}

// Errors returned by group operations. Each wraps the corresponding
// canonical sentinel in internal/protocol, so errors.Is matches either.
var (
	ErrTooManyInFlight = protocol.WrapErr("hyperloop: operation window exceeded", protocol.ErrTooManyInFlight)
	ErrTimeout         = protocol.WrapErr("hyperloop: operation timed out", protocol.ErrTimeout)
	ErrBadArgument     = protocol.WrapErr("hyperloop: bad argument", protocol.ErrBadArgument)
	ErrClosed          = protocol.WrapErr("hyperloop: group closed", protocol.ErrClosed)
)

// opKind is the shared wire encoding of the four primitives.
type opKind = protocol.OpKind

const (
	kindWrite  = protocol.KindWrite
	kindCAS    = protocol.KindCAS
	kindMemcpy = protocol.KindMemcpy
	kindFlush  = protocol.KindFlush
)

// replica holds one group member's NIC resources.
type replica struct {
	index  int // 1-based hop number
	nic    *rdma.NIC
	mirror *rdma.MemoryRegion

	qpPrev *rdma.QP // from previous member (client for hop 1)
	qpNext *rdma.QP // to next member (to client's ACK QP for the tail)
	qpLoop *rdma.QP // loopback for local CAS/FLUSH

	recvCQ *rdma.CQ // completions of metadata receives from prev
	loopCQ *rdma.CQ // completions of L1/L2
	nextCQ *rdma.CQ // completions of F2 (drives re-arm)

	stagingOff  uint64
	stagingSlot int
	metaRest    int
	isTail      bool

	completed uint64 // ops completed at this replica (re-arm trigger)
}

// Group is a HyperLoop replication group: one client (transaction
// coordinator) chained through one or more replicas. It implements
// protocol.Protocol (registered as "chain").
type Group struct {
	fab *rdma.Fabric
	k   *sim.Kernel
	cfg Config
	lay layout

	client   *rdma.NIC
	qpHead   *rdma.QP // client → first replica
	qpAck    *rdma.QP // tail → client (group ACK)
	ackMR    *rdma.MemoryRegion
	ackOff   uint64
	metaOff  uint64 // client-side metadata build buffers
	replicas []*replica

	trk      *protocol.Tracker      // window/seq/timeout/retry bookkeeping
	reads    map[uint64]*sim.Signal // WRID → signal for one-sided reads
	nextWRID uint64

	ackBuf []byte // onAck decode scratch, reused across ACKs
}

// Setup builds a group over the given NICs. Every device must be large
// enough for the mirror plus control structures; the mirror occupies
// [0, MirrorSize) on every member so group offsets are uniform.
func Setup(fab *rdma.Fabric, client *rdma.NIC, replicas []*rdma.NIC, cfg Config) (*Group, error) {
	if len(replicas) == 0 {
		return nil, fmt.Errorf("%w: need at least one replica", ErrBadArgument)
	}
	if cfg.MirrorSize <= 0 {
		return nil, fmt.Errorf("%w: mirror size must be positive", ErrBadArgument)
	}
	if cfg.Depth <= 0 {
		cfg.Depth = 32
	}
	// The ACK's imm carries only the low 32 bits of the sequence; a
	// power-of-two depth keeps slot arithmetic consistent across the
	// truncation.
	for cfg.Depth&(cfg.Depth-1) != 0 {
		cfg.Depth++
	}
	if cfg.ReArmDelay <= 0 {
		cfg.ReArmDelay = 5 * sim.Microsecond
	}
	g := &Group{
		fab:    fab,
		k:      fab.Kernel(),
		cfg:    cfg,
		lay:    layout{groupSize: len(replicas), depth: cfg.Depth},
		client: client,
		trk: protocol.NewTracker(fab.Kernel(), cfg.Depth,
			cfg.OpTimeout, cfg.MaxRetries, cfg.RetryBackoff, ErrTimeout, ErrClosed),
		reads: make(map[uint64]*sim.Signal),
	}
	if err := g.setupClient(); err != nil {
		return nil, err
	}
	for i, nic := range replicas {
		r, err := g.setupReplica(i+1, nic)
		if err != nil {
			return nil, fmt.Errorf("replica %d (%s): %w", i+1, nic.Host(), err)
		}
		g.replicas = append(g.replicas, r)
	}
	g.connect()
	// Arm the full window on every replica and post the client's ACK
	// receives. This is the only phase that involves member CPUs.
	for _, r := range g.replicas {
		for seq := uint64(0); seq < uint64(cfg.Depth); seq++ {
			if err := g.arm(r, seq); err != nil {
				return nil, fmt.Errorf("arm replica %d seq %d: %w", r.index, seq, err)
			}
		}
		g.installReArm(r)
	}
	for i := 0; i < cfg.Depth; i++ {
		g.qpAck.PostRecv(rdma.RecvWQE{})
	}
	g.qpAck.RecvCQ().SetDrainHandler(g.onAcks)
	g.qpHead.SendCQ().SetDrainHandler(g.onClientSendCQEs)
	// Counter-only CQs: nothing consumes their entries, so don't retain.
	g.qpHead.RecvCQ().Discard()
	g.qpAck.SendCQ().Discard()
	return g, nil
}

// ringBytes returns the send-ring size for one chain ring.
func (g *Group) ringBytes() int { return slotsPerOp * g.cfg.Depth * rdma.WQESize }

func (g *Group) setupClient() error {
	dev := g.client.Memory()
	alloc := nvm.NewAllocator(dev)
	mirror, err := alloc.Alloc("mirror", g.cfg.MirrorSize)
	if err != nil {
		return err
	}
	if mirror.Off != 0 {
		return fmt.Errorf("hyperloop: client mirror not at offset 0")
	}
	meta, err := alloc.Alloc("meta", g.cfg.Depth*g.lay.metaLen(1))
	if err != nil {
		return err
	}
	ack, err := alloc.Alloc("ack", g.cfg.Depth*g.lay.ackSlotSize())
	if err != nil {
		return err
	}
	headRing, err := alloc.Alloc("head-ring", g.ringBytes()+2*rdma.WQESize)
	if err != nil {
		return err
	}
	ackRing, err := alloc.Alloc("ack-ring", rdma.WQESize)
	if err != nil {
		return err
	}
	g.metaOff = uint64(meta.Off)
	g.ackOff = uint64(ack.Off)
	g.ackMR, err = g.client.RegisterMR(uint64(ack.Off), uint64(ack.Len), rdma.AccessRemoteWrite)
	if err != nil {
		return err
	}
	g.qpHead, err = g.client.CreateQP(rdma.QPConfig{
		SendRingOff: uint64(headRing.Off),
		SendSlots:   headRing.Len / rdma.WQESize,
		SendCQ:      g.client.CreateCQ(),
		RecvCQ:      g.client.CreateCQ(),
	})
	if err != nil {
		return err
	}
	g.qpAck, err = g.client.CreateQP(rdma.QPConfig{
		SendRingOff: uint64(ackRing.Off),
		SendSlots:   1,
		SendCQ:      g.client.CreateCQ(),
		RecvCQ:      g.client.CreateCQ(),
	})
	return err
}

func (g *Group) setupReplica(index int, nic *rdma.NIC) (*replica, error) {
	r := &replica{index: index, nic: nic, isTail: index == g.lay.groupSize}
	r.metaRest = g.lay.metaRest(index)
	r.stagingSlot = r.metaRest
	if r.stagingSlot == 0 {
		r.stagingSlot = 1
	}
	dev := nic.Memory()
	alloc := nvm.NewAllocator(dev)
	mirror, err := alloc.Alloc("mirror", g.cfg.MirrorSize)
	if err != nil {
		return nil, err
	}
	if mirror.Off != 0 {
		return nil, fmt.Errorf("hyperloop: mirror not at offset 0")
	}
	staging, err := alloc.Alloc("staging", g.cfg.Depth*r.stagingSlot)
	if err != nil {
		return nil, err
	}
	prevRing, err := alloc.Alloc("prev-ring", rdma.WQESize)
	if err != nil {
		return nil, err
	}
	nextRing, err := alloc.Alloc("next-ring", g.ringBytes())
	if err != nil {
		return nil, err
	}
	loopRing, err := alloc.Alloc("loop-ring", g.ringBytes())
	if err != nil {
		return nil, err
	}
	r.stagingOff = uint64(staging.Off)
	// One MR with full rights covers the mirror: the previous hop WRITEs
	// into it, the local loopback FLUSHes (0-byte READ) and CASes it.
	r.mirror, err = nic.RegisterMR(0, uint64(g.cfg.MirrorSize),
		rdma.AccessRemoteRead|rdma.AccessRemoteWrite|rdma.AccessRemoteAtomic)
	if err != nil {
		return nil, err
	}
	r.recvCQ = nic.CreateCQ()
	r.loopCQ = nic.CreateCQ()
	r.nextCQ = nic.CreateCQ()
	r.qpPrev, err = nic.CreateQP(rdma.QPConfig{
		SendRingOff: uint64(prevRing.Off), SendSlots: 1,
		SendCQ: nic.CreateCQ(), RecvCQ: r.recvCQ,
	})
	if err != nil {
		return nil, err
	}
	r.qpNext, err = nic.CreateQP(rdma.QPConfig{
		SendRingOff: uint64(nextRing.Off), SendSlots: nextRing.Len / rdma.WQESize,
		SendCQ: r.nextCQ, RecvCQ: nic.CreateCQ(),
	})
	if err != nil {
		return nil, err
	}
	r.qpLoop, err = nic.CreateQP(rdma.QPConfig{
		SendRingOff: uint64(loopRing.Off), SendSlots: loopRing.Len / rdma.WQESize,
		SendCQ: r.loopCQ, RecvCQ: nic.CreateCQ(),
	})
	if err != nil {
		return nil, err
	}
	r.qpLoop.Connect(r.qpLoop) // loopback
	// recvCQ and loopCQ are pure WAIT targets, and the anonymous CQs are
	// never read at all; keep them as counters so the per-op completions
	// (several per chained WQE) don't accumulate for the whole run.
	r.recvCQ.Discard()
	r.loopCQ.Discard()
	r.qpPrev.SendCQ().Discard()
	r.qpNext.RecvCQ().Discard()
	r.qpLoop.RecvCQ().Discard()
	return r, nil
}

func (g *Group) connect() {
	g.qpHead.Connect(g.replicas[0].qpPrev)
	for i := 0; i < len(g.replicas)-1; i++ {
		g.replicas[i].qpNext.Connect(g.replicas[i+1].qpPrev)
	}
	g.replicas[len(g.replicas)-1].qpNext.Connect(g.qpAck)
}

// Close tears the group's datapath down: every in-flight operation fails
// with ErrClosed, re-arm timers become no-ops, and every QP and CQ the
// group created is destroyed at the rdma layer. Closing the old group is
// mandatory before re-establishing one over surviving members (failover):
// both groups allocate their control rings at identical device offsets,
// so an abandoned group's still-parked QPs would wake on the successor's
// traffic, re-read the rewritten ring slots, and steal the successor's
// WAIT completions — its chains then stall forever on disowned WQEs.
func (g *Group) Close() {
	if g.trk.Closed() {
		return
	}
	g.trk.Close()
	for wrid, sig := range g.reads {
		delete(g.reads, wrid)
		sig.Fire(ErrClosed)
	}
	qps := []*rdma.QP{g.qpHead, g.qpAck}
	for _, r := range g.replicas {
		qps = append(qps, r.qpPrev, r.qpNext, r.qpLoop)
	}
	for _, q := range qps {
		q.SendCQ().Destroy()
		q.RecvCQ().Destroy()
		q.Destroy()
	}
}

// GroupSize returns the number of replicas.
func (g *Group) GroupSize() int { return len(g.replicas) }

// ReplicaNIC returns the i-th (0-based) replica's NIC, e.g. for fault
// injection or direct memory inspection in tests.
func (g *Group) ReplicaNIC(i int) *rdma.NIC { return g.replicas[i].nic }

// ClientNIC returns the client's NIC.
func (g *Group) ClientNIC() *rdma.NIC { return g.client }

// Stats reports operations issued and completed.
func (g *Group) Stats() (issued, completed int64) { return g.trk.Stats() }

// Retried reports how many timed-out operations were re-issued by the
// blocking paths.
func (g *Group) Retried() int64 { return g.trk.Retried() }

// InFlight returns the number of operations awaiting their group ACK.
func (g *Group) InFlight() int { return g.trk.InFlight() }

// onAck handles the tail's WRITE_WITH_IMM: it carries the op's result
// block into the client's ACK buffer and its imm names the sequence.
// onAcks handles a drained batch of group-ACK completions.
func (g *Group) onAcks(batch []rdma.CQE) {
	for _, e := range batch {
		g.onAck(e)
	}
}

func (g *Group) onAck(e rdma.CQE) {
	g.qpAck.PostRecv(rdma.RecvWQE{}) // keep the ACK window replenished
	slot := uint64(e.Imm) % uint64(g.cfg.Depth)
	slotAddr := int(g.ackOff) + int(slot)*g.lay.ackSlotSize()
	if cap(g.ackBuf) < g.lay.ackSlotSize() {
		g.ackBuf = make([]byte, g.lay.ackSlotSize())
	}
	buf := g.ackBuf[:g.lay.ackSlotSize()]
	if err := g.client.Memory().Read(slotAddr, buf); err != nil {
		return
	}
	seq := binary.LittleEndian.Uint64(buf[g.lay.resultsLen():])
	op := g.trk.Complete(seq)
	if op == nil {
		return // late ACK after timeout
	}
	if op.Kind == kindCAS {
		op.Results = make([]uint64, g.lay.groupSize)
		for j := 0; j < g.lay.groupSize; j++ {
			op.Results[j] = binary.LittleEndian.Uint64(buf[j*resultEntry:])
		}
	}
	op.Sig.Fire(nil)
}

// onClientSendCQEs resolves one-sided READs issued by the client.
func (g *Group) onClientSendCQEs(batch []rdma.CQE) {
	for _, e := range batch {
		g.onClientSendCQE(e)
	}
}

func (g *Group) onClientSendCQE(e rdma.CQE) {
	sig, ok := g.reads[e.WRID]
	if !ok {
		return
	}
	delete(g.reads, e.WRID)
	if e.Status != rdma.StatusSuccess {
		sig.Fire(fmt.Errorf("hyperloop: read failed: %v", e.Status))
		return
	}
	sig.Fire(nil)
}
