package hyperloop

import (
	"fmt"

	"hyperloop/internal/rdma"
	"hyperloop/internal/sim"
)

// GroupSize returns the member count (primary + backups).
func (g *FanoutGroup) GroupSize() int { return 1 + g.numBackups() }

// PrimaryNIC returns the coordinating member's NIC.
func (g *FanoutGroup) PrimaryNIC() *rdma.NIC { return g.primary.nic }

// ReplicaNIC returns member i's NIC (0 = primary, i>0 = backup i).
func (g *FanoutGroup) ReplicaNIC(i int) *rdma.NIC {
	if i == 0 {
		return g.primary.nic
	}
	return g.backups[i-1].nic
}

// ClientNIC returns the client's NIC.
func (g *FanoutGroup) ClientNIC() *rdma.NIC { return g.client }

// Stats reports operations issued and completed.
func (g *FanoutGroup) Stats() (issued, completed int64) { return g.trk.Stats() }

// InFlight returns operations awaiting their group ACK.
func (g *FanoutGroup) InFlight() int { return g.trk.InFlight() }

// Retried reports timed-out operations re-issued by the blocking paths.
func (g *FanoutGroup) Retried() int64 { return g.trk.Retried() }

// Close tears the fan-out group down. In-flight operations fail with
// ErrClosed, further issues are rejected, and every QP the group created
// is destroyed so the NICs can host a new group.
func (g *FanoutGroup) Close() {
	if g.trk.Closed() {
		return
	}
	g.trk.Close()
	g.qpHead.Destroy()
	p := g.primary
	p.qpClient.Destroy()
	p.qpLoop.Destroy()
	for _, qp := range p.qpFwd {
		qp.Destroy()
	}
	for _, qp := range p.qpAckIn {
		qp.Destroy()
	}
	for _, b := range g.backups {
		b.qpPrev.Destroy()
		b.qpLoop.Destroy()
		b.qpAck.Destroy()
	}
}

// WriteLocal stores data into the client's mirror.
func (g *FanoutGroup) WriteLocal(off int, data []byte) error {
	if off < 0 || off+len(data) > g.cfg.MirrorSize {
		return fmt.Errorf("%w: local write outside mirror", ErrBadArgument)
	}
	return g.client.Memory().Write(off, data)
}

// ReadLocal returns a copy of the client's mirror range.
func (g *FanoutGroup) ReadLocal(off, n int) ([]byte, error) {
	if off < 0 || off+n > g.cfg.MirrorSize {
		return nil, fmt.Errorf("%w: local read outside mirror", ErrBadArgument)
	}
	buf := make([]byte, n)
	err := g.client.Memory().Read(off, buf)
	return buf, err
}

// WriteAsync replicates [off, off+size) to all members in parallel
// (gWRITE fan-out), optionally durable.
func (g *FanoutGroup) WriteAsync(off, size int, durable bool) (*sim.Signal, error) {
	op, err := g.issue(kindWrite, opParams{Off: off, Size: size, Durable: durable})
	if err != nil {
		return nil, err
	}
	return op.Sig, nil
}

// Write is the blocking form of WriteAsync. With MaxRetries > 0 a
// timed-out write is re-issued under a fresh sequence number.
func (g *FanoutGroup) Write(f *sim.Fiber, off, size int, durable bool) error {
	return g.trk.Retry(f, func() (*sim.Signal, error) {
		return g.WriteAsync(off, size, durable)
	})
}

// MemcpyAsync copies src→dst locally on every member (gMEMCPY).
func (g *FanoutGroup) MemcpyAsync(src, dst, size int, durable bool) (*sim.Signal, error) {
	op, err := g.issue(kindMemcpy, opParams{Src: src, Dst: dst, Size: size, Durable: durable})
	if err != nil {
		return nil, err
	}
	return op.Sig, nil
}

// Memcpy is the blocking form of MemcpyAsync, with Write's retry policy
// (gMEMCPY is idempotent).
func (g *FanoutGroup) Memcpy(f *sim.Fiber, src, dst, size int, durable bool) error {
	return g.trk.Retry(f, func() (*sim.Signal, error) {
		return g.MemcpyAsync(src, dst, size, durable)
	})
}

// CAS performs a group compare-and-swap (gCAS). exec has one entry per
// member (index 0 = primary); results are the original values observed.
// gCAS is never retried.
func (g *FanoutGroup) CAS(f *sim.Fiber, off int, old, new uint64, exec []bool) ([]uint64, error) {
	op, err := g.issue(kindCAS, opParams{Off: off, Size: 8, Old: old, New: new, Exec: exec})
	if err != nil {
		return nil, err
	}
	if err := f.Await(op.Sig); err != nil {
		return nil, err
	}
	return op.Results, nil
}

// FlushAsync makes [off, off+size) durable on every member (gFLUSH).
func (g *FanoutGroup) FlushAsync(off, size int) (*sim.Signal, error) {
	op, err := g.issue(kindFlush, opParams{Off: off, Size: size})
	if err != nil {
		return nil, err
	}
	return op.Sig, nil
}

// Flush is the blocking form of FlushAsync, with Write's retry policy.
func (g *FanoutGroup) Flush(f *sim.Fiber, off, size int) error {
	return g.trk.Retry(f, func() (*sim.Signal, error) {
		return g.FlushAsync(off, size)
	})
}
