package hyperloop

import (
	"fmt"

	"hyperloop/internal/rdma"
	"hyperloop/internal/sim"
)

// GroupSize returns the member count (primary + backups).
func (g *FanoutGroup) GroupSize() int { return 1 + g.numBackups() }

// PrimaryNIC returns the coordinating member's NIC.
func (g *FanoutGroup) PrimaryNIC() *rdma.NIC { return g.primary.nic }

// ReplicaNIC returns member i's NIC (0 = primary, i>0 = backup i).
func (g *FanoutGroup) ReplicaNIC(i int) *rdma.NIC {
	if i == 0 {
		return g.primary.nic
	}
	return g.backups[i-1].nic
}

// ClientNIC returns the client's NIC.
func (g *FanoutGroup) ClientNIC() *rdma.NIC { return g.client }

// Stats reports operations issued and completed.
func (g *FanoutGroup) Stats() (issued, completed int64) { return g.opsIssued, g.opsCompleted }

// InFlight returns operations awaiting their group ACK.
func (g *FanoutGroup) InFlight() int { return len(g.inflight) }

// WriteLocal stores data into the client's mirror.
func (g *FanoutGroup) WriteLocal(off int, data []byte) error {
	if off < 0 || off+len(data) > g.cfg.MirrorSize {
		return fmt.Errorf("%w: local write outside mirror", ErrBadArgument)
	}
	return g.client.Memory().Write(off, data)
}

// ReadLocal returns a copy of the client's mirror range.
func (g *FanoutGroup) ReadLocal(off, n int) ([]byte, error) {
	if off < 0 || off+n > g.cfg.MirrorSize {
		return nil, fmt.Errorf("%w: local read outside mirror", ErrBadArgument)
	}
	buf := make([]byte, n)
	err := g.client.Memory().Read(off, buf)
	return buf, err
}

// WriteAsync replicates [off, off+size) to all members in parallel
// (gWRITE fan-out), optionally durable.
func (g *FanoutGroup) WriteAsync(off, size int, durable bool) (*sim.Signal, error) {
	op, err := g.issue(kindWrite, opParams{off: off, size: size, durable: durable})
	if err != nil {
		return nil, err
	}
	return op.sig, nil
}

// Write is the blocking form of WriteAsync.
func (g *FanoutGroup) Write(f *sim.Fiber, off, size int, durable bool) error {
	sig, err := g.WriteAsync(off, size, durable)
	if err != nil {
		return err
	}
	return f.Await(sig)
}

// MemcpyAsync copies src→dst locally on every member (gMEMCPY).
func (g *FanoutGroup) MemcpyAsync(src, dst, size int, durable bool) (*sim.Signal, error) {
	op, err := g.issue(kindMemcpy, opParams{src: src, dst: dst, size: size, durable: durable})
	if err != nil {
		return nil, err
	}
	return op.sig, nil
}

// Memcpy is the blocking form of MemcpyAsync.
func (g *FanoutGroup) Memcpy(f *sim.Fiber, src, dst, size int, durable bool) error {
	sig, err := g.MemcpyAsync(src, dst, size, durable)
	if err != nil {
		return err
	}
	return f.Await(sig)
}

// CAS performs a group compare-and-swap (gCAS). exec has one entry per
// member (index 0 = primary); results are the original values observed.
func (g *FanoutGroup) CAS(f *sim.Fiber, off int, old, new uint64, exec []bool) ([]uint64, error) {
	op, err := g.issue(kindCAS, opParams{off: off, size: 8, old: old, new: new, exec: exec})
	if err != nil {
		return nil, err
	}
	if err := f.Await(op.sig); err != nil {
		return nil, err
	}
	return op.results, nil
}

// FlushAsync makes [off, off+size) durable on every member (gFLUSH).
func (g *FanoutGroup) FlushAsync(off, size int) (*sim.Signal, error) {
	op, err := g.issue(kindFlush, opParams{off: off, size: size})
	if err != nil {
		return nil, err
	}
	return op.sig, nil
}

// Flush is the blocking form of FlushAsync.
func (g *FanoutGroup) Flush(f *sim.Fiber, off, size int) error {
	sig, err := g.FlushAsync(off, size)
	if err != nil {
		return err
	}
	return f.Await(sig)
}
