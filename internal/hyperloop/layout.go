package hyperloop

import "hyperloop/internal/rdma"

// Metadata message layout (all values little-endian):
//
//	hop i message = [descBlock_i][descBlock_{i+1}]...[descBlock_G][results 8*G][header 16]
//
// descBlock is four patchable WQE descriptors (L1, L2, F1, F2).
const (
	descBlockSize = 4 * rdma.DescLen // 224 bytes per hop
	headerSize    = 16               // seq uint64, kind uint32, reserved uint32
	resultEntry   = 8                // one uint64 per group member
)

// layout captures the derived sizes of a group with G replicas and a given
// operation window (depth).
type layout struct {
	groupSize int
	depth     int
}

// metaLen returns the metadata message size arriving at hop i (1-based).
func (l layout) metaLen(i int) int {
	return (l.groupSize-i+1)*descBlockSize + l.resultsLen() + headerSize
}

// metaRest returns the bytes forwarded past hop i: the arriving message
// minus the descriptor block the hop consumed.
func (l layout) metaRest(i int) int {
	return l.metaLen(i) - descBlockSize
}

func (l layout) resultsLen() int { return l.groupSize * resultEntry }

// ackSlotSize is what the tail delivers to the client: results + header.
func (l layout) ackSlotSize() int { return l.resultsLen() + headerSize }

// resultOffsetInStaging returns where node j's (1-based) gCAS result lives
// within hop i's staging slot (which holds metaRest(i) bytes:
// descs for hops i+1..G, then results, then header).
func (l layout) resultOffsetInStaging(i, j int) int {
	return (l.groupSize-i)*descBlockSize + (j-1)*resultEntry
}

// chain slot indices within a ring for operation seq: each op consumes
// three slots (WAIT, op A, op B) on both the loopback and next-hop rings.
const slotsPerOp = 3

func chainWaitSlot(seq uint64) uint64 { return seq * slotsPerOp }
func chainSlotA(seq uint64) uint64    { return seq*slotsPerOp + 1 }
func chainSlotB(seq uint64) uint64    { return seq*slotsPerOp + 2 }
