package hyperloop

import "hyperloop/internal/protocol"

// cfgFromParams translates the protocol-neutral policy knobs into this
// package's Config; zero values keep each Setup's defaults.
func cfgFromParams(p protocol.Params) Config {
	return Config{
		MirrorSize:   p.MirrorSize,
		Depth:        p.Depth,
		OpTimeout:    p.OpTimeout,
		MaxRetries:   p.MaxRetries,
		RetryBackoff: p.RetryBackoff,
		AckQuorum:    p.Quorum,
	}
}

func init() {
	protocol.Register("chain",
		"NIC-offloaded chain replication (HyperLoop §4): total order, minimal per-NIC load",
		func(env protocol.Env, p protocol.Params) (protocol.Protocol, error) {
			return Setup(env.Fabric, env.Client, env.Replicas, cfgFromParams(p))
		})
	protocol.Register("fanout",
		"NIC-offloaded primary fan-out (HyperLoop §7): primary NIC coordinates backups in parallel",
		func(env protocol.Env, p protocol.Params) (protocol.Protocol, error) {
			return SetupFanout(env.Fabric, env.Client, env.Replicas, cfgFromParams(p))
		})
	protocol.Register("bcast",
		"client NIC broadcast, completes on all member acks (Hermes-style strong mode)",
		func(env protocol.Env, p protocol.Params) (protocol.Protocol, error) {
			cfg := cfgFromParams(p)
			cfg.AckQuorum = 0 // all members
			return SetupBroadcast(env.Fabric, env.Client, env.Replicas, cfg)
		})
	protocol.Register("bcast-maj",
		"client NIC broadcast, completes on a majority of member acks (ABD-style)",
		func(env protocol.Env, p protocol.Params) (protocol.Protocol, error) {
			cfg := cfgFromParams(p)
			cfg.AckQuorum = len(env.Replicas)/2 + 1
			return SetupBroadcast(env.Fabric, env.Client, env.Replicas, cfg)
		})
	// A majority-quorum write is only guaranteed on floor(G/2)+1 members;
	// every other protocol here completes on all members' acks.
	protocol.SetTraits("bcast-maj", protocol.Traits{
		AcksNeeded: func(g int) int { return g/2 + 1 },
	})
}
