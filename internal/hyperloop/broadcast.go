package hyperloop

import (
	"encoding/binary"
	"fmt"

	"hyperloop/internal/nvm"
	"hyperloop/internal/protocol"
	"hyperloop/internal/rdma"
	"hyperloop/internal/sim"
)

// BroadcastGroup is an ABD/Hermes-style NIC-offloaded broadcast: the
// client NIC fans the value and a per-member metadata message directly to
// every replica, each replica's NIC executes the operation through the
// same pre-posted WAIT-gated loopback chain a fan-out backup uses, and a
// hardware ack chain SENDs the result straight back to the client. The
// client completes the operation once a quorum of member acks has
// arrived (all members by default; Config.AckQuorum lowers it).
//
// Per member and operation the replica NIC runs, without CPU:
//
//	loopback QP:  [WAIT(recvCQ,1) → L1 → L2]      local ops
//	ack QP:       [WAIT(loopCQ,2) → SEND hdr+res]  ack to client
//
// Compared to the chain this trades message cost (2G messages per
// replicated write instead of hop-to-hop forwarding) and total order for
// the minimum possible completion path: one client→member hop plus one
// member→client hop, with no dependency between members. With
// AckQuorum < G a minority of slow or dead members no longer delays or
// blocks completion — the availability gap the protocols experiment
// measures. gCAS always waits for every member's ack, since its result
// map needs all G original values.
//
// Ordering caveat: without the chain's total order, two concurrent
// writers to the same range can complete in different orders at
// different members. The conformance suite drives it single-writer, the
// regime the paper's replicated-transaction use cases (one primary per
// log) put it in.
type BroadcastGroup struct {
	fab *rdma.Fabric
	k   *sim.Kernel
	cfg Config

	client  *rdma.NIC
	qpFan   []*rdma.QP // per-member data WRITE + metadata SEND
	qpAckIn []*rdma.QP // per-member ack receive side
	ackMR   *rdma.MemoryRegion
	ackOff  uint64 // client ack slots: per member, per depth slot
	metaOff uint64 // per-member per-op metadata staging

	members []*bcastMember

	trk  *protocol.Tracker
	acks map[uint64]*bcastAckState

	ackBuf []byte // ack decode scratch, reused across ACKs
}

// bcastMember holds one replica's NIC resources (the fan-out backup
// datapath, with the ack SEND aimed at the client instead of a primary).
type bcastMember struct {
	index  int
	nic    *rdma.NIC
	mirror *rdma.MemoryRegion

	qpPrev *rdma.QP // from client
	qpLoop *rdma.QP
	qpAck  *rdma.QP // to client

	recvCQ *rdma.CQ
	loopCQ *rdma.CQ

	ackOff  uint64 // per-op ack slots: [16 hdr][8 result]
	ackSlot int

	completed uint64
}

// bcastAckState accumulates member acks for one in-flight operation.
// The entry outlives a timeout (late acks still land) and is dropped
// once every member that was posted to has acked; with a dead member it
// leaks until Close — bounded by the operation window, and exactly the
// state a lease-based membership view would reap.
type bcastAckState struct {
	need    int // acks required to complete
	posted  int // members the op was actually sent to
	got     int
	results []uint64 // per-member CAS results, filled as acks arrive
	// seen dedups votes per member: under fault-induced chain shifts a
	// member can emit a stale ack carrying a seq it already acked, and a
	// quorum must count distinct members, not distinct messages.
	seen []bool
}

// SetupBroadcast builds a broadcast group over the given member NICs.
// The same Config as the chain group applies; AckQuorum selects the
// completion quorum (0 = all members).
func SetupBroadcast(fab *rdma.Fabric, client *rdma.NIC, members []*rdma.NIC, cfg Config) (*BroadcastGroup, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("%w: need at least one member", ErrBadArgument)
	}
	if cfg.MirrorSize <= 0 {
		return nil, fmt.Errorf("%w: mirror size must be positive", ErrBadArgument)
	}
	if cfg.AckQuorum < 0 || cfg.AckQuorum > len(members) {
		return nil, fmt.Errorf("%w: ack quorum %d outside [0,%d]", ErrBadArgument, cfg.AckQuorum, len(members))
	}
	if cfg.Depth <= 0 {
		cfg.Depth = 32
	}
	for cfg.Depth&(cfg.Depth-1) != 0 {
		cfg.Depth++
	}
	if cfg.ReArmDelay <= 0 {
		cfg.ReArmDelay = 5 * sim.Microsecond
	}
	g := &BroadcastGroup{
		fab:    fab,
		k:      fab.Kernel(),
		cfg:    cfg,
		client: client,
		trk: protocol.NewTracker(fab.Kernel(), cfg.Depth,
			cfg.OpTimeout, cfg.MaxRetries, cfg.RetryBackoff, ErrTimeout, ErrClosed),
		acks: make(map[uint64]*bcastAckState),
	}
	if err := g.setupBcastClient(len(members)); err != nil {
		return nil, err
	}
	for i, nic := range members {
		m, err := g.setupMember(i, nic)
		if err != nil {
			return nil, fmt.Errorf("member %d: %w", i, err)
		}
		g.members = append(g.members, m)
	}
	for j, m := range g.members {
		g.qpFan[j].Connect(m.qpPrev)
		m.qpAck.Connect(g.qpAckIn[j])
	}
	for seq := uint64(0); seq < uint64(cfg.Depth); seq++ {
		for j, m := range g.members {
			if err := g.armMember(m, seq); err != nil {
				return nil, fmt.Errorf("arm member %d seq %d: %w", j, seq, err)
			}
			g.postAckRecv(j, seq)
		}
	}
	g.installBcastReArm()
	for j := range g.members {
		j := j
		g.qpAckIn[j].RecvCQ().SetDrainHandler(func(batch []rdma.CQE) {
			for _, e := range batch {
				g.onMemberAck(j, e)
			}
		})
	}
	return g, nil
}

func (g *BroadcastGroup) setupBcastClient(n int) error {
	alloc := nvm.NewAllocator(g.client.Memory())
	mirror, err := alloc.Alloc("mirror", g.cfg.MirrorSize)
	if err != nil {
		return err
	}
	if mirror.Off != 0 {
		return fmt.Errorf("hyperloop: client mirror not at offset 0")
	}
	meta, err := alloc.Alloc("meta", g.cfg.Depth*n*fanBackupMetaLen)
	if err != nil {
		return err
	}
	ack, err := alloc.Alloc("ack", g.cfg.Depth*n*fanAckLen)
	if err != nil {
		return err
	}
	g.metaOff = uint64(meta.Off)
	g.ackOff = uint64(ack.Off)
	g.ackMR, err = g.client.RegisterMR(uint64(ack.Off), uint64(ack.Len), rdma.AccessRemoteWrite)
	if err != nil {
		return err
	}
	for j := 0; j < n; j++ {
		fanRing, err := alloc.Alloc(fmt.Sprintf("fan-ring-%d", j), 2*g.cfg.Depth*rdma.WQESize)
		if err != nil {
			return err
		}
		qp, err := g.client.CreateQP(rdma.QPConfig{
			SendRingOff: uint64(fanRing.Off), SendSlots: fanRing.Len / rdma.WQESize,
			SendCQ: g.client.CreateCQ(), RecvCQ: g.client.CreateCQ(),
		})
		if err != nil {
			return err
		}
		qp.SendCQ().Discard()
		qp.RecvCQ().Discard()
		g.qpFan = append(g.qpFan, qp)

		ackRing, err := alloc.Alloc(fmt.Sprintf("ackin-ring-%d", j), rdma.WQESize)
		if err != nil {
			return err
		}
		aqp, err := g.client.CreateQP(rdma.QPConfig{
			SendRingOff: uint64(ackRing.Off), SendSlots: 1,
			SendCQ: g.client.CreateCQ(), RecvCQ: g.client.CreateCQ(),
		})
		if err != nil {
			return err
		}
		aqp.SendCQ().Discard()
		g.qpAckIn = append(g.qpAckIn, aqp)
	}
	return nil
}

// setupMember mirrors setupBackup: the member-side datapath is the same.
func (g *BroadcastGroup) setupMember(index int, nic *rdma.NIC) (*bcastMember, error) {
	m := &bcastMember{index: index, nic: nic}
	alloc := nvm.NewAllocator(nic.Memory())
	mirror, err := alloc.Alloc("mirror", g.cfg.MirrorSize)
	if err != nil {
		return nil, err
	}
	if mirror.Off != 0 {
		return nil, fmt.Errorf("hyperloop: member mirror not at offset 0")
	}
	m.ackSlot = fanAckLen
	ackBuf, err := alloc.Alloc("ack", g.cfg.Depth*m.ackSlot)
	if err != nil {
		return nil, err
	}
	prevRing, err := alloc.Alloc("prev-ring", rdma.WQESize)
	if err != nil {
		return nil, err
	}
	loopRing, err := alloc.Alloc("loop-ring", 3*g.cfg.Depth*rdma.WQESize)
	if err != nil {
		return nil, err
	}
	ackRing, err := alloc.Alloc("ack-ring", 2*g.cfg.Depth*rdma.WQESize)
	if err != nil {
		return nil, err
	}
	m.ackOff = uint64(ackBuf.Off)
	m.mirror, err = nic.RegisterMR(0, uint64(g.cfg.MirrorSize),
		rdma.AccessRemoteRead|rdma.AccessRemoteWrite|rdma.AccessRemoteAtomic)
	if err != nil {
		return nil, err
	}
	m.recvCQ = nic.CreateCQ()
	m.loopCQ = nic.CreateCQ()
	m.qpPrev, err = nic.CreateQP(rdma.QPConfig{
		SendRingOff: uint64(prevRing.Off), SendSlots: 1,
		SendCQ: nic.CreateCQ(), RecvCQ: m.recvCQ,
	})
	if err != nil {
		return nil, err
	}
	m.qpLoop, err = nic.CreateQP(rdma.QPConfig{
		SendRingOff: uint64(loopRing.Off), SendSlots: loopRing.Len / rdma.WQESize,
		SendCQ: m.loopCQ, RecvCQ: nic.CreateCQ(),
	})
	if err != nil {
		return nil, err
	}
	m.qpLoop.Connect(m.qpLoop)
	m.qpAck, err = nic.CreateQP(rdma.QPConfig{
		SendRingOff: uint64(ackRing.Off), SendSlots: ackRing.Len / rdma.WQESize,
		SendCQ: nic.CreateCQ(), RecvCQ: nic.CreateCQ(),
	})
	if err != nil {
		return nil, err
	}
	m.recvCQ.Discard()
	m.loopCQ.Discard()
	m.qpPrev.SendCQ().Discard()
	m.qpLoop.RecvCQ().Discard()
	m.qpAck.RecvCQ().Discard()
	return m, nil
}

func (g *BroadcastGroup) memberAckAddr(m *bcastMember, seq uint64) uint64 {
	return m.ackOff + (seq%uint64(g.cfg.Depth))*uint64(m.ackSlot)
}

// clientAckAddr is member j's ack landing slot for op seq.
func (g *BroadcastGroup) clientAckAddr(j int, seq uint64) uint64 {
	return g.ackOff + (uint64(j)*uint64(g.cfg.Depth)+seq%uint64(g.cfg.Depth))*uint64(fanAckLen)
}

func (g *BroadcastGroup) bmetaAddr(j int, seq uint64) uint64 {
	n := uint64(len(g.members))
	return g.metaOff + ((seq%uint64(g.cfg.Depth))*n+uint64(j))*uint64(fanBackupMetaLen)
}

// armMember pre-posts one member's chains and receive for op seq —
// identical to a fan-out backup's arming.
func (g *BroadcastGroup) armMember(m *bcastMember, seq uint64) error {
	loopRing, loopSlots := m.qpLoop.RingOff(), m.qpLoop.RingSlots()
	ackAddr := g.memberAckAddr(m, seq)
	if _, err := m.qpLoop.PostSend(rdma.WQE{
		Opcode: rdma.OpWait, Imm: 1, Aux1: m.recvCQ.CQN(), Aux2: 2, WRID: seq,
	}); err != nil {
		return err
	}
	for i := 0; i < 2; i++ {
		if _, err := m.qpLoop.PostSendDeferred(rdma.WQE{
			Opcode: rdma.OpNop, Flags: rdma.FlagSignaled, WRID: seq,
		}); err != nil {
			return err
		}
	}
	// Ack chain: both local ops done → SEND [hdr][result] to the client.
	if _, err := m.qpAck.PostSend(rdma.WQE{
		Opcode: rdma.OpWait, Imm: 2, Aux1: m.loopCQ.CQN(), WRID: seq,
	}); err != nil {
		return err
	}
	if _, err := m.qpAck.PostSend(rdma.WQE{
		Opcode: rdma.OpSend, Flags: rdma.FlagSignaled, WRID: seq,
		Local: ackAddr, Len: uint64(fanAckLen),
	}); err != nil {
		return err
	}
	m.qpPrev.PostRecv(rdma.RecvWQE{
		WRID: seq,
		SGEs: []rdma.SGE{
			{Addr: rdma.DescAddr(loopRing, loopSlots, chainSlotA(seq)), Len: rdma.DescLen},
			{Addr: rdma.DescAddr(loopRing, loopSlots, chainSlotB(seq)), Len: rdma.DescLen},
			{Addr: ackAddr, Len: headerSize},
		},
	})
	return nil
}

// postAckRecv posts the client-side receive for member j's op-seq ack.
func (g *BroadcastGroup) postAckRecv(j int, seq uint64) {
	g.qpAckIn[j].PostRecv(rdma.RecvWQE{
		WRID: seq,
		SGEs: []rdma.SGE{
			{Addr: g.clientAckAddr(j, seq), Len: headerSize},
			{Addr: g.clientAckAddr(j, seq) + headerSize, Len: resultEntry},
		},
	})
}

// installBcastReArm wires the off-critical-path member chain
// replenishment, driven by each member's ack-send completions.
func (g *BroadcastGroup) installBcastReArm() {
	for _, m := range g.members {
		m := m
		m.qpAck.SendCQ().SetDrainHandler(func(batch []rdma.CQE) {
			for range batch {
				seq := m.completed
				m.completed++
				reArmAfter(g.k, g.trk, m.nic, g.cfg.ReArmDelay, func() {
					_ = g.armMember(m, seq+uint64(g.cfg.Depth))
				})
			}
		})
	}
}

// issue builds and transmits one broadcast operation: per live member, an
// optional data WRITE plus the member's metadata message. Members whose
// NIC is down are skipped — modeling the lease-based membership view a
// quorum protocol runs under — so a crashed minority neither consumes
// ring slots nor retransmission timeouts on the fan QPs.
func (g *BroadcastGroup) issue(kind opKind, p opParams) (*protocol.Pending, error) {
	if g.trk.Closed() {
		return nil, ErrClosed
	}
	if !g.trk.HasWindow() {
		return nil, ErrTooManyInFlight
	}
	if p.Off < 0 || p.Off+p.Size > g.cfg.MirrorSize {
		return nil, fmt.Errorf("%w: range [%d,+%d) outside mirror", ErrBadArgument, p.Off, p.Size)
	}
	if kind == kindMemcpy && (p.Src < 0 || p.Src+p.Size > g.cfg.MirrorSize ||
		p.Dst < 0 || p.Dst+p.Size > g.cfg.MirrorSize) {
		return nil, fmt.Errorf("%w: memcpy range outside mirror", ErrBadArgument)
	}
	if kind == kindCAS && len(p.Exec) != g.GroupSize() {
		return nil, fmt.Errorf("%w: execute map must have %d entries", ErrBadArgument, g.GroupSize())
	}
	seq := g.trk.NextSeq()
	n := len(g.members)

	// Stage every member's metadata before tracking, so a build error
	// leaves no partial op behind.
	bmeta := make([]byte, fanBackupMetaLen)
	for j, m := range g.members {
		resultAddr := g.memberAckAddr(m, seq) + headerSize
		if err := encodeLocalBlock(bmeta, seq, kind, p, m.mirror.RKey, resultAddr, j); err != nil {
			return nil, err
		}
		hdr := bmeta[2*rdma.DescLen:]
		binary.LittleEndian.PutUint64(hdr, seq)
		binary.LittleEndian.PutUint32(hdr[8:], uint32(kind))
		binary.LittleEndian.PutUint32(hdr[12:], 0)
		if err := g.client.Memory().Write(int(g.bmetaAddr(j, seq)), bmeta); err != nil {
			return nil, err
		}
	}

	op := g.trk.Track(seq, kind)

	if err := protocol.ApplyLocal(g.client.Memory(), kind, p); err != nil {
		return nil, err
	}

	need := g.cfg.AckQuorum
	if need == 0 || kind == kindCAS {
		need = n // gCAS needs every member's original value
	}
	st := &bcastAckState{need: need, results: make([]uint64, n), seen: make([]bool, n)}
	g.acks[seq] = st
	for j, m := range g.members {
		if m.nic.Down() {
			continue
		}
		if kind == kindWrite {
			if _, err := g.qpFan[j].PostSend(rdma.WQE{
				Opcode: rdma.OpWrite, WRID: seq,
				Local: uint64(p.Off), Len: uint64(p.Size),
				Remote: uint64(p.Off), Aux1: m.mirror.RKey,
			}); err != nil {
				continue
			}
		}
		if _, err := g.qpFan[j].PostSend(rdma.WQE{
			Opcode: rdma.OpSend, WRID: seq,
			Local: g.bmetaAddr(j, seq), Len: uint64(fanBackupMetaLen),
		}); err != nil {
			continue
		}
		st.posted++
	}
	if st.posted == 0 {
		delete(g.acks, seq)
		g.trk.Abort(seq)
		return nil, fmt.Errorf("%w: no reachable members", ErrBadArgument)
	}
	g.trk.MarkIssued()
	return op, nil
}

// onMemberAck resolves one member's ack for one operation.
func (g *BroadcastGroup) onMemberAck(j int, e rdma.CQE) {
	g.postAckRecv(j, e.WRID+uint64(g.cfg.Depth))
	if e.Status != rdma.StatusSuccess {
		return
	}
	if cap(g.ackBuf) < fanAckLen {
		g.ackBuf = make([]byte, fanAckLen)
	}
	buf := g.ackBuf[:fanAckLen]
	if err := g.client.Memory().Read(int(g.clientAckAddr(j, e.WRID)), buf); err != nil {
		return
	}
	seq := binary.LittleEndian.Uint64(buf)
	st, ok := g.acks[seq]
	if !ok || st.seen[j] {
		return
	}
	st.seen[j] = true
	st.results[j] = binary.LittleEndian.Uint64(buf[headerSize:])
	st.got++
	if st.got >= st.posted {
		delete(g.acks, seq)
	}
	if st.got == st.need {
		op := g.trk.Complete(seq)
		if op == nil {
			return // a timeout already resolved the op; late quorum
		}
		if op.Kind == kindCAS {
			op.Results = append([]uint64(nil), st.results...)
		}
		op.Sig.Fire(nil)
	}
}

// GroupSize returns the number of replicated members.
func (g *BroadcastGroup) GroupSize() int { return len(g.members) }

// ReplicaNIC returns member i's NIC.
func (g *BroadcastGroup) ReplicaNIC(i int) *rdma.NIC { return g.members[i].nic }

// ClientNIC returns the client's NIC.
func (g *BroadcastGroup) ClientNIC() *rdma.NIC { return g.client }

// Stats reports operations issued and completed.
func (g *BroadcastGroup) Stats() (issued, completed int64) { return g.trk.Stats() }

// InFlight returns operations awaiting their ack quorum.
func (g *BroadcastGroup) InFlight() int { return g.trk.InFlight() }

// Retried reports timed-out operations re-issued by the blocking paths.
func (g *BroadcastGroup) Retried() int64 { return g.trk.Retried() }

// Close tears the broadcast group down. In-flight operations fail with
// ErrClosed, further issues are rejected, and every QP the group created
// is destroyed so the NICs can host a new group.
func (g *BroadcastGroup) Close() {
	if g.trk.Closed() {
		return
	}
	g.trk.Close()
	g.acks = make(map[uint64]*bcastAckState)
	for _, qp := range g.qpFan {
		qp.Destroy()
	}
	for _, qp := range g.qpAckIn {
		qp.Destroy()
	}
	for _, m := range g.members {
		m.qpPrev.Destroy()
		m.qpLoop.Destroy()
		m.qpAck.Destroy()
	}
}

// WriteLocal stores data into the client's mirror.
func (g *BroadcastGroup) WriteLocal(off int, data []byte) error {
	if off < 0 || off+len(data) > g.cfg.MirrorSize {
		return fmt.Errorf("%w: local write outside mirror", ErrBadArgument)
	}
	return g.client.Memory().Write(off, data)
}

// ReadLocal returns a copy of the client's mirror range.
func (g *BroadcastGroup) ReadLocal(off, n int) ([]byte, error) {
	if off < 0 || off+n > g.cfg.MirrorSize {
		return nil, fmt.Errorf("%w: local read outside mirror", ErrBadArgument)
	}
	buf := make([]byte, n)
	err := g.client.Memory().Read(off, buf)
	return buf, err
}

// WriteAsync replicates [off, off+size) to all members in parallel
// (gWRITE broadcast), optionally durable; the signal fires on the ack
// quorum.
func (g *BroadcastGroup) WriteAsync(off, size int, durable bool) (*sim.Signal, error) {
	op, err := g.issue(kindWrite, opParams{Off: off, Size: size, Durable: durable})
	if err != nil {
		return nil, err
	}
	return op.Sig, nil
}

// Write is the blocking form of WriteAsync. With MaxRetries > 0 a
// timed-out write is re-issued under a fresh sequence number.
func (g *BroadcastGroup) Write(f *sim.Fiber, off, size int, durable bool) error {
	return g.trk.Retry(f, func() (*sim.Signal, error) {
		return g.WriteAsync(off, size, durable)
	})
}

// MemcpyAsync copies src→dst locally on every member (gMEMCPY).
func (g *BroadcastGroup) MemcpyAsync(src, dst, size int, durable bool) (*sim.Signal, error) {
	op, err := g.issue(kindMemcpy, opParams{Src: src, Dst: dst, Size: size, Durable: durable})
	if err != nil {
		return nil, err
	}
	return op.Sig, nil
}

// Memcpy is the blocking form of MemcpyAsync, with Write's retry policy
// (gMEMCPY is idempotent).
func (g *BroadcastGroup) Memcpy(f *sim.Fiber, src, dst, size int, durable bool) error {
	return g.trk.Retry(f, func() (*sim.Signal, error) {
		return g.MemcpyAsync(src, dst, size, durable)
	})
}

// CAS performs a group compare-and-swap (gCAS). exec has one entry per
// member; results are the original values observed. gCAS always waits
// for all members and is never retried.
func (g *BroadcastGroup) CAS(f *sim.Fiber, off int, old, new uint64, exec []bool) ([]uint64, error) {
	op, err := g.issue(kindCAS, opParams{Off: off, Size: 8, Old: old, New: new, Exec: exec})
	if err != nil {
		return nil, err
	}
	if err := f.Await(op.Sig); err != nil {
		return nil, err
	}
	return op.Results, nil
}

// FlushAsync makes [off, off+size) durable on every member (gFLUSH).
func (g *BroadcastGroup) FlushAsync(off, size int) (*sim.Signal, error) {
	op, err := g.issue(kindFlush, opParams{Off: off, Size: size})
	if err != nil {
		return nil, err
	}
	return op.Sig, nil
}

// Flush is the blocking form of FlushAsync, with Write's retry policy.
func (g *BroadcastGroup) Flush(f *sim.Fiber, off, size int) error {
	return g.trk.Retry(f, func() (*sim.Signal, error) {
		return g.FlushAsync(off, size)
	})
}
