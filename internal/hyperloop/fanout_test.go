package hyperloop

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"hyperloop/internal/nvm"
	"hyperloop/internal/rdma"
	"hyperloop/internal/sim"
)

func testFanout(t *testing.T, nMembers int, cfg Config) (*sim.Kernel, *FanoutGroup) {
	t.Helper()
	k := sim.NewKernel(17)
	fab := rdma.NewFabric(k, rdma.DefaultConfig())
	client, err := fab.AddNIC("client", nvm.NewDevice("client", testDev))
	if err != nil {
		t.Fatal(err)
	}
	var members []*rdma.NIC
	for i := 0; i < nMembers; i++ {
		host := fmt.Sprintf("m%d", i)
		nic, err := fab.AddNIC(host, nvm.NewDevice(host, testDev))
		if err != nil {
			t.Fatal(err)
		}
		members = append(members, nic)
	}
	g, err := SetupFanout(fab, client, members, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return k, g
}

func TestFanoutValidation(t *testing.T) {
	k := sim.NewKernel(1)
	fab := rdma.NewFabric(k, rdma.DefaultConfig())
	client, _ := fab.AddNIC("c", nvm.NewDevice("c", testDev))
	if _, err := SetupFanout(fab, client, nil, DefaultConfig(1024)); !errors.Is(err, ErrBadArgument) {
		t.Fatalf("err = %v", err)
	}
	m, _ := fab.AddNIC("m", nvm.NewDevice("m", testDev))
	if _, err := SetupFanout(fab, client, []*rdma.NIC{m}, Config{}); !errors.Is(err, ErrBadArgument) {
		t.Fatalf("zero mirror err = %v", err)
	}
}

func TestFanoutWriteReplicatesToAll(t *testing.T) {
	k, g := testFanout(t, 3, DefaultConfig(testMirror))
	data := []byte("fan-out replicated payload")
	runFiber(t, k, func(f *sim.Fiber) {
		if err := g.WriteLocal(128, data); err != nil {
			t.Error(err)
			return
		}
		if err := g.Write(f, 128, len(data), false); err != nil {
			t.Errorf("fan-out write: %v", err)
		}
	})
	for i := 0; i < g.GroupSize(); i++ {
		got := make([]byte, len(data))
		_ = g.ReplicaNIC(i).Memory().Read(128, got)
		if !bytes.Equal(got, data) {
			t.Fatalf("member %d mirror = %q", i, got)
		}
	}
	issued, completed := g.Stats()
	if issued != 1 || completed != 1 {
		t.Fatalf("stats = %d/%d", issued, completed)
	}
}

func TestFanoutDurableWriteSurvivesCrash(t *testing.T) {
	k, g := testFanout(t, 3, DefaultConfig(testMirror))
	data := []byte("durable fan-out")
	runFiber(t, k, func(f *sim.Fiber) {
		_ = g.WriteLocal(0, data)
		if err := g.Write(f, 0, len(data), true); err != nil {
			t.Errorf("write: %v", err)
		}
	})
	for i := 0; i < g.GroupSize(); i++ {
		mem := g.ReplicaNIC(i).Memory()
		mem.Crash()
		got := make([]byte, len(data))
		_ = mem.Read(0, got)
		if !bytes.Equal(got, data) {
			t.Fatalf("member %d lost durable data", i)
		}
	}
}

func TestFanoutCASWithResults(t *testing.T) {
	k, g := testFanout(t, 3, DefaultConfig(testMirror))
	runFiber(t, k, func(f *sim.Fiber) {
		res, err := g.CAS(f, 512, 0, 9, []bool{true, true, true})
		if err != nil {
			t.Errorf("cas: %v", err)
			return
		}
		if len(res) != 3 {
			t.Errorf("results = %v", res)
			return
		}
		for i, v := range res {
			if v != 0 {
				t.Errorf("member %d original = %d", i, v)
			}
		}
		// Second CAS must observe 9 everywhere.
		res, err = g.CAS(f, 512, 0, 1, []bool{true, true, true})
		if err != nil {
			t.Errorf("cas2: %v", err)
			return
		}
		for i, v := range res {
			if v != 9 {
				t.Errorf("member %d original = %d, want 9", i, v)
			}
		}
	})
}

func TestFanoutCASSelective(t *testing.T) {
	k, g := testFanout(t, 3, DefaultConfig(testMirror))
	runFiber(t, k, func(f *sim.Fiber) {
		if _, err := g.CAS(f, 256, 0, 5, []bool{true, false, true}); err != nil {
			t.Errorf("cas: %v", err)
		}
	})
	for i, want := range []byte{5, 0, 5} {
		b, _ := g.ReplicaNIC(i).Memory().Slice(256, 8)
		if b[0] != want {
			t.Fatalf("member %d = %d, want %d", i, b[0], want)
		}
	}
}

func TestFanoutMemcpyAndFlush(t *testing.T) {
	k, g := testFanout(t, 2, DefaultConfig(testMirror))
	rec := []byte("fanout log record")
	runFiber(t, k, func(f *sim.Fiber) {
		_ = g.WriteLocal(0, rec)
		if err := g.Write(f, 0, len(rec), true); err != nil {
			t.Errorf("write: %v", err)
			return
		}
		if err := g.Memcpy(f, 0, 8192, len(rec), true); err != nil {
			t.Errorf("memcpy: %v", err)
			return
		}
		if err := g.Flush(f, 0, len(rec)); err != nil {
			t.Errorf("flush: %v", err)
		}
	})
	for i := 0; i < 2; i++ {
		mem := g.ReplicaNIC(i).Memory()
		mem.Crash()
		got := make([]byte, len(rec))
		_ = mem.Read(8192, got)
		if !bytes.Equal(got, rec) {
			t.Fatalf("member %d lost executed record", i)
		}
	}
}

func TestFanoutSingleMember(t *testing.T) {
	k, g := testFanout(t, 1, DefaultConfig(testMirror))
	runFiber(t, k, func(f *sim.Fiber) {
		_ = g.WriteLocal(0, []byte("solo"))
		if err := g.Write(f, 0, 4, true); err != nil {
			t.Errorf("write: %v", err)
		}
	})
	b, _ := g.PrimaryNIC().Memory().Slice(0, 4)
	if string(b) != "solo" {
		t.Fatalf("primary = %q", b)
	}
}

func TestFanoutPipelinedWritesWrapRing(t *testing.T) {
	cfg := DefaultConfig(testMirror)
	cfg.Depth = 8
	k, g := testFanout(t, 3, cfg)
	const ops = 40
	runFiber(t, k, func(f *sim.Fiber) {
		var sigs []*sim.Signal
		for i := 0; i < ops; i++ {
			_ = g.WriteLocal(i*256, []byte{byte(i + 1)})
			sig, err := g.WriteAsync(i*256, 1, false)
			if errors.Is(err, ErrTooManyInFlight) {
				if err := f.Await(sigs[0]); err != nil {
					t.Errorf("await: %v", err)
					return
				}
				sigs = sigs[1:]
				sig, err = g.WriteAsync(i*256, 1, false)
				if err != nil {
					t.Errorf("retry %d: %v", i, err)
					return
				}
			} else if err != nil {
				t.Errorf("op %d: %v", i, err)
				return
			}
			sigs = append(sigs, sig)
		}
		if err := f.AwaitAll(sigs...); err != nil {
			t.Errorf("drain: %v", err)
		}
	})
	for i := 0; i < ops; i++ {
		for m := 0; m < 3; m++ {
			b, _ := g.ReplicaNIC(m).Memory().Slice(i*256, 1)
			if b[0] != byte(i+1) {
				t.Fatalf("op %d missing at member %d", i, m)
			}
		}
	}
}

func TestFanoutPrimaryCarriesTheLoad(t *testing.T) {
	// The §7 trade-off: fan-out concentrates transmission on the primary,
	// the chain spreads it.
	measure := func(fan bool) (primaryTx, tailTx int64) {
		k := sim.NewKernel(3)
		fab := rdma.NewFabric(k, rdma.DefaultConfig())
		client, _ := fab.AddNIC("client", nvm.NewDevice("client", testDev))
		var members []*rdma.NIC
		for i := 0; i < 3; i++ {
			nic, _ := fab.AddNIC(fmt.Sprintf("x%d", i), nvm.NewDevice(fmt.Sprintf("x%d", i), testDev))
			members = append(members, nic)
		}
		var write func(f *sim.Fiber) error
		if fan {
			g, err := SetupFanout(fab, client, members, DefaultConfig(testMirror))
			if err != nil {
				t.Fatal(err)
			}
			write = func(f *sim.Fiber) error { return g.Write(f, 0, 4096, false) }
		} else {
			g, err := Setup(fab, client, members, DefaultConfig(testMirror))
			if err != nil {
				t.Fatal(err)
			}
			write = func(f *sim.Fiber) error { return g.Write(f, 0, 4096, false) }
		}
		k.Spawn("driver", func(f *sim.Fiber) {
			for i := 0; i < 20; i++ {
				if err := write(f); err != nil {
					t.Errorf("write %d: %v", i, err)
					return
				}
			}
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		_, p := members[0].Stats()
		_, mid := members[1].Stats()
		return p, mid
	}
	fanPrimary, fanMid := measure(true)
	chainHead, chainMid := measure(false)
	if fanPrimary <= 2*fanMid {
		t.Errorf("fan-out primary tx (%d) should dominate a backup's tx (%d)", fanPrimary, fanMid)
	}
	// The chain balances: each forwarding hop transmits about the same.
	ratio := float64(chainHead) / float64(chainMid)
	if ratio > 1.5 || ratio < 0.66 {
		t.Errorf("chain forwarding hops unbalanced: head=%d mid=%d", chainHead, chainMid)
	}
	if fanPrimary <= chainHead {
		t.Errorf("fan-out primary (%d) should transmit more than chain head (%d)",
			fanPrimary, chainHead)
	}
}
