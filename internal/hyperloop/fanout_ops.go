package hyperloop

import (
	"encoding/binary"
	"fmt"

	"hyperloop/internal/protocol"
	"hyperloop/internal/rdma"
)

func (g *FanoutGroup) resultSlotAddr(seq uint64) uint64 {
	return g.primary.resultOff + (seq%uint64(g.cfg.Depth))*uint64(g.primary.resultSlot)
}

func (g *FanoutGroup) stagingAddr(j int, seq uint64) uint64 {
	b := maxInt(g.numBackups(), 1)
	slot := (seq % uint64(g.cfg.Depth)) * uint64(b)
	return g.primary.stagingOff + (slot+uint64(j))*uint64(g.primary.stagingSlot)
}

func (g *FanoutGroup) backupAckAddr(b *fanBackup, seq uint64) uint64 {
	return b.ackOff + (seq%uint64(g.cfg.Depth))*uint64(b.ackSlot)
}

func (g *FanoutGroup) clientAckAddr(seq uint64) uint64 {
	return g.ackOff + (seq%uint64(g.cfg.Depth))*uint64(g.resultSlotLen())
}

// armPrimary pre-posts the primary's chains and receives for op seq.
func (g *FanoutGroup) armPrimary(seq uint64) error {
	p := g.primary
	b := g.numBackups()

	// Metadata receive: descriptor blocks scatter into the pre-posted WQE
	// slots; each backup's peeled metadata into its staging slot; the
	// header into the result block.
	loopRing, loopSlots := p.qpLoop.RingOff(), p.qpLoop.RingSlots()
	sges := []rdma.SGE{
		{Addr: rdma.DescAddr(loopRing, loopSlots, chainSlotA(seq)), Len: rdma.DescLen},
		{Addr: rdma.DescAddr(loopRing, loopSlots, chainSlotB(seq)), Len: rdma.DescLen},
	}
	for j := 0; j < b; j++ {
		ring, slots := p.qpFwd[j].RingOff(), p.qpFwd[j].RingSlots()
		sges = append(sges,
			rdma.SGE{Addr: rdma.DescAddr(ring, slots, chainSlotA(seq)), Len: rdma.DescLen},
			rdma.SGE{Addr: rdma.DescAddr(ring, slots, chainSlotB(seq)), Len: rdma.DescLen},
		)
	}
	for j := 0; j < b; j++ {
		sges = append(sges, rdma.SGE{Addr: g.stagingAddr(j, seq), Len: uint64(fanBackupMetaLen)})
	}
	hdrAddr := g.resultSlotAddr(seq) + uint64((1+b)*resultEntry)
	sges = append(sges, rdma.SGE{Addr: hdrAddr, Len: headerSize})

	// Loopback chain.
	if _, err := p.qpLoop.PostSend(rdma.WQE{
		Opcode: rdma.OpWait, Imm: 1, Aux1: p.recvCQ.CQN(), Aux2: 2, WRID: seq,
	}); err != nil {
		return err
	}
	for i := 0; i < 2; i++ {
		if _, err := p.qpLoop.PostSendDeferred(rdma.WQE{
			Opcode: rdma.OpNop, Flags: rdma.FlagSignaled, WRID: seq,
		}); err != nil {
			return err
		}
	}

	// Per-backup forwarding chains, gated on the loopback completions via
	// an absolute threshold so all of them fire off the same pair.
	for j := 0; j < b; j++ {
		if _, err := p.qpFwd[j].PostSend(rdma.WQE{
			Opcode: rdma.OpWait, Flags: rdma.FlagWaitAbs,
			Compare: 2 * (seq + 1), Aux1: p.loopCQ.CQN(), Aux2: 2, WRID: seq,
		}); err != nil {
			return err
		}
		for i := 0; i < 2; i++ {
			if _, err := p.qpFwd[j].PostSendDeferred(rdma.WQE{Opcode: rdma.OpNop, WRID: seq}); err != nil {
				return err
			}
		}
	}

	// The metadata receive is posted only after every chain slot exists,
	// so a racing (RNR-delayed) delivery cannot scatter into slots that
	// are about to be overwritten by placeholders.
	p.qpClient.PostRecv(rdma.RecvWQE{WRID: seq, SGEs: sges})

	// Ack receives from each backup: header + that backup's result field.
	for j := 0; j < b; j++ {
		p.qpAckIn[j].PostRecv(rdma.RecvWQE{
			WRID: seq,
			SGEs: []rdma.SGE{
				{Addr: hdrAddr, Len: headerSize},
				{Addr: g.resultSlotAddr(seq) + uint64((j+1)*resultEntry), Len: resultEntry},
			},
		})
	}

	// Group-ACK chain on the client QP: one absolute WAIT per backup (op
	// seq is done at backup j once its ack CQ reaches seq+1), then the
	// WRITE_WITH_IMM carrying the result block. With no backups the ACK
	// gates directly on the primary's local completions.
	if b == 0 {
		if _, err := p.qpClient.PostSend(rdma.WQE{
			Opcode: rdma.OpWait, Flags: rdma.FlagWaitAbs,
			Compare: 2 * (seq + 1), Aux1: p.loopCQ.CQN(), WRID: seq,
		}); err != nil {
			return err
		}
	}
	for j := 0; j < b; j++ {
		if _, err := p.qpClient.PostSend(rdma.WQE{
			Opcode: rdma.OpWait, Flags: rdma.FlagWaitAbs,
			Compare: seq + 1, Aux1: p.ackCQs[j].CQN(), WRID: seq,
		}); err != nil {
			return err
		}
	}
	_, err := p.qpClient.PostSend(rdma.WQE{
		Opcode: rdma.OpWriteImm, Flags: rdma.FlagSignaled, WRID: seq, Imm: uint32(seq),
		Local: g.resultSlotAddr(seq), Len: uint64(g.resultSlotLen()),
		Remote: g.clientAckAddr(seq), Aux1: g.ackMR.RKey,
	})
	return err
}

// armBackup pre-posts one backup's chains and receive for op seq.
func (g *FanoutGroup) armBackup(b *fanBackup, seq uint64) error {
	loopRing, loopSlots := b.qpLoop.RingOff(), b.qpLoop.RingSlots()
	ackAddr := g.backupAckAddr(b, seq)
	if _, err := b.qpLoop.PostSend(rdma.WQE{
		Opcode: rdma.OpWait, Imm: 1, Aux1: b.recvCQ.CQN(), Aux2: 2, WRID: seq,
	}); err != nil {
		return err
	}
	for i := 0; i < 2; i++ {
		if _, err := b.qpLoop.PostSendDeferred(rdma.WQE{
			Opcode: rdma.OpNop, Flags: rdma.FlagSignaled, WRID: seq,
		}); err != nil {
			return err
		}
	}
	// Ack chain: both local ops done → SEND [hdr][result] to the primary.
	if _, err := b.qpAck.PostSend(rdma.WQE{
		Opcode: rdma.OpWait, Imm: 2, Aux1: b.loopCQ.CQN(), WRID: seq,
	}); err != nil {
		return err
	}
	if _, err := b.qpAck.PostSend(rdma.WQE{
		Opcode: rdma.OpSend, Flags: rdma.FlagSignaled, WRID: seq,
		Local: ackAddr, Len: uint64(fanAckLen),
	}); err != nil {
		return err
	}
	b.qpPrev.PostRecv(rdma.RecvWQE{
		WRID: seq,
		SGEs: []rdma.SGE{
			{Addr: rdma.DescAddr(loopRing, loopSlots, chainSlotA(seq)), Len: rdma.DescLen},
			{Addr: rdma.DescAddr(loopRing, loopSlots, chainSlotB(seq)), Len: rdma.DescLen},
			{Addr: ackAddr, Len: headerSize},
		},
	})
	return nil
}

// installFanReArm wires the off-critical-path chain replenishment.
func (g *FanoutGroup) installFanReArm() {
	p := g.primary
	p.qpClient.SendCQ().SetDrainHandler(func(batch []rdma.CQE) {
		for range batch {
			seq := p.completed
			p.completed++
			reArmAfter(g.k, g.trk, p.nic, g.cfg.ReArmDelay, func() {
				_ = g.armPrimary(seq + uint64(g.cfg.Depth))
			})
		}
	})
	for _, b := range g.backups {
		b := b
		b.qpAck.SendCQ().SetDrainHandler(func(batch []rdma.CQE) {
			for range batch {
				seq := b.completed
				b.completed++
				reArmAfter(g.k, g.trk, b.nic, g.cfg.ReArmDelay, func() {
					_ = g.armBackup(b, seq+uint64(g.cfg.Depth))
				})
			}
		})
	}
}

// encodeLocalBlock builds the patched L1/L2 descriptors for one member of
// a fan-out or broadcast group. memberIdx indexes p.Exec for gCAS;
// resultAddr is where that member's CAS result lands.
func encodeLocalBlock(buf []byte, seq uint64, kind opKind, p opParams,
	mirrorRKey uint32, resultAddr uint64, memberIdx int) error {
	l1 := rdma.WQE{Opcode: rdma.OpNop, Flags: rdma.FlagSignaled, WRID: seq}
	switch {
	case kind == kindCAS && p.Exec[memberIdx]:
		l1 = rdma.WQE{
			Opcode: rdma.OpCAS, Flags: rdma.FlagSignaled, WRID: seq,
			Local: resultAddr, Remote: uint64(p.Off),
			Compare: p.Old, Swap: p.New, Aux1: mirrorRKey,
		}
	case kind == kindMemcpy:
		l1 = rdma.WQE{
			Opcode: rdma.OpMemcpy, Flags: rdma.FlagSignaled, WRID: seq,
			Local: uint64(p.Src), Len: uint64(p.Size), Remote: uint64(p.Dst),
		}
	}
	l2 := rdma.WQE{Opcode: rdma.OpNop, Flags: rdma.FlagSignaled, WRID: seq}
	switch {
	case kind == kindWrite && p.Durable:
		l2 = rdma.WQE{
			Opcode: rdma.OpFlush, Flags: rdma.FlagSignaled, WRID: seq,
			Remote: uint64(p.Off), Len: uint64(p.Size), Aux1: mirrorRKey,
		}
	case kind == kindMemcpy && p.Durable:
		l2 = rdma.WQE{
			Opcode: rdma.OpFlush, Flags: rdma.FlagSignaled, WRID: seq,
			Remote: uint64(p.Dst), Len: uint64(p.Size), Aux1: mirrorRKey,
		}
	case kind == kindFlush:
		l2 = rdma.WQE{
			Opcode: rdma.OpFlush, Flags: rdma.FlagSignaled, WRID: seq,
			Remote: uint64(p.Off), Len: uint64(p.Size), Aux1: mirrorRKey,
		}
	}
	if err := l1.EncodeDesc(buf); err != nil {
		return err
	}
	return l2.EncodeDesc(buf[rdma.DescLen:])
}

// issue builds and transmits one fan-out operation.
func (g *FanoutGroup) issue(kind opKind, p opParams) (*protocol.Pending, error) {
	if g.trk.Closed() {
		return nil, ErrClosed
	}
	if !g.trk.HasWindow() {
		return nil, ErrTooManyInFlight
	}
	if p.Off < 0 || p.Off+p.Size > g.cfg.MirrorSize {
		return nil, fmt.Errorf("%w: range [%d,+%d) outside mirror", ErrBadArgument, p.Off, p.Size)
	}
	if kind == kindMemcpy && (p.Src < 0 || p.Src+p.Size > g.cfg.MirrorSize ||
		p.Dst < 0 || p.Dst+p.Size > g.cfg.MirrorSize) {
		return nil, fmt.Errorf("%w: memcpy range outside mirror", ErrBadArgument)
	}
	if kind == kindCAS && len(p.Exec) != g.GroupSize() {
		return nil, fmt.Errorf("%w: execute map must have %d entries", ErrBadArgument, g.GroupSize())
	}
	seq := g.trk.NextSeq()
	b := g.numBackups()

	msg := make([]byte, g.metaLen())
	pos := 0
	// Primary's local block; its CAS result lands at result slot index 0.
	if err := encodeLocalBlock(msg[pos:], seq, kind, p,
		g.primary.mirror.RKey, g.resultSlotAddr(seq), 0); err != nil {
		return nil, err
	}
	pos += 2 * rdma.DescLen
	// Forward chains: data WRITE + peeled metadata SEND per backup.
	for j := 0; j < b; j++ {
		f1 := rdma.WQE{Opcode: rdma.OpNop, WRID: seq}
		if kind == kindWrite {
			f1 = rdma.WQE{
				Opcode: rdma.OpWrite, WRID: seq,
				Local: uint64(p.Off), Len: uint64(p.Size),
				Remote: uint64(p.Off), Aux1: g.backups[j].mirror.RKey,
			}
		}
		f2 := rdma.WQE{
			Opcode: rdma.OpSend, WRID: seq,
			Local: g.stagingAddr(j, seq), Len: uint64(fanBackupMetaLen),
		}
		if err := f1.EncodeDesc(msg[pos:]); err != nil {
			return nil, err
		}
		if err := f2.EncodeDesc(msg[pos+rdma.DescLen:]); err != nil {
			return nil, err
		}
		pos += 2 * rdma.DescLen
	}
	// Per-backup metadata: local block + header; backup j's CAS result
	// lands in its ack slot's result field.
	for j := 0; j < b; j++ {
		bk := g.backups[j]
		resultAddr := g.backupAckAddr(bk, seq) + headerSize
		if err := encodeLocalBlock(msg[pos:], seq, kind, p, bk.mirror.RKey, resultAddr, j+1); err != nil {
			return nil, err
		}
		hdr := msg[pos+2*rdma.DescLen:]
		binary.LittleEndian.PutUint64(hdr, seq)
		binary.LittleEndian.PutUint32(hdr[8:], uint32(kind))
		pos += fanBackupMetaLen
	}
	binary.LittleEndian.PutUint64(msg[pos:], seq)
	binary.LittleEndian.PutUint32(msg[pos+8:], uint32(kind))

	metaAddr := g.metaOff + (seq%uint64(g.cfg.Depth))*uint64(g.metaLen())
	if err := g.client.Memory().Write(int(metaAddr), msg); err != nil {
		return nil, err
	}

	op := g.trk.Track(seq, kind)

	if err := protocol.ApplyLocal(g.client.Memory(), kind, p); err != nil {
		return nil, err
	}

	if kind == kindWrite {
		if _, err := g.qpHead.PostSend(rdma.WQE{
			Opcode: rdma.OpWrite, WRID: seq,
			Local: uint64(p.Off), Len: uint64(p.Size),
			Remote: uint64(p.Off), Aux1: g.primary.mirror.RKey,
		}); err != nil {
			return nil, err
		}
	}
	if _, err := g.qpHead.PostSend(rdma.WQE{
		Opcode: rdma.OpSend, WRID: seq,
		Local: metaAddr, Len: uint64(g.metaLen()),
	}); err != nil {
		return nil, err
	}
	g.trk.MarkIssued()
	return op, nil
}

// onAck resolves a completed fan-out operation.
// onAcks handles a drained batch of group-ACK completions.
func (g *FanoutGroup) onAcks(batch []rdma.CQE) {
	for _, e := range batch {
		g.onAck(e)
	}
}

func (g *FanoutGroup) onAck(e rdma.CQE) {
	g.qpAck.PostRecv(rdma.RecvWQE{})
	slotAddr := int(g.clientAckAddr(uint64(e.Imm)))
	if cap(g.ackBuf) < g.resultSlotLen() {
		g.ackBuf = make([]byte, g.resultSlotLen())
	}
	buf := g.ackBuf[:g.resultSlotLen()]
	if err := g.client.Memory().Read(slotAddr, buf); err != nil {
		return
	}
	n := 1 + g.numBackups()
	seq := binary.LittleEndian.Uint64(buf[n*resultEntry:])
	op := g.trk.Complete(seq)
	if op == nil {
		return
	}
	if op.Kind == kindCAS {
		op.Results = make([]uint64, n)
		for j := 0; j < n; j++ {
			op.Results[j] = binary.LittleEndian.Uint64(buf[j*resultEntry:])
		}
	}
	op.Sig.Fire(nil)
}
