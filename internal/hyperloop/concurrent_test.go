package hyperloop

import (
	"bytes"
	"fmt"
	"testing"

	"hyperloop/internal/sim"
)

// TestConcurrentClientFibers drives the group from several fibers at once
// (a multi-threaded client process, §5: "a single multi-threaded process
// that waits for requests from applications and issues them into the chain
// concurrently").
func TestConcurrentClientFibers(t *testing.T) {
	cfg := DefaultConfig(testMirror)
	cfg.Depth = 64
	k, g := testGroup(t, 3, cfg)
	const fibers = 4
	const opsPerFiber = 15
	done := 0
	for fi := 0; fi < fibers; fi++ {
		fi := fi
		k.Spawn(fmt.Sprintf("client-%d", fi), func(f *sim.Fiber) {
			defer func() { done++ }()
			base := fi * 16384
			for i := 0; i < opsPerFiber; i++ {
				payload := []byte(fmt.Sprintf("f%d-op%02d", fi, i))
				off := base + i*256
				if err := g.WriteLocal(off, payload); err != nil {
					t.Errorf("fiber %d: %v", fi, err)
					return
				}
				if err := g.Write(f, off, len(payload), i%2 == 0); err != nil {
					t.Errorf("fiber %d op %d: %v", fi, i, err)
					return
				}
				// Interleave other primitive kinds.
				switch i % 3 {
				case 0:
					if err := g.Memcpy(f, off, base+8192+i*64, 8, false); err != nil {
						t.Errorf("fiber %d memcpy: %v", fi, err)
						return
					}
				case 1:
					if err := g.Flush(f, off, len(payload)); err != nil {
						t.Errorf("fiber %d flush: %v", fi, err)
						return
					}
				}
			}
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if done != fibers {
		t.Fatalf("only %d/%d fibers completed", done, fibers)
	}
	// Every fiber's writes must be present on every replica.
	for fi := 0; fi < fibers; fi++ {
		for i := 0; i < opsPerFiber; i++ {
			want := []byte(fmt.Sprintf("f%d-op%02d", fi, i))
			for r := 0; r < 3; r++ {
				got := make([]byte, len(want))
				_ = g.ReplicaNIC(r).Memory().Read(fi*16384+i*256, got)
				if !bytes.Equal(got, want) {
					t.Fatalf("replica %d missing fiber %d op %d: %q", r, fi, i, got)
				}
			}
		}
	}
	issued, completed := g.Stats()
	if issued != completed {
		t.Fatalf("issued %d != completed %d", issued, completed)
	}
}

// TestThroughputScalesWithPipelining verifies that windowed async writes
// deliver materially better throughput than strictly serial ones — the
// point of pre-posting a deep chain window.
func TestThroughputScalesWithPipelining(t *testing.T) {
	measure := func(window int) sim.Duration {
		cfg := DefaultConfig(testMirror)
		cfg.Depth = 64
		k, g := testGroup(t, 3, cfg)
		const ops = 100
		var elapsed sim.Duration
		runFiber(t, k, func(f *sim.Fiber) {
			start := f.Now()
			var sigs []*sim.Signal
			for i := 0; i < ops; i++ {
				sig, err := g.WriteAsync((i%32)*1024, 512, true)
				if err != nil {
					t.Errorf("op %d: %v", i, err)
					return
				}
				sigs = append(sigs, sig)
				if len(sigs) >= window {
					if err := f.Await(sigs[0]); err != nil {
						t.Errorf("await: %v", err)
						return
					}
					sigs = sigs[1:]
				}
			}
			if err := f.AwaitAll(sigs...); err != nil {
				t.Errorf("drain: %v", err)
				return
			}
			elapsed = f.Now().Sub(start)
		})
		return elapsed
	}
	serial := measure(1)
	pipelined := measure(16)
	if pipelined*3 >= serial {
		t.Fatalf("pipelining ineffective: serial %v vs window-16 %v", serial, pipelined)
	}
}
