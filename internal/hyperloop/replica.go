package hyperloop

import (
	"hyperloop/internal/rdma"
)

// arm pre-posts the WQE chains and the scatter receive for operation seq on
// replica r. This runs on the replica's control path (setup and lazy
// re-arm) — never on the datapath.
func (g *Group) arm(r *replica, seq uint64) error {
	// Receive for the metadata SEND from the previous hop: the first four
	// scatter elements land the descriptor block directly inside the
	// pre-posted WQE slots (remote work request manipulation); the rest
	// goes to this op's staging slot for forwarding.
	loopRing, loopSlots := r.qpLoop.RingOff(), r.qpLoop.RingSlots()
	nextRing, nextSlots := r.qpNext.RingOff(), r.qpNext.RingSlots()
	stagingAddr := r.stagingOff + (seq%uint64(g.cfg.Depth))*uint64(r.stagingSlot)
	defer r.qpPrev.PostRecv(rdma.RecvWQE{ // posted after the chain slots exist
		WRID: seq,
		SGEs: []rdma.SGE{
			{Addr: rdma.DescAddr(loopRing, loopSlots, chainSlotA(seq)), Len: rdma.DescLen},
			{Addr: rdma.DescAddr(loopRing, loopSlots, chainSlotB(seq)), Len: rdma.DescLen},
			{Addr: rdma.DescAddr(nextRing, nextSlots, chainSlotA(seq)), Len: rdma.DescLen},
			{Addr: rdma.DescAddr(nextRing, nextSlots, chainSlotB(seq)), Len: rdma.DescLen},
			{Addr: stagingAddr, Len: uint64(r.metaRest)},
		},
	})

	// Loopback chain: WAIT for the metadata receive, then run the two
	// (to-be-patched) local operations. Placeholders are signaled NOPs so
	// the chain also works if a patch leaves them untouched.
	if _, err := r.qpLoop.PostSend(rdma.WQE{
		Opcode: rdma.OpWait, Imm: 1, Aux1: r.recvCQ.CQN(), Aux2: 2, WRID: seq,
	}); err != nil {
		return err
	}
	if _, err := r.qpLoop.PostSendDeferred(rdma.WQE{
		Opcode: rdma.OpNop, Flags: rdma.FlagSignaled, WRID: seq,
	}); err != nil {
		return err
	}
	if _, err := r.qpLoop.PostSendDeferred(rdma.WQE{
		Opcode: rdma.OpNop, Flags: rdma.FlagSignaled, WRID: seq,
	}); err != nil {
		return err
	}

	// Next-hop chain: WAIT for both local completions, then forward the
	// data WRITE (F1) and the peeled metadata SEND (F2).
	if _, err := r.qpNext.PostSend(rdma.WQE{
		Opcode: rdma.OpWait, Imm: 2, Aux1: r.loopCQ.CQN(), Aux2: 2, WRID: seq,
	}); err != nil {
		return err
	}
	if _, err := r.qpNext.PostSendDeferred(rdma.WQE{
		Opcode: rdma.OpNop, WRID: seq,
	}); err != nil {
		return err
	}
	if _, err := r.qpNext.PostSendDeferred(rdma.WQE{
		Opcode: rdma.OpNop, Flags: rdma.FlagSignaled, WRID: seq,
	}); err != nil {
		return err
	}
	return nil
}

// installReArm wires the lazy control-path re-arm: each completed F2 on
// the next-hop CQ means one operation has fully passed through this
// replica, so the chain for sequence seq+Depth can be posted. The re-arm
// runs ReArmDelay later and costs no datapath time.
func (g *Group) installReArm(r *replica) {
	r.nextCQ.SetDrainHandler(func(batch []rdma.CQE) {
		for range batch {
			seq := r.completed
			r.completed++
			reArmAfter(g.k, g.trk, r.nic, g.cfg.ReArmDelay, func() {
				_ = g.arm(r, seq+uint64(g.cfg.Depth))
			})
		}
	})
}
